package iocontainer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// measureControlSweep runs cfg with a custom policy tick that queries
// every container the ticking manager owns, and returns the worst
// virtual-time duration of one full sweep by any single manager. On
// sharded runs the shard managers sweep concurrently, so the hottest
// shard's sweep IS the pipeline's control-round latency.
func measureControlSweep(b *testing.B, cfg core.Config) sim.Time {
	b.Helper()
	var rt *core.Runtime
	var worst sim.Time
	cfg.Policy.CustomTick = func(gm *core.GlobalManager, p *sim.Proc) {
		start := p.Now()
		for _, c := range rt.Containers() {
			if gm.ShardID() >= 0 && rt.Directory().ShardOf(c.Name()) != gm.ShardID() {
				continue
			}
			gm.Query(p, c.Name(), cfg.StagingNodes)
		}
		if d := p.Now() - start; d > worst {
			worst = d
		}
	}
	rt, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	return worst
}

// smallControlConfig is the 10-container single-manager baseline: the
// same tiny custom stages as scenarios/shards-1k.json, just ten of them
// under the legacy control plane.
func smallControlConfig(b *testing.B) core.Config {
	b.Helper()
	f := &scenario.File{
		SimNodes:        256,
		StagingNodes:    12, // 10 single-node stages + 2 spare
		OutputPeriodSec: 5,
		Steps:           2,
		CrackStep:       -1,
		Seed:            42,
		AtomsOverride:   100_000,
		Policy: scenario.Policy{
			DisableOffline:  true,
			DisableStealing: true,
			CallTimeoutSec:  5,
			CallRetries:     2,
		},
	}
	for i := 0; i < 10; i++ {
		f.Stages = append(f.Stages, scenario.Stage{
			Name:         stageName(i),
			Kind:         "Custom",
			Model:        "Serial",
			Nodes:        1,
			OutputFactor: 1,
			SLAPeriods:   100,
			Cost:         &scenario.Cost{BaseSec: 0.001, RefAtoms: 100_000},
		})
	}
	cfg, err := f.ToConfig()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

func stageName(i int) string {
	return "s" + string(rune('0'+i/100)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

// BenchmarkShardControlRound pins the tentpole's scaling claim: under
// the sharded control plane, sweeping control rounds over all 1,000
// containers of scenarios/shards-1k.json (100 shard managers working
// their shards concurrently) takes at most 2x the virtual time of a
// single manager sweeping a 10-container pipeline. Ring seed 25 caps the
// hottest shard at 16 containers, so the budget holds with headroom; a
// ring or round regression that re-serializes the sweep blows it.
func BenchmarkShardControlRound(b *testing.B) {
	b.ReportAllocs()
	big, err := scenario.LoadFile("scenarios/shards-1k.json")
	if err != nil {
		b.Fatal(err)
	}
	small := smallControlConfig(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		smallSweep := measureControlSweep(b, small)
		bigSweep := measureControlSweep(b, big)
		if smallSweep <= 0 || bigSweep <= 0 {
			b.Fatalf("degenerate sweeps: small=%v big=%v", smallSweep, bigSweep)
		}
		ratio = float64(bigSweep) / float64(smallSweep)
		if ratio > 2 {
			b.Fatalf("1,000-container control sweep %v is %.2fx the 10-container sweep %v (budget: 2x)",
				bigSweep, ratio, smallSweep)
		}
	}
	b.ReportMetric(ratio, "sweep-ratio")
}
