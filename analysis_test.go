package iocontainer

import (
	"io"
	"math/rand"
	"strings"
	"testing"
)

// The analysis facade is exercised the way examples/crackdetect uses it:
// real lattice, real dynamics, real analyses.

func TestFacadeMDAndAnalytics(t *testing.T) {
	const a = 1.5496
	snap := FCCLattice(3, 3, 3, a)
	if snap.N() != 108 {
		t.Fatalf("n %d", snap.N())
	}
	hcp := HCPLattice(3, 3, 3, a)
	if hcp.N() != 108 {
		t.Fatalf("hcp n %d", hcp.N())
	}
	cl := NewCellList(snap, a)
	if len(cl.Neighbors(0)) == 0 {
		t.Fatal("no neighbors")
	}

	sys := NewSystem(snap, DefaultLJ(), 0.002)
	rng := rand.New(rand.NewSource(1))
	sys.Thermalize(0.05, rng.Float64)
	e0 := sys.TotalEnergy()
	sys.Run(50)
	e1 := sys.TotalEnergy()
	drift := (e1 - e0) / e0
	if drift > 0.01 || drift < -0.01 {
		t.Fatalf("energy drift %g", drift)
	}

	adj := Bonds(snap, 0.85*a)
	if adj.NumBonds() == 0 {
		t.Fatal("no bonds")
	}
	cs := CSym(snap, 0.85*a, 1.0)
	if len(cs.P) != snap.N() {
		t.Fatal("csym size")
	}
	res := CNA(adj)
	if res.Fraction(StructFCC)+res.Fraction(StructOther)+
		res.Fraction(StructHCP)+res.Fraction(StructBCC) < 0.99 {
		t.Fatal("cna fractions")
	}

	removed := Notch(snap, a, 0.5)
	if removed == 0 {
		t.Fatal("notch removed nothing")
	}
	ApplyStrain(snap, 0, 0.01)
	cur := Bonds(snap, 0.85*a)
	_ = BrokenBonds(cur, cur)

	parts := Partition(snap, 3)
	merged, err := Merge(parts)
	if err != nil || merged.N() != snap.N() {
		t.Fatalf("merge: %v n=%d", err, merged.N())
	}
}

func TestFacadeScenarioLoading(t *testing.T) {
	cfg, err := LoadScenarioJSON(jsonReader(`{
		"simNodes": 64, "stagingNodes": 13, "steps": 3, "seed": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil || res.Emitted != 3 {
		t.Fatalf("res %+v err %v", res, err)
	}
	if _, err := LoadScenario(t.TempDir() + "/nope.json"); err == nil {
		t.Fatal("missing scenario should fail")
	}
}

func jsonReader(s string) io.Reader { return strings.NewReader(s) }

func TestFacadeCombustion(t *testing.T) {
	f, err := NewCombustionField(100, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f.Ignite(20, nil)
	dt := 0.9 * f.MaxStableDt(1.0)
	a := ExtractFlameFront(f, 0.5)
	for i := 0; i < 200; i++ {
		if err := f.Advance(dt, 1.0, 4.0); err != nil {
			t.Fatal(err)
		}
	}
	b := ExtractFlameFront(f, 0.5)
	speed, err := TrackFlameFront(a, b, 200*dt)
	if err != nil {
		t.Fatal(err)
	}
	if speed <= 0 || speed > 2*FlameSpeed(1.0, 4.0) {
		t.Fatalf("implausible flame speed %g", speed)
	}
}

func TestFacadeFragments(t *testing.T) {
	s := FCCLattice(3, 3, 3, 1.5496)
	frags := Fragments(s, Bonds(s, 1.32))
	if len(frags) != 1 || frags[0].Size() != s.N() {
		t.Fatalf("fragments %v", frags)
	}
	matches := TrackFragments(frags, frags)
	if len(matches) != 1 || matches[0].Prev != 0 || matches[0].Cur != 0 {
		t.Fatalf("matches %v", matches)
	}
}
