package iocontainer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// BenchmarkStreamingFanout pins the fan-out subsystem's SLA: a
// 1,000-subscriber dashboard fleet with Zipf-distributed read rates
// (scenarios/dashboards.json, fleet capped at 1k) rides the whole
// robustness ladder — per-subscriber staged buffers, tail eviction to
// the provenance-stamped spill store, disk-bandwidth catch-up — while
// the simulation's writers never stall on any of it. The benchmark
// fails outright if a writer parked for even one tick of virtual time,
// if Publish ever blocked, or if any subscriber's conservation ledger
// has a hole.
func BenchmarkStreamingFanout(b *testing.B) {
	b.ReportAllocs()
	cfg, err := scenario.LoadFile("scenarios/dashboards.json")
	if err != nil {
		b.Fatal(err)
	}
	subs := *cfg.Subscribers
	subs.Count = 1000
	cfg.Subscribers = &subs
	var last *core.Result
	for i := 0; i < b.N; i++ {
		rt, err := core.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.WriterStalled != 0 {
			b.Fatalf("writers stalled %v under the subscriber fleet (SLA: zero)", res.WriterStalled)
		}
		if res.SubHub.PublishStall != 0 {
			b.Fatalf("Publish parked a writer for %v", res.SubHub.PublishStall)
		}
		var unaccounted int64
		for _, s := range res.Subscribers {
			unaccounted += s.Unaccounted()
		}
		if unaccounted != 0 {
			b.Fatalf("%d sequences unaccounted across the fleet", unaccounted)
		}
		last = res
	}
	b.ReportMetric(float64(last.SubHub.Delivered), "delivered")
	b.ReportMetric(float64(last.SubHub.SpillReads), "spill-reads")
}
