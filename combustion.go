package iocontainer

import "repro/internal/combustion"

// S3D-style combustion surrogate (the paper's "current work" target:
// flame-front tracking for a combustion modeling code). The flamefront
// example drives a real reaction–diffusion flame and runs the actual
// front analytics the pipeline's cost models stand in for.
type (
	// CombustionField is a 2-D premixed-flame progress-variable field.
	CombustionField = combustion.Field
	// FlameFront is an extracted iso-level front.
	FlameFront = combustion.Front
)

// NewCombustionField allocates an all-unburnt nx×ny field with grid
// spacing dx.
func NewCombustionField(nx, ny int, dx float64) (*CombustionField, error) {
	return combustion.NewField(nx, ny, dx)
}

// ExtractFlameFront locates the level crossing per row.
func ExtractFlameFront(f *CombustionField, level float64) *FlameFront {
	return combustion.ExtractFront(f, level)
}

// TrackFlameFront returns the mean front displacement speed between two
// extractions separated by dt.
func TrackFlameFront(prev, cur *FlameFront, dt float64) (float64, error) {
	return combustion.TrackFront(prev, cur, dt)
}

// FlameSpeed returns the theoretical Fisher–KPP planar front speed
// 2·√(D·r).
func FlameSpeed(d, r float64) float64 { return combustion.TheoreticalSpeed(d, r) }
