package iocontainer

import (
	"repro/internal/atoms"
	"repro/internal/lammps"
	"repro/internal/smartpointer"
)

// This file exposes the real (small-scale) molecular dynamics and
// analytics algorithms behind the pipeline's cost models, so library
// users can run the actual SmartPointer analyses on actual particle data
// — the crack-detection example drives an LJ crystal to failure and
// watches CSym/CNA find it.

// Particle data.
type (
	// Vec3 is a 3-D vector.
	Vec3 = atoms.Vec3
	// Box is an orthorhombic periodic box.
	Box = atoms.Box
	// Snapshot is a particle system state.
	Snapshot = atoms.Snapshot
	// CellList accelerates neighbor queries.
	CellList = atoms.CellList
)

// FCCLattice builds an FCC crystal of nx*ny*nz cells with lattice
// constant a.
func FCCLattice(nx, ny, nz int, a float64) *Snapshot { return atoms.FCCLattice(nx, ny, nz, a) }

// HCPLattice builds an HCP crystal (orthohexagonal cells, ideal c/a).
func HCPLattice(nx, ny, nz int, a float64) *Snapshot { return atoms.HCPLattice(nx, ny, nz, a) }

// NewCellList indexes a snapshot for neighbor queries within cutoff.
func NewCellList(s *Snapshot, cutoff float64) *CellList { return atoms.NewCellList(s, cutoff) }

// Molecular dynamics (the LAMMPS surrogate).
type (
	// LJ holds Lennard-Jones parameters.
	LJ = lammps.LJ
	// System is an integrable MD system.
	System = lammps.System
)

// DefaultLJ returns reduced-unit LJ parameters with the 2.5-sigma cutoff.
func DefaultLJ() LJ { return lammps.DefaultLJ() }

// NewSystem wraps a snapshot for velocity-Verlet integration.
func NewSystem(s *Snapshot, lj LJ, dt float64) *System { return lammps.NewSystem(s, lj, dt) }

// Notch carves a crack seed out of the snapshot.
func Notch(s *Snapshot, width, yFraction float64) int { return lammps.Notch(s, width, yFraction) }

// ApplyStrain stretches the box along an axis by factor (1+eps).
func ApplyStrain(s *Snapshot, axis int, eps float64) { lammps.ApplyStrain(s, axis, eps) }

// SmartPointer analyses (real algorithms).
type (
	// Adjacency is the bonded-atom graph Bonds produces.
	Adjacency = smartpointer.Adjacency
	// CSymResult holds per-atom central-symmetry parameters.
	CSymResult = smartpointer.CSymResult
	// CNAResult holds per-atom structural labels.
	CNAResult = smartpointer.CNAResult
	// Structure is a CNA label (FCC/HCP/BCC/Other).
	Structure = smartpointer.Structure
	// CNASignature is a common-neighbor (j,k,l) triplet.
	CNASignature = smartpointer.CNASignature
)

// CNA structure classes.
const (
	StructOther = smartpointer.StructOther
	StructFCC   = smartpointer.StructFCC
	StructHCP   = smartpointer.StructHCP
	StructBCC   = smartpointer.StructBCC
)

// Bonds computes the bonded-atom adjacency within cutoff.
func Bonds(s *Snapshot, cutoff float64) *Adjacency { return smartpointer.Bonds(s, cutoff) }

// BrokenBonds lists pairs bonded in ref but not in cur.
func BrokenBonds(ref, cur *Adjacency) [][2]int32 { return smartpointer.BrokenBonds(ref, cur) }

// CSym computes central-symmetry parameters (crack/defect detection).
func CSym(s *Snapshot, cutoff, threshold float64) *CSymResult {
	return smartpointer.CSym(s, cutoff, threshold)
}

// CNA performs common-neighbor structural labeling over an adjacency.
func CNA(adj *Adjacency) *CNAResult { return smartpointer.CNA(adj) }

// Fragment analysis (the paper's CTH future-work pipeline: raw atomic
// data -> materials fragments -> tracking as they evolve).
type (
	// Fragment is one connected component of bonded atoms.
	Fragment = smartpointer.Fragment
	// FragmentMatch pairs fragments across timesteps.
	FragmentMatch = smartpointer.FragmentMatch
)

// Fragments decomposes the bond graph into connected components
// (largest first).
func Fragments(s *Snapshot, adj *Adjacency) []*Fragment {
	return smartpointer.Fragments(s, adj)
}

// TrackFragments matches fragments across two timesteps by shared atoms.
func TrackFragments(prev, cur []*Fragment) []FragmentMatch {
	return smartpointer.TrackFragments(prev, cur)
}

// Partition splits a snapshot into per-rank slabs (the inverse of Merge).
func Partition(s *Snapshot, n int) []*Snapshot { return smartpointer.Partition(s, n) }

// Merge combines per-rank partial snapshots (the Helper's aggregation).
func Merge(parts []*Snapshot) (*Snapshot, error) { return smartpointer.Merge(parts) }
