GO ?= go

.PHONY: build test race vet fmt lint check experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint runs the in-repo invariant analyzers (cmd/iocheck): determinism
# (simtime, maprange), nil-safety (nilrecv), and protocol exhaustiveness
# (ctlmsg). Zero-dependency; exits nonzero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/iocheck ./...

# check is what CI runs.
check: fmt vet lint build race

experiments:
	$(GO) run ./cmd/experiments
