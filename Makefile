GO ?= go

.PHONY: build test race vet fmt lint lint-baseline check chaos experiments bench bench-smoke trace-smoke race-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint runs the in-repo invariant analyzers (cmd/iocheck): the syntactic
# rules (simtime, maprange, nilrecv, ctlmsg, dropresult) and the
# interprocedural ones built on the CFG + call-graph layer (vtblock,
# epochset, nilflow, maprange-deep) plus the perf layer (hotalloc,
# hotbox: heat propagation + escape analysis over hot paths).
# Zero-dependency; lint-baseline.json is a per-rule ratchet over both
# unsuppressed findings and audited //iocheck:allow counts. Finding
# growth fails; finding shrinkage also fails until the baseline is
# ratcheted down, so the debt level only moves consciously.
lint:
	$(GO) run ./cmd/iocheck -baseline lint-baseline.json ./...

# lint-baseline regenerates the per-rule ratchet: run it after fixing a
# grandfathered finding (the ratchet only moves down by regeneration) or
# after an audit consciously adds or retires an //iocheck:allow.
lint-baseline:
	$(GO) run ./cmd/iocheck -write-baseline lint-baseline.json ./...

# chaos searches randomized fault schedules for invariant violations
# (cmd/iochaos: 64 seeds over the failover scenario, the hand-written
# fault schedule, the at-least-once data plane with writer-node crashes
# and descriptor-drop windows as fair targets, and the sharded control
# plane with meta/shard-manager crashes as fair targets, and the
# 2,000-subscriber dashboard fleet with subscriber crashes and reconnect
# storms as fair targets), smokes the 1,000-container sharded scenario
# on a reduced seed set, then replays the checked-in shrunk reproducers
# in scenarios/regressions/.
chaos:
	$(GO) run ./cmd/iochaos -scenario scenarios/chaos-failover.json -seeds 64
	$(GO) run ./cmd/iochaos -scenario scenarios/faults.json -seeds 64
	$(GO) run ./cmd/iochaos -scenario scenarios/delivery.json -seeds 64
	$(GO) run ./cmd/iochaos -scenario scenarios/chaos-shards.json -seeds 64
	$(GO) run ./cmd/iochaos -scenario scenarios/dashboards.json -seeds 64
	$(GO) run ./cmd/iochaos -scenario scenarios/shards-1k.json -seeds 8
	$(GO) test ./internal/chaos/ -run TestRegressionsReplay

# check is what CI runs.
check: fmt vet lint build race chaos

experiments:
	$(GO) run ./cmd/experiments

# bench regenerates BENCH_baseline.json: each root benchmark runs once
# with its fixed seed and cmd/benchjson folds the output into a sorted
# name -> {ns/op, B/op, allocs/op} map. ns/op is a wall-clock snapshot of
# the machine that ran it; allocs/op is stable and is the number to diff.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_baseline.json
	rm -f bench.out

# bench-smoke proves every benchmark still runs and parses, without
# touching the checked-in baseline (CI runs this). -assert-allocs guards
# the harness itself: the ablation benchmarks emit ReportMetric columns
# between ns/op and B/op, and a parser regression there once zeroed
# every ablation's allocs/op in the baseline.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -assert-allocs 'Ablation,Fig5,Fig10,IocheckHotalloc,IocheckRoundflow,StreamingFanout' < bench.out > /dev/null
	rm -f bench.out

# trace-smoke runs one traced fig7 scenario and fails unless the exported
# Chrome trace_event JSON parses (iotrace validates its own export).
trace-smoke:
	out=$$(mktemp); \
	$(GO) run ./cmd/iotrace -config scenarios/fig7.json -chrome $$out -critical || { rm -f $$out; exit 1; }; \
	rm -f $$out

# race-smoke runs the chaos worker pool (the iochaos -seeds 16 -workers 4
# configuration) under the race detector: verdicts must be byte-identical
# across worker counts, and any cross-worker sharing in the engine is a
# race report.
race-smoke:
	$(GO) test -race -run 'TestWorkerPoolVerdictsIdentical|TestSearchByteDeterministic' ./internal/chaos
