GO ?= go

.PHONY: build test race vet fmt check experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# check is what CI runs.
check: fmt vet build race

experiments:
	$(GO) run ./cmd/experiments
