package monitor

import (
	"repro/internal/evpath"
	"repro/internal/sim"
)

// Probe implements the flexible monitoring knobs of §III-E: what gets
// captured, how often, and how much pre-processing happens at the source
// before anything crosses the machine. Managers tune probes at runtime to
// trade diagnostic resolution against perturbation of the application.
type Probe struct {
	// Out receives the (possibly aggregated) samples.
	Out *evpath.Stone
	// Every forwards only one sample per period (0 = all samples).
	Every sim.Time
	// AggregateN, when > 1, replaces each group of N samples with one
	// averaged sample instead of dropping the intermediate ones.
	AggregateN int
	// Metrics selects which fields are populated on forwarded samples;
	// nil keeps everything. Dropping fields models reduced capture cost.
	Metrics *MetricMask

	lastSent sim.Time
	buf      []Sample
	seen     int64
	sent     int64
}

// MetricMask selects sample fields.
type MetricMask struct {
	Latency  bool
	Service  bool
	QueueLen bool
}

// NewProbe returns a pass-through probe into out.
func NewProbe(out *evpath.Stone) *Probe { return &Probe{Out: out} }

// Seen returns how many samples the probe ingested.
func (pr *Probe) Seen() int64 { return pr.seen }

// Sent returns how many events the probe forwarded — the perturbation
// the monitoring inflicts on the network.
func (pr *Probe) Sent() int64 { return pr.sent }

// Offer ingests one sample, forwarding according to the probe's current
// configuration. It must be called from a simulated process (the sample's
// producer).
func (pr *Probe) Offer(p *sim.Proc, s Sample) {
	pr.seen++
	if pr.Metrics != nil {
		if !pr.Metrics.Latency {
			s.Latency = 0
		}
		if !pr.Metrics.Service {
			s.Service = 0
		}
		if !pr.Metrics.QueueLen {
			s.QueueLen = 0
		}
	}
	if pr.AggregateN > 1 {
		pr.buf = append(pr.buf, s)
		if len(pr.buf) < pr.AggregateN {
			return
		}
		s = averageSamples(pr.buf)
		pr.buf = pr.buf[:0]
	}
	if pr.Every > 0 && pr.lastSent > 0 && s.At-pr.lastSent < pr.Every {
		return
	}
	pr.lastSent = s.At
	pr.sent++
	pr.Out.Submit(p, Event(s))
}

// averageSamples reduces a batch to one mean sample stamped at the batch
// end.
func averageSamples(batch []Sample) Sample {
	out := batch[len(batch)-1]
	var lat, svc sim.Time
	q := 0
	for _, s := range batch {
		lat += s.Latency
		svc += s.Service
		q += s.QueueLen
	}
	n := sim.Time(len(batch))
	out.Latency = lat / n
	out.Service = svc / n
	out.QueueLen = q / len(batch)
	return out
}
