// Package monitor implements the lightweight online monitoring the
// container runtime is driven by (paper §III-E): per-container latency
// samples captured at container boundaries, carried over evpath overlays
// to the global manager, aggregated into sliding windows, and reduced to
// the bottleneck diagnosis ("the pipeline's container with the longest
// average latency") and queue-growth trends that trigger management.
package monitor

import (
	"repro/internal/evpath"
	"repro/internal/sim"
)

// Sample is one container-boundary measurement for one timestep.
type Sample struct {
	// Container names the reporting container.
	Container string
	// Step is the application timestep the sample belongs to.
	Step int64
	// Latency is the time from the step's data entering the container
	// (descriptor arrival at its input channel) to the step exiting.
	Latency sim.Time
	// Service is the pure compute portion of the latency.
	Service sim.Time
	// QueueLen is the input queue backlog observed at exit.
	QueueLen int
	// At is when the sample was taken.
	At sim.Time
}

// SampleEventType tags monitoring events on evpath overlays.
const SampleEventType = "monitor.sample"

// sampleWireBytes approximates the encoded size of one sample.
const sampleWireBytes = 96

// Event wraps a sample for overlay transport.
func Event(s Sample) *evpath.Event {
	return &evpath.Event{Type: SampleEventType, Size: sampleWireBytes, Data: s}
}

// Window is a sliding window of samples for one container.
type Window struct {
	// Span bounds how far back samples are kept.
	Span sim.Time
	buf  []Sample
}

// Add appends a sample and evicts ones older than Span.
func (w *Window) Add(s Sample) {
	w.buf = append(w.buf, s)
	if w.Span <= 0 {
		return
	}
	cut := s.At - w.Span
	i := 0
	for i < len(w.buf) && w.buf[i].At < cut {
		i++
	}
	if i > 0 {
		w.buf = append(w.buf[:0], w.buf[i:]...)
	}
}

// Len returns the number of retained samples.
func (w *Window) Len() int { return len(w.buf) }

// Samples returns the retained samples (shared slice; do not mutate).
func (w *Window) Samples() []Sample { return w.buf }

// AvgLatency returns the mean latency over the window (0 if empty).
func (w *Window) AvgLatency() sim.Time {
	if len(w.buf) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range w.buf {
		sum += s.Latency
	}
	return sum / sim.Time(len(w.buf))
}

// LastQueueLen returns the most recent queue observation.
func (w *Window) LastQueueLen() int {
	if len(w.buf) == 0 {
		return 0
	}
	return w.buf[len(w.buf)-1].QueueLen
}

// QueueTrend estimates queue growth in items per step across the window
// (first vs last observation). Positive means the backlog is building —
// the early overflow warning the Fig. 9 policy acts on.
func (w *Window) QueueTrend() float64 {
	if len(w.buf) < 2 {
		return 0
	}
	first, last := w.buf[0], w.buf[len(w.buf)-1]
	steps := float64(len(w.buf) - 1)
	return float64(last.QueueLen-first.QueueLen) / steps
}

// Aggregator maintains per-container windows, fed either directly or from
// an evpath overlay terminal.
type Aggregator struct {
	Span    sim.Time
	windows map[string]*Window
	order   []string
	total   int64
}

// NewAggregator returns an aggregator with the given window span
// (0 = unbounded windows).
func NewAggregator(span sim.Time) *Aggregator {
	return &Aggregator{Span: span, windows: make(map[string]*Window)}
}

// Ingest adds one sample.
func (a *Aggregator) Ingest(s Sample) {
	w, ok := a.windows[s.Container]
	if !ok {
		w = &Window{Span: a.Span}
		a.windows[s.Container] = w
		a.order = append(a.order, s.Container)
	}
	w.Add(s)
	a.total++
}

// Terminal returns an evpath action that feeds the aggregator, so it can
// sit at the root of a monitoring overlay.
func (a *Aggregator) Terminal() evpath.Action {
	return evpath.Terminal(func(ev *evpath.Event) {
		if s, ok := ev.Data.(Sample); ok && ev.Type == SampleEventType {
			a.Ingest(s)
		}
	})
}

// Window returns the named container's window (nil if unseen).
func (a *Aggregator) Window(container string) *Window { return a.windows[container] }

// Containers returns the seen container names in first-seen order.
func (a *Aggregator) Containers() []string { return append([]string(nil), a.order...) }

// TotalSamples returns the ingested sample count.
func (a *Aggregator) TotalSamples() int64 { return a.total }

// Bottleneck returns the container with the longest average latency over
// its window, among the given candidates (all seen containers if nil).
// ok is false when no candidate has samples.
func (a *Aggregator) Bottleneck(candidates []string) (name string, avg sim.Time, ok bool) {
	ranked := a.Ranked(candidates)
	if len(ranked) == 0 {
		return "", 0, false
	}
	return ranked[0], a.windows[ranked[0]].AvgLatency(), true
}

// Ranked returns the candidates (all seen containers if nil) that have
// samples, ordered by descending average latency — the global manager
// works down this list until it finds a container it can actually help.
func (a *Aggregator) Ranked(candidates []string) []string {
	if candidates == nil {
		candidates = a.order
	}
	var out []string
	for _, c := range candidates {
		if w := a.windows[c]; w != nil && w.Len() > 0 {
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && a.windows[out[j]].AvgLatency() > a.windows[out[j-1]].AvgLatency(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
