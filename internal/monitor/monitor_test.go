package monitor

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/evpath"
	"repro/internal/sim"
)

func sample(c string, step int64, lat sim.Time, q int, at sim.Time) Sample {
	return Sample{Container: c, Step: step, Latency: lat, QueueLen: q, At: at}
}

func TestWindowEviction(t *testing.T) {
	w := &Window{Span: 10 * sim.Second}
	for i := 0; i < 5; i++ {
		w.Add(sample("c", int64(i), sim.Second, 0, sim.Time(i)*4*sim.Second))
	}
	// At t=16s with span 10s, samples before 6s (t=0, t=4) are evicted.
	if w.Len() != 3 {
		t.Fatalf("retained %d, want 3", w.Len())
	}
	if w.Samples()[0].Step != 2 {
		t.Fatalf("oldest retained step %d", w.Samples()[0].Step)
	}
	// Unbounded window keeps everything.
	u := &Window{}
	for i := 0; i < 5; i++ {
		u.Add(sample("c", int64(i), sim.Second, 0, sim.Time(i)*sim.Hour))
	}
	if u.Len() != 5 {
		t.Fatal("unbounded window evicted")
	}
}

func TestWindowStats(t *testing.T) {
	w := &Window{}
	if w.AvgLatency() != 0 || w.LastQueueLen() != 0 || w.QueueTrend() != 0 {
		t.Fatal("empty window stats should be zero")
	}
	w.Add(sample("c", 0, 10*sim.Second, 2, 0))
	w.Add(sample("c", 1, 20*sim.Second, 4, sim.Second))
	w.Add(sample("c", 2, 30*sim.Second, 6, 2*sim.Second))
	if w.AvgLatency() != 20*sim.Second {
		t.Fatalf("avg %v", w.AvgLatency())
	}
	if w.LastQueueLen() != 6 {
		t.Fatalf("last queue %d", w.LastQueueLen())
	}
	if got := w.QueueTrend(); got != 2 {
		t.Fatalf("trend %g, want 2/step", got)
	}
}

func TestAggregatorBottleneck(t *testing.T) {
	a := NewAggregator(0)
	if _, _, ok := a.Bottleneck(nil); ok {
		t.Fatal("empty aggregator should have no bottleneck")
	}
	a.Ingest(sample("helper", 0, 2*sim.Second, 0, 0))
	a.Ingest(sample("bonds", 0, 40*sim.Second, 3, 0))
	a.Ingest(sample("csym", 0, 8*sim.Second, 1, 0))
	name, avg, ok := a.Bottleneck(nil)
	if !ok || name != "bonds" || avg != 40*sim.Second {
		t.Fatalf("bottleneck %q %v %v", name, avg, ok)
	}
	// Candidate filtering.
	name, _, ok = a.Bottleneck([]string{"helper", "csym"})
	if !ok || name != "csym" {
		t.Fatalf("filtered bottleneck %q", name)
	}
	// Unknown candidates are skipped.
	if _, _, ok := a.Bottleneck([]string{"nope"}); ok {
		t.Fatal("unknown candidate should not be a bottleneck")
	}
	if a.TotalSamples() != 3 {
		t.Fatalf("total %d", a.TotalSamples())
	}
	if got := a.Containers(); len(got) != 3 || got[0] != "helper" {
		t.Fatalf("containers %v", got)
	}
	if a.Window("bonds") == nil || a.Window("nope") != nil {
		t.Fatal("window lookup broken")
	}
}

func TestOverlayFeedsAggregator(t *testing.T) {
	// Samples flow replica -> bridge -> aggregator terminal, across the
	// simulated network.
	eng := sim.NewEngine(3)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	gmMgr := evpath.NewManager(eng, mach, 0)
	agg := NewAggregator(sim.Minute)
	root := gmMgr.NewStone(agg.Terminal())
	replicaMgr := evpath.NewManager(eng, mach, 2)
	br := replicaMgr.NewBridge(root, 0)
	eng.Go("replica", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			p.Sleep(15 * sim.Second)
			br.Submit(p, Event(sample("bonds", i, 20*sim.Second, int(i), p.Now())))
		}
	})
	eng.Run()
	if agg.TotalSamples() != 4 {
		t.Fatalf("aggregated %d samples", agg.TotalSamples())
	}
	name, avg, ok := agg.Bottleneck(nil)
	if !ok || name != "bonds" || avg != 20*sim.Second {
		t.Fatalf("bottleneck %q %v", name, avg)
	}
}

func TestTerminalIgnoresForeignEvents(t *testing.T) {
	eng := sim.NewEngine(3)
	mgr := evpath.NewManager(eng, nil, 0)
	agg := NewAggregator(0)
	root := mgr.NewStone(agg.Terminal())
	eng.Go("p", func(p *sim.Proc) {
		root.Submit(p, &evpath.Event{Type: "other", Data: "not a sample"})
		root.Submit(p, &evpath.Event{Type: SampleEventType, Data: "wrong payload"})
	})
	eng.Run()
	if agg.TotalSamples() != 0 {
		t.Fatal("foreign events should be ignored")
	}
}

func TestRankedOrdersByLatency(t *testing.T) {
	a := NewAggregator(0)
	a.Ingest(sample("fast", 0, sim.Second, 0, 0))
	a.Ingest(sample("slow", 0, 30*sim.Second, 0, 0))
	a.Ingest(sample("mid", 0, 10*sim.Second, 0, 0))
	got := a.Ranked(nil)
	want := []string{"slow", "mid", "fast"}
	if len(got) != 3 {
		t.Fatalf("ranked %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked %v, want %v", got, want)
		}
	}
	// Candidates subset preserved; unknown/sampleless dropped.
	got = a.Ranked([]string{"fast", "nope", "slow"})
	if len(got) != 2 || got[0] != "slow" || got[1] != "fast" {
		t.Fatalf("subset ranked %v", got)
	}
}

func TestProbeRateLimiting(t *testing.T) {
	eng := sim.NewEngine(3)
	mgr := evpath.NewManager(eng, nil, 0)
	agg := NewAggregator(0)
	out := mgr.NewStone(agg.Terminal())
	pr := NewProbe(out)
	pr.Every = 10 * sim.Second
	eng.Go("src", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(sim.Second)
			pr.Offer(p, sample("c", int64(i), sim.Second, 0, p.Now()))
		}
	})
	eng.Run()
	if pr.Seen() != 20 {
		t.Fatalf("seen %d", pr.Seen())
	}
	// 20 samples over 20s at one per 10s: first + two rate-limited.
	if pr.Sent() > 3 || pr.Sent() < 2 {
		t.Fatalf("sent %d, want 2-3", pr.Sent())
	}
	if agg.TotalSamples() != pr.Sent() {
		t.Fatal("aggregator mismatch")
	}
}

func TestProbeAggregation(t *testing.T) {
	eng := sim.NewEngine(3)
	mgr := evpath.NewManager(eng, nil, 0)
	var got []Sample
	out := mgr.NewStone(evpath.Terminal(func(ev *evpath.Event) {
		got = append(got, ev.Data.(Sample))
	}))
	pr := NewProbe(out)
	pr.AggregateN = 4
	eng.Go("src", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(sim.Second)
			pr.Offer(p, sample("c", int64(i), sim.Time(i)*sim.Second, i, p.Now()))
		}
	})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("forwarded %d aggregates, want 2", len(got))
	}
	// First aggregate: mean of latencies 0,1,2,3 seconds = 1.5s.
	if got[0].Latency != 1500*sim.Millisecond {
		t.Fatalf("mean latency %v", got[0].Latency)
	}
	if got[0].QueueLen != 1 { // (0+1+2+3)/4
		t.Fatalf("mean queue %d", got[0].QueueLen)
	}
}

func TestProbeMetricMask(t *testing.T) {
	eng := sim.NewEngine(3)
	mgr := evpath.NewManager(eng, nil, 0)
	var got []Sample
	out := mgr.NewStone(evpath.Terminal(func(ev *evpath.Event) {
		got = append(got, ev.Data.(Sample))
	}))
	pr := NewProbe(out)
	pr.Metrics = &MetricMask{QueueLen: true} // only queue lengths cross
	eng.Go("src", func(p *sim.Proc) {
		pr.Offer(p, Sample{Container: "c", Latency: 9 * sim.Second,
			Service: 5 * sim.Second, QueueLen: 7, At: p.Now()})
	})
	eng.Run()
	if len(got) != 1 {
		t.Fatal("nothing forwarded")
	}
	if got[0].Latency != 0 || got[0].Service != 0 || got[0].QueueLen != 7 {
		t.Fatalf("mask not applied: %+v", got[0])
	}
}
