package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput: how many
// events the kernel executes per second of wall time.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Second, tick)
		}
	}
	e.After(Second, tick)
	b.ResetTimer()
	e.Run()
	if n != b.N {
		b.Fatalf("executed %d, want %d", n, b.N)
	}
}

// BenchmarkProcContextSwitch measures the park/unpark handshake cost of
// the coroutine-style process scheduler.
func BenchmarkProcContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Second)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkQueueHandoff measures producer/consumer handoff through a
// bounded queue.
func BenchmarkQueueHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	q := NewQueue[int](e, 4)
	e.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceAcquireRelease measures semaphore churn under
// contention.
func BenchmarkResourceAcquireRelease(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	r := NewResource(e, 2)
	for w := 0; w < 4; w++ {
		e.Go("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Acquire(p, 1)
				p.Sleep(Millisecond)
				r.Release(1)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}
