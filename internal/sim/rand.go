package sim

import "math/rand"

// Rand is the engine's deterministic random source. It wraps math/rand with
// helpers for the duration distributions the machine and cost models use
// (uniform ranges, exponential inter-arrivals, truncated normals).
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform int in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n).
func (r *Rand) Int63n(n int64) int64 { return r.r.Int63n(n) }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Uniform returns a uniform duration in [lo,hi].
func (r *Rand) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.r.Int63n(int64(hi-lo)+1))
}

// Jitter returns d perturbed by a uniform factor in [1-frac, 1+frac].
// frac is clamped to [0,1].
func (r *Rand) Jitter(d Time, frac float64) Time {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f := 1 + frac*(2*r.r.Float64()-1)
	return Time(float64(d) * f)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *Rand) Exp(mean Time) Time {
	return Time(r.r.ExpFloat64() * float64(mean))
}

// Normal returns a normally distributed duration truncated at zero.
func (r *Rand) Normal(mean, stddev Time) Time {
	v := float64(mean) + r.r.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Time(v)
}
