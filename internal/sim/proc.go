package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// engine. At most one process runs at a time; a process relinquishes
// control by blocking in one of the kernel primitives (Sleep, Queue.Get,
// Event.Wait, Resource.Acquire, ...). Because execution is strictly
// interleaved, process code may freely share data without locks.
type Proc struct {
	eng      *Engine
	name     string
	resume   chan struct{}
	parked   bool
	done     bool
	onDone   *Event // lazily created join event
	wakeWhat string // "wake "+name, built once at spawn
	unparkFn func() // bound unpark, built once at spawn
	w        waiter // the proc's single in-flight wait (see newWait)
}

// Go starts fn as a new process at the current virtual time.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt starts fn as a new process at virtual time t.
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{}, 1)}
	p.wakeWhat = "wake " + name
	p.unparkFn = p.unpark
	p.w.proc = p
	e.procs[p] = struct{}{}
	e.schedule(t, "start "+name, func() {
		go p.run(fn)
		p.unpark()
	})
	return p
}

func (p *Proc) run(fn func(*Proc)) {
	<-p.resume
	defer func() {
		if v := recover(); v != nil {
			p.eng.panicV = v
		}
		p.done = true
		delete(p.eng.procs, p)
		if p.onDone != nil {
			p.onDone.Fire()
		}
		p.eng.baton <- struct{}{}
	}()
	fn(p)
}

// park suspends the process and returns control to the engine loop. The
// process resumes when something sends on p.resume (always via unpark).
func (p *Proc) park() {
	p.parked = true
	p.eng.baton <- struct{}{}
	<-p.resume
	p.parked = false
}

// unpark transfers the baton to the process and waits for it to park again
// (or finish). Must be called from the engine loop's goroutine, i.e. from
// inside an executed event.
func (p *Proc) unpark() {
	p.resume <- struct{}{}
	<-p.eng.baton
}

// wake schedules the process to resume at the current virtual time.
func (p *Proc) wake(what string) {
	p.eng.schedule(p.eng.now, what, p.unparkFn)
}

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at creation.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d virtual time. Non-positive durations
// yield the processor (other same-time events run) without advancing time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p.wakeWhat, p.unparkFn)
	p.park()
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	d := t - p.eng.now
	p.Sleep(d)
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until other has finished. Returns immediately if it already
// has.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	if other.onDone == nil {
		other.onDone = NewEvent(p.eng)
	}
	other.onDone.Wait(p)
}

// waiter represents one parked process inside a queue/event/resource wait
// list. cancelled is set when a timeout fires first, so the structure's
// wake path must skip it.
//
// A process can only block on one primitive at a time, so every Proc
// embeds a single waiter that is reused across waits. seq counts the
// waits; wait lists hold generation-stamped waiterRefs so an entry left
// behind by an earlier wait (e.g. after a timeout) is detected stale
// instead of corrupting the next one.
type waiter struct {
	proc      *Proc
	cancelled bool
	woken     bool
	n         int    // units requested (Resource) — unused elsewhere
	seq       uint64 // wait generation, bumped by newWait
}

// waiterRef is one wait-list entry: a pointer to the proc's embedded
// waiter plus the generation it was enlisted under.
type waiterRef struct {
	w   *waiter
	seq uint64
}

// valid reports whether the referenced wait is still the one this entry
// was created for.
func (r waiterRef) valid() bool { return r.seq == r.w.seq }

// newWait readies the proc's embedded waiter for one blocking wait and
// returns a reference to enlist in a wait list. Bumping the generation
// invalidates any stale references from previous waits.
func (p *Proc) newWait(n int) waiterRef {
	p.w.seq++
	p.w.cancelled = false
	p.w.woken = false
	p.w.n = n
	return waiterRef{w: &p.w, seq: p.w.seq}
}

// Event is a one-shot broadcast: processes wait until someone fires it.
// Waiting on an already-fired event returns immediately.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []waiterRef
}

// NewEvent returns an unfired event.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event fired and wakes all waiters. Subsequent Waits do not
// block. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, r := range ev.waiters {
		if r.valid() && !r.w.cancelled {
			r.w.woken = true
			r.w.proc.wake("event fire")
		}
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p.newWait(0))
	p.park()
}

// WaitTimeout blocks p until the event fires or d elapses; it reports
// whether the event fired. A non-positive d polls the fired state without
// scheduling a timer.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	if d <= 0 {
		return false
	}
	r := p.newWait(0)
	ev.waiters = append(ev.waiters, r)
	//iocheck:allow hotbox timer closures arm only on the blocking path, not per event
	p.eng.schedule(p.eng.now+d, "event timeout", func() {
		if r.valid() && !r.w.woken {
			r.w.cancelled = true
			p.unpark()
		}
	})
	p.park()
	return r.w.woken
}

// Resource is a counting semaphore over abstract units (cores, buffer
// slots, link tokens). Acquire blocks until the units are available;
// waiters are served FIFO.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []waiterRef
}

// NewResource returns a resource with the given number of units.
func NewResource(e *Engine, capacity int) *Resource {
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Available returns capacity minus in-use units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// TryAcquire acquires n units if immediately available, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Acquire blocks p until n units are available, then acquires them.
func (r *Resource) Acquire(p *Proc, n int) {
	if r.TryAcquire(n) {
		return
	}
	r.waiters = append(r.waiters, p.newWait(n))
	p.park()
}

// Release returns n units and wakes waiters whose requests now fit.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release below zero")
	}
	r.dispatch()
}

// Grow adds n units of capacity (n may be negative to shrink; shrinking
// below in-use is allowed and simply delays future acquisitions).
func (r *Resource) Grow(n int) {
	r.capacity += n
	r.dispatch()
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		ref := r.waiters[0]
		if !ref.valid() || ref.w.cancelled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+ref.w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.inUse += ref.w.n
		ref.w.woken = true
		ref.w.proc.wake("resource grant")
	}
}
