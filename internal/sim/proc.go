package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// engine. At most one process runs at a time; a process relinquishes
// control by blocking in one of the kernel primitives (Sleep, Queue.Get,
// Event.Wait, Resource.Acquire, ...). Because execution is strictly
// interleaved, process code may freely share data without locks.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked bool
	done   bool
	onDone *Event // lazily created join event
}

// Go starts fn as a new process at the current virtual time.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt starts fn as a new process at virtual time t.
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{}, 1)}
	e.procs[p] = struct{}{}
	e.schedule(t, "start "+name, func() {
		go p.run(fn)
		p.unpark()
	})
	return p
}

func (p *Proc) run(fn func(*Proc)) {
	<-p.resume
	defer func() {
		if v := recover(); v != nil {
			p.eng.panicV = v
		}
		p.done = true
		delete(p.eng.procs, p)
		if p.onDone != nil {
			p.onDone.Fire()
		}
		p.eng.baton <- struct{}{}
	}()
	fn(p)
}

// park suspends the process and returns control to the engine loop. The
// process resumes when something sends on p.resume (always via unpark).
func (p *Proc) park() {
	p.parked = true
	p.eng.baton <- struct{}{}
	<-p.resume
	p.parked = false
}

// unpark transfers the baton to the process and waits for it to park again
// (or finish). Must be called from the engine loop's goroutine, i.e. from
// inside an executed event.
func (p *Proc) unpark() {
	p.resume <- struct{}{}
	<-p.eng.baton
}

// wake schedules the process to resume at the current virtual time.
func (p *Proc) wake(what string) {
	p.eng.schedule(p.eng.now, what, p.unpark)
}

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at creation.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d virtual time. Non-positive durations
// yield the processor (other same-time events run) without advancing time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, "wake "+p.name, p.unpark)
	p.park()
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	d := t - p.eng.now
	p.Sleep(d)
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until other has finished. Returns immediately if it already
// has.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	if other.onDone == nil {
		other.onDone = NewEvent(p.eng)
	}
	other.onDone.Wait(p)
}

// waiter represents one parked process inside a queue/event/resource wait
// list. cancelled is set when a timeout fires first, so the structure's
// wake path must skip it.
type waiter struct {
	proc      *Proc
	cancelled bool
	woken     bool
	n         int // units requested (Resource) — unused elsewhere
}

// Event is a one-shot broadcast: processes wait until someone fires it.
// Waiting on an already-fired event returns immediately.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []*waiter
}

// NewEvent returns an unfired event.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event fired and wakes all waiters. Subsequent Waits do not
// block. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		if !w.cancelled {
			w.woken = true
			w.proc.wake("event fire")
		}
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	w := &waiter{proc: p}
	ev.waiters = append(ev.waiters, w)
	p.park()
}

// WaitTimeout blocks p until the event fires or d elapses; it reports
// whether the event fired. A non-positive d polls the fired state without
// scheduling a timer.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	if d <= 0 {
		return false
	}
	w := &waiter{proc: p}
	ev.waiters = append(ev.waiters, w)
	p.eng.schedule(p.eng.now+d, "event timeout", func() {
		if !w.woken {
			w.cancelled = true
			p.unpark()
		}
	})
	p.park()
	return w.woken
}

// Resource is a counting semaphore over abstract units (cores, buffer
// slots, link tokens). Acquire blocks until the units are available;
// waiters are served FIFO.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*waiter
}

// NewResource returns a resource with the given number of units.
func NewResource(e *Engine, capacity int) *Resource {
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently acquired units.
func (r *Resource) InUse() int { return r.inUse }

// Available returns capacity minus in-use units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// TryAcquire acquires n units if immediately available, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Acquire blocks p until n units are available, then acquires them.
func (r *Resource) Acquire(p *Proc, n int) {
	if r.TryAcquire(n) {
		return
	}
	w := &waiter{proc: p, n: n}
	r.waiters = append(r.waiters, w)
	p.park()
}

// Release returns n units and wakes waiters whose requests now fit.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release below zero")
	}
	r.dispatch()
}

// Grow adds n units of capacity (n may be negative to shrink; shrinking
// below in-use is allowed and simply delays future acquisitions).
func (r *Resource) Grow(n int) {
	r.capacity += n
	r.dispatch()
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.cancelled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+w.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		w.woken = true
		w.proc.wake("resource grant")
	}
}
