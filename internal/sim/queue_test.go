package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueUnboundedFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(Second)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("unexpected close")
			}
			got = append(got, v)
		}
	})
	e.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueBoundedBlocksPutter(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 2)
	var putDone []Time
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			putDone = append(putDone, p.Now())
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * Second)
			q.Get(p)
		}
	})
	e.Run()
	// First two puts immediate; third unblocks at first get (t=10),
	// fourth at second get (t=20).
	want := []Time{0, 0, 10 * Second, 20 * Second}
	for i := range want {
		if putDone[i] != want[i] {
			t.Fatalf("putDone = %v, want %v", putDone, want)
		}
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e, 0)
	var at Time
	var val string
	e.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if !ok {
			t.Error("closed?")
		}
		val, at = v, p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(3 * Second)
		q.Put(p, "x")
	})
	e.Run()
	if val != "x" || at != 3*Second {
		t.Fatalf("val=%q at=%v", val, at)
	}
}

func TestQueueTryPutTryGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty should fail")
	}
	if !q.TryPut(1) {
		t.Fatal("TryPut on empty should succeed")
	}
	if q.TryPut(2) {
		t.Fatal("TryPut on full should fail")
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	v, ok := q.TryGet()
	if !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	q.TryPut(1)
	q.TryPut(2)
	q.Close()
	if q.TryPut(3) {
		t.Fatal("TryPut after close should fail")
	}
	var got []int
	closedSeen := false
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				closedSeen = true
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if !closedSeen || len(got) != 2 {
		t.Fatalf("closed=%v got=%v", closedSeen, got)
	}
}

func TestQueueCloseWakesBlockedGetter(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	woken := false
	e.Go("consumer", func(p *Proc) {
		_, ok := q.Get(p)
		if ok {
			t.Error("expected closed")
		}
		woken = true
	})
	e.At(Second, q.Close)
	e.Run()
	if !woken {
		t.Fatal("blocked getter not woken by close")
	}
}

func TestQueueCloseWakesBlockedPutter(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 1)
	q.TryPut(0)
	rejected := false
	e.Go("producer", func(p *Proc) {
		if !q.Put(p, 1) {
			rejected = true
		}
	})
	e.At(Second, q.Close)
	e.Run()
	if !rejected {
		t.Fatal("blocked putter should be rejected on close")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	var timedOut, gotIt bool
	e.Go("fast", func(p *Proc) {
		_, ok := q.GetTimeout(p, 2*Second)
		timedOut = !ok
	})
	e.Go("slow", func(p *Proc) {
		v, ok := q.GetTimeout(p, 20*Second)
		gotIt = ok && v == 99
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(5 * Second)
		q.Put(p, 99)
	})
	e.Run()
	if !timedOut {
		t.Fatal("fast getter should time out")
	}
	if !gotIt {
		t.Fatal("slow getter should receive the item")
	}
}

func TestQueueGetTimeoutImmediate(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	q.TryPut(5)
	var v int
	var ok bool
	e.Go("c", func(p *Proc) { v, ok = q.GetTimeout(p, Second) })
	e.Run()
	if !ok || v != 5 {
		t.Fatalf("got %d,%v", v, ok)
	}
}

// A non-positive deadline polls: GetTimeout must return an available item
// or fail immediately, never park the caller or schedule a timer. Callers
// routinely pass deadline-Now(), which goes to zero or below.
func TestQueueGetTimeoutNonPositivePolls(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	q.TryPut(11)
	var results []struct {
		v  int
		ok bool
	}
	e.Go("poller", func(p *Proc) {
		for _, d := range []Time{0, -Second, 0} {
			v, ok := q.GetTimeout(p, d)
			results = append(results, struct {
				v  int
				ok bool
			}{v, ok})
		}
	})
	e.Run()
	if len(results) != 3 {
		t.Fatalf("poller ran %d polls, want 3", len(results))
	}
	if !results[0].ok || results[0].v != 11 {
		t.Fatalf("poll with item buffered: %+v", results[0])
	}
	if results[1].ok || results[2].ok {
		t.Fatalf("polls on empty queue succeeded: %+v", results[1:])
	}
	if e.Now() != 0 {
		t.Fatalf("polling advanced time to %v", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("polling left %d timer events scheduled", e.Pending())
	}
}

func TestQueueRemoveWhere(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 4)
	for _, v := range []int{1, 2, 3, 4} {
		q.TryPut(v)
	}
	var putOK bool
	e.Go("blocked-putter", func(p *Proc) { putOK = q.Put(p, 9) })
	e.Go("remover", func(p *Proc) {
		p.Sleep(Second)
		if n := q.RemoveWhere(func(v int) bool { return v%2 == 0 }); n != 2 {
			t.Errorf("removed %d, want 2", n)
		}
		if n := q.RemoveWhere(func(int) bool { return false }); n != 0 {
			t.Errorf("no-op removal reported %d", n)
		}
	})
	e.Run()
	if !putOK {
		t.Fatal("freed capacity did not admit the blocked putter")
	}
	// Order of survivors preserved, admitted put appended after them.
	var got []int
	for {
		v, ok := q.TryGet()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int{1, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek empty should fail")
	}
	q.TryPut(7)
	v, ok := q.Peek()
	if !ok || v != 7 || q.Len() != 1 {
		t.Fatalf("peek = %d,%v len=%d", v, ok, q.Len())
	}
}

// Property: with arbitrary producer/consumer timing, a bounded queue
// neither loses nor duplicates nor reorders items.
func TestQueueConservationProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%5) + 1
		n := int(nRaw%64) + 1
		e := NewEngine(seed)
		q := NewQueue[int](e, capacity)
		var got []int
		e.Go("producer", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(e.Rand().Uniform(0, 3*Second))
				q.Put(p, i)
			}
			q.Close()
		})
		e.Go("consumer", func(p *Proc) {
			for {
				p.Sleep(e.Rand().Uniform(0, 3*Second))
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		e.Run()
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiple producers and consumers still conserve items
// (as a multiset) on an unbounded queue.
func TestQueueMultiProducerConsumerProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		e := NewEngine(seed)
		q := NewQueue[int](e, 0)
		seen := make(map[int]int)
		for w := 0; w < 3; w++ {
			w := w
			e.Go("producer", func(p *Proc) {
				for i := 0; i < n; i++ {
					p.Sleep(e.Rand().Uniform(0, Second))
					q.Put(p, w*1000+i)
				}
			})
		}
		total := 3 * n
		consumed := 0
		for c := 0; c < 2; c++ {
			e.Go("consumer", func(p *Proc) {
				for consumed < total {
					v, ok := q.GetTimeout(p, 30*Second)
					if !ok {
						return
					}
					seen[v]++
					consumed++
				}
			})
		}
		e.Run()
		if consumed != total {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
