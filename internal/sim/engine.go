// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every substrate in this repository: the cluster machine
// model, the DataTap transport, the container control protocols, and the
// experiment harness all advance a shared virtual clock instead of wall
// time, so scenarios spanning thousands of virtual seconds execute in
// milliseconds and are exactly reproducible from a seed.
//
// Two styles of simulated activity are supported:
//
//   - plain callbacks scheduled with [Engine.At] / [Engine.After], and
//   - processes ([Proc]) — goroutines run under a cooperative scheduler,
//     in the style of SimPy. A process blocks with [Proc.Sleep],
//     [Queue.Get], [Event.Wait] and friends; exactly one process (or the
//     engine loop) runs at any instant, so process code needs no locking.
package sim

import "sort"

// Engine is the discrete-event scheduler: a virtual clock plus an ordered
// queue of future events. It is not safe for concurrent use; all
// interaction must happen from the driving goroutine or from within
// simulated processes.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	baton   chan struct{} // handed back to the engine when a proc parks
	rng     *Rand
	procs   map[*Proc]struct{}
	stopped bool
	panicV  any // panic propagated out of a process
	tracer  Tracer
	free    *event // recycled events, chained through event.next
}

// Time is virtual time: nanoseconds since the start of the simulation.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats t as seconds with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	return neg + formatSeconds(t)
}

func formatSeconds(t Time) string {
	secs := int64(t / Second)
	ms := int64(t%Second) / int64(Millisecond)
	return itoa(secs) + "." + pad3(ms) + "s"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func pad3(v int64) string {
	s := itoa(v)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}

// Tracer receives kernel-level trace callbacks. All methods may be nil-safe
// no-ops; it exists so experiments can observe scheduling without the
// kernel importing higher layers.
type Tracer interface {
	// Event is invoked before every executed event.
	Event(at Time, what string)
}

type event struct {
	at   Time
	seq  uint64
	what string
	fn   func()
	next *event // freelist link while recycled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		baton: make(chan struct{}),
		rng:   NewRand(seed),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// SetTracer installs a kernel tracer (may be nil to remove).
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// At schedules fn to run at virtual time t. Scheduling in the past (or at
// the current instant) runs the callback on the next scheduler step at the
// current time, preserving FIFO order among same-time events.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, "callback", fn)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

func (e *Engine) schedule(t Time, what string, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.free
	if ev == nil {
		ev = e.allocEvent()
	} else {
		e.free = ev.next
		ev.next = nil
	}
	ev.at, ev.seq, ev.what, ev.fn = t, e.seq, what, fn
	e.queue.push(ev)
}

// allocEvent services a freelist miss; steady state recycles the events
// Step retires, so fresh allocations happen only while the pending set
// is still growing.
//
//iocheck:cold
func (e *Engine) allocEvent() *event {
	return &event{}
}

// Pending reports the number of scheduled (not yet executed) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the next scheduled event, advancing the clock to its time.
// It reports false if no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	if e.tracer != nil {
		e.tracer.Event(ev.at, ev.what)
	}
	fn := ev.fn
	// Recycle before running: fn may itself schedule, and the retired
	// event must already be available for reuse.
	ev.fn, ev.what, ev.next = nil, "", e.free
	e.free = ev
	fn()
	if e.panicV != nil {
		v := e.panicV
		e.panicV = nil
		panic(v)
	}
	return true
}

// Run executes events until none remain. Processes blocked on queues or
// events that will never fire are left parked; use [Engine.Blocked] to
// inspect them.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Blocked returns the names of processes that are alive but currently
// parked (waiting on a queue, event, or resource). Useful in tests to
// assert clean shutdown.
func (e *Engine) Blocked() []string {
	var out []string
	for p := range e.procs {
		if p.parked && !p.done {
			out = append(out, p.name)
		}
	}
	sort.Strings(out)
	return out
}
