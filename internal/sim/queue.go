package sim

// Queue is a FIFO channel between simulated processes. A capacity of zero
// means unbounded; otherwise Put blocks while the queue is full. Closed
// queues reject Put and drain remaining items through Get.
type Queue[T any] struct {
	eng     *Engine
	cap     int // 0 = unbounded
	items   []T
	getters []waiterRef
	putters []*putWaiter[T]
	putFree []*putWaiter[T] // recycled put entries
	closed  bool
}

type putWaiter[T any] struct {
	waiter
	val T
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{eng: e, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Full reports whether a Put would block right now.
func (q *Queue[T]) Full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// Close marks the queue closed. Blocked getters receive zero values with
// ok=false once the buffer drains; blocked putters are woken with their
// puts rejected.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, pw := range q.putters {
		if !pw.cancelled {
			pw.woken = true
			pw.proc.wake("queue closed (putter)")
		}
	}
	q.putters = nil
	if len(q.items) == 0 {
		for _, g := range q.getters {
			if g.valid() && !g.w.cancelled {
				g.w.woken = true
				g.w.proc.wake("queue closed (getter)")
			}
		}
		q.getters = nil
	}
}

// TryPut appends v if the queue is open and not full, reporting success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || q.Full() {
		return false
	}
	q.deliver(v)
	return true
}

// Put appends v, blocking while the queue is full. It reports false if the
// queue was closed before the item could be enqueued.
func (q *Queue[T]) Put(p *Proc, v T) bool {
	if q.closed {
		return false
	}
	if !q.Full() {
		q.deliver(v)
		return true
	}
	pw := q.takePutWaiter(p, v)
	q.putters = append(q.putters, pw)
	p.park()
	ok := !q.closed || pw.delivered()
	q.recyclePutWaiter(pw)
	return ok
}

// takePutWaiter pops a recycled put entry (or allocates on a freelist
// miss) and arms it for this put. The entry is owned by the blocked Put
// until it resumes, which recycles it.
func (q *Queue[T]) takePutWaiter(p *Proc, v T) *putWaiter[T] {
	if n := len(q.putFree); n > 0 {
		pw := q.putFree[n-1]
		q.putFree[n-1] = nil
		q.putFree = q.putFree[:n-1]
		pw.waiter = waiter{proc: p}
		pw.val = v
		return pw
	}
	return q.allocPutWaiter(p, v)
}

//iocheck:cold
func (q *Queue[T]) allocPutWaiter(p *Proc, v T) *putWaiter[T] {
	return &putWaiter[T]{waiter: waiter{proc: p}, val: v}
}

func (q *Queue[T]) recyclePutWaiter(pw *putWaiter[T]) {
	var zero T
	pw.val = zero
	pw.waiter = waiter{}
	q.putFree = append(q.putFree, pw)
}

// delivered reports whether this putter's value made it into the queue: the
// dispatch path marks woken only when it consumes the value, while Close
// marks woken without consuming. We distinguish via cancelled==false &&
// value consumed, tracked by the n field (1 = delivered).
func (pw *putWaiter[T]) delivered() bool { return pw.n == 1 }

// deliver places v either directly into a waiting getter or the buffer.
func (q *Queue[T]) deliver(v T) {
	q.items = append(q.items, v)
	q.wakeGetters()
}

func (q *Queue[T]) wakeGetters() {
	for len(q.getters) > 0 && len(q.items) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		if !g.valid() || g.w.cancelled {
			continue
		}
		g.w.woken = true
		g.w.proc.wake("queue item")
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false if the queue closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for {
		if len(q.items) > 0 {
			return q.take(), true
		}
		if q.closed {
			return v, false
		}
		q.await(p)
	}
}

// await parks p as a getter until an item or close wakes it.
func (q *Queue[T]) await(p *Proc) {
	q.getters = append(q.getters, p.newWait(0))
	p.park()
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.take(), true
}

// GetTimeout is Get with a deadline d from now; ok is false on timeout or
// closed-and-drained. A non-positive d polls: it returns an available item
// or fails immediately without scheduling a timer (callers often compute
// deadline-Now(), which can go to zero or below).
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (v T, ok bool) {
	if len(q.items) > 0 {
		return q.take(), true
	}
	if q.closed || d <= 0 {
		return v, false
	}
	deadline := q.eng.now + d
	for {
		if q.awaitTimeout(p, deadline) {
			return v, false
		}
		if len(q.items) > 0 {
			return q.take(), true
		}
		if q.closed {
			return v, false
		}
		if q.eng.now >= deadline {
			return v, false
		}
	}
}

// awaitTimeout parks p as a getter with a deadline; it reports whether
// the timer (rather than an item or close) ended the wait. A stale timer
// from an earlier round finds its generation bumped and does nothing.
func (q *Queue[T]) awaitTimeout(p *Proc, deadline Time) bool {
	r := p.newWait(0)
	q.getters = append(q.getters, r)
	//iocheck:allow hotbox timer closures arm only on the blocking path, not per event
	q.eng.schedule(deadline, "queue get timeout", func() {
		if r.valid() && !r.w.woken {
			r.w.cancelled = true
			p.unpark()
		}
	})
	p.park()
	return r.w.cancelled
}

// RemoveWhere deletes buffered items matching pred, preserving order, and
// returns the number removed. Freed capacity admits blocked putters.
func (q *Queue[T]) RemoveWhere(pred func(T) bool) int {
	kept := q.items[:0]
	for _, v := range q.items {
		if !pred(v) {
			kept = append(kept, v)
		}
	}
	removed := len(q.items) - len(kept)
	var zero T
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = zero
	}
	q.items = kept
	if removed > 0 {
		q.admitPutters()
	}
	return removed
}

// Each visits every buffered item in queue order without removing any.
// Auditors (e.g. byte-conservation checks) use it to account for items
// still in flight at the end of a run.
func (q *Queue[T]) Each(fn func(T)) {
	for _, v := range q.items {
		fn(v)
	}
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

func (q *Queue[T]) take() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.admitPutters()
	if q.closed && len(q.items) == 0 {
		for _, g := range q.getters {
			if g.valid() && !g.w.cancelled {
				g.w.woken = true
				g.w.proc.wake("queue closed (getter)")
			}
		}
		q.getters = nil
	}
	return v
}

func (q *Queue[T]) admitPutters() {
	for len(q.putters) > 0 && !q.Full() {
		pw := q.putters[0]
		q.putters = q.putters[1:]
		if pw.cancelled {
			continue
		}
		//iocheck:allow hotalloc amortized growth of the queue's ring buffer, not per-event garbage
		q.items = append(q.items, pw.val)
		pw.n = 1 // delivered
		pw.woken = true
		pw.proc.wake("queue put admitted")
	}
	q.wakeGetters()
}
