package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(3*Second, func() { got = append(got, 3) })
	e.At(1*Second, func() { got = append(got, 1) })
	e.At(2*Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("final clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(5*Second, func() {
		e.At(1*Second, func() {
			ran = true
			if e.Now() != 5*Second {
				t.Errorf("past event ran at %v, want 5s", e.Now())
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(2*Second, func() {
		e.After(3*Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 5*Second {
		t.Fatalf("After fired at %v, want 5s", at)
	}
}

func TestRunUntilStopsAndSetsClock(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Time{Second, 2 * Second, 10 * Second} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 5*Second {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var stamps []Time
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Second)
			stamps = append(stamps, p.Now())
		}
	})
	e.Run()
	want := []Time{10 * Second, 20 * Second, 30 * Second}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	mk := func(name string, period Time) {
		e.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 2*Second)
	mk("b", 3*Second)
	e.Run()
	// a wakes at 2,4,6; b wakes at 3,6,9. At t=6 b's wake event was
	// scheduled earlier (t=3 vs t=4) so FIFO ordering runs b first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcJoin(t *testing.T) {
	e := NewEngine(1)
	child := e.Go("child", func(p *Proc) { p.Sleep(5 * Second) })
	var joinedAt Time = -1
	e.Go("parent", func(p *Proc) {
		p.Join(child)
		joinedAt = p.Now()
	})
	e.Run()
	if joinedAt != 5*Second {
		t.Fatalf("joined at %v, want 5s", joinedAt)
	}
	// Joining a finished proc returns immediately.
	done := false
	e.Go("late", func(p *Proc) {
		p.Join(child)
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("late join did not return")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Go("boom", func(p *Proc) {
		p.Sleep(Second)
		panic("kaboom")
	})
	defer func() {
		if v := recover(); v != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", v)
		}
	}()
	e.Run()
	t.Fatal("expected panic")
}

func TestEventBroadcast(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("waiter", func(p *Proc) {
			ev.Wait(p)
			woke++
			if p.Now() != 7*Second {
				t.Errorf("woke at %v, want 7s", p.Now())
			}
		})
	}
	e.At(7*Second, ev.Fire)
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	ev.Fire()
	ok := false
	e.Go("late", func(p *Proc) {
		ev.Wait(p)
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("wait on fired event blocked")
	}
}

func TestEventWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	ev := NewEvent(e)
	var gotFired, gotTimedOut bool
	e.Go("timeout", func(p *Proc) {
		gotTimedOut = !ev.WaitTimeout(p, 2*Second)
	})
	e.Go("fired", func(p *Proc) {
		gotFired = ev.WaitTimeout(p, 20*Second)
	})
	e.At(10*Second, ev.Fire)
	e.Run()
	if !gotTimedOut {
		t.Fatal("short wait should have timed out")
	}
	if !gotFired {
		t.Fatal("long wait should have seen the fire")
	}
}

// A non-positive deadline on WaitTimeout is a poll: true iff the event has
// already fired, never parking the caller or scheduling a timer.
func TestEventWaitTimeoutNonPositive(t *testing.T) {
	e := NewEngine(1)
	unfired := NewEvent(e)
	fired := NewEvent(e)
	fired.Fire()
	var a, b, c bool
	e.Go("poller", func(p *Proc) {
		a = unfired.WaitTimeout(p, 0)
		b = unfired.WaitTimeout(p, -5*Second)
		c = fired.WaitTimeout(p, 0)
	})
	e.Run()
	if a || b {
		t.Fatal("poll of unfired event reported fired")
	}
	if !c {
		t.Fatal("poll of fired event reported unfired")
	}
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("poll advanced time (%v) or left timers (%d)", e.Now(), e.Pending())
	}
}

func TestResourceAcquireRelease(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	var order []string
	worker := func(name string, hold Time) {
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	worker("a", 10*Second)
	worker("b", 10*Second)
	worker("c", 10*Second) // must wait for a or b
	e.Run()
	if r.InUse() != 0 {
		t.Fatalf("in use = %d after run", r.InUse())
	}
	if order[0] != "a+" || order[1] != "b+" {
		t.Fatalf("order = %v", order)
	}
	// c acquires only after a release.
	for i, s := range order {
		if s == "c+" {
			found := false
			for _, prev := range order[:i] {
				if prev == "a-" || prev == "b-" {
					found = true
				}
			}
			if !found {
				t.Fatalf("c acquired before any release: %v", order)
			}
		}
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	r.TryAcquire(1)
	var got []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			got = append(got, name)
			r.Release(1)
		})
	}
	e.At(Second, func() { r.Release(1) })
	e.Run()
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

func TestResourceGrow(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 0)
	acquired := false
	e.Go("w", func(p *Proc) {
		r.Acquire(p, 3)
		acquired = true
	})
	e.At(Second, func() { r.Grow(2) })
	e.At(2*Second, func() { r.Grow(1) })
	e.Run()
	if !acquired {
		t.Fatal("grow did not satisfy waiter")
	}
	if r.Capacity() != 3 || r.InUse() != 3 {
		t.Fatalf("cap=%d inuse=%d", r.Capacity(), r.InUse())
	}
}

func TestResourceReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release(1)
}

func TestBlockedReporting(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	e.Go("stuck", func(p *Proc) { q.Get(p) })
	e.Run()
	blocked := e.Blocked()
	if len(blocked) != 1 || blocked[0] != "stuck" {
		t.Fatalf("Blocked() = %v", blocked)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var stamps []Time
		for i := 0; i < 4; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(e.Rand().Uniform(Second, 10*Second))
					stamps = append(stamps, p.Now())
				}
			})
		}
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0.000s"},
		{1500 * Millisecond, "1.500s"},
		{-2 * Second, "-2.000s"},
		{Minute + 50*Millisecond, "60.050s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2*Second + 500*Millisecond).Seconds() != 2.5 {
		t.Fatal("Seconds conversion wrong")
	}
	if (3 * Millisecond).Milliseconds() != 3 {
		t.Fatal("Milliseconds conversion wrong")
	}
}

// Property: the event heap always pops in nondecreasing time order with
// FIFO tie-breaking, for arbitrary insertion orders.
func TestEventHeapOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 200 {
			times = times[:200]
		}
		e := NewEngine(1)
		var got []Time
		for _, ti := range times {
			at := Time(ti) * Millisecond
			e.At(at, func() { got = append(got, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandHelpers(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2*Second, 5*Second)
		if v < 2*Second || v > 5*Second {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if r.Uniform(3*Second, 3*Second) != 3*Second {
		t.Fatal("degenerate Uniform should return lo")
	}
	for i := 0; i < 1000; i++ {
		v := r.Jitter(10*Second, 0.1)
		if v < 9*Second || v > 11*Second {
			t.Fatalf("Jitter out of range: %v", v)
		}
	}
	if r.Normal(0, 0) != 0 {
		t.Fatal("Normal(0,0) should be 0")
	}
	for i := 0; i < 100; i++ {
		if r.Normal(Second, 10*Second) < 0 {
			t.Fatal("Normal should truncate at 0")
		}
		if r.Exp(Second) < 0 {
			t.Fatal("Exp should be nonnegative")
		}
	}
	// Jitter clamps frac.
	if v := r.Jitter(Second, 5); v < 0 || v > 2*Second {
		t.Fatalf("clamped Jitter out of range: %v", v)
	}
}
