package txn

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func runTxn(t *testing.T, cfg Config, withMachine bool) (*Transaction, Stats) {
	t.Helper()
	eng := sim.NewEngine(17)
	var mach *cluster.Machine
	if withMachine {
		mc := cluster.RedSky()
		mc.Nodes = 512
		mach = cluster.New(eng, mc)
	}
	tx, err := New(eng, mach, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	eng.Go("driver", func(p *sim.Proc) { st = tx.Run(p) })
	eng.Run()
	return tx, st
}

func TestCommitAllHealthy(t *testing.T) {
	tx, st := runTxn(t, Config{Writers: 64, Readers: 4}, true)
	if st.Outcome != Committed {
		t.Fatalf("outcome %v", st.Outcome)
	}
	if st.Decided != 68 {
		t.Fatalf("decided %d, want 68", st.Decided)
	}
	for rank, o := range tx.Outcomes() {
		if o != Committed {
			t.Fatalf("rank %d decided %v", rank, o)
		}
	}
	if st.Duration <= 0 || st.Messages == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAbortVotePropagates(t *testing.T) {
	tx, st := runTxn(t, Config{Writers: 32, Readers: 4,
		AbortVoters: map[int]bool{17: true}}, true)
	if st.Outcome != Aborted {
		t.Fatalf("outcome %v", st.Outcome)
	}
	for rank, o := range tx.Outcomes() {
		if o != Aborted {
			t.Fatalf("rank %d decided %v", rank, o)
		}
	}
}

func TestReaderSideAbort(t *testing.T) {
	// An abort vote on the reader side must cross the sub-coordinator
	// boundary.
	_, st := runTxn(t, Config{Writers: 16, Readers: 8,
		AbortVoters: map[int]bool{16 + 3: true}}, true)
	if st.Outcome != Aborted {
		t.Fatalf("outcome %v", st.Outcome)
	}
}

func TestSilentParticipantAborts(t *testing.T) {
	tx, st := runTxn(t, Config{Writers: 32, Readers: 4,
		SilentRanks: map[int]bool{9: true}, VoteTimeout: sim.Second}, true)
	if st.Outcome != Aborted {
		t.Fatalf("outcome %v", st.Outcome)
	}
	// The silent rank never decides; everyone else agrees.
	outcomes := tx.Outcomes()
	if _, ok := outcomes[9]; ok {
		t.Fatal("silent rank should not decide")
	}
	for _, o := range outcomes {
		if o != Aborted {
			t.Fatalf("inconsistent decision %v", o)
		}
	}
}

func TestSilentSubtreeStillCompletes(t *testing.T) {
	// A silent internal tree node orphans its whole subtree, yet the
	// transaction completes with a consistent abort for everyone who can
	// still hear the coordinator.
	tx, st := runTxn(t, Config{Writers: 64, Readers: 4,
		SilentRanks: map[int]bool{1: true}, // internal node (children 9..16)
		VoteTimeout: sim.Second}, true)
	if st.Outcome != Aborted {
		t.Fatalf("outcome %v", st.Outcome)
	}
	for _, o := range tx.Outcomes() {
		if o != Aborted {
			t.Fatal("inconsistent outcome")
		}
	}
}

func TestScalabilityTreeDepth(t *testing.T) {
	// Duration grows slowly (with tree depth), not linearly with writer
	// count — the paper's Fig. 6 scalability claim.
	var durations []sim.Time
	for _, w := range []int{64, 512, 4096} {
		_, st := runTxn(t, Config{Writers: w, Readers: 4}, true)
		if st.Outcome != Committed {
			t.Fatalf("writers=%d outcome %v", w, st.Outcome)
		}
		durations = append(durations, st.Duration)
	}
	if durations[2] <= durations[0] {
		t.Fatalf("durations should grow: %v", durations)
	}
	// 64x writer growth must cost far less than 8x duration.
	if float64(durations[2]) > 8*float64(durations[0]) {
		t.Fatalf("poor scalability: %v", durations)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := New(eng, nil, Config{Writers: 0, Readers: 1}); err == nil {
		t.Fatal("zero writers should fail")
	}
	if _, err := New(eng, nil, Config{Writers: 1, Readers: 0}); err == nil {
		t.Fatal("zero readers should fail")
	}
}

func TestOutcomeString(t *testing.T) {
	if Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("outcome strings wrong")
	}
}

func TestCostlessTransaction(t *testing.T) {
	// nil machine: protocol still completes with zero network cost.
	_, st := runTxn(t, Config{Writers: 8, Readers: 2}, false)
	if st.Outcome != Committed {
		t.Fatalf("outcome %v", st.Outcome)
	}
}

// Property: atomicity — under arbitrary abort/silent failure patterns,
// every participant that decides agrees with the coordinator's outcome,
// and an all-healthy subset commits.
func TestAtomicityProperty(t *testing.T) {
	f := func(seed int64, wRaw, rRaw uint8, failures []uint16) bool {
		w := int(wRaw%60) + 4
		r := int(rRaw%8) + 1
		cfg := Config{Writers: w, Readers: r, VoteTimeout: sim.Second,
			AbortVoters: map[int]bool{}, SilentRanks: map[int]bool{}}
		anyFailure := false
		for i, fr := range failures {
			if i >= 4 {
				break
			}
			rank := int(fr) % (w + r)
			if rank == 0 {
				continue // keep the global coordinator alive
			}
			anyFailure = true
			if fr%2 == 0 {
				cfg.AbortVoters[rank] = true
			} else {
				cfg.SilentRanks[rank] = true
			}
		}
		eng := sim.NewEngine(seed)
		tx, err := New(eng, nil, cfg)
		if err != nil {
			return false
		}
		var st Stats
		eng.Go("driver", func(p *sim.Proc) { st = tx.Run(p) })
		eng.Run()
		if anyFailure && st.Outcome != Aborted {
			return false
		}
		if !anyFailure && st.Outcome != Committed {
			return false
		}
		for _, o := range tx.Outcomes() {
			if o != st.Outcome {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
