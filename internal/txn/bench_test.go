package txn

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// BenchmarkTransaction measures one full commit at several writer scales
// (each iteration is a complete vote/decide/ack protocol run).
func BenchmarkTransaction(b *testing.B) {
	for _, writers := range []int{128, 1024, 4096} {
		writers := writers
		b.Run(itoa(writers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(int64(i))
				mc := cluster.RedSky()
				mach := cluster.New(eng, mc)
				tx, err := New(eng, mach, Config{Writers: writers, Readers: writers / 128})
				if err != nil {
					b.Fatal(err)
				}
				var st Stats
				eng.Go("driver", func(p *sim.Proc) { st = tx.Run(p) })
				eng.Run()
				if st.Outcome != Committed {
					b.Fatal("aborted")
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
