// Package txn implements doubly-distributed transactions (D2T) in the
// style the paper evaluates for resilient management operations (§III-A
// requirement (5), Fig. 6): a control action — such as moving a node from
// one container to another — must either complete everywhere or nowhere,
// even though both sides of the operation are themselves distributed
// (many writer processes, several reader/staging processes).
//
// The protocol is a two-phase commit with per-side sub-coordination: each
// side gathers votes up a k-ary tree to its sub-coordinator, the
// sub-coordinators agree, and the decision is broadcast back down with
// acknowledgment gathering to guarantee completion. Tree aggregation is
// what gives the "good scalability" the paper reports — the time to
// complete grows with tree depth (log of the participant count), not with
// the participant count itself.
//
// Failure injection (abort votes, silent participants) exercises the
// consistency guarantee: every responsive participant decides the same
// outcome.
package txn

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Outcome is a transaction's decision.
type Outcome int

// Transaction outcomes.
const (
	Committed Outcome = iota
	Aborted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if o == Committed {
		return "committed"
	}
	return "aborted"
}

// Config parameterizes one transaction.
type Config struct {
	// Writers and Readers are the participant counts on each side (the
	// paper's Fig. 6 sweeps writer:reader core ratios like 512:4).
	Writers, Readers int
	// FanOut is the sub-coordination tree arity (default 8).
	FanOut int
	// MsgBytes sizes each protocol message (default 256).
	MsgBytes int64
	// WorkTime is each participant's local work before voting (default
	// 1 ms; the protocol overhead is measured around it).
	WorkTime sim.Time
	// VoteTimeout bounds how long a parent waits for a child's vote
	// before presuming failure and aborting (default 5 s).
	VoteTimeout sim.Time
	// AbortVoters vote abort; SilentRanks never respond (failure
	// injection). Ranks are global: writers first, then readers.
	AbortVoters map[int]bool
	SilentRanks map[int]bool
	// Tracer, when set, wraps the run in a "txn" span chained to
	// TraceParent (0 = root).
	Tracer      *trace.Recorder
	TraceParent trace.SpanID
}

func (c Config) withDefaults() Config {
	if c.FanOut <= 0 {
		c.FanOut = 8
	}
	if c.MsgBytes <= 0 {
		c.MsgBytes = 256
	}
	if c.WorkTime <= 0 {
		c.WorkTime = sim.Millisecond
	}
	if c.VoteTimeout <= 0 {
		c.VoteTimeout = 5 * sim.Second
	}
	return c
}

// Stats reports a completed transaction.
type Stats struct {
	Outcome  Outcome
	Duration sim.Time
	// Messages counts protocol messages exchanged.
	Messages int64
	// Decided counts participants that reached a decision (responsive
	// participants).
	Decided int
	// Depth is the deeper of the two sub-coordination trees.
	Depth int
}

type msgKind int

const (
	msgVote msgKind = iota
	msgDecision
	msgAck
)

type message struct {
	kind msgKind
	from int
	// commit is the vote or decision payload.
	commit bool
}

type participant struct {
	rank     int
	node     int
	writer   bool
	parent   *participant
	children []*participant
	inbox    *sim.Queue[message]
	decision Outcome
	decided  bool
	silent   bool
	abort    bool
}

// Transaction is a single runnable D2T instance.
type Transaction struct {
	eng    *sim.Engine
	mach   *cluster.Machine
	cfg    Config
	parts  []*participant
	wRoot  *participant // writer-side sub-coordinator (global coordinator)
	rRoot  *participant // reader-side sub-coordinator
	msgs   int64
	doneEv *sim.Event
	stats  Stats
}

// New builds a transaction over the machine's nodes: writers are placed
// round-robin over the machine's cores (coresPerNode ranks per node),
// readers after them. mach may be nil for cost-free protocol tests.
func New(eng *sim.Engine, mach *cluster.Machine, cfg Config) (*Transaction, error) {
	cfg = cfg.withDefaults()
	if cfg.Writers < 1 || cfg.Readers < 1 {
		return nil, fmt.Errorf("txn: need at least one writer and one reader (got %d/%d)",
			cfg.Writers, cfg.Readers)
	}
	t := &Transaction{eng: eng, mach: mach, cfg: cfg, doneEv: sim.NewEvent(eng)}
	cores := 1
	nodes := 1
	if mach != nil {
		cores = mach.Config().CoresPerNode
		nodes = mach.Config().Nodes
	}
	total := cfg.Writers + cfg.Readers
	for rank := 0; rank < total; rank++ {
		p := &participant{
			rank:   rank,
			node:   (rank / cores) % nodes,
			writer: rank < cfg.Writers,
			inbox:  sim.NewQueue[message](eng, 0),
			silent: cfg.SilentRanks[rank],
			abort:  cfg.AbortVoters[rank],
		}
		t.parts = append(t.parts, p)
	}
	t.wRoot = t.buildTree(t.parts[:cfg.Writers])
	t.rRoot = t.buildTree(t.parts[cfg.Writers:])
	return t, nil
}

// buildTree links a group into a k-ary sub-coordination tree rooted at
// the group's first participant and returns the root.
func (t *Transaction) buildTree(group []*participant) *participant {
	k := t.cfg.FanOut
	for i, p := range group {
		if i == 0 {
			continue
		}
		parent := group[(i-1)/k]
		p.parent = parent
		parent.children = append(parent.children, p)
	}
	return group[0]
}

// depth returns the tree depth below p.
func depth(p *participant) int {
	d := 0
	for _, c := range p.children {
		if cd := depth(c) + 1; cd > d {
			d = cd
		}
	}
	return d
}

// send delivers a protocol message, charging the interconnect.
func (t *Transaction) send(p *sim.Proc, from, to *participant, m message) {
	if t.mach != nil && from.node != to.node {
		t.mach.Send(p, from.node, to.node, t.cfg.MsgBytes)
	}
	t.msgs++
	to.inbox.TryPut(m)
}

// Run executes the transaction to completion and returns its stats. It
// must be called from a simulated process.
func (t *Transaction) Run(p *sim.Proc) Stats {
	sp := t.cfg.Tracer.Begin(t.cfg.TraceParent, "txn", "run").
		AttrInt("writers", int64(t.cfg.Writers)).AttrInt("readers", int64(t.cfg.Readers))
	start := t.eng.Now()
	for _, part := range t.parts {
		part := part
		t.eng.Go(fmt.Sprintf("txn-rank-%d", part.rank), func(pp *sim.Proc) {
			t.runParticipant(pp, part)
		})
	}
	t.doneEv.Wait(p)
	t.stats.Duration = t.eng.Now() - start
	t.stats.Messages = t.msgs
	for _, part := range t.parts {
		if part.decided {
			t.stats.Decided++
		}
	}
	dw, dr := depth(t.wRoot), depth(t.rRoot)
	if dr > dw {
		t.stats.Depth = dr
	} else {
		t.stats.Depth = dw
	}
	sp.Attr("outcome", t.stats.Outcome.String()).
		AttrInt("messages", t.stats.Messages).End()
	return t.stats
}

func (t *Transaction) runParticipant(p *sim.Proc, part *participant) {
	// Phase 0: local work.
	p.Sleep(t.cfg.WorkTime)
	// Phase 1: gather children votes (sub-coordination).
	vote := !part.abort
	deadline := t.eng.Now() + t.cfg.VoteTimeout
	for range part.children {
		m, ok := part.inbox.GetTimeout(p, deadline-t.eng.Now())
		if !ok {
			vote = false // a child is presumed failed
			break
		}
		if m.kind != msgVote || !m.commit {
			vote = false
		}
	}
	if part.silent {
		// A silent participant neither votes nor acks; its parent times
		// out and the transaction aborts.
		return
	}
	switch {
	case part == t.wRoot:
		t.coordinate(p, vote)
	case part == t.rRoot:
		// Reader sub-coordinator forwards the side's vote to the global
		// coordinator and awaits the decision.
		t.send(p, part, t.wRoot, message{kind: msgVote, from: part.rank, commit: vote})
		t.awaitDecision(p, part)
	default:
		t.send(p, part, part.parent, message{kind: msgVote, from: part.rank, commit: vote})
		t.awaitDecision(p, part)
	}
}

// coordinate runs the global decision at the writer-side root: combine
// the writer-side vote with the reader-side sub-coordinator's vote, then
// broadcast and gather acks.
func (t *Transaction) coordinate(p *sim.Proc, writersVote bool) {
	part := t.wRoot
	decision := writersVote
	deadline := t.eng.Now() + t.cfg.VoteTimeout
	m, ok := part.inbox.GetTimeout(p, deadline-t.eng.Now())
	if !ok || m.kind != msgVote || !m.commit {
		decision = false
	}
	part.decided = true
	if decision {
		part.decision = Committed
	} else {
		part.decision = Aborted
	}
	t.stats.Outcome = part.decision
	// Phase 2: decision broadcast to both trees.
	for _, c := range part.children {
		t.send(p, part, c, message{kind: msgDecision, from: part.rank, commit: decision})
	}
	t.send(p, part, t.rRoot, message{kind: msgDecision, from: part.rank, commit: decision})
	// Phase 3: gather acks (children subtrees + reader side).
	expected := len(part.children) + 1
	ackDeadline := t.eng.Now() + t.cfg.VoteTimeout
	for i := 0; i < expected; i++ {
		if _, ok := part.inbox.GetTimeout(p, ackDeadline-t.eng.Now()); !ok {
			break // failed subtree; the decision stands regardless
		}
	}
	t.doneEv.Fire()
}

// awaitDecision receives the decision, relays it down, gathers subtree
// acks, and acks upward.
func (t *Transaction) awaitDecision(p *sim.Proc, part *participant) {
	deadline := t.eng.Now() + 2*t.cfg.VoteTimeout
	for {
		m, ok := part.inbox.GetTimeout(p, deadline-t.eng.Now())
		if !ok {
			return // orphaned (coordinator failed); undecided
		}
		if m.kind != msgDecision {
			continue // late vote from a slow child; ignore
		}
		part.decided = true
		if m.commit {
			part.decision = Committed
		} else {
			part.decision = Aborted
		}
		break
	}
	for _, c := range part.children {
		t.send(p, part, c, message{kind: msgDecision, from: part.rank, commit: part.decision == Committed})
	}
	ackDeadline := t.eng.Now() + t.cfg.VoteTimeout
	for range part.children {
		m, ok := part.inbox.GetTimeout(p, ackDeadline-t.eng.Now())
		if !ok {
			break
		}
		_ = m
	}
	up := part.parent
	if part == t.rRoot {
		up = t.wRoot
	}
	t.send(p, part, up, message{kind: msgAck, from: part.rank, commit: true})
}

// Outcomes returns each responsive participant's decision, keyed by rank.
func (t *Transaction) Outcomes() map[int]Outcome {
	out := make(map[int]Outcome)
	for _, p := range t.parts {
		if p.decided {
			out[p.rank] = p.decision
		}
	}
	return out
}
