// Package lammps is the molecular-dynamics workload surrogate standing in
// for the LAMMPS code the paper drives its pipelines with. It has two
// halves:
//
//   - a genuine (small-N) Lennard-Jones dynamics engine — FCC lattice
//     setup, velocity-Verlet integration with a cell-list force kernel,
//     notch-based crack seeding — used by the runnable examples and by
//     tests that keep the SmartPointer analytics honest; and
//
//   - a weak-scaling output model calibrated to the paper's Table II
//     (256 nodes → 8,819,989 atoms → 67 MB per output step, 512 →
//     17,639,979 → 134.6 MB, 1024 → 35,279,958 → 269.2 MB), which the
//     discrete-event experiments use to generate paper-scale output
//     without materializing terabytes.
package lammps

import (
	"math"

	"repro/internal/atoms"
)

// LJ holds Lennard-Jones parameters in reduced units.
type LJ struct {
	// Epsilon and Sigma are the well depth and length scale.
	Epsilon, Sigma float64
	// Cutoff is the interaction cutoff radius.
	Cutoff float64
}

// DefaultLJ returns the standard reduced-unit parameterization with the
// conventional 2.5σ cutoff.
func DefaultLJ() LJ { return LJ{Epsilon: 1, Sigma: 1, Cutoff: 2.5} }

// System is an integrable MD system.
type System struct {
	LJ    LJ
	Snap  *atoms.Snapshot
	Dt    float64
	force []atoms.Vec3
}

// NewSystem wraps a snapshot for integration with timestep dt.
func NewSystem(s *atoms.Snapshot, lj LJ, dt float64) *System {
	sys := &System{LJ: lj, Snap: s, Dt: dt, force: make([]atoms.Vec3, s.N())}
	sys.computeForces()
	return sys
}

// pairForce returns the magnitude factor f/r such that force = delta * f/r,
// and the pair potential energy, for squared distance r2.
func (sys *System) pairForce(r2 float64) (fOverR, pe float64) {
	s2 := sys.LJ.Sigma * sys.LJ.Sigma / r2
	s6 := s2 * s2 * s2
	s12 := s6 * s6
	pe = 4 * sys.LJ.Epsilon * (s12 - s6)
	fOverR = 24 * sys.LJ.Epsilon * (2*s12 - s6) / r2
	return
}

// computeForces fills sys.force using a cell list; it returns the total
// potential energy.
func (sys *System) computeForces() float64 {
	s := sys.Snap
	for i := range sys.force {
		sys.force[i] = atoms.Vec3{}
	}
	cl := atoms.NewCellList(s, sys.LJ.Cutoff)
	pe := 0.0
	for i := 0; i < s.N(); i++ {
		cl.ForNeighbors(i, func(j int, d2 float64) {
			if j <= i || d2 == 0 {
				return
			}
			f, e := sys.pairForce(d2)
			pe += e
			d := s.Box.Delta(s.Pos[i], s.Pos[j])
			// Force on i is -dU/dri: repulsive pushes i away from j.
			fi := d.Scale(-f)
			sys.force[i] = sys.force[i].Add(fi)
			sys.force[j] = sys.force[j].Sub(fi)
		})
	}
	return pe
}

// Step advances the system one velocity-Verlet timestep and returns the
// potential energy after the move.
func (sys *System) Step() float64 {
	s := sys.Snap
	dt := sys.Dt
	half := dt / 2
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(sys.force[i].Scale(half))
		s.Pos[i] = s.Box.Wrap(s.Pos[i].Add(s.Vel[i].Scale(dt)))
	}
	pe := sys.computeForces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(sys.force[i].Scale(half))
	}
	s.Step++
	return pe
}

// Run advances n steps.
func (sys *System) Run(n int) {
	for i := 0; i < n; i++ {
		sys.Step()
	}
}

// KineticEnergy returns the total kinetic energy (unit mass).
func (sys *System) KineticEnergy() float64 {
	ke := 0.0
	for _, v := range sys.Snap.Vel {
		ke += 0.5 * v.Dot(v)
	}
	return ke
}

// PotentialEnergy recomputes and returns the total potential energy.
func (sys *System) PotentialEnergy() float64 { return sys.computeForces() }

// TotalEnergy returns kinetic + potential energy.
func (sys *System) TotalEnergy() float64 {
	return sys.KineticEnergy() + sys.PotentialEnergy()
}

// Momentum returns the total momentum vector.
func (sys *System) Momentum() atoms.Vec3 {
	var m atoms.Vec3
	for _, v := range sys.Snap.Vel {
		m = m.Add(v)
	}
	return m
}

// Thermalize assigns random velocities at the given reduced temperature
// and removes center-of-mass drift. rand01 supplies uniform [0,1) values.
func (sys *System) Thermalize(temp float64, rand01 func() float64) {
	s := sys.Snap
	for i := range s.Vel {
		for k := 0; k < 3; k++ {
			// Box-Muller.
			u1, u2 := rand01(), rand01()
			if u1 < 1e-12 {
				u1 = 1e-12
			}
			s.Vel[i][k] = math.Sqrt(temp) * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		}
	}
	com := sys.Momentum().Scale(1 / float64(s.N()))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(com)
	}
}

// Notch removes the atoms inside a slab 0 ≤ x < width, fullness fraction
// of the box in y, seeding a crack tip: under strain the material fails
// from the notch, which is how the crack-formation events the pipeline
// reacts to are produced. It returns the number of atoms removed.
func Notch(s *atoms.Snapshot, width, yFraction float64) int {
	yLim := s.Box.L[1] * yFraction
	keepID := s.ID[:0]
	keepPos := s.Pos[:0]
	keepVel := s.Vel[:0]
	removed := 0
	for i := range s.Pos {
		if s.Pos[i][0] < width && s.Pos[i][1] < yLim {
			removed++
			continue
		}
		keepID = append(keepID, s.ID[i])
		keepPos = append(keepPos, s.Pos[i])
		keepVel = append(keepVel, s.Vel[i])
	}
	s.ID, s.Pos, s.Vel = keepID, keepPos, keepVel
	return removed
}

// ApplyStrain stretches the box (and affinely remaps positions) by factor
// (1+eps) along axis, the loading that drives crack growth.
func ApplyStrain(s *atoms.Snapshot, axis int, eps float64) {
	scale := 1 + eps
	s.Box.L[axis] *= scale
	for i := range s.Pos {
		s.Pos[i][axis] *= scale
	}
}
