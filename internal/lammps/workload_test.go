package lammps

import (
	"math"
	"testing"

	"repro/internal/adios"
	"repro/internal/bp"
	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/sim"
)

func TestTable2ExactRows(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	cases := []struct {
		nodes   int
		atoms   int64
		paperMB float64
	}{
		{256, 8819989, 67},
		{512, 17639979, 134.6},
		{1024, 35279958, 269.2},
	}
	for _, c := range cases {
		s := ScaleForNodes(c.nodes)
		if s.AtomCount != c.atoms {
			t.Fatalf("%d nodes: atoms %d, want %d", c.nodes, s.AtomCount, c.atoms)
		}
		// The 8 bytes/atom encoding reproduces the paper's MB column to
		// within rounding (the 256-node row is rounded to integer MB).
		if math.Abs(s.MB()-c.paperMB) > 0.5 {
			t.Fatalf("%d nodes: %.1f MB, paper says %.1f", c.nodes, s.MB(), c.paperMB)
		}
	}
}

func TestScaleInterpolation(t *testing.T) {
	s := ScaleForNodes(128)
	// Half of 256 nodes within density rounding.
	if s.AtomCount < 4400000 || s.AtomCount > 4420000 {
		t.Fatalf("128-node atoms %d", s.AtomCount)
	}
	if s.StepBytes != s.AtomCount*8 {
		t.Fatal("bytes/atom drifted")
	}
	if s.CheckpointBytes() != s.AtomCount*48 {
		t.Fatal("checkpoint sizing drifted")
	}
}

func TestWeakScalingMonotone(t *testing.T) {
	prev := int64(0)
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		s := ScaleForNodes(n)
		if s.StepBytes <= prev {
			t.Fatalf("output not monotone at %d nodes", n)
		}
		prev = s.StepBytes
	}
}

func runWorkload(t *testing.T, w Workload, withCkpt bool) (*datatap.Channel, []*bp.ProcessGroup, int) {
	t.Helper()
	eng := sim.NewEngine(13)
	cfg := cluster.Franklin()
	cfg.Nodes = 8
	mach := cluster.New(eng, cfg)
	io := adios.NewIO(eng, mach, adios.DefaultDisk())
	ch := datatap.NewChannel(eng, mach, "out", datatap.Config{HomeNode: 1})
	out := io.DeclareGroup("bonds")
	out.UseDataTap(ch.NewWriter(0))
	var ckpt *adios.Group
	if withCkpt {
		ckpt = io.DeclareGroup("checkpoint")
		ckpt.UseNull()
	}
	var frames []*bp.ProcessGroup
	emitted := 0
	r := ch.NewReader(1)
	eng.Go("lammps", func(p *sim.Proc) {
		n, err := w.Run(p, out, ckpt)
		if err != nil {
			t.Error(err)
		}
		emitted = n
		ch.Close()
	})
	eng.Go("reader", func(p *sim.Proc) {
		for {
			m, ok := r.Fetch(p)
			if !ok {
				return
			}
			frames = append(frames, m.Data.(*bp.ProcessGroup))
		}
	})
	eng.Run()
	return ch, frames, emitted
}

func TestWorkloadEmitsAtPeriod(t *testing.T) {
	w := DefaultWorkload(256, 4)
	ch, frames, emitted := runWorkload(t, w, false)
	if emitted != 4 || len(frames) != 4 {
		t.Fatalf("emitted %d, fetched %d", emitted, len(frames))
	}
	if ch.Stats().BytesPulled < 4*ScaleForNodes(256).StepBytes {
		t.Fatalf("pulled bytes %d below the modeled volume", ch.Stats().BytesPulled)
	}
	for i, f := range frames {
		if f.Timestep != int64(i) {
			t.Fatalf("frame order %d -> %d", i, f.Timestep)
		}
		if f.Attrs[AttrKind] != "output" {
			t.Fatalf("kind %q", f.Attrs[AttrKind])
		}
		if f.Attrs[AttrAtoms] != "8819989" {
			t.Fatalf("atoms attr %q", f.Attrs[AttrAtoms])
		}
		if f.Var("atoms") == nil {
			t.Fatal("atoms var missing")
		}
	}
}

func TestWorkloadCrackFlag(t *testing.T) {
	w := DefaultWorkload(256, 5)
	w.CrackStep = 3
	_, frames, _ := runWorkload(t, w, false)
	for i, f := range frames {
		want := i >= 3
		if got := f.Attrs[AttrCrack] == "true"; got != want {
			t.Fatalf("step %d crack=%v, want %v", i, got, want)
		}
	}
}

func TestWorkloadCheckpointCadence(t *testing.T) {
	eng := sim.NewEngine(13)
	io := adios.NewIO(eng, nil, adios.DefaultDisk())
	out := io.DeclareGroup("bonds")
	out.UseNull()
	ckpt := io.DeclareGroup("ckpt")
	ckpt.UseNull()
	w := DefaultWorkload(256, 6)
	w.CheckpointEvery = 2
	eng.Go("lammps", func(p *sim.Proc) {
		if _, err := w.Run(p, out, ckpt); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if ckpt.StepsWritten() != 3 {
		t.Fatalf("checkpoints %d, want 3", ckpt.StepsWritten())
	}
	if ckpt.BytesWritten() != 3*ScaleForNodes(256).CheckpointBytes() {
		t.Fatalf("checkpoint bytes %d", ckpt.BytesWritten())
	}
}

func TestWorkloadStopsWhenTransportCloses(t *testing.T) {
	eng := sim.NewEngine(13)
	io := adios.NewIO(eng, nil, adios.DefaultDisk())
	ch := datatap.NewChannel(eng, nil, "out", datatap.Config{})
	out := io.DeclareGroup("bonds")
	out.UseDataTap(ch.NewWriter(0))
	w := DefaultWorkload(256, 10)
	var emitted int
	eng.Go("lammps", func(p *sim.Proc) {
		n, err := w.Run(p, out, nil)
		if err != nil {
			t.Error(err)
		}
		emitted = n
	})
	eng.At(40*sim.Second, ch.Close) // closes after ~2 steps
	eng.Go("drain", func(p *sim.Proc) {
		r := ch.NewReader(0)
		for {
			if _, ok := r.Fetch(p); !ok {
				return
			}
		}
	})
	eng.Run()
	if emitted >= 10 || emitted < 1 {
		t.Fatalf("emitted %d; should stop early on close", emitted)
	}
}
