package lammps

import (
	"fmt"
	"math"

	"repro/internal/atoms"
)

// Temperature returns the instantaneous reduced temperature
// T = 2·KE / (3N) for unit-mass particles.
func (sys *System) Temperature() float64 {
	n := sys.Snap.N()
	if n == 0 {
		return 0
	}
	return 2 * sys.KineticEnergy() / (3 * float64(n))
}

// Rescale applies a velocity-rescaling thermostat step: velocities are
// scaled so the instantaneous temperature moves a fraction tau of the way
// toward target (tau=1 snaps exactly). It is the standard cheap NVT
// control for driving strained-crystal runs like the crack scenario.
func (sys *System) Rescale(target, tau float64) {
	cur := sys.Temperature()
	if cur <= 0 {
		return
	}
	if tau <= 0 || tau > 1 {
		tau = 1
	}
	want := cur + tau*(target-cur)
	if want < 0 {
		want = 0
	}
	f := math.Sqrt(want / cur)
	for i := range sys.Snap.Vel {
		sys.Snap.Vel[i] = sys.Snap.Vel[i].Scale(f)
	}
}

// RDF computes the radial distribution function g(r) of a snapshot up to
// rMax with the given number of bins, normalized against the ideal-gas
// expectation — the standard structural observable (solid snapshots show
// the FCC shell peaks; melts show liquid structure).
func RDF(s *atoms.Snapshot, rMax float64, bins int) (r []float64, g []float64, err error) {
	n := s.N()
	if n < 2 {
		return nil, nil, fmt.Errorf("lammps: RDF needs at least 2 atoms, have %d", n)
	}
	if bins < 1 || rMax <= 0 {
		return nil, nil, fmt.Errorf("lammps: bad RDF parameters rMax=%g bins=%d", rMax, bins)
	}
	half := math.Min(s.Box.L[0], math.Min(s.Box.L[1], s.Box.L[2])) / 2
	if rMax > half {
		return nil, nil, fmt.Errorf("lammps: rMax %g exceeds half the box (%g)", rMax, half)
	}
	counts := make([]float64, bins)
	dr := rMax / float64(bins)
	cl := atoms.NewCellList(s, rMax)
	for i := 0; i < n; i++ {
		cl.ForNeighbors(i, func(j int, d2 float64) {
			if j <= i {
				return
			}
			d := math.Sqrt(d2)
			bin := int(d / dr)
			if bin < bins {
				counts[bin] += 2 // each pair contributes to both atoms
			}
		})
	}
	rho := float64(n) / s.Box.Volume()
	r = make([]float64, bins)
	g = make([]float64, bins)
	for b := 0; b < bins; b++ {
		rIn := float64(b) * dr
		rOut := rIn + dr
		shell := 4.0 / 3.0 * math.Pi * (rOut*rOut*rOut - rIn*rIn*rIn)
		ideal := rho * shell * float64(n)
		r[b] = rIn + dr/2
		if ideal > 0 {
			g[b] = counts[b] / ideal
		}
	}
	return r, g, nil
}

// MSD accumulates mean-squared displacement against a reference snapshot,
// matching atoms by index (the snapshots must share an atom ordering).
// Positions are compared through the minimum image, so it measures local
// displacement, not winding.
func MSD(ref, cur *atoms.Snapshot) (float64, error) {
	if ref.N() != cur.N() {
		return 0, fmt.Errorf("lammps: MSD atom count mismatch %d vs %d", ref.N(), cur.N())
	}
	if ref.N() == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range ref.Pos {
		sum += cur.Box.Dist2(ref.Pos[i], cur.Pos[i])
	}
	return sum / float64(ref.N()), nil
}
