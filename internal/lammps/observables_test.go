package lammps

import (
	"math"
	"testing"

	"repro/internal/atoms"
)

func TestTemperatureAndRescale(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.2, newRand01(5))
	if temp := sys.Temperature(); temp < 0.1 || temp > 0.3 {
		t.Fatalf("temperature %g", temp)
	}
	sys.Rescale(0.05, 1)
	if temp := sys.Temperature(); math.Abs(temp-0.05) > 1e-9 {
		t.Fatalf("rescaled temperature %g, want 0.05", temp)
	}
	// Partial coupling moves halfway.
	sys.Rescale(0.15, 0.5)
	if temp := sys.Temperature(); math.Abs(temp-0.10) > 1e-9 {
		t.Fatalf("tau=0.5 temperature %g, want 0.10", temp)
	}
	// Rescaling a frozen system is a no-op, not a crash.
	frozen := smallCrystal()
	frozen.Rescale(1.0, 1)
	if frozen.Temperature() != 0 {
		t.Fatal("frozen system gained energy from nothing")
	}
}

func TestRescaleKeepsMomentumZero(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.2, newRand01(6))
	sys.Rescale(0.1, 1)
	if m := sys.Momentum(); m.Norm() > 1e-9 {
		t.Fatalf("rescale broke momentum: %v", m)
	}
}

func TestRDFCrystalShells(t *testing.T) {
	a := 1.5496
	s := atoms.FCCLattice(5, 5, 5, a)
	r, g, err := RDF(s, 2.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The first FCC shell at a/sqrt(2) must be a sharp peak; the gap
	// before it must be empty.
	first := a / math.Sqrt2
	var peakVal, gapVal float64
	for i := range r {
		if math.Abs(r[i]-first) < 0.02 && g[i] > peakVal {
			peakVal = g[i]
		}
		if r[i] < first*0.8 && g[i] > gapVal {
			gapVal = g[i]
		}
	}
	if peakVal < 10 {
		t.Fatalf("first shell peak g=%g, expected sharp crystal peak", peakVal)
	}
	if gapVal != 0 {
		t.Fatalf("forbidden region populated: g=%g", gapVal)
	}
	// Second shell at a exists too.
	var second float64
	for i := range r {
		if math.Abs(r[i]-a) < 0.02 && g[i] > second {
			second = g[i]
		}
	}
	if second == 0 {
		t.Fatal("second shell missing")
	}
}

func TestRDFValidation(t *testing.T) {
	s := atoms.FCCLattice(3, 3, 3, 1.5)
	if _, _, err := RDF(s, 100, 10); err == nil {
		t.Fatal("rMax beyond half box should fail")
	}
	if _, _, err := RDF(s, 1, 0); err == nil {
		t.Fatal("zero bins should fail")
	}
	tiny := &atoms.Snapshot{Box: atoms.Box{L: atoms.Vec3{10, 10, 10}},
		ID: []int64{0}, Pos: make([]atoms.Vec3, 1), Vel: make([]atoms.Vec3, 1)}
	if _, _, err := RDF(tiny, 1, 10); err == nil {
		t.Fatal("single atom should fail")
	}
}

func TestMSDTracksMotion(t *testing.T) {
	a := 1.5496
	ref := atoms.FCCLattice(3, 3, 3, a)
	cur := ref.Clone()
	if msd, err := MSD(ref, cur); err != nil || msd != 0 {
		t.Fatalf("identical snapshots msd=%g err=%v", msd, err)
	}
	// Shift every atom by 0.1 in x: MSD = 0.01.
	for i := range cur.Pos {
		cur.Pos[i][0] += 0.1
	}
	msd, err := MSD(ref, cur)
	if err != nil || math.Abs(msd-0.01) > 1e-12 {
		t.Fatalf("msd %g, want 0.01", msd)
	}
	// Mismatched systems rejected.
	short := atoms.FCCLattice(2, 2, 2, a)
	if _, err := MSD(ref, short); err == nil {
		t.Fatal("count mismatch should fail")
	}
}

func TestCrystalStaysSolidAtLowTemperature(t *testing.T) {
	// Physics sanity: a cold LJ crystal under NVT control keeps its
	// atoms near their lattice sites over a short run.
	sys := smallCrystal()
	sys.Thermalize(0.05, newRand01(9))
	ref := sys.Snap.Clone()
	for i := 0; i < 10; i++ {
		sys.Run(20)
		sys.Rescale(0.05, 0.5)
	}
	msd, err := MSD(ref, sys.Snap)
	if err != nil {
		t.Fatal(err)
	}
	// Well below the Lindemann melting criterion (~0.01 a^2 scale).
	if msd > 0.05 {
		t.Fatalf("crystal melted at T=0.05: msd=%g", msd)
	}
	if sys.Temperature() > 0.1 {
		t.Fatalf("thermostat lost control: T=%g", sys.Temperature())
	}
}
