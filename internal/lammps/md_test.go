package lammps

import (
	"math"
	"testing"

	"repro/internal/atoms"
)

func smallCrystal() *System {
	// FCC at the LJ zero-pressure lattice constant ~1.5496 sigma. The box
	// must exceed twice the 2.5-sigma cutoff for minimum-image symmetry,
	// hence 4x4x4 cells (L = 6.2 sigma).
	s := atoms.FCCLattice(4, 4, 4, 1.5496)
	return NewSystem(s, DefaultLJ(), 0.002)
}

func TestForcesSumToZero(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.1, newRand01(1))
	sys.computeForces()
	var total atoms.Vec3
	for _, f := range sys.force {
		total = total.Add(f)
	}
	if total.Norm() > 1e-9 {
		t.Fatalf("net force %v, want ~0 (Newton's third law)", total)
	}
}

func TestLatticeIsNearEquilibrium(t *testing.T) {
	sys := smallCrystal()
	// In a perfect crystal at the equilibrium spacing every atom's net
	// force vanishes by symmetry.
	sys.computeForces()
	for i, f := range sys.force {
		if f.Norm() > 1e-8 {
			t.Fatalf("atom %d force %v in perfect lattice", i, f)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.05, newRand01(2))
	e0 := sys.TotalEnergy()
	sys.Run(200)
	e1 := sys.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 1e-3 {
		t.Fatalf("energy drift %.2e over 200 steps (E %.6f -> %.6f)", drift, e0, e1)
	}
}

func TestMomentumConservation(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.1, newRand01(3))
	if m := sys.Momentum(); m.Norm() > 1e-9 {
		t.Fatalf("thermalize left momentum %v", m)
	}
	sys.Run(100)
	if m := sys.Momentum(); m.Norm() > 1e-9 {
		t.Fatalf("momentum drifted to %v", m)
	}
}

func TestThermalizeSetsTemperature(t *testing.T) {
	sys := smallCrystal()
	sys.Thermalize(0.2, newRand01(4))
	// KE = (3N/2) T approximately (COM removal costs 3 DOF).
	n := sys.Snap.N()
	temp := 2 * sys.KineticEnergy() / (3 * float64(n))
	if temp < 0.1 || temp > 0.3 {
		t.Fatalf("temperature %.3f, want ~0.2", temp)
	}
}

func TestStepAdvancesCounter(t *testing.T) {
	sys := smallCrystal()
	if sys.Snap.Step != 0 {
		t.Fatal("initial step nonzero")
	}
	sys.Run(5)
	if sys.Snap.Step != 5 {
		t.Fatalf("step %d, want 5", sys.Snap.Step)
	}
}

func TestNotchRemovesSlabAtoms(t *testing.T) {
	s := atoms.FCCLattice(4, 4, 4, 1.5)
	n0 := s.N()
	removed := Notch(s, 1.5, 0.5)
	if removed == 0 {
		t.Fatal("notch removed nothing")
	}
	if s.N() != n0-removed {
		t.Fatalf("n %d, want %d", s.N(), n0-removed)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range s.Pos {
		if s.Pos[i][0] < 1.5 && s.Pos[i][1] < s.Box.L[1]*0.5 {
			t.Fatalf("atom %d survived inside the notch at %v", i, s.Pos[i])
		}
	}
}

func TestApplyStrainScalesBoxAndPositions(t *testing.T) {
	s := atoms.FCCLattice(2, 2, 2, 1.5)
	l0 := s.Box.L[1]
	x0 := s.Pos[5][1]
	ApplyStrain(s, 1, 0.1)
	if math.Abs(s.Box.L[1]-l0*1.1) > 1e-12 {
		t.Fatalf("box %g, want %g", s.Box.L[1], l0*1.1)
	}
	if math.Abs(s.Pos[5][1]-x0*1.1) > 1e-12 {
		t.Fatal("positions not remapped affinely")
	}
}

func TestStrainRaisesEnergy(t *testing.T) {
	s := atoms.FCCLattice(4, 4, 4, 1.5496)
	sys := NewSystem(s, DefaultLJ(), 0.002)
	e0 := sys.PotentialEnergy()
	ApplyStrain(s, 0, 0.05)
	e1 := sys.PotentialEnergy()
	if e1 <= e0 {
		t.Fatalf("strain should raise PE: %.4f -> %.4f", e0, e1)
	}
}

// newRand01 returns a deterministic uniform [0,1) source.
func newRand01(seed uint64) func() float64 {
	state := seed*2862933555777941757 + 3037000493
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}
