package lammps

import (
	"fmt"

	"repro/internal/adios"
	"repro/internal/sim"
)

// Scale relates a simulation's node count to its atom count and per-step
// output volume. The paper's Table II rows are reproduced exactly; other
// node counts use the same atoms-per-node density with the observed
// 8 bytes/atom output encoding.
type Scale struct {
	Nodes     int
	AtomCount int64
	StepBytes int64
}

// bytesPerAtom is the per-atom output size implied by Table II
// (e.g. 17,639,979 atoms → 134.6 MiB: 8 bytes/atom).
const bytesPerAtom = 8

// checkpointBytesPerAtom sizes checkpoint steps: full state (positions +
// velocities as doubles) rather than the reduced analysis output.
const checkpointBytesPerAtom = 48

// table2 holds the paper's exact weak-scaling rows.
var table2 = []Scale{
	{Nodes: 256, AtomCount: 8819989, StepBytes: 8819989 * bytesPerAtom},
	{Nodes: 512, AtomCount: 17639979, StepBytes: 17639979 * bytesPerAtom},
	{Nodes: 1024, AtomCount: 35279958, StepBytes: 35279958 * bytesPerAtom},
}

// Table2 returns the paper's weak-scaling rows (a copy).
func Table2() []Scale {
	return append([]Scale(nil), table2...)
}

// ScaleForNodes returns the workload scale for a node count, using the
// exact Table II row when one exists and the same per-node atom density
// otherwise.
func ScaleForNodes(nodes int) Scale {
	for _, s := range table2 {
		if s.Nodes == nodes {
			return s
		}
	}
	// Density from the 256-node row: 34453.08 atoms/node.
	atoms := int64(float64(nodes) * float64(table2[0].AtomCount) / float64(table2[0].Nodes))
	return Scale{Nodes: nodes, AtomCount: atoms, StepBytes: atoms * bytesPerAtom}
}

// CheckpointBytes returns the checkpoint output volume at this scale.
func (s Scale) CheckpointBytes() int64 { return s.AtomCount * checkpointBytesPerAtom }

// MB returns StepBytes in MiB, the unit Table II reports.
func (s Scale) MB() float64 { return float64(s.StepBytes) / (1 << 20) }

// Workload drives the simulated LAMMPS run: every OutputPeriod of virtual
// time, one output step's worth of bond data leaves through the ADIOS
// group. The paper's stress experiments use a 15 s output period
// ("more frequently than normal... to show capabilities even under
// stress").
type Workload struct {
	Scale Scale
	// OutputPeriod is the virtual time between output steps.
	OutputPeriod sim.Time
	// Steps is the number of output steps in the run.
	Steps int
	// CrackStep, when ≥ 0, is the output step at which crack formation
	// is first present in the data; subsequent steps carry the crack
	// flag, which shifts analytics load (and fires the pipeline's
	// dynamic branch).
	CrackStep int64
	// CheckpointEvery, when > 0, emits a full-state checkpoint through
	// the checkpoint group every k output steps.
	CheckpointEvery int
	// OnStep, when non-nil, runs just before each output step closes,
	// letting callers stamp extra attributes (e.g. pipeline birth
	// times).
	OnStep func(step int64, sw *adios.StepWriter)
}

// DefaultWorkload returns the configuration the paper's Figures 7–10 use:
// 15-second output cadence at the given node count.
func DefaultWorkload(nodes, steps int) Workload {
	return Workload{
		Scale:        ScaleForNodes(nodes),
		OutputPeriod: 15 * sim.Second,
		Steps:        steps,
		CrackStep:    -1,
	}
}

// Attrs keys carried on each output step.
const (
	// AttrAtoms is the atom count of the step (decimal string).
	AttrAtoms = "lammps.atoms"
	// AttrCrack is "true" once crack formation is present.
	AttrCrack = "lammps.crack"
	// AttrKind distinguishes "output" from "checkpoint" steps.
	AttrKind = "lammps.kind"
)

// Run executes the workload as a simulated process, writing Steps output
// steps through out (and optional checkpoints through ckpt, which may be
// nil). It stops early if the output group's transport rejects a step
// (downstream closed) and returns the number of steps emitted.
func (w Workload) Run(p *sim.Proc, out *adios.Group, ckpt *adios.Group) (int, error) {
	emitted := 0
	for step := 0; step < w.Steps; step++ {
		p.Sleep(w.OutputPeriod)
		sw, err := out.Open(int64(step))
		if err != nil {
			return emitted, err
		}
		// The descriptor variable analytics cost models read.
		if err := sw.WriteInt64s("atoms", []int64{w.Scale.AtomCount}); err != nil {
			return emitted, err
		}
		sw.PadBytes(w.Scale.StepBytes)
		sw.SetAttr(AttrAtoms, fmt.Sprintf("%d", w.Scale.AtomCount))
		sw.SetAttr(AttrKind, "output")
		if w.CrackStep >= 0 && int64(step) >= w.CrackStep {
			sw.SetAttr(AttrCrack, "true")
		}
		if w.OnStep != nil {
			w.OnStep(int64(step), sw)
		}
		ok, err := sw.Close(p)
		if err != nil {
			return emitted, err
		}
		if !ok {
			return emitted, nil
		}
		emitted++
		if ckpt != nil && w.CheckpointEvery > 0 && (step+1)%w.CheckpointEvery == 0 {
			cw, err := ckpt.Open(int64(step))
			if err != nil {
				return emitted, err
			}
			cw.PadBytes(w.Scale.CheckpointBytes())
			cw.SetAttr(AttrKind, "checkpoint")
			if w.OnStep != nil {
				w.OnStep(int64(step), cw)
			}
			if _, err := cw.Close(p); err != nil {
				return emitted, err
			}
		}
	}
	return emitted, nil
}
