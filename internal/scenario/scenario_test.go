package scenario

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

const fig7JSON = `{
  "simNodes": 256,
  "stagingNodes": 13,
  "steps": 20,
  "seed": 42,
  "policy": {"offlinePatience": 4}
}`

const customJSON = `{
  "simNodes": 64,
  "stagingNodes": 16,
  "outputPeriodSec": 10,
  "steps": 8,
  "seed": 7,
  "stages": [
    {"name": "ingest", "kind": "Helper", "model": "Tree", "nodes": 4,
     "outputFactor": 1.0, "essential": true, "minSize": 2},
    {"name": "flamefront", "kind": "Custom", "model": "RR", "nodes": 4,
     "outputFactor": 0.2,
     "cost": {"baseSec": 12, "refAtoms": 2204997, "exponentOverride": 1.5}},
    {"name": "track", "kind": "Custom", "model": "Serial", "nodes": 2,
     "outputFactor": 0.05,
     "cost": {"baseSec": 2}}
  ]
}`

func TestLoadDefaultPipeline(t *testing.T) {
	cfg, err := Load(strings.NewReader(fig7JSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SimNodes != 256 || cfg.StagingNodes != 13 || cfg.Steps != 20 {
		t.Fatalf("cfg %+v", cfg)
	}
	if cfg.CrackStep != -1 {
		t.Fatalf("crack step %d, want -1 default", cfg.CrackStep)
	}
	if cfg.Sizes["helper"] != 6 || cfg.Sizes["bonds"] != 2 {
		t.Fatalf("sizes %v", cfg.Sizes)
	}
	// And it actually runs, matching the Fig. 7 scenario.
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 20 {
		t.Fatalf("emitted %d", res.Emitted)
	}
}

func TestLoadCustomPipeline(t *testing.T) {
	cfg, err := Load(strings.NewReader(customJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Specs) != 3 {
		t.Fatalf("specs %d", len(cfg.Specs))
	}
	ff := cfg.Specs[1]
	if ff.Kind != smartpointer.KindCustom || ff.Model != smartpointer.ModelRR {
		t.Fatalf("flamefront spec %+v", ff)
	}
	if ff.Cost.Base != 12*sim.Second || ff.Cost.ExponentOverride != 1.5 {
		t.Fatalf("flamefront cost %+v", ff.Cost)
	}
	// Omitted refAtoms defaults sensibly.
	if cfg.Specs[2].Cost.RefAtoms == 0 {
		t.Fatal("refAtoms default missing")
	}
	if cfg.OutputPeriod != 10*sim.Second {
		t.Fatalf("period %v", cfg.OutputPeriod)
	}
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 8 || res.Exits == 0 {
		t.Fatalf("emitted=%d exits=%d", res.Emitted, res.Exits)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"simNodes": 1, "unknownField": true}`,
		`{"stages": [{"name": "x", "kind": "Nope", "model": "RR"}]}`,
		`{"stages": [{"name": "x", "kind": "Bonds", "model": "Warp"}]}`,
		`{"stages": [{"name": "x", "kind": "Custom", "model": "RR"}]}`, // no cost
		`{"stages": [{"name": "x", "kind": "Helper", "model": "RR",
		   "cost": {"baseSec": 1}}]}`, // Table I violation
		`not json`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if k, err := ParseKind("csym"); err != nil || k != smartpointer.KindCSym {
		t.Fatal("csym parse")
	}
	if m, err := ParseModel("round-robin"); err != nil || m != smartpointer.ModelRR {
		t.Fatal("rr alias parse")
	}
	if m, err := ParseModel("mpi"); err != nil || m != smartpointer.ModelParallel {
		t.Fatal("mpi alias parse")
	}
	if _, err := ParseKind(""); err == nil {
		t.Fatal("empty kind should fail")
	}
}

func TestExplicitCrackZero(t *testing.T) {
	cfg, err := Load(strings.NewReader(
		`{"simNodes": 64, "stagingNodes": 13, "steps": 4, "crackStep": 0, "explicitCrack": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CrackStep != 0 {
		t.Fatalf("crack step %d, want explicit 0", cfg.CrackStep)
	}
}

func TestAtomsOverride(t *testing.T) {
	cfg, err := Load(strings.NewReader(
		`{"simNodes": 64, "stagingNodes": 13, "steps": 4, "atomsOverride": 1000}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale.AtomCount != 1000 || cfg.Scale.StepBytes != 8000 {
		t.Fatalf("scale %+v", cfg.Scale)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/scenario.json"
	if err := writeFile(path, fig7JSON); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SimNodes != 256 {
		t.Fatal("file load mismatch")
	}
	if _, err := LoadFile(dir + "/missing.json"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestScenarioAdvancedKnobs(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"simNodes": 64, "stagingNodes": 14, "steps": 4, "seed": 1,
		"standbyGM": true, "spreadPlacement": true,
		"monitorSampleEverySec": 30, "monitorAggregateN": 4,
		"policy": {"killGMAtSec": 40}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.StandbyGM || !cfg.SpreadPlacement {
		t.Fatalf("bool knobs lost: %+v", cfg)
	}
	if cfg.MonitorSampleEvery != 30*sim.Second || cfg.MonitorAggregateN != 4 {
		t.Fatalf("monitor knobs lost: %+v", cfg)
	}
	if cfg.Policy.KillGMAt != 40*sim.Second {
		t.Fatalf("kill knob lost: %v", cfg.Policy.KillGMAt)
	}
	// And the whole thing still runs (failover included).
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFaultSchedule(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"simNodes": 64, "stagingNodes": 14, "steps": 4, "seed": 1,
		"policy": {"disableSelfHealing": true, "callTimeoutSec": 5, "callRetries": 1, "silencePatience": -1},
		"faults": {
			"seed": 9,
			"crashes": [{"stagingIndex": 3, "atSec": 30}, {"node": 2, "atSec": 40}],
			"links": [{"fromSec": 10, "untilSec": 20, "latencyFactor": 4, "slowdownFactor": 2}],
			"partitions": [{"fromSec": 5, "untilSec": 8, "nodes": [{"node": 1}, {"stagingIndex": 0}]}],
			"drops": [{"fromSec": 0, "untilSec": 60, "prob": 0.25}],
			"stalls": [{"stagingIndex": 1, "fromSec": 12, "untilSec": 18}]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	fc := cfg.Faults
	if fc == nil {
		t.Fatal("fault schedule lost")
	}
	if fc.Seed != 9 {
		t.Fatalf("fault seed %d", fc.Seed)
	}
	// Staging indexes resolve to simNodes+index; absolute IDs pass through.
	if len(fc.Crashes) != 2 || fc.Crashes[0].Node != 67 || fc.Crashes[1].Node != 2 {
		t.Fatalf("crashes %+v", fc.Crashes)
	}
	if fc.Crashes[0].At != 30*sim.Second {
		t.Fatalf("crash time %v", fc.Crashes[0].At)
	}
	if len(fc.Links) != 1 || fc.Links[0].LatencyFactor != 4 {
		t.Fatalf("links %+v", fc.Links)
	}
	if len(fc.Partitions) != 1 || fc.Partitions[0].Nodes[1] != 64 {
		t.Fatalf("partitions %+v", fc.Partitions)
	}
	if len(fc.Drops) != 1 || fc.Drops[0].Prob != 0.25 {
		t.Fatalf("drops %+v", fc.Drops)
	}
	if len(fc.Stalls) != 1 || fc.Stalls[0].Node != 65 {
		t.Fatalf("stalls %+v", fc.Stalls)
	}
	if !cfg.Policy.DisableSelfHealing || cfg.Policy.CallTimeout != 5*sim.Second ||
		cfg.Policy.CallRetries != 1 || cfg.Policy.SilencePatience != -1 {
		t.Fatalf("policy knobs lost: %+v", cfg.Policy)
	}
	// And the whole thing still runs.
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Invalid schedules are rejected at load time, not at build time.
	if _, err := Load(strings.NewReader(`{
		"simNodes": 64, "stagingNodes": 14,
		"faults": {"drops": [{"untilSec": 1, "prob": 1.5}]}
	}`)); err == nil {
		t.Fatal("invalid fault schedule accepted")
	}
}

func TestShippedScenarioFiles(t *testing.T) {
	for _, name := range []string{"fig7", "fig9", "failover", "checkpointed", "faults"} {
		cfg, err := LoadFile("../../scenarios/" + name + ".json")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rt, err := core.Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rt.Shutdown() // build-only smoke: the figures test full runs
	}
}

// Satellite: load errors must name the offending file and JSON field path.
func TestLoadErrorsNameFieldPath(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"type mismatch", `{"simNodes": "many"}`, `field "simNodes"`},
		{"syntax", `{"simNodes": 4,,}`, "invalid JSON at byte"},
		{"bad kind", `{"stages": [{"name": "x", "kind": "Nope", "model": "RR"}]}`,
			`field "stages[0].kind"`},
		{"bad model", `{"stages": [{"name": "a", "kind": "Bonds", "model": "RR"},
			{"name": "b", "kind": "Bonds", "model": "Warp"}]}`,
			`field "stages[1].model"`},
		{"missing cost", `{"stages": [{"name": "x", "kind": "Custom", "model": "RR"}]}`,
			`field "stages[0].cost"`},
		{"bad drop prob", `{"simNodes": 4, "stagingNodes": 1, "steps": 1,
			"faults": {"drops": [{"fromSec": 0, "untilSec": 1, "prob": 0.5},
			                     {"fromSec": 1, "untilSec": 2, "prob": 2}]}}`,
			`field "faults.drops[1].prob"`},
		{"empty link window", `{"simNodes": 4, "stagingNodes": 1, "steps": 1,
			"faults": {"links": [{"fromSec": 5, "untilSec": 5}]}}`,
			`field "faults.links[0]"`},
		{"empty stall window", `{"simNodes": 4, "stagingNodes": 1, "steps": 1,
			"faults": {"stalls": [{"node": 0, "fromSec": 3, "untilSec": 1}]}}`,
			`field "faults.stalls[0]"`},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestLoadFileErrorNamesFile(t *testing.T) {
	path := t.TempDir() + "/broken.json"
	if err := writeFile(path, `{"simNodes": "many"}`); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name file %q", err, path)
	}
	if !strings.Contains(err.Error(), `field "simNodes"`) {
		t.Fatalf("error %q does not name the field", err)
	}
}
