// Package scenario loads pipeline run configurations from JSON, the way
// the paper's global manager learns the pipeline structure and
// dependencies "through a configuration file" (§III-D). A scenario file
// describes the machine split, the stage graph with per-component compute
// models and cost curves (including custom, non-SmartPointer actions),
// the workload, and the management policy.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/datatap"
	"repro/internal/fault"
	"repro/internal/lammps"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// File is the JSON schema of a scenario.
type File struct {
	// SimNodes and StagingNodes partition the machine.
	SimNodes     int `json:"simNodes"`
	StagingNodes int `json:"stagingNodes"`
	// OutputPeriodSec is the simulation output cadence in (virtual)
	// seconds; 0 means the 15 s default.
	OutputPeriodSec float64 `json:"outputPeriodSec"`
	// Steps is the number of output steps.
	Steps int `json:"steps"`
	// CrackStep injects crack formation at that step (-1 = never; the
	// zero value also means never unless ExplicitCrack is set).
	CrackStep     int64 `json:"crackStep"`
	ExplicitCrack bool  `json:"explicitCrack"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// QueueCap bounds channel metadata queues.
	QueueCap int `json:"queueCap"`
	// CheckpointEvery/CheckpointNodes configure the checkpoint path.
	CheckpointEvery int `json:"checkpointEvery"`
	CheckpointNodes int `json:"checkpointNodes"`
	// AtomsOverride replaces the Table II scale derived from SimNodes.
	AtomsOverride int64 `json:"atomsOverride"`
	// StandbyGM deploys a standby global manager.
	StandbyGM bool `json:"standbyGM"`
	// SpreadPlacement interleaves container node assignment.
	SpreadPlacement bool `json:"spreadPlacement"`
	// MonitorSampleEverySec rate-limits monitoring reports.
	MonitorSampleEverySec float64 `json:"monitorSampleEverySec"`
	// MonitorAggregateN pre-aggregates monitoring reports.
	MonitorAggregateN int `json:"monitorAggregateN"`
	// Policy tunes the global manager.
	Policy Policy `json:"policy"`
	// Stages describes the pipeline (empty = the paper's default
	// four-stage SmartPointer pipeline with DefaultSizes).
	Stages []Stage `json:"stages"`
	// Delivery selects the data plane's delivery guarantee and tunes its
	// retry/spill machinery (nil = best-effort, the legacy semantics).
	Delivery *Delivery `json:"delivery,omitempty"`
	// Shards enables the sharded hierarchical control plane (nil or
	// count ≤ 1 = the legacy single global manager).
	Shards *ShardsSpec `json:"shards,omitempty"`
	// Subscribers attaches a streaming subscriber fleet — dashboards,
	// ad-hoc readers — to one stage channel's fan-out hub (nil = none).
	Subscribers *SubscribersSpec `json:"subscribers,omitempty"`
	// Faults schedules deterministic fault injection (nil = none).
	Faults *Faults `json:"faults"`
	// Chaos marks a chaos-search artifact (a shrunk regression emitted by
	// iochaos). The runtime ignores it; the regression replay harness
	// reads it to know which oracle the schedule must violate.
	Chaos *ChaosMeta `json:"chaos,omitempty"`
}

// ShardsSpec configures the sharded control plane: Count shard managers
// under one meta-manager, containers assigned by a consistent-hash ring
// seeded with Seed (0 = the scenario seed), and Standbys (0 or 1) standby
// managers per shard.
type ShardsSpec struct {
	Count    int   `json:"count"`
	Seed     int64 `json:"seed,omitempty"`
	Standbys int   `json:"standbys,omitempty"`
}

// SubscribersSpec configures the streaming fan-out fleet: Count
// subscribers on the Stage channel's hub, with read rates Zipf-distributed
// so a handful keep up at the live edge while a long tail lags into the
// spill tier.
type SubscribersSpec struct {
	Count int `json:"count"`
	// Stage indexes the stage whose input channel is fanned out (default
	// 0, the simulation's own output stream).
	Stage int `json:"stage,omitempty"`
	// BufCap / TailCap tune the hub buffers (0 = package defaults).
	BufCap  int `json:"bufCap,omitempty"`
	TailCap int `json:"tailCap,omitempty"`
	// DisableSpill turns the degrade tier off: lagging subscribers take
	// knowing drops instead of spill reads.
	DisableSpill bool `json:"disableSpill,omitempty"`
	// ZipfS is the read-rate Zipf exponent (0 = default 1.0): subscriber i
	// reads every baseInterval·(i+1)^zipfS.
	ZipfS float64 `json:"zipfS,omitempty"`
	// BaseIntervalSec is the fastest subscriber's read period (0 = 1 s).
	BaseIntervalSec float64 `json:"baseIntervalSec,omitempty"`
	// InjectCursorSkip seeds the deliberate conservation bug the chaos
	// smoke test uses to prove the sub-conservation oracle fires. Never
	// set outside tests.
	InjectCursorSkip int `json:"injectCursorSkip,omitempty"`
}

// toConfig validates the section; stage bounds are checked later at build
// time, when the pipeline's channel list exists.
func (s *SubscribersSpec) toConfig() (*core.SubscribersConfig, error) {
	if s.Count < 0 {
		return nil, fmt.Errorf("scenario: field %q: %d is negative", "subscribers.count", s.Count)
	}
	if s.Stage < 0 {
		return nil, fmt.Errorf("scenario: field %q: %d is negative", "subscribers.stage", s.Stage)
	}
	if s.BufCap < 0 {
		return nil, fmt.Errorf("scenario: field %q: %d is negative", "subscribers.bufCap", s.BufCap)
	}
	if s.TailCap < 0 {
		return nil, fmt.Errorf("scenario: field %q: %d is negative", "subscribers.tailCap", s.TailCap)
	}
	if s.ZipfS < 0 {
		return nil, fmt.Errorf("scenario: field %q: %g is negative", "subscribers.zipfS", s.ZipfS)
	}
	if s.BaseIntervalSec < 0 {
		return nil, fmt.Errorf("scenario: field %q: %g is negative", "subscribers.baseIntervalSec", s.BaseIntervalSec)
	}
	if s.InjectCursorSkip < 0 {
		return nil, fmt.Errorf("scenario: field %q: %d is negative", "subscribers.injectCursorSkip", s.InjectCursorSkip)
	}
	return &core.SubscribersConfig{
		Count:            s.Count,
		Stage:            s.Stage,
		BufCap:           s.BufCap,
		TailCap:          s.TailCap,
		DisableSpill:     s.DisableSpill,
		ZipfS:            s.ZipfS,
		BaseInterval:     sim.Time(s.BaseIntervalSec * float64(sim.Second)),
		InjectCursorSkip: s.InjectCursorSkip,
	}, nil
}

// ChaosMeta is the provenance block iochaos stamps on emitted regression
// scenarios.
type ChaosMeta struct {
	// Seed is the chaos search seed that generated the schedule.
	Seed int64 `json:"seed"`
	// ExpectViolation names the oracle this schedule violates (empty =
	// the schedule is expected to pass all oracles).
	ExpectViolation string `json:"expectViolation"`
	// Note is a human-readable description of the failure.
	Note string `json:"note,omitempty"`
}

// Delivery is the JSON form of datatap.DeliveryConfig. All knobs are
// optional; zeroes take the package defaults.
type Delivery struct {
	// Mode is "best-effort" or "at-least-once".
	Mode string `json:"mode"`
	// PushRetries/PushBackoffSec bound the descriptor-push retry loop.
	PushRetries    int     `json:"pushRetries,omitempty"`
	PushBackoffSec float64 `json:"pushBackoffSec,omitempty"`
	// RedeliverDelaySec/RedeliverRetries tune the lost-step repair loop.
	RedeliverDelaySec float64 `json:"redeliverDelaySec,omitempty"`
	RedeliverRetries  int     `json:"redeliverRetries,omitempty"`
	// SpillQueueFrac is the metadata-queue fill fraction that triggers
	// spill-to-disk (0 = default 0.9; must be within (0,1]).
	SpillQueueFrac float64 `json:"spillQueueFrac,omitempty"`
	// RetainCap bounds the retained-unacked set per writer (0 = unbounded).
	RetainCap int `json:"retainCap,omitempty"`
	// DrainIntervalSec/DrainBurst pace spill reinjection.
	DrainIntervalSec float64 `json:"drainIntervalSec,omitempty"`
	DrainBurst       int     `json:"drainBurst,omitempty"`
}

// toConfig validates the section and converts it to datatap units. Each
// rejected field names its own JSON path, like the faults section.
func (d *Delivery) toConfig() (datatap.DeliveryConfig, error) {
	var dc datatap.DeliveryConfig
	switch d.Mode {
	case "", "best-effort":
		dc.Mode = datatap.DeliveryBestEffort
	case "at-least-once":
		dc.Mode = datatap.DeliveryAtLeastOnce
	default:
		return dc, fmt.Errorf("scenario: field %q: unknown mode %q (want \"best-effort\" or \"at-least-once\")",
			"delivery.mode", d.Mode)
	}
	if d.PushRetries < 0 {
		return dc, fmt.Errorf("scenario: field %q: %d is negative", "delivery.pushRetries", d.PushRetries)
	}
	if d.PushBackoffSec < 0 {
		return dc, fmt.Errorf("scenario: field %q: %g is negative", "delivery.pushBackoffSec", d.PushBackoffSec)
	}
	if d.RedeliverDelaySec < 0 {
		return dc, fmt.Errorf("scenario: field %q: %g is negative", "delivery.redeliverDelaySec", d.RedeliverDelaySec)
	}
	if d.RedeliverRetries < 0 {
		return dc, fmt.Errorf("scenario: field %q: %d is negative", "delivery.redeliverRetries", d.RedeliverRetries)
	}
	if d.SpillQueueFrac < 0 || d.SpillQueueFrac > 1 {
		return dc, fmt.Errorf("scenario: field %q: %g outside [0,1]", "delivery.spillQueueFrac", d.SpillQueueFrac)
	}
	if d.RetainCap < 0 {
		return dc, fmt.Errorf("scenario: field %q: %d is negative", "delivery.retainCap", d.RetainCap)
	}
	if d.DrainIntervalSec < 0 {
		return dc, fmt.Errorf("scenario: field %q: %g is negative", "delivery.drainIntervalSec", d.DrainIntervalSec)
	}
	if d.DrainBurst < 0 {
		return dc, fmt.Errorf("scenario: field %q: %d is negative", "delivery.drainBurst", d.DrainBurst)
	}
	sec := func(s float64) sim.Time { return sim.Time(s * float64(sim.Second)) }
	dc.PushRetries = d.PushRetries
	dc.PushBackoff = sec(d.PushBackoffSec)
	dc.RedeliverDelay = sec(d.RedeliverDelaySec)
	dc.RedeliverRetries = d.RedeliverRetries
	dc.SpillQueueFrac = d.SpillQueueFrac
	dc.RetainCap = d.RetainCap
	dc.DrainInterval = sec(d.DrainIntervalSec)
	dc.DrainBurst = d.DrainBurst
	return dc, nil
}

// Faults is the JSON fault schedule. Node references are either absolute
// machine IDs ("node") or staging-area indexes ("stagingIndex", resolved
// to simNodes+index so scenarios stay valid when the machine split
// changes).
type Faults struct {
	// Seed drives the drop-window randomness (0 = the scenario seed).
	Seed       int64            `json:"seed,omitempty"`
	Crashes    []CrashFault     `json:"crashes,omitempty"`
	Links      []LinkFault      `json:"links,omitempty"`
	Partitions []PartitionFault `json:"partitions,omitempty"`
	Drops      []DropFault      `json:"drops,omitempty"`
	DataDrops  []DropFault      `json:"dataDrops,omitempty"`
	Stalls     []StallFault     `json:"stalls,omitempty"`
	SubCrashes []SubCrashFault  `json:"subCrashes,omitempty"`
}

// NodeRef names one machine node, absolutely or staging-relative.
type NodeRef struct {
	Node         int  `json:"node,omitempty"`
	StagingIndex *int `json:"stagingIndex,omitempty"`
}

// resolve returns the absolute machine node ID.
func (r NodeRef) resolve(simNodes int) int {
	if r.StagingIndex != nil {
		return simNodes + *r.StagingIndex
	}
	return r.Node
}

// CrashFault fail-stops a node at a time.
type CrashFault struct {
	NodeRef
	AtSec float64 `json:"atSec"`
}

// LinkFault degrades every link inside a window.
type LinkFault struct {
	FromSec        float64 `json:"fromSec"`
	UntilSec       float64 `json:"untilSec"`
	LatencyFactor  float64 `json:"latencyFactor"`
	SlowdownFactor float64 `json:"slowdownFactor"`
}

// PartitionFault severs the named nodes from the rest inside a window.
type PartitionFault struct {
	FromSec  float64   `json:"fromSec"`
	UntilSec float64   `json:"untilSec"`
	Nodes    []NodeRef `json:"nodes"`
}

// DropFault drops control messages with a probability inside a window.
type DropFault struct {
	FromSec  float64 `json:"fromSec"`
	UntilSec float64 `json:"untilSec"`
	Prob     float64 `json:"prob"`
}

// StallFault freezes a node's replica inside a window.
type StallFault struct {
	NodeRef
	FromSec  float64 `json:"fromSec"`
	UntilSec float64 `json:"untilSec"`
}

// SubCrashFault kills the subscriber at Index at a time; with a reconnect
// time it comes back and catches up from its durable cursor (0 = never).
type SubCrashFault struct {
	Index          int     `json:"index"`
	AtSec          float64 `json:"atSec"`
	ReconnectAtSec float64 `json:"reconnectAtSec,omitempty"`
}

// toConfig resolves the schedule to machine node IDs. Each entry is
// validated with its JSON field path, so a bad faults entry names itself.
func (f *Faults) toConfig(simNodes int) (*fault.Config, error) {
	sec := func(s float64) sim.Time { return sim.Time(s * float64(sim.Second)) }
	fc := &fault.Config{Seed: f.Seed}
	for i, c := range f.Crashes {
		node := c.resolve(simNodes)
		if node < 0 {
			return nil, fmt.Errorf("scenario: field %q: resolved node %d is negative",
				fmt.Sprintf("faults.crashes[%d]", i), node)
		}
		fc.Crashes = append(fc.Crashes, fault.Crash{Node: node, At: sec(c.AtSec)})
	}
	for i, l := range f.Links {
		if l.UntilSec <= l.FromSec {
			return nil, fmt.Errorf("scenario: field %q: window [%gs,%gs) is empty",
				fmt.Sprintf("faults.links[%d]", i), l.FromSec, l.UntilSec)
		}
		fc.Links = append(fc.Links, fault.LinkFault{
			From: sec(l.FromSec), Until: sec(l.UntilSec),
			LatencyFactor: l.LatencyFactor, SlowdownFactor: l.SlowdownFactor})
	}
	for i, p := range f.Partitions {
		if p.UntilSec <= p.FromSec {
			return nil, fmt.Errorf("scenario: field %q: window [%gs,%gs) is empty",
				fmt.Sprintf("faults.partitions[%d]", i), p.FromSec, p.UntilSec)
		}
		part := fault.Partition{From: sec(p.FromSec), Until: sec(p.UntilSec)}
		for _, n := range p.Nodes {
			part.Nodes = append(part.Nodes, n.resolve(simNodes))
		}
		fc.Partitions = append(fc.Partitions, part)
	}
	for i, d := range f.Drops {
		if d.Prob < 0 || d.Prob > 1 {
			return nil, fmt.Errorf("scenario: field %q: probability %g outside [0,1]",
				fmt.Sprintf("faults.drops[%d].prob", i), d.Prob)
		}
		fc.Drops = append(fc.Drops, fault.DropWindow{
			From: sec(d.FromSec), Until: sec(d.UntilSec), Prob: d.Prob})
	}
	for i, d := range f.DataDrops {
		if d.Prob < 0 || d.Prob > 1 {
			return nil, fmt.Errorf("scenario: field %q: probability %g outside [0,1]",
				fmt.Sprintf("faults.dataDrops[%d].prob", i), d.Prob)
		}
		fc.DataDrops = append(fc.DataDrops, fault.DropWindow{
			From: sec(d.FromSec), Until: sec(d.UntilSec), Prob: d.Prob})
	}
	for i, s := range f.Stalls {
		if s.UntilSec <= s.FromSec {
			return nil, fmt.Errorf("scenario: field %q: window [%gs,%gs) is empty",
				fmt.Sprintf("faults.stalls[%d]", i), s.FromSec, s.UntilSec)
		}
		fc.Stalls = append(fc.Stalls, fault.Stall{
			Node: s.resolve(simNodes), From: sec(s.FromSec), Until: sec(s.UntilSec)})
	}
	for i, s := range f.SubCrashes {
		if s.Index < 0 {
			return nil, fmt.Errorf("scenario: field %q: %d is negative",
				fmt.Sprintf("faults.subCrashes[%d].index", i), s.Index)
		}
		if s.ReconnectAtSec != 0 && s.ReconnectAtSec <= s.AtSec {
			return nil, fmt.Errorf("scenario: field %q: reconnect %gs not after crash %gs",
				fmt.Sprintf("faults.subCrashes[%d]", i), s.ReconnectAtSec, s.AtSec)
		}
		fc.SubCrashes = append(fc.SubCrashes, fault.SubCrash{
			Index: s.Index, At: sec(s.AtSec), ReconnectAt: sec(s.ReconnectAtSec)})
	}
	if err := fc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: field \"faults\": %w", err)
	}
	return fc, nil
}

// Policy mirrors core.PolicyConfig in JSON-friendly units.
type Policy struct {
	IntervalSec         float64 `json:"intervalSec"`
	OfflinePatience     int     `json:"offlinePatience"`
	OfflineQueueLen     int     `json:"offlineQueueLen"`
	DisableManagement   bool    `json:"disableManagement"`
	DisableOffline      bool    `json:"disableOffline"`
	DisableStealing     bool    `json:"disableStealing"`
	TransactionalTrades bool    `json:"transactionalTrades"`
	KillGMAtSec         float64 `json:"killGMAtSec"`
	// DisableSelfHealing turns off the replica-restart protocol.
	DisableSelfHealing bool `json:"disableSelfHealing"`
	// CallTimeoutSec/CallRetries tune the control-round deadline and
	// retry budget (0 = defaults).
	CallTimeoutSec float64 `json:"callTimeoutSec"`
	CallRetries    int     `json:"callRetries"`
	// SilencePatience is how many policy intervals of monitoring silence
	// a container is allowed before the GM probes it with a liveness
	// query (0 = default 4, negative disables).
	SilencePatience int `json:"silencePatience"`
	// TradeVoteTimeoutSec bounds each D2T vote round inside a
	// transactional trade (0 = derived from the control-round timeout).
	TradeVoteTimeoutSec float64 `json:"tradeVoteTimeoutSec"`
	// DisableFencing restores the legacy, pre-epoch-fencing failover
	// (the split-brain chaos regressions reproduce under this).
	DisableFencing bool `json:"disableFencing"`
}

// Stage describes one pipeline component.
type Stage struct {
	Name string `json:"name"`
	// Kind is "Helper", "Bonds", "CSym", "CNA", or "Custom".
	Kind string `json:"kind"`
	// Model is "Serial", "RR", "Parallel", or "Tree".
	Model string `json:"model"`
	// Nodes is the initial container size.
	Nodes int `json:"nodes"`
	// OutputFactor scales output volume relative to input.
	OutputFactor float64 `json:"outputFactor"`
	Essential    bool    `json:"essential"`
	MinSize      int     `json:"minSize"`
	// ActivateOnCrack / DeactivateOnCrack wire the dynamic branch.
	ActivateOnCrack   bool `json:"activateOnCrack"`
	DeactivateOnCrack bool `json:"deactivateOnCrack"`
	// DiskOutput marks a stable-storage terminal stage; SLAPeriods
	// relaxes its deadline.
	DiskOutput bool `json:"diskOutput"`
	SLAPeriods int  `json:"slaPeriods"`
	// Cost overrides the default cost model (required for Custom).
	Cost *Cost `json:"cost,omitempty"`
}

// Cost is a JSON cost model.
type Cost struct {
	BaseSec          float64 `json:"baseSec"`
	RefAtoms         int64   `json:"refAtoms"`
	ParallelEff      float64 `json:"parallelEff"`
	CrackFactor      float64 `json:"crackFactor"`
	ExponentOverride float64 `json:"exponentOverride"`
}

// ParseKind maps a kind name to its enum value.
func ParseKind(s string) (smartpointer.Kind, error) {
	switch strings.ToLower(s) {
	case "helper":
		return smartpointer.KindHelper, nil
	case "bonds":
		return smartpointer.KindBonds, nil
	case "csym":
		return smartpointer.KindCSym, nil
	case "cna":
		return smartpointer.KindCNA, nil
	case "custom":
		return smartpointer.KindCustom, nil
	}
	return 0, fmt.Errorf("scenario: unknown kind %q", s)
}

// ParseModel maps a compute-model name to its enum value.
func ParseModel(s string) (smartpointer.ComputeModel, error) {
	switch strings.ToLower(s) {
	case "serial":
		return smartpointer.ModelSerial, nil
	case "rr", "roundrobin", "round-robin":
		return smartpointer.ModelRR, nil
	case "parallel", "mpi":
		return smartpointer.ModelParallel, nil
	case "tree":
		return smartpointer.ModelTree, nil
	}
	return 0, fmt.Errorf("scenario: unknown compute model %q", s)
}

// ToConfig converts the file to a runnable core.Config.
func (f *File) ToConfig() (core.Config, error) {
	cfg := core.Config{
		SimNodes:        f.SimNodes,
		StagingNodes:    f.StagingNodes,
		OutputPeriod:    sim.Time(f.OutputPeriodSec * float64(sim.Second)),
		Steps:           f.Steps,
		CrackStep:       -1,
		QueueCap:        f.QueueCap,
		Seed:            f.Seed,
		CheckpointEvery: f.CheckpointEvery,
		CheckpointNodes: f.CheckpointNodes,
		StandbyGM:       f.StandbyGM,
		SpreadPlacement: f.SpreadPlacement,
		MonitorSampleEvery: sim.Time(
			f.MonitorSampleEverySec * float64(sim.Second)),
		MonitorAggregateN: f.MonitorAggregateN,
		Policy: core.PolicyConfig{
			Interval:            sim.Time(f.Policy.IntervalSec * float64(sim.Second)),
			OfflinePatience:     f.Policy.OfflinePatience,
			OfflineQueueLen:     f.Policy.OfflineQueueLen,
			DisableManagement:   f.Policy.DisableManagement,
			DisableOffline:      f.Policy.DisableOffline,
			DisableStealing:     f.Policy.DisableStealing,
			TransactionalTrades: f.Policy.TransactionalTrades,
			KillGMAt:            sim.Time(f.Policy.KillGMAtSec * float64(sim.Second)),
			DisableSelfHealing:  f.Policy.DisableSelfHealing,
			CallTimeout:         sim.Time(f.Policy.CallTimeoutSec * float64(sim.Second)),
			CallRetries:         f.Policy.CallRetries,
			SilencePatience:     f.Policy.SilencePatience,
			TradeVoteTimeout: sim.Time(
				f.Policy.TradeVoteTimeoutSec * float64(sim.Second)),
			DisableFencing: f.Policy.DisableFencing,
		},
	}
	if f.Shards != nil {
		if f.Shards.Count < 0 {
			return cfg, fmt.Errorf("scenario: field %q: %d is negative",
				"shards.count", f.Shards.Count)
		}
		if f.Shards.Standbys < 0 || f.Shards.Standbys > 1 {
			return cfg, fmt.Errorf("scenario: field %q: %d outside [0,1]",
				"shards.standbys", f.Shards.Standbys)
		}
		cfg.Shards = f.Shards.Count
		cfg.ShardSeed = f.Shards.Seed
		cfg.ShardStandbys = f.Shards.Standbys
	}
	if f.Delivery != nil {
		dc, err := f.Delivery.toConfig()
		if err != nil {
			return cfg, err
		}
		cfg.Delivery = dc
	}
	if f.Subscribers != nil {
		sc, err := f.Subscribers.toConfig()
		if err != nil {
			return cfg, err
		}
		cfg.Subscribers = sc
	}
	if f.Faults != nil {
		fc, err := f.Faults.toConfig(f.SimNodes)
		if err != nil {
			return cfg, err
		}
		cfg.Faults = fc
	}
	if f.ExplicitCrack || f.CrackStep > 0 {
		cfg.CrackStep = f.CrackStep
	}
	if f.AtomsOverride > 0 {
		cfg.Scale = lammps.Scale{
			Nodes:     f.SimNodes,
			AtomCount: f.AtomsOverride,
			StepBytes: f.AtomsOverride * 8,
		}
	}
	if len(f.Stages) == 0 {
		cfg.Sizes = core.DefaultSizes(f.StagingNodes)
		return cfg, nil
	}
	defaults := smartpointer.DefaultCostModels()
	cfg.Sizes = map[string]int{}
	for i, st := range f.Stages {
		kind, err := ParseKind(st.Kind)
		if err != nil {
			return cfg, fmt.Errorf("scenario: field %q: unknown kind %q",
				fmt.Sprintf("stages[%d].kind", i), st.Kind)
		}
		model, err := ParseModel(st.Model)
		if err != nil {
			return cfg, fmt.Errorf("scenario: field %q: unknown compute model %q",
				fmt.Sprintf("stages[%d].model", i), st.Model)
		}
		spec := core.ComponentSpec{
			Name:              st.Name,
			Kind:              kind,
			Model:             model,
			OutputFactor:      st.OutputFactor,
			Essential:         st.Essential,
			MinSize:           st.MinSize,
			ActivateOnCrack:   st.ActivateOnCrack,
			DeactivateOnCrack: st.DeactivateOnCrack,
			DiskOutput:        st.DiskOutput,
			SLAPeriods:        st.SLAPeriods,
		}
		if st.Cost != nil {
			spec.Cost = smartpointer.CostModel{
				Kind:             kind,
				Base:             sim.Time(st.Cost.BaseSec * float64(sim.Second)),
				RefAtoms:         st.Cost.RefAtoms,
				ParallelEff:      st.Cost.ParallelEff,
				CrackFactor:      st.Cost.CrackFactor,
				ExponentOverride: st.Cost.ExponentOverride,
			}
			if spec.Cost.RefAtoms == 0 {
				spec.Cost.RefAtoms = lammps.ScaleForNodes(256).AtomCount
			}
		} else {
			cm, ok := defaults[kind]
			if !ok {
				return cfg, fmt.Errorf("scenario: field %q: stage %q (kind %s) needs an explicit cost model",
					fmt.Sprintf("stages[%d].cost", i), st.Name, st.Kind)
			}
			spec.Cost = cm
		}
		if err := spec.Validate(); err != nil {
			return cfg, fmt.Errorf("scenario: field %q: %w",
				fmt.Sprintf("stages[%d]", i), err)
		}
		cfg.Specs = append(cfg.Specs, spec)
		n := st.Nodes
		if n <= 0 {
			n = 1
		}
		cfg.Sizes[st.Name] = n
	}
	return cfg, nil
}

// describeDecodeError turns an encoding/json error into a message that names
// the offending field path (for type mismatches) or byte offset (for syntax
// errors), so a broken scenario file points at itself.
func describeDecodeError(err error) error {
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) {
		field := te.Field
		if field == "" {
			field = "(document root)"
		}
		return fmt.Errorf("scenario: field %q: cannot decode JSON %s into %s (byte %d)",
			field, te.Value, te.Type, te.Offset)
	}
	var se *json.SyntaxError
	if errors.As(err, &se) {
		return fmt.Errorf("scenario: invalid JSON at byte %d: %w", se.Offset, se)
	}
	return fmt.Errorf("scenario: %w", err)
}

// Read parses a scenario file from r without converting it, for harnesses
// (like the chaos search) that mutate the schedule before building a run.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, describeDecodeError(err)
	}
	return &f, nil
}

// ReadFile parses a scenario file from disk without converting it.
func ReadFile(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := Read(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Load parses a scenario from r.
func Load(r io.Reader) (core.Config, error) {
	f, err := Read(r)
	if err != nil {
		return core.Config{}, err
	}
	return f.ToConfig()
}

// LoadFile parses a scenario from a JSON file. Errors are prefixed with the
// file path so multi-scenario harnesses report which file is broken.
func LoadFile(path string) (core.Config, error) {
	f, err := ReadFile(path)
	if err != nil {
		return core.Config{}, err
	}
	cfg, err := f.ToConfig()
	if err != nil {
		return core.Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
