package atoms

import "math"

// CellList spatially hashes a snapshot so neighbor queries within a cutoff
// touch only adjacent cells — O(n) construction and O(1) expected
// neighbors per atom at liquid/solid densities.
type CellList struct {
	box    Box
	cutoff float64
	nc     [3]int     // cells per axis
	cw     [3]float64 // cell widths
	cells  [][]int32
	pos    []Vec3
}

// NewCellList indexes the snapshot's positions with the given cutoff.
// Each axis gets at least one cell; cells are never narrower than the
// cutoff unless the box itself is.
func NewCellList(s *Snapshot, cutoff float64) *CellList {
	cl := &CellList{box: s.Box, cutoff: cutoff, pos: s.Pos}
	for i := 0; i < 3; i++ {
		n := int(math.Floor(s.Box.L[i] / cutoff))
		if n < 1 {
			n = 1
		}
		cl.nc[i] = n
		cl.cw[i] = s.Box.L[i] / float64(n)
	}
	cl.cells = make([][]int32, cl.nc[0]*cl.nc[1]*cl.nc[2])
	for i, p := range s.Pos {
		idx := cl.cellIndex(s.Box.Wrap(p))
		cl.cells[idx] = append(cl.cells[idx], int32(i))
	}
	return cl
}

func (cl *CellList) cellCoord(p Vec3) (c [3]int) {
	for i := 0; i < 3; i++ {
		c[i] = int(p[i] / cl.cw[i])
		if c[i] >= cl.nc[i] {
			c[i] = cl.nc[i] - 1
		}
		if c[i] < 0 {
			c[i] = 0
		}
	}
	return
}

func (cl *CellList) cellIndex(p Vec3) int {
	c := cl.cellCoord(p)
	return (c[2]*cl.nc[1]+c[1])*cl.nc[0] + c[0]
}

// ForNeighbors invokes fn for every atom j within cutoff of atom i
// (j != i), passing the squared minimum-image distance.
func (cl *CellList) ForNeighbors(i int, fn func(j int, dist2 float64)) {
	pi := cl.box.Wrap(cl.pos[i])
	c := cl.cellCoord(pi)
	cut2 := cl.cutoff * cl.cutoff
	// Visit the 27 neighboring cells with periodic wraparound; when an
	// axis has fewer than 3 cells, avoid visiting the same cell twice.
	seen := make(map[int]bool, 27)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				cc := [3]int{
					mod(c[0]+dx, cl.nc[0]),
					mod(c[1]+dy, cl.nc[1]),
					mod(c[2]+dz, cl.nc[2]),
				}
				idx := (cc[2]*cl.nc[1]+cc[1])*cl.nc[0] + cc[0]
				if seen[idx] {
					continue
				}
				seen[idx] = true
				for _, j32 := range cl.cells[idx] {
					j := int(j32)
					if j == i {
						continue
					}
					d2 := cl.box.Dist2(cl.pos[i], cl.pos[j])
					if d2 <= cut2 {
						fn(j, d2)
					}
				}
			}
		}
	}
}

// Neighbors returns the indices within cutoff of atom i.
func (cl *CellList) Neighbors(i int) []int {
	var out []int
	cl.ForNeighbors(i, func(j int, _ float64) { out = append(out, j) })
	return out
}

// CountPairs returns the number of unordered pairs within the cutoff.
func (cl *CellList) CountPairs() int {
	n := 0
	for i := range cl.pos {
		cl.ForNeighbors(i, func(j int, _ float64) {
			if j > i {
				n++
			}
		})
	}
	return n
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
