package atoms

import "testing"

// BenchmarkCellListBuild measures spatial index construction on a
// 2048-atom crystal.
func BenchmarkCellListBuild(b *testing.B) {
	s := FCCLattice(8, 8, 8, 1.5496)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl := NewCellList(s, 1.32)
		if cl == nil {
			b.Fatal("nil cell list")
		}
	}
}

// BenchmarkNeighborQuery measures per-atom neighbor iteration.
func BenchmarkNeighborQuery(b *testing.B) {
	s := FCCLattice(8, 8, 8, 1.5496)
	cl := NewCellList(s, 1.32)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		cl.ForNeighbors(i%s.N(), func(int, float64) { n++ })
	}
	if n == 0 {
		b.Fatal("no neighbors")
	}
}

// BenchmarkMinimumImage measures the displacement kernel.
func BenchmarkMinimumImage(b *testing.B) {
	box := Box{L: Vec3{10, 11, 12}}
	a, c := Vec3{0.5, 1, 2}, Vec3{9.5, 10, 11}
	b.ReportAllocs()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += box.Dist2(a, c)
	}
	_ = sum
}
