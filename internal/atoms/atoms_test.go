package atoms

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("add/sub wrong")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("scale wrong")
	}
	if a.Dot(b) != 32 {
		t.Fatal("dot wrong")
	}
	if (Vec3{3, 4, 0}).Norm() != 5 {
		t.Fatal("norm wrong")
	}
}

func TestBoxWrap(t *testing.T) {
	b := Box{L: Vec3{10, 10, 10}}
	p := b.Wrap(Vec3{11, -1, 25})
	want := Vec3{1, 9, 5}
	for i := 0; i < 3; i++ {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("wrap %v, want %v", p, want)
		}
	}
}

func TestMinimumImage(t *testing.T) {
	b := Box{L: Vec3{10, 10, 10}}
	// Atoms at 0.5 and 9.5 on x are 1.0 apart through the boundary.
	d := b.Delta(Vec3{0.5, 0, 0}, Vec3{9.5, 0, 0})
	if math.Abs(d[0]+1) > 1e-12 {
		t.Fatalf("delta %v, want x=-1", d)
	}
	if math.Abs(b.Dist2(Vec3{0.5, 0, 0}, Vec3{9.5, 0, 0})-1) > 1e-12 {
		t.Fatal("dist2 wrong")
	}
}

// Property: minimum-image distance is symmetric, bounded by half-diagonal,
// and invariant under wrapping either argument.
func TestMinimumImageProperty(t *testing.T) {
	b := Box{L: Vec3{7, 9, 11}}
	f := func(ax, ay, az, cx, cy, cz float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		c := Vec3{clamp(cx), clamp(cy), clamp(cz)}
		d1, d2 := b.Dist2(a, c), b.Dist2(c, a)
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		maxD2 := (b.L[0]/2)*(b.L[0]/2) + (b.L[1]/2)*(b.L[1]/2) + (b.L[2]/2)*(b.L[2]/2)
		if d1 > maxD2+1e-9 {
			return false
		}
		return math.Abs(b.Dist2(b.Wrap(a), c)-d1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFCCLattice(t *testing.T) {
	s := FCCLattice(3, 3, 3, 1.5)
	if s.N() != 4*27 {
		t.Fatalf("n = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Box.L != (Vec3{4.5, 4.5, 4.5}) {
		t.Fatalf("box %v", s.Box.L)
	}
	// IDs unique and dense.
	seen := map[int64]bool{}
	for _, id := range s.ID {
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	// Nearest-neighbor distance in FCC is a/sqrt(2).
	want := 1.5 / math.Sqrt2
	minD := math.Inf(1)
	for i := 1; i < s.N(); i++ {
		d := math.Sqrt(s.Box.Dist2(s.Pos[0], s.Pos[i]))
		if d < minD {
			minD = d
		}
	}
	if math.Abs(minD-want) > 1e-9 {
		t.Fatalf("nearest neighbor %g, want %g", minD, want)
	}
	if s.Box.Volume() != 4.5*4.5*4.5 {
		t.Fatal("volume wrong")
	}
}

func TestSnapshotCloneIndependent(t *testing.T) {
	s := FCCLattice(2, 2, 2, 1)
	c := s.Clone()
	c.Pos[0][0] = 99
	c.ID[0] = 99
	if s.Pos[0][0] == 99 || s.ID[0] == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestValidateCatchesBadSnapshots(t *testing.T) {
	s := FCCLattice(1, 1, 1, 1)
	s.ID = s.ID[:2]
	if s.Validate() == nil {
		t.Fatal("length mismatch not caught")
	}
	s2 := FCCLattice(1, 1, 1, 1)
	s2.Box.L[1] = 0
	if s2.Validate() == nil {
		t.Fatal("bad box not caught")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	s := FCCLattice(2, 2, 2, 1.2)
	flat := s.FlattenPositions()
	if len(flat) != 3*s.N() {
		t.Fatalf("flat len %d", len(flat))
	}
	got, err := SnapshotFromFlat(7, s.Box, s.ID, flat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || got.N() != s.N() {
		t.Fatal("meta lost")
	}
	for i := range s.Pos {
		if got.Pos[i] != s.Pos[i] {
			t.Fatalf("pos %d mismatch", i)
		}
	}
	if _, err := SnapshotFromFlat(0, s.Box, s.ID, flat[:4]); err == nil {
		t.Fatal("bad flat length not caught")
	}
	if _, err := SnapshotFromFlat(0, s.Box, s.ID[:1], flat); err == nil {
		t.Fatal("id mismatch not caught")
	}
}

// brute force reference for neighbor queries.
func bruteNeighbors(s *Snapshot, i int, cutoff float64) map[int]bool {
	out := map[int]bool{}
	for j := range s.Pos {
		if j == i {
			continue
		}
		if s.Box.Dist2(s.Pos[i], s.Pos[j]) <= cutoff*cutoff {
			out[j] = true
		}
	}
	return out
}

func TestCellListMatchesBruteForce(t *testing.T) {
	s := FCCLattice(3, 3, 3, 1.5)
	for _, cutoff := range []float64{0.8, 1.1, 1.6, 2.3} {
		cl := NewCellList(s, cutoff)
		for i := 0; i < s.N(); i += 7 {
			want := bruteNeighbors(s, i, cutoff)
			got := map[int]bool{}
			cl.ForNeighbors(i, func(j int, d2 float64) {
				if d2 > cutoff*cutoff+1e-12 {
					t.Fatalf("neighbor beyond cutoff: %g", d2)
				}
				if got[j] {
					t.Fatalf("duplicate neighbor %d", j)
				}
				got[j] = true
			})
			if len(got) != len(want) {
				t.Fatalf("cutoff %g atom %d: got %d neighbors, want %d",
					cutoff, i, len(got), len(want))
			}
			for j := range want {
				if !got[j] {
					t.Fatalf("missing neighbor %d", j)
				}
			}
		}
	}
}

// Property: cell list equals brute force on random configurations.
func TestCellListProperty(t *testing.T) {
	f := func(seed int64, nRaw, cutRaw uint8) bool {
		n := int(nRaw%40) + 2
		cutoff := 0.5 + float64(cutRaw%30)/10 // 0.5 .. 3.4
		r := newDeterministic(seed)
		s := &Snapshot{Box: Box{L: Vec3{6, 7, 8}},
			ID: make([]int64, n), Pos: make([]Vec3, n), Vel: make([]Vec3, n)}
		for i := 0; i < n; i++ {
			s.ID[i] = int64(i)
			s.Pos[i] = Vec3{r() * 6, r() * 7, r() * 8}
		}
		cl := NewCellList(s, cutoff)
		for i := 0; i < n; i++ {
			want := bruteNeighbors(s, i, cutoff)
			got := map[int]bool{}
			cl.ForNeighbors(i, func(j int, _ float64) { got[j] = true })
			if len(got) != len(want) {
				return false
			}
			for j := range want {
				if !got[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newDeterministic returns a cheap deterministic [0,1) generator.
func newDeterministic(seed int64) func() float64 {
	state := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}

func TestCellListNeighborsAndPairs(t *testing.T) {
	s := FCCLattice(2, 2, 2, 1.5)
	cl := NewCellList(s, 1.1) // captures the 12 FCC nearest neighbors
	for i := 0; i < s.N(); i++ {
		if got := len(cl.Neighbors(i)); got != 12 {
			t.Fatalf("atom %d has %d neighbors, want 12", i, got)
		}
	}
	// 12 neighbors each, double counted: n*12/2 pairs.
	if got := cl.CountPairs(); got != s.N()*12/2 {
		t.Fatalf("pairs %d, want %d", got, s.N()*12/2)
	}
}

func TestCellListSmallBox(t *testing.T) {
	// Box smaller than cutoff: single cell per axis must still work.
	s := FCCLattice(1, 1, 1, 1.0)
	cl := NewCellList(s, 5.0)
	for i := 0; i < s.N(); i++ {
		if got := len(cl.Neighbors(i)); got != s.N()-1 {
			t.Fatalf("atom %d sees %d, want all %d", i, got, s.N()-1)
		}
	}
}
