// Package atoms holds the particle data structures shared by the LAMMPS
// workload surrogate and the SmartPointer analytics: snapshots of atomic
// positions in a periodic box, and a cell-list index for neighbor queries
// (the O(n) building block that keeps Bonds/CSym/CNA honest).
package atoms

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector.
type Vec3 [3]float64

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a[0] * s, a[1] * s, a[2] * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Box is an orthorhombic periodic simulation box with edge lengths L.
type Box struct {
	L Vec3
}

// Wrap maps a position into [0, L) on each periodic axis.
func (b Box) Wrap(p Vec3) Vec3 {
	for i := 0; i < 3; i++ {
		if b.L[i] <= 0 {
			continue
		}
		p[i] = math.Mod(p[i], b.L[i])
		if p[i] < 0 {
			p[i] += b.L[i]
		}
	}
	return p
}

// Delta returns the minimum-image displacement from a to b.
func (b Box) Delta(a, c Vec3) Vec3 {
	d := c.Sub(a)
	for i := 0; i < 3; i++ {
		if b.L[i] <= 0 {
			continue
		}
		d[i] -= b.L[i] * math.Round(d[i]/b.L[i])
	}
	return d
}

// Dist2 returns the squared minimum-image distance between a and c.
func (b Box) Dist2(a, c Vec3) float64 {
	d := b.Delta(a, c)
	return d.Dot(d)
}

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.L[0] * b.L[1] * b.L[2] }

// Snapshot is the state of a particle system at one timestep.
type Snapshot struct {
	Step int64
	Box  Box
	// ID holds stable per-atom identifiers.
	ID []int64
	// Pos and Vel are per-atom positions and velocities.
	Pos []Vec3
	Vel []Vec3
}

// N returns the atom count.
func (s *Snapshot) N() int { return len(s.Pos) }

// Clone returns a deep copy.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{Step: s.Step, Box: s.Box}
	c.ID = append([]int64(nil), s.ID...)
	c.Pos = append([]Vec3(nil), s.Pos...)
	c.Vel = append([]Vec3(nil), s.Vel...)
	return c
}

// Validate checks internal consistency.
func (s *Snapshot) Validate() error {
	if len(s.ID) != len(s.Pos) || len(s.Pos) != len(s.Vel) {
		return fmt.Errorf("atoms: inconsistent lengths id=%d pos=%d vel=%d",
			len(s.ID), len(s.Pos), len(s.Vel))
	}
	for i := 0; i < 3; i++ {
		if s.Box.L[i] <= 0 {
			return fmt.Errorf("atoms: non-positive box edge %d: %g", i, s.Box.L[i])
		}
	}
	return nil
}

// FCCLattice builds an FCC crystal of nx*ny*nz unit cells with lattice
// constant a, the standard starting configuration for LJ solids (4 atoms
// per cell).
func FCCLattice(nx, ny, nz int, a float64) *Snapshot {
	basis := []Vec3{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	n := 4 * nx * ny * nz
	s := &Snapshot{
		Box: Box{L: Vec3{float64(nx) * a, float64(ny) * a, float64(nz) * a}},
		ID:  make([]int64, 0, n),
		Pos: make([]Vec3, 0, n),
		Vel: make([]Vec3, n),
	}
	id := int64(0)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for _, b := range basis {
					p := Vec3{
						(float64(x) + b[0]) * a,
						(float64(y) + b[1]) * a,
						(float64(z) + b[2]) * a,
					}
					s.ID = append(s.ID, id)
					s.Pos = append(s.Pos, p)
					id++
				}
			}
		}
	}
	return s
}

// HCPLattice builds an HCP crystal in its orthohexagonal representation:
// nx*ny*nz cells of size (a, sqrt(3)a, c) with 4 atoms per cell, using the
// ideal axial ratio c/a = sqrt(8/3). Every atom has 12 nearest neighbors
// at distance a, which common-neighbor analysis classifies as HCP.
func HCPLattice(nx, ny, nz int, a float64) *Snapshot {
	c := a * math.Sqrt(8.0/3.0)
	ly := a * math.Sqrt(3)
	basis := []Vec3{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 5.0 / 6.0, 0.5},
		{0, 1.0 / 3.0, 0.5},
	}
	n := 4 * nx * ny * nz
	s := &Snapshot{
		Box: Box{L: Vec3{float64(nx) * a, float64(ny) * ly, float64(nz) * c}},
		ID:  make([]int64, 0, n),
		Pos: make([]Vec3, 0, n),
		Vel: make([]Vec3, n),
	}
	id := int64(0)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for _, b := range basis {
					p := Vec3{
						(float64(x) + b[0]) * a,
						(float64(y) + b[1]) * ly,
						(float64(z) + b[2]) * c,
					}
					s.ID = append(s.ID, id)
					s.Pos = append(s.Pos, p)
					id++
				}
			}
		}
	}
	return s
}

// FlattenPositions returns the positions as a flat []float64 of length
// 3N, the layout written through the ADIOS interface.
func (s *Snapshot) FlattenPositions() []float64 {
	out := make([]float64, 3*len(s.Pos))
	for i, p := range s.Pos {
		out[3*i] = p[0]
		out[3*i+1] = p[1]
		out[3*i+2] = p[2]
	}
	return out
}

// SnapshotFromFlat reconstructs positions from the flat layout.
func SnapshotFromFlat(step int64, box Box, ids []int64, flat []float64) (*Snapshot, error) {
	if len(flat)%3 != 0 {
		return nil, fmt.Errorf("atoms: flat length %d not divisible by 3", len(flat))
	}
	n := len(flat) / 3
	if len(ids) != n {
		return nil, fmt.Errorf("atoms: %d ids for %d positions", len(ids), n)
	}
	s := &Snapshot{Step: step, Box: box, ID: append([]int64(nil), ids...),
		Pos: make([]Vec3, n), Vel: make([]Vec3, n)}
	for i := 0; i < n; i++ {
		s.Pos[i] = Vec3{flat[3*i], flat[3*i+1], flat[3*i+2]}
	}
	return s, nil
}
