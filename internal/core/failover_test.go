package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/smartpointer"
)

func TestFailoverStandbyTakesOver(t *testing.T) {
	cfg := fig7Config()
	cfg.StandbyGM = true
	cfg.Policy.KillGMAt = 40 * sim.Second // before any management action
	res := runScenario(t, cfg)
	// The failover is on the record...
	if !hasAction(res, "failover", "global-manager") {
		t.Fatalf("no failover recorded: %v", res.Actions)
	}
	// ...and the standby completed the Fig. 7 management sequence the
	// primary never got to perform.
	if !hasAction(res, "decrease", "helper") || !hasAction(res, "increase", "bonds") {
		t.Fatalf("standby did not manage: %v", res.Actions)
	}
	if res.FinalSizes["bonds"] <= 2 {
		t.Fatalf("bottleneck never fixed: %v", res.FinalSizes)
	}
	if res.Emitted != 20 || res.Exits != 20 {
		t.Fatalf("run damaged: emitted=%d exits=%d", res.Emitted, res.Exits)
	}
	// Node conservation across the takeover.
	total := res.Spare
	for _, n := range res.FinalSizes {
		total += n
	}
	if total != cfg.StagingNodes {
		t.Fatalf("nodes %d != %d after failover", total, cfg.StagingNodes)
	}
	// The failover happens after the grace period, not instantly.
	for _, a := range res.Actions {
		if a.Kind == "failover" && a.T < 40*sim.Second {
			t.Fatalf("failover at %v, before the primary died", a.T)
		}
	}
}

func TestStandbyStaysQuietWhilePrimaryHealthy(t *testing.T) {
	cfg := fig7Config()
	cfg.StandbyGM = true // no kill: the primary stays up
	res := runScenario(t, cfg)
	if hasAction(res, "failover", "global-manager") {
		t.Fatalf("spurious failover: %v", res.Actions)
	}
	// The primary performed the usual management.
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("primary never managed: %v", res.Actions)
	}
}

func TestDeadGMWithoutStandbyLeavesBottleneck(t *testing.T) {
	cfg := fig7Config()
	cfg.Policy.KillGMAt = 40 * sim.Second
	res := runScenario(t, cfg)
	if len(res.Actions) != 0 {
		t.Fatalf("dead manager acted: %v", res.Actions)
	}
	if res.FinalSizes["bonds"] != 2 {
		t.Fatalf("bonds resized by a ghost: %v", res.FinalSizes)
	}
}

func TestFailoverDuringOverloadStillOfflines(t *testing.T) {
	// The harsher scenario: the primary dies mid-crisis at 1024 nodes;
	// the standby must pick up the overflow handling (offline cascade).
	cfg := fig9Config()
	cfg.StandbyGM = true
	cfg.Policy.KillGMAt = 100 * sim.Second // after the spare increase
	cfg.Policy.OfflinePatience = 6
	res := runScenario(t, cfg)
	if !hasAction(res, "failover", "global-manager") {
		t.Fatalf("no failover: %v", res.Actions)
	}
	if res.States["bonds"] != "offline" {
		t.Fatalf("standby never pruned the bottleneck: %v", res.States)
	}
	if res.Provenance["helper"] == "" {
		t.Fatal("provenance lost across failover")
	}
}

func TestFailoverWithMonitoringProbe(t *testing.T) {
	cfg := fig7Config()
	cfg.StandbyGM = true
	cfg.Policy.KillGMAt = 40 * sim.Second
	cfg.MonitorAggregateN = 2 // probes active
	res := runScenario(t, cfg)
	if !hasAction(res, "failover", "global-manager") {
		t.Fatalf("no failover: %v", res.Actions)
	}
	// The standby must still see monitoring after the rehome (otherwise
	// it could never find the bottleneck).
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("standby blind after rehome with probes: %v", res.Actions)
	}
}

// A standby takeover racing an in-flight resize must not leak the nodes
// the dying primary had already handed to a container: the takeover
// recomputes the spare pool only after every rehome round, and each rehome
// serializes behind whatever resize the container was executing, so
// granted nodes show up as owned, not spare.
func TestFailoverMidResizeDoesNotLeakNodes(t *testing.T) {
	// Find when the bonds increase lands in an undisturbed run, then kill
	// the primary at several offsets inside the resize window (the round
	// includes an aprun launch of up to 27 s, so these offsets fall
	// mid-round).
	clean := runScenario(t, fig7Config())
	var incAt sim.Time = -1
	for _, a := range clean.Actions {
		if a.Kind == "increase" && a.Target == "bonds" {
			incAt = a.T
			break
		}
	}
	if incAt < 0 {
		t.Fatalf("clean run never increased bonds: %v", clean.Actions)
	}
	for _, back := range []sim.Time{1, 3, 8, 15, 25} {
		killAt := incAt - back*sim.Second
		if killAt <= 0 {
			continue
		}
		cfg := fig7Config()
		cfg.StandbyGM = true
		cfg.Policy.KillGMAt = killAt
		rt, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		// No node may be owned by two containers, or owned and spare.
		owner := map[int]string{}
		for _, c := range rt.Containers() {
			for _, n := range c.Nodes() {
				if prev, dup := owner[n.ID]; dup {
					t.Fatalf("kill at %v: node %d owned by %s and %s",
						killAt, n.ID, prev, c.Name())
				}
				owner[n.ID] = c.Name()
			}
		}
		for _, n := range rt.GM().SpareNodes() {
			if prev, dup := owner[n.ID]; dup {
				t.Fatalf("kill at %v: node %d both spare and owned by %s",
					killAt, n.ID, prev)
			}
			owner[n.ID] = "spare"
		}
		total := res.Spare
		for _, n := range res.FinalSizes {
			total += n
		}
		if total != cfg.StagingNodes {
			t.Fatalf("kill at %v: %d nodes accounted, want %d (sizes %v spare %d)",
				killAt, total, cfg.StagingNodes, res.FinalSizes, res.Spare)
		}
	}
}

// Regression: a parallel relaunch that completes after the run's shutdown
// horizon must not leave non-fetcher replicas polling forever (this
// exact configuration once livelocked the engine).
func TestShutdownDuringParallelRelaunch(t *testing.T) {
	cfg := Config{
		SimNodes:     320,
		StagingNodes: 16,
		Sizes:        map[string]int{"helper": 4, "bonds": 2, "csym": 1, "cna": 1},
		Steps:        6,
		CrackStep:    3,
		Seed:         3028629120847420069,
		Specs:        SpecsWithBondsModel(smartpointer.ModelParallel),
		Policy:       PolicyConfig{DisableStealing: true},
	}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// The engine must fully drain: no replica may still be scheduling
	// wake events.
	if rt.Engine().Pending() != 0 {
		t.Fatalf("engine still has %d pending events", rt.Engine().Pending())
	}
}
