package core

import (
	"fmt"

	"repro/internal/datatap"
	"repro/internal/sim"
)

// AddTap attaches an observer channel to a container via a control round.
func (gm *GlobalManager) AddTap(p *sim.Proc, target string, ch *datatap.Channel) bool {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &AddTapReq{Seq: seq, Ch: ch} },
		func(d any) bool { r, ok := d.(*AddTapResp); return ok && r.Seq == gm.seq },
	).(*AddTapResp)
	return resp != nil
}

// LaunchContainer creates and starts a new container mid-run — the
// fine-grained launch capability the paper's introduction calls out ("a
// user can also launch a visualization code when needed"). The new
// component observes a *duplicate* of the named upstream container's
// output (a tap), so the existing pipeline keeps every one of its steps.
//
// The container takes `nodes` staging nodes from the spare pool, pays the
// aprun-style launch cost, and is managed like any other container from
// then on. Must be called from a simulated process (interactive user
// input is modeled as a process issuing the request mid-run).
func (gm *GlobalManager) LaunchContainer(p *sim.Proc, spec ComponentSpec, nodes int, upstream string) (*Container, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, exists := gm.rt.byName[spec.Name]; exists {
		return nil, fmt.Errorf("core: container %q already exists", spec.Name)
	}
	up, ok := gm.rt.byName[upstream]
	if !ok {
		return nil, fmt.Errorf("core: unknown upstream container %q", upstream)
	}
	if up.State() != StateOnline {
		return nil, fmt.Errorf("core: upstream %q is offline", upstream)
	}
	if nodes <= 0 {
		nodes = 1
	}
	if nodes > len(gm.spare) {
		return nil, fmt.Errorf("core: mid-run launch needs %d nodes, %d spare", nodes, len(gm.spare))
	}
	grant := gm.spare[:nodes]
	gm.spare = gm.spare[nodes:]

	// A bounded observer channel: if the new component falls behind, its
	// tap drops steps rather than stalling the pipeline.
	tap := datatap.NewChannel(gm.rt.eng, gm.rt.mach,
		"ch.tap."+spec.Name,
		datatap.Config{QueueCap: gm.rt.cfg.QueueCap,
			WriterBufBytes: gm.rt.cfg.WriterBufBytes, HomeNode: grant[0].ID})

	c, err := gm.rt.newContainer(spec, grant, tap, nil, "")
	if err != nil {
		gm.spare = append(grant, gm.spare...)
		return nil, err
	}
	c.observer = true
	// The mid-run launch pays the full aprun + metadata-exchange cost
	// (unlike job-startup deployment).
	job, err := gm.rt.launcher.Launch(p, spec.Name, grant)
	if err != nil {
		gm.spare = append(grant, gm.spare...)
		return nil, err
	}
	c.exchangeMetadata(p, grant, nil)
	gm.rt.containers = append(gm.rt.containers, c)
	gm.rt.byName[spec.Name] = c
	gm.rt.channels = append(gm.rt.channels, tap)
	c.start()
	gm.connect(c)
	if !gm.AddTap(p, upstream, tap) {
		return nil, fmt.Errorf("core: tap attachment to %q failed", upstream)
	}
	gm.record(p, Action{T: p.Now(), Kind: "launch", Target: spec.Name, N: nodes,
		Detail: fmt.Sprintf("mid-run, tapping %s (aprun %s)", upstream, job.LaunchCost)})
	return c, nil
}

// Taps returns the container's observer channels (for tests).
func (c *Container) Taps() []*datatap.Channel { return c.taps }
