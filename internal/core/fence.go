package core

import (
	"fmt"

	"repro/internal/evpath"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Epoch fencing closes the split-brain the standby takeover opens: the
// standby in failover.go promotes itself after three silent heartbeats,
// but silence is indistinguishable from a partition, so a healed
// partition can leave TWO live global managers issuing rounds. The fix
// is monotonic epochs, ZooKeeper-style: the primary starts at epoch 1,
// a takeover bumps the epoch past the highest the standby has seen, and
// the epoch rides every heartbeat and every control Req/Resp. Containers
// remember the highest epoch that has contacted them and reject
// lower-epoch rounds with a FenceResp; a manager that is fenced — or
// that hears a higher-epoch peer's heartbeat answered by a DemoteNotice —
// demotes itself to a passive standby and never issues another round.
// Each fencing decision fires a "fence:<target>" flight-recorder trigger
// so the lead-up to a split brain is preserved in the trace ring.
//
// PolicyConfig.DisableFencing gates the whole mechanism off: the legacy
// pre-fencing behavior chaos regressions reproduce the split-brain under.

// msgDemote tells a stale manager a higher epoch has taken over.
const msgDemote = "ctl.demote"

// FenceResp is a container's refusal of a lower-epoch round: the request
// was NOT served. Epoch carries the fencing (higher) epoch the sender
// must yield to. It travels as an ordinary protocol response so it lands
// in the stale manager's response mailbox mid-call.
type FenceResp struct {
	Seq   int64
	Epoch int64
}

// DemoteNotice is sent by an active manager to a lower-epoch peer whose
// heartbeats prove it still thinks it is primary. Epoch is the sender's.
type DemoteNotice struct {
	Epoch int64
}

// fencingOn reports whether epoch fencing is active for this run.
func (rt *Runtime) fencingOn() bool { return !rt.cfg.Policy.DisableFencing }

// reqEpoch extracts the epoch stamp from a protocol request (ok=false for
// non-round messages, which are never fenced).
func reqEpoch(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Epoch, true
	case *DecreaseReq:
		return r.Epoch, true
	case *OfflineReq:
		return r.Epoch, true
	case *SetOutputReq:
		return r.Epoch, true
	case *QueryReq:
		return r.Epoch, true
	case *ActivateReq:
		return r.Epoch, true
	case *AddTapReq:
		return r.Epoch, true
	case *ResendReq:
		return r.Epoch, true
	case *RehomeReq:
		return r.Epoch, true
	case *SubResumeReq:
		return r.Epoch, true
	case *SubReplayReq:
		return r.Epoch, true
	}
	return 0, false
}

// stampReqEpoch writes the issuing manager's epoch onto an outgoing
// request. Keeping the stamp out of the per-op constructors means every
// round is fenced by construction — a new op cannot forget it.
func stampReqEpoch(v any, epoch int64) {
	switch r := v.(type) {
	case *IncreaseReq:
		r.Epoch = epoch
	case *DecreaseReq:
		r.Epoch = epoch
	case *OfflineReq:
		r.Epoch = epoch
	case *SetOutputReq:
		r.Epoch = epoch
	case *QueryReq:
		r.Epoch = epoch
	case *ActivateReq:
		r.Epoch = epoch
	case *AddTapReq:
		r.Epoch = epoch
	case *ResendReq:
		r.Epoch = epoch
	case *RehomeReq:
		r.Epoch = epoch
	case *SubResumeReq:
		r.Epoch = epoch
	case *SubReplayReq:
		r.Epoch = epoch
	}
}

// stampRespEpoch writes the container's fenced epoch onto an outgoing
// response.
func stampRespEpoch(v any, epoch int64) {
	switch r := v.(type) {
	case *IncreaseResp:
		r.Epoch = epoch
	case *DecreaseResp:
		r.Epoch = epoch
	case *OfflineResp:
		r.Epoch = epoch
	case *SetOutputResp:
		r.Epoch = epoch
	case *QueryResp:
		r.Epoch = epoch
	case *ActivateResp:
		r.Epoch = epoch
	case *AddTapResp:
		r.Epoch = epoch
	case *ResendResp:
		r.Epoch = epoch
	case *RehomeResp:
		r.Epoch = epoch
	case *SubResumeResp:
		r.Epoch = epoch
	case *SubReplayResp:
		r.Epoch = epoch
	case *FenceResp:
		r.Epoch = epoch
	}
}

// Epoch returns the manager's current fencing epoch (0 for a standby
// that has not taken over).
func (gm *GlobalManager) Epoch() int64 { return gm.epoch }

// Deposed reports whether this manager has demoted itself after being
// fenced by a higher epoch.
func (gm *GlobalManager) Deposed() bool { return gm.deposed }

// depose demotes this manager: it stops issuing control rounds and
// heartbeats, drops into a passive pump, and never takes over again (it
// cannot observe the new primary's liveness — the heartbeat beacons do
// not target it — so re-promotion would reopen the split brain).
func (gm *GlobalManager) depose(p *sim.Proc, higher int64, how string) {
	if gm.deposed {
		return
	}
	gm.deposed = true
	gm.rt.tracer.Trigger("fence:global-manager")
	gm.rt.tracer.Instant(0, "ctl", "deposed").Node(gm.node).
		AttrInt("epoch", gm.epoch).AttrInt("by", higher).End()
	gm.record(p, Action{T: p.Now(), Kind: "demote", Target: "global-manager",
		Detail: fmt.Sprintf("epoch %d fenced by %d (%s)", gm.epoch, higher, how)})
}

// runDeposed is the demoted manager's terminal state: pump the control
// mailbox (so couriers never wedge on it) without beating, ticking, or
// granting anything.
func (gm *GlobalManager) runDeposed(p *sim.Proc) {
	for {
		ev, ok := gm.ctl.Recv(p)
		if !ok {
			return
		}
		if gm.dead {
			return
		}
		gm.dispatch(p, ev)
	}
}

// RoundRecord logs one control-round send attempt for the chaos
// single-writer oracle: at most one manager node may issue rounds within
// any given epoch.
//
//iocheck:allow ctlmsg oracle log record, never travels the overlay; Seq+Shard here identify the logged round
type RoundRecord struct {
	T      sim.Time
	Epoch  int64
	Seq    int64
	Node   int // issuing manager's node
	Target string
	Kind   string
	Retry  int
	// Shard is the issuing manager's shard (-1 on legacy single-manager
	// runs); epochs are per-shard, so the oracle keys on (Shard, Epoch).
	Shard int
}

// noteRound appends to the runtime-wide round log (shared across manager
// instances, like the sequence counter, so a failover's rounds land in
// one ordered record).
func (rt *Runtime) noteRound(r RoundRecord) { rt.rounds = append(rt.rounds, r) }

// CrashVictim records one replica (or its co-resident local manager)
// lost to a node crash, for the heal-completeness oracle.
type CrashVictim struct {
	T         sim.Time
	Node      int
	Container string
	// Manager is true when the crashed node also hosted the container's
	// local manager — such a container cannot run the restart protocol
	// and is expected to go silent instead of heal.
	Manager bool
}

// TradeRecord captures one D2T trade transaction's outcome, including
// every responsive participant's decision, for the same-decision oracle.
type TradeRecord struct {
	T        sim.Time
	Outcome  txn.Outcome
	Decided  int
	Outcomes map[int]txn.Outcome
}

// FencedEpoch returns the highest manager epoch that has contacted this
// container (rounds below it are refused).
func (c *Container) FencedEpoch() int64 { return c.fencedEpoch }

// ManagerNode returns the machine node hosting the container's local
// manager (the chaos heal-completeness oracle excuses containers whose
// manager node died).
func (c *Container) ManagerNode() int { return c.mgrEV.Node() }

// fence rejects a lower-epoch round: fire the flight-recorder trigger,
// then answer with a FenceResp carrying the container's fenced epoch so
// the stale manager can demote itself. The refusal travels the bridge
// the round arrived on — after a rehome that is the *previous* upward
// bridge, which still points at the stale manager's inbox.
func (c *Container) fence(p *sim.Proc, seq, stale int64, parent trace.SpanID) {
	c.rt.tracer.Trigger("fence:" + c.spec.Name)
	c.rt.tracer.Instant(parent, "ctl", "fence").
		Container(c.spec.Name).Node(c.mgrEV.Node()).
		AttrInt("seq", seq).AttrInt("stale", stale).
		AttrInt("fenced", c.fencedEpoch).End()
	resp := &FenceResp{Seq: seq, Epoch: c.fencedEpoch}
	out := c.toGM
	if c.staleGM != nil {
		out = c.staleGM
	}
	out.Submit(p, &evpath.Event{Type: msgResp, Size: ctlMsgBytes, Data: resp})
}
