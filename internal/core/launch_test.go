package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// vizSpec is a lightweight mid-run visualization component.
func vizSpec() ComponentSpec {
	return ComponentSpec{
		Name:  "viz",
		Kind:  smartpointer.KindCustom,
		Model: smartpointer.ModelRR,
		Cost: smartpointer.CostModel{
			Kind:             smartpointer.KindCustom,
			Base:             3 * sim.Second,
			RefAtoms:         8819989,
			ExponentOverride: 1,
		},
		OutputFactor: 0,
	}
}

func TestMidRunLaunchTapsUpstream(t *testing.T) {
	cfg := fig7Config()
	cfg.StagingNodes = 16 // 3 spare for the viz container
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var viz *Container
	rt.eng.Go("user", func(p *sim.Proc) {
		p.Sleep(60 * sim.Second) // mid-run: "add this filter now while I'm looking"
		c, err := rt.GM().LaunchContainer(p, vizSpec(), 2, "helper")
		if err != nil {
			t.Error(err)
			return
		}
		viz = c
	})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if viz == nil {
		t.Fatal("launch never happened")
	}
	// The viz container consumed duplicated steps...
	if viz.StepsProcessed() == 0 {
		t.Fatal("viz processed nothing")
	}
	// ...without stealing anything from the existing pipeline.
	if res.Exits != 20 {
		t.Fatalf("pipeline exits %d, want 20 (tap must duplicate, not steal)", res.Exits)
	}
	// Only steps emitted after the launch reach the tap.
	if viz.StepsProcessed() >= 20 {
		t.Fatalf("viz saw %d steps; launch was mid-run", viz.StepsProcessed())
	}
	// The launch is on the management record.
	if !hasAction(res, "launch", "viz") {
		t.Fatalf("no launch action: %v", res.Actions)
	}
	if len(rt.Container("helper").Taps()) != 1 {
		t.Fatal("helper has no tap")
	}
}

func TestMidRunLaunchValidation(t *testing.T) {
	cfg := fig7Config()
	cfg.StagingNodes = 16
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.eng.Go("user", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		gm := rt.GM()
		if _, err := gm.LaunchContainer(p, vizSpec(), 1, "nope"); err == nil {
			t.Error("unknown upstream should fail")
		}
		if _, err := gm.LaunchContainer(p, vizSpec(), 99, "helper"); err == nil {
			t.Error("oversized launch should fail")
		}
		bad := vizSpec()
		bad.Name = "bonds" // exists
		if _, err := gm.LaunchContainer(p, bad, 1, "helper"); err == nil {
			t.Error("duplicate name should fail")
		}
		invalid := vizSpec()
		invalid.Name = ""
		if _, err := gm.LaunchContainer(p, invalid, 1, "helper"); err == nil {
			t.Error("invalid spec should fail")
		}
	})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSlowVizTapDropsInsteadOfStalling(t *testing.T) {
	cfg := fig7Config()
	cfg.StagingNodes = 16
	cfg.QueueCap = 2 // tiny observer queue
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.eng.Go("user", func(p *sim.Proc) {
		p.Sleep(30 * sim.Second)
		slow := vizSpec()
		slow.Cost.Base = 200 * sim.Second // cannot keep up
		if _, err := rt.GM().LaunchContainer(p, slow, 1, "helper"); err != nil {
			t.Error(err)
		}
	})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline is unharmed despite the hopeless observer.
	if res.Exits != 20 {
		t.Fatalf("exits %d: slow tap stalled the pipeline", res.Exits)
	}
}

func TestCustomPolicyReplacesBuiltIn(t *testing.T) {
	cfg := fig7Config()
	fired := 0
	cfg.Policy.CustomTick = func(gm *GlobalManager, p *sim.Proc) {
		fired++
		// A deliberately different policy: grow bonds from helper at the
		// third tick, no monitoring consulted at all.
		if fired == 3 {
			if resp := gm.Decrease(p, "helper", 1); resp != nil && len(resp.Nodes) == 1 {
				gm.Increase(p, "bonds", resp.Nodes)
			}
		}
	}
	res := runScenario(t, cfg)
	if fired == 0 {
		t.Fatal("custom tick never ran")
	}
	if res.FinalSizes["bonds"] != 3 || res.FinalSizes["helper"] != 5 {
		t.Fatalf("custom policy did not apply: %v", res.FinalSizes)
	}
	// The built-in policy would have moved 2 nodes; exactly 1 moved, so
	// the built-in never ran.
	nIncreases := 0
	for _, a := range res.Actions {
		if a.Kind == "increase" {
			nIncreases++
		}
	}
	if nIncreases != 1 {
		t.Fatalf("increases %d, want exactly the custom one", nIncreases)
	}
}

func TestCustomPolicyStillGetsBranch(t *testing.T) {
	cfg := fig7Config()
	cfg.CrackStep = 4
	cfg.Policy.CustomTick = func(gm *GlobalManager, p *sim.Proc) {} // no-op policy
	res := runScenario(t, cfg)
	if !hasAction(res, "activate", "cna") {
		t.Fatalf("crack branch lost under custom policy: %v", res.Actions)
	}
}

func TestTopologyHelpers(t *testing.T) {
	cfg := fig7Config()
	cfg.Policy.DisableManagement = true
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	helper := rt.Container("helper")
	bonds := rt.Container("bonds")
	csym := rt.Container("csym")
	cna := rt.Container("cna")
	if rt.upstreamOf(bonds) != helper {
		t.Fatal("upstreamOf(bonds) != helper")
	}
	if rt.upstreamOf(helper) != nil {
		t.Fatal("helper has no container upstream")
	}
	if !rt.isDownstreamOf(helper, csym) || !rt.isDownstreamOf(bonds, csym) {
		t.Fatal("csym should be downstream of helper and bonds")
	}
	if rt.isDownstreamOf(csym, helper) {
		t.Fatal("helper is not downstream of csym")
	}
	if rt.isDownstreamOf(bonds, bonds) {
		t.Fatal("self is not downstream")
	}
	// Closure from bonds covers active csym but not inactive cna.
	closure := rt.downstreamClosure(bonds)
	names := map[string]bool{}
	for _, c := range closure {
		names[c.Name()] = true
	}
	if !names["bonds"] || !names["csym"] || names["cna"] {
		t.Fatalf("closure %v", names)
	}
	_ = cna
	// Containers() lists stage order.
	list := rt.Containers()
	if len(list) != 4 || list[0] != helper {
		t.Fatalf("containers %v", list)
	}
}

func TestHeartbeatReportsPressureDuringLongCompute(t *testing.T) {
	// With a hopeless bottleneck and management off, the only samples
	// for bonds are heartbeats; the aggregator must still see pressure.
	cfg := fig9Config()
	cfg.Steps = 12
	cfg.Policy.DisableManagement = true
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	press := res.Recorder.Series("pressure.bonds")
	if press.Len() == 0 {
		t.Fatal("no heartbeat pressure samples")
	}
	// Pressure (head age) grows while the backlog ages.
	vals := press.Values()
	if vals[len(vals)-1] <= vals[0] {
		t.Fatalf("pressure not growing: %v", vals)
	}
	// And the GM's aggregator saw them even though no step completed in
	// the measurement window.
	if w := rt.GM().Aggregator().Window("bonds"); w == nil || w.Len() == 0 {
		t.Fatal("aggregator blind to bonds")
	}
}
