package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/evpath"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/txn"
)

// PolicyConfig tunes the global manager's SLA enforcement.
type PolicyConfig struct {
	// Interval is the management tick period (default: the output
	// period).
	Interval sim.Time
	// MinSamples is how many samples a container's window needs before
	// it can be diagnosed (default 2).
	MinSamples int
	// TriggerQueueLen is the input backlog that makes a container a
	// management candidate (default 2).
	TriggerQueueLen int
	// OfflineQueueLen is the backlog at which an unsatisfiable
	// bottleneck is taken offline (default max(4, queueCap/3)).
	OfflineQueueLen int
	// Cooldown is the minimum time between management actions (default
	// 2 intervals).
	Cooldown sim.Time
	// WindowSpan bounds the monitoring windows (default 10 intervals).
	WindowSpan sim.Time
	// DisableManagement turns the policy off (baseline runs for the
	// figures' "unmanaged" comparison).
	DisableManagement bool
	// DisableOffline keeps the policy from pruning containers (ablation).
	DisableOffline bool
	// DisableStealing keeps the policy from decreasing other containers
	// (ablation: spare nodes only).
	DisableStealing bool
	// OfflinePatience is how many consecutive ticks the overflow
	// condition must persist before an unsatisfiable bottleneck is
	// pruned (default 4) — transients should not cost a pipeline stage.
	OfflinePatience int
	// TransactionalTrades wraps each resource steal in a D2T control
	// transaction (paper §III-A(5)): the nodes removed from the victim
	// are guaranteed to be added to the recipient or returned. Aborted
	// trades roll back.
	TransactionalTrades bool
	// InjectTradeFailures makes the first N trade transactions fail (a
	// participant goes silent), exercising the rollback path.
	InjectTradeFailures int
	// KillGMAt, when > 0, makes the primary global manager die (stop
	// serving) at that virtual time — the failure the standby exists
	// for. Death is immediate: an in-flight control round is abandoned
	// mid-call, exactly the window the standby's takeover must tolerate.
	KillGMAt sim.Time
	// CallTimeout bounds each synchronous control round with a container
	// (default 30 s: above the worst-case round, which includes an
	// aprun launch of up to 27 s — and sized so the full retry budget
	// of 30+60+120 s fits inside a default-length run, leaving the GM
	// time to suspect a dead manager and keep managing the rest). A
	// round that misses the deadline is retried with the same sequence
	// number; container managers deduplicate, so a spuriously-retried
	// round is answered from the cache, never re-executed — which is
	// what makes the tighter first deadline safe.
	CallTimeout sim.Time
	// CallRetries is how many extra rounds a timed-out call gets before
	// the container is marked suspect (default 2). Each retry doubles the
	// round deadline (exponential backoff), so a merely slow container
	// gets progressively more room while a dead one is bounded.
	CallRetries int
	// TradeVoteTimeout bounds each D2T vote round inside a transactional
	// trade (default CallTimeout/30, i.e. 1 s at the stock 30 s round
	// deadline — it scales with the scenario's control-round tuning
	// instead of being pinned to a wall-clock constant).
	TradeVoteTimeout sim.Time
	// DisableFencing turns off epoch fencing of control rounds (see
	// fence.go), restoring the legacy failover behavior whose healed-
	// partition split brain the chaos regressions reproduce.
	DisableFencing bool
	// SilencePatience is how many policy intervals of silence an online,
	// active container is allowed before the GM probes it with a
	// liveness Query (default 4; negative disables). Monitoring samples
	// only flow while steps are processed, so a container whose manager
	// node crashed starves *silently*: its surviving replicas report no
	// queue pressure and the bottleneck scan never gains a reason to
	// call — and thereby suspect — it. The probe gives the suspect
	// machinery that reason.
	SilencePatience int
	// DisableSelfHealing turns off the per-container replica watch and
	// restart protocol (ablation arm of the fault experiments). It has no
	// effect when no fault schedule is configured — the watch only runs
	// under fault injection.
	DisableSelfHealing bool
	// CustomTick, when non-nil, replaces the built-in policy evaluation
	// each management interval — the user-defined management policies
	// the paper's user-space design exists to permit. The function may
	// use the GlobalManager's exported operations (Query, Increase,
	// Decrease, Offline, SetOutput, Activate, LaunchContainer) and its
	// Aggregator for monitoring state. Crack-branch handling still runs
	// before it.
	CustomTick func(gm *GlobalManager, p *sim.Proc)
}

func (pc PolicyConfig) withDefaults(outputPeriod sim.Time, queueCap int) PolicyConfig {
	if pc.Interval <= 0 {
		pc.Interval = outputPeriod
	}
	if pc.MinSamples <= 0 {
		pc.MinSamples = 2
	}
	if pc.TriggerQueueLen <= 0 {
		pc.TriggerQueueLen = 2
	}
	if pc.OfflineQueueLen <= 0 {
		pc.OfflineQueueLen = queueCap / 3
		if pc.OfflineQueueLen < 4 {
			pc.OfflineQueueLen = 4
		}
	}
	if pc.Cooldown <= 0 {
		pc.Cooldown = 2 * pc.Interval
	}
	if pc.WindowSpan <= 0 {
		pc.WindowSpan = 10 * pc.Interval
	}
	if pc.OfflinePatience <= 0 {
		pc.OfflinePatience = 4
	}
	if pc.CallTimeout <= 0 {
		pc.CallTimeout = 30 * sim.Second
	}
	if pc.CallRetries <= 0 {
		pc.CallRetries = 2
	}
	if pc.TradeVoteTimeout <= 0 {
		pc.TradeVoteTimeout = pc.CallTimeout / 30
	}
	if pc.SilencePatience == 0 {
		pc.SilencePatience = 4
	}
	return pc
}

// Action records one management decision for the experiment timelines.
type Action struct {
	T      sim.Time
	Kind   string // "increase", "decrease", "offline", "activate", "set_output"
	Target string
	N      int
	Detail string
}

// GlobalManager enforces cross-container SLAs: bottleneck detection from
// the monitoring overlay, resource trades between containers, and offline
// transitions when the staging area cannot sustain the load (paper
// §III-D).
type GlobalManager struct {
	rt   *Runtime
	node int
	ev   *evpath.Manager
	// root receives all container traffic; an evpath split routes
	// protocol responses to rsp and everything else (monitoring samples,
	// crack notices) to ctl, so the policy pump and an in-flight
	// synchronous call never compete for the same mailbox.
	root   *evpath.Stone
	ctl    *evpath.Mailbox
	rsp    *evpath.Mailbox
	agg    *monitor.Aggregator
	policy PolicyConfig

	toContainer   map[string]*evpath.Stone
	spare         []*cluster.Node
	seq           int64
	lastAction    sim.Time
	actionTaken   bool
	crackSeen     bool
	branchDone    bool
	overflowTicks map[string]int
	// suspect marks containers whose control rounds exhausted their retry
	// budget; the policy skips them instead of blocking on them again.
	suspect map[string]bool
	// lastHeard is when the GM last had proof of life from each
	// container — a monitoring sample, an upward notice, or an answered
	// control round. The silence probe reads it.
	lastHeard map[string]sim.Time
	// resendRoute maps a consumer container's name to the upstream
	// container feeding it; a GapNotice from the consumer turns into a
	// ResendReq round to that upstream at the next policy tick.
	resendRoute map[string]string
	// pendingResend marks upstream containers owed a ResendReq round.
	pendingResend map[string]bool
	// pendingSubs dedupes reconnect notices per subscriber (keeping the
	// highest generation); each owes a SubResume round at the next tick.
	pendingSubs map[string]*SubNotice
	// dead is set when this manager's node crashes or KillGMAt fires; a
	// dead manager abandons whatever it is doing, including mid-call.
	dead bool
	// pending buffers protocol responses that were received outside the
	// op that is waiting for them (the pump loop and an in-flight call
	// share the control mailbox).
	pending []any
	// toStandby carries liveness beacons to the standby manager.
	toStandby *evpath.Stone
	// lastPrimaryBeat is when the standby last heard the primary.
	lastPrimaryBeat sim.Time

	// Epoch fencing state (see fence.go). epoch is this manager's fencing
	// epoch (primary starts at 1, a standby at 0 until takeover);
	// peerEpoch is the highest epoch heard in a peer's heartbeat;
	// standbyMode is true while the manager is a watching standby;
	// deposed is set once a higher epoch fences this manager out;
	// toDeposed bridges a DemoteNotice back to a stale peer; fencedPeer
	// records that the demote action was already logged.
	epoch       int64
	peerEpoch   int64
	standbyMode bool
	deposed     bool
	toDeposed   *evpath.Stone
	fencedPeer  bool

	// Sharded control plane state (see shard.go). shard is this manager's
	// shard ID (-1 on legacy single-manager runs); scope is the subset of
	// containers it manages (nil = all); toMeta bridges to the
	// meta-manager; shardSeq numbers outbound shard round messages;
	// stealPending latches at-most-one in-flight cross-shard steal;
	// promoteNow is set by a meta PromoteNotice; crackRelayed dedupes the
	// crack relay; peerBridges caches bridges to other managers' inboxes
	// (peerOrder keeps close deterministic).
	shard        int
	scope        []*Container
	toMeta       *evpath.Stone
	shardSeq     int64
	stealPending bool
	promoteNow   bool
	crackRelayed bool
	peerBridges  map[*evpath.Stone]*evpath.Stone
	peerOrder    []*evpath.Stone

	actions []Action
}

// Actions returns the management decisions taken so far.
func (gm *GlobalManager) Actions() []Action { return append([]Action(nil), gm.actions...) }

// Suspects returns the names of containers marked suspect, sorted.
func (gm *GlobalManager) Suspects() []string {
	var out []string
	for name := range gm.suspect {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Spare returns the current spare staging node count.
func (gm *GlobalManager) Spare() int { return len(gm.spare) }

// SpareNodes returns the spare pool (shared slice; do not mutate).
func (gm *GlobalManager) SpareNodes() []*cluster.Node { return gm.spare }

// Aggregator exposes the monitoring state (for tests and experiments).
func (gm *GlobalManager) Aggregator() *monitor.Aggregator { return gm.agg }

func newGlobalManager(rt *Runtime, node int, policy PolicyConfig, spare []*cluster.Node) *GlobalManager {
	gm := &GlobalManager{
		rt:            rt,
		node:          node,
		policy:        policy,
		spare:         spare,
		shard:         -1,
		toContainer:   make(map[string]*evpath.Stone),
		overflowTicks: make(map[string]int),
		suspect:       make(map[string]bool),
		lastHeard:     make(map[string]sim.Time),
		resendRoute:   make(map[string]string),
		pendingResend: make(map[string]bool),
		pendingSubs:   make(map[string]*SubNotice),
	}
	if policy.KillGMAt > 0 {
		// Death is an engine event, not a loop-top check: the manager can
		// die while parked mid-call, which is the race the standby
		// takeover must survive.
		rt.eng.At(policy.KillGMAt, func() { gm.dead = true })
	}
	gm.ev = evpath.NewManager(rt.eng, rt.mach, node)
	gm.ev.SetTracer(rt.tracer)
	gm.ctl = evpath.NewMailbox(gm.ev, 0)
	gm.rsp = evpath.NewMailbox(gm.ev, 0)
	respRoute := gm.ev.NewStone(evpath.TypeFilter(msgResp))
	respRoute.Link(gm.rsp.Stone)
	otherRoute := gm.ev.NewStone(evpath.Filter(func(ev *evpath.Event) bool {
		return ev.Type != msgResp
	}))
	otherRoute.Link(gm.ctl.Stone)
	gm.root = gm.ev.NewStone(nil)
	gm.root.Link(respRoute).Link(otherRoute)
	gm.agg = monitor.NewAggregator(policy.WindowSpan)
	return gm
}

// connect builds the control bridge to a container's mailbox.
func (gm *GlobalManager) connect(c *Container) {
	gm.toContainer[c.Name()] = gm.ev.NewBridge(c.mailbox.Stone, 0)
}

// inbox returns the stone containers bridge their upward traffic to.
func (gm *GlobalManager) inbox() *evpath.Stone { return gm.root }

// closeBridges drains and stops the manager's courier processes, in
// sorted container order so shutdown releases couriers deterministically.
func (gm *GlobalManager) closeBridges() {
	names := make([]string, 0, len(gm.toContainer))
	for name := range gm.toContainer {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gm.toContainer[name].CloseBridge()
	}
	if gm.toStandby != nil {
		gm.toStandby.CloseBridge()
	}
	if gm.toDeposed != nil {
		gm.toDeposed.CloseBridge()
	}
	if gm.toMeta != nil {
		gm.toMeta.CloseBridge()
	}
	for _, b := range gm.peerOrder {
		b.CloseBridge()
	}
}

// run is the global manager process: pump monitoring/control traffic and
// tick the policy at each interval.
func (gm *GlobalManager) run(p *sim.Proc) {
	for {
		if gm.dead {
			return // the primary died silently
		}
		if gm.deposed {
			// Fenced out by a higher epoch: demote to a passive standby.
			gm.runDeposed(p)
			return
		}
		if gm.toStandby != nil {
			gm.toStandby.Submit(p, &evpath.Event{Type: msgGMHeartbeat,
				Size: ctlMsgBytes,
				Data: &GMHeartbeat{At: p.Now(), Epoch: gm.epoch, Inbox: gm.root}})
		}
		if gm.toMeta != nil {
			gm.beatMeta(p)
		}
		deadline := p.Now() + gm.policy.Interval
		for p.Now() < deadline {
			ev, ok := gm.ctl.RecvTimeout(p, deadline-p.Now())
			if !ok {
				if gm.ctl.Closed() {
					return
				}
				break
			}
			if gm.dead {
				return
			}
			gm.dispatch(p, ev)
		}
		if gm.ctl.Closed() || gm.dead {
			return
		}
		if gm.deposed {
			continue // the loop top demotes to the passive pump
		}
		// Data-plane repair is not a policy decision: gap-triggered resends
		// and subscriber reconnects run even when management is disabled.
		gm.issueResends(p)
		gm.issueSubResumes(p)
		if gm.policy.DisableManagement {
			continue
		}
		if gm.crackSeen && !gm.branchDone {
			gm.branch(p)
		}
		if gm.policy.CustomTick != nil {
			gm.policy.CustomTick(gm, p)
			continue
		}
		gm.tick(p)
	}
}

// dispatch routes one monitoring/notice event (responses never reach this
// path; the overlay split sends them to the response mailbox). It runs on
// both the primary's pump and the deposed pump, which must never wedge on
// a courier — handling an event must not park the manager process.
//
//iocheck:nonblocking
func (gm *GlobalManager) dispatch(p *sim.Proc, ev *evpath.Event) {
	//iocheck:allow vtblock shardDispatch submits only over peer bridges (courier path); see its own audit
	if gm.shardDispatch(p, ev) {
		return
	}
	// The notice pump is not a round handler: SubNotices dedupe per
	// subscriber inside the arm (latest reconnect generation wins, so a
	// reconnect storm collapses to one resume round), and the rounds they
	// trigger are deferred to the tick and issued through gm.call, whose
	// responses are seq-deduped and epoch-fenced there. Audited 2026-08.
	//iocheck:allow roundflow sub-notices dedupe per-subscriber in the arm; triggered rounds go through the fully fenced gm.call path
	switch data := ev.Data.(type) {
	case monitor.Sample:
		gm.agg.Ingest(data)
		gm.lastHeard[data.Container] = p.Now()
	case *CrackNotice:
		gm.crackSeen = true
		gm.lastHeard[data.From] = p.Now()
		//iocheck:allow vtblock relayCrack submits over the toMeta bridge (courier path); see its own audit
		gm.relayCrack(p, data)
	case *GapNotice:
		gm.lastHeard[data.From] = p.Now()
		if up, ok := gm.resendRoute[data.From]; ok {
			if _, local := gm.toContainer[up]; !local && gm.toMeta != nil {
				// Cross-shard gap: the upstream container belongs to
				// another shard, so the writer-side manager must issue the
				// ResendReq round. Relay through the meta-manager.
				//iocheck:allow vtblock relayGap submits over the toMeta bridge (courier path); see its own audit
				gm.relayGap(p, up)
			} else {
				// Defer the round to the tick: dispatch must not park, and
				// a synchronous round does.
				gm.pendingResend[up] = true
			}
		}
	case *GMHeartbeat:
		gm.lastPrimaryBeat = data.At
		if data.Epoch > gm.peerEpoch {
			gm.peerEpoch = data.Epoch
		}
		if gm.rt.fencingOn() && !gm.standbyMode && !gm.deposed &&
			data.Epoch < gm.epoch && data.Inbox != nil {
			// A stale peer — a primary that outlived its own failover —
			// is still beating. Tell it to stand down.
			if gm.toDeposed == nil {
				gm.toDeposed = gm.ev.NewBridge(data.Inbox, 0)
			}
			//iocheck:allow vtblock toDeposed is a bridge stone: handle() takes the forward() courier path, which enqueues without parking
			gm.toDeposed.Submit(p, &evpath.Event{Type: msgDemote,
				Size: ctlMsgBytes, Data: &DemoteNotice{Epoch: gm.epoch}})
			if !gm.fencedPeer {
				gm.fencedPeer = true
				gm.record(p, Action{T: p.Now(), Kind: "fence", Target: "global-manager",
					Detail: fmt.Sprintf("demoting stale peer epoch %d (own epoch %d)",
						data.Epoch, gm.epoch)})
			}
		}
	case *DemoteNotice:
		if gm.rt.fencingOn() && data.Epoch > gm.epoch {
			gm.depose(p, data.Epoch, "demote notice")
		}
	case *SubNotice:
		gm.lastHeard[data.From] = p.Now()
		seq, _ := subMsgSeq(data)
		gm.rt.tracer.Instant(ev.Ctx(), "ctl", "sub-notice").
			Container(data.From).Node(gm.node).AttrInt("seq", seq).End()
		// Dedupe per subscriber on the reconnect generation: a reconnect
		// storm collapses to one resume round per subscriber. Defer the
		// round to the tick — dispatch must not park.
		if cur, ok := gm.pendingSubs[data.SubID]; !ok || data.Seq > cur.Seq {
			gm.pendingSubs[data.SubID] = data
		}
	case *SpareReq:
		//iocheck:allow vtblock grantSpare submits only to container control bridges (courier path); see its own audit
		gm.grantSpare(p, data)
		gm.lastHeard[data.From] = p.Now()
	case *HealNotice:
		gm.lastHeard[data.From] = p.Now()
		detail := fmt.Sprintf("replaced %d crashed node(s)", data.Lost)
		kind := "heal"
		if data.Degraded {
			kind = "degrade"
			detail = fmt.Sprintf("no spare for %d crashed node(s); continuing at size %d",
				data.Lost, data.Size)
		}
		gm.record(p, Action{T: p.Now(), Kind: kind, Target: data.From,
			N: data.Size, Detail: detail})
	}
}

// grantSpare answers a local manager's replica-restart request: pop up to
// N nodes from the spare pool and send them down the container's control
// bridge. An empty grant tells the requester to degrade. Runs from
// dispatch, so it inherits the pump's must-not-park obligation.
//
//iocheck:nonblocking
func (gm *GlobalManager) grantSpare(p *sim.Proc, req *SpareReq) {
	if gm.deposed {
		return // a fenced manager's pool is no longer authoritative
	}
	stone, ok := gm.toContainer[req.From]
	if !ok {
		return
	}
	take := req.N
	if take > len(gm.spare) {
		take = len(gm.spare)
	}
	var grant []*cluster.Node
	if take > 0 {
		grant = append(grant, gm.spare[:take]...)
		gm.spare = gm.spare[take:]
	}
	if take < req.N {
		// The pool could not cover the request. Ask the meta-manager for
		// nodes from another shard so the next heal can be served in full
		// (fire-and-forget; no-op on legacy runs).
		//iocheck:allow vtblock requestSteal submits over the toMeta bridge (courier path); see its own audit
		gm.requestSteal(p, req.N-take)
	}
	//iocheck:allow vtblock toContainer stones are control bridges: handle() takes the forward() courier path, which enqueues without parking
	stone.Submit(p, &evpath.Event{Type: msgSpareGrant, Size: ctlMsgBytes,
		Data: &SpareGrant{Seq: req.Seq, Nodes: grant}})
}

// takePending removes and returns the first buffered response matching
// the predicate.
func (gm *GlobalManager) takePending(match func(any) bool) any {
	for i, v := range gm.pending {
		if match(v) {
			gm.pending = append(gm.pending[:i], gm.pending[i+1:]...)
			return v
		}
	}
	return nil
}

// call performs one synchronous control round with a container: send the
// request, pump overlay traffic until the matching response arrives. Each
// round has a deadline; a round that misses it is retried with the SAME
// sequence number (container managers deduplicate, so mutating requests
// never execute twice) and a doubled deadline. When the retry budget runs
// out the container is marked suspect and the call gives up — the policy
// tick proceeds instead of blocking forever on a dead container.
func (gm *GlobalManager) call(p *sim.Proc, target string, mk func(seq int64) any, match func(any) bool) any {
	v := gm.callRound(p, target, mk, match)
	if v != nil {
		// An answered round is proof of life for the silence probe.
		gm.lastHeard[target] = p.Now()
	}
	return v
}

func (gm *GlobalManager) callRound(p *sim.Proc, target string, mk func(seq int64) any, match func(any) bool) any {
	// Sequence numbers come from a runtime-wide counter so the primary's
	// and the standby's rounds never collide in a container's dedup cache
	// across a failover.
	if gm.deposed {
		return nil // a fenced manager issues no rounds
	}
	gm.rt.ctlSeq++
	gm.seq = gm.rt.ctlSeq
	gm.purgeStale()
	stone, ok := gm.toContainer[target]
	if !ok {
		gm.rt.fail(fmt.Errorf("core: no control bridge to container %q", target))
		return nil
	}
	if gm.suspect[target] {
		return nil
	}
	req := mk(gm.seq)
	stampReqEpoch(req, gm.epoch)
	kind := strings.TrimPrefix(msgTypeFor(req), "ctl.")
	timeout := gm.policy.CallTimeout
	for attempt := 0; attempt <= gm.policy.CallRetries; attempt++ {
		if gm.dead {
			return nil
		}
		// Each attempt is its own round span; the container-side serve
		// chains from it through the event's typed span context.
		sp := gm.rt.tracer.Begin(0, "ctl", "round."+kind).
			Container(target).Node(gm.node).
			AttrInt("attempt", int64(attempt)).AttrInt("seq", gm.seq)
		if gm.shard >= 0 {
			sp.AttrInt("shard", int64(gm.shard))
		}
		ev := &evpath.Event{Type: msgTypeFor(req), Size: ctlMsgBytes, Data: req}
		ev.Span = sp.ID()
		gm.rt.noteRound(RoundRecord{T: p.Now(), Epoch: gm.epoch, Seq: gm.seq,
			Node: gm.node, Target: target, Kind: kind, Retry: attempt,
			Shard: gm.shard})
		stone.Submit(p, ev)
		deadline := p.Now() + timeout
		for {
			if v := gm.takePending(match); v != nil {
				sp.End()
				return v
			}
			rev, ok := gm.rsp.RecvTimeout(p, deadline-p.Now())
			if !ok {
				if gm.rsp.Closed() {
					// Shutdown mid-round: keep whatever buffered responses
					// remain for other callers before giving up.
					gm.drainResponses()
					sp.Attr("outcome", "shutdown").End()
					if v := gm.takePending(match); v != nil {
						return v
					}
					return nil
				}
				sp.Attr("outcome", "timeout").End()
				break // round deadline; retry with backoff
			}
			if gm.dead {
				gm.pending = append(gm.pending, rev.Data)
				sp.Attr("outcome", "dead").End()
				return nil
			}
			if f, isFence := rev.Data.(*FenceResp); isFence {
				if gm.rt.fencingOn() && f.Epoch > gm.epoch {
					// The container refused this round: a higher epoch has
					// taken over. Demote mid-call.
					gm.depose(p, f.Epoch, "fence response from "+target)
					sp.Attr("outcome", "fenced").End()
					return nil
				}
				continue // stale fence response; never matches a caller
			}
			if match(rev.Data) {
				sp.End()
				return rev.Data
			}
			// A response for a different caller; buffer it.
			gm.pending = append(gm.pending, rev.Data)
		}
		timeout *= 2
	}
	gm.markSuspect(p, target)
	return nil
}

// drainResponses moves everything left in the (closed) response mailbox
// into the pending buffer so responses destined for other callers are not
// lost with the mailbox.
func (gm *GlobalManager) drainResponses() {
	for {
		ev, ok := gm.rsp.TryRecv()
		if !ok {
			return
		}
		gm.pending = append(gm.pending, ev.Data)
	}
}

// purgeStale drops buffered responses from sequence rounds that have
// already concluded (a retried round can produce duplicate responses; once
// a newer round starts they can never match again).
func (gm *GlobalManager) purgeStale() {
	if len(gm.pending) == 0 {
		return
	}
	kept := gm.pending[:0]
	for _, v := range gm.pending {
		if s, ok := respSeq(v); !ok || s >= gm.seq {
			kept = append(kept, v)
		}
	}
	for i := len(kept); i < len(gm.pending); i++ {
		gm.pending[i] = nil
	}
	gm.pending = kept
}

// markSuspect records that a container stopped answering control rounds.
// The policy skips suspect containers from then on.
func (gm *GlobalManager) markSuspect(p *sim.Proc, target string) {
	if gm.suspect[target] {
		return
	}
	gm.suspect[target] = true
	gm.rt.tracer.Instant(0, "ctl", "suspect").Container(target).Node(gm.node).End()
	gm.record(p, Action{T: p.Now(), Kind: "suspect", Target: target,
		Detail: "control rounds exhausted retries"})
}

func msgTypeFor(req any) string {
	switch req.(type) {
	case *IncreaseReq:
		return msgIncrease
	case *DecreaseReq:
		return msgDecrease
	case *OfflineReq:
		return msgOffline
	case *SetOutputReq:
		return msgSetOutput
	case *QueryReq:
		return msgQuery
	case *ActivateReq:
		return msgActivate
	case *AddTapReq:
		return msgAddTap
	case *ResendReq:
		return msgResend
	case *RehomeReq:
		return msgRehome
	case *SubResumeReq:
		return msgSubResume
	case *SubReplayReq:
		return msgSubReplay
	}
	return "ctl.unknown"
}

// respSeq extracts the sequence number from a protocol response (ok=false
// for non-protocol payloads).
func respSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseResp:
		return r.Seq, true
	case *DecreaseResp:
		return r.Seq, true
	case *OfflineResp:
		return r.Seq, true
	case *SetOutputResp:
		return r.Seq, true
	case *QueryResp:
		return r.Seq, true
	case *ActivateResp:
		return r.Seq, true
	case *AddTapResp:
		return r.Seq, true
	case *ResendResp:
		return r.Seq, true
	case *RehomeResp:
		return r.Seq, true
	case *SubResumeResp:
		return r.Seq, true
	case *SubReplayResp:
		return r.Seq, true
	case *FenceResp:
		return r.Seq, true
	}
	return 0, false
}

// Increase grows a container onto the given nodes via the full protocol
// round; it returns the container-side cost breakdown.
func (gm *GlobalManager) Increase(p *sim.Proc, target string, nodes []*cluster.Node) *IncreaseResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &IncreaseReq{Seq: seq, Nodes: nodes} },
		func(d any) bool { r, ok := d.(*IncreaseResp); return ok && r.Seq == gm.seq },
	).(*IncreaseResp)
	if resp != nil {
		gm.record(p, Action{T: p.Now(), Kind: "increase", Target: target, N: len(nodes)})
	}
	return resp
}

// Decrease shrinks a container by n replicas, reclaiming their nodes into
// the spare pool; it returns the protocol response.
func (gm *GlobalManager) Decrease(p *sim.Proc, target string, n int) *DecreaseResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &DecreaseReq{Seq: seq, N: n} },
		func(d any) bool { r, ok := d.(*DecreaseResp); return ok && r.Seq == gm.seq },
	).(*DecreaseResp)
	if resp != nil {
		gm.spare = append(gm.spare, resp.Nodes...)
		gm.record(p, Action{T: p.Now(), Kind: "decrease", Target: target, N: n})
	}
	return resp
}

// Offline removes a container (and lets the caller handle cascades).
func (gm *GlobalManager) Offline(p *sim.Proc, target string) *OfflineResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &OfflineReq{Seq: seq} },
		func(d any) bool { r, ok := d.(*OfflineResp); return ok && r.Seq == gm.seq },
	).(*OfflineResp)
	if resp != nil {
		gm.spare = append(gm.spare, resp.Nodes...)
		gm.rt.dropped += resp.Dropped
		gm.record(p, Action{T: p.Now(), Kind: "offline", Target: target, N: resp.Dropped})
	}
	return resp
}

// SetOutput redirects a container's output to disk with provenance.
func (gm *GlobalManager) SetOutput(p *sim.Proc, target, provenance string) {
	gm.call(p, target,
		func(seq int64) any { return &SetOutputReq{Seq: seq, Provenance: provenance} },
		func(d any) bool { r, ok := d.(*SetOutputResp); return ok && r.Seq == gm.seq },
	)
	gm.record(p, Action{T: p.Now(), Kind: "set_output", Target: target, Detail: provenance})
}

// Query asks a container's local manager for its needs.
func (gm *GlobalManager) Query(p *sim.Proc, target string, max int) *QueryResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &QueryReq{Seq: seq, Max: max} },
		func(d any) bool { r, ok := d.(*QueryResp); return ok && r.Seq == gm.seq },
	).(*QueryResp)
	return resp
}

// Resend asks a container to immediately re-emit every retained output
// step whose descriptor was lost in flight (the at-least-once data
// plane's control leg, issued in response to a consumer's GapNotice).
func (gm *GlobalManager) Resend(p *sim.Proc, target string) *ResendResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &ResendReq{Seq: seq} },
		func(d any) bool { r, ok := d.(*ResendResp); return ok && r.Seq == gm.seq },
	).(*ResendResp)
	if resp != nil && resp.Redelivered > 0 {
		gm.record(p, Action{T: p.Now(), Kind: "resend", Target: target,
			N: resp.Redelivered, Detail: "gap-triggered redelivery"})
	}
	return resp
}

// issueResends serves the GapNotices accumulated since the last tick:
// one ResendReq round per flagged upstream container, in sorted order for
// determinism. Entries are cleared before calling so a notice arriving
// during the round is not lost.
func (gm *GlobalManager) issueResends(p *sim.Proc) {
	if len(gm.pendingResend) == 0 {
		return
	}
	names := make([]string, 0, len(gm.pendingResend))
	for name := range gm.pendingResend {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		delete(gm.pendingResend, name)
		gm.Resend(p, name)
	}
}

// Activate toggles a container's consumption.
func (gm *GlobalManager) Activate(p *sim.Proc, target string, active bool) {
	gm.call(p, target,
		func(seq int64) any { return &ActivateReq{Seq: seq, Active: active} },
		func(d any) bool { r, ok := d.(*ActivateResp); return ok && r.Seq == gm.seq },
	)
	gm.record(p, Action{T: p.Now(), Kind: "activate", Target: target,
		Detail: fmt.Sprintf("active=%v", active)})
}

func (gm *GlobalManager) record(p *sim.Proc, a Action) {
	if gm.dead {
		return // a zombie primary woken by a late response records nothing
	}
	gm.actions = append(gm.actions, a)
	gm.lastAction = p.Now()
	gm.actionTaken = true
	gm.rt.rec.Mark(a.T, fmt.Sprintf("%s %s %d %s", a.Kind, a.Target, a.N, a.Detail))
}

// tick runs one built-in policy evaluation.
// probeSilent pings containers the GM has not heard from in
// SilencePatience policy intervals. Monitoring samples only flow while a
// container is processing steps, so a container whose manager node died
// starves *silently*: its surviving replicas have nothing to report, the
// bottleneck scan never selects it, and without this probe the GM would
// have no reason to call — and thereby suspect — it for the rest of the
// run. The probe is an ordinary Query round, so a dead manager exhausts
// the usual retry budget and lands in the existing suspect path, while a
// live-but-idle container answers a single 256 B round per patience
// window (which itself refreshes lastHeard).
func (gm *GlobalManager) probeSilent(p *sim.Proc) {
	if gm.policy.SilencePatience < 0 {
		return
	}
	patience := sim.Time(gm.policy.SilencePatience) * gm.policy.Interval
	for _, c := range gm.managed() {
		name := c.Name()
		if !c.Active() || gm.suspect[name] {
			continue
		}
		last, ok := gm.lastHeard[name]
		if !ok {
			gm.lastHeard[name] = p.Now() // first scan: start the clock
			continue
		}
		if p.Now()-last <= patience {
			continue
		}
		gm.Query(p, name, gm.rt.cfg.StagingNodes)
	}
}

func (gm *GlobalManager) tick(p *sim.Proc) {
	gm.probeSilent(p)
	if gm.actionTaken && p.Now()-gm.lastAction < gm.policy.Cooldown {
		return
	}
	// Work down the pressured containers by average latency until one
	// can actually be helped: a stage stalled by downstream backpressure
	// shows long latencies too, but its local manager reports no
	// resource need, so the policy moves past it to the true bottleneck.
	for _, bneck := range gm.findBottlenecks() {
		total := gm.rt.cfg.StagingNodes
		q := gm.Query(p, bneck.Name(), total)
		if q == nil {
			return
		}
		want := 0
		unattainable := q.Needed == 0
		if unattainable {
			want = total // take whatever exists
		} else {
			want = q.Needed - q.Size
		}
		if want <= 0 {
			continue
		}
		grant := gm.gather(p, bneck, want, unattainable)
		if len(grant) > 0 {
			gm.Increase(p, bneck.Name(), grant)
			return
		}
		// Nothing left to give. If the backlog has been heading for
		// overflow for OfflinePatience consecutive ticks, prune the
		// bottleneck from the data path (paper Fig. 9/10).
		w := gm.agg.Window(bneck.Name())
		if w != nil && w.LastQueueLen() >= gm.policy.OfflineQueueLen {
			gm.overflowTicks[bneck.Name()]++
		} else {
			gm.overflowTicks[bneck.Name()] = 0
		}
		if !gm.policy.DisableOffline && !bneck.Spec().Essential &&
			gm.overflowTicks[bneck.Name()] >= gm.policy.OfflinePatience {
			gm.offlineCascade(p, bneck)
		}
		return
	}
}

// findBottlenecks returns online, active containers showing backlog
// pressure, ordered by descending average latency.
func (gm *GlobalManager) findBottlenecks() []*Container {
	var candidates []string
	for _, c := range gm.managed() {
		if !c.Active() || gm.suspect[c.Name()] {
			continue
		}
		w := gm.agg.Window(c.Name())
		if w == nil || w.Len() < gm.policy.MinSamples {
			continue
		}
		if w.LastQueueLen() >= gm.policy.TriggerQueueLen || w.QueueTrend() > 0 {
			candidates = append(candidates, c.Name())
		}
	}
	var out []*Container
	for _, name := range gm.agg.Ranked(candidates) {
		out = append(out, gm.rt.byName[name])
	}
	return out
}

// gather collects up to want nodes: spare first, then — only when the
// need is attainable — steals from over-provisioned containers.
func (gm *GlobalManager) gather(p *sim.Proc, bneck *Container, want int, unattainable bool) []*cluster.Node {
	var grant []*cluster.Node
	take := want
	if take > len(gm.spare) {
		take = len(gm.spare)
	}
	grant = append(grant, gm.spare[:take]...)
	gm.spare = gm.spare[take:]
	want -= take
	if want > 0 && !unattainable {
		// Replenish from another shard's pool for later ticks
		// (fire-and-forget; no-op on legacy runs).
		gm.requestSteal(p, want)
	}
	if want <= 0 || unattainable || gm.policy.DisableStealing {
		return grant
	}
	// Steal from the single most over-provisioned container (one victim
	// per action, like the paper's Fig. 7 Helper decrease; further
	// shortfalls are addressed at later ticks if the bottleneck
	// persists).
	victim, surplus := gm.mostOverProvisioned(p, bneck)
	if victim == nil || surplus <= 0 {
		return grant
	}
	n := surplus
	if n > want {
		n = want
	}
	before := len(gm.spare)
	resp := gm.Decrease(p, victim.Name(), n)
	if resp == nil {
		return grant
	}
	stolen := append([]*cluster.Node(nil), gm.spare[before:]...)
	gm.spare = gm.spare[:before]
	if gm.policy.TransactionalTrades && !gm.tradeTxn(p, victim, bneck) {
		// The trade transaction aborted: the removal must not stand
		// without the matching addition. Return the nodes to the victim.
		gm.record(p, Action{T: p.Now(), Kind: "trade-abort", Target: bneck.Name(),
			N: len(stolen), Detail: "rolled back to " + victim.Name()})
		gm.Increase(p, victim.Name(), stolen)
		return grant
	}
	grant = append(grant, stolen...)
	return grant
}

// tradeTxn runs a D2T control transaction across the trade's three
// parties (global manager + donor manager as the writer side, recipient
// manager as the reader side) and reports whether it committed. Injected
// failures make a participant go silent, forcing a consistent abort.
func (gm *GlobalManager) tradeTxn(p *sim.Proc, victim, bneck *Container) bool {
	cfg := txn.Config{Writers: 2, Readers: 1,
		VoteTimeout: gm.policy.TradeVoteTimeout, Tracer: gm.rt.tracer}
	if gm.policy.InjectTradeFailures > 0 {
		gm.policy.InjectTradeFailures--
		cfg.SilentRanks = map[int]bool{1: true} // the donor-side manager fails
	}
	tx, err := txn.New(gm.rt.eng, gm.rt.mach, cfg)
	if err != nil {
		gm.rt.fail(err)
		return false
	}
	st := tx.Run(p)
	gm.rt.trades = append(gm.rt.trades, TradeRecord{T: p.Now(),
		Outcome: st.Outcome, Decided: st.Decided, Outcomes: tx.Outcomes()})
	return st.Outcome == txn.Committed
}

// mostOverProvisioned picks the container with the largest surplus above
// its own needs (respecting MinSize floors), excluding the bottleneck.
func (gm *GlobalManager) mostOverProvisioned(p *sim.Proc, bneck *Container) (*Container, int) {
	var best *Container
	bestSurplus := 0
	for _, c := range gm.managed() {
		if c == bneck || c.State() != StateOnline || len(c.nodes) == 0 ||
			gm.suspect[c.Name()] {
			continue
		}
		if !c.Active() {
			// Inactive containers (pre-crack CNA) hold their nodes in
			// reserve for the event they exist for; stealing them
			// would violate the isolation requirement (§III-A(ii)).
			continue
		}
		q := gm.Query(p, c.Name(), gm.rt.cfg.StagingNodes)
		if q == nil {
			continue
		}
		floor := c.spec.MinSize
		if floor < 1 {
			floor = 1
		}
		need := q.Needed
		if need < floor {
			need = floor
		}
		surplus := q.Size - need
		if surplus > bestSurplus {
			best, bestSurplus = c, surplus
		}
	}
	return best, bestSurplus
}

// offlineCascade prunes the bottleneck and its active downstream
// dependents, after redirecting the upstream container's output to disk
// with provenance listing every analysis that will now be pending.
func (gm *GlobalManager) offlineCascade(p *sim.Proc, bneck *Container) {
	affected := gm.rt.downstreamClosure(bneck)
	var pending []string
	for _, c := range affected {
		pending = append(pending, c.Name())
	}
	// Provenance also names inactive dependents (analyses that never
	// ran).
	for _, c := range gm.rt.containers {
		if !contains(pending, c.Name()) && gm.rt.isDownstreamOf(bneck, c) {
			pending = append(pending, c.Name())
		}
	}
	// Cross-shard edges: the cascade only touches containers this manager
	// has a bridge to. A neighbor in another shard keeps running; its own
	// manager handles it (on legacy runs every container is local, so the
	// guards never fire).
	if up := gm.rt.upstreamOf(bneck); up != nil {
		if _, local := gm.toContainer[up.Name()]; local {
			gm.SetOutput(p, up.Name(), strings.Join(pending, ","))
		}
	}
	for _, c := range affected {
		if _, local := gm.toContainer[c.Name()]; !local {
			continue
		}
		gm.Offline(p, c.Name())
	}
}

// branch executes the pipeline's dynamic branch on crack detection: CSym
// hands over to CNA ("Bonds then kills itself and notifies the next
// stage, CNA, to start reading data").
func (gm *GlobalManager) branch(p *sim.Proc) {
	gm.branchDone = true
	for _, c := range gm.managed() {
		if c.State() != StateOnline {
			continue
		}
		if c.spec.ActivateOnCrack && !c.active {
			gm.Activate(p, c.Name(), true)
		}
		if c.spec.DeactivateOnCrack && c.active {
			gm.Activate(p, c.Name(), false)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
