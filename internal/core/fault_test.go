package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultConfig is the Fig. 7 pipeline with one spare staging node and a
// deterministic crash of a non-manager Bonds node at t=60. Management is
// disabled so the tests observe the self-healing path in isolation.
func faultConfig() Config {
	return Config{
		SimNodes:     256,
		StagingNodes: 14, // DefaultSizes(13) uses 13; one spare remains
		Sizes:        DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
		Policy:       PolicyConfig{DisableManagement: true},
		Faults: &fault.Config{
			// Staging IDs start at SimNodes; helper owns 256..261, bonds
			// 262 (manager) and 263. Crash the non-manager bonds node.
			Crashes: []fault.Crash{{Node: 263, At: 60 * sim.Second}},
		},
	}
}

// stagingConservation checks that every staging node is in exactly one
// place: a container, the spare pool, or the crashed set.
func stagingConservation(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	total := res.Spare
	for _, n := range res.FinalSizes {
		total += n
	}
	for _, id := range res.DownNodes {
		if id >= cfg.SimNodes {
			total++
		}
	}
	if total != cfg.StagingNodes {
		t.Fatalf("staging nodes leaked: %d accounted, want %d (sizes %v spare %d down %v)",
			total, cfg.StagingNodes, res.FinalSizes, res.Spare, res.DownNodes)
	}
}

func TestCrashedReplicaHealsFromSpare(t *testing.T) {
	cfg := faultConfig()
	res := runScenario(t, cfg)
	if !hasAction(res, "heal", "bonds") {
		t.Fatalf("no heal recorded: %v", res.Actions)
	}
	if hasAction(res, "degrade", "bonds") {
		t.Fatalf("healed container also degraded: %v", res.Actions)
	}
	// The replacement restores the pre-crash size, consuming the spare.
	if res.FinalSizes["bonds"] != 2 {
		t.Fatalf("bonds at %d nodes after heal, want 2", res.FinalSizes["bonds"])
	}
	if res.Spare != 0 {
		t.Fatalf("spare pool %d after heal, want 0", res.Spare)
	}
	if res.FaultStats.CrashesFired != 1 || len(res.DownNodes) != 1 || res.DownNodes[0] != 263 {
		t.Fatalf("fault accounting wrong: %+v down %v", res.FaultStats, res.DownNodes)
	}
	stagingConservation(t, cfg, res)
	// The heal happens within the detection grace (one watch interval)
	// plus the launch/exchange budget — not at the end of the run.
	for _, a := range res.Actions {
		if a.Kind == "heal" && (a.T < 60*sim.Second || a.T > 150*sim.Second) {
			t.Fatalf("heal at %v, outside the expected window", a.T)
		}
	}
}

func TestCrashedReplicaDegradesWithoutSpare(t *testing.T) {
	cfg := faultConfig()
	cfg.StagingNodes = 13 // all owned; the spare pool is empty
	res := runScenario(t, cfg)
	if !hasAction(res, "degrade", "bonds") {
		t.Fatalf("no degrade recorded: %v", res.Actions)
	}
	if hasAction(res, "heal", "bonds") {
		t.Fatalf("heal without spares: %v", res.Actions)
	}
	// The container continues at the smaller size instead of stalling.
	if res.FinalSizes["bonds"] != 1 {
		t.Fatalf("bonds at %d nodes, want 1 after degrade", res.FinalSizes["bonds"])
	}
	if bonds := res.Recorder.Series("latency.bonds"); bonds.Len() == 0 {
		t.Fatal("degraded bonds stopped processing entirely")
	}
	stagingConservation(t, cfg, res)
}

func TestSelfHealingDisabledLeavesGap(t *testing.T) {
	cfg := faultConfig()
	cfg.Policy.DisableSelfHealing = true
	res := runScenario(t, cfg)
	if hasAction(res, "heal", "bonds") || hasAction(res, "degrade", "bonds") {
		t.Fatalf("healing disabled but restart protocol ran: %v", res.Actions)
	}
	// The dead node stays in the container's nominal set (nobody reaped
	// it), and the spare is never consumed.
	if res.Spare != 1 {
		t.Fatalf("spare %d, want 1 untouched", res.Spare)
	}
}

// The acceptance scenario for suspect marking: a container's manager node
// dies mid-run; the global manager's next control round times out, retries
// with backoff, gives up, marks the container suspect — and the policy
// tick completes instead of blocking forever.
func TestDeadManagerMarkedSuspectWithoutBlockingPolicy(t *testing.T) {
	ticksAfterSuspect := 0
	cfg := Config{
		SimNodes:     256,
		StagingNodes: 14,
		Sizes:        DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
		Policy: PolicyConfig{
			CallTimeout:        5 * sim.Second, // 5+10+20 s to suspect
			DisableSelfHealing: true,           // isolate the suspect path
		},
		Faults: &fault.Config{
			// csym's manager node (first of 264,265) dies at t=50.
			Crashes: []fault.Crash{{Node: 264, At: 50 * sim.Second}},
		},
	}
	cfg.Policy.CustomTick = func(gm *GlobalManager, p *sim.Proc) {
		// Query csym every tick: before the crash it answers; after, the
		// round must eventually give up rather than wedge the manager.
		gm.Query(p, "csym", cfg.StagingNodes)
		if len(gm.Suspects()) > 0 {
			ticksAfterSuspect++
		}
	}
	res := runScenario(t, cfg)
	if !hasAction(res, "suspect", "csym") {
		t.Fatalf("csym never marked suspect: %v", res.Actions)
	}
	if len(res.Suspects) != 1 || res.Suspects[0] != "csym" {
		t.Fatalf("suspects %v, want [csym]", res.Suspects)
	}
	// Policy ticks kept coming after the suspect marking: the control
	// plane did not block on the dead container.
	if ticksAfterSuspect < 3 {
		t.Fatalf("only %d ticks after suspect; policy blocked", ticksAfterSuspect)
	}
	// The suspect marking happened within the retry budget (crash at 50,
	// next tick ≤65, three rounds of 5/10/20 s ≤ 100), not at run end.
	for _, a := range res.Actions {
		if a.Kind == "suspect" && a.T > 110*sim.Second {
			t.Fatalf("suspect at %v: retries took too long", a.T)
		}
	}
}

// A crashed node must fail transfers addressed to it and invalidate the
// descriptors it left queued, but the pipeline keeps flowing.
func TestFaultRunsStayDeterministic(t *testing.T) {
	run := func() *Result { return runScenario(t, faultConfig()) }
	a, b := run(), run()
	av := a.Recorder.Series("latency.bonds").Values()
	bv := b.Recorder.Series("latency.bonds").Values()
	if len(av) != len(bv) {
		t.Fatalf("sample counts differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("divergence at sample %d: %v vs %v", i, av[i], bv[i])
		}
	}
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("action counts differ: %d vs %d", len(a.Actions), len(b.Actions))
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, a.Actions[i], b.Actions[i])
		}
	}
	if a.FaultStats != b.FaultStats {
		t.Fatalf("fault stats differ: %+v vs %+v", a.FaultStats, b.FaultStats)
	}
}

// Link-degradation windows slow the pipeline while active; the run still
// completes, and a fault-free run with the same seed is unperturbed by the
// existence of the fault plumbing.
func TestLinkDegradationWindowSlowsTransfers(t *testing.T) {
	clean := runScenario(t, fig7Config())
	cfg := fig7Config()
	cfg.Policy.DisableManagement = true
	cfg.Faults = &fault.Config{
		Links: []fault.LinkFault{{
			From: 30 * sim.Second, Until: 120 * sim.Second,
			LatencyFactor: 50, SlowdownFactor: 8,
		}},
	}
	degraded := runScenario(t, cfg)
	if degraded.Emitted == 0 {
		t.Fatal("degraded run emitted nothing")
	}
	// During the window, e2e latency must exceed the clean run's floor.
	cleanE2E := clean.Recorder.Series("e2e").Values()
	if len(cleanE2E) == 0 {
		t.Fatal("clean run has no e2e samples")
	}
	floor := cleanE2E[0]
	var worst float64
	for _, pt := range degraded.Recorder.Series("e2e").Points {
		if pt.T >= 30*sim.Second && pt.V > worst {
			worst = pt.V
		}
	}
	if worst <= floor {
		t.Fatalf("degradation invisible: worst %.2fs vs clean floor %.2fs", worst, floor)
	}
}

// A crash of the standby's node must not leave a ghost standby that takes
// over later.
func TestCrashedStandbyNeverTakesOver(t *testing.T) {
	cfg := fig7Config()
	cfg.StandbyGM = true
	cfg.Faults = &fault.Config{
		// The standby lives on the second staging node (257).
		Crashes: []fault.Crash{{Node: 257, At: 30 * sim.Second}},
	}
	res := runScenario(t, cfg)
	if hasAction(res, "failover", "global-manager") {
		t.Fatalf("dead standby took over: %v", res.Actions)
	}
	// The primary keeps managing normally.
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("primary stopped managing: %v", res.Actions)
	}
}

// A container whose MANAGER node dies goes silent rather than loud: the
// surviving replicas starve, report no queue pressure, and the bottleneck
// scan never gains a reason to call the container. The silence probe must
// give the suspect machinery that reason — under the default policy tick,
// with no CustomTick forcing the call.
func TestHeadlessContainerSuspectedBySilenceProbe(t *testing.T) {
	cfg := Config{
		SimNodes:     256,
		StagingNodes: 14,
		Sizes:        DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
		Policy: PolicyConfig{
			CallTimeout:        5 * sim.Second, // 5+10+20 s probe budget
			DisableSelfHealing: true,           // isolate the detection path
		},
		Faults: &fault.Config{
			// csym's manager node (first of 264,265) dies at t=50. Nothing
			// downstream of csym applies backpressure that would make the
			// GM call it on its own.
			Crashes: []fault.Crash{{Node: 264, At: 50 * sim.Second}},
		},
	}
	res := runScenario(t, cfg)
	if !hasAction(res, "suspect", "csym") {
		t.Fatalf("headless csym never suspected: %v", res.Actions)
	}
	if len(res.Suspects) != 1 || res.Suspects[0] != "csym" {
		t.Fatalf("suspects %v, want [csym]", res.Suspects)
	}
	// Detection latency is bounded: SilencePatience (4) intervals of
	// silence from the last proof of life, one probe round of 5+10+20 s.
	for _, a := range res.Actions {
		if a.Kind == "suspect" && a.T > 200*sim.Second {
			t.Fatalf("suspect at %v: silence probe too slow", a.T)
		}
	}
	// The control plane keeps managing the responsive part of the
	// pipeline: the Fig. 7 helper->bonds trade still lands.
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("management stopped after the suspect: %v", res.Actions)
	}
}
