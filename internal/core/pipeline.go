package core

import (
	"fmt"
	"sort"

	"repro/internal/adios"
	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/fault"
	"repro/internal/lammps"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/shardmgr"
	"repro/internal/sim"
	"repro/internal/smartpointer"
	"repro/internal/trace"
)

// Config assembles a complete managed pipeline run: the machine split
// into simulation and staging partitions, the component stages and their
// initial sizes, the workload, and the management policy.
type Config struct {
	// SimNodes and StagingNodes partition the batch allocation (paper
	// ratios range 1:512 to 1:2048; the experiments use 256:13, 512:24,
	// 1024:24).
	SimNodes, StagingNodes int
	// Machine overrides the machine model (default: Franklin sized to
	// SimNodes+StagingNodes).
	Machine *cluster.Config
	// Specs lists the pipeline stages in order (default: DefaultSpecs).
	Specs []ComponentSpec
	// Sizes maps component name to initial node count. Unlisted
	// components get 1 node. The sum must fit within StagingNodes;
	// leftovers become the spare pool.
	Sizes map[string]int
	// OutputPeriod is the simulation's output cadence (default 15 s).
	OutputPeriod sim.Time
	// Steps is the number of output steps the simulation emits.
	Steps int
	// CrackStep (≥ 0) injects crack formation at that output step.
	CrackStep int64
	// QueueCap bounds each channel's metadata queue (default 30).
	QueueCap int
	// WriterBufBytes bounds each DataTap writer buffer (default 1 GiB).
	WriterBufBytes int64
	// Delivery selects the data plane's delivery guarantee for the stage
	// channels (zero value = best-effort, today's semantics). The
	// checkpoint channel always runs best-effort: checkpoints are
	// periodic full-state dumps, so a lost one is superseded, not lost
	// work.
	Delivery datatap.DeliveryConfig
	// Scale overrides the workload scale (default from SimNodes).
	Scale lammps.Scale
	// Policy tunes the global manager.
	Policy PolicyConfig
	// Seed drives all randomness.
	Seed int64
	// DrainTime extends the run after the last output step so the
	// pipeline can flush (default 4 output periods).
	DrainTime sim.Time
	// CheckpointEvery, when > 0, makes the simulation emit a full-state
	// checkpoint every k output steps, aggregated to stable storage by a
	// dedicated checkpoint container with a relaxed SLA.
	CheckpointEvery int
	// CheckpointNodes sizes the checkpoint container (default 1). Its
	// nodes come out of the staging partition like everyone else's.
	CheckpointNodes int
	// SpreadPlacement assigns staging nodes to containers round-robin
	// instead of in contiguous blocks. With a topology-aware machine
	// model this scatters each container across the interconnect — the
	// placement question the paper leaves as future work, exposed here
	// for the placement ablation benchmark.
	SpreadPlacement bool
	// MonitorSampleEvery rate-limits each container's monitoring
	// reports: at most one sample per interval crosses the machine
	// (0 = every sample). §III-E: "how often they are captured".
	MonitorSampleEvery sim.Time
	// StandbyGM deploys a standby global manager on the second staging
	// node that takes over if the primary dies (§III-B's single point
	// of failure, addressed ZooKeeper-style with heartbeats and
	// failover).
	StandbyGM bool
	// MonitorAggregateN pre-aggregates N samples into one averaged
	// report at the container boundary before it crosses the machine
	// (0/1 = none). §III-E: "how they are processed and where".
	MonitorAggregateN int
	// TraceSteps records each step's per-stage completion times in
	// Result.StepTrace (diagnostic; off by default).
	TraceSteps bool
	// Shards > 1 replaces the single global manager with the sharded
	// hierarchical control plane: containers are assigned to Shards
	// shard managers by a seeded consistent-hash ring, with a
	// meta-manager above them for shard liveness, cross-shard steals,
	// and standby promotion (see shard.go / meta.go). 0 or 1 keeps the
	// legacy single manager, byte-identical to pre-shard behavior.
	Shards int
	// ShardSeed seeds the assignment ring (default: Seed), so placement
	// can be varied independently of the run's randomness.
	ShardSeed int64
	// ShardStandbys deploys a standby manager per shard (0 or 1).
	ShardStandbys int
	// Subscribers attaches a streaming fan-out fleet — thousands of
	// simulated dashboards with Zipf-distributed read rates — to one stage
	// channel (see subscribe.go). Nil means no subscribers.
	Subscribers *SubscribersConfig
	// Faults injects a deterministic fault schedule (node crashes, link
	// degradation, partitions, control-message loss, subscriber crashes)
	// into the run. Nil or empty means a fault-free machine; see the fault
	// package.
	Faults *fault.Config
	// Trace enables the causal tracing subsystem: spans from every layer
	// land in a flight-recorder ring that auto-dumps on SLA violation,
	// queue overflow, or node crash. Nil disables tracing entirely.
	Trace *trace.Config
}

func (c Config) withDefaults() Config {
	if c.SimNodes <= 0 {
		c.SimNodes = 256
	}
	if c.StagingNodes <= 0 {
		c.StagingNodes = 13
	}
	if c.Specs == nil {
		c.Specs = DefaultSpecs()
	}
	if c.OutputPeriod <= 0 {
		c.OutputPeriod = 15 * sim.Second
	}
	if c.Steps <= 0 {
		c.Steps = 20
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 30
	}
	if c.WriterBufBytes <= 0 {
		c.WriterBufBytes = 4 << 30 // half a Franklin node's memory
	}
	if c.Scale.AtomCount == 0 {
		c.Scale = lammps.ScaleForNodes(c.SimNodes)
	}
	if c.DrainTime <= 0 {
		c.DrainTime = 4 * c.OutputPeriod
	}
	if c.Sizes == nil {
		c.Sizes = map[string]int{}
	}
	if c.Shards > 1 && c.ShardSeed == 0 {
		c.ShardSeed = c.Seed
	}
	c.Policy = c.Policy.withDefaults(c.OutputPeriod, c.QueueCap)
	return c
}

// DefaultSizes returns the initial container sizing used by the paper's
// experiment configurations for a given staging area.
func DefaultSizes(stagingNodes int) map[string]int {
	switch {
	case stagingNodes >= 24:
		// Figs. 8/9: 24 staging nodes, 4 spare at the start.
		return map[string]int{"helper": 8, "bonds": 4, "csym": 4, "cna": 4}
	default:
		// Fig. 7: 13 staging nodes, no spare.
		return map[string]int{"helper": 6, "bonds": 2, "csym": 2, "cna": 3}
	}
}

// Runtime is an assembled pipeline run.
type Runtime struct {
	cfg      Config
	eng      *sim.Engine
	mach     *cluster.Machine
	launcher *cluster.Launcher
	io       *adios.IO

	containers   []*Container
	byName       map[string]*Container
	channels     []*datatap.Channel
	ckptChannel  *datatap.Channel
	gm           *GlobalManager
	standby      *GlobalManager
	stagingNodes []*cluster.Node
	rec          *metrics.Recorder

	// Sharded control plane (all nil/empty on legacy runs; rt.gm is nil
	// when sharded). shardPrimary tracks the acting manager per shard
	// (reassigned on standby promotion); shardMgrs lists every manager in
	// creation order (primaries, then standbys) for shutdown and oracles;
	// dir is the container/node ownership ledger.
	meta         *MetaManager
	shardPrimary []*GlobalManager
	shardStandby []*GlobalManager
	shardMgrs    []*GlobalManager
	dir          *shardmgr.Directory

	// Subscriber fan-out (nil without Config.Subscribers): the hub on the
	// fanned-out stage channel and the container serving its control
	// rounds.
	subHub  *datatap.SubHub
	subHost *Container

	producerDone bool
	emitted      int
	exits        int64
	dropped      int
	firstErr     error
	stepTrace    map[int64]map[string]sim.Time
	deliveryLost []LostStep

	// faults is the armed fault schedule (nil on fault-free runs).
	faults *fault.Schedule
	// tracer is the causal trace recorder (nil when tracing is off; every
	// instrumentation site is nil-safe).
	tracer *trace.Recorder
	// ctlSeq numbers control rounds across every global manager instance;
	// a runtime-wide counter keeps a standby's rounds distinct from the
	// primary's in the containers' deduplication caches.
	ctlSeq int64
	// primary remembers the manager that started the run as primary
	// (rt.gm is reassigned on failover).
	primary *GlobalManager
	// rounds / trades / crashVictims are runtime-wide logs consumed by the
	// chaos oracles (see internal/chaos): every control-round send attempt,
	// every D2T trade outcome, and every replica lost to a node crash.
	rounds       []RoundRecord
	trades       []TradeRecord
	crashVictims []CrashVictim
}

// Build assembles (but does not run) a pipeline runtime.
func Build(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	rt := &Runtime{cfg: cfg, byName: map[string]*Container{}, rec: metrics.NewRecorder()}
	if cfg.TraceSteps {
		rt.stepTrace = make(map[int64]map[string]sim.Time)
	}
	rt.eng = sim.NewEngine(cfg.Seed)
	if cfg.Trace != nil {
		rt.tracer = trace.New(rt.eng, *cfg.Trace)
		if k := trace.NewKernel(rt.tracer); k != nil {
			rt.eng.SetTracer(k)
		}
	}
	machCfg := cluster.Franklin()
	if cfg.Machine != nil {
		machCfg = *cfg.Machine
	}
	machCfg.Nodes = cfg.SimNodes + cfg.StagingNodes
	rt.mach = cluster.New(rt.eng, machCfg)
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		fc := *cfg.Faults
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		sched, err := fault.NewSchedule(rt.eng, fc)
		if err != nil {
			return nil, err
		}
		rt.faults = sched
		// The machine registers its crash handler first, so by the time
		// the runtime's handler below runs, the node is already down.
		rt.mach.SetFaults(sched)
		sched.OnCrash(rt.onNodeCrash)
	}
	rt.launcher = cluster.NewLauncher(rt.mach)
	rt.io = adios.NewIO(rt.eng, rt.mach, adios.DefaultDisk())

	all, err := rt.mach.Allocate(cfg.SimNodes + cfg.StagingNodes)
	if err != nil {
		return nil, err
	}
	_, staging, err := all.Split(cfg.SimNodes)
	if err != nil {
		return nil, err
	}

	// Assign container nodes front-to-back (contiguous blocks keep a
	// container's replicas topologically close) or interleaved when
	// SpreadPlacement is set; leftovers are spare.
	stagingNodes := staging.Nodes()
	if cfg.Shards > 1 {
		if err := rt.buildSharded(cfg, stagingNodes); err != nil {
			return nil, err
		}
		return rt, nil
	}
	if cfg.SpreadPlacement {
		stagingNodes = interleave(stagingNodes, len(cfg.Specs))
	}
	next := 0
	nodesFor := map[string][]*cluster.Node{}
	for _, spec := range cfg.Specs {
		n := cfg.Sizes[spec.Name]
		if n <= 0 {
			n = 1
		}
		if next+n > len(stagingNodes) {
			return nil, fmt.Errorf("core: container sizes exceed %d staging nodes", len(stagingNodes))
		}
		nodesFor[spec.Name] = stagingNodes[next : next+n]
		next += n
	}
	spare := stagingNodes[next:]
	rt.stagingNodes = stagingNodes

	// The global manager runs on the first staging node. It starts the
	// run as epoch 1; a standby takeover bumps the epoch (see fence.go).
	rt.gm = newGlobalManager(rt, stagingNodes[0].ID, cfg.Policy, spare)
	rt.gm.epoch = 1
	rt.primary = rt.gm
	if cfg.StandbyGM {
		standbyPolicy := cfg.Policy
		standbyPolicy.KillGMAt = 0 // the standby does not inherit the death sentence
		standbyNode := stagingNodes[0].ID
		if len(stagingNodes) > 1 {
			standbyNode = stagingNodes[1].ID
		}
		rt.standby = newGlobalManager(rt, standbyNode, standbyPolicy, nil)
		rt.standby.peerEpoch = 1 // the primary's starting epoch
		rt.gm.toStandby = rt.gm.ev.NewBridge(rt.standby.inbox(), 0)
	}

	// Channels: producer→stage0, then stage i→stage i+1. The last two
	// stages (CSym, CNA) share the branch channel when the pipeline has
	// the default 4-stage shape: both read the Bonds output.
	branched := len(cfg.Specs) == 4 && cfg.Specs[3].ActivateOnCrack
	nChannels := len(cfg.Specs)
	if branched {
		nChannels = 3
	}
	rt.channels = make([]*datatap.Channel, nChannels)
	for i := range rt.channels {
		consumer := cfg.Specs[i].Name
		home := nodesFor[consumer][0].ID
		rt.channels[i] = datatap.NewChannel(rt.eng, rt.mach,
			fmt.Sprintf("ch.%d.%s", i, consumer),
			datatap.Config{QueueCap: cfg.QueueCap, WriterBufBytes: cfg.WriterBufBytes,
				HomeNode: home, Delivery: cfg.Delivery})
		rt.channels[i].SetTracer(rt.tracer)
	}

	for i, spec := range cfg.Specs {
		var input, output *datatap.Channel
		var downstream string
		switch {
		case branched && i >= 2:
			input = rt.channels[2] // CSym and CNA both read Bonds output
		case branched && i == 1:
			input, output = rt.channels[1], rt.channels[2]
			downstream = cfg.Specs[2].Name
		default:
			input = rt.channels[i]
			if i+1 < len(rt.channels) {
				output = rt.channels[i+1]
				downstream = cfg.Specs[i+1].Name
			}
		}
		c, err := rt.newContainer(spec, nodesFor[spec.Name], input, output, downstream)
		if err != nil {
			return nil, err
		}
		rt.containers = append(rt.containers, c)
		rt.byName[spec.Name] = c
	}
	// Optional checkpoint path: a dedicated aggregation container with a
	// relaxed SLA drains the simulation's checkpoint stream to disk.
	if cfg.CheckpointEvery > 0 {
		nCkpt := cfg.CheckpointNodes
		if nCkpt <= 0 {
			nCkpt = 1
		}
		if nCkpt > len(rt.gm.spare) {
			return nil, fmt.Errorf("core: checkpoint container needs %d nodes, %d spare",
				nCkpt, len(rt.gm.spare))
		}
		ckptNodes := rt.gm.spare[:nCkpt]
		rt.gm.spare = rt.gm.spare[nCkpt:]
		models := smartpointer.DefaultCostModels()
		spec := ComponentSpec{
			Name:       "checkpoint",
			Kind:       smartpointer.KindHelper,
			Model:      smartpointer.ModelTree,
			Cost:       models[smartpointer.KindHelper],
			Essential:  true, // losing checkpoints violates reliability SLAs
			DiskOutput: true,
			SLAPeriods: cfg.CheckpointEvery, // relaxed: due by the next checkpoint
		}
		// Deliberately best-effort (no Delivery config): a lost checkpoint
		// is superseded by the next one, and retaining multi-GB checkpoint
		// payloads for redelivery would defeat their drain-fast purpose.
		rt.ckptChannel = datatap.NewChannel(rt.eng, rt.mach, "ch.ckpt",
			datatap.Config{QueueCap: cfg.QueueCap, WriterBufBytes: cfg.WriterBufBytes,
				HomeNode: ckptNodes[0].ID})
		rt.ckptChannel.SetTracer(rt.tracer)
		c, err := rt.newContainer(spec, ckptNodes, rt.ckptChannel, nil, "")
		if err != nil {
			return nil, err
		}
		rt.containers = append(rt.containers, c)
		rt.byName[spec.Name] = c
		rt.channels = append(rt.channels, rt.ckptChannel)
	}
	// At-least-once wiring: each consumer container reports input-sequence
	// gaps upward, and the managers learn which upstream container to aim
	// the answering ResendReq at. Channel 0 has no upstream *container*
	// (the producer writes it directly), so no route is registered for its
	// consumer — the channel-local repair loop is the recovery there.
	for _, c := range rt.containers {
		if c.input == nil {
			continue
		}
		c := c
		c.input.SetGapHandler(func(p *sim.Proc, missing int64) { c.noteGap(p, missing) })
		if up := rt.upstreamOf(c); up != nil {
			rt.gm.resendRoute[c.Name()] = up.Name()
			if rt.standby != nil {
				rt.standby.resendRoute[c.Name()] = up.Name()
			}
		}
	}
	for _, c := range rt.containers {
		c.start()
		rt.gm.connect(c)
		if rt.standby != nil {
			rt.standby.connect(c)
		}
		if rt.faults != nil && !cfg.Policy.DisableSelfHealing {
			c := c
			rt.eng.Go(c.spec.Name+"-watch", c.replicaWatchLoop)
		}
	}
	if err := rt.buildSubscribers(cfg); err != nil {
		return nil, err
	}
	rt.eng.Go("global-manager", rt.gm.run)
	if rt.standby != nil {
		rt.eng.Go("standby-manager", rt.standby.standbyLoop)
	}
	rt.eng.Go("lammps-producer", rt.producer)
	return rt, nil
}

// buildSharded assembles the sharded hierarchical control plane: staging
// node 0 hosts the meta-manager, nodes 1..S the shard primaries, the next
// S·k the shard standbys (shard-major), and the rest the container
// region. Containers map to shards by the seeded consistent-hash ring;
// each shard manager runs the full round machinery over its scope, while
// the meta-manager does only slow-path work — shard liveness, cross-shard
// steal brokering, standby promotion (see shard.go / meta.go).
func (rt *Runtime) buildSharded(cfg Config, stagingNodes []*cluster.Node) error {
	S := cfg.Shards
	k := cfg.ShardStandbys
	if k < 0 || k > 1 {
		return fmt.Errorf("core: ShardStandbys must be 0 or 1, got %d", k)
	}
	if cfg.StandbyGM {
		return fmt.Errorf("core: StandbyGM is the legacy failover knob; use ShardStandbys with Shards > 1")
	}
	if cfg.Policy.KillGMAt > 0 {
		return fmt.Errorf("core: Policy.KillGMAt targets the legacy single manager; crash shard managers via a fault schedule")
	}
	mgrCount := 1 + S*(1+k)
	if mgrCount >= len(stagingNodes) {
		return fmt.Errorf("core: %d control-plane nodes (meta + %d shards ×%d) leave no staging nodes for containers (%d total)",
			mgrCount, S, 1+k, len(stagingNodes))
	}
	rt.stagingNodes = stagingNodes
	region := stagingNodes[mgrCount:]
	if cfg.SpreadPlacement {
		region = interleave(region, len(cfg.Specs))
	}
	next := 0
	nodesFor := map[string][]*cluster.Node{}
	for _, spec := range cfg.Specs {
		n := cfg.Sizes[spec.Name]
		if n <= 0 {
			n = 1
		}
		if next+n > len(region) {
			return fmt.Errorf("core: container sizes exceed %d staging nodes", len(region))
		}
		nodesFor[spec.Name] = region[next : next+n]
		next += n
	}
	leftover := region[next:]

	// Ring + directory: container→shard by seeded consistent hash, spare
	// nodes round-robin into per-shard pools.
	ring := shardmgr.NewRing(cfg.ShardSeed, S)
	names := make([]string, 0, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		names = append(names, spec.Name)
	}
	rt.dir = shardmgr.NewDirectory(ring, names)
	for _, spec := range cfg.Specs {
		s := rt.dir.ShardOf(spec.Name)
		for _, n := range nodesFor[spec.Name] {
			rt.dir.SetNodeShard(n.ID, s)
		}
	}
	pools := cluster.SplitPool(leftover, S)
	for s, pool := range pools {
		for _, n := range pool {
			rt.dir.SetNodeShard(n.ID, s)
		}
	}

	rt.meta = newMetaManager(rt, stagingNodes[0].ID, S, cfg.Policy.Interval)
	rt.shardPrimary = make([]*GlobalManager, S)
	rt.shardStandby = make([]*GlobalManager, S)
	for s := 0; s < S; s++ {
		gm := newGlobalManager(rt, stagingNodes[1+s].ID, cfg.Policy, pools[s])
		gm.shard = s
		gm.epoch = 1
		rt.shardPrimary[s] = gm
		rt.shardMgrs = append(rt.shardMgrs, gm)
	}
	for s := 0; s < S && k > 0; s++ {
		sb := newGlobalManager(rt, stagingNodes[1+S+s].ID, cfg.Policy, nil)
		sb.shard = s
		sb.peerEpoch = 1 // the shard primary's starting epoch
		rt.shardStandby[s] = sb
		rt.shardMgrs = append(rt.shardMgrs, sb)
		primary := rt.shardPrimary[s]
		primary.toStandby = primary.ev.NewBridge(sb.inbox(), 0)
		rt.meta.standbyInbox[s] = sb.inbox()
	}
	// Every shard manager — standbys included, since a promoted standby
	// inherits the beat/steal duties — gets an upward bridge to the meta.
	for _, gm := range rt.shardMgrs {
		gm.toMeta = gm.ev.NewBridge(rt.meta.inbox(), 0)
	}

	// Channels and containers: same wiring as the legacy build, plus the
	// shard assignment on each container.
	branched := len(cfg.Specs) == 4 && cfg.Specs[3].ActivateOnCrack
	nChannels := len(cfg.Specs)
	if branched {
		nChannels = 3
	}
	rt.channels = make([]*datatap.Channel, nChannels)
	for i := range rt.channels {
		consumer := cfg.Specs[i].Name
		home := nodesFor[consumer][0].ID
		rt.channels[i] = datatap.NewChannel(rt.eng, rt.mach,
			fmt.Sprintf("ch.%d.%s", i, consumer),
			datatap.Config{QueueCap: cfg.QueueCap, WriterBufBytes: cfg.WriterBufBytes,
				HomeNode: home, Delivery: cfg.Delivery})
		rt.channels[i].SetTracer(rt.tracer)
	}
	for i, spec := range cfg.Specs {
		var input, output *datatap.Channel
		var downstream string
		switch {
		case branched && i >= 2:
			input = rt.channels[2]
		case branched && i == 1:
			input, output = rt.channels[1], rt.channels[2]
			downstream = cfg.Specs[2].Name
		default:
			input = rt.channels[i]
			if i+1 < len(rt.channels) {
				output = rt.channels[i+1]
				downstream = cfg.Specs[i+1].Name
			}
		}
		c, err := rt.newContainer(spec, nodesFor[spec.Name], input, output, downstream)
		if err != nil {
			return err
		}
		c.shard = rt.dir.ShardOf(spec.Name)
		rt.containers = append(rt.containers, c)
		rt.byName[spec.Name] = c
	}
	if cfg.CheckpointEvery > 0 {
		nCkpt := cfg.CheckpointNodes
		if nCkpt <= 0 {
			nCkpt = 1
		}
		cs := ring.Assign("checkpoint")
		rt.dir.SetShardOf("checkpoint", cs)
		owner := rt.shardPrimary[cs]
		if nCkpt > len(owner.spare) {
			return fmt.Errorf("core: checkpoint container needs %d nodes, shard %d has %d spare",
				nCkpt, cs, len(owner.spare))
		}
		ckptNodes := owner.spare[:nCkpt]
		owner.spare = owner.spare[nCkpt:]
		models := smartpointer.DefaultCostModels()
		spec := ComponentSpec{
			Name:       "checkpoint",
			Kind:       smartpointer.KindHelper,
			Model:      smartpointer.ModelTree,
			Cost:       models[smartpointer.KindHelper],
			Essential:  true,
			DiskOutput: true,
			SLAPeriods: cfg.CheckpointEvery,
		}
		rt.ckptChannel = datatap.NewChannel(rt.eng, rt.mach, "ch.ckpt",
			datatap.Config{QueueCap: cfg.QueueCap, WriterBufBytes: cfg.WriterBufBytes,
				HomeNode: ckptNodes[0].ID})
		rt.ckptChannel.SetTracer(rt.tracer)
		c, err := rt.newContainer(spec, ckptNodes, rt.ckptChannel, nil, "")
		if err != nil {
			return err
		}
		c.shard = cs
		rt.containers = append(rt.containers, c)
		rt.byName[spec.Name] = c
		rt.channels = append(rt.channels, rt.ckptChannel)
	}

	// Each shard manager's scope: its shard's containers, in stage order.
	// Standbys share the slice — it is read-only after build.
	for s := 0; s < S; s++ {
		var scope []*Container
		for _, c := range rt.containers {
			if c.shard == s {
				scope = append(scope, c)
			}
		}
		rt.shardPrimary[s].scope = scope
		if sb := rt.shardStandby[s]; sb != nil {
			sb.scope = scope
		}
	}

	// Gap routes live on the READER's shard manager: the GapNotice lands
	// there, and if the upstream belongs to another shard the manager
	// relays it through the meta (see relayGap / routeGap).
	for _, c := range rt.containers {
		if c.input == nil {
			continue
		}
		c := c
		c.input.SetGapHandler(func(p *sim.Proc, missing int64) { c.noteGap(p, missing) })
		if up := rt.upstreamOf(c); up != nil {
			rt.shardPrimary[c.shard].resendRoute[c.Name()] = up.Name()
			if sb := rt.shardStandby[c.shard]; sb != nil {
				sb.resendRoute[c.Name()] = up.Name()
			}
		}
	}
	for _, c := range rt.containers {
		c.start()
		rt.shardPrimary[c.shard].connect(c)
		if sb := rt.shardStandby[c.shard]; sb != nil {
			sb.connect(c)
		}
		if rt.faults != nil && !cfg.Policy.DisableSelfHealing {
			c := c
			rt.eng.Go(c.spec.Name+"-watch", c.replicaWatchLoop)
		}
	}
	if err := rt.buildSubscribers(cfg); err != nil {
		return err
	}
	rt.eng.Go("meta-manager", rt.meta.run)
	for s := 0; s < S; s++ {
		rt.eng.Go(fmt.Sprintf("shard-%d-manager", s), rt.shardPrimary[s].run)
		if sb := rt.shardStandby[s]; sb != nil {
			rt.eng.Go(fmt.Sprintf("shard-%d-standby", s), sb.standbyLoop)
		}
	}
	rt.eng.Go("lammps-producer", rt.producer)
	return nil
}

// producer drives the simulated LAMMPS run into the first channel.
func (rt *Runtime) producer(p *sim.Proc) {
	group := rt.io.DeclareGroup("lammps.out")
	group.UseDataTap(rt.channels[0].NewWriter(0)) // sim partition node 0
	w := lammps.Workload{
		Scale:           rt.cfg.Scale,
		OutputPeriod:    rt.cfg.OutputPeriod,
		Steps:           rt.cfg.Steps,
		CrackStep:       rt.cfg.CrackStep,
		CheckpointEvery: rt.cfg.CheckpointEvery,
		OnStep: func(step int64, sw *adios.StepWriter) {
			sw.SetAttr(AttrBirth, fmt.Sprintf("%d", int64(rt.eng.Now())))
		},
	}
	if rt.cfg.CrackStep == 0 && rt.cfg.Steps > 0 {
		w.CrackStep = 0
	}
	if rt.cfg.CrackStep < 0 {
		w.CrackStep = -1
	}
	var ckptGroup *adios.Group
	if rt.ckptChannel != nil {
		ckptGroup = rt.io.DeclareGroup("lammps.ckpt")
		ckptGroup.UseDataTap(rt.ckptChannel.NewWriter(0))
	}
	n, err := w.Run(p, group, ckptGroup)
	if err != nil {
		rt.fail(err)
	}
	rt.emitted = n
	rt.producerDone = true
}

// Run executes the scenario to its virtual-time horizon, then shuts the
// pipeline down cleanly.
func (rt *Runtime) Run() (*Result, error) {
	horizon := sim.Time(rt.cfg.Steps)*rt.cfg.OutputPeriod + rt.cfg.DrainTime
	rt.eng.RunUntil(horizon)
	rt.shutdown()
	rt.eng.Run()
	if rt.firstErr != nil {
		return nil, rt.firstErr
	}
	return rt.result(), nil
}

// shutdown closes channels and mailboxes so every process exits.
func (rt *Runtime) shutdown() {
	for _, ch := range rt.channels {
		ch.Resume() // unblock any writer parked on a pause
		ch.Close()
	}
	for _, c := range rt.containers {
		for _, r := range c.replicas {
			r.stop = true
		}
		c.mailbox.Close()
		c.toGM.CloseBridge()
		if c.staleGM != nil {
			c.staleGM.CloseBridge()
		}
	}
	// After a takeover rt.gm aliases rt.standby, and the original
	// primary — possibly still alive and ticking — is only reachable via
	// rt.primary; close every distinct manager or its loop outlives the
	// shutdown and the post-horizon drain never finishes.
	closed := map[*GlobalManager]bool{}
	for _, gm := range []*GlobalManager{rt.primary, rt.gm, rt.standby} {
		if gm == nil || closed[gm] {
			continue
		}
		closed[gm] = true
		gm.closeBridges()
		gm.ctl.Close()
		gm.rsp.Close()
	}
	for _, gm := range rt.shardMgrs {
		if closed[gm] {
			continue
		}
		closed[gm] = true
		gm.closeBridges()
		gm.ctl.Close()
		gm.rsp.Close()
	}
	if rt.meta != nil {
		rt.meta.close()
	}
}

// interleave reorders nodes with stride k so consecutive assignment
// slots land far apart in machine order.
func interleave(nodes []*cluster.Node, k int) []*cluster.Node {
	if k < 2 || len(nodes) < 2 {
		return nodes
	}
	out := make([]*cluster.Node, 0, len(nodes))
	for off := 0; off < k; off++ {
		for i := off; i < len(nodes); i += k {
			out = append(out, nodes[i])
		}
	}
	return out
}

// Shutdown terminates the pipeline early and drains all processes. It is
// for callers driving the runtime step-by-step (microbenchmarks); Run
// calls the same path internally.
func (rt *Runtime) Shutdown() {
	rt.shutdown()
	rt.eng.Run()
}

// TakeSpare removes up to n nodes from the global manager's spare pool
// (for experiments that drive resize protocols directly).
func (rt *Runtime) TakeSpare(n int) []*cluster.Node {
	if rt.gm == nil {
		return nil
	}
	if n > len(rt.gm.spare) {
		n = len(rt.gm.spare)
	}
	nodes := rt.gm.spare[:n]
	rt.gm.spare = rt.gm.spare[n:]
	return nodes
}

// onNodeCrash is the runtime-level crash handler, invoked by the fault
// schedule after the machine has taken the node down. It kills the
// software resident on the node: replica processes get their stop flags
// and in-flight computations aborted (the interrupted step requeues, so
// a survivor can redo it), dead writer endpoints are detached from their
// channels, queued descriptors whose payload died with the node are
// invalidated, and a manager whose node died stops serving.
func (rt *Runtime) onNodeCrash(id int) {
	rt.tracer.Instant(0, "fault", "crash").Node(id).End()
	rt.tracer.Trigger(fmt.Sprintf("crash:node%d", id))
	for _, ch := range rt.channels {
		ch.InvalidateNode(id)
	}
	for _, c := range rt.containers {
		for _, r := range c.replicas {
			if r.node.ID != id {
				continue
			}
			rt.crashVictims = append(rt.crashVictims, CrashVictim{
				T: rt.eng.Now(), Node: id, Container: c.Name(),
				Manager: c.mgrEV.Node() == id,
			})
			r.stop = true
			if r.busy && r.abort != nil {
				r.abort.Fire()
			}
			if r.writer != nil && c.output != nil {
				c.output.RemoveWriter(r.writer)
			}
			// Attachment order, not map order: RemoveWriter can release a
			// parked process into the event schedule.
			for _, tap := range c.taps {
				if w, ok := r.tapWriters[tap]; ok {
					tap.RemoveWriter(w)
				}
			}
		}
		if c.mgrEV.Node() == id && c.state != StateOffline {
			c.mailbox.Close()
		}
	}
	if rt.gm != nil && rt.gm.node == id {
		rt.gm.dead = true
	}
	if rt.standby != nil && rt.standby.node == id {
		rt.standby.dead = true
	}
	for _, gm := range rt.shardMgrs {
		if gm.node == id {
			gm.dead = true
		}
	}
	if rt.meta != nil && rt.meta.node == id {
		rt.meta.dead = true
	}
}

// Faults returns the armed fault schedule (nil on fault-free runs).
func (rt *Runtime) Faults() *fault.Schedule { return rt.faults }

// LostStep records one step the data plane knowingly failed to deliver: a
// refused write on a live channel. Shutdown-refused writes are not
// recorded — they are drain truncation, not loss.
type LostStep struct {
	Container string
	Step      int64
	Reason    string
}

// maxLostSteps bounds the loss log; the count of further losses is all
// the oracle needs, and the first entries are what a human debugs from.
const maxLostSteps = 64

// noteDeliveryLoss records a knowingly-lost step for the delivery oracle.
func (rt *Runtime) noteDeliveryLoss(container string, step int64, reason string) {
	if len(rt.deliveryLost) < maxLostSteps {
		rt.deliveryLost = append(rt.deliveryLost,
			LostStep{Container: container, Step: step, Reason: reason})
	}
	rt.tracer.Instant(0, "datatap", "step-lost").Container(container).Step(step).
		Attr("reason", reason).End()
}

// fail records the first runtime error.
func (rt *Runtime) fail(err error) {
	if rt.firstErr == nil {
		rt.firstErr = err
	}
}

// recordSample feeds the experiment recorder. Heartbeat pressure samples
// (Step < 0) go to separate series so the per-step latency curves match
// the paper's figures.
func (rt *Runtime) recordSample(s monitor.Sample) {
	t := s.At
	if s.Step < 0 {
		rt.rec.Series("pressure."+s.Container).Add(t, s.Latency.Seconds())
		rt.rec.Series("queue."+s.Container).Add(t, float64(s.QueueLen))
		return
	}
	rt.rec.Series("latency."+s.Container).Add(t, s.Latency.Seconds())
	rt.rec.Series("queue."+s.Container).Add(t, float64(s.QueueLen))
	rt.rec.Series("service."+s.Container).Add(t, s.Service.Seconds())
	if rt.stepTrace != nil {
		st := rt.stepTrace[s.Step]
		if st == nil {
			st = make(map[string]sim.Time)
			rt.stepTrace[s.Step] = st
		}
		st[s.Container] = t
	}
}

// recordExit notes a step leaving the pipeline. Checkpoint flushes go to
// their own series so the end-to-end analytics latency stays clean.
func (rt *Runtime) recordExit(t sim.Time, fi FrameInfo) {
	if fi.Kind == "checkpoint" {
		if fi.Birth > 0 {
			rt.rec.Series("ckpt.flush").Add(t, (t - fi.Birth).Seconds())
		}
		return
	}
	rt.exits++
	if fi.Birth > 0 {
		rt.rec.Series("e2e").Add(t, (t - fi.Birth).Seconds())
	}
}

// upstreamOf returns the container feeding c (nil if c is fed by the
// simulation itself).
func (rt *Runtime) upstreamOf(c *Container) *Container {
	for _, u := range rt.containers {
		if u == c {
			continue
		}
		if u.output != nil && u.output == c.input {
			return u
		}
	}
	return nil
}

// isDownstreamOf reports whether d consumes (transitively) what c
// produces.
func (rt *Runtime) isDownstreamOf(c, d *Container) bool {
	if c == d {
		return false
	}
	cur := c
	for depth := 0; depth < len(rt.containers); depth++ {
		if cur.output == nil {
			return false
		}
		var next *Container
		for _, cand := range rt.containers {
			if cand.input == cur.output {
				if cand == d {
					return true
				}
				if next == nil {
					next = cand
				}
			}
		}
		if next == nil {
			return false
		}
		cur = next
	}
	return false
}

// downstreamClosure returns c plus every *active online* container
// transitively consuming its output, in pipeline order.
func (rt *Runtime) downstreamClosure(c *Container) []*Container {
	affected := []*Container{c}
	frontier := map[*datatap.Channel]bool{}
	if c.output != nil {
		frontier[c.output] = true
	}
	for _, cand := range rt.containers {
		if cand == c || !cand.Active() {
			continue
		}
		if cand.input != nil && frontier[cand.input] {
			affected = append(affected, cand)
			if cand.output != nil {
				frontier[cand.output] = true
			}
		}
	}
	return affected
}

// --- results ---

// Result summarizes a completed run for the experiment harness.
type Result struct {
	Recorder *metrics.Recorder
	Actions  []Action
	// Emitted is the number of steps the simulation wrote.
	Emitted int
	// ProducerFinished reports whether the simulation completed all its
	// steps (false when backpressure still blocked it at the horizon).
	ProducerFinished bool
	// Exits is the number of steps that left the pipeline (analyzed or
	// provenance-stamped to disk).
	Exits int64
	// Dropped counts steps discarded from queues at offline time.
	Dropped int
	// WriterBlocked is total virtual time the simulation's writer spent
	// blocked (the application-blocking metric containers exist to
	// minimize).
	WriterBlocked sim.Time
	// WriterStalled is only the *parked* portion of the simulation
	// writer's time — pause waits, buffer-space waits, full-queue waits,
	// push retry backoff — excluding transfer costs. The subscriber SLA
	// oracle asserts it stays zero under subscriber-only faults: no
	// dashboard, however slow or dead, may ever stall the simulation.
	WriterStalled sim.Time
	// States maps container name to final state ("online"/"offline").
	States map[string]string
	// FinalSizes maps container name to final node count.
	FinalSizes map[string]int
	// Spare is the final spare node count.
	Spare int
	// Provenance maps container name to the provenance attribute it
	// stamped on disk output (empty if none).
	Provenance map[string]string
	// StepTrace (when Config.TraceSteps) maps step -> container -> the
	// virtual time the container finished that step.
	StepTrace map[int64]map[string]sim.Time
	// Suspects lists containers the global manager gave up on (control
	// rounds exhausted their retries), sorted.
	Suspects []string
	// FaultStats summarizes injected-fault activity (zero value on
	// fault-free runs).
	FaultStats fault.Stats
	// DownNodes lists the machine nodes that crashed during the run.
	DownNodes []int
	// Rounds logs every control-round send attempt with the issuing
	// manager's node and epoch (chaos single-writer oracle).
	Rounds []RoundRecord
	// Trades logs every D2T trade transaction's outcome and per-participant
	// decisions (chaos same-decision oracle).
	Trades []TradeRecord
	// CrashVictims lists the replicas lost to node crashes (chaos
	// heal-completeness oracle).
	CrashVictims []CrashVictim
	// Delivery snapshots each channel's step ledger at run end (chaos
	// delivery oracle). Empty entries are omitted-mode channels' zeroes.
	Delivery []datatap.DeliverySnapshot
	// DeliveryLost lists steps the data plane knowingly failed to deliver
	// (refused writes on live channels), bounded at maxLostSteps.
	DeliveryLost []LostStep
	// Shards holds the per-shard control-plane summary on sharded runs
	// (nil on legacy single-manager runs).
	Shards []ShardSummary
	// Subscribers snapshots each subscriber's conservation ledger at run
	// end (chaos sub-conservation oracle); nil without a subscriber fleet.
	Subscribers []datatap.SubSnapshot
	// SubHub aggregates the fan-out hub's counters (zero value without a
	// subscriber fleet).
	SubHub datatap.SubHubStats
}

// ShardSummary is one shard's row in the sharded run's control-plane
// summary table. Spare/Epoch/Actions/Suspects reflect the shard's acting
// manager at run end (the promoted standby after a failover).
type ShardSummary struct {
	Shard      int
	Containers int
	Spare      int
	Epoch      int64
	StolenIn   int
	StolenOut  int
	Actions    int
	Suspects   int
}

func (rt *Runtime) result() *Result {
	res := &Result{
		Recorder:         rt.rec,
		Emitted:          rt.emitted,
		ProducerFinished: rt.producerDone,
		Exits:            rt.exits,
		Dropped:          rt.dropped,
		WriterBlocked:    rt.channels[0].Stats().WriterBlocked,
		WriterStalled:    rt.channels[0].Stats().WriterStalled,
		States:           map[string]string{},
		FinalSizes:       map[string]int{},
		Provenance:       map[string]string{},
	}
	res.StepTrace = rt.stepTrace
	if rt.dir == nil {
		res.Actions = rt.gm.Actions()
		res.Spare = rt.gm.Spare()
		res.Suspects = rt.gm.Suspects()
	} else {
		rt.shardResult(res)
	}
	for _, ch := range rt.channels {
		res.Delivery = append(res.Delivery, ch.DeliverySnapshot())
	}
	res.DeliveryLost = append([]LostStep(nil), rt.deliveryLost...)
	res.Subscribers = rt.subHub.Snapshots()
	res.SubHub = rt.subHub.Stats()
	res.Rounds = append([]RoundRecord(nil), rt.rounds...)
	res.Trades = append([]TradeRecord(nil), rt.trades...)
	res.CrashVictims = append([]CrashVictim(nil), rt.crashVictims...)
	if rt.faults != nil {
		res.FaultStats = rt.faults.Stats()
		res.DownNodes = rt.faults.DownNodes()
	}
	for _, c := range rt.containers {
		res.States[c.Name()] = c.State().String()
		res.FinalSizes[c.Name()] = c.Size()
		if c.provenance != "" {
			res.Provenance[c.Name()] = c.provenance
		}
	}
	return res
}

// shardResult merges the per-shard control planes into the run summary —
// actions across every manager plus the meta, time-ordered; spare and
// suspects aggregated — and attaches the per-shard table.
func (rt *Runtime) shardResult(res *Result) {
	var acts []Action
	for _, gm := range rt.shardMgrs {
		acts = append(acts, gm.Actions()...)
	}
	acts = append(acts, rt.meta.Actions()...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].T < acts[j].T })
	res.Actions = acts
	seen := map[string]bool{}
	for _, gm := range rt.shardMgrs {
		for _, name := range gm.Suspects() {
			if !seen[name] {
				seen[name] = true
				res.Suspects = append(res.Suspects, name)
			}
		}
	}
	sort.Strings(res.Suspects)
	for s := 0; s < rt.cfg.Shards; s++ {
		acting := rt.shardPrimary[s]
		in, out := rt.dir.Steals(s)
		res.Spare += acting.Spare()
		nc := 0
		for _, c := range rt.containers {
			if c.shard == s {
				nc++
			}
		}
		res.Shards = append(res.Shards, ShardSummary{
			Shard: s, Containers: nc, Spare: acting.Spare(),
			Epoch: acting.Epoch(), StolenIn: in, StolenOut: out,
			Actions: len(acting.Actions()), Suspects: len(acting.Suspects()),
		})
	}
}

// Container returns a container by name (for tests and experiments).
func (rt *Runtime) Container(name string) *Container { return rt.byName[name] }

// Containers returns the pipeline's containers in stage order (custom
// policies iterate this).
func (rt *Runtime) Containers() []*Container {
	return append([]*Container(nil), rt.containers...)
}

// GM returns the currently active global manager (nil on sharded runs —
// use ShardManager / Managers there).
func (rt *Runtime) GM() *GlobalManager { return rt.gm }

// Sharded reports whether the run uses the sharded control plane.
func (rt *Runtime) Sharded() bool { return rt.dir != nil }

// Meta returns the meta-manager (nil on legacy runs).
func (rt *Runtime) Meta() *MetaManager { return rt.meta }

// Directory returns the shard ownership ledger (nil on legacy runs).
func (rt *Runtime) Directory() *shardmgr.Directory { return rt.dir }

// ShardManager returns shard s's acting manager (the promoted standby
// after a failover).
func (rt *Runtime) ShardManager(s int) *GlobalManager { return rt.shardPrimary[s] }

// Managers returns every global-manager instance: on legacy runs the
// distinct primary/active/standby, on sharded runs every shard primary
// and standby in creation order. The meta-manager is separate (Meta).
func (rt *Runtime) Managers() []*GlobalManager {
	if rt.dir != nil {
		return append([]*GlobalManager(nil), rt.shardMgrs...)
	}
	var out []*GlobalManager
	seen := map[*GlobalManager]bool{}
	for _, gm := range []*GlobalManager{rt.primary, rt.gm, rt.standby} {
		if gm == nil || seen[gm] {
			continue
		}
		seen[gm] = true
		out = append(out, gm)
	}
	return out
}

// managerFor returns the manager responsible for c's control rounds at
// build time (the shard primary on sharded runs, rt.gm otherwise).
func (rt *Runtime) managerFor(c *Container) *GlobalManager {
	if c.shard >= 0 {
		return rt.shardPrimary[c.shard]
	}
	return rt.gm
}

// Primary returns the manager that started the run as primary (it may be
// dead or deposed by now — rt.GM() is the active one).
func (rt *Runtime) Primary() *GlobalManager { return rt.primary }

// Standby returns the standby manager (nil unless Config.StandbyGM).
func (rt *Runtime) Standby() *GlobalManager { return rt.standby }

// Channels returns the pipeline's data channels in stage order (the chaos
// conservation oracle audits their byte ledgers).
func (rt *Runtime) Channels() []*datatap.Channel {
	return append([]*datatap.Channel(nil), rt.channels...)
}

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Machine returns the machine model.
func (rt *Runtime) Machine() *cluster.Machine { return rt.mach }

// Recorder returns the metrics recorder.
func (rt *Runtime) Recorder() *metrics.Recorder { return rt.rec }

// Tracer returns the trace recorder (nil when Config.Trace is unset).
func (rt *Runtime) Tracer() *trace.Recorder { return rt.tracer }

// Config returns the effective (default-filled) configuration.
func (rt *Runtime) Config() Config { return rt.cfg }
