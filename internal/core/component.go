package core

import (
	"repro/internal/smartpointer"
)

// ComponentSpec describes one analytics action embedded in a container:
// its Table I characteristics, calibrated cost model, and pipeline role.
type ComponentSpec struct {
	// Name is the container/component name ("bonds", "csym", ...).
	Name string
	// Kind selects the SmartPointer action.
	Kind smartpointer.Kind
	// Model is the compute model the component runs under; it must be
	// one the kind supports.
	Model smartpointer.ComputeModel
	// Cost predicts per-step service time.
	Cost smartpointer.CostModel
	// OutputFactor scales the component's output volume relative to its
	// input (Bonds adds an adjacency list; CSym/CNA reduce to
	// annotations).
	OutputFactor float64
	// Essential components may never be taken offline (the Helper: it
	// is the I/O aggregation point the simulation depends on).
	Essential bool
	// ActivateOnCrack components idle until crack formation appears in
	// the data (CNA: "running the components... is really only merited
	// when some interesting application-level event... has occurred").
	ActivateOnCrack bool
	// DeactivateOnCrack components stop consuming once crack formation
	// appears (CSym hands the pipeline's post-break branch to CNA).
	DeactivateOnCrack bool
	// MinSize is the smallest node count stealing may leave the
	// container with (default 1). The Helper's floor reflects its
	// aggregation tree's memory requirements.
	MinSize int
	// DiskOutput marks a terminal stage that writes its results to
	// stable storage (checkpoint aggregation); its replicas bind their
	// ADIOS groups to the disk sink from the start.
	DiskOutput bool
	// SLAPeriods relaxes the component's deadline to this many output
	// periods (default 1). Checkpoint aggregation "need not complete
	// writing data to stable storage until the next timestep arrives"
	// only in the strictest case; bulk storage can be given more slack —
	// the per-container metric diversity of §III-A.
	SLAPeriods int
}

// Validate checks the spec against the component's Table I row.
func (s ComponentSpec) Validate() error {
	ch := smartpointer.CharacteristicsFor(s.Kind)
	if !ch.Supports(s.Model) {
		return &SpecError{Name: s.Name, Msg: "compute model " + s.Model.String() +
			" not supported by " + s.Kind.String()}
	}
	if s.Name == "" {
		return &SpecError{Name: s.Name, Msg: "empty component name"}
	}
	if s.OutputFactor < 0 {
		return &SpecError{Name: s.Name, Msg: "negative output factor"}
	}
	return nil
}

// SpecError reports an invalid component specification.
type SpecError struct {
	Name string
	Msg  string
}

// Error implements error.
func (e *SpecError) Error() string { return "core: component " + e.Name + ": " + e.Msg }

// SpecsWithBondsModel returns DefaultSpecs with the Bonds stage switched
// to the given compute model. The weak-scaling experiments run Bonds as a
// parallel (MPI-style) component at the larger scales, where round-robin
// replication of a 10+ minute serial step is useless; Table I lists both
// as supported.
func SpecsWithBondsModel(m smartpointer.ComputeModel) []ComponentSpec {
	specs := DefaultSpecs()
	for i := range specs {
		if specs[i].Kind == smartpointer.KindBonds {
			specs[i].Model = m
		}
	}
	return specs
}

// DefaultSpecs returns the four-stage SmartPointer pipeline configuration
// the paper evaluates, with the calibrated cost models.
func DefaultSpecs() []ComponentSpec {
	models := smartpointer.DefaultCostModels()
	return []ComponentSpec{
		{
			Name:         "helper",
			Kind:         smartpointer.KindHelper,
			Model:        smartpointer.ModelTree,
			Cost:         models[smartpointer.KindHelper],
			OutputFactor: 1.0,
			Essential:    true,
			MinSize:      4,
		},
		{
			Name:         "bonds",
			Kind:         smartpointer.KindBonds,
			Model:        smartpointer.ModelRR,
			Cost:         models[smartpointer.KindBonds],
			OutputFactor: 1.5, // atomic data + adjacency list
		},
		{
			Name:              "csym",
			Kind:              smartpointer.KindCSym,
			Model:             smartpointer.ModelRR,
			Cost:              models[smartpointer.KindCSym],
			OutputFactor:      0.1, // per-atom annotations
			DeactivateOnCrack: false,
		},
		{
			Name:            "cna",
			Kind:            smartpointer.KindCNA,
			Model:           smartpointer.ModelRR,
			Cost:            models[smartpointer.KindCNA],
			OutputFactor:    0.05, // structural labels
			ActivateOnCrack: true,
		},
	}
}
