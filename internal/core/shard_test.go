package core

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/shardmgr"
	"repro/internal/sim"
)

// shardedConfig is the Fig. 7 pipeline under the sharded control plane:
// 1 meta + shards primaries (+ standbys) on the first staging nodes, the
// 13 container nodes and the leftovers behind them.
func shardedConfig(shards, standbys, stagingNodes int) Config {
	return Config{
		SimNodes:      256,
		StagingNodes:  stagingNodes,
		Sizes:         DefaultSizes(13),
		Steps:         20,
		CrackStep:     -1,
		Seed:          42,
		Shards:        shards,
		ShardStandbys: standbys,
	}
}

// splitSeed returns a ShardSeed under which the four default stages do
// not all land in one shard and some consumer's upstream is in another
// shard (so cross-shard routing paths are exercised).
func splitSeed(t *testing.T, shards int) int64 {
	t.Helper()
	names := []string{"helper", "bonds", "csym", "cna"}
	pairs := [][2]string{{"helper", "bonds"}, {"bonds", "csym"}, {"bonds", "cna"}}
	for seed := int64(1); seed <= 200; seed++ {
		ring := shardmgr.NewRing(seed, shards)
		of := map[string]int{}
		for _, n := range names {
			of[n] = ring.Assign(n)
		}
		for _, p := range pairs {
			if of[p[0]] != of[p[1]] {
				return seed
			}
		}
	}
	t.Fatal("no ShardSeed splits the default stages across shards")
	return 0
}

func TestShardedRunCompletes(t *testing.T) {
	cfg := shardedConfig(2, 1, 24) // 5 manager nodes, 13 container, 6 spare
	cfg.ShardSeed = splitSeed(t, 2)
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 20 || res.Exits != 20 {
		t.Fatalf("sharded run damaged: emitted=%d exits=%d", res.Emitted, res.Exits)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("want 2 shard summaries, got %v", res.Shards)
	}
	nc := 0
	for _, s := range res.Shards {
		nc += s.Containers
		if s.Epoch < 1 {
			t.Fatalf("shard %d never had a fenced primary: %+v", s.Shard, s)
		}
	}
	if nc != len(rt.Containers()) {
		t.Fatalf("shard summaries cover %d containers, pipeline has %d", nc, len(rt.Containers()))
	}
	// Node conservation: the container region (staging minus the five
	// control-plane nodes) is exactly owned + spare.
	total := res.Spare
	for _, n := range res.FinalSizes {
		total += n
	}
	if want := cfg.StagingNodes - 5; total != want {
		t.Fatalf("nodes %d != %d (sizes %v spare %d)", total, want, res.FinalSizes, res.Spare)
	}
	// Scope isolation: every control round was issued by the manager of
	// the target's own shard.
	dir := rt.Directory()
	for _, r := range res.Rounds {
		if s := dir.ShardOf(r.Target); s != r.Shard {
			t.Fatalf("round %q on %s issued by shard %d, container belongs to shard %d",
				r.Kind, r.Target, r.Shard, s)
		}
	}
	if rt.GM() != nil {
		t.Fatal("sharded run must not have a legacy global manager")
	}
}

func TestShardedRunDeterministic(t *testing.T) {
	cfg := shardedConfig(2, 1, 24)
	cfg.ShardSeed = splitSeed(t, 2)
	a := runScenario(t, cfg)
	b := runScenario(t, cfg)
	if fmt.Sprint(a.Actions) != fmt.Sprint(b.Actions) {
		t.Fatalf("actions differ between identical runs:\n%v\n%v", a.Actions, b.Actions)
	}
	if fmt.Sprint(a.Shards) != fmt.Sprint(b.Shards) {
		t.Fatalf("shard summaries differ:\n%v\n%v", a.Shards, b.Shards)
	}
}

// A GapNotice lands at the READER's shard manager, but the answering
// ResendReq round must be issued by the WRITER's shard manager — exactly
// once, not once per manager that hears about the gap.
func TestCrossShardGapRoutesToWriterShard(t *testing.T) {
	cfg := shardedConfig(2, 0, 24)
	cfg.ShardSeed = splitSeed(t, 2)
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a consumer whose upstream lives in another shard.
	var reader, writer *Container
	for _, c := range rt.Containers() {
		up := rt.upstreamOf(c)
		if up != nil && up.shard != c.shard {
			reader, writer = c, up
			break
		}
	}
	if reader == nil {
		t.Fatal("splitSeed produced no cross-shard consumer/upstream pair")
	}
	rt.eng.Go("test-gap", func(p *sim.Proc) {
		p.Sleep(30 * sim.Second)
		reader.noteGap(p, 1)
	})
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	resends := 0
	for _, r := range res.Rounds {
		if r.Kind != "resend" {
			continue
		}
		if r.Target != writer.Name() {
			t.Fatalf("resend round aimed at %q, want upstream %q", r.Target, writer.Name())
		}
		if r.Shard != writer.shard {
			t.Fatalf("resend issued by shard %d, want writer shard %d (reader shard %d)",
				r.Shard, writer.shard, reader.shard)
		}
		resends++
	}
	if resends == 0 {
		t.Fatalf("gap was never relayed into a resend round: %v", res.Rounds)
	}
	if resends > 1 {
		t.Fatalf("one gap produced %d resend rounds, want exactly 1", resends)
	}
}

// A shard whose pool runs dry mid-heal asks the meta-manager for nodes;
// the donor releases from its pool and the ledger records the transfer.
func TestCrossShardStealOnDryHeal(t *testing.T) {
	// 19 staging nodes: 5 control-plane + 13 container + 1 leftover. The
	// round-robin pools give shard 0 the single spare node and shard 1
	// nothing, so a crash in a shard-1 container forces a cross-shard
	// steal.
	cfg := shardedConfig(2, 1, 19)
	// Find a seed where some stage is managed by the dry shard 1.
	seed := int64(-1)
	var victimName string
	for s := int64(1); s <= 200 && seed < 0; s++ {
		ring := shardmgr.NewRing(s, 2)
		for _, n := range []string{"helper", "bonds", "csym", "cna"} {
			if ring.Assign(n) == 1 {
				seed, victimName = s, n
				break
			}
		}
	}
	if seed < 0 {
		t.Fatal("no seed maps a stage to shard 1")
	}
	cfg.ShardSeed = seed
	probe, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := probe.Container(victimName)
	// Crash a non-manager replica (node 0 hosts the local manager; a
	// container without its manager cannot run the restart protocol).
	crashNode := victim.Nodes()[1].ID
	probe.Shutdown()

	cfg.Faults = &fault.Config{Crashes: []fault.Crash{{Node: crashNode, At: 60 * sim.Second}}}
	res := runScenario(t, cfg)
	if !hasAction(res, "steal-broker", "shard-1") {
		t.Fatalf("meta never brokered the steal: %v", res.Actions)
	}
	if !hasAction(res, "steal-out", "shard-1") {
		t.Fatalf("donor never released nodes: %v", res.Actions)
	}
	if !hasAction(res, "steal-in", "shard-1") {
		t.Fatalf("requester never adopted the stolen nodes: %v", res.Actions)
	}
	found := false
	for _, s := range res.Shards {
		if s.Shard == 1 && s.StolenIn > 0 {
			found = true
		}
		if s.Shard == 0 && s.StolenOut == 0 {
			t.Fatalf("donor shard 0 shows no StolenOut: %+v", res.Shards)
		}
	}
	if !found {
		t.Fatalf("ledger shows no steal into shard 1: %+v", res.Shards)
	}
}

// Killing a shard primary's node promotes that shard's standby via the
// meta-manager's PromoteNotice; the other shard is untouched.
func TestMetaPromotesShardStandby(t *testing.T) {
	cfg := shardedConfig(2, 1, 24)
	cfg.ShardSeed = splitSeed(t, 2)
	probe, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	primaryNode := probe.ShardManager(0).node
	standby := probe.shardStandby[0]
	probe.Shutdown()

	cfg.Faults = &fault.Config{Crashes: []fault.Crash{{Node: primaryNode, At: 60 * sim.Second}}}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !hasAction(res, "promote", "shard-0") {
		t.Fatalf("meta never promoted shard 0's standby: %v", res.Actions)
	}
	if !hasAction(res, "failover", "global-manager") {
		t.Fatalf("standby never took over: %v", res.Actions)
	}
	if rt.ShardManager(0) == rt.shardMgrs[0] {
		t.Fatal("shard 0's acting manager is still the dead primary")
	}
	if rt.ShardManager(0).InStandby() {
		t.Fatal("promoted standby still marked standby")
	}
	if rt.ShardManager(0).Epoch() <= 1 {
		t.Fatalf("takeover did not fence above the primary: epoch %d", rt.ShardManager(0).Epoch())
	}
	// Shard 1's primary was never disturbed.
	for _, a := range res.Actions {
		if a.Kind == "promote" && a.Target == "shard-1" {
			t.Fatalf("healthy shard 1 promoted: %v", res.Actions)
		}
	}
	_ = standby
}
