package core

import (
	"fmt"

	"repro/internal/evpath"
	"repro/internal/shardmgr"
	"repro/internal/sim"
)

// MetaManager is the thin top of the sharded control plane. It owns no
// containers and issues no synchronous rounds; everything it does is
// slow-path: watch ShardBeat liveness heartbeats, broker cross-shard
// node steals, route cross-shard gap and crack relays, and promote a
// standby when a shard primary stops beating. All of its sends are
// pump-side bridge submissions, so the meta-manager can never wedge the
// control plane it supervises.
type MetaManager struct {
	rt       *Runtime
	node     int
	ev       *evpath.Manager
	ctl      *evpath.Mailbox
	interval sim.Time
	shards   int
	seq      int64
	dead     bool

	// Per-shard view, all keyed by shard ID and iterated by integer
	// range (0..shards-1), never by map order.
	lastBeat     map[int]sim.Time
	shardEpoch   map[int]int64
	shardSpare   map[int]int
	shardInbox   map[int]*evpath.Stone // acting manager, from the last beat
	standbyInbox map[int]*evpath.Stone // wired at build time
	promoted     map[int]bool          // promotion is one-shot per shard

	crackSeen      bool
	stealsBrokered int
	relays         int

	bridges     map[*evpath.Stone]*evpath.Stone
	bridgeOrder []*evpath.Stone

	actions []Action
}

// newMetaManager builds the meta-manager on the given staging node.
func newMetaManager(rt *Runtime, node, shards int, interval sim.Time) *MetaManager {
	mm := &MetaManager{
		rt:           rt,
		node:         node,
		interval:     interval,
		shards:       shards,
		lastBeat:     make(map[int]sim.Time, shards),
		shardEpoch:   make(map[int]int64, shards),
		shardSpare:   make(map[int]int, shards),
		shardInbox:   make(map[int]*evpath.Stone, shards),
		standbyInbox: make(map[int]*evpath.Stone, shards),
		promoted:     make(map[int]bool, shards),
		bridges:      make(map[*evpath.Stone]*evpath.Stone),
	}
	mm.ev = evpath.NewManager(rt.eng, rt.mach, node)
	mm.ev.SetTracer(rt.tracer)
	mm.ctl = evpath.NewMailbox(mm.ev, 0)
	return mm
}

// inbox is the stone shard managers bridge their upward traffic to.
func (mm *MetaManager) inbox() *evpath.Stone { return mm.ctl.Stone }

// Node returns the staging node hosting the meta-manager.
func (mm *MetaManager) Node() int { return mm.node }

// Dead reports whether the meta-manager's node crashed.
func (mm *MetaManager) Dead() bool { return mm.dead }

// Actions returns the meta-manager's slow-path decisions (promotions and
// brokered steals).
func (mm *MetaManager) Actions() []Action { return append([]Action(nil), mm.actions...) }

// StealsBrokered returns how many cross-shard steals the meta-manager
// has brokered.
func (mm *MetaManager) StealsBrokered() int { return mm.stealsBrokered }

// run is the meta-manager process: pump relays and beats, then check
// shard liveness each interval.
func (mm *MetaManager) run(p *sim.Proc) {
	for {
		if mm.dead {
			return
		}
		deadline := p.Now() + mm.interval
		for p.Now() < deadline {
			ev, ok := mm.ctl.RecvTimeout(p, deadline-p.Now())
			if !ok {
				if mm.ctl.Closed() {
					return
				}
				break
			}
			if mm.dead {
				return
			}
			mm.dispatch(p, ev)
		}
		if mm.ctl.Closed() || mm.dead {
			return
		}
		mm.tick(p)
	}
}

// dispatch routes one shard round message. Like the shard managers'
// pump, handling an event must never park the meta-manager process.
//
//iocheck:nonblocking
func (mm *MetaManager) dispatch(p *sim.Proc, ev *evpath.Event) {
	switch data := ev.Data.(type) {
	case *ShardBeat:
		mm.lastBeat[data.Shard] = data.At
		mm.shardSpare[data.Shard] = data.Spare
		if data.Epoch > mm.shardEpoch[data.Shard] {
			mm.shardEpoch[data.Shard] = data.Epoch
		}
		if data.Inbox != nil {
			mm.shardInbox[data.Shard] = data.Inbox
		}
	case *StealReq:
		//iocheck:allow vtblock brokerSteal submits over meta peer bridges (courier path); see its own audit
		mm.brokerSteal(p, data)
	case *GapRelay:
		//iocheck:allow vtblock routeGap submits over meta peer bridges (courier path); see its own audit
		mm.routeGap(p, ev, data)
	case *CrackRelay:
		//iocheck:allow vtblock broadcastCrack submits over meta peer bridges (courier path); see its own audit
		mm.broadcastCrack(p, data)
	}
}

// brokerSteal picks a donor shard for a dry requester and forwards the
// steal as a StealNotice. A stale request (below the highest epoch heard
// for that shard) is dropped; with no donor, an empty StealGrant goes
// straight back so the requester's pending-steal latch clears.
//
//iocheck:nonblocking
func (mm *MetaManager) brokerSteal(p *sim.Proc, req *StealReq) {
	if req.Epoch < mm.shardEpoch[req.Shard] || req.Inbox == nil {
		return // a deposed shard manager's request; its successor re-asks
	}
	donor := shardmgr.PickDonor(mm.shardSpare, req.Shard)
	seq, _ := shardMsgSeq(req)
	if donor < 0 || mm.shardInbox[donor] == nil {
		//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
		mm.bridgeTo(req.Inbox).Submit(p, &evpath.Event{Type: msgStealGrant,
			Size: ctlMsgBytes,
			Data: &StealGrant{Seq: req.Seq, Epoch: req.Epoch, Shard: -1}})
		mm.rt.tracer.Instant(0, "ctl", "steal-dry").Node(mm.node).
			AttrInt("shard", int64(req.Shard)).AttrInt("seq", seq).End()
		return
	}
	// Debit the advertised pool so back-to-back requests inside one beat
	// window spread across donors; the donor's next beat re-syncs it.
	mm.shardSpare[donor] -= req.N
	if mm.shardSpare[donor] < 0 {
		mm.shardSpare[donor] = 0
	}
	mm.stealsBrokered++
	mm.record(p, Action{T: p.Now(), Kind: "steal-broker",
		Target: fmt.Sprintf("shard-%d", req.Shard), N: req.N,
		Detail: fmt.Sprintf("donor shard %d", donor)})
	mm.rt.tracer.Instant(0, "ctl", "steal-broker").Node(mm.node).
		AttrInt("shard", int64(req.Shard)).AttrInt("donor", int64(donor)).
		AttrInt("seq", seq).End()
	//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
	mm.bridgeTo(mm.shardInbox[donor]).Submit(p, &evpath.Event{
		Type: msgStealNotice, Size: ctlMsgBytes,
		Data: &StealNotice{Seq: req.Seq, Epoch: req.Epoch, Shard: req.Shard,
			N: req.N, Inbox: req.Inbox}})
}

// routeGap forwards a cross-shard GapRelay to the shard managing the
// upstream container. An unknown upstream (or a shard that has never
// beaten) drops the relay; the consumer channel's gap detector will
// notice again.
//
//iocheck:nonblocking
func (mm *MetaManager) routeGap(p *sim.Proc, ev *evpath.Event, data *GapRelay) {
	s := mm.rt.dir.ShardOf(data.Upstream)
	if s < 0 || mm.shardInbox[s] == nil {
		return
	}
	mm.relays++
	//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
	mm.bridgeTo(mm.shardInbox[s]).Submit(p, &evpath.Event{Type: msgGapRelay,
		Size: ctlMsgBytes, Data: data})
	_ = ev
}

// broadcastCrack fans the first crack relay out to every shard (acting
// managers and standbys) so each runs its own branch activation. Later
// relays are duplicates and are dropped.
//
//iocheck:nonblocking
func (mm *MetaManager) broadcastCrack(p *sim.Proc, data *CrackRelay) {
	if mm.crackSeen {
		return
	}
	mm.crackSeen = true
	for s := 0; s < mm.shards; s++ {
		fwd := &CrackRelay{Seq: data.Seq, Epoch: data.Epoch, Shard: s,
			From: data.From, Step: data.Step}
		if inbox := mm.shardInbox[s]; inbox != nil {
			//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
			mm.bridgeTo(inbox).Submit(p, &evpath.Event{Type: msgCrackRelay,
				Size: ctlMsgBytes, Data: fwd})
		}
		if inbox := mm.standbyInbox[s]; inbox != nil {
			//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
			mm.bridgeTo(inbox).Submit(p, &evpath.Event{Type: msgCrackRelay,
				Size: ctlMsgBytes, Data: fwd})
		}
	}
}

// tick checks shard liveness: a shard silent for three intervals whose
// standby exists gets a one-shot PromoteNotice. The grace period runs
// from t=0 for shards that have never beaten, exactly like the legacy
// standby's own silence detector.
func (mm *MetaManager) tick(p *sim.Proc) {
	grace := 3 * mm.interval
	for s := 0; s < mm.shards; s++ {
		if mm.promoted[s] {
			continue
		}
		if p.Now()-mm.lastBeat[s] <= grace {
			continue
		}
		inbox := mm.standbyInbox[s]
		if inbox == nil {
			continue
		}
		mm.promoted[s] = true
		mm.record(p, Action{T: p.Now(), Kind: "promote",
			Target: fmt.Sprintf("shard-%d", s),
			Detail: fmt.Sprintf("primary silent for %s; promoting standby", grace)})
		mm.rt.tracer.Instant(0, "ctl", "promote").Node(mm.node).
			AttrInt("shard", int64(s)).End()
		mm.seq++
		//iocheck:allow vtblock meta bridges take the forward() courier path, which enqueues without parking
		mm.bridgeTo(inbox).Submit(p, &evpath.Event{Type: msgPromote,
			Size: ctlMsgBytes,
			Data: &PromoteNotice{Seq: mm.seq, Epoch: mm.shardEpoch[s], Shard: s}})
	}
}

// bridgeTo returns (creating and caching on first use) a bridge to a
// peer inbox, with an insertion-ordered list for deterministic close.
func (mm *MetaManager) bridgeTo(inbox *evpath.Stone) *evpath.Stone {
	if b, ok := mm.bridges[inbox]; ok {
		return b
	}
	b := mm.ev.NewBridge(inbox, 0)
	mm.bridges[inbox] = b
	mm.bridgeOrder = append(mm.bridgeOrder, b)
	return b
}

func (mm *MetaManager) record(p *sim.Proc, a Action) {
	if mm.dead {
		return
	}
	mm.actions = append(mm.actions, a)
	mm.rt.rec.Mark(a.T, fmt.Sprintf("%s %s %d %s", a.Kind, a.Target, a.N, a.Detail))
}

// close drains the meta-manager's couriers and mailbox at shutdown.
func (mm *MetaManager) close() {
	for _, b := range mm.bridgeOrder {
		b.CloseBridge()
	}
	mm.ctl.Close()
}
