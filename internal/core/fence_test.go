package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// partitionGMConfig builds a fig7-style run where the primary global
// manager's node is partitioned away long enough for the standby to take
// over, then healed with plenty of run left — the exact history that
// used to produce a split brain.
func partitionGMConfig(seed int64) Config {
	cfg := fig7Config()
	cfg.Seed = seed
	cfg.StandbyGM = true
	cfg.Trace = &trace.Config{RingCap: 1 << 18}
	// Containers co-located on the partitioned node make the takeover's
	// rehome pass ride the retry ladder; fast control timeouts keep the
	// whole failover inside the fig7 horizon.
	cfg.Policy.CallTimeout = 5 * sim.Second
	gmNode := cfg.SimNodes // staging index 0
	cfg.Faults = &fault.Config{Partitions: []fault.Partition{
		{From: 60 * sim.Second, Until: 200 * sim.Second, Nodes: []int{gmNode}},
	}}
	return cfg
}

// epochIssuers maps each epoch to the set of manager nodes that issued
// rounds in it.
func epochIssuers(res *Result) map[int64]map[int]bool {
	out := map[int64]map[int]bool{}
	for _, r := range res.Rounds {
		m := out[r.Epoch]
		if m == nil {
			m = map[int]bool{}
			out[r.Epoch] = m
		}
		m[r.Node] = true
	}
	return out
}

func TestPartitionFailoverSingleWriterPerEpoch(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := partitionGMConfig(seed)
		rt, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The partition silences the heartbeats, so the standby must
		// take over even though the primary never died.
		if !hasAction(res, "failover", "global-manager") {
			t.Fatalf("seed %d: no takeover during partition: %v", seed, res.Actions)
		}
		// Fencing invariant: within any epoch, exactly one manager node
		// issues rounds.
		for epoch, nodes := range epochIssuers(res) {
			if len(nodes) > 1 {
				t.Fatalf("seed %d: epoch %d has %d issuers %v: split brain",
					seed, epoch, len(nodes), nodes)
			}
		}
		if got := rt.GM().Epoch(); got < 2 {
			t.Fatalf("seed %d: takeover did not bump the epoch (still %d)", seed, got)
		}
	}
}

func TestHealedPrimaryDemotesToStandby(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := partitionGMConfig(seed)
		rt, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// After the heal the old primary must discover the higher epoch
		// (via a FenceResp to one of its rounds or a DemoteNotice answering
		// its heartbeat) and demote itself for good.
		if !rt.Primary().Deposed() {
			t.Fatalf("seed %d: healed primary still thinks it is primary", seed)
		}
		demoted := false
		for _, a := range rt.Primary().Actions() {
			if a.Kind == "demote" && a.Target == "global-manager" {
				demoted = true
			}
		}
		if !demoted {
			t.Fatalf("seed %d: no demote on the primary's record: %v",
				seed, rt.Primary().Actions())
		}
		// The deposition is an instant in the flight recorder, so the
		// lead-up to any split brain is preserved in the ring.
		deposed := false
		for _, r := range rt.Tracer().Records() {
			if r.Cat == "ctl" && r.Name == "deposed" {
				deposed = true
			}
		}
		if !deposed {
			t.Fatalf("seed %d: no deposition recorded in trace", seed)
		}
	}
}

func TestDeposedPrimaryNeverTakesBackOver(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := partitionGMConfig(seed)
		// Crash the new primary (standby node, staging index 1) after the
		// heal: the deposed ex-primary must NOT step back in — it cannot
		// observe the new primary's liveness, so re-promotion would reopen
		// the split brain. The pipeline running leaderless is the price of
		// safety.
		cfg.Faults.Crashes = []fault.Crash{
			{Node: cfg.SimNodes + 1, At: 280 * sim.Second}}
		rt, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		failovers := 0
		for _, a := range res.Actions {
			if a.Kind == "failover" {
				failovers++
			}
		}
		for _, a := range rt.Primary().Actions() {
			if a.Kind == "failover" {
				failovers++
			}
		}
		if failovers != 1 {
			t.Fatalf("seed %d: %d failovers, want exactly 1", seed, failovers)
		}
		if !rt.Primary().Deposed() {
			t.Fatalf("seed %d: primary un-deposed itself", seed)
		}
		// No round may carry the ex-primary's node after its deposition.
		deposedAt := sim.Time(-1)
		for _, r := range rt.Tracer().Records() {
			if r.Cat == "ctl" && r.Name == "deposed" {
				deposedAt = r.Start
			}
		}
		if deposedAt < 0 {
			t.Fatalf("seed %d: no deposition recorded in trace", seed)
		}
		for _, r := range res.Rounds {
			if r.Node == cfg.SimNodes && r.T > deposedAt {
				t.Fatalf("seed %d: deposed primary issued a %s round at %v",
					seed, r.Kind, r.T)
			}
		}
	}
}

func TestLegacyModeReproducesSplitBrain(t *testing.T) {
	// The chaos regression arm: with fencing disabled, the healed
	// partition leaves two managers issuing rounds in the SAME epoch.
	cfg := partitionGMConfig(1)
	cfg.Policy.DisableFencing = true
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if nodes := epochIssuers(res)[1]; len(nodes) < 2 {
		t.Fatalf("legacy mode did not reproduce the split brain: epoch-1 issuers %v", nodes)
	}
	if rt.Primary().Deposed() {
		t.Fatal("legacy mode has no fencing, yet the primary was deposed")
	}
}

// TestContainerRefusesStaleEpochRound drives the FenceResp path directly:
// after a manual takeover rehomes every container to epoch 2, a round
// from the stale epoch-1 primary must be refused (not served, not
// answered from the dedupe cache), must fire the container's fence
// trigger, and must depose the caller mid-call.
func TestContainerRefusesStaleEpochRound(t *testing.T) {
	cfg := fig7Config()
	cfg.StandbyGM = true
	cfg.Policy.DisableManagement = true // keep both managers' policies quiet
	cfg.Trace = &trace.Config{RingCap: 1 << 18}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var resp *QueryResp
	rt.Engine().GoAt(50*sim.Second, "driver", func(p *sim.Proc) {
		rt.Standby().takeOver(p)
		resp = rt.Primary().Query(p, "bonds", cfg.StagingNodes)
	})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatalf("stale primary's round was served: %+v", resp)
	}
	if !rt.Primary().Deposed() {
		t.Fatal("FenceResp did not depose the stale primary")
	}
	if got := rt.Container("bonds").FencedEpoch(); got < 2 {
		t.Fatalf("container fenced epoch %d, want >= 2", got)
	}
	reason, ok := rt.Tracer().Triggered()
	if !ok || reason != "fence:bonds" {
		t.Fatalf("expected fence:bonds trigger, got %q (ok=%v)", reason, ok)
	}
}

// TestRehomeIdempotentUnderCtlDrops covers the lost-response failure
// mode: control-message drops around the takeover window can eat rehome
// responses after the container already switched bridges. The takeover's
// retry pass (same-seq retries answered from the dedupe cache, duplicate
// bridge switches harmless) must leave the standby managing everyone —
// no container falsely suspect.
func TestRehomeIdempotentUnderCtlDrops(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := fig7Config()
		cfg.Seed = seed
		cfg.StandbyGM = true
		cfg.Policy.KillGMAt = 40 * sim.Second
		cfg.Faults = &fault.Config{Drops: []fault.DropWindow{
			// The takeover happens at ~85 s (40 s death + 45 s grace);
			// drop control messages over the whole window at 40%.
			{From: 80 * sim.Second, Until: 130 * sim.Second, Prob: 0.4},
		}}
		rt, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !hasAction(res, "failover", "global-manager") {
			t.Fatalf("seed %d: no failover: %v", seed, res.Actions)
		}
		if len(res.Suspects) != 0 {
			t.Fatalf("seed %d: containers suspect after lossy takeover: %v",
				seed, res.Suspects)
		}
		// The standby must actually manage post-takeover (the fig7
		// bottleneck fix still lands).
		if !hasAction(res, "increase", "bonds") {
			t.Fatalf("seed %d: standby never managed after rehome: %v",
				seed, res.Actions)
		}
	}
}

// TestTradeVoteTimeoutDerived pins the satellite fix: the D2T vote
// timeout is no longer the hardcoded 1 s but derives from the control
// round deadline (CallTimeout/30), and the explicit knob overrides it.
func TestTradeVoteTimeoutDerived(t *testing.T) {
	pc := PolicyConfig{}.withDefaults(15*sim.Second, 30)
	if pc.TradeVoteTimeout != sim.Second {
		t.Fatalf("default trade vote timeout %v, want 1s (CallTimeout/30)", pc.TradeVoteTimeout)
	}
	pc = PolicyConfig{CallTimeout: 60 * sim.Second}.withDefaults(15*sim.Second, 30)
	if pc.TradeVoteTimeout != 2*sim.Second {
		t.Fatalf("scaled trade vote timeout %v, want 2s", pc.TradeVoteTimeout)
	}
	pc = PolicyConfig{TradeVoteTimeout: 5 * sim.Second}.withDefaults(15*sim.Second, 30)
	if pc.TradeVoteTimeout != 5*sim.Second {
		t.Fatalf("explicit trade vote timeout %v overridden", pc.TradeVoteTimeout)
	}
}
