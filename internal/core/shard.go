package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/evpath"
	"repro/internal/sim"
)

// The sharded control plane (ROADMAP item 1) splits the single global
// manager into N shard managers under one meta-manager. Containers are
// assigned to shards at build time by a seeded consistent-hash ring
// (internal/shardmgr); each shard manager owns the full round machinery —
// ticks, SLA policy, suspect/heal, resends, fencing — for its scope, with
// its own per-shard epoch. The meta-manager above them does only
// slow-path work: shard liveness from ShardBeat heartbeats, brokering
// cross-shard node steals when a shard's spare pool runs dry, relaying
// cross-shard GapNotices and crack detection, and promoting a standby
// shard manager when a primary dies.
//
// Every message below is a "shard round" message: it carries Seq, Epoch,
// and Shard. The ctlmsg analyzer requires all three fields and an entry
// in shardMsgSeq plus a dispatch arm (metaDispatch or shardDispatch) for
// each — the same exhaustiveness discipline the container round messages
// get from reqSeq/respSeq.
//
// Steal fencing: a StealReq carries the requesting shard manager's epoch;
// the meta-manager drops requests below the highest epoch it has heard
// beat for that shard, and the epoch is echoed through StealNotice and
// StealGrant so a grant landing at a manager whose epoch has moved on
// (a standby promoted mid-steal) is dropped. Dropped-grant nodes end up
// owned by nobody — leaked capacity, never dual ownership — and the next
// shard beat re-advertises the donor's smaller pool.

// Shard round message types on the management overlay.
const (
	msgStealReq    = "ctl.steal_req"    // shard -> meta: my pool is dry
	msgStealNotice = "ctl.steal_notice" // meta -> donor shard: release nodes
	msgStealGrant  = "ctl.steal_grant"  // donor -> beneficiary: released nodes
	msgShardBeat   = "ctl.shard_beat"   // shard -> meta: liveness + pool size
	msgGapRelay    = "ctl.gap_relay"    // reader shard -> meta -> writer shard
	msgCrackRelay  = "ctl.crack_relay"  // shard -> meta -> all shards
	msgPromote     = "ctl.promote"      // meta -> standby: primary is gone
)

// StealReq asks the meta-manager for nodes from another shard's pool.
// Shard is the requesting (beneficiary) shard; Inbox is where the
// eventual StealGrant must land.
type StealReq struct {
	Seq   int64
	Epoch int64
	Shard int
	N     int
	Inbox *evpath.Stone
}

// StealNotice tells a donor shard manager to release up to N spare nodes
// to the beneficiary shard. Shard and Epoch identify the *beneficiary*
// (echoed from the StealReq) so the grant can be fenced at arrival.
type StealNotice struct {
	Seq   int64
	Epoch int64
	Shard int
	N     int
	Inbox *evpath.Stone
}

// StealGrant carries the released nodes to the beneficiary. Shard is the
// donor; Epoch echoes the beneficiary epoch from the StealReq — a
// receiver whose epoch has since changed drops the grant. An empty grant
// (no donor had nodes) clears the beneficiary's pending-steal latch.
type StealGrant struct {
	Seq   int64
	Epoch int64
	Shard int
	Nodes []*cluster.Node
}

// ShardBeat is a shard manager's periodic heartbeat to the meta-manager:
// liveness, current epoch, advertised spare-pool size, and the inbox
// cross-shard traffic for this shard should be sent to.
type ShardBeat struct {
	At    sim.Time
	Seq   int64
	Epoch int64
	Shard int
	Spare int
	Inbox *evpath.Stone
}

// GapRelay routes a cross-shard GapNotice: the reader-side shard manager
// saw a gap whose upstream container lives in another shard, so the
// ResendReq round must be issued by the writer-side manager. Shard is
// the relaying (reader) shard; Upstream names the container owing the
// resend.
type GapRelay struct {
	Seq      int64
	Epoch    int64
	Shard    int
	Upstream string
}

// CrackRelay propagates crack detection across shards: the observing
// shard relays to the meta-manager, which broadcasts to every shard so
// each can run its own dynamic-branch activation.
type CrackRelay struct {
	Seq   int64
	Epoch int64
	Shard int
	From  string
	Step  int64
}

// PromoteNotice tells a standby shard manager its primary stopped
// beating and it should take over. Epoch is the highest epoch the
// meta-manager heard from the dead primary, so the standby fences above
// it even if it never heard a primary heartbeat itself.
type PromoteNotice struct {
	Seq   int64
	Epoch int64
	Shard int
}

// shardMsgSeq extracts the sequence number from a shard round message
// (ok=false for everything else). The meta-manager stamps it on its
// trace instants; the ctlmsg analyzer uses the switch as the
// message-family registry.
func shardMsgSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *StealReq:
		return r.Seq, true
	case *StealNotice:
		return r.Seq, true
	case *StealGrant:
		return r.Seq, true
	case *ShardBeat:
		return r.Seq, true
	case *GapRelay:
		return r.Seq, true
	case *CrackRelay:
		return r.Seq, true
	case *PromoteNotice:
		return r.Seq, true
	}
	return 0, false
}

// managed returns the containers this manager is responsible for: its
// shard scope when sharded, the whole pipeline on legacy runs.
func (gm *GlobalManager) managed() []*Container {
	if gm.scope != nil {
		return gm.scope
	}
	return gm.rt.containers
}

// ShardID returns the manager's shard (-1 for the legacy single manager).
func (gm *GlobalManager) ShardID() int { return gm.shard }

// Node returns the staging node hosting this manager.
func (gm *GlobalManager) Node() int { return gm.node }

// Dead reports whether the manager's node crashed (or KillGMAt fired).
func (gm *GlobalManager) Dead() bool { return gm.dead }

// InStandby reports whether the manager is still a watching standby.
func (gm *GlobalManager) InStandby() bool { return gm.standbyMode }

// shardDispatch handles the shard round messages that land in a shard
// manager's control mailbox. It is called first from dispatch and
// reports whether it consumed the event; legacy messages fall through.
// Like dispatch it runs on the pump and must never park.
//
//iocheck:nonblocking
func (gm *GlobalManager) shardDispatch(p *sim.Proc, ev *evpath.Event) bool {
	switch data := ev.Data.(type) {
	case *StealNotice:
		//iocheck:allow vtblock serveSteal submits over peer bridges (courier path); see its own audit
		gm.serveSteal(p, data)
	case *StealGrant:
		gm.acceptSteal(p, data)
	case *GapRelay:
		// A relayed cross-shard gap: the upstream container is ours, so
		// the next tick issues the ResendReq round. Misrouted relays
		// (an upstream we do not manage) are dropped rather than turned
		// into a round that has no bridge.
		if _, ok := gm.toContainer[data.Upstream]; ok {
			gm.pendingResend[data.Upstream] = true
		}
	case *CrackRelay:
		// Crack broadcast from the meta-manager. Mark it relayed too so
		// the observing shard's own relay does not echo forever.
		gm.crackSeen = true
		gm.crackRelayed = true
	case *PromoteNotice:
		if gm.standbyMode && !gm.deposed {
			if data.Epoch > gm.peerEpoch {
				gm.peerEpoch = data.Epoch
			}
			gm.promoteNow = true
		}
	default:
		return false
	}
	return true
}

// requestSteal asks the meta-manager for n nodes from another shard's
// pool. It is fire-and-forget from the pump or the policy tick: the
// grant lands in the control mailbox later and replenishes the spare
// pool for the *next* heal or resize, so the caller never waits. At most
// one steal is in flight per manager; the latch clears when a grant
// (even an empty one) arrives.
func (gm *GlobalManager) requestSteal(p *sim.Proc, n int) {
	if gm.toMeta == nil || gm.stealPending || gm.deposed || n <= 0 {
		return
	}
	gm.stealPending = true
	gm.shardSeq++
	//iocheck:allow vtblock toMeta is a bridge stone: handle() takes the forward() courier path, which enqueues without parking
	gm.toMeta.Submit(p, &evpath.Event{Type: msgStealReq, Size: ctlMsgBytes,
		Data: &StealReq{Seq: gm.shardSeq, Epoch: gm.epoch, Shard: gm.shard,
			N: n, Inbox: gm.root}})
}

// serveSteal is the donor side of a cross-shard steal: release up to N
// spare nodes to the beneficiary shard. The directory is updated at
// release time — a node in flight belongs to nobody, so no interleaving
// of steal and heal can put one node in two shards' pools. Runs from the
// pump; must not park.
//
//iocheck:nonblocking
func (gm *GlobalManager) serveSteal(p *sim.Proc, req *StealNotice) {
	if gm.deposed || gm.dead || req.Inbox == nil {
		return
	}
	take := req.N
	if take > len(gm.spare) {
		take = len(gm.spare)
	}
	var grant []*cluster.Node
	if take > 0 {
		grant = append(grant, gm.spare[:take]...)
		gm.spare = gm.spare[take:]
		for _, n := range grant {
			gm.rt.dir.SetNodeShard(n.ID, req.Shard)
		}
		gm.rt.dir.RecordSteal(gm.shard, req.Shard, take)
		gm.record(p, Action{T: p.Now(), Kind: "steal-out",
			Target: fmt.Sprintf("shard-%d", req.Shard), N: take,
			Detail: fmt.Sprintf("released %d node(s) from shard %d", take, gm.shard)})
	}
	//iocheck:allow vtblock peer bridges take the forward() courier path, which enqueues without parking
	gm.bridgeTo(req.Inbox).Submit(p, &evpath.Event{Type: msgStealGrant,
		Size: ctlMsgBytes,
		Data: &StealGrant{Seq: req.Seq, Epoch: req.Epoch, Shard: gm.shard,
			Nodes: grant}})
}

// acceptSteal is the beneficiary side: fold the granted nodes into the
// spare pool. A grant fenced by an epoch change (this manager was
// promoted mid-steal, or the grant was meant for a now-deposed primary)
// is dropped — the nodes stay unowned rather than risk two pools holding
// them.
func (gm *GlobalManager) acceptSteal(p *sim.Proc, g *StealGrant) {
	gm.stealPending = false
	if g.Epoch != gm.epoch || gm.deposed {
		return
	}
	if len(g.Nodes) == 0 {
		return
	}
	gm.spare = append(gm.spare, g.Nodes...)
	gm.record(p, Action{T: p.Now(), Kind: "steal-in",
		Target: fmt.Sprintf("shard-%d", gm.shard), N: len(g.Nodes),
		Detail: fmt.Sprintf("adopted %d node(s) from shard %d", len(g.Nodes), g.Shard)})
}

// relayGap forwards a cross-shard GapNotice to the meta-manager, which
// routes it to the shard managing the upstream container. Runs from the
// pump; must not park.
//
//iocheck:nonblocking
func (gm *GlobalManager) relayGap(p *sim.Proc, upstream string) {
	gm.shardSeq++
	//iocheck:allow vtblock toMeta is a bridge stone: handle() takes the forward() courier path, which enqueues without parking
	gm.toMeta.Submit(p, &evpath.Event{Type: msgGapRelay, Size: ctlMsgBytes,
		Data: &GapRelay{Seq: gm.shardSeq, Epoch: gm.epoch, Shard: gm.shard,
			Upstream: upstream}})
}

// relayCrack forwards an observed crack to the meta-manager exactly once
// so every other shard learns to run its branch. Legacy runs (no meta)
// are a no-op. Runs from the pump; must not park.
//
//iocheck:nonblocking
func (gm *GlobalManager) relayCrack(p *sim.Proc, n *CrackNotice) {
	if gm.toMeta == nil || gm.crackRelayed {
		return
	}
	gm.crackRelayed = true
	gm.shardSeq++
	//iocheck:allow vtblock toMeta is a bridge stone: handle() takes the forward() courier path, which enqueues without parking
	gm.toMeta.Submit(p, &evpath.Event{Type: msgCrackRelay, Size: ctlMsgBytes,
		Data: &CrackRelay{Seq: gm.shardSeq, Epoch: gm.epoch, Shard: gm.shard,
			From: n.From, Step: n.Step}})
}

// bridgeTo returns (creating and caching on first use) a bridge to a
// peer inbox. The cache keeps an insertion-ordered list so closeBridges
// releases couriers deterministically.
func (gm *GlobalManager) bridgeTo(inbox *evpath.Stone) *evpath.Stone {
	if b, ok := gm.peerBridges[inbox]; ok {
		return b
	}
	if gm.peerBridges == nil {
		gm.peerBridges = make(map[*evpath.Stone]*evpath.Stone)
	}
	b := gm.ev.NewBridge(inbox, 0)
	gm.peerBridges[inbox] = b
	gm.peerOrder = append(gm.peerOrder, b)
	return b
}

// beatMeta sends the periodic ShardBeat liveness heartbeat.
func (gm *GlobalManager) beatMeta(p *sim.Proc) {
	gm.shardSeq++
	gm.toMeta.Submit(p, &evpath.Event{Type: msgShardBeat, Size: ctlMsgBytes,
		Data: &ShardBeat{At: p.Now(), Seq: gm.shardSeq, Epoch: gm.epoch,
			Shard: gm.shard, Spare: len(gm.spare), Inbox: gm.root}})
}
