package core

import (
	"fmt"

	"repro/internal/adios"
	"repro/internal/bp"
	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/evpath"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/smartpointer"
	"repro/internal/trace"
)

// State is a container's lifecycle state.
type State int

// Container states.
const (
	StateOnline State = iota
	StateOffline
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == StateOffline {
		return "offline"
	}
	return "online"
}

// metadataMsgBytes is the size of one endpoint-metadata exchange message
// during resizes (the intra-container traffic that dominates Fig. 4).
const metadataMsgBytes = 1024

// ctlMsgBytes is the size of a manager-to-manager control message.
const ctlMsgBytes = 256

// replicaPollInterval bounds how long a replica waits in Fetch before
// rechecking its stop flag.
const replicaPollInterval = time1s

const time1s = sim.Second

// Container embeds one analytics component into a managed execution
// environment (paper §III): it owns whole staging nodes, runs the
// component's replicas on them, measures per-step latency at its
// boundaries, and executes the resize/offline legs of the control
// protocols on request from the global manager.
type Container struct {
	rt   *Runtime
	spec ComponentSpec

	nodes    []*cluster.Node
	replicas []*replica

	input  *datatap.Channel
	output *datatap.Channel // nil for terminal stages
	// taps are additional output channels receiving a duplicate of every
	// forwarded step (mid-run observers such as visualization
	// containers).
	taps []*datatap.Channel

	// downstream names the container consuming our output (dependency
	// edge for offline cascades); empty for terminal stages.
	downstream string

	// subHub is the subscriber fan-out hub this container serves
	// SubResume/SubReplay rounds for (nil unless the run configures a
	// subscriber fleet on this container's input channel).
	subHub *datatap.SubHub

	// shard is the control-plane shard managing this container (-1 on
	// legacy single-manager runs). It picks the upward bridge target and
	// labels compute spans so the critical-path analyzer can name the
	// hot shard.
	shard int

	state  State
	active bool // consuming (ActivateOnCrack components start passive)
	// observer containers consume duplicated taps; their completions are
	// not pipeline exits.
	observer bool

	// mgr is the local container manager's event context, pinned to the
	// container's first node.
	mgrEV   *evpath.Manager
	mailbox *evpath.Mailbox
	toGM    *evpath.Stone // bridge to the global manager's control mailbox
	// staleGM keeps the pre-rehome upward bridge alive so FenceResp
	// refusals can still reach a deposed manager's response mailbox.
	staleGM *evpath.Stone
	// fencedEpoch is the highest manager epoch that has contacted this
	// container; lower-epoch rounds are refused (see fence.go).
	fencedEpoch int64

	// Self-healing state: healSeq numbers heal rounds so stale grants are
	// recognized; deferred buffers mailbox events that arrived while an
	// in-progress doHeal was pumping the mailbox for its grant; replicaSeq
	// hands out replica indices monotonically so names stay unique across
	// crash/replace cycles.
	healSeq    int64
	deferred   []*evpath.Event
	replicaSeq int

	// diskSinks receives output when the downstream is offline (one
	// shared sink; per-replica ADIOS groups all point at it).
	diskSink   *adios.FileSink
	diskGroups []*adios.Group
	writeDisk  bool
	provenance string

	// Monitoring.
	samples     int64
	lastService sim.Time
	crackSeen   bool
	// probe applies the configured monitoring rate/aggregation before
	// samples cross the machine (nil = direct reporting).
	probe *monitor.Probe

	// stepsProcessed counts steps fully processed by this container.
	stepsProcessed int64
}

// replica is one running instance of the component.
type replica struct {
	c      *Container
	idx    int
	node   *cluster.Node
	reader *datatap.Reader
	writer *datatap.Writer
	// tapWriters duplicate output onto observer channels.
	tapWriters map[*datatap.Channel]*datatap.Writer
	group      *adios.Group // per-replica ADIOS group for disk fallback
	stop       bool
	done       *sim.Event
	proc       *sim.Proc
	busy       bool
	// abort interrupts an in-flight computation (MPI-style teardown or
	// offline kill); recreated for each processed step.
	abort *sim.Event
	// curMeta is the step being computed, for requeue on abort.
	curMeta *datatap.Meta
}

// Name returns the container's component name.
func (c *Container) Name() string { return c.spec.Name }

// Spec returns the component specification.
func (c *Container) Spec() ComponentSpec { return c.spec }

// State returns the lifecycle state.
func (c *Container) State() State { return c.state }

// Active reports whether the container is consuming its input.
func (c *Container) Active() bool { return c.active && c.state == StateOnline }

// Size returns the current node (== replica) count.
func (c *Container) Size() int { return len(c.nodes) }

// Nodes returns the owned nodes (shared slice; do not mutate).
func (c *Container) Nodes() []*cluster.Node { return c.nodes }

// Input returns the container's input channel.
func (c *Container) Input() *datatap.Channel { return c.input }

// StepsProcessed returns the number of steps the container completed.
func (c *Container) StepsProcessed() int64 { return c.stepsProcessed }

// DiskSink returns the sink used after offline transitions (may be nil if
// never used). Finish it to inspect provenance-stamped output.
func (c *Container) DiskSink() *adios.FileSink { return c.diskSink }

// ThroughputPeriod returns the minimum sustainable step period at the
// current size (local-manager knowledge: the component's speedup curve).
func (c *Container) ThroughputPeriod() sim.Time {
	return c.spec.Cost.ThroughputPeriod(c.rt.cfg.Scale.AtomCount, c.spec.Model,
		len(c.replicas), c.crackSeen)
}

// SLAPeriod returns the per-step deadline this container is managed
// against: the output period scaled by the component's SLA relaxation
// (checkpoint aggregation tolerates multiple periods; crack discovery
// does not).
func (c *Container) SLAPeriod() sim.Time {
	k := c.spec.SLAPeriods
	if k < 1 {
		k = 1
	}
	return sim.Time(k) * c.rt.cfg.OutputPeriod
}

// ReplicasNeeded answers the global manager's query: the total replica
// count needed to sustain the container's SLA period (0 = unattainable
// below max).
func (c *Container) ReplicasNeeded(max int) int {
	return c.spec.Cost.ReplicasToSustain(c.rt.cfg.Scale.AtomCount, c.spec.Model,
		c.SLAPeriod(), c.crackSeen, max)
}

// newContainer builds a container (not yet started) on the given nodes.
func (rt *Runtime) newContainer(spec ComponentSpec, nodes []*cluster.Node,
	input, output *datatap.Channel, downstream string) (*Container, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: container %s needs at least one node", spec.Name)
	}
	c := &Container{
		rt:         rt,
		spec:       spec,
		input:      input,
		output:     output,
		downstream: downstream,
		shard:      -1,
		state:      StateOnline,
		active:     !spec.ActivateOnCrack,
	}
	c.mgrEV = evpath.NewManager(rt.eng, rt.mach, nodes[0].ID)
	c.mgrEV.SetTracer(rt.tracer)
	c.mailbox = evpath.NewMailbox(c.mgrEV, 0)
	c.nodes = append(c.nodes, nodes...)
	return c, nil
}

// start launches the container's manager process, heartbeat monitor, and
// initial replicas (without aprun cost: the initial deployment happens
// inside the batch job's startup, as in the paper's experiments).
func (c *Container) start() {
	c.toGM = c.mgrEV.NewBridge(c.rt.managerFor(c).inbox(), 0)
	if c.rt.cfg.MonitorSampleEvery > 0 || c.rt.cfg.MonitorAggregateN > 1 {
		c.probe = monitor.NewProbe(c.toGM)
		c.probe.Every = c.rt.cfg.MonitorSampleEvery
		c.probe.AggregateN = c.rt.cfg.MonitorAggregateN
	}
	for _, n := range c.nodes {
		c.addReplica(n)
	}
	c.rt.eng.Go(c.spec.Name+"-mgr", c.managerLoop)
	c.rt.eng.Go(c.spec.Name+"-heartbeat", c.heartbeatLoop)
}

// heartbeatLoop reports queue pressure even while every replica is stuck
// in a long computation: without it, a badly under-provisioned container
// would emit no samples at all and the global manager would be blind to
// exactly the situations it must act on (paper §III-E: monitoring
// captures metrics "at the container boundaries").
func (c *Container) heartbeatLoop(p *sim.Proc) {
	interval := c.rt.cfg.Policy.Interval
	for {
		p.Sleep(interval)
		if c.state == StateOffline || c.rt.managerFor(c).ctl.Closed() {
			return
		}
		if !c.Active() || c.input == nil {
			continue
		}
		if q := c.input.QueueLen(); q > 0 {
			c.report(p, monitor.Sample{
				Container: c.spec.Name,
				Step:      -1, // pressure sample, not a completion
				Latency:   c.input.HeadAge(p.Now()),
				Service:   c.lastService,
				QueueLen:  q,
				At:        p.Now(),
			})
		}
	}
}

// replicaWatchLoop is the local manager's crash detector, spawned only
// under fault injection with self-healing enabled. It heartbeats the
// container's replica nodes once per policy interval; when a node stops
// answering (crashed), it submits a HealReq to the container's own
// mailbox so that the repair serializes with resizes and offline
// transitions in the manager loop.
func (c *Container) replicaWatchLoop(p *sim.Proc) {
	interval := c.rt.cfg.Policy.Interval
	reported := map[int]bool{}
	for {
		p.Sleep(interval)
		if c.state == StateOffline || c.mailbox.Closed() {
			return
		}
		crashed := false
		for _, r := range c.replicas {
			if !r.node.Up() && !reported[r.node.ID] {
				reported[r.node.ID] = true
				crashed = true
			}
		}
		if crashed {
			c.mailbox.Stone.Submit(p, &evpath.Event{Type: msgHeal, Data: &HealReq{}})
		}
	}
}

// addReplica creates and starts a replica on node n.
func (c *Container) addReplica(n *cluster.Node) *replica {
	r := &replica{
		c:    c,
		idx:  c.replicaSeq,
		node: n,
		done: sim.NewEvent(c.rt.eng),
	}
	c.replicaSeq++
	if c.input != nil {
		r.reader = c.input.NewReader(n.ID)
	}
	if c.output != nil {
		r.writer = c.output.NewWriter(n.ID)
	}
	r.tapWriters = make(map[*datatap.Channel]*datatap.Writer, len(c.taps))
	for _, tap := range c.taps {
		r.tapWriters[tap] = tap.NewWriter(n.ID)
	}
	r.group = c.rt.io.DeclareGroup(fmt.Sprintf("%s.out.%d", c.spec.Name, r.idx))
	if c.writeDisk || c.spec.DiskOutput {
		c.bindReplicaToDisk(r)
	}
	c.replicas = append(c.replicas, r)
	c.diskGroups = append(c.diskGroups, r.group)
	r.proc = c.rt.eng.Go(fmt.Sprintf("%s-replica-%d", c.spec.Name, r.idx), r.run)
	return r
}

// bindReplicaToDisk points a replica's ADIOS group at the shared disk
// sink with the container's provenance attributes.
func (c *Container) bindReplicaToDisk(r *replica) {
	if c.diskSink == nil {
		sink, err := adios.NewFileSink(c.spec.Name + ".offline.bp")
		if err != nil {
			panic(err) // in-memory sink creation cannot fail in practice
		}
		c.diskSink = sink
	}
	r.group.UseFile(c.diskSink)
	if c.provenance != "" {
		r.group.SetAttr(AttrProvenance, c.provenance)
	}
}

// isFetcher reports whether this replica pulls steps from the input. RR
// and serial replicas all fetch whole steps; under the tree and parallel
// (MPI) models the replicas cooperate on each step, so only the lead
// replica fetches while the others represent tree/rank members.
func (r *replica) isFetcher() bool {
	switch r.c.spec.Model {
	case smartpointer.ModelTree, smartpointer.ModelParallel:
		return len(r.c.replicas) > 0 && r == r.c.replicas[0]
	}
	return true
}

// run is a replica's main loop: fetch a step, compute, forward.
func (r *replica) run(p *sim.Proc) {
	defer r.done.Fire()
	c := r.c
	for {
		if r.stop {
			return
		}
		if !c.Active() || !r.isFetcher() {
			// Passive (pre-crack CNA), offline, or a non-lead
			// tree/rank member: idle without consuming. A closed input
			// means there will never be anything to do — exit rather
			// than poll forever (a replica can reach this state when a
			// resize completes after the run's shutdown began).
			if c.input == nil || c.input.Closed() {
				return
			}
			p.Sleep(replicaPollInterval)
			continue
		}
		m, ok := r.reader.FetchTimeout(p, replicaPollInterval)
		if !ok {
			if c.input.Closed() {
				return
			}
			continue
		}
		r.busy = true
		r.process(p, m)
		r.busy = false
	}
}

// process executes the component on one fetched step. The computation is
// interruptible: an MPI-style teardown (or offline kill) fires r.abort,
// in which case the step is requeued (teardown) or dropped (offline)
// rather than forwarded.
func (r *replica) process(p *sim.Proc, m *datatap.Meta) {
	c := r.c
	sp := c.rt.tracer.Begin(m.Span, "core", "compute").
		Container(c.spec.Name).Node(r.node.ID).Step(m.Step)
	if c.shard >= 0 {
		sp.AttrInt("shard", int64(c.shard))
	}
	// A stalled node freezes mid-step: the process is alive but makes no
	// progress until the stall window closes (nil-safe; 0 without faults).
	if d := c.rt.mach.Faults().StallRemaining(r.node.ID); d > 0 {
		sp.Attr("stalled", "1")
		p.Sleep(d)
	}
	pg, _ := m.Data.(*bp.ProcessGroup)
	fi := FrameInfo{Step: m.Step, Atoms: c.rt.cfg.Scale.AtomCount}
	if pg != nil {
		if decoded, err := DecodeFrame(pg); err == nil {
			fi = decoded
			if fi.Atoms == 0 {
				fi.Atoms = c.rt.cfg.Scale.AtomCount
			}
		}
	}
	if fi.Crack && !c.crackSeen {
		c.crackSeen = true
		c.notifyCrack(p)
	}
	st := c.spec.Cost.ServiceTime(fi.Atoms, c.spec.Model, len(c.replicas), fi.Crack)
	r.curMeta = m
	r.abort = sim.NewEvent(c.rt.eng)
	interrupted := r.abort.WaitTimeout(p, st)
	r.abort = nil
	r.curMeta = nil
	if interrupted {
		if c.state == StateOffline {
			c.rt.dropped++
			sp.Attr("interrupted", "offline").End()
			return
		}
		if !c.input.Requeue(m) {
			c.rt.dropped++
		}
		sp.Attr("interrupted", "teardown").End()
		return
	}
	c.lastService = st
	c.stepsProcessed++
	latency := p.Now() - m.Created
	spID := sp.ID() // before End: spans recycle once ended
	sp.End()
	c.report(p, monitor.Sample{
		Container: c.spec.Name,
		Step:      m.Step,
		Latency:   latency,
		Service:   st,
		QueueLen:  c.input.QueueLen(),
		At:        p.Now(),
	})
	r.forward(p, m, pg, fi, spID)
	// Processing ack: under at-least-once delivery the upstream writer
	// retains the payload until the step has been computed AND routed
	// downstream; only then may it stop guarding against redelivery.
	// (No-op in best-effort mode.)
	r.reader.Ack(p, m)
}

// forward routes the processed step downstream: to the output channel
// when the downstream container is online, else to disk with provenance,
// else (terminal stage) records pipeline exit. parent is the compute
// span's trace context; outgoing writes chain from it.
func (r *replica) forward(p *sim.Proc, m *datatap.Meta, pg *bp.ProcessGroup, fi FrameInfo, parent trace.SpanID) {
	c := r.c
	outSize := int64(float64(m.Size) * c.spec.OutputFactor)
	// Observers get a duplicate of every step regardless of where the
	// primary output goes; a saturated tap drops rather than stalls the
	// pipeline (TryPut semantics via a bounded tap queue). Iterate the
	// attachment-ordered tap list, not the writer map: tap writes transfer
	// simulated bytes, so their order must be deterministic.
	for _, tap := range c.taps {
		w, ok := r.tapWriters[tap]
		if !ok {
			continue
		}
		out := pg
		if pg != nil {
			clone := *pg
			out = &clone
		}
		if !tap.Full() {
			//iocheck:allow dropresult observer taps drop on saturation by design; the primary output path below is the guarded one
			w.WriteTraced(p, m.Step, outSize, out, parent)
		}
	}
	switch {
	case c.observer:
		// Observation only: nothing downstream, no exit accounting.
	case c.writeDisk || c.spec.DiskOutput:
		sw, err := r.group.Open(m.Step)
		if err == nil {
			sw.PadBytes(outSize)
			if pg != nil && pg.Attrs != nil {
				for k, v := range pg.Attrs {
					sw.SetAttr(k, v)
				}
			}
			if c.provenance != "" {
				sw.SetAttr(AttrProvenance, c.provenance)
			}
			if _, err := sw.Close(p); err != nil {
				c.rt.fail(err)
			}
		}
		c.rt.recordExit(p.Now(), fi)
	case c.output != nil:
		out := pg
		if pg != nil {
			clone := *pg
			out = &clone
		}
		if !r.writer.WriteTraced(p, m.Step, outSize, out, parent) &&
			!c.output.Closed() && r.node.Up() {
			// A refused write on a live channel by a live replica is a real
			// loss (a best-effort push failure); record it so the delivery
			// oracle can hold the run to account. Writes refused by shutdown
			// are not losses, and a write that failed because this replica's
			// own node just died is crash accounting, not silent loss: in
			// at-least-once mode the transport tombstones it, and the heal
			// protocol owns the replica.
			c.rt.noteDeliveryLoss(c.spec.Name, m.Step, "output-write")
		}
	default:
		// Terminal stage: the step has left the pipeline.
		c.rt.recordExit(p.Now(), fi)
	}
}

// report sends a monitoring sample to the global manager over the
// monitoring overlay, through the configured probe when one is set.
func (c *Container) report(p *sim.Proc, s monitor.Sample) {
	c.samples++
	c.rt.recordSample(s)
	if s.Step >= 0 && s.Latency > c.SLAPeriod() {
		// The first SLA violation freezes the flight recorder's lead-up.
		c.rt.tracer.Trigger("sla:" + c.spec.Name)
	}
	if c.probe != nil {
		c.probe.Offer(p, s)
		return
	}
	c.toGM.Submit(p, monitor.Event(s))
}

// MonitoringTraffic reports how many monitoring events this container
// sent across the machine versus how many samples it captured — the
// perturbation §III-E's flexible monitoring exists to control.
func (c *Container) MonitoringTraffic() (captured, sent int64) {
	if c.probe != nil {
		return c.probe.Seen(), c.probe.Sent()
	}
	return c.samples, c.samples
}

// notifyCrack tells the global manager crack formation was observed (the
// pipeline's dynamic-branch trigger).
func (c *Container) notifyCrack(p *sim.Proc) {
	c.toGM.Submit(p, &evpath.Event{Type: msgCrackDetected, Size: ctlMsgBytes,
		Data: &CrackNotice{From: c.spec.Name, Step: c.stepsProcessed}})
}

// noteGap reports a detected input-sequence gap to the global manager,
// which answers with a ResendReq round to the upstream container. It is
// installed as the input channel's gap handler under at-least-once
// delivery; the channel rate-limits invocations.
func (c *Container) noteGap(p *sim.Proc, missing int64) {
	if c.state == StateOffline || c.toGM == nil {
		return
	}
	c.toGM.Submit(p, &evpath.Event{Type: msgGap, Size: ctlMsgBytes,
		Data: &GapNotice{From: c.spec.Name, Channel: c.input.Name(), Missing: missing}})
}
