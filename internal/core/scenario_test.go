package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// runScenario builds and runs a config, failing the test on error.
func runScenario(t *testing.T, cfg Config) *Result {
	t.Helper()
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func fig7Config() Config {
	return Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
	}
}

func fig8Config() Config {
	return Config{
		SimNodes:     512,
		StagingNodes: 24,
		Specs:        SpecsWithBondsModel(smartpointer.ModelParallel),
		Sizes:        DefaultSizes(24),
		Steps:        20,
		CrackStep:    -1,
		Seed:         42,
	}
}

func fig9Config() Config {
	return Config{
		SimNodes:     1024,
		StagingNodes: 24,
		Specs:        SpecsWithBondsModel(smartpointer.ModelParallel),
		Sizes:        DefaultSizes(24),
		Steps:        60,
		CrackStep:    -1,
		Seed:         42,
		Policy:       PolicyConfig{OfflinePatience: 10},
	}
}

func hasAction(res *Result, kind, target string) bool {
	for _, a := range res.Actions {
		if a.Kind == kind && a.Target == target {
			return true
		}
	}
	return false
}

func TestFig7StealFromHelperFixesBonds(t *testing.T) {
	res := runScenario(t, fig7Config())
	if res.Emitted != 20 || res.Exits != 20 || res.Dropped != 0 {
		t.Fatalf("emitted=%d exits=%d dropped=%d", res.Emitted, res.Exits, res.Dropped)
	}
	// The paper's Fig. 7 management sequence: decrease the
	// over-provisioned Helper, increase the bottleneck Bonds.
	if !hasAction(res, "decrease", "helper") {
		t.Fatalf("no helper decrease in %v", res.Actions)
	}
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("no bonds increase in %v", res.Actions)
	}
	if hasAction(res, "offline", "bonds") {
		t.Fatal("bonds must stay online at 256 nodes")
	}
	// Latency shape: climbs above the service floor, then settles back.
	lat := res.Recorder.Series("latency.bonds").Values()
	if len(lat) < 10 {
		t.Fatalf("too few latency samples: %d", len(lat))
	}
	floor := lat[0]
	peak := floor
	for _, v := range lat {
		if v > peak {
			peak = v
		}
	}
	if peak < floor*1.2 {
		t.Fatalf("no pre-action latency climb: floor %.1f peak %.1f", floor, peak)
	}
	tail := lat[len(lat)-3:]
	for _, v := range tail {
		if v > floor*1.05 {
			t.Fatalf("latency did not settle: tail %v vs floor %.1f", tail, floor)
		}
	}
	// All four containers online with the traded sizes.
	if res.States["helper"] != "online" || res.States["bonds"] != "online" {
		t.Fatalf("states %v", res.States)
	}
	if res.FinalSizes["bonds"] <= 2 || res.FinalSizes["helper"] >= 6 {
		t.Fatalf("sizes %v: expected bonds to grow at helper's expense", res.FinalSizes)
	}
}

func TestFig8InsufficientButNoOverflow(t *testing.T) {
	res := runScenario(t, fig8Config())
	if res.Emitted != 20 {
		t.Fatalf("emitted %d", res.Emitted)
	}
	// Management happens (spares + stealing), but nothing goes offline:
	// the run completes before any queue overflow.
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("no bonds increase in %v", res.Actions)
	}
	for name, st := range res.States {
		if st != "online" {
			t.Fatalf("container %s went offline; states %v", name, res.States)
		}
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d steps", res.Dropped)
	}
	// Bonds grew substantially but remains short of fully sustaining the
	// 15 s cadence (insufficient resources).
	if res.FinalSizes["bonds"] < 10 {
		t.Fatalf("bonds only reached %d nodes", res.FinalSizes["bonds"])
	}
	qs := res.Recorder.Series("queue.bonds").Values()
	maxQ := 0.0
	for _, q := range qs {
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ == 0 {
		t.Fatal("no backlog at all: scenario is not stressed")
	}
	if maxQ >= 10 {
		t.Fatalf("queue reached %v; should stay below the offline threshold", maxQ)
	}
}

func TestFig9OfflineCascadeWithProvenance(t *testing.T) {
	res := runScenario(t, fig9Config())
	// The runtime recognizes the overflow risk and moves Bonds and CSym
	// offline; inactive CNA is untouched (as in the paper).
	if res.States["bonds"] != "offline" || res.States["csym"] != "offline" {
		t.Fatalf("states %v", res.States)
	}
	if res.States["helper"] != "online" || res.States["cna"] != "online" {
		t.Fatalf("states %v", res.States)
	}
	// Spares were used first: a bonds increase precedes the offline.
	var incAt, offAt sim.Time = -1, -1
	for _, a := range res.Actions {
		if a.Kind == "increase" && a.Target == "bonds" && incAt < 0 {
			incAt = a.T
		}
		if a.Kind == "offline" && a.Target == "bonds" {
			offAt = a.T
		}
	}
	if incAt < 0 || offAt < 0 || incAt >= offAt {
		t.Fatalf("expected increase-then-offline, got %v", res.Actions)
	}
	// Upstream switched to disk with full pending-analysis provenance.
	prov := res.Provenance["helper"]
	for _, want := range []string{"bonds", "csym", "cna"} {
		if !strings.Contains(prov, want) {
			t.Fatalf("provenance %q missing %s", prov, want)
		}
	}
	if res.Dropped == 0 {
		t.Fatal("offline should have dropped queued steps")
	}
	// Offline returns the nodes to the spare pool.
	if res.Spare == 0 {
		t.Fatal("no nodes returned to spare pool")
	}
}

func TestFig9ProvenanceOnDisk(t *testing.T) {
	cfg := fig9Config()
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	sink := rt.Container("helper").DiskSink()
	if sink == nil {
		t.Fatal("helper never wrote to disk")
	}
	rd, err := sink.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Steps() == 0 {
		t.Fatal("no offline steps on disk")
	}
	pg, err := rd.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pg.Attrs[AttrProvenance], "bonds") {
		t.Fatalf("disk step lacks provenance: %v", pg.Attrs)
	}
	// Birth stamps survive to disk too.
	if pg.Attrs[AttrBirth] == "" {
		t.Fatal("birth attribute lost")
	}
}

func TestFig10EndToEndDropsAfterOffline(t *testing.T) {
	res := runScenario(t, fig9Config())
	e2e := res.Recorder.Series("e2e")
	if e2e.Len() < 5 {
		t.Fatalf("too few e2e samples: %d", e2e.Len())
	}
	var offAt sim.Time = -1
	for _, a := range res.Actions {
		if a.Kind == "offline" && a.Target == "bonds" {
			offAt = a.T
		}
	}
	if offAt < 0 {
		t.Fatal("no offline action")
	}
	var before, after []float64
	for _, pt := range e2e.Points {
		if pt.T <= offAt {
			before = append(before, pt.V)
		} else {
			after = append(after, pt.V)
		}
	}
	if len(before) < 1 || len(after) < 3 {
		t.Fatalf("before=%d after=%d samples", len(before), len(after))
	}
	// Sharp decrease: the steady state after pruning is at least an
	// order of magnitude below the last pre-offline latency.
	last := after[len(after)-1]
	peak := before[len(before)-1]
	if last > peak/10 {
		t.Fatalf("no sharp drop: pre-offline %.1fs, steady state %.1fs", peak, last)
	}
	// And pre-offline latency was rising (queueing).
	if len(before) >= 2 && before[len(before)-1] <= before[0] {
		t.Fatalf("pre-offline e2e not rising: %v", before)
	}
}

func TestUnmanagedBaselineBlocksApplication(t *testing.T) {
	// Ablation: with management disabled, the Fig. 9 workload blocks the
	// simulation's writer far longer (the cost the containers avoid).
	managed := runScenario(t, fig9Config())
	cfg := fig9Config()
	cfg.Policy.DisableManagement = true
	unmanaged := runScenario(t, cfg)
	if unmanaged.WriterBlocked <= managed.WriterBlocked {
		t.Fatalf("unmanaged blocking %v should exceed managed %v",
			unmanaged.WriterBlocked, managed.WriterBlocked)
	}
	if unmanaged.Exits >= managed.Exits {
		t.Fatalf("managed run should let more steps exit: %d vs %d",
			managed.Exits, unmanaged.Exits)
	}
	if len(unmanaged.Actions) != 0 {
		t.Fatalf("unmanaged run took actions: %v", unmanaged.Actions)
	}
}

func TestCrackBranchActivatesCNA(t *testing.T) {
	cfg := fig7Config()
	cfg.CrackStep = 5
	cfg.Specs = DefaultSpecs()
	// Make CSym hand over on crack (the paper's dynamic branch).
	for i := range cfg.Specs {
		if cfg.Specs[i].Name == "csym" {
			cfg.Specs[i].DeactivateOnCrack = true
		}
	}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !hasAction(res, "activate", "cna") {
		t.Fatalf("CNA never activated: %v", res.Actions)
	}
	if !hasAction(res, "activate", "csym") {
		t.Fatalf("CSym never deactivated: %v", res.Actions)
	}
	if rt.Container("cna").StepsProcessed() == 0 {
		t.Fatal("CNA processed nothing after activation")
	}
	// CSym stops consuming after the handover.
	if rt.Container("cna").Active() != true {
		t.Fatal("cna should be active")
	}
	if rt.Container("csym").Active() {
		t.Fatal("csym should be inactive after handover")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runScenario(t, fig7Config())
	b := runScenario(t, fig7Config())
	av, bv := a.Recorder.Series("latency.bonds").Values(), b.Recorder.Series("latency.bonds").Values()
	if len(av) != len(bv) {
		t.Fatalf("sample counts differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, av[i], bv[i])
		}
	}
	if len(a.Actions) != len(b.Actions) {
		t.Fatal("action counts differ")
	}
	// Different seed shifts the aprun costs (and hence some timings).
	cfg := fig7Config()
	cfg.Seed = 7
	c := runScenario(t, cfg)
	if len(c.Actions) == 0 {
		t.Fatal("reseeded run took no actions")
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	cfg := fig7Config()
	cfg.Sizes = map[string]int{"helper": 20, "bonds": 20, "csym": 1, "cna": 1}
	if _, err := Build(cfg); err == nil {
		t.Fatal("oversized containers should fail")
	}
	cfg = fig7Config()
	cfg.Specs = []ComponentSpec{{
		Name:  "bad",
		Kind:  smartpointer.KindHelper,
		Model: smartpointer.ModelRR, // Helper does not support RR
		Cost:  smartpointer.DefaultCostModels()[smartpointer.KindHelper],
	}}
	if _, err := Build(cfg); err == nil {
		t.Fatal("unsupported compute model should fail")
	}
}

func TestPolicyAblationNoStealing(t *testing.T) {
	cfg := fig7Config() // no spares: without stealing, nothing can help
	cfg.Policy.DisableStealing = true
	cfg.Policy.DisableOffline = true
	res := runScenario(t, cfg)
	if hasAction(res, "decrease", "helper") {
		t.Fatal("stealing disabled but helper was decreased")
	}
	if res.FinalSizes["bonds"] != 2 {
		t.Fatalf("bonds resized to %d without resources", res.FinalSizes["bonds"])
	}
	// The bottleneck persists: final latencies stay elevated.
	lat := res.Recorder.Series("latency.bonds").Values()
	if len(lat) == 0 || lat[len(lat)-1] <= lat[0] {
		t.Fatalf("expected unresolved latency growth, got %v", lat)
	}
}

func TestFrameCodec(t *testing.T) {
	pgAttrs := map[string]string{
		AttrAtoms: "123456",
		AttrCrack: "true",
		AttrBirth: "15000000000",
	}
	pg := &testPG{attrs: pgAttrs}
	fi, err := DecodeFrame(pg.toBP())
	if err != nil {
		t.Fatal(err)
	}
	if fi.Atoms != 123456 || !fi.Crack || fi.Birth != 15*sim.Second {
		t.Fatalf("decoded %+v", fi)
	}
	pg.attrs[AttrAtoms] = "nope"
	if _, err := DecodeFrame(pg.toBP()); err == nil {
		t.Fatal("bad atoms attr should fail")
	}
	pg.attrs[AttrAtoms] = "1"
	pg.attrs[AttrBirth] = "xyz"
	if _, err := DecodeFrame(pg.toBP()); err == nil {
		t.Fatal("bad birth attr should fail")
	}
}

func TestTransactionalTradeCommit(t *testing.T) {
	cfg := fig7Config()
	cfg.Policy.TransactionalTrades = true
	res := runScenario(t, cfg)
	// The trade still happens (committed transaction), same end state.
	if !hasAction(res, "decrease", "helper") || !hasAction(res, "increase", "bonds") {
		t.Fatalf("trade missing: %v", res.Actions)
	}
	if hasAction(res, "trade-abort", "bonds") {
		t.Fatal("healthy trade aborted")
	}
	if res.FinalSizes["bonds"] <= 2 {
		t.Fatalf("bonds not grown: %v", res.FinalSizes)
	}
}

func TestTransactionalTradeRollback(t *testing.T) {
	cfg := fig7Config()
	cfg.Policy.TransactionalTrades = true
	cfg.Policy.InjectTradeFailures = 1
	res := runScenario(t, cfg)
	// First trade aborts and rolls back; a later tick retries and
	// succeeds.
	if !hasAction(res, "trade-abort", "bonds") {
		t.Fatalf("no trade abort recorded: %v", res.Actions)
	}
	// Rollback means an increase back to helper appears.
	rolledBack := false
	for _, a := range res.Actions {
		if a.Kind == "increase" && a.Target == "helper" {
			rolledBack = true
		}
	}
	if !rolledBack {
		t.Fatalf("no rollback increase to helper: %v", res.Actions)
	}
	// Node conservation: containers + spare == staging total.
	total := res.Spare
	for _, n := range res.FinalSizes {
		total += n
	}
	if total != cfg.StagingNodes {
		t.Fatalf("node leak: %d != %d", total, cfg.StagingNodes)
	}
	// The retry eventually fixes bonds.
	if res.FinalSizes["bonds"] <= 2 {
		t.Fatalf("retry never happened: %v", res.FinalSizes)
	}
}

// Property: across random policy knobs and scales, staging nodes are
// conserved — every node is in exactly one container or the spare pool.
func TestNodeConservationProperty(t *testing.T) {
	cases := []Config{fig7Config(), fig8Config(), fig9Config()}
	for seed := int64(1); seed <= 4; seed++ {
		for i, base := range cases {
			cfg := base
			cfg.Seed = seed
			cfg.Steps = 15
			if i == 2 {
				cfg.Policy.OfflinePatience = 2 // force the offline path
			}
			res := runScenario(t, cfg)
			total := res.Spare
			for _, n := range res.FinalSizes {
				total += n
			}
			if total != cfg.StagingNodes {
				t.Fatalf("case %d seed %d: %d nodes accounted, want %d (sizes %v spare %d)",
					i, seed, total, cfg.StagingNodes, res.FinalSizes, res.Spare)
			}
		}
	}
}

func TestCheckpointContainerRelaxedSLA(t *testing.T) {
	cfg := fig7Config()
	cfg.StagingNodes = 15 // leave room for the checkpoint container
	cfg.CheckpointEvery = 4
	cfg.CheckpointNodes = 2
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := rt.Container("checkpoint")
	if ckpt == nil {
		t.Fatal("no checkpoint container")
	}
	// 20 steps, every 4th checkpointed -> 5 checkpoints aggregated.
	if got := ckpt.StepsProcessed(); got != 5 {
		t.Fatalf("checkpoints processed %d, want 5", got)
	}
	// Checkpoint output is on stable storage.
	sink := ckpt.DiskSink()
	if sink == nil || sink.Steps() != 5 {
		t.Fatalf("checkpoint disk steps: %v", sink)
	}
	// The relaxed SLA: each flush completes within the checkpoint
	// interval, and the checkpoint stream never drew management actions.
	flush := res.Recorder.Series("ckpt.flush")
	if flush.Len() != 5 {
		t.Fatalf("flush samples %d", flush.Len())
	}
	period := rt.Config().OutputPeriod
	interval := (4 * period).Seconds()
	for _, pt := range flush.Points {
		if pt.V > interval {
			t.Fatalf("flush took %.1fs, beyond the %gs interval", pt.V, interval)
		}
	}
	for _, a := range res.Actions {
		if a.Target == "checkpoint" {
			t.Fatalf("checkpoint container drew management action %v", a)
		}
	}
	// The main pipeline's management is unaffected.
	if !hasAction(res, "increase", "bonds") {
		t.Fatalf("bonds management lost: %v", res.Actions)
	}
	// The e2e series must not include checkpoint flushes.
	if res.Exits != 20 {
		t.Fatalf("exits %d, want 20 analytics steps", res.Exits)
	}
	// SLA relaxation is visible in the container's own accounting.
	if ckpt.SLAPeriod() != 4*period {
		t.Fatalf("SLA period %v", ckpt.SLAPeriod())
	}
	if rt.Container("bonds").SLAPeriod() != period {
		t.Fatal("bonds SLA should be one period")
	}
}

func TestSpreadPlacementStillConserves(t *testing.T) {
	cfg := fig7Config()
	cfg.SpreadPlacement = true
	res := runScenario(t, cfg)
	if res.Emitted != 20 {
		t.Fatalf("emitted %d", res.Emitted)
	}
	total := res.Spare
	for _, n := range res.FinalSizes {
		total += n
	}
	if total != cfg.StagingNodes {
		t.Fatalf("nodes %d != %d", total, cfg.StagingNodes)
	}
	// Interleaving must not assign a node to two containers.
	seen := map[int]bool{}
	rt, _ := Build(cfg)
	for _, c := range rt.containers {
		for _, n := range c.Nodes() {
			if seen[n.ID] {
				t.Fatalf("node %d assigned twice", n.ID)
			}
			seen[n.ID] = true
		}
	}
	rt.Shutdown()
}

// Property: the managed pipeline survives arbitrary configurations —
// random scales, staging widths, sizings, policies, crack steps — without
// errors, leaking nodes, or losing accounting.
func TestRandomConfigTortureProperty(t *testing.T) {
	f := func(seed int64, simRaw, stagingRaw, stepsRaw, crackRaw, knobs uint8) bool {
		simNodes := 64 * (int(simRaw%8) + 1) // 64..512
		staging := int(stagingRaw%20) + 9    // 9..28
		steps := int(stepsRaw%15) + 5        // 5..19
		cfg := Config{
			SimNodes:     simNodes,
			StagingNodes: staging,
			Sizes: map[string]int{
				"helper": 4, "bonds": 2, "csym": 1, "cna": 1,
			},
			Steps:     steps,
			CrackStep: -1,
			Seed:      seed,
		}
		if crackRaw%3 == 0 {
			cfg.CrackStep = int64(crackRaw % uint8(steps))
		}
		if knobs&1 != 0 {
			cfg.Specs = SpecsWithBondsModel(smartpointer.ModelParallel)
		}
		if knobs&2 != 0 {
			cfg.Policy.TransactionalTrades = true
		}
		if knobs&4 != 0 {
			cfg.StandbyGM = true
		}
		if knobs&8 != 0 {
			cfg.Policy.DisableStealing = true
		}
		if knobs&16 != 0 && staging >= 10 {
			cfg.CheckpointEvery = 4
		}
		rt, err := Build(cfg)
		if err != nil {
			return false
		}
		res, err := rt.Run()
		if err != nil {
			return false
		}
		// Node conservation.
		total := res.Spare
		for _, n := range res.FinalSizes {
			total += n
		}
		if total != staging {
			return false
		}
		// Step accounting: exits + dropped + still-in-flight never
		// exceeds what was emitted.
		if res.Exits+int64(res.Dropped) > int64(res.Emitted) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60,
		Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestStepTrace(t *testing.T) {
	cfg := fig7Config()
	cfg.Steps = 6
	cfg.TraceSteps = true
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepTrace) == 0 {
		t.Fatal("no step trace")
	}
	// Stage completions for a step must be chronologically ordered along
	// the pipeline.
	st, ok := res.StepTrace[0]
	if !ok {
		t.Fatalf("step 0 missing: %v", res.StepTrace)
	}
	if !(st["helper"] < st["bonds"] && st["bonds"] < st["csym"]) {
		t.Fatalf("stage order broken: %v", st)
	}
}

func TestProducerFinishedFlag(t *testing.T) {
	res := runScenario(t, fig7Config())
	if !res.ProducerFinished {
		t.Fatal("healthy run should finish the producer")
	}
	// An unmanaged overload chokes the producer before the horizon.
	cfg := fig9Config()
	cfg.Steps = 60
	cfg.Policy.DisableManagement = true
	cfg.DrainTime = sim.Second
	choked := runScenario(t, cfg)
	if choked.ProducerFinished && choked.Emitted == 60 {
		t.Fatalf("unmanaged overload should choke the producer (emitted %d)", choked.Emitted)
	}
}

func TestShutdownLeavesNoBlockedProcs(t *testing.T) {
	rt, err := Build(fig7Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if blocked := rt.Engine().Blocked(); len(blocked) != 0 {
		t.Fatalf("leaked parked processes: %v", blocked)
	}
}
