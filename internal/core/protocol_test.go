package core

import (
	"testing"

	"repro/internal/bp"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

type testPG struct{ attrs map[string]string }

func (t *testPG) toBP() *bp.ProcessGroup {
	return &bp.ProcessGroup{Group: "t", Attrs: t.attrs}
}

func TestStampBirth(t *testing.T) {
	pg := &bp.ProcessGroup{Group: "g"}
	StampBirth(pg, 42*sim.Second)
	fi, err := DecodeFrame(pg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Birth != 42*sim.Second {
		t.Fatalf("birth %v", fi.Birth)
	}
}

func TestSpecValidate(t *testing.T) {
	models := smartpointer.DefaultCostModels()
	good := ComponentSpec{Name: "x", Kind: smartpointer.KindBonds,
		Model: smartpointer.ModelRR, Cost: models[smartpointer.KindBonds]}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Kind = smartpointer.KindCSym
	bad.Model = smartpointer.ModelParallel
	if err := bad.Validate(); err == nil {
		t.Fatal("CSym+Parallel should be rejected (Table I)")
	}
	bad = good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name should be rejected")
	}
	bad = good
	bad.OutputFactor = -1
	if bad.Validate() == nil {
		t.Fatal("negative output factor should be rejected")
	}
	if (&SpecError{Name: "n", Msg: "m"}).Error() == "" {
		t.Fatal("SpecError message empty")
	}
}

func TestDefaultSpecsMatchTable1(t *testing.T) {
	for _, spec := range DefaultSpecs() {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
	specs := SpecsWithBondsModel(smartpointer.ModelParallel)
	for _, s := range specs {
		if s.Kind == smartpointer.KindBonds && s.Model != smartpointer.ModelParallel {
			t.Fatal("bonds model not overridden")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// protoRuntime builds a tiny two-stage pipeline for protocol-level tests:
// a fast producer, one helper-like stage, one bonds-like stage.
func protoRuntime(t *testing.T, bondsNodes int, model smartpointer.ComputeModel) *Runtime {
	t.Helper()
	cfg := Config{
		SimNodes:     16,
		StagingNodes: 13,
		Sizes:        map[string]int{"helper": 4, "bonds": bondsNodes, "csym": 1, "cna": 1},
		Steps:        4,
		CrackStep:    -1,
		Seed:         11,
		Specs:        SpecsWithBondsModel(model),
		Policy:       PolicyConfig{DisableManagement: true},
	}
	rt, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestIncreaseProtocolBreakdown(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelRR)
	var resp *IncreaseResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		nodes := rt.gm.spare[:2]
		rt.gm.spare = rt.gm.spare[2:]
		resp = rt.gm.Increase(p, "bonds", nodes)
	})
	rt.eng.RunUntil(120 * sim.Second)
	if resp == nil {
		t.Fatal("no increase response")
	}
	if resp.Size != 4 {
		t.Fatalf("size %d, want 4", resp.Size)
	}
	if resp.Launch < 3*sim.Second || resp.Launch > 27*sim.Second {
		t.Fatalf("launch cost %v outside aprun range", resp.Launch)
	}
	if resp.Intra <= 0 {
		t.Fatal("intra-container exchange cost missing")
	}
	// The paper's Fig. 4 claim: intra-container metadata exchange
	// dominates the inherent (non-aprun) protocol cost; it must at least
	// be nonzero and scale with the increase (covered by the bench).
	if rt.Container("bonds").Size() != 4 {
		t.Fatalf("container size %d", rt.Container("bonds").Size())
	}
	rt.shutdown()
	rt.eng.Run()
}

func TestDecreaseProtocolReleasesNodes(t *testing.T) {
	rt := protoRuntime(t, 4, smartpointer.ModelRR)
	var resp *DecreaseResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		resp = rt.gm.Decrease(p, "bonds", 2)
	})
	rt.eng.RunUntil(200 * sim.Second)
	if resp == nil {
		t.Fatal("no decrease response")
	}
	if len(resp.Nodes) != 2 || resp.Size != 2 {
		t.Fatalf("released %d, size %d", len(resp.Nodes), resp.Size)
	}
	if rt.Container("bonds").Size() != 2 {
		t.Fatalf("container size %d", rt.Container("bonds").Size())
	}
	if rt.gm.Spare() < 2 {
		t.Fatalf("spare %d after release", rt.gm.Spare())
	}
	// Decrease must not lose steps: the channel was paused during the
	// removal and remaining replicas continue.
	rt.shutdown()
	rt.eng.Run()
}

func TestDecreaseMoreThanSizeClamps(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelRR)
	var resp *DecreaseResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		resp = rt.gm.Decrease(p, "bonds", 99)
	})
	rt.eng.RunUntil(200 * sim.Second)
	if resp == nil || len(resp.Nodes) != 2 {
		t.Fatalf("resp %+v", resp)
	}
	rt.shutdown()
	rt.eng.Run()
}

func TestParallelIncreaseTearsDownAndRelaunches(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelParallel)
	var resp *IncreaseResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(20 * sim.Second) // let a step get in flight
		nodes := rt.gm.spare[:3]
		rt.gm.spare = rt.gm.spare[3:]
		resp = rt.gm.Increase(p, "bonds", nodes)
	})
	rt.eng.RunUntil(400 * sim.Second)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Size != 5 {
		t.Fatalf("size %d, want 5 after relaunch", resp.Size)
	}
	if rt.Container("bonds").Size() != 5 {
		t.Fatal("node set not merged")
	}
	rt.shutdown()
	rt.eng.Run()
	// The aborted in-flight step must have been requeued, not lost:
	// eventually every emitted step is processed or still queued.
	c := rt.Container("bonds")
	if c.StepsProcessed()+int64(c.Input().QueueLen())+int64(rt.dropped) < int64(rt.emitted) {
		t.Fatalf("steps unaccounted: processed=%d queued=%d dropped=%d emitted=%d",
			c.StepsProcessed(), c.Input().QueueLen(), rt.dropped, rt.emitted)
	}
}

func TestOfflineDirectCall(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelRR)
	var offResp *OfflineResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		rt.gm.SetOutput(p, "helper", "bonds,csym,cna")
		offResp = rt.gm.Offline(p, "bonds")
	})
	rt.eng.RunUntil(300 * sim.Second)
	if offResp == nil {
		t.Fatal("no offline response")
	}
	if rt.Container("bonds").State() != StateOffline {
		t.Fatal("bonds not offline")
	}
	if len(offResp.Nodes) != 2 {
		t.Fatalf("released %d nodes", len(offResp.Nodes))
	}
	// Upstream now writes to disk.
	if got := rt.Container("helper").provenance; got != "bonds,csym,cna" {
		t.Fatalf("provenance %q", got)
	}
	rt.shutdown()
	rt.eng.Run()
	sink := rt.Container("helper").DiskSink()
	if sink == nil || sink.Steps() == 0 {
		t.Fatal("helper wrote nothing to disk after offline")
	}
}

func TestQueryRound(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelRR)
	var q *QueryResp
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		q = rt.gm.Query(p, "bonds", 24)
	})
	rt.eng.RunUntil(30 * sim.Second)
	if q == nil {
		t.Fatal("no query response")
	}
	if q.Size != 2 {
		t.Fatalf("size %d", q.Size)
	}
	// 16-node sim scale is tiny: 2 replicas more than sustain it.
	if q.Needed > 2 || q.Needed < 1 {
		t.Fatalf("needed %d", q.Needed)
	}
	if q.Period <= 0 {
		t.Fatal("period missing")
	}
	rt.shutdown()
	rt.eng.Run()
}

func TestActivateRound(t *testing.T) {
	rt := protoRuntime(t, 2, smartpointer.ModelRR)
	rt.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		if rt.Container("cna").Active() {
			t.Error("cna should start passive")
		}
		rt.gm.Activate(p, "cna", true)
		if !rt.Container("cna").Active() {
			t.Error("cna not activated")
		}
		rt.gm.Activate(p, "cna", false)
		if rt.Container("cna").Active() {
			t.Error("cna not deactivated")
		}
	})
	rt.eng.RunUntil(30 * sim.Second)
	rt.shutdown()
	rt.eng.Run()
}

func TestStateString(t *testing.T) {
	if StateOnline.String() != "online" || StateOffline.String() != "offline" {
		t.Fatal("state strings wrong")
	}
}
