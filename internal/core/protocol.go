package core

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/evpath"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// Control message event types on the management overlay.
const (
	msgIncrease      = "ctl.increase"
	msgDecrease      = "ctl.decrease"
	msgOffline       = "ctl.offline"
	msgSetOutput     = "ctl.set_output"
	msgQuery         = "ctl.query"
	msgActivate      = "ctl.activate"
	msgAddTap        = "ctl.add_tap"
	msgResend        = "ctl.resend"
	msgResp          = "ctl.resp"
	msgCrackDetected = "ctl.crack"
	msgGap           = "ctl.gap"
	// Replica-restart protocol (self-healing under fault injection).
	msgSpare      = "ctl.spare"       // LM -> GM: request replacement nodes
	msgSpareGrant = "ctl.spare_grant" // GM -> LM: granted nodes (may be empty)
	msgHeal       = "ctl.heal"        // watch -> own LM: crashed replica detected
	msgHealNotice = "ctl.heal_notice" // LM -> GM: heal outcome, for the action log
)

// IncreaseReq asks a container to grow onto the given nodes (paper
// Fig. 3). The global manager has already reserved the nodes.
type IncreaseReq struct {
	Seq   int64
	Epoch int64
	Nodes []*cluster.Node
}

// IncreaseResp reports a completed increase with its cost breakdown: the
// aprun-like launch (reported separately, as the paper factors it out of
// Fig. 4) and the intra-container metadata exchange that dominates.
type IncreaseResp struct {
	Seq    int64
	Epoch  int64
	Launch sim.Time
	Intra  sim.Time
	Size   int
}

// DecreaseReq asks a container to shed n replicas.
type DecreaseReq struct {
	Seq   int64
	Epoch int64
	N     int
}

// DecreaseResp returns the released nodes and the cost breakdown: the
// upstream DataTap writer pause (the dominant Fig. 5 term) and the victim
// drain.
type DecreaseResp struct {
	Seq       int64
	Epoch     int64
	Nodes     []*cluster.Node
	PauseWait sim.Time
	Drain     sim.Time
	Size      int
}

// OfflineReq takes the container offline entirely.
type OfflineReq struct {
	Seq   int64
	Epoch int64
}

// OfflineResp returns all nodes and the count of queued steps dropped.
type OfflineResp struct {
	Seq     int64
	Epoch   int64
	Nodes   []*cluster.Node
	Dropped int
}

// SetOutputReq redirects a container's output to disk with provenance
// (the upstream half of an offline transition).
type SetOutputReq struct {
	Seq        int64
	Epoch      int64
	Provenance string
}

// SetOutputResp acknowledges the switch.
type SetOutputResp struct {
	Seq   int64
	Epoch int64
}

// QueryReq asks the local manager what it needs to sustain the SLA.
type QueryReq struct {
	Seq   int64
	Epoch int64
	Max   int
}

// QueryResp carries the local manager's answer.
type QueryResp struct {
	Seq    int64
	Epoch  int64
	Size   int
	Needed int // total replicas needed; 0 = unattainable within Max
	Period sim.Time
}

// ActivateReq toggles consumption (the pipeline's dynamic branch).
type ActivateReq struct {
	Seq    int64
	Epoch  int64
	Active bool
}

// ActivateResp acknowledges the toggle.
type ActivateResp struct {
	Seq   int64
	Epoch int64
}

// AddTapReq attaches an observer channel that receives a duplicate of
// every step the container forwards (mid-run visualization taps).
type AddTapReq struct {
	Seq   int64
	Epoch int64
	Ch    *datatap.Channel
}

// AddTapResp acknowledges the tap.
type AddTapResp struct {
	Seq   int64
	Epoch int64
}

// ResendReq asks a container to re-emit retained output steps whose
// descriptors were lost in flight (the at-least-once data plane's control
// leg). The serving container replays every lost-but-retained step onto
// its output channel immediately, bypassing the channel's own redelivery
// backoff.
type ResendReq struct {
	Seq   int64
	Epoch int64
}

// ResendResp reports how many steps the container re-emitted.
type ResendResp struct {
	Seq         int64
	Epoch       int64
	Redelivered int
}

// CrackNotice informs the global manager of observed crack formation.
type CrackNotice struct {
	From string
	Step int64
}

// GapNotice is a consumer container's report that its input channel
// detected missing step sequences. Like CrackNotice it is a pump message,
// not a synchronous round: the global manager reacts by issuing a
// ResendReq round to the upstream container at its next tick.
type GapNotice struct {
	From    string
	Channel string
	Missing int64
}

// SpareReq is the replica-restart protocol's first leg: a local manager
// that detected crashed replicas asks the global manager for replacement
// nodes. It travels upward on the container's control bridge and is served
// from the global manager's pump (not the synchronous call path), so it is
// exempt from the round-dispatch exhaustiveness rule: its Seq matches the
// grant to a heal round, it is never retried by the GM's call machinery.
//
//iocheck:allow ctlmsg served from the GM pump, not the synchronous round path
type SpareReq struct {
	Seq  int64
	From string
	N    int
}

// SpareGrant answers a SpareReq with zero or more spare nodes. An empty
// grant instructs the requester to degrade (continue at reduced size).
type SpareGrant struct {
	Seq   int64
	Nodes []*cluster.Node
}

// HealReq is submitted by a container's own replica watch to its local
// manager when a resident node crashed; running the repair inside the
// manager loop serializes it with resizes and offlines.
type HealReq struct{}

// HealNotice reports a heal outcome to the global manager's action log.
type HealNotice struct {
	From     string
	Lost     int
	Size     int
	Degraded bool
}

// managerLoop is the container's local manager process: it serves control
// requests from the global manager, one at a time. Served rounds are
// cached by sequence number so a retried request (the global manager's
// at-least-once delivery under call timeouts) resends the original
// response instead of executing a mutating operation twice.
func (c *Container) managerLoop(p *sim.Proc) {
	served := make(map[int64]any)
	for {
		var ev *evpath.Event
		if len(c.deferred) > 0 {
			// Events set aside while doHeal was pumping for its grant.
			ev = c.deferred[0]
			c.deferred = c.deferred[1:]
		} else {
			var ok bool
			ev, ok = c.mailbox.Recv(p)
			if !ok {
				return
			}
		}
		// Self-healing traffic is not a synchronous GM round.
		switch msg := ev.Data.(type) {
		case *HealReq:
			c.doHeal(p)
			continue
		case *SpareGrant:
			// A grant that arrives after its heal round timed out still
			// carries real spare nodes; absorb them rather than leak them.
			if len(msg.Nodes) > 0 {
				c.integrateNodes(p, msg.Nodes)
			}
			continue
		}
		seq, hasSeq := reqSeq(ev.Data)
		if e, fenced := reqEpoch(ev.Data); fenced && c.rt.fencingOn() {
			if e < c.fencedEpoch {
				// A round from a deposed manager epoch. Refuse it — even a
				// cached one: serving (or re-serving) it would let a stale
				// primary keep mutating the pipeline after a failover.
				c.fence(p, seq, e, ev.Ctx())
				continue
			}
			if e > c.fencedEpoch {
				c.fencedEpoch = e
			}
		}
		if hasSeq {
			if cached, dup := served[seq]; dup {
				// A retried round answered from the cache: visible in the
				// trace as an instant chained to the retry's round span.
				c.rt.tracer.Instant(ev.Ctx(), "ctl", "dedupe").
					Container(c.spec.Name).Node(c.mgrEV.Node()).
					AttrInt("seq", seq).End()
				c.reply(p, cached)
				if _, wasOffline := cached.(*OfflineResp); wasOffline {
					return
				}
				continue
			}
		}
		sp := c.rt.tracer.Begin(ev.Ctx(), "ctl",
			"serve."+strings.TrimPrefix(ev.Type, "ctl.")).
			Container(c.spec.Name).Node(c.mgrEV.Node())
		var resp any
		exit := false
		switch req := ev.Data.(type) {
		case *IncreaseReq:
			launch, intra := c.doIncrease(p, req.Nodes)
			resp = &IncreaseResp{Seq: req.Seq, Launch: launch, Intra: intra,
				Size: len(c.replicas)}
		case *DecreaseReq:
			nodes, pause, drain := c.doDecrease(p, req.N)
			resp = &DecreaseResp{Seq: req.Seq, Nodes: nodes, PauseWait: pause,
				Drain: drain, Size: len(c.replicas)}
		case *OfflineReq:
			nodes, dropped := c.doOffline(p)
			resp = &OfflineResp{Seq: req.Seq, Nodes: nodes, Dropped: dropped}
			exit = true // the manager itself shuts down with its container
		case *SetOutputReq:
			c.doSetOutput(req.Provenance)
			resp = &SetOutputResp{Seq: req.Seq}
		case *QueryReq:
			resp = &QueryResp{Seq: req.Seq, Size: len(c.replicas),
				Needed: c.ReplicasNeeded(req.Max), Period: c.ThroughputPeriod()}
		case *ActivateReq:
			c.active = req.Active
			resp = &ActivateResp{Seq: req.Seq}
		case *AddTapReq:
			c.doAddTap(req.Ch)
			resp = &AddTapResp{Seq: req.Seq}
		case *ResendReq:
			n := 0
			if c.output != nil {
				n = c.output.RedeliverLost(p)
			}
			resp = &ResendResp{Seq: req.Seq, Redelivered: n}
		case *SubResumeReq:
			cursor, lag, fromSpill, ok := c.serveSubResume(req.SubID)
			resp = &SubResumeResp{Seq: req.Seq, SubID: req.SubID, Cursor: cursor,
				Lag: lag, FromSpill: fromSpill,
				NeedReplay: ok && lag > 0 && !fromSpill, Ok: ok}
		case *SubReplayReq:
			staged, ok := c.serveSubReplay(req.SubID, req.Cursor)
			resp = &SubReplayResp{Seq: req.Seq, SubID: req.SubID, Staged: staged, Ok: ok}
		case *RehomeReq:
			// Keep the previous upward bridge alive: it is the only path a
			// FenceResp can take back to the manager it is deposing.
			if c.staleGM != nil {
				c.staleGM.CloseBridge()
			}
			c.staleGM = c.toGM
			c.toGM = c.mgrEV.NewBridge(req.Inbox, 0)
			if c.probe != nil {
				// The probe must follow the new upward path.
				c.probe.Out = c.toGM
			}
			resp = &RehomeResp{Seq: req.Seq}
		default:
			c.rt.fail(fmt.Errorf("core: container %s got unknown control %T",
				c.spec.Name, ev.Data))
			sp.Attr("outcome", "unknown").End()
			return
		}
		stampRespEpoch(resp, c.fencedEpoch)
		if hasSeq {
			served[seq] = resp
		}
		c.reply(p, resp)
		sp.End()
		if exit {
			return
		}
	}
}

// reqSeq extracts the sequence number from a protocol request (ok=false
// for non-round messages).
func reqSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Seq, true
	case *DecreaseReq:
		return r.Seq, true
	case *OfflineReq:
		return r.Seq, true
	case *SetOutputReq:
		return r.Seq, true
	case *QueryReq:
		return r.Seq, true
	case *ActivateReq:
		return r.Seq, true
	case *AddTapReq:
		return r.Seq, true
	case *ResendReq:
		return r.Seq, true
	case *RehomeReq:
		return r.Seq, true
	case *SubResumeReq:
		return r.Seq, true
	case *SubReplayReq:
		return r.Seq, true
	}
	return 0, false
}

func (c *Container) reply(p *sim.Proc, data any) {
	c.toGM.Submit(p, &evpath.Event{Type: msgResp, Size: ctlMsgBytes, Data: data})
}

// doIncrease implements the increase protocol's container-side legs
// (paper Fig. 3): launch the new replicas (aprun cost, reported
// separately), then run the metadata-exchange rounds that let the new
// replicas communicate — with the container manager, with every existing
// replica, and with the upstream DataTap writers. The exchange is the
// dominant inherent cost and grows with the size of the increase, which
// is exactly the Fig. 4 result.
func (c *Container) doIncrease(p *sim.Proc, nodes []*cluster.Node) (launch, intra sim.Time) {
	if len(nodes) == 0 {
		return 0, 0
	}
	if c.spec.Model == smartpointer.ModelParallel && len(c.replicas) > 0 {
		return c.doParallelRelaunch(p, nodes)
	}
	job, err := c.rt.launcher.Launch(p, c.spec.Name, nodes)
	if err != nil {
		c.rt.fail(err)
		return 0, 0
	}
	launch = job.LaunchCost
	intraStart := p.Now()
	c.exchangeMetadata(p, nodes, c.replicas)
	intra = p.Now() - intraStart
	for _, n := range nodes {
		c.nodes = append(c.nodes, n)
		c.addReplica(n)
	}
	return launch, intra
}

// exchangeMetadata runs the endpoint-metadata rounds for newNodes joining
// a container with the given existing replicas.
func (c *Container) exchangeMetadata(p *sim.Proc, newNodes []*cluster.Node, existing []*replica) {
	mgrNode := c.mgrEV.Node()
	writers := c.input.Writers()
	for _, n := range newNodes {
		// New replica registers with the container manager.
		c.rt.mach.Send(p, n.ID, mgrNode, metadataMsgBytes)
		// Pairwise endpoint exchange with every existing replica.
		for _, ex := range existing {
			c.rt.mach.Send(p, n.ID, ex.node.ID, metadataMsgBytes)
			c.rt.mach.Send(p, ex.node.ID, n.ID, metadataMsgBytes)
		}
		// Connect to the upstream DataTap writers.
		for _, w := range writers {
			c.rt.mach.Send(p, n.ID, w.Node(), metadataMsgBytes)
		}
	}
}

// doParallelRelaunch grows an MPI-style parallel component, which cannot
// simply add ranks: "increasing the container size would require its
// complete teardown and restarting a new instance with an increased
// number of MPI ranks" (paper §III-D). The in-flight step is aborted and
// requeued so no timestep is lost, all replicas are torn down, and a new
// instance is launched over the combined node set.
func (c *Container) doParallelRelaunch(p *sim.Proc, nodes []*cluster.Node) (launch, intra sim.Time) {
	pauseInput := c.input
	pauseInput.Pause(p)
	for _, r := range c.replicas {
		r.stop = true
		if r.busy && r.abort != nil {
			r.abort.Fire()
		}
	}
	for _, r := range c.replicas {
		r.done.Wait(p)
	}
	allNodes := append(append([]*cluster.Node(nil), c.nodes...), nodes...)
	c.replicas = nil
	c.nodes = nil
	job, err := c.rt.launcher.Launch(p, c.spec.Name, allNodes)
	if err != nil {
		c.rt.fail(err)
		return 0, 0
	}
	launch = job.LaunchCost
	intraStart := p.Now()
	c.exchangeMetadata(p, allNodes, nil)
	intra = p.Now() - intraStart
	for _, n := range allNodes {
		c.nodes = append(c.nodes, n)
		c.addReplica(n)
	}
	pauseInput.Resume()
	return launch, intra
}

// doDecrease implements the decrease protocol: pause the upstream DataTap
// writers so no timestep is lost, drain and remove n victim replicas,
// resume. The pause wait dominates (paper Fig. 5).
func (c *Container) doDecrease(p *sim.Proc, n int) (released []*cluster.Node, pause, drain sim.Time) {
	if n <= 0 {
		return nil, 0, 0
	}
	if n > len(c.replicas) {
		n = len(c.replicas)
	}
	pause = c.input.Pause(p)
	drainStart := p.Now()
	victims := c.replicas[len(c.replicas)-n:]
	for _, v := range victims {
		// Control message asking the replica to drain and exit.
		c.rt.mach.Send(p, c.mgrEV.Node(), v.node.ID, ctlMsgBytes)
		v.stop = true
	}
	for _, v := range victims {
		v.done.Wait(p)
	}
	drain = p.Now() - drainStart
	c.replicas = c.replicas[:len(c.replicas)-n]
	released = append(released, c.nodes[len(c.nodes)-n:]...)
	c.nodes = c.nodes[:len(c.nodes)-n]
	c.input.Resume()
	return released, pause, drain
}

// doOffline removes the container from the data path: all replicas drain
// and exit, all nodes are released, and queued steps are dropped (their
// pending analyses are exactly what the upstream provenance attributes
// record). The input channel closes so upstream cannot block on it.
func (c *Container) doOffline(p *sim.Proc) (released []*cluster.Node, dropped int) {
	c.state = StateOffline
	c.active = false
	// No pause here: offline is a kill. The upstream already switched its
	// output to disk; pausing could deadlock against an upstream writer
	// blocked on this container's own unpulled backlog.
	for _, r := range c.replicas {
		c.rt.mach.Send(p, c.mgrEV.Node(), r.node.ID, ctlMsgBytes)
		r.stop = true
		if r.busy && r.abort != nil {
			// Offline is a kill, not a drain: abandon in-flight work.
			r.abort.Fire()
		}
	}
	for _, r := range c.replicas {
		r.done.Wait(p)
	}
	dropped = c.input.QueueLen()
	c.input.Close()
	released = append(released, c.nodes...)
	c.nodes = nil
	c.replicas = nil
	c.mailbox.Close()
	return released, dropped
}

// doHeal runs the container-side legs of the replica-restart protocol
// (multi-round, in the style of the increase protocol of Fig. 3):
//
//  1. reap replicas whose nodes crashed — detach their transport
//     endpoints, abort in-flight steps (requeued, not lost), and wait for
//     the processes to exit;
//  2. ask the global manager for replacement nodes (SpareReq up the
//     control bridge, answered from the manager's pump);
//  3. on a grant: aprun-launch the replacements, run the metadata
//     exchange, and re-wire replicas onto the input/output/tap channels;
//     on an empty grant or a silent manager: degrade — continue at the
//     smaller size rather than stall the pipeline.
//
// Running inside the manager loop serializes healing with resizes and
// offline transitions.
func (c *Container) doHeal(p *sim.Proc) {
	sp := c.rt.tracer.Begin(0, "ctl", "heal").
		Container(c.spec.Name).Node(c.mgrEV.Node())
	var survivors []*replica
	var dead []*replica
	for _, r := range c.replicas {
		if r.node.Up() {
			survivors = append(survivors, r)
		} else {
			dead = append(dead, r)
		}
	}
	if len(dead) == 0 {
		sp.AttrInt("lost", 0).End()
		return
	}
	for _, r := range dead {
		r.stop = true
		if r.busy && r.abort != nil {
			r.abort.Fire() // in-flight step is requeued by the abort path
		}
		// Detach dead endpoints first: RemoveWriter also releases a
		// process parked on the dead writer's buffer, letting it exit.
		if r.writer != nil && c.output != nil {
			c.output.RemoveWriter(r.writer)
		}
		// Detach in attachment order: RemoveWriter can release a parked
		// process, so map order here would leak into the event schedule.
		for _, tap := range c.taps {
			if w, ok := r.tapWriters[tap]; ok {
				tap.RemoveWriter(w)
			}
		}
	}
	for _, r := range dead {
		// Bounded wait: a zombie stuck behind a saturated downstream will
		// exit on its own once unblocked; healing proceeds without it.
		r.done.WaitTimeout(p, 30*sim.Second)
	}
	var liveNodes []*cluster.Node
	for _, n := range c.nodes {
		if n.Up() {
			liveNodes = append(liveNodes, n)
		}
	}
	c.replicas = survivors
	c.nodes = liveNodes
	lost := len(dead)

	c.healSeq++
	c.toGM.Submit(p, &evpath.Event{Type: msgSpare, Size: ctlMsgBytes,
		Data: &SpareReq{Seq: c.healSeq, From: c.spec.Name, N: lost}})
	granted := c.awaitGrant(p)
	if len(granted) == 0 {
		c.notifyHeal(p, lost, true)
		sp.AttrInt("lost", int64(lost)).Attr("outcome", "degraded").End()
		return
	}
	c.integrateNodes(p, granted)
	c.notifyHeal(p, lost, false)
	sp.AttrInt("lost", int64(lost)).Attr("outcome", "healed").End()
}

// awaitGrant pumps the container mailbox until the current heal round's
// grant arrives (or the deadline passes). It runs inside the manager loop,
// so the grant cannot be delivered by anyone else; unrelated control
// traffic that arrives meanwhile is deferred, preserving order, for the
// manager loop to process after the heal. Grants from a timed-out earlier
// round still carry real spare nodes, so their nodes are merged rather
// than leaked.
func (c *Container) awaitGrant(p *sim.Proc) []*cluster.Node {
	deadline := p.Now() + 2*c.rt.cfg.Policy.Interval
	var granted []*cluster.Node
	for {
		ev, ok := c.mailbox.RecvTimeout(p, deadline-p.Now())
		if !ok {
			return granted // deadline passed or mailbox closed
		}
		if g, isGrant := ev.Data.(*SpareGrant); isGrant {
			granted = append(granted, g.Nodes...)
			if g.Seq == c.healSeq {
				return granted
			}
			continue
		}
		c.deferred = append(c.deferred, ev)
	}
}

// integrateNodes brings replacement nodes into the running container:
// aprun launch, metadata exchange with the survivors, and replica
// creation (which re-wires the input/output/tap endpoints). A parallel
// (MPI-style) component cannot add ranks in place, so it relaunches over
// the combined node set instead, as with an increase.
func (c *Container) integrateNodes(p *sim.Proc, nodes []*cluster.Node) {
	if c.spec.Model == smartpointer.ModelParallel && len(c.replicas) > 0 {
		c.doParallelRelaunch(p, nodes)
		return
	}
	if _, err := c.rt.launcher.Launch(p, c.spec.Name, nodes); err != nil {
		c.rt.fail(err)
		return
	}
	c.exchangeMetadata(p, nodes, c.replicas)
	for _, n := range nodes {
		c.nodes = append(c.nodes, n)
		c.addReplica(n)
	}
}

// notifyHeal reports the heal outcome up to the global manager.
func (c *Container) notifyHeal(p *sim.Proc, lost int, degraded bool) {
	c.toGM.Submit(p, &evpath.Event{Type: msgHealNotice, Size: ctlMsgBytes,
		Data: &HealNotice{From: c.spec.Name, Lost: lost,
			Size: len(c.replicas), Degraded: degraded}})
}

// doAddTap attaches an observer channel and gives every replica a writer
// endpoint on it.
func (c *Container) doAddTap(ch *datatap.Channel) {
	c.taps = append(c.taps, ch)
	for _, r := range c.replicas {
		r.tapWriters[ch] = ch.NewWriter(r.node.ID)
	}
}

// doSetOutput switches every replica's ADIOS output to the disk sink with
// provenance attributes — the upstream half of an offline transition
// ("each component replica in the upstream container has to switch its
// output method within ADIOS to write to disk using the attribute system
// to mark the provenance").
func (c *Container) doSetOutput(provenance string) {
	c.writeDisk = true
	c.provenance = provenance
	for _, r := range c.replicas {
		c.bindReplicaToDisk(r)
	}
}
