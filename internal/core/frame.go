// Package core implements the paper's contribution: I/O containers —
// runtime abstractions that embed in-situ/in-transit analytics components
// into actively managed execution environments on the staging area.
//
// Each Container owns a set of whole staging nodes and runs its
// component's replicas on them under a compute model (serial, round-robin,
// parallel, tree). A per-container local manager measures the component's
// per-timestep latency, answers the global manager's "what would it take
// to speed you up?" queries from the component's cost model, and executes
// the legs of the control protocols. The GlobalManager enforces
// cross-container SLAs: it detects the pipeline bottleneck from monitoring
// data, grows it from spare staging nodes, steals nodes from
// over-provisioned containers ("decrease"), and — when the staging area
// simply cannot sustain the load — takes non-essential containers offline
// (cascading to their downstream dependents) while upstream replicas
// switch their ADIOS output to disk with data-processing provenance.
package core

import (
	"fmt"
	"strconv"

	"repro/internal/bp"
	"repro/internal/sim"
)

// Frame attribute keys threaded through the pipeline on each step's
// process group.
const (
	// AttrBirth records (as decimal nanoseconds of virtual time) when
	// the simulation emitted the step; end-to-end latency is measured
	// against it.
	AttrBirth = "pipeline.birth"
	// AttrAtoms is the atom count driving analytics cost (shared with
	// the lammps package's writer).
	AttrAtoms = "lammps.atoms"
	// AttrCrack marks steps carrying crack formation.
	AttrCrack = "lammps.crack"
	// AttrProvenance lists analyses still pending when data lands on
	// disk after an offline transition.
	AttrProvenance = "provenance.pending"
	// AttrStepKind distinguishes "output" steps from "checkpoint" steps
	// (shared with the lammps writer).
	AttrStepKind = "lammps.kind"
)

// FrameInfo is the decoded view of a pipeline step's metadata.
type FrameInfo struct {
	Step  int64
	Atoms int64
	Crack bool
	Birth sim.Time
	// Kind is "output", "checkpoint", or "" (treated as output).
	Kind string
}

// DecodeFrame extracts FrameInfo from a process group.
func DecodeFrame(pg *bp.ProcessGroup) (FrameInfo, error) {
	fi := FrameInfo{Step: pg.Timestep}
	if v, ok := pg.Attrs[AttrAtoms]; ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fi, fmt.Errorf("core: bad %s attr %q: %w", AttrAtoms, v, err)
		}
		fi.Atoms = n
	}
	fi.Crack = pg.Attrs[AttrCrack] == "true"
	fi.Kind = pg.Attrs[AttrStepKind]
	if v, ok := pg.Attrs[AttrBirth]; ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fi, fmt.Errorf("core: bad %s attr %q: %w", AttrBirth, v, err)
		}
		fi.Birth = sim.Time(n)
	}
	return fi, nil
}

// StampBirth records the frame's emission time.
func StampBirth(pg *bp.ProcessGroup, t sim.Time) {
	if pg.Attrs == nil {
		pg.Attrs = map[string]string{}
	}
	pg.Attrs[AttrBirth] = strconv.FormatInt(int64(t), 10)
}
