package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/datatap"
	"repro/internal/evpath"
	"repro/internal/fault"
	"repro/internal/sim"
)

// The subscriber control plane (ROADMAP item 4) is the reconnect leg of
// the streaming fan-out in internal/datatap/subscribe.go. The data plane
// alone handles tiers 1 and 2 of the robustness ladder (per-subscriber
// backpressure, degrade-to-spill); tier 3 — a crashed subscriber coming
// back — needs the managers, because reviving a cursor is a mutating
// control decision that must survive manager failover without double
// effects:
//
//	reconnecting subscriber ─SubNotice→ host container's manager pump
//	  └─ next tick: SubResumeReq round (epoch-fenced, retried, deduped)
//	       └─ lag still in the tail? SubReplayReq round restages it
//
// SubNotice is a pump message like GapNotice: it carries the subscriber's
// reconnect generation as its Seq so a storm of duplicate notices for the
// same subscriber collapses to one resume round. SubResume/SubReplay are
// full container rounds: they ride the manager's retry/backoff machinery,
// are deduplicated by the container's served cache, and are refused by the
// epoch fence when a deposed manager issues them — the container-side
// serve (SubHub.Resume/Replay) is idempotent on top of that, so even a
// round that executes twice across a failover cannot corrupt a cursor.
//
// Every message below carries Seq, Epoch, and SubID; the ctlmsg analyzer
// requires all three, an entry in subMsgSeq, and a dispatch arm for each —
// the same exhaustiveness discipline the container and shard round
// families get.

// Subscriber round message types on the management overlay.
const (
	msgSubNotice = "ctl.sub_notice" // container -> manager: subscriber reconnected
	msgSubResume = "ctl.sub_resume" // manager -> container: revive the cursor
	msgSubReplay = "ctl.sub_replay" // manager -> container: restage the tail window
)

// SubNotice announces a reconnecting (or late-joining) subscriber to the
// host container's manager. Like GapNotice it is a pump message, not a
// synchronous round: the manager dedupes notices per subscriber (keeping
// the highest generation) and issues the SubResume round at its next tick.
// Seq is the subscriber's reconnect generation, not a manager round
// number.
type SubNotice struct {
	Seq   int64 // reconnect generation (dedupe key together with SubID)
	Epoch int64
	SubID string
	From  string // host container name
}

// SubResumeReq asks the container hosting the subscriber hub to revive a
// crashed subscriber at its durable cursor.
type SubResumeReq struct {
	Seq   int64
	Epoch int64
	SubID string
}

// SubResumeResp reports the revived subscriber's position. FromSpill means
// catch-up starts in the spill store (the subscriber pays disk reads);
// NeedReplay means the remaining lag is still in the hub's tail and a
// SubReplay round should restage it. Ok is false for an unknown
// subscriber.
type SubResumeResp struct {
	Seq        int64
	Epoch      int64
	SubID      string
	Cursor     int64
	Lag        int64
	FromSpill  bool
	NeedReplay bool
	Ok         bool
}

// SubReplayReq asks the container to restage the tail window past the
// given cursor for a resumed subscriber.
type SubReplayReq struct {
	Seq    int64
	Epoch  int64
	SubID  string
	Cursor int64
}

// SubReplayResp reports how many descriptors are staged after the replay.
type SubReplayResp struct {
	Seq    int64
	Epoch  int64
	SubID  string
	Staged int64
	Ok     bool
}

// subMsgSeq extracts the sequence number from a subscriber round message
// (ok=false for everything else). The manager stamps it on its trace
// instants; the ctlmsg analyzer uses the switch as the message-family
// registry.
func subMsgSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *SubNotice:
		return r.Seq, true
	case *SubResumeReq:
		return r.Seq, true
	case *SubResumeResp:
		return r.Seq, true
	case *SubReplayReq:
		return r.Seq, true
	case *SubReplayResp:
		return r.Seq, true
	}
	return 0, false
}

// serveSubResume is the container-side leg of a SubResume round (nil-safe:
// a round aimed at a container without a hub answers Ok=false instead of
// dying).
func (c *Container) serveSubResume(id string) (cursor, lag int64, fromSpill, ok bool) {
	if c.subHub == nil {
		return 0, 0, false, false
	}
	return c.subHub.Resume(id)
}

// serveSubReplay is the container-side leg of a SubReplay round.
func (c *Container) serveSubReplay(id string, from int64) (staged int64, ok bool) {
	if c.subHub == nil {
		return 0, false
	}
	return c.subHub.Replay(id, from)
}

// noteSubReconnect reports a reconnecting subscriber up the control
// bridge, following the GapNotice pattern. The manager answers with a
// SubResume round at its next tick.
func (c *Container) noteSubReconnect(p *sim.Proc, subID string, gen int64) {
	if c.state == StateOffline || c.toGM == nil {
		return
	}
	c.toGM.Submit(p, &evpath.Event{Type: msgSubNotice, Size: ctlMsgBytes,
		Data: &SubNotice{Seq: gen, Epoch: c.fencedEpoch, SubID: subID,
			From: c.spec.Name}})
}

// SubResume runs the epoch-fenced resume round for one reconnecting
// subscriber: the container revives the durable cursor and reports where
// catch-up must come from.
func (gm *GlobalManager) SubResume(p *sim.Proc, target, subID string) *SubResumeResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &SubResumeReq{Seq: seq, SubID: subID} },
		func(d any) bool { r, ok := d.(*SubResumeResp); return ok && r.Seq == gm.seq },
	).(*SubResumeResp)
	if resp != nil && resp.Ok {
		gm.record(p, Action{T: p.Now(), Kind: "sub-resume", Target: target,
			Detail: fmt.Sprintf("subscriber %s cursor %d lag %d", subID,
				resp.Cursor, resp.Lag)})
	}
	return resp
}

// SubReplay runs the replay round that restages the hub tail for a
// resumed subscriber whose lag never left memory.
func (gm *GlobalManager) SubReplay(p *sim.Proc, target, subID string, cursor int64) *SubReplayResp {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &SubReplayReq{Seq: seq, SubID: subID, Cursor: cursor} },
		func(d any) bool { r, ok := d.(*SubReplayResp); return ok && r.Seq == gm.seq },
	).(*SubReplayResp)
	if resp != nil && resp.Ok {
		gm.record(p, Action{T: p.Now(), Kind: "sub-replay", Target: target,
			N: int(resp.Staged), Detail: "subscriber " + subID})
	}
	return resp
}

// issueSubResumes serves the SubNotices accumulated since the last tick:
// one SubResume round per reconnecting subscriber (plus the follow-up
// SubReplay when the lag is still tail-resident), in sorted subscriber
// order for determinism. Entries are cleared before calling so a notice
// arriving during the round is not lost. Like issueResends this is data-
// plane repair, not policy — it runs even under DisableManagement.
func (gm *GlobalManager) issueSubResumes(p *sim.Proc) {
	if len(gm.pendingSubs) == 0 {
		return
	}
	ids := make([]string, 0, len(gm.pendingSubs))
	for id := range gm.pendingSubs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := gm.pendingSubs[id]
		delete(gm.pendingSubs, id)
		if _, ok := gm.toContainer[n.From]; !ok {
			continue // not this manager's container; its own shard heard the notice
		}
		resp := gm.SubResume(p, n.From, id)
		if resp != nil && resp.Ok && resp.NeedReplay {
			gm.SubReplay(p, n.From, id, resp.Cursor)
		}
	}
}

// --- subscriber fleet wiring (the "million dashboards" workload) ---

// SubscribersConfig attaches a simulated subscriber fleet — dashboards,
// ad-hoc readers — to one stage channel's fan-out hub.
type SubscribersConfig struct {
	// Count is the number of subscribers.
	Count int
	// Stage selects the channel whose output is fanned out (default 0,
	// the simulation's own output stream).
	Stage int
	// BufCap / TailCap tune the hub (see datatap.SubConfig).
	BufCap, TailCap int
	// DisableSpill turns the degrade tier off: lagging subscribers take
	// knowing drops instead of spill reads.
	DisableSpill bool
	// ZipfS is the Zipf exponent of the read-rate distribution:
	// subscriber i reads every BaseInterval·(i+1)^ZipfS (default 1.0), so
	// a handful keep up and a long tail lags into spill.
	ZipfS float64
	// BaseInterval is the fastest subscriber's read period (default 1 s).
	BaseInterval sim.Time
	// InjectCursorSkip seeds the deliberate conservation bug the chaos
	// smoke test uses to prove the sub-conservation oracle fires (see
	// datatap.SubConfig). Never set outside tests.
	InjectCursorSkip int
}

// buildSubscribers attaches the hub and spawns the fleet: one paced
// reader process per subscriber, the crash/reconnect supervisor for the
// fault schedule's SubCrashes, and the host-container wiring that lets
// the manager serve SubResume/SubReplay rounds.
func (rt *Runtime) buildSubscribers(cfg Config) error {
	sc := cfg.Subscribers
	if sc == nil || sc.Count <= 0 {
		return nil
	}
	stage := sc.Stage
	if stage < 0 || stage >= len(rt.channels) {
		return fmt.Errorf("core: Subscribers.Stage %d out of range (%d channels)",
			stage, len(rt.channels))
	}
	ch := rt.channels[stage]
	hub := ch.AttachHub(datatap.SubConfig{BufCap: sc.BufCap, TailCap: sc.TailCap,
		DisableSpill: sc.DisableSpill, InjectCursorSkip: sc.InjectCursorSkip})
	rt.subHub = hub
	// The hub is served by the container consuming the stage channel: its
	// local manager owns the hub for control rounds.
	host := rt.byName[cfg.Specs[stage].Name]
	if host == nil {
		return fmt.Errorf("core: Subscribers.Stage %d has no consumer container", stage)
	}
	host.subHub = hub
	rt.subHost = host

	zipfS := sc.ZipfS
	if zipfS <= 0 {
		zipfS = 1.0
	}
	base := sc.BaseInterval
	if base <= 0 {
		base = sim.Second
	}
	node := ch.HomeNode()
	subs := make([]*datatap.Subscriber, sc.Count)
	for i := 0; i < sc.Count; i++ {
		id := fmt.Sprintf("dash-%04d", i)
		s := hub.Subscribe(id, node)
		subs[i] = s
		interval := sim.Time(float64(base) * math.Pow(float64(i+1), zipfS))
		rt.eng.Go("sub-"+id, func(p *sim.Proc) { rt.subscriberLoop(p, s, interval) })
	}
	if rt.cfg.Faults != nil {
		for _, f := range rt.cfg.Faults.SubCrashes {
			if f.Index < 0 || f.Index >= len(subs) {
				return fmt.Errorf("core: SubCrash index %d out of range (%d subscribers)",
					f.Index, len(subs))
			}
			s := subs[f.Index]
			f := f
			rt.eng.At(f.At, func() { hub.Crash(s.ID()) })
			if f.ReconnectAt > f.At {
				rt.eng.Go("sub-reconnect-"+s.ID(), func(p *sim.Proc) {
					rt.reconnectLoop(p, s, f.ReconnectAt)
				})
			}
		}
	}
	return nil
}

// subscriberLoop is one dashboard: fetch the next descriptor (parking on
// the hub — never a writer — when nothing is pending), then dwell for the
// subscriber's read period. Exits when the hub closes and the backlog is
// drained.
func (rt *Runtime) subscriberLoop(p *sim.Proc, s *datatap.Subscriber, interval sim.Time) {
	for {
		if _, ok := s.Fetch(p); !ok {
			return
		}
		p.Sleep(interval)
	}
}

// reconnectLoop announces a crashed subscriber's return and retries with
// exponential backoff until the manager's SubResume round actually lands
// (the notice, the round, or the manager itself may be lost to faults).
// Bounded: a subscriber whose manager never answers stays crashed, which
// the conservation oracle still accounts for exactly.
func (rt *Runtime) reconnectLoop(p *sim.Proc, s *datatap.Subscriber, at sim.Time) {
	p.SleepUntil(at)
	backoff := rt.cfg.Policy.Interval
	for attempt := 0; attempt < 4; attempt++ {
		if !s.Crashed() {
			return // resumed (or never crashed: the crash fault may have been shrunk away)
		}
		rt.subHost.noteSubReconnect(p, s.ID(), s.Gen())
		p.Sleep(backoff)
		backoff *= 2
	}
}

// SubCrashes exposes the armed subscriber-crash schedule (nil without
// faults), for tests.
func (rt *Runtime) SubCrashes() []fault.SubCrash {
	if rt.cfg.Faults == nil {
		return nil
	}
	return rt.cfg.Faults.SubCrashes
}
