package core

import (
	"repro/internal/cluster"
	"repro/internal/evpath"
	"repro/internal/sim"
)

// The paper singles the global manager out as "a potential single point
// of failure" and points at ZooKeeper-style methods for resilience. This
// file implements the mechanism: a standby global manager on another
// staging node watches the primary's heartbeats; on silence it adopts the
// spare pool (recomputed from authoritative container ownership), rehomes
// every container's upward overlay onto itself, and resumes the policy.

// msgGMHeartbeat is the primary's liveness beacon to the standby.
const msgGMHeartbeat = "ctl.gm_heartbeat"

// msgRehome redirects a container's upward traffic to a new manager.
const msgRehome = "ctl.rehome"

// GMHeartbeat is the beacon payload. Epoch lets the standby fence its
// takeover above the primary's epoch, and lets an active manager detect
// a stale peer still beating after a healed partition; Inbox gives the
// active manager a path to send that peer a DemoteNotice.
type GMHeartbeat struct {
	At    sim.Time
	Epoch int64
	Inbox *evpath.Stone
}

// RehomeReq points the container's monitoring/response bridge at a new
// global manager inbox.
type RehomeReq struct {
	Seq   int64
	Epoch int64
	Inbox *evpath.Stone
}

// RehomeResp acknowledges the switch (sent via the NEW bridge — its
// arrival proves the new path works).
type RehomeResp struct {
	Seq   int64
	Epoch int64
}

// Rehome redirects a container to this manager via a control round.
func (gm *GlobalManager) Rehome(p *sim.Proc, target string) bool {
	resp, _ := gm.call(p, target,
		func(seq int64) any { return &RehomeReq{Seq: seq, Inbox: gm.inbox()} },
		func(d any) bool { r, ok := d.(*RehomeResp); return ok && r.Seq == gm.seq },
	).(*RehomeResp)
	return resp != nil
}

// standbyLoop is the standby manager's process: pump the mailbox
// (recording primary heartbeats), and take over once the primary has
// been silent for three intervals.
func (gm *GlobalManager) standbyLoop(p *sim.Proc) {
	gm.standbyMode = true
	grace := 3 * gm.policy.Interval
	for {
		deadline := p.Now() + gm.policy.Interval
		for p.Now() < deadline {
			ev, ok := gm.ctl.RecvTimeout(p, deadline-p.Now())
			if !ok {
				if gm.ctl.Closed() {
					return
				}
				break
			}
			if gm.dead {
				return
			}
			gm.dispatch(p, ev)
		}
		if gm.ctl.Closed() || gm.dead {
			return
		}
		// No heartbeat yet means the primary hasn't started beating;
		// give it the grace period from t=0. A meta-manager PromoteNotice
		// (sharded runs) short-circuits the silence detector.
		if !gm.promoteNow && p.Now()-gm.lastPrimaryBeat <= grace {
			continue
		}
		gm.takeOver(p)
		gm.run(p) // continue as the active manager
		return
	}
}

// takeOver promotes the standby: rehome every surviving container, then
// adopt the spare pool from authoritative ownership. The order matters:
// each Rehome is a control round that serializes behind any resize the
// dead primary left in flight, so by the time the last container has
// rehomed, nodes it was granted mid-resize appear in its ownership list
// and are not double-counted as spare (which would leak them to two
// owners).
func (gm *GlobalManager) takeOver(p *sim.Proc) {
	rt := gm.rt
	if gm.shard >= 0 {
		rt.shardPrimary[gm.shard] = gm
	} else {
		rt.gm = gm
	}
	gm.standbyMode = false
	if rt.fencingOn() {
		// Fence above everything this standby has seen: its own epoch and
		// the highest the primary ever advertised. Containers will reject
		// any round the old primary issues from now on.
		e := gm.peerEpoch
		if gm.epoch > e {
			e = gm.epoch
		}
		gm.epoch = e + 1
	} else {
		// Legacy pre-fencing behavior (chaos regressions reproduce the
		// split-brain under this): adopt the primary's epoch, so a healed
		// primary and this standby issue rounds in the SAME epoch.
		gm.epoch = gm.peerEpoch
	}
	var failed []string
	for _, c := range gm.managed() {
		if c.State() != StateOnline {
			continue
		}
		if !gm.Rehome(p, c.Name()) {
			failed = append(failed, c.Name())
		}
	}
	// A rehome can exhaust its retries on transient control-message loss
	// even though the container is alive — and may even have switched
	// bridges already (only the response was lost). Give each failure one
	// fresh round before the suspect verdict sticks: rehome is idempotent
	// (a duplicate switch to the same inbox is harmless, and a same-seq
	// retry is answered from the dedupe cache), so retrying is always safe.
	for _, name := range failed {
		delete(gm.suspect, name)
		if !gm.Rehome(p, name) {
			gm.markSuspect(p, name)
		}
	}
	if gm.shard >= 0 {
		gm.spare = rt.unownedShardNodes(gm.shard)
	} else {
		gm.spare = rt.unownedStagingNodes()
	}
	gm.record(p, Action{T: p.Now(), Kind: "failover", Target: "global-manager",
		N: len(gm.spare), Detail: "standby took over"})
}

// unownedStagingNodes recomputes the spare pool as the staging nodes not
// owned by any container — the authoritative inventory a recovering
// manager rebuilds from.
func (rt *Runtime) unownedStagingNodes() []*cluster.Node {
	owned := map[int]bool{}
	for _, c := range rt.containers {
		for _, n := range c.nodes {
			owned[n.ID] = true
		}
	}
	var out []*cluster.Node
	for _, n := range rt.stagingNodes {
		if !owned[n.ID] && n.Up() {
			out = append(out, n)
		}
	}
	return out
}

// unownedShardNodes recomputes one shard's spare pool: the staging nodes
// the directory assigns to that shard, minus nodes owned by a container,
// minus the dead. Cross-shard steals rehome nodes in the directory at
// release time, so a promoted standby never adopts a node another shard
// now holds.
func (rt *Runtime) unownedShardNodes(shard int) []*cluster.Node {
	owned := map[int]bool{}
	for _, c := range rt.containers {
		for _, n := range c.nodes {
			owned[n.ID] = true
		}
	}
	var out []*cluster.Node
	for _, n := range rt.stagingNodes {
		if rt.dir.NodeShard(n.ID) == shard && !owned[n.ID] && n.Up() {
			out = append(out, n)
		}
	}
	return out
}
