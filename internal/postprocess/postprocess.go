// Package postprocess closes the provenance loop the container runtime
// opens: when a pipeline stage goes offline, upstream data lands on disk
// stamped with the analyses still pending ("provenance.pending"). This
// package reads such BP streams, reports what remains to be done, and —
// when the steps carry real particle data — executes the pending
// SmartPointer analyses offline, exactly the "insights gathered as
// post-processing after data has been moved to disk" mode the paper
// describes for the toolkit.
package postprocess

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/atoms"
	"repro/internal/bp"
	"repro/internal/smartpointer"
)

// Attribute conventions for snapshot-carrying steps.
const (
	// AttrBox is "Lx,Ly,Lz" for the periodic box.
	AttrBox = "atoms.box"
	// AttrCutoff is the bond cutoff the analyses should use.
	AttrCutoff = "analysis.cutoff"
	// AttrPending lists comma-separated analyses still to run.
	AttrPending = "provenance.pending"
	// AttrDone lists analyses completed (online or by this package).
	AttrDone = "provenance.done"
)

// WriteSnapshotVars adds a snapshot's particle data to a process group so
// it can be post-processed later.
func WriteSnapshotVars(pg *bp.ProcessGroup, s *atoms.Snapshot, cutoff float64) {
	pg.Vars = append(pg.Vars,
		bp.Var{Name: "pos", Type: bp.TFloat64, Dims: []int{s.N(), 3},
			Data: s.FlattenPositions()},
		bp.Var{Name: "ids", Type: bp.TInt64, Dims: []int{s.N()},
			Data: append([]int64(nil), s.ID...)},
	)
	if pg.Attrs == nil {
		pg.Attrs = map[string]string{}
	}
	pg.Attrs[AttrBox] = fmt.Sprintf("%g,%g,%g", s.Box.L[0], s.Box.L[1], s.Box.L[2])
	pg.Attrs[AttrCutoff] = fmt.Sprintf("%g", cutoff)
}

// ReadSnapshot reconstructs a snapshot from a process group, or reports
// ok=false when the step carries no real particle data (paper-scale
// synthetic frames).
func ReadSnapshot(pg *bp.ProcessGroup) (*atoms.Snapshot, bool, error) {
	pos := pg.Var("pos")
	ids := pg.Var("ids")
	boxAttr := pg.Attrs[AttrBox]
	if pos == nil || ids == nil || boxAttr == "" {
		return nil, false, nil
	}
	parts := strings.Split(boxAttr, ",")
	if len(parts) != 3 {
		return nil, false, fmt.Errorf("postprocess: bad box attr %q", boxAttr)
	}
	var box atoms.Box
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, false, fmt.Errorf("postprocess: bad box attr %q: %w", boxAttr, err)
		}
		box.L[i] = v
	}
	flat, err := pos.Float64s()
	if err != nil {
		return nil, false, err
	}
	idData, ok := ids.Data.([]int64)
	if !ok {
		return nil, false, fmt.Errorf("postprocess: ids var is %T", ids.Data)
	}
	s, err := atoms.SnapshotFromFlat(pg.Timestep, box, idData, flat)
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// StepReport describes one step's provenance state after processing.
type StepReport struct {
	Index    int
	Group    string
	Timestep int64
	// Pending lists analyses named by the provenance attribute.
	Pending []string
	// Executed lists the pending analyses this run performed (empty for
	// synthetic frames that carry no particle data).
	Executed []string
	// Results summarizes each executed analysis.
	Results map[string]string
}

// Report is the outcome over a whole stream.
type Report struct {
	Steps []StepReport
	// WithData counts steps that carried real particle data.
	WithData int
}

// PendingCounts tallies how many steps still need each analysis.
func (r *Report) PendingCounts() map[string]int {
	out := map[string]int{}
	for _, st := range r.Steps {
		for _, p := range st.Pending {
			if !contains(st.Executed, p) {
				out[p]++
			}
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Analyze reads every step of the stream, reporting pending analyses and
// executing them where real particle data is available. When out is
// non-nil, each step is re-written to it with analysis results attached
// and provenance moved from pending to done.
func Analyze(r *bp.Reader, out *bp.Writer) (*Report, error) {
	rep := &Report{}
	for i := 0; i < r.Steps(); i++ {
		pg, err := r.ReadStep(i)
		if err != nil {
			return nil, err
		}
		st := StepReport{
			Index:    i,
			Group:    pg.Group,
			Timestep: pg.Timestep,
			Results:  map[string]string{},
		}
		if p := pg.Attrs[AttrPending]; p != "" {
			for _, name := range strings.Split(p, ",") {
				st.Pending = append(st.Pending, strings.TrimSpace(name))
			}
		}
		snap, hasData, err := ReadSnapshot(pg)
		if err != nil {
			return nil, fmt.Errorf("postprocess: step %d: %w", i, err)
		}
		if hasData {
			rep.WithData++
			if err := executePending(&st, snap, pg); err != nil {
				return nil, fmt.Errorf("postprocess: step %d: %w", i, err)
			}
		}
		if out != nil {
			updateProvenance(pg, &st)
			if err := out.Append(pg); err != nil {
				return nil, err
			}
		}
		rep.Steps = append(rep.Steps, st)
	}
	return rep, nil
}

// executePending runs the pending SmartPointer analyses on real data.
func executePending(st *StepReport, snap *atoms.Snapshot, pg *bp.ProcessGroup) error {
	cutoff := 0.85 * 1.5496 // default: FCC nearest-neighbor shell in LJ units
	if c := pg.Attrs[AttrCutoff]; c != "" {
		v, err := strconv.ParseFloat(c, 64)
		if err != nil {
			return fmt.Errorf("bad cutoff attr %q: %w", c, err)
		}
		cutoff = v
	}
	var adj *smartpointer.Adjacency
	needAdj := func() *smartpointer.Adjacency {
		if adj == nil {
			adj = smartpointer.Bonds(snap, cutoff)
		}
		return adj
	}
	for _, name := range st.Pending {
		switch name {
		case "bonds":
			a := needAdj()
			st.Results[name] = fmt.Sprintf("%d bonds", a.NumBonds())
			degrees := make([]int64, snap.N())
			for j := range degrees {
				degrees[j] = int64(a.Degree(j))
			}
			pg.Vars = append(pg.Vars, bp.Var{Name: "bond_degree", Type: bp.TInt64,
				Dims: []int{snap.N()}, Data: degrees})
		case "csym":
			res := smartpointer.CSym(snap, cutoff*1.4, 1.0)
			st.Results[name] = fmt.Sprintf("%d defect atoms (%.1f%%)",
				res.DefectCount(), 100*res.DefectFraction())
			pg.Vars = append(pg.Vars, bp.Var{Name: "csym", Type: bp.TFloat64,
				Dims: []int{snap.N()}, Data: append([]float64(nil), res.P...)})
		case "fragments":
			frags := smartpointer.Fragments(snap, needAdj())
			largest := 0
			if len(frags) > 0 {
				largest = frags[0].Size()
			}
			st.Results[name] = fmt.Sprintf("%d fragment(s), largest %d atoms",
				len(frags), largest)
			labels := make([]int32, snap.N())
			for _, fr := range frags {
				for _, a := range fr.Atoms {
					labels[a] = int32(fr.Label)
				}
			}
			pg.Vars = append(pg.Vars, bp.Var{Name: "fragment_label", Type: bp.TInt32,
				Dims: []int{snap.N()}, Data: labels})
		case "cna":
			res := smartpointer.CNA(needAdj())
			st.Results[name] = fmt.Sprintf("FCC %.1f%%, HCP %.1f%%, Other %.1f%%",
				100*res.Fraction(smartpointer.StructFCC),
				100*res.Fraction(smartpointer.StructHCP),
				100*res.Fraction(smartpointer.StructOther))
			labels := make([]byte, snap.N())
			for j, l := range res.Labels {
				labels[j] = byte(l)
			}
			pg.Vars = append(pg.Vars, bp.Var{Name: "cna_label", Type: bp.TByte,
				Dims: []int{snap.N()}, Data: labels})
		default:
			// Unknown analysis stays pending.
			continue
		}
		st.Executed = append(st.Executed, name)
	}
	return nil
}

// updateProvenance rewrites the step's pending/done attributes.
func updateProvenance(pg *bp.ProcessGroup, st *StepReport) {
	var still []string
	for _, p := range st.Pending {
		if !contains(st.Executed, p) {
			still = append(still, p)
		}
	}
	if pg.Attrs == nil {
		pg.Attrs = map[string]string{}
	}
	if len(still) == 0 {
		delete(pg.Attrs, AttrPending)
	} else {
		pg.Attrs[AttrPending] = strings.Join(still, ",")
	}
	if len(st.Executed) > 0 {
		done := st.Executed
		if prev := pg.Attrs[AttrDone]; prev != "" {
			done = append(strings.Split(prev, ","), done...)
		}
		pg.Attrs[AttrDone] = strings.Join(done, ",")
	}
}
