package postprocess

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/atoms"
	"repro/internal/bp"
	"repro/internal/core"
	"repro/internal/lammps"
	"repro/internal/smartpointer"
)

// buildStream writes steps carrying real crystal snapshots stamped with
// pending analyses.
func buildStream(t *testing.T, pending string, notch bool) *bp.Reader {
	t.Helper()
	a := 1.5496
	var buf bytes.Buffer
	w, err := bp.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 2; ts++ {
		s := atoms.FCCLattice(4, 4, 4, a)
		if notch {
			lammps.Notch(s, 1.5*a, 0.5)
		}
		pg := &bp.ProcessGroup{Group: "helper.out", Timestep: ts,
			Attrs: map[string]string{AttrPending: pending}}
		WriteSnapshotVars(pg, s, 0.85*a)
		if err := w.Append(pg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := bp.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExecutePendingAnalyses(t *testing.T) {
	r := buildStream(t, "bonds,csym,cna", false)
	var out bytes.Buffer
	w, _ := bp.NewWriter(&out)
	rep, err := Analyze(r, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.WithData != 2 || len(rep.Steps) != 2 {
		t.Fatalf("report %+v", rep)
	}
	st := rep.Steps[0]
	if len(st.Executed) != 3 {
		t.Fatalf("executed %v", st.Executed)
	}
	// Perfect crystal: 12 bonds/atom, no defects, all FCC.
	if !strings.Contains(st.Results["bonds"], "1536 bonds") {
		t.Fatalf("bonds result %q", st.Results["bonds"])
	}
	if !strings.Contains(st.Results["csym"], "0 defect") {
		t.Fatalf("csym result %q", st.Results["csym"])
	}
	if !strings.Contains(st.Results["cna"], "FCC 100.0%") {
		t.Fatalf("cna result %q", st.Results["cna"])
	}
	if n := rep.PendingCounts(); len(n) != 0 {
		t.Fatalf("still pending %v", n)
	}
	// The annotated output stream carries results and updated provenance.
	rr, err := bp.NewReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := rr.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Attrs[AttrPending] != "" {
		t.Fatalf("pending not cleared: %v", pg.Attrs)
	}
	if !strings.Contains(pg.Attrs[AttrDone], "cna") {
		t.Fatalf("done missing: %v", pg.Attrs)
	}
	for _, v := range []string{"bond_degree", "csym", "cna_label"} {
		if pg.Var(v) == nil {
			t.Fatalf("annotation var %q missing", v)
		}
	}
}

func TestNotchedCrystalFindsDefects(t *testing.T) {
	r := buildStream(t, "csym,cna", true)
	rep, err := Analyze(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Steps[0]
	if strings.Contains(st.Results["csym"], "0 defect") {
		t.Fatalf("notch missed: %q", st.Results["csym"])
	}
	if !strings.Contains(st.Results["cna"], "Other") {
		t.Fatalf("cna result %q", st.Results["cna"])
	}
}

func TestUnknownAnalysisStaysPending(t *testing.T) {
	r := buildStream(t, "bonds,mystery", false)
	var out bytes.Buffer
	w, _ := bp.NewWriter(&out)
	rep, err := Analyze(r, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := rep.PendingCounts()["mystery"]; got != 2 {
		t.Fatalf("mystery pending %d", got)
	}
	rr, _ := bp.NewReader(bytes.NewReader(out.Bytes()))
	pg, _ := rr.ReadStep(0)
	if pg.Attrs[AttrPending] != "mystery" {
		t.Fatalf("pending %q", pg.Attrs[AttrPending])
	}
}

func TestSyntheticFramesReportOnly(t *testing.T) {
	// An actual Fig. 9 run: the helper's offline disk output carries
	// paper-scale synthetic frames (no particle data). Post-processing
	// reports the pending analyses without executing anything.
	rt, err := core.Build(core.Config{
		SimNodes:     1024,
		StagingNodes: 24,
		Specs:        core.SpecsWithBondsModel(parallelModel()),
		Sizes:        core.DefaultSizes(24),
		Steps:        40,
		CrackStep:    -1,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	sink := rt.Container("helper").DiskSink()
	if sink == nil {
		t.Skip("scenario did not reach offline (calibration drift?)")
	}
	r, err := sink.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WithData != 0 {
		t.Fatalf("synthetic frames misread as real data: %d", rep.WithData)
	}
	counts := rep.PendingCounts()
	for _, name := range []string{"bonds", "csym", "cna"} {
		if counts[name] == 0 {
			t.Fatalf("pending %q missing: %v", name, counts)
		}
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	pg := &bp.ProcessGroup{Group: "g", Attrs: map[string]string{AttrBox: "1,2"}}
	pg.Vars = []bp.Var{
		{Name: "pos", Type: bp.TFloat64, Dims: []int{1, 3}, Data: []float64{0, 0, 0}},
		{Name: "ids", Type: bp.TInt64, Dims: []int{1}, Data: []int64{0}},
	}
	if _, _, err := ReadSnapshot(pg); err == nil {
		t.Fatal("short box attr should fail")
	}
	pg.Attrs[AttrBox] = "1,2,x"
	if _, _, err := ReadSnapshot(pg); err == nil {
		t.Fatal("bad box number should fail")
	}
	// Missing vars: not data, not an error.
	empty := &bp.ProcessGroup{Group: "g"}
	if _, ok, err := ReadSnapshot(empty); ok || err != nil {
		t.Fatalf("empty step: ok=%v err=%v", ok, err)
	}
}

func parallelModel() smartpointer.ComputeModel { return smartpointer.ModelParallel }

func TestFragmentAnalysisInPostprocess(t *testing.T) {
	r := buildStream(t, "fragments", false)
	var out bytes.Buffer
	w, _ := bp.NewWriter(&out)
	rep, err := Analyze(r, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	st := rep.Steps[0]
	if !strings.Contains(st.Results["fragments"], "1 fragment(s)") {
		t.Fatalf("fragments result %q", st.Results["fragments"])
	}
	rr, _ := bp.NewReader(bytes.NewReader(out.Bytes()))
	pg, _ := rr.ReadStep(0)
	if pg.Var("fragment_label") == nil {
		t.Fatal("fragment_label var missing")
	}
}
