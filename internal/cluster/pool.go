package cluster

// SplitPool deals nodes round-robin into k pools (pool i gets nodes
// i, i+k, i+2k, ...). The sharded control plane uses it to carve the
// leftover staging nodes into per-shard spare pools: round-robin keeps
// the pools within one node of each other no matter how many spares
// remain, so no shard starts systematically dry. Order within each pool
// preserves the input order, keeping builds deterministic.
func SplitPool(nodes []*Node, k int) [][]*Node {
	if k <= 0 {
		return nil
	}
	pools := make([][]*Node, k)
	for i, n := range nodes {
		pools[i%k] = append(pools[i%k], n)
	}
	return pools
}
