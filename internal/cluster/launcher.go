package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Launcher models the batch-style application launcher ('aprun' on the
// paper's Cray platforms). Two properties matter to the container work:
//
//  1. launches are expensive and highly variable — the paper observed
//     3–27 s, "completely dwarfing all other measurement" in the resize
//     microbenchmarks, and is careful to factor that cost out of Fig. 4;
//  2. processes launched by separate aprun invocations cannot be
//     coalesced onto one node, which forces whole-node granularity for
//     container resizes.
type Launcher struct {
	m *Machine
	// seq numbers launches for job naming.
	seq int
}

// NewLauncher returns a launcher for the machine.
func NewLauncher(m *Machine) *Launcher {
	return &Launcher{m: m}
}

// Job is a launched executable instance occupying whole nodes.
type Job struct {
	Name    string
	Nodes   []*Node
	Started sim.Time
	// LaunchCost is the simulated aprun time this launch consumed;
	// experiments report it separately, as the paper does.
	LaunchCost sim.Time
}

// Launch starts an executable on the given nodes, blocking p for the
// launcher's cost (uniform in [LaunchMin, LaunchMax], matching the
// observed aprun range). Nodes must all be distinct.
func (l *Launcher) Launch(p *sim.Proc, name string, nodes []*Node) (*Job, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: launch %q with no nodes", name)
	}
	seen := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: launch %q lists node %d twice", name, n.ID)
		}
		seen[n.ID] = true
	}
	cost := l.m.eng.Rand().Uniform(l.m.cfg.LaunchMin, l.m.cfg.LaunchMax)
	p.Sleep(cost)
	l.seq++
	return &Job{
		Name:       fmt.Sprintf("%s.%d", name, l.seq),
		Nodes:      nodes,
		Started:    l.m.eng.Now(),
		LaunchCost: cost,
	}, nil
}

// EstimateLaunch returns the midpoint launch cost, for planning.
func (l *Launcher) EstimateLaunch() sim.Time {
	return (l.m.cfg.LaunchMin + l.m.cfg.LaunchMax) / 2
}
