package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testMachine(nodes int) (*sim.Engine, *Machine) {
	eng := sim.NewEngine(7)
	cfg := Franklin()
	cfg.Nodes = nodes
	return eng, New(eng, cfg)
}

func TestAllocateAndFree(t *testing.T) {
	_, m := testMachine(16)
	a, err := m.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 10 || m.FreeNodes() != 6 {
		t.Fatalf("size=%d free=%d", a.Size(), m.FreeNodes())
	}
	b, err := m.Allocate(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(1); err == nil {
		t.Fatal("over-allocation should fail")
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(); err == nil {
		t.Fatal("double free should fail")
	}
	if m.FreeNodes() != 10 {
		t.Fatalf("free=%d, want 10", m.FreeNodes())
	}
	_ = b
}

func TestAllocateDisjointNodes(t *testing.T) {
	_, m := testMachine(8)
	a, _ := m.Allocate(4)
	b, _ := m.Allocate(4)
	seen := map[int]bool{}
	for _, n := range append(a.Nodes(), b.Nodes()...) {
		if seen[n.ID] {
			t.Fatalf("node %d allocated twice", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	_, m := testMachine(4)
	if _, err := m.Allocate(0); err == nil {
		t.Fatal("Allocate(0) should fail")
	}
	if _, err := m.Allocate(-3); err == nil {
		t.Fatal("Allocate(-3) should fail")
	}
}

func TestSplitPartition(t *testing.T) {
	_, m := testMachine(32)
	a, _ := m.Allocate(32)
	simPart, staging, err := a.Split(28)
	if err != nil {
		t.Fatal(err)
	}
	if simPart.Size() != 28 || staging.Size() != 4 {
		t.Fatalf("split sizes %d/%d", simPart.Size(), staging.Size())
	}
	if _, _, err := a.Split(33); err == nil {
		t.Fatal("oversized split should fail")
	}
	// Sub-allocations view disjoint node sets.
	for _, n := range simPart.Nodes() {
		for _, s := range staging.Nodes() {
			if n.ID == s.ID {
				t.Fatal("split parts overlap")
			}
		}
	}
}

// Property: any sequence of allocations and frees conserves nodes.
func TestAllocationConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		_, m := testMachine(64)
		var live []*Allocation
		total := 0
		for _, s := range sizes {
			n := int(s%16) + 1
			if a, err := m.Allocate(n); err == nil {
				live = append(live, a)
				total += n
			} else if n <= m.FreeNodes() {
				return false // spurious failure
			}
			if m.FreeNodes() != 64-total {
				return false
			}
			if len(live) > 2 {
				a := live[0]
				live = live[1:]
				total -= a.Size()
				if a.Free() != nil {
					return false
				}
			}
		}
		for _, a := range live {
			total -= a.Size()
			if a.Free() != nil {
				return false
			}
		}
		return m.FreeNodes() == 64 && total == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSendTiming(t *testing.T) {
	eng, m := testMachine(4)
	var elapsed sim.Time
	size := int64(16 * 1024 * 1024) // 16 MiB
	eng.Go("sender", func(p *sim.Proc) {
		start := p.Now()
		m.Send(p, 0, 1, size)
		elapsed = p.Now() - start
	})
	eng.Run()
	// Store-and-forward: two bandwidth terms + latency.
	want := 2*m.transferTime(size) + m.cfg.LinkLatency
	if elapsed != want {
		t.Fatalf("elapsed %v, want %v", elapsed, want)
	}
	if got := m.EstimateSend(0, 1, size); got != want {
		t.Fatalf("EstimateSend %v, want %v", got, want)
	}
	st := m.Stats()
	if st.Messages != 1 || st.Bytes != size {
		t.Fatalf("stats %+v", st)
	}
}

func TestIntraNodeSendIsCheap(t *testing.T) {
	eng, m := testMachine(4)
	var local, remote sim.Time
	size := int64(8 * 1024 * 1024)
	eng.Go("x", func(p *sim.Proc) {
		s := p.Now()
		m.Send(p, 2, 2, size)
		local = p.Now() - s
		s = p.Now()
		m.Send(p, 2, 3, size)
		remote = p.Now() - s
	})
	eng.Run()
	if local >= remote {
		t.Fatalf("intra-node %v should beat inter-node %v", local, remote)
	}
}

func TestNICContentionSerializes(t *testing.T) {
	eng, m := testMachine(4)
	size := int64(64 * 1024 * 1024)
	var done []sim.Time
	// Two senders share node 0's tx port: second must wait.
	for i := 0; i < 2; i++ {
		eng.Go("s", func(p *sim.Proc) {
			m.Send(p, 0, 1+eng.Rand().Intn(1), size)
			done = append(done, p.Now())
		})
	}
	eng.Run()
	single := 2*m.transferTime(size) + m.cfg.LinkLatency
	if done[1] < single+m.transferTime(size) {
		t.Fatalf("no serialization evident: %v vs single %v", done, single)
	}
}

func TestRDMAGetCostsMoreThanSendByRequest(t *testing.T) {
	eng, m := testMachine(4)
	size := int64(4 * 1024 * 1024)
	var sendT, getT sim.Time
	eng.Go("x", func(p *sim.Proc) {
		s := p.Now()
		m.Send(p, 0, 1, size)
		sendT = p.Now() - s
		s = p.Now()
		m.RDMAGet(p, 1, 0, size)
		getT = p.Now() - s
	})
	eng.Run()
	if getT <= sendT {
		t.Fatalf("RDMAGet %v should include request overhead above Send %v", getT, sendT)
	}
}

func TestLauncherCostInRange(t *testing.T) {
	eng, m := testMachine(8)
	l := NewLauncher(m)
	a, _ := m.Allocate(4)
	var jobs []*Job
	eng.Go("launch", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			j, err := l.Launch(p, "analytics", a.Nodes())
			if err != nil {
				t.Error(err)
				return
			}
			jobs = append(jobs, j)
		}
	})
	eng.Run()
	if len(jobs) != 20 {
		t.Fatalf("launched %d", len(jobs))
	}
	varied := false
	for i, j := range jobs {
		if j.LaunchCost < 3*sim.Second || j.LaunchCost > 27*sim.Second {
			t.Fatalf("launch cost %v outside paper's 3-27s range", j.LaunchCost)
		}
		if i > 0 && j.LaunchCost != jobs[0].LaunchCost {
			varied = true
		}
	}
	if !varied {
		t.Fatal("launch costs should vary")
	}
	if est := l.EstimateLaunch(); est != 15*sim.Second {
		t.Fatalf("estimate %v, want 15s", est)
	}
}

func TestLauncherRejectsBadNodeLists(t *testing.T) {
	eng, m := testMachine(4)
	l := NewLauncher(m)
	eng.Go("launch", func(p *sim.Proc) {
		if _, err := l.Launch(p, "x", nil); err == nil {
			t.Error("empty node list should fail")
		}
		n := m.Node(0)
		if _, err := l.Launch(p, "x", []*Node{n, n}); err == nil {
			t.Error("duplicate node should fail")
		}
	})
	eng.Run()
}

func TestTorusDistance(t *testing.T) {
	tor := NewTorus3D(4, 4, 4)
	if tor.Size() != 64 {
		t.Fatalf("size %d", tor.Size())
	}
	if tor.Hops(0, 0) != 0 {
		t.Fatal("self distance nonzero")
	}
	// Node 1 is (1,0,0): one hop.
	if tor.Hops(0, 1) != 1 {
		t.Fatalf("hops(0,1) = %d", tor.Hops(0, 1))
	}
	// Wraparound: (3,0,0) is 1 hop from (0,0,0) on a length-4 ring.
	if tor.Hops(0, 3) != 1 {
		t.Fatalf("hops(0,3) = %d", tor.Hops(0, 3))
	}
	// (2,2,2) from origin: 2+2+2.
	id := 2 + 2*4 + 2*16
	if tor.Hops(0, id) != 6 {
		t.Fatalf("hops = %d, want 6", tor.Hops(0, id))
	}
}

// Property: torus distance is symmetric, nonnegative, zero iff equal
// (within one period), and respects the triangle inequality.
func TestTorusMetricProperty(t *testing.T) {
	tor := NewTorus3D(5, 3, 4)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%tor.Size(), int(b)%tor.Size(), int(c)%tor.Size()
		dxy := tor.Hops(x, y)
		if dxy != tor.Hops(y, x) || dxy < 0 {
			return false
		}
		if (x == y) != (dxy == 0) {
			return false
		}
		return tor.Hops(x, z) <= dxy+tor.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeHops(t *testing.T) {
	ft := NewFatTree(8)
	if ft.Hops(3, 3) != 0 || ft.Hops(0, 7) != 2 || ft.Hops(0, 8) != 4 {
		t.Fatalf("hops: %d %d %d", ft.Hops(3, 3), ft.Hops(0, 7), ft.Hops(0, 8))
	}
}

func TestTopologyAffectsLatency(t *testing.T) {
	eng := sim.NewEngine(7)
	cfg := Franklin()
	cfg.Nodes = 64
	cfg.Topology = NewTorus3D(4, 4, 4)
	cfg.PerHopLatency = sim.Millisecond
	m := New(eng, cfg)
	near := m.latencyBetween(0, 1) // 1 hop
	far := m.latencyBetween(0, 42) // (2,2,2): 6 hops
	if far <= near {
		t.Fatalf("far %v should exceed near %v", far, near)
	}
	if m.latencyBetween(5, 5) != 0 {
		t.Fatal("self latency should be zero")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nodes <= 0 || c.CoresPerNode <= 0 || c.LaunchMax < c.LaunchMin {
		t.Fatalf("bad defaults: %+v", c)
	}
	fr := Franklin()
	if fr.Nodes != 9572 || fr.CoresPerNode != 4 {
		t.Fatalf("Franklin config drifted: %+v", fr)
	}
	rs := RedSky()
	if rs.Nodes != 2823 || rs.CoresPerNode != 8 || rs.Topology == nil {
		t.Fatalf("RedSky config drifted: %+v", rs)
	}
}

func TestNodeResources(t *testing.T) {
	eng, m := testMachine(2)
	n := m.Node(0)
	if n.Cores().Capacity() != 4 {
		t.Fatalf("cores = %d", n.Cores().Capacity())
	}
	if n.MemMB().Capacity() != 8192 {
		t.Fatalf("mem = %d", n.MemMB().Capacity())
	}
	// Core contention: 5 single-core tasks on 4 cores -> last waits.
	var finish []sim.Time
	for i := 0; i < 5; i++ {
		eng.Go("task", func(p *sim.Proc) {
			n.Cores().Acquire(p, 1)
			p.Sleep(10 * sim.Second)
			n.Cores().Release(1)
			finish = append(finish, p.Now())
		})
	}
	eng.Run()
	if finish[4] != 20*sim.Second {
		t.Fatalf("fifth task finished at %v, want 20s", finish[4])
	}
}
