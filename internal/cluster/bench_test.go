package cluster

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSendThroughput measures simulated message processing rate.
func BenchmarkSendThroughput(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	cfg := Franklin()
	cfg.Nodes = 4
	m := New(eng, cfg)
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			m.Send(p, 0, 1, 4096)
		}
	})
	b.ResetTimer()
	eng.Run()
}

// BenchmarkTorusHops measures the topology distance kernel.
func BenchmarkTorusHops(b *testing.B) {
	t := NewTorus3D(16, 16, 16)
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += t.Hops(i%4096, (i*2654435761)%4096)
	}
	_ = sum
}

// BenchmarkAllocateFree measures batch allocation churn.
func BenchmarkAllocateFree(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := Franklin()
	cfg.Nodes = 1024
	m := New(eng, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := m.Allocate(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(); err != nil {
			b.Fatal(err)
		}
	}
}
