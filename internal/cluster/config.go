// Package cluster models the high-end machine the paper's experiments run
// on: compute nodes with cores and memory, an interconnect with per-node
// NIC serialization and configurable topology, batch-style allocation into
// simulation and staging partitions, and an aprun-like launcher whose cost
// matches the 3–27 s range the paper reports on Cray platforms.
//
// All timing flows through the sim kernel, so experiments are deterministic
// and fast regardless of the virtual scales involved.
package cluster

import "repro/internal/sim"

// Config describes a machine. The defaults approximate NERSC's Franklin
// Cray XT4 (quad-core 2.3 GHz nodes, Portals/SeaStar interconnect) at the
// fidelity the paper's figures depend on: per-node compute rate, NIC
// bandwidth, and link latency.
type Config struct {
	// Nodes is the total node count of the machine.
	Nodes int
	// CoresPerNode is the number of cores on each node (Franklin: 4).
	CoresPerNode int
	// MemPerNodeMB is per-node memory in MiB (Franklin: 8 GiB).
	MemPerNodeMB int
	// CoreGFlops is the per-core compute rate used by analytic cost
	// models, in GFLOP/s.
	CoreGFlops float64
	// LinkLatency is the one-way message latency between any two nodes
	// (before topology hop scaling).
	LinkLatency sim.Time
	// LinkBandwidthMBps is the per-NIC injection/ejection bandwidth in
	// MiB/s.
	LinkBandwidthMBps float64
	// Topology computes hop counts between nodes; nil means uniform
	// (single-hop) distance.
	Topology Topology
	// PerHopLatency is added per extra hop beyond the first when a
	// topology is configured.
	PerHopLatency sim.Time
	// LaunchMin/LaunchMax bound the aprun-like launch cost. The paper
	// observed 3–27 s on Franklin.
	LaunchMin, LaunchMax sim.Time
}

// Franklin returns a configuration approximating the paper's primary
// testbed: NERSC Franklin, a 9,572-node Cray XT4 (38,288 cores, quad-core
// AMD Budapest 2.3 GHz, Portals network).
func Franklin() Config {
	return Config{
		Nodes:             9572,
		CoresPerNode:      4,
		MemPerNodeMB:      8192,
		CoreGFlops:        9.2, // 2.3 GHz x 4 FLOP/cycle
		LinkLatency:       8 * sim.Microsecond,
		LinkBandwidthMBps: 1600,
		LaunchMin:         3 * sim.Second,
		LaunchMax:         27 * sim.Second,
	}
}

// RedSky returns a configuration approximating Sandia's RedSky capacity
// cluster used for the transaction experiments: 2,823 Sun X6275 nodes,
// 8-core Xeon 5570, 12 GB RAM, QDR InfiniBand in a 3-D toroidal mesh.
func RedSky() Config {
	return Config{
		Nodes:             2823,
		CoresPerNode:      8,
		MemPerNodeMB:      12288,
		CoreGFlops:        11.7,
		LinkLatency:       2 * sim.Microsecond,
		LinkBandwidthMBps: 3200,
		Topology:          NewTorus3D(15, 15, 13),
		PerHopLatency:     100 * sim.Nanosecond,
		LaunchMin:         1 * sim.Second,
		LaunchMax:         5 * sim.Second,
	}
}

// withDefaults fills zero fields with small-but-sane values so tests can
// construct partial configs.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 64
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 4
	}
	if c.MemPerNodeMB <= 0 {
		c.MemPerNodeMB = 8192
	}
	if c.CoreGFlops <= 0 {
		c.CoreGFlops = 9.2
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 8 * sim.Microsecond
	}
	if c.LinkBandwidthMBps <= 0 {
		c.LinkBandwidthMBps = 1600
	}
	if c.LaunchMin <= 0 {
		c.LaunchMin = 3 * sim.Second
	}
	if c.LaunchMax < c.LaunchMin {
		c.LaunchMax = c.LaunchMin
	}
	return c
}
