package cluster

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Machine is a simulated high-end machine: a set of nodes joined by an
// interconnect, with batch-style allocation.
type Machine struct {
	eng    *sim.Engine
	cfg    Config
	nodes  []*Node
	free   []bool // free[i] reports whether nodes[i] is unallocated
	nfree  int
	stats  NetStats
	faults *fault.Schedule // nil = no faults
}

// Node is one machine node. Cores and memory are sim resources so
// components contend realistically; the tx/rx fields serialize the NIC.
type Node struct {
	ID    int
	cores *sim.Resource
	memMB *sim.Resource
	tx    *sim.Resource
	rx    *sim.Resource
	m     *Machine
	down  bool
}

// NetStats aggregates interconnect activity for experiment reporting.
type NetStats struct {
	Messages  int64
	Bytes     int64
	TotalTime sim.Time // summed per-message latency
}

// New builds a machine from cfg under the given engine.
func New(eng *sim.Engine, cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{eng: eng, cfg: cfg}
	m.nodes = make([]*Node, cfg.Nodes)
	m.free = make([]bool, cfg.Nodes)
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:    i,
			cores: sim.NewResource(eng, cfg.CoresPerNode),
			memMB: sim.NewResource(eng, cfg.MemPerNodeMB),
			tx:    sim.NewResource(eng, 1),
			rx:    sim.NewResource(eng, 1),
			m:     m,
		}
		m.free[i] = true
	}
	m.nfree = cfg.Nodes
	return m
}

// Engine returns the driving simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Config returns the machine configuration (after default filling).
func (m *Machine) Config() Config { return m.cfg }

// Node returns the node with the given ID.
func (m *Machine) Node(id int) *Node {
	return m.nodes[id]
}

// FreeNodes returns the number of unallocated nodes.
func (m *Machine) FreeNodes() int { return m.nfree }

// SetFaults attaches a fault schedule. The machine registers its own crash
// handler first, so when a crash fires the node is already marked down (and
// its NIC ports drained) before higher-layer handlers run.
func (m *Machine) SetFaults(s *fault.Schedule) {
	m.faults = s
	s.OnCrash(func(id int) {
		if id < 0 || id >= len(m.nodes) {
			return
		}
		n := m.nodes[id]
		n.down = true
		// Unwedge anything parked on the dead node's NIC: grow the ports
		// effectively without bound so blocked transfers complete (their
		// delivery checks fail afterwards) instead of parking forever.
		n.tx.Grow(1 << 40)
		n.rx.Grow(1 << 40)
	})
}

// Faults returns the attached fault schedule (nil when none; all
// fault.Schedule accessors are nil-safe).
func (m *Machine) Faults() *fault.Schedule { return m.faults }

// Stats returns a snapshot of interconnect statistics.
func (m *Machine) Stats() NetStats { return m.stats }

// Cores returns the node's core resource.
func (n *Node) Cores() *sim.Resource { return n.cores }

// MemMB returns the node's memory resource (MiB units).
func (n *Node) MemMB() *sim.Resource { return n.memMB }

// Up reports whether the node is alive (not crashed by the fault schedule).
func (n *Node) Up() bool { return !n.down }

// Allocation is a batch allocation of whole nodes, as a scheduler would
// grant for a job. The paper's setting allocates once for the entire run
// and the user partitions the nodes between simulation and staging.
type Allocation struct {
	m     *Machine
	nodes []*Node
	freed bool
}

// Allocate reserves n nodes (lowest-numbered free nodes first, mirroring
// contiguous batch placement). It returns an error if the machine lacks
// free nodes.
func (m *Machine) Allocate(n int) (*Allocation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: allocation size %d must be positive", n)
	}
	if n > m.nfree {
		return nil, fmt.Errorf("cluster: requested %d nodes, only %d free", n, m.nfree)
	}
	a := &Allocation{m: m}
	for i := 0; i < len(m.nodes) && len(a.nodes) < n; i++ {
		if m.free[i] {
			m.free[i] = false
			a.nodes = append(a.nodes, m.nodes[i])
		}
	}
	m.nfree -= n
	return a, nil
}

// Size returns the number of nodes in the allocation.
func (a *Allocation) Size() int { return len(a.nodes) }

// Nodes returns the allocated nodes (shared slice; do not mutate).
func (a *Allocation) Nodes() []*Node { return a.nodes }

// Node returns the i'th node of the allocation.
func (a *Allocation) Node(i int) *Node { return a.nodes[i] }

// Free returns all nodes to the machine. Freeing twice is an error.
func (a *Allocation) Free() error {
	if a.freed {
		return fmt.Errorf("cluster: allocation already freed")
	}
	a.freed = true
	for _, n := range a.nodes {
		a.m.free[n.ID] = true
	}
	a.m.nfree += len(a.nodes)
	return nil
}

// Split carves the allocation into two disjoint sub-allocations of sizes
// n and Size()-n, used to partition a job's nodes into simulation and
// staging areas. The sub-allocations share the parent's lifetime (freeing
// the parent frees all nodes; sub-allocations must not be freed).
func (a *Allocation) Split(n int) (*Allocation, *Allocation, error) {
	if n < 0 || n > len(a.nodes) {
		return nil, nil, fmt.Errorf("cluster: split %d out of range 0..%d", n, len(a.nodes))
	}
	first := &Allocation{m: a.m, nodes: a.nodes[:n:n], freed: true}
	second := &Allocation{m: a.m, nodes: a.nodes[n:], freed: true}
	return first, second, nil
}
