package cluster

// Topology maps node IDs to interconnect distance. The paper's future-work
// section calls out topology-aware container placement; we provide the
// models needed to experiment with it.
type Topology interface {
	// Hops returns the number of interconnect hops between two nodes.
	// It must be symmetric and return 0 for a == b.
	Hops(a, b int) int
	// Name identifies the topology in experiment output.
	Name() string
}

// Uniform is the flat model: every distinct pair of nodes is one hop apart.
type Uniform struct{}

// Hops implements Topology.
func (Uniform) Hops(a, b int) int {
	if a == b {
		return 0
	}
	return 1
}

// Name implements Topology.
func (Uniform) Name() string { return "uniform" }

// Torus3D is a 3-D toroidal mesh (RedSky's fabric). Node IDs map to
// coordinates in row-major order; distance is the Manhattan metric with
// wraparound on each axis.
type Torus3D struct {
	X, Y, Z int
}

// NewTorus3D returns a torus with the given axis lengths (each ≥ 1).
func NewTorus3D(x, y, z int) *Torus3D {
	if x < 1 || y < 1 || z < 1 {
		panic("cluster: torus axes must be >= 1")
	}
	return &Torus3D{X: x, Y: y, Z: z}
}

// Size returns the number of coordinates in the torus.
func (t *Torus3D) Size() int { return t.X * t.Y * t.Z }

// Coord maps a node ID (mod Size) to torus coordinates.
func (t *Torus3D) Coord(id int) (x, y, z int) {
	id %= t.Size()
	if id < 0 {
		id += t.Size()
	}
	x = id % t.X
	y = (id / t.X) % t.Y
	z = id / (t.X * t.Y)
	return
}

// Hops implements Topology.
func (t *Torus3D) Hops(a, b int) int {
	ax, ay, az := t.Coord(a)
	bx, by, bz := t.Coord(b)
	return torusDist(ax, bx, t.X) + torusDist(ay, by, t.Y) + torusDist(az, bz, t.Z)
}

// Name implements Topology.
func (t *Torus3D) Name() string { return "torus3d" }

func torusDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		d = w
	}
	return d
}

// FatTree is a two-level fat tree: nodes are grouped into pods of PodSize;
// intra-pod distance is 2 hops (leaf switch), inter-pod distance is 4 hops
// (through the core).
type FatTree struct {
	PodSize int
}

// NewFatTree returns a fat tree with the given pod size (≥ 1).
func NewFatTree(podSize int) *FatTree {
	if podSize < 1 {
		panic("cluster: fat tree pod size must be >= 1")
	}
	return &FatTree{PodSize: podSize}
}

// Hops implements Topology.
func (f *FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if a/f.PodSize == b/f.PodSize {
		return 2
	}
	return 4
}

// Name implements Topology.
func (f *FatTree) Name() string { return "fattree" }
