package cluster

import "repro/internal/sim"

// The interconnect model charges each transfer
//
//	latency(hops) + size/bandwidth
//
// while serializing on the sender's NIC injection port and the receiver's
// ejection port (separate tx/rx resources, so opposing transfers cannot
// deadlock). This is a store-and-forward approximation: good enough to
// reproduce the paper's message-round protocol costs and queueing shapes
// without per-flit detail.

// latencyBetween returns the wire latency between two nodes under the
// configured topology.
func (m *Machine) latencyBetween(from, to int) sim.Time {
	lat := m.cfg.LinkLatency
	if m.cfg.Topology != nil {
		hops := m.cfg.Topology.Hops(from, to)
		if hops > 1 {
			lat += sim.Time(hops-1) * m.cfg.PerHopLatency
		}
		if hops == 0 {
			return 0 // intra-node
		}
	} else if from == to {
		return 0
	}
	return lat
}

// transferTime returns size/bandwidth for the configured NIC rate.
func (m *Machine) transferTime(size int64) sim.Time {
	if size <= 0 {
		return 0
	}
	bytesPerSec := m.cfg.LinkBandwidthMBps * 1024 * 1024
	return sim.Time(float64(size) / bytesPerSec * float64(sim.Second))
}

// Send moves size bytes from node `from` to node `to`, blocking p for the
// full transfer duration. Intra-node sends cost only a memcpy-scale time.
func (m *Machine) Send(p *sim.Proc, from, to int, size int64) {
	start := m.eng.Now()
	if from == to {
		// Intra-node: charge memory-bandwidth-scale copy (10x NIC rate).
		p.Sleep(m.transferTime(size) / 10)
		m.account(size, m.eng.Now()-start)
		return
	}
	src, dst := m.nodes[from], m.nodes[to]
	src.tx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	src.tx.Release(1)
	p.Sleep(m.latencyBetween(from, to))
	dst.rx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	dst.rx.Release(1)
	m.account(size, m.eng.Now()-start)
}

// RDMAGet models a one-sided pull: p (running at node `reader`) sends a
// small request to `target` and the data flows back. This is DataTap's
// fetch primitive: the reader schedules the get when it is ready.
func (m *Machine) RDMAGet(p *sim.Proc, reader, target int, size int64) {
	start := m.eng.Now()
	if reader == target {
		p.Sleep(m.transferTime(size) / 10)
		m.account(size, m.eng.Now()-start)
		return
	}
	// Request message (64-byte descriptor).
	p.Sleep(m.latencyBetween(reader, target) + m.transferTime(64))
	// Response: serialized on target's tx port and reader's rx port.
	src, dst := m.nodes[target], m.nodes[reader]
	src.tx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	src.tx.Release(1)
	p.Sleep(m.latencyBetween(target, reader))
	dst.rx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	dst.rx.Release(1)
	m.account(size+64, m.eng.Now()-start)
}

// EstimateSend returns the uncontended time a Send of size bytes between
// the two nodes would take; managers use it for decision making.
func (m *Machine) EstimateSend(from, to int, size int64) sim.Time {
	if from == to {
		return m.transferTime(size) / 10
	}
	return 2*m.transferTime(size) + m.latencyBetween(from, to)
}

func (m *Machine) account(bytes int64, d sim.Time) {
	m.stats.Messages++
	m.stats.Bytes += bytes
	m.stats.TotalTime += d
}
