package cluster

import "repro/internal/sim"

// The interconnect model charges each transfer
//
//	latency(hops) + size/bandwidth
//
// while serializing on the sender's NIC injection port and the receiver's
// ejection port (separate tx/rx resources, so opposing transfers cannot
// deadlock). This is a store-and-forward approximation: good enough to
// reproduce the paper's message-round protocol costs and queueing shapes
// without per-flit detail.
//
// When a fault schedule is attached, transfers consult it: a crashed or
// partitioned endpoint loses the message (the sender still pays the wire
// time it spent), and link-degradation windows scale latency and bandwidth.
// Send and RDMAGet report delivery so callers can react; existing callers
// that predate fault injection ignore the result, which is correct in
// fault-free runs (delivery never fails without a schedule).

// latencyBetween returns the wire latency between two nodes under the
// configured topology.
func (m *Machine) latencyBetween(from, to int) sim.Time {
	lat := m.cfg.LinkLatency
	if m.cfg.Topology != nil {
		hops := m.cfg.Topology.Hops(from, to)
		if hops > 1 {
			lat += sim.Time(hops-1) * m.cfg.PerHopLatency
		}
		if hops == 0 {
			return 0 // intra-node
		}
	} else if from == to {
		return 0
	}
	if f := m.faults.LatencyFactor(); f != 1 {
		lat = sim.Time(float64(lat) * f)
	}
	return lat
}

// transferTime returns size/bandwidth for the configured NIC rate, scaled
// by any active link-degradation window.
func (m *Machine) transferTime(size int64) sim.Time {
	if size <= 0 {
		return 0
	}
	bytesPerSec := m.cfg.LinkBandwidthMBps * 1024 * 1024
	if f := m.faults.SlowdownFactor(); f > 1 {
		bytesPerSec /= f
	}
	return sim.Time(float64(size) / bytesPerSec * float64(sim.Second))
}

// Send moves size bytes from node `from` to node `to`, blocking p for the
// full transfer duration. Intra-node sends cost only a memcpy-scale time.
// It reports whether the message was delivered: a dead sender sends
// nothing, and a message bound for a dead or partitioned node is lost at
// the wire after the sender has paid for injection.
func (m *Machine) Send(p *sim.Proc, from, to int, size int64) bool {
	start := m.eng.Now()
	if !m.faults.NodeUp(from) {
		m.faults.NoteSendFailed()
		return false
	}
	if from == to {
		// Intra-node: charge memory-bandwidth-scale copy (10x NIC rate).
		p.Sleep(m.transferTime(size) / 10)
		m.account(size, m.eng.Now()-start)
		return true
	}
	src, dst := m.nodes[from], m.nodes[to]
	src.tx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	src.tx.Release(1)
	p.Sleep(m.latencyBetween(from, to))
	if !m.faults.NodeUp(to) || m.faults.Partitioned(from, to) {
		m.account(size, m.eng.Now()-start)
		m.faults.NoteSendFailed()
		return false
	}
	dst.rx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	dst.rx.Release(1)
	m.account(size, m.eng.Now()-start)
	return true
}

// RDMAGet models a one-sided pull: p (running at node `reader`) sends a
// small request to `target` and the data flows back. This is DataTap's
// fetch primitive: the reader schedules the get when it is ready. It
// reports whether the pull completed; a dead or partitioned target cannot
// serve the buffer, and the reader learns after the request latency.
func (m *Machine) RDMAGet(p *sim.Proc, reader, target int, size int64) bool {
	start := m.eng.Now()
	if !m.faults.NodeUp(reader) {
		m.faults.NoteSendFailed()
		return false
	}
	if reader == target {
		p.Sleep(m.transferTime(size) / 10)
		m.account(size, m.eng.Now()-start)
		return true
	}
	// Request message (64-byte descriptor).
	p.Sleep(m.latencyBetween(reader, target) + m.transferTime(64))
	if !m.faults.NodeUp(target) || m.faults.Partitioned(reader, target) {
		m.account(64, m.eng.Now()-start)
		m.faults.NoteSendFailed()
		return false
	}
	// Response: serialized on target's tx port and reader's rx port.
	src, dst := m.nodes[target], m.nodes[reader]
	src.tx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	src.tx.Release(1)
	p.Sleep(m.latencyBetween(target, reader))
	dst.rx.Acquire(p, 1)
	p.Sleep(m.transferTime(size))
	dst.rx.Release(1)
	m.account(size+64, m.eng.Now()-start)
	return true
}

// EstimateSend returns the uncontended time a Send of size bytes between
// the two nodes would take; managers use it for decision making.
func (m *Machine) EstimateSend(from, to int, size int64) sim.Time {
	if from == to {
		return m.transferTime(size) / 10
	}
	return 2*m.transferTime(size) + m.latencyBetween(from, to)
}

func (m *Machine) account(bytes int64, d sim.Time) {
	m.stats.Messages++
	m.stats.Bytes += bytes
	m.stats.TotalTime += d
}
