package cluster

import "testing"

func TestSplitPoolRoundRobin(t *testing.T) {
	_, m := testMachine(10)
	a, err := m.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	pools := SplitPool(a.Nodes(), 3)
	if len(pools) != 3 {
		t.Fatalf("pools=%d, want 3", len(pools))
	}
	// 10 nodes over 3 pools: sizes 4,3,3 and pool i holds nodes i, i+3, ...
	wantSizes := []int{4, 3, 3}
	for i, pool := range pools {
		if len(pool) != wantSizes[i] {
			t.Fatalf("pool %d has %d nodes, want %d", i, len(pool), wantSizes[i])
		}
		for j, n := range pool {
			if want := a.Node(i + j*3); n != want {
				t.Fatalf("pool %d slot %d: node %d, want %d", i, j, n.ID, want.ID)
			}
		}
	}
}

func TestSplitPoolBalance(t *testing.T) {
	_, m := testMachine(32)
	a, err := m.Allocate(32)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 7; k++ {
		pools := SplitPool(a.Nodes(), k)
		total, min, max := 0, 32, 0
		for _, pool := range pools {
			total += len(pool)
			if len(pool) < min {
				min = len(pool)
			}
			if len(pool) > max {
				max = len(pool)
			}
		}
		if total != 32 {
			t.Fatalf("k=%d: %d nodes distributed, want 32", k, total)
		}
		if max-min > 1 {
			t.Fatalf("k=%d: pool sizes range %d..%d, want within one", k, min, max)
		}
	}
}

func TestSplitPoolEdges(t *testing.T) {
	_, m := testMachine(4)
	a, err := m.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := SplitPool(a.Nodes(), 0); got != nil {
		t.Fatalf("k=0: %v, want nil", got)
	}
	if got := SplitPool(a.Nodes(), -2); got != nil {
		t.Fatalf("k<0: %v, want nil", got)
	}
	pools := SplitPool(nil, 3)
	if len(pools) != 3 {
		t.Fatalf("empty input: %d pools, want 3 empty pools", len(pools))
	}
	for i, pool := range pools {
		if len(pool) != 0 {
			t.Fatalf("empty input: pool %d has %d nodes", i, len(pool))
		}
	}
	// More pools than nodes: the tail pools stay empty.
	pools = SplitPool(a.Nodes(), 6)
	for i, pool := range pools {
		switch {
		case i < 4 && len(pool) != 1:
			t.Fatalf("pool %d has %d nodes, want 1", i, len(pool))
		case i >= 4 && len(pool) != 0:
			t.Fatalf("pool %d has %d nodes, want 0", i, len(pool))
		}
	}
}
