// Package adios provides the componentized I/O API the paper's analytics
// actions are written against: applications declare output groups, write
// named/typed variables each output step, and the transport behind the
// interface is swappable — the DataTap staged transport for in-transit
// pipelines, a BP file method for disk output, or a null method.
//
// The capability the container runtime depends on (paper §III-D) is
// switching a group's method *mid-run*: when a downstream container goes
// offline, upstream replicas redirect their output to disk and stamp
// attributes recording the data-processing provenance, so post-processing
// can tell which analyses still need to run.
package adios

import (
	"errors"
	"fmt"

	"repro/internal/bp"
	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/sim"
)

// Method names a transport binding.
type Method string

// Supported methods.
const (
	// MethodDataTap stages output through a datatap.Writer.
	MethodDataTap Method = "DATATAP"
	// MethodFile appends BP process groups to a file sink, charging
	// simulated disk time.
	MethodFile Method = "FILE"
	// MethodNull discards output (free).
	MethodNull Method = "NULL"
)

// DiskModel parameterizes the simulated parallel file system.
type DiskModel struct {
	// BandwidthMBps is the achievable per-writer bandwidth in MiB/s.
	BandwidthMBps float64
	// Latency is the fixed per-operation cost.
	Latency sim.Time
}

// DefaultDisk approximates a busy Lustre partition share: 250 MiB/s per
// writer with 5 ms operation latency.
func DefaultDisk() DiskModel {
	return DiskModel{BandwidthMBps: 250, Latency: 5 * sim.Millisecond}
}

// writeTime returns the simulated time to write size bytes.
func (d DiskModel) writeTime(size int64) sim.Time {
	if d.BandwidthMBps <= 0 {
		return d.Latency
	}
	return d.Latency + sim.Time(float64(size)/(d.BandwidthMBps*1024*1024)*float64(sim.Second))
}

// IO is the per-process ADIOS context.
type IO struct {
	eng        *sim.Engine
	mach       *cluster.Machine
	disk       DiskModel
	groups     map[string]*Group
	readGroups map[string]*ReadGroup
}

// NewIO returns an I/O context. mach may be nil for cost-free tests.
func NewIO(eng *sim.Engine, mach *cluster.Machine, disk DiskModel) *IO {
	return &IO{eng: eng, mach: mach, disk: disk,
		groups:     make(map[string]*Group),
		readGroups: make(map[string]*ReadGroup)}
}

// DeclareGroup creates (or returns) the named output group, initially
// bound to the null method.
func (io *IO) DeclareGroup(name string) *Group {
	if g, ok := io.groups[name]; ok {
		return g
	}
	g := &Group{io: io, name: name, method: MethodNull, attrs: map[string]string{}}
	io.groups[name] = g
	return g
}

// Group returns a previously declared group, or nil.
func (io *IO) Group(name string) *Group { return io.groups[name] }

// Group is one named output stream with a current transport method.
type Group struct {
	io     *IO
	name   string
	method Method
	attrs  map[string]string

	tap  *datatap.Writer
	sink *FileSink

	stepsWritten int64
	bytesWritten int64
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Method returns the currently bound transport method.
func (g *Group) Method() Method { return g.method }

// StepsWritten returns the number of completed output steps.
func (g *Group) StepsWritten() int64 { return g.stepsWritten }

// BytesWritten returns the cumulative payload bytes written.
func (g *Group) BytesWritten() int64 { return g.bytesWritten }

// SetAttr sets a group attribute, copied into every subsequent step's
// process group (the provenance mechanism).
func (g *Group) SetAttr(key, value string) { g.attrs[key] = value }

// Attr returns a group attribute.
func (g *Group) Attr(key string) string { return g.attrs[key] }

// UseDataTap binds the group to a staged-transport writer.
func (g *Group) UseDataTap(w *datatap.Writer) {
	g.method, g.tap, g.sink = MethodDataTap, w, nil
}

// UseFile binds the group to a BP file sink.
func (g *Group) UseFile(sink *FileSink) {
	g.method, g.tap, g.sink = MethodFile, nil, sink
}

// UseNull binds the group to the discarding method.
func (g *Group) UseNull() {
	g.method, g.tap, g.sink = MethodNull, nil, nil
}

// StepWriter accumulates one output step.
type StepWriter struct {
	g    *Group
	pg   bp.ProcessGroup
	pad  int64
	open bool
}

// Open begins output step `step`. Exactly one step may be open at a time
// per group.
func (g *Group) Open(step int64) (*StepWriter, error) {
	w := &StepWriter{g: g, open: true}
	w.pg.Group = g.name
	w.pg.Timestep = step
	if len(g.attrs) > 0 {
		w.pg.Attrs = make(map[string]string, len(g.attrs))
		for k, v := range g.attrs {
			w.pg.Attrs[k] = v
		}
	}
	return w, nil
}

// Write adds a variable to the open step.
func (w *StepWriter) Write(v bp.Var) error {
	if !w.open {
		return errors.New("adios: write on closed step")
	}
	w.pg.Vars = append(w.pg.Vars, v)
	return nil
}

// WriteFloat64s is a convenience wrapper for 1-D float64 variables.
func (w *StepWriter) WriteFloat64s(name string, data []float64) error {
	return w.Write(bp.Var{Name: name, Type: bp.TFloat64, Dims: []int{len(data)}, Data: data})
}

// WriteInt64s is a convenience wrapper for 1-D int64 variables.
func (w *StepWriter) WriteInt64s(name string, data []int64) error {
	return w.Write(bp.Var{Name: name, Type: bp.TInt64, Dims: []int{len(data)}, Data: data})
}

// PadBytes adds n synthetic bytes to the step's transported size without
// materializing data. The discrete-event experiments use this to move
// paper-scale output volumes (Table II: hundreds of MB per step) through
// the transports while the payload carries only the small descriptor
// variables the analytics cost models need.
func (w *StepWriter) PadBytes(n int64) {
	if n > 0 {
		w.pad += n
	}
}

// SetAttr sets a per-step attribute (overriding group attributes).
func (w *StepWriter) SetAttr(key, value string) {
	if w.pg.Attrs == nil {
		w.pg.Attrs = map[string]string{}
	}
	w.pg.Attrs[key] = value
}

// Close completes the step, routing it through the group's current
// method and charging the corresponding simulated time to p. It reports
// false if a staged transport rejected the step (channel closed).
func (w *StepWriter) Close(p *sim.Proc) (bool, error) {
	if !w.open {
		return false, errors.New("adios: close on closed step")
	}
	w.open = false
	g := w.g
	size := w.pg.DataBytes() + w.pad
	switch g.method {
	case MethodDataTap:
		if g.tap == nil {
			return false, fmt.Errorf("adios: group %q method DATATAP without binding", g.name)
		}
		if !g.tap.Write(p, w.pg.Timestep, size, &w.pg) {
			return false, nil
		}
	case MethodFile:
		if g.sink == nil {
			return false, fmt.Errorf("adios: group %q method FILE without binding", g.name)
		}
		if err := g.sink.append(p, g.io.disk, &w.pg); err != nil {
			return false, err
		}
	case MethodNull:
		// Discard.
	default:
		return false, fmt.Errorf("adios: group %q has unknown method %q", g.name, g.method)
	}
	g.stepsWritten++
	g.bytesWritten += size
	return true, nil
}
