package adios

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/datatap"
	"repro/internal/sim"
)

// ReadGroup is the read half of the ADIOS-style interface: a component
// opens a named input group bound to a transport and steps through
// arriving process groups. Together with Group (the write half) it gives
// analytics actions the well-defined input and output interfaces the
// containerized model requires.
type ReadGroup struct {
	io   *IO
	name string

	tap  *datatap.Reader
	file *bp.Reader
	next int // cursor for file-method streams

	stepsRead int64
	bytesRead int64
}

// DeclareReadGroup creates (or returns) the named input group.
func (io *IO) DeclareReadGroup(name string) *ReadGroup {
	if g, ok := io.readGroups[name]; ok {
		return g
	}
	g := &ReadGroup{io: io, name: name}
	io.readGroups[name] = g
	return g
}

// Name returns the group name.
func (g *ReadGroup) Name() string { return g.name }

// StepsRead returns the number of completed read steps.
func (g *ReadGroup) StepsRead() int64 { return g.stepsRead }

// BytesRead returns the cumulative payload bytes consumed.
func (g *ReadGroup) BytesRead() int64 { return g.bytesRead }

// UseDataTap binds the group to a staged-transport reader (in-transit
// consumption).
func (g *ReadGroup) UseDataTap(r *datatap.Reader) {
	g.tap, g.file = r, nil
}

// UseFile binds the group to a completed BP stream (post-processing
// consumption).
func (g *ReadGroup) UseFile(r *bp.Reader) {
	g.tap, g.file = nil, r
	g.next = 0
}

// ReadStep holds one consumed step.
type ReadStep struct {
	// Timestep is the application step number.
	Timestep int64
	// Size is the transported payload size in bytes.
	Size int64
	// PG is the decoded process group (may be nil for synthetic
	// paper-scale frames arriving over DataTap).
	PG *bp.ProcessGroup
}

// Next blocks until the next step arrives (DataTap method) or returns the
// next on-disk step (file method), charging simulated read time. ok is
// false at end of stream.
func (g *ReadGroup) Next(p *sim.Proc) (ReadStep, bool, error) {
	switch {
	case g.tap != nil:
		m, ok := g.tap.Fetch(p)
		if !ok {
			return ReadStep{}, false, nil
		}
		pg, _ := m.Data.(*bp.ProcessGroup)
		g.stepsRead++
		g.bytesRead += m.Size
		return ReadStep{Timestep: m.Step, Size: m.Size, PG: pg}, true, nil
	case g.file != nil:
		if g.next >= g.file.Steps() {
			return ReadStep{}, false, nil
		}
		pg, err := g.file.ReadStep(g.next)
		if err != nil {
			return ReadStep{}, false, fmt.Errorf("adios: read group %q: %w", g.name, err)
		}
		g.next++
		size := pg.DataBytes()
		if p != nil {
			p.Sleep(g.io.disk.writeTime(size)) // symmetric read cost model
		}
		g.stepsRead++
		g.bytesRead += size
		return ReadStep{Timestep: pg.Timestep, Size: size, PG: pg}, true, nil
	}
	return ReadStep{}, false, fmt.Errorf("adios: read group %q has no transport binding", g.name)
}

// NextTimeout is Next with a deadline (DataTap method only; the file
// method never blocks).
func (g *ReadGroup) NextTimeout(p *sim.Proc, d sim.Time) (ReadStep, bool, error) {
	if g.tap == nil {
		return g.Next(p)
	}
	m, ok := g.tap.FetchTimeout(p, d)
	if !ok {
		return ReadStep{}, false, nil
	}
	pg, _ := m.Data.(*bp.ProcessGroup)
	g.stepsRead++
	g.bytesRead += m.Size
	return ReadStep{Timestep: m.Step, Size: m.Size, PG: pg}, true, nil
}
