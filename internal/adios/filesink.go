package adios

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/bp"
	"repro/internal/sim"
)

// FileSink is the file-method backend: it appends process groups to an
// in-memory BP stream (real encoding, real bytes) while charging simulated
// disk time. Finish() closes the stream so it can be re-read with
// bp.NewReader — integration tests use this to verify provenance
// attributes written during offline transitions.
type FileSink struct {
	name   string
	buf    bytes.Buffer
	w      *bp.Writer
	steps  int
	bytes  int64
	closed bool
}

// NewFileSink creates a sink with the given (diagnostic) name.
func NewFileSink(name string) (*FileSink, error) {
	fs := &FileSink{name: name}
	w, err := bp.NewWriter(&fs.buf)
	if err != nil {
		return nil, err
	}
	fs.w = w
	return fs, nil
}

// Name returns the sink's name.
func (fs *FileSink) Name() string { return fs.name }

// Steps returns the number of appended process groups.
func (fs *FileSink) Steps() int { return fs.steps }

// Bytes returns the cumulative payload bytes appended.
func (fs *FileSink) Bytes() int64 { return fs.bytes }

func (fs *FileSink) append(p *sim.Proc, disk DiskModel, pg *bp.ProcessGroup) error {
	if fs.closed {
		return fmt.Errorf("adios: file sink %q already finished", fs.name)
	}
	if err := fs.w.Append(pg); err != nil {
		return err
	}
	size := pg.DataBytes()
	if p != nil {
		p.Sleep(disk.writeTime(size))
	}
	fs.steps++
	fs.bytes += size
	return nil
}

// Finish closes the BP stream and returns a reader over its contents.
func (fs *FileSink) Finish() (*bp.Reader, error) {
	if !fs.closed {
		if err := fs.w.Close(); err != nil {
			return nil, err
		}
		fs.closed = true
	}
	return bp.NewReader(bytes.NewReader(fs.buf.Bytes()))
}

// SaveTo writes the finished stream to a real file (finishing it first if
// needed), so external tools like cmd/bpdump can inspect it.
func (fs *FileSink) SaveTo(path string) error {
	if !fs.closed {
		if _, err := fs.Finish(); err != nil {
			return err
		}
	}
	return os.WriteFile(path, fs.buf.Bytes(), 0o644)
}
