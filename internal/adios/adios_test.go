package adios

import (
	"os"
	"testing"

	"repro/internal/bp"
	"repro/internal/cluster"
	"repro/internal/datatap"
	"repro/internal/sim"
)

func testIO() (*sim.Engine, *cluster.Machine, *IO) {
	eng := sim.NewEngine(5)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	return eng, mach, NewIO(eng, mach, DefaultDisk())
}

func TestDeclareGroupIdempotent(t *testing.T) {
	_, _, io := testIO()
	a := io.DeclareGroup("atoms")
	b := io.DeclareGroup("atoms")
	if a != b {
		t.Fatal("DeclareGroup should return the same group")
	}
	if io.Group("atoms") != a || io.Group("nope") != nil {
		t.Fatal("Group lookup broken")
	}
	if a.Method() != MethodNull {
		t.Fatalf("initial method %q", a.Method())
	}
}

func TestNullMethodDiscards(t *testing.T) {
	eng, _, io := testIO()
	g := io.DeclareGroup("g")
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(1)
		sw.WriteFloat64s("x", []float64{1, 2, 3})
		ok, err := sw.Close(p)
		if !ok || err != nil {
			t.Errorf("close: %v %v", ok, err)
		}
	})
	eng.Run()
	if g.StepsWritten() != 1 || g.BytesWritten() != 24 {
		t.Fatalf("steps=%d bytes=%d", g.StepsWritten(), g.BytesWritten())
	}
}

func TestDataTapMethodRoutesToChannel(t *testing.T) {
	eng, mach, io := testIO()
	ch := datatap.NewChannel(eng, mach, "ch", datatap.Config{HomeNode: 1})
	g := io.DeclareGroup("atoms")
	g.UseDataTap(ch.NewWriter(0))
	r := ch.NewReader(1)
	var got *bp.ProcessGroup
	eng.Go("writer", func(p *sim.Proc) {
		sw, _ := g.Open(7)
		sw.WriteFloat64s("pos", make([]float64, 100))
		sw.SetAttr("note", "hi")
		if ok, err := sw.Close(p); !ok || err != nil {
			t.Errorf("close: %v %v", ok, err)
		}
	})
	eng.Go("reader", func(p *sim.Proc) {
		m, ok := r.Fetch(p)
		if !ok {
			t.Error("fetch failed")
			return
		}
		got = m.Data.(*bp.ProcessGroup)
		if m.Size != 800 {
			t.Errorf("size %d", m.Size)
		}
	})
	eng.Run()
	if got == nil || got.Timestep != 7 || got.Var("pos") == nil || got.Attrs["note"] != "hi" {
		t.Fatalf("payload %+v", got)
	}
}

func TestFileMethodWritesReadableBP(t *testing.T) {
	eng, _, io := testIO()
	sink, err := NewFileSink("out.bp")
	if err != nil {
		t.Fatal(err)
	}
	g := io.DeclareGroup("atoms")
	g.UseFile(sink)
	var elapsed sim.Time
	eng.Go("w", func(p *sim.Proc) {
		for step := int64(0); step < 3; step++ {
			sw, _ := g.Open(step)
			sw.WriteInt64s("ids", []int64{step, step + 1})
			start := p.Now()
			if ok, err := sw.Close(p); !ok || err != nil {
				t.Errorf("close: %v %v", ok, err)
			}
			elapsed = p.Now() - start
		}
	})
	eng.Run()
	if elapsed < DefaultDisk().Latency {
		t.Fatalf("disk write charged %v; should include latency", elapsed)
	}
	if sink.Steps() != 3 || sink.Bytes() != 48 {
		t.Fatalf("sink steps=%d bytes=%d", sink.Steps(), sink.Bytes())
	}
	r, err := sink.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 3 {
		t.Fatalf("reader steps %d", r.Steps())
	}
	pg, err := r.ReadStep(2)
	if err != nil || pg.Timestep != 2 || pg.Var("ids").Data.([]int64)[1] != 3 {
		t.Fatalf("readback %+v %v", pg, err)
	}
}

func TestMethodSwitchMidRunWithProvenance(t *testing.T) {
	// The offline transition: a group streaming via DataTap switches to
	// the file method and stamps provenance attributes.
	eng, mach, io := testIO()
	ch := datatap.NewChannel(eng, mach, "ch", datatap.Config{HomeNode: 1})
	g := io.DeclareGroup("atoms")
	g.UseDataTap(ch.NewWriter(0))
	r := ch.NewReader(1)
	sink, _ := NewFileSink("offline.bp")
	eng.Go("reader", func(p *sim.Proc) {
		for {
			if _, ok := r.Fetch(p); !ok {
				return
			}
		}
	})
	eng.Go("writer", func(p *sim.Proc) {
		for step := int64(0); step < 2; step++ {
			sw, _ := g.Open(step)
			sw.WriteFloat64s("x", []float64{1})
			sw.Close(p)
		}
		// Container goes offline: switch method, stamp provenance.
		g.UseFile(sink)
		g.SetAttr("provenance.pending", "bonds,csym,cna")
		for step := int64(2); step < 4; step++ {
			sw, _ := g.Open(step)
			sw.WriteFloat64s("x", []float64{1})
			sw.Close(p)
		}
		ch.Close()
	})
	eng.Run()
	if g.Method() != MethodFile {
		t.Fatalf("method %q", g.Method())
	}
	rd, err := sink.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Steps() != 2 {
		t.Fatalf("offline steps %d", rd.Steps())
	}
	pg, _ := rd.ReadStep(0)
	if pg.Attrs["provenance.pending"] != "bonds,csym,cna" {
		t.Fatalf("provenance missing: %v", pg.Attrs)
	}
	if pg.Timestep != 2 {
		t.Fatalf("first offline step %d", pg.Timestep)
	}
}

func TestCloseTwiceFails(t *testing.T) {
	eng, _, io := testIO()
	g := io.DeclareGroup("g")
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(0)
		if _, err := sw.Close(p); err != nil {
			t.Error(err)
		}
		if _, err := sw.Close(p); err == nil {
			t.Error("second close should fail")
		}
		if err := sw.Write(bp.Var{}); err == nil {
			t.Error("write after close should fail")
		}
	})
	eng.Run()
}

func TestUnboundMethodsError(t *testing.T) {
	eng, _, io := testIO()
	g := io.DeclareGroup("g")
	g.method = MethodDataTap // bound method without binding
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(0)
		if _, err := sw.Close(p); err == nil {
			t.Error("datatap without binding should fail")
		}
		g.method = MethodFile
		sw, _ = g.Open(1)
		if _, err := sw.Close(p); err == nil {
			t.Error("file without binding should fail")
		}
		g.method = Method("BOGUS")
		sw, _ = g.Open(2)
		if _, err := sw.Close(p); err == nil {
			t.Error("unknown method should fail")
		}
	})
	eng.Run()
}

func TestDataTapRejectionPropagates(t *testing.T) {
	eng, mach, io := testIO()
	ch := datatap.NewChannel(eng, mach, "ch", datatap.Config{HomeNode: 1})
	g := io.DeclareGroup("g")
	g.UseDataTap(ch.NewWriter(0))
	ch.Close()
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(0)
		ok, err := sw.Close(p)
		if ok || err != nil {
			t.Errorf("want ok=false err=nil, got %v %v", ok, err)
		}
	})
	eng.Run()
	if g.StepsWritten() != 0 {
		t.Fatal("rejected step must not count")
	}
}

func TestDiskModelWriteTime(t *testing.T) {
	d := DiskModel{BandwidthMBps: 100, Latency: sim.Millisecond}
	small := d.writeTime(0)
	if small != sim.Millisecond {
		t.Fatalf("zero-size write %v", small)
	}
	big := d.writeTime(100 << 20) // 100 MiB at 100 MiB/s = 1 s
	want := sim.Millisecond + sim.Second
	if big != want {
		t.Fatalf("big write %v, want %v", big, want)
	}
	z := DiskModel{Latency: 2 * sim.Millisecond}
	if z.writeTime(1<<20) != 2*sim.Millisecond {
		t.Fatal("zero-bandwidth model should charge only latency")
	}
}

func TestFileSinkAppendAfterFinishFails(t *testing.T) {
	eng, _, io := testIO()
	sink, _ := NewFileSink("x")
	if _, err := sink.Finish(); err != nil {
		t.Fatal(err)
	}
	g := io.DeclareGroup("g")
	g.UseFile(sink)
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(0)
		if _, err := sw.Close(p); err == nil {
			t.Error("append after finish should fail")
		}
	})
	eng.Run()
	if sink.Name() != "x" {
		t.Fatal("name accessor broken")
	}
}

func TestFileSinkSaveTo(t *testing.T) {
	eng, _, io := testIO()
	sink, _ := NewFileSink("x.bp")
	g := io.DeclareGroup("g")
	g.UseFile(sink)
	eng.Go("w", func(p *sim.Proc) {
		sw, _ := g.Open(3)
		sw.WriteFloat64s("v", []float64{1, 2})
		sw.Close(p)
	})
	eng.Run()
	path := t.TempDir() + "/out.bp"
	if err := sink.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := bp.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := r.ReadStep(0)
	if err != nil || pg.Timestep != 3 {
		t.Fatalf("readback %+v %v", pg, err)
	}
}

func TestReadGroupDataTap(t *testing.T) {
	eng, mach, io := testIO()
	ch := datatap.NewChannel(eng, mach, "ch", datatap.Config{HomeNode: 1})
	out := io.DeclareGroup("atoms")
	out.UseDataTap(ch.NewWriter(0))
	in := io.DeclareReadGroup("atoms")
	if io.DeclareReadGroup("atoms") != in {
		t.Fatal("DeclareReadGroup not idempotent")
	}
	in.UseDataTap(ch.NewReader(1))
	var stamps []int64
	eng.Go("writer", func(p *sim.Proc) {
		for step := int64(0); step < 3; step++ {
			sw, _ := out.Open(step)
			sw.WriteFloat64s("x", []float64{float64(step)})
			sw.Close(p)
		}
		ch.Close()
	})
	eng.Go("reader", func(p *sim.Proc) {
		for {
			st, ok, err := in.Next(p)
			if err != nil {
				t.Error(err)
				return
			}
			if !ok {
				return
			}
			if st.PG == nil || st.PG.Var("x") == nil {
				t.Error("payload lost")
			}
			stamps = append(stamps, st.Timestep)
		}
	})
	eng.Run()
	if len(stamps) != 3 || in.StepsRead() != 3 || in.BytesRead() != 24 {
		t.Fatalf("stamps %v read=%d bytes=%d", stamps, in.StepsRead(), in.BytesRead())
	}
}

func TestReadGroupFile(t *testing.T) {
	eng, _, io := testIO()
	sink, _ := NewFileSink("f")
	out := io.DeclareGroup("g")
	out.UseFile(sink)
	eng.Go("writer", func(p *sim.Proc) {
		for step := int64(0); step < 2; step++ {
			sw, _ := out.Open(step)
			sw.WriteInt64s("v", []int64{step})
			sw.Close(p)
		}
	})
	eng.Run()
	rd, err := sink.Finish()
	if err != nil {
		t.Fatal(err)
	}
	in := io.DeclareReadGroup("g-in")
	in.UseFile(rd)
	var elapsed sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		start := p.Now()
		n := 0
		for {
			st, ok, err := in.Next(p)
			if err != nil {
				t.Error(err)
				return
			}
			if !ok {
				break
			}
			if st.Timestep != int64(n) {
				t.Errorf("step %d", st.Timestep)
			}
			n++
		}
		elapsed = p.Now() - start
		if n != 2 {
			t.Errorf("read %d steps", n)
		}
	})
	eng.Run()
	if elapsed < DefaultDisk().Latency {
		t.Fatalf("disk read time not charged: %v", elapsed)
	}
}

func TestReadGroupUnboundAndTimeout(t *testing.T) {
	eng, mach, io := testIO()
	in := io.DeclareReadGroup("nope")
	eng.Go("r", func(p *sim.Proc) {
		if _, _, err := in.Next(p); err == nil {
			t.Error("unbound read group should fail")
		}
	})
	ch := datatap.NewChannel(eng, mach, "ch", datatap.Config{HomeNode: 1})
	tapped := io.DeclareReadGroup("tapped")
	tapped.UseDataTap(ch.NewReader(1))
	eng.Go("r2", func(p *sim.Proc) {
		_, ok, err := tapped.NextTimeout(p, sim.Second)
		if ok || err != nil {
			t.Errorf("timeout read: ok=%v err=%v", ok, err)
		}
	})
	eng.Run()
}
