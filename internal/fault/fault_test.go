package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestNilScheduleIsFaultFree(t *testing.T) {
	var s *Schedule
	if !s.NodeUp(3) {
		t.Fatal("nil schedule should report nodes up")
	}
	if s.LatencyFactor() != 1 || s.SlowdownFactor() != 1 {
		t.Fatal("nil schedule should not degrade links")
	}
	if s.Partitioned(0, 1) || s.DropCtl() || s.Stalled(0) {
		t.Fatal("nil schedule should inject nothing")
	}
	if s.StallRemaining(0) != 0 {
		t.Fatal("nil schedule should have no stalls")
	}
	s.OnCrash(func(int) {}) // must not panic
	s.Crash(0)              // must not panic
	s.NoteSendFailed()      // must not panic
	if s.Stats() != (Stats{}) {
		t.Fatal("nil schedule stats should be zero")
	}
	if s.DownNodes() != nil {
		t.Fatal("nil schedule has no down nodes")
	}
}

func TestScheduledCrashFiresAtTime(t *testing.T) {
	eng := sim.NewEngine(1)
	s, err := NewSchedule(eng, Config{
		Crashes: []Crash{{Node: 2, At: 10 * sim.Second}, {Node: 5, At: 20 * sim.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fired []struct {
		node int
		at   sim.Time
	}
	s.OnCrash(func(n int) {
		fired = append(fired, struct {
			node int
			at   sim.Time
		}{n, eng.Now()})
	})
	if !s.NodeUp(2) {
		t.Fatal("node 2 down before its crash time")
	}
	eng.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d crashes, want 2", len(fired))
	}
	if fired[0].node != 2 || fired[0].at != 10*sim.Second {
		t.Fatalf("first crash %+v", fired[0])
	}
	if fired[1].node != 5 || fired[1].at != 20*sim.Second {
		t.Fatalf("second crash %+v", fired[1])
	}
	if s.NodeUp(2) || s.NodeUp(5) || !s.NodeUp(3) {
		t.Fatal("down set wrong after crashes")
	}
	if got := s.DownNodes(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("DownNodes %v", got)
	}
	if s.Stats().CrashesFired != 2 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _ := NewSchedule(eng, Config{})
	count := 0
	s.OnCrash(func(int) { count++ })
	s.Crash(7)
	s.Crash(7)
	if count != 1 || s.Stats().CrashesFired != 1 {
		t.Fatalf("double crash fired handlers %d times", count)
	}
}

func TestLinkWindowsMultiply(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _ := NewSchedule(eng, Config{
		Links: []LinkFault{
			{From: 10 * sim.Second, Until: 20 * sim.Second, LatencyFactor: 3, SlowdownFactor: 2},
			{From: 15 * sim.Second, Until: 30 * sim.Second, LatencyFactor: 4},
		},
	})
	at := func(t sim.Time) (float64, float64) {
		eng.At(t, func() {})
		eng.RunUntil(t)
		return s.LatencyFactor(), s.SlowdownFactor()
	}
	if lf, sf := at(5 * sim.Second); lf != 1 || sf != 1 {
		t.Fatalf("before windows: %v %v", lf, sf)
	}
	if lf, sf := at(12 * sim.Second); lf != 3 || sf != 2 {
		t.Fatalf("first window: %v %v", lf, sf)
	}
	if lf, _ := at(17 * sim.Second); lf != 12 {
		t.Fatalf("overlap should multiply: %v", lf)
	}
	if lf, sf := at(25 * sim.Second); lf != 4 || sf != 1 {
		t.Fatalf("second window only: %v %v", lf, sf)
	}
	if lf, _ := at(35 * sim.Second); lf != 1 {
		t.Fatalf("after windows: %v", lf)
	}
}

func TestPartitionSeversOnlyAcrossBoundary(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _ := NewSchedule(eng, Config{
		Partitions: []Partition{{From: 0, Until: 10 * sim.Second, Nodes: []int{1, 2}}},
	})
	if !s.Partitioned(0, 1) || !s.Partitioned(2, 3) {
		t.Fatal("boundary-crossing pairs should be severed")
	}
	if s.Partitioned(1, 2) {
		t.Fatal("both endpoints inside: reachable")
	}
	if s.Partitioned(0, 3) {
		t.Fatal("both endpoints outside: reachable")
	}
	eng.At(10*sim.Second, func() {})
	eng.Run()
	if s.Partitioned(0, 1) {
		t.Fatal("window over; partition should heal")
	}
}

func TestDropWindowDeterministicAndBounded(t *testing.T) {
	run := func() (dropped int64) {
		eng := sim.NewEngine(1)
		s, _ := NewSchedule(eng, Config{
			Seed:  99,
			Drops: []DropWindow{{From: 0, Until: sim.Minute, Prob: 0.5}},
		})
		for i := 0; i < 1000; i++ {
			s.DropCtl()
		}
		return s.Stats().CtlDropped
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("drop stream not deterministic: %d vs %d", a, b)
	}
	if a < 300 || a > 700 {
		t.Fatalf("dropped %d of 1000 at p=0.5", a)
	}
	// Outside the window nothing is dropped and the stream is untouched.
	eng := sim.NewEngine(1)
	s, _ := NewSchedule(eng, Config{
		Drops: []DropWindow{{From: sim.Minute, Until: 2 * sim.Minute, Prob: 1}},
	})
	for i := 0; i < 100; i++ {
		if s.DropCtl() {
			t.Fatal("dropped outside the window")
		}
	}
}

func TestStallWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	s, _ := NewSchedule(eng, Config{
		Stalls: []Stall{{Node: 4, From: 10 * sim.Second, Until: 25 * sim.Second}},
	})
	if s.Stalled(4) {
		t.Fatal("stalled before the window")
	}
	eng.At(15*sim.Second, func() {})
	eng.RunUntil(15 * sim.Second)
	if !s.Stalled(4) || s.Stalled(3) {
		t.Fatal("stall targeting wrong")
	}
	if rem := s.StallRemaining(4); rem != 10*sim.Second {
		t.Fatalf("remaining %v, want 10s", rem)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	eng := sim.NewEngine(1)
	bad := []Config{
		{Crashes: []Crash{{Node: -1}}},
		{Links: []LinkFault{{From: 5, Until: 5}}},
		{Drops: []DropWindow{{Until: 1, Prob: 1.5}}},
	}
	for i, cfg := range bad {
		if _, err := NewSchedule(eng, cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestEmpty(t *testing.T) {
	var nilCfg *Config
	if !nilCfg.Empty() {
		t.Fatal("nil config is empty")
	}
	if !(&Config{Seed: 5}).Empty() {
		t.Fatal("seed-only config is empty")
	}
	if (&Config{Crashes: []Crash{{Node: 1}}}).Empty() {
		t.Fatal("crash config is not empty")
	}
}
