// Package fault provides a deterministic, virtual-time fault schedule for
// the simulated machine and the overlays built on it. A Schedule is seeded
// and driven entirely by the sim engine's clock, so a given (seed, config)
// pair always produces the same crashes, drops, and degradation windows —
// fault-tolerance experiments replay exactly.
//
// The package sits directly above internal/sim; higher layers (cluster,
// evpath, datatap, core) consult the schedule through nil-safe accessors,
// so a nil *Schedule means "no faults" and costs one branch per query.
//
// Supported fault classes:
//
//   - node crash at time t (permanent; registered OnCrash handlers fire,
//     letting each layer sever links, kill resident processes, and
//     invalidate in-flight metadata);
//   - link degradation windows (latency multiplied, bandwidth divided);
//   - network partitions (a node set unreachable from the rest for a
//     window);
//   - control-message drop windows (each overlay message dropped with a
//     given probability, from the schedule's own deterministic stream);
//   - replica stall windows (a node freezes — processes alive but making
//     no progress — then resumes).
package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Config describes a fault schedule. It is JSON-friendly so scenario files
// can embed one; all times are virtual. A nil *Config means "no faults";
// every method tolerates a nil receiver.
//
// iocheck:nilsafe
type Config struct {
	// Seed feeds the schedule's private random stream (message drops).
	// Zero derives a default; the stream is separate from the engine's so
	// enabling drops does not perturb unrelated randomness.
	Seed int64
	// Crashes lists permanent node failures.
	Crashes []Crash
	// Links lists link-degradation windows applying to every transfer.
	Links []LinkFault
	// Partitions lists windows during which a node set is unreachable
	// from all other nodes (members can still talk to each other).
	Partitions []Partition
	// Drops lists windows during which control/overlay messages are
	// dropped with the given probability.
	Drops []DropWindow
	// DataDrops lists windows during which data-plane descriptor pushes
	// (DataTap metadata messages) are dropped with the given probability.
	// The transfer itself is charged; the descriptor simply never arrives,
	// so the consumer side has no idea the step exists.
	DataDrops []DropWindow
	// Stalls lists windows during which a node is frozen: resident
	// processes make no progress but are not dead.
	Stalls []Stall
	// SubCrashes lists streaming-subscriber crashes (a dashboard process
	// dying, not a machine node): the subscriber's staged buffer is lost,
	// its durable cursor survives, and — when ReconnectAt is set — it
	// reconnects and catches up through the manager's SubResume rounds.
	// Interpreted by the core runtime's subscriber fleet, not the machine.
	SubCrashes []SubCrash
}

// Crash is a permanent node failure at time At.
type Crash struct {
	Node int
	At   sim.Time
}

// LinkFault degrades every link during [From, Until): latency is multiplied
// by LatencyFactor (≥1) and bandwidth divided by SlowdownFactor (≥1).
type LinkFault struct {
	From, Until    sim.Time
	LatencyFactor  float64
	SlowdownFactor float64
}

// Partition isolates Nodes from the rest of the machine during [From,
// Until). Traffic between two members, or two non-members, is unaffected.
type Partition struct {
	From, Until sim.Time
	Nodes       []int
}

// DropWindow drops each overlay control message with probability Prob
// during [From, Until).
type DropWindow struct {
	From, Until sim.Time
	Prob        float64
}

// Stall freezes Node during [From, Until).
type Stall struct {
	Node        int
	From, Until sim.Time
}

// SubCrash kills streaming subscriber Index at At; with ReconnectAt > At
// it reconnects then and catches up from its durable cursor. ReconnectAt
// of zero means the subscriber never comes back.
type SubCrash struct {
	Index       int
	At          sim.Time
	ReconnectAt sim.Time
}

// Validate rejects obviously malformed configurations.
func (c *Config) Validate() error {
	if c == nil {
		return nil // no faults, nothing to be malformed
	}
	for _, cr := range c.Crashes {
		if cr.Node < 0 {
			return fmt.Errorf("fault: crash node %d negative", cr.Node)
		}
	}
	for _, l := range c.Links {
		if l.Until <= l.From {
			return fmt.Errorf("fault: link window [%v,%v) empty", l.From, l.Until)
		}
	}
	for _, d := range c.Drops {
		if d.Prob < 0 || d.Prob > 1 {
			return fmt.Errorf("fault: drop probability %v outside [0,1]", d.Prob)
		}
	}
	for _, d := range c.DataDrops {
		if d.Prob < 0 || d.Prob > 1 {
			return fmt.Errorf("fault: data-drop probability %v outside [0,1]", d.Prob)
		}
	}
	for _, sc := range c.SubCrashes {
		if sc.Index < 0 {
			return fmt.Errorf("fault: subscriber crash index %d negative", sc.Index)
		}
		if sc.ReconnectAt != 0 && sc.ReconnectAt <= sc.At {
			return fmt.Errorf("fault: subscriber %d reconnect %v not after crash %v",
				sc.Index, sc.ReconnectAt, sc.At)
		}
	}
	return nil
}

// Empty reports whether the config schedules no faults at all.
func (c *Config) Empty() bool {
	if c == nil {
		return true
	}
	return len(c.Crashes) == 0 && len(c.Links) == 0 &&
		len(c.Partitions) == 0 && len(c.Drops) == 0 &&
		len(c.DataDrops) == 0 && len(c.Stalls) == 0 &&
		len(c.SubCrashes) == 0
}

// Stats counts fault activity for experiment reporting.
type Stats struct {
	CrashesFired int
	CtlDropped   int64
	DataDropped  int64
	SendsFailed  int64
}

// Schedule is an armed fault plan bound to an engine. The zero of the type
// is not used; a nil *Schedule is valid everywhere and means "no faults",
// so every method must guard its nil receiver.
//
// iocheck:nilsafe
type Schedule struct {
	eng     *sim.Engine
	cfg     Config
	rng     *sim.Rand
	rngData *sim.Rand // separate stream so data drops never perturb ctl drops
	down    map[int]bool
	onCrash []func(node int)
	stats   Stats
}

// NewSchedule arms cfg under eng: each crash is scheduled as an engine
// event at its time. OnCrash handlers registered before a crash fires see
// it; the usual pattern registers all handlers during setup at t=0.
func NewSchedule(eng *sim.Engine, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x10fa17 // arbitrary fixed default; determinism is what matters
	}
	s := &Schedule{
		eng:     eng,
		cfg:     cfg,
		rng:     sim.NewRand(seed),
		rngData: sim.NewRand(seed ^ 0x7ab1e),
		down:    make(map[int]bool),
	}
	for _, cr := range cfg.Crashes {
		cr := cr
		eng.At(cr.At, func() { s.Crash(cr.Node) })
	}
	return s, nil
}

// OnCrash registers fn to run when any node crashes. Handlers run in
// registration order, inside the crash event.
func (s *Schedule) OnCrash(fn func(node int)) {
	if s == nil {
		return
	}
	s.onCrash = append(s.onCrash, fn)
}

// Crash marks node down immediately and invokes the registered handlers.
// Crashing a node twice is a no-op; tests use this to inject crashes
// without a schedule entry.
func (s *Schedule) Crash(node int) {
	if s == nil || s.down[node] {
		return
	}
	s.down[node] = true
	s.stats.CrashesFired++
	for _, fn := range s.onCrash {
		fn(node)
	}
}

// NodeUp reports whether node is alive. A nil schedule reports all nodes
// alive.
func (s *Schedule) NodeUp(node int) bool {
	if s == nil {
		return true
	}
	return !s.down[node]
}

// DownNodes returns the crashed node IDs in ascending order.
func (s *Schedule) DownNodes() []int {
	if s == nil {
		return nil
	}
	var out []int
	for id := range s.down {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// LatencyFactor returns the link-latency multiplier active now (1 when no
// window is active; overlapping windows multiply).
func (s *Schedule) LatencyFactor() float64 {
	if s == nil || len(s.cfg.Links) == 0 {
		return 1
	}
	now := s.eng.Now()
	f := 1.0
	for _, l := range s.cfg.Links {
		if now >= l.From && now < l.Until && l.LatencyFactor > 0 {
			f *= l.LatencyFactor
		}
	}
	return f
}

// SlowdownFactor returns the bandwidth divisor active now (1 when no
// window is active; overlapping windows multiply).
func (s *Schedule) SlowdownFactor() float64 {
	if s == nil || len(s.cfg.Links) == 0 {
		return 1
	}
	now := s.eng.Now()
	f := 1.0
	for _, l := range s.cfg.Links {
		if now >= l.From && now < l.Until && l.SlowdownFactor > 0 {
			f *= l.SlowdownFactor
		}
	}
	return f
}

// Partitioned reports whether traffic between nodes a and b is severed by
// an active partition window (exactly one endpoint inside the partition).
func (s *Schedule) Partitioned(a, b int) bool {
	if s == nil || len(s.cfg.Partitions) == 0 {
		return false
	}
	now := s.eng.Now()
	for _, pt := range s.cfg.Partitions {
		if now < pt.From || now >= pt.Until {
			continue
		}
		var inA, inB bool
		for _, n := range pt.Nodes {
			if n == a {
				inA = true
			}
			if n == b {
				inB = true
			}
		}
		if inA != inB {
			return true
		}
	}
	return false
}

// DropCtl decides whether one overlay control message is dropped now. It
// consumes the schedule's private random stream only while a drop window is
// active, so runs without drop windows are bit-identical to no-fault runs.
func (s *Schedule) DropCtl() bool {
	if s == nil || len(s.cfg.Drops) == 0 {
		return false
	}
	now := s.eng.Now()
	for _, d := range s.cfg.Drops {
		if now >= d.From && now < d.Until && d.Prob > 0 {
			if s.rng.Float64() < d.Prob {
				s.stats.CtlDropped++
				return true
			}
			return false
		}
	}
	return false
}

// DropData decides whether one data-plane descriptor push is dropped now.
// Like DropCtl it consumes randomness (its own stream) only while a window
// is active, so schedules without data-drop windows are bit-identical to
// no-fault runs.
func (s *Schedule) DropData() bool {
	if s == nil || len(s.cfg.DataDrops) == 0 {
		return false
	}
	now := s.eng.Now()
	for _, d := range s.cfg.DataDrops {
		if now >= d.From && now < d.Until && d.Prob > 0 {
			if s.rngData.Float64() < d.Prob {
				s.stats.DataDropped++
				return true
			}
			return false
		}
	}
	return false
}

// Stalled reports whether node is frozen right now.
func (s *Schedule) Stalled(node int) bool {
	return s.StallRemaining(node) > 0
}

// StallRemaining returns how much longer node stays frozen (0 when it is
// not stalled). Processes on a stalled node sleep this long before
// continuing, modelling an OS-level freeze rather than death.
func (s *Schedule) StallRemaining(node int) sim.Time {
	if s == nil || len(s.cfg.Stalls) == 0 {
		return 0
	}
	now := s.eng.Now()
	var rem sim.Time
	for _, st := range s.cfg.Stalls {
		if st.Node == node && now >= st.From && now < st.Until {
			if d := st.Until - now; d > rem {
				rem = d
			}
		}
	}
	return rem
}

// NoteSendFailed counts a failed transfer for reporting; the machine layer
// calls it when a send or RDMA pull hits a dead or partitioned endpoint.
func (s *Schedule) NoteSendFailed() {
	if s == nil {
		return
	}
	s.stats.SendsFailed++
}

// Stats returns a snapshot of fault activity.
func (s *Schedule) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return s.stats
}
