package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// ChartOptions configures ASCII series rendering.
type ChartOptions struct {
	// Width and Height are the plot area in characters (defaults 64x12).
	Width, Height int
	// YLabel annotates the value axis.
	YLabel string
	// Markers draws vertical annotations at the given instants.
	Markers []Marker
}

// Chart renders a time series as an ASCII scatter plot with a labeled
// value axis and optional event markers — enough to see the paper's
// figure shapes (latency climbing, the post-resize transient, the
// offline cliff) straight from a terminal.
func Chart(s *Series, opt ChartOptions) string {
	if s == nil || len(s.Points) == 0 {
		return "(no data)\n"
	}
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 12
	}
	tMin, tMax := s.Points[0].T, s.Points[0].T
	vMin, vMax := s.Points[0].V, s.Points[0].V
	for _, p := range s.Points {
		if p.T < tMin {
			tMin = p.T
		}
		if p.T > tMax {
			tMax = p.T
		}
		if p.V < vMin {
			vMin = p.V
		}
		if p.V > vMax {
			vMax = p.V
		}
	}
	if vMin > 0 {
		vMin = 0 // anchor at zero so magnitudes read honestly
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(t sim.Time) int {
		c := int(float64(w-1) * float64(t-tMin) / float64(tMax-tMin))
		if c < 0 {
			c = 0
		}
		if c >= w {
			c = w - 1
		}
		return c
	}
	for _, m := range opt.Markers {
		if m.T < tMin || m.T > tMax {
			continue
		}
		c := col(m.T)
		for r := 0; r < h; r++ {
			grid[r][c] = '|'
		}
	}
	for _, p := range s.Points {
		c := col(p.T)
		r := int(math.Round(float64(h-1) * (p.V - vMin) / (vMax - vMin)))
		row := h - 1 - r
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		grid[row][c] = '*'
	}
	var b strings.Builder
	for r := 0; r < h; r++ {
		val := vMax - (vMax-vMin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", val, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "",
		w-10, fmt.Sprintf("t=%.0fs", tMin.Seconds()), fmt.Sprintf("t=%.0fs", tMax.Seconds()))
	if opt.YLabel != "" {
		b.WriteString("y: " + opt.YLabel + "\n")
	}
	for _, m := range opt.Markers {
		if m.T >= tMin && m.T <= tMax {
			fmt.Fprintf(&b, "| at %s: %s\n", m.T, m.Label)
		}
	}
	return b.String()
}
