package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	r := NewRecorder()
	s := r.Series("latency")
	if r.Series("latency") != s {
		t.Fatal("Series not idempotent")
	}
	s.Add(sim.Second, 1.5)
	s.Add(2*sim.Second, 2.5)
	if s.Len() != 2 || s.Last().V != 2.5 || s.Last().T != 2*sim.Second {
		t.Fatalf("series %+v", s)
	}
	vals := s.Values()
	if len(vals) != 2 || vals[0] != 1.5 {
		t.Fatalf("values %v", vals)
	}
	if got := s.Mean(); got != 2.0 {
		t.Fatalf("mean %g", got)
	}
	if !r.Has("latency") || r.Has("other") {
		t.Fatal("Has broken")
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	w := s.Window(3*sim.Second, 6*sim.Second)
	if len(w) != 3 || w[0].V != 3 || w[2].V != 5 {
		t.Fatalf("window %v", w)
	}
}

func TestRecorderOrderAndMarkers(t *testing.T) {
	r := NewRecorder()
	r.Series("b")
	r.Series("a")
	r.Series("b")
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names %v", names)
	}
	r.Mark(5*sim.Second, "increase bonds +2")
	if len(r.Markers) != 1 || r.Markers[0].Label != "increase bonds +2" {
		t.Fatalf("markers %v", r.Markers)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("%+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 %g", s.P50)
	}
	if s.First != 4 || s.LastValue != 5 {
		t.Fatalf("first/last %g %g", s.First, s.LastValue)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

// Property: quantiles are order statistics — bounded by min/max and
// monotone in q.
func TestQuantileProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.P50 >= s.Min && s.P50 <= s.Max &&
			s.P90 >= s.P50 && s.P99 >= s.P90 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	var tab Table
	tab.Header = []string{"name", "value", "time"}
	tab.AddRow("bonds", 3.14159, 15*sim.Second)
	tab.AddRow("helper", 7, "n/a")
	out := tab.String()
	if !strings.Contains(out, "bonds") || !strings.Contains(out, "3.142") ||
		!strings.Contains(out, "15.000s") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	var tab Table
	tab.Header = []string{"a", "b"}
	tab.AddRow("plain", `with,comma "quoted"`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"with,comma ""quoted"""`) {
		t.Fatalf("csv escaping:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
}

func TestChartRendersShape(t *testing.T) {
	var s Series
	for i := 0; i < 20; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	out := Chart(&s, ChartOptions{Width: 40, Height: 8, YLabel: "latency (s)",
		Markers: []Marker{{T: 10 * sim.Second, Label: "increase bonds"}}})
	if !strings.Contains(out, "*") {
		t.Fatalf("no data points:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("no marker column:\n%s", out)
	}
	if !strings.Contains(out, "latency (s)") || !strings.Contains(out, "increase bonds") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// Rising series: last line of the plot area should hold early points,
	// first line the late ones. Check the top row contains a star in the
	// right half.
	lines := strings.Split(out, "\n")
	top := lines[0]
	if !strings.Contains(top[len(top)/2:], "*") {
		t.Fatalf("rising series should peak late:\n%s", out)
	}
}

func TestChartEdgeCases(t *testing.T) {
	if got := Chart(nil, ChartOptions{}); got != "(no data)\n" {
		t.Fatalf("nil chart %q", got)
	}
	var empty Series
	if got := Chart(&empty, ChartOptions{}); got != "(no data)\n" {
		t.Fatalf("empty chart %q", got)
	}
	var flat Series
	flat.Add(sim.Second, 5)
	out := Chart(&flat, ChartOptions{Width: 10, Height: 3})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point lost:\n%s", out)
	}
}
