package metrics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// gridAt returns the plot-area character at (row, col). Each chart line is
// "%10.1f |<grid>", so the grid starts at byte 12.
func gridAt(t *testing.T, out string, row, col int) byte {
	t.Helper()
	lines := strings.Split(out, "\n")
	if row >= len(lines) || 12+col >= len(lines[row]) {
		t.Fatalf("no cell (%d,%d) in:\n%s", row, col, out)
	}
	return lines[row][12+col]
}

func TestChartMarkerPlacement(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(10*sim.Second, 2)
	const w, h = 21, 5
	out := Chart(&s, ChartOptions{Width: w, Height: h, Markers: []Marker{
		{T: 0, Label: "start"},
		{T: 5 * sim.Second, Label: "mid"},
		{T: 10 * sim.Second, Label: "end"},
		{T: 99 * sim.Second, Label: "out of range"},
	}})
	// Columns are linear in time: t=0 -> 0, t=5s -> (w-1)/2, t=10s -> w-1.
	for _, c := range []int{0, (w - 1) / 2, w - 1} {
		for r := 0; r < h; r++ {
			got := gridAt(t, out, r, c)
			if got != '|' && got != '*' {
				t.Fatalf("col %d row %d = %q, want marker column:\n%s", c, r, got, out)
			}
		}
	}
	for _, label := range []string{"start", "mid", "end"} {
		if !strings.Contains(out, label) {
			t.Fatalf("marker legend %q missing:\n%s", label, out)
		}
	}
	if strings.Contains(out, "out of range") {
		t.Fatalf("marker outside the time range must be skipped:\n%s", out)
	}
}

func TestChartSinglePointSeries(t *testing.T) {
	var s Series
	s.Add(3*sim.Second, 7)
	out := Chart(&s, ChartOptions{Width: 8, Height: 4})
	// One sample, one star; the degenerate time/value ranges must not
	// divide by zero or push the point off-grid.
	if n := strings.Count(out, "*"); n != 1 {
		t.Fatalf("single-point series drew %d stars:\n%s", n, out)
	}
	if gridAt(t, out, 0, 0) != '*' {
		t.Fatalf("single point should land at the top-left of the plot:\n%s", out)
	}
}

func TestChartZeroSizeFallsBackToDefaults(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(sim.Second, 1)
	for _, opt := range []ChartOptions{{}, {Width: -3, Height: -1}} {
		out := Chart(&s, opt)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		// 12 default plot rows, then the axis line and the time-label line.
		if len(lines) != 14 {
			t.Fatalf("%d lines with default geometry, want 14:\n%s", len(lines), out)
		}
		// Default width 64: plot rows are 12 prefix chars + 64 grid chars.
		if len(lines[0]) != 12+64 {
			t.Fatalf("top row %d chars, want %d:\n%s", len(lines[0]), 12+64, out)
		}
	}
}

func TestChartValueAxisAnchorsAtZero(t *testing.T) {
	var s Series
	s.Add(0, 50)
	s.Add(sim.Second, 100)
	out := Chart(&s, ChartOptions{Width: 10, Height: 3})
	// All-positive series: the axis floor must read 0.0, not the series
	// minimum, so magnitudes compare honestly across charts.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "       0.0 ") {
		t.Fatalf("bottom row should be anchored at 0.0:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "     100.0 ") {
		t.Fatalf("top row should read the max:\n%s", out)
	}
}
