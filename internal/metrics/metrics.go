// Package metrics provides the time-series recording and summary
// statistics the experiment harness uses to regenerate the paper's tables
// and figures: named series of (virtual time, value) points, annotated
// event markers (management actions), and text/CSV rendering.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Point is one sample in a series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent point (zero Point if empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Values returns just the values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Window returns the points with T in [from, to).
func (s *Series) Window(from, to sim.Time) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Marker is an annotated instant (e.g. "increase bonds +2").
type Marker struct {
	T     sim.Time
	Label string
}

// Recorder collects named series and markers for one experiment run.
type Recorder struct {
	series  map[string]*Series
	order   []string
	Markers []Marker
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if needed) the named series.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Has reports whether the named series exists (without creating it).
func (r *Recorder) Has(name string) bool {
	_, ok := r.series[name]
	return ok
}

// Names returns series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// Mark records an annotated instant.
func (r *Recorder) Mark(t sim.Time, label string) {
	r.Markers = append(r.Markers, Marker{T: t, Label: label})
}

// Summary holds descriptive statistics of a value set.
type Summary struct {
	N                int
	Min, Max         float64
	Mean             float64
	P50, P90, P99    float64
	First, LastValue float64
}

// Summarize computes stats over the values.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: vals[0], Max: vals[0], First: vals[0], LastValue: vals[len(vals)-1]}
	sum := 0.0
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-quantile of sorted values by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the average of a series' values.
func (s *Series) Mean() float64 {
	return Summarize(s.Values()).Mean
}

// Table renders rows of labeled columns as an aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row (stringifying the cells).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case sim.Time:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSV := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSV(t.Header)
	for _, row := range t.Rows {
		writeCSV(row)
	}
	return b.String()
}
