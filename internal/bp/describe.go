package bp

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders a human-readable summary of a BP stream: the step
// index, and per-step group/variable/attribute details (cmd/bpdump's
// output). maxSteps bounds how many steps are expanded (0 = all).
func Describe(r *Reader, maxSteps int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "bp stream: %d step(s)\n", r.Steps())
	groups := map[string]int{}
	for i := 0; i < r.Steps(); i++ {
		g, _, err := r.StepInfo(i)
		if err != nil {
			return "", err
		}
		groups[g]++
	}
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		fmt.Fprintf(&b, "  group %q: %d step(s)\n", g, groups[g])
	}
	n := r.Steps()
	if maxSteps > 0 && n > maxSteps {
		n = maxSteps
	}
	for i := 0; i < n; i++ {
		pg, err := r.ReadStep(i)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nstep %d: group=%q timestep=%d payload=%d bytes\n",
			i, pg.Group, pg.Timestep, pg.DataBytes())
		for vi := range pg.Vars {
			v := &pg.Vars[vi]
			fmt.Fprintf(&b, "  var %-16s %-8s dims=%v count=%d\n",
				v.Name, v.Type, v.Dims, v.Count())
		}
		for _, k := range sortedKeys(pg.Attrs) {
			fmt.Fprintf(&b, "  attr %-15s = %q\n", k, pg.Attrs[k])
		}
	}
	if n < r.Steps() {
		fmt.Fprintf(&b, "\n(%d more steps)\n", r.Steps()-n)
	}
	return b.String(), nil
}
