// Package bp implements a small self-describing binary-pack container
// format, playing the role ADIOS's BP format plays in the paper: each
// output step of a group is appended as a "process group" carrying named,
// typed, dimensioned variables plus string attributes (the container
// runtime uses attributes to record data-processing provenance when an
// analytics stage is taken offline). A footer index makes steps randomly
// accessible for post-processing.
//
// Layout:
//
//	magic "GOBP" | version u32
//	process group*              (see writePG)
//	index                       (count + per-PG offsets/sizes/names)
//	index offset u64 | magic "BPGO"
package bp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Magic constants framing a BP stream.
var (
	headMagic = [4]byte{'G', 'O', 'B', 'P'}
	tailMagic = [4]byte{'B', 'P', 'G', 'O'}
)

// Version is the format version written by this package.
const Version uint32 = 1

// DType enumerates variable element types.
type DType uint8

// Supported element types.
const (
	TFloat64 DType = iota + 1
	TFloat32
	TInt64
	TInt32
	TByte
)

// String implements fmt.Stringer.
func (t DType) String() string {
	switch t {
	case TFloat64:
		return "float64"
	case TFloat32:
		return "float32"
	case TInt64:
		return "int64"
	case TInt32:
		return "int32"
	case TByte:
		return "byte"
	}
	return fmt.Sprintf("dtype(%d)", uint8(t))
}

// elemSize returns the byte width of one element.
func (t DType) elemSize() int {
	switch t {
	case TFloat64, TInt64:
		return 8
	case TFloat32, TInt32:
		return 4
	case TByte:
		return 1
	}
	return 0
}

// Var is one variable within a process group.
type Var struct {
	Name string
	Type DType
	// Dims are the (local) dimensions; the element count is their
	// product, or 0 dims for a scalar (count 1).
	Dims []int
	// Data holds the elements as one of []float64, []float32, []int64,
	// []int32, []byte matching Type.
	Data any
}

// Count returns the element count implied by Dims.
func (v *Var) Count() int {
	n := 1
	for _, d := range v.Dims {
		n *= d
	}
	return n
}

// Float64s returns the data as []float64, converting numeric types.
func (v *Var) Float64s() ([]float64, error) {
	switch d := v.Data.(type) {
	case []float64:
		return d, nil
	case []float32:
		out := make([]float64, len(d))
		for i, x := range d {
			out[i] = float64(x)
		}
		return out, nil
	case []int64:
		out := make([]float64, len(d))
		for i, x := range d {
			out[i] = float64(x)
		}
		return out, nil
	case []int32:
		out := make([]float64, len(d))
		for i, x := range d {
			out[i] = float64(x)
		}
		return out, nil
	}
	return nil, fmt.Errorf("bp: var %q type %v not numeric", v.Name, v.Type)
}

// validate checks type/data/dims consistency.
func (v *Var) validate() error {
	if v.Name == "" {
		return errors.New("bp: var with empty name")
	}
	var n int
	switch d := v.Data.(type) {
	case []float64:
		if v.Type != TFloat64 {
			return typeMismatch(v, "float64")
		}
		n = len(d)
	case []float32:
		if v.Type != TFloat32 {
			return typeMismatch(v, "float32")
		}
		n = len(d)
	case []int64:
		if v.Type != TInt64 {
			return typeMismatch(v, "int64")
		}
		n = len(d)
	case []int32:
		if v.Type != TInt32 {
			return typeMismatch(v, "int32")
		}
		n = len(d)
	case []byte:
		if v.Type != TByte {
			return typeMismatch(v, "byte")
		}
		n = len(d)
	default:
		return errUnsupportedData(v)
	}
	if n != v.Count() {
		return errDimsMismatch(v, n)
	}
	return nil
}

// Error constructors are outlined so fmt's allocations stay off the
// per-step encode path; each runs once per malformed input, never per
// well-formed step.

//iocheck:cold
func typeMismatch(v *Var, got string) error {
	return fmt.Errorf("bp: var %q declared %v but data is []%s", v.Name, v.Type, got)
}

//iocheck:cold
func errUnsupportedData(v *Var) error {
	return fmt.Errorf("bp: var %q has unsupported data %T", v.Name, v.Data)
}

//iocheck:cold
func errDimsMismatch(v *Var, n int) error {
	return fmt.Errorf("bp: var %q dims %v imply %d elements, data has %d",
		v.Name, v.Dims, v.Count(), n)
}

//iocheck:cold
func errNegativeDim(v *Var) error {
	return fmt.Errorf("bp: var %q has negative dim", v.Name)
}

// ProcessGroup is one appended output step.
type ProcessGroup struct {
	Group    string
	Timestep int64
	Vars     []Var
	Attrs    map[string]string
}

// Var returns the named variable, or nil.
func (pg *ProcessGroup) Var(name string) *Var {
	for i := range pg.Vars {
		if pg.Vars[i].Name == name {
			return &pg.Vars[i]
		}
	}
	return nil
}

// DataBytes returns the total payload size of all variables.
func (pg *ProcessGroup) DataBytes() int64 {
	var n int64
	for i := range pg.Vars {
		n += int64(pg.Vars[i].Count() * pg.Vars[i].Type.elemSize())
	}
	return n
}

// indexEntry locates one process group in the stream.
type indexEntry struct {
	Group    string
	Timestep int64
	Offset   int64
	Size     int64
}

// --- primitive encoding ---

type countingWriter struct {
	w   io.Writer
	off int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.off += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

type byteReader struct{ r io.Reader }

func (br byteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(br.r, b[:])
	return b[0], err
}

func readUvarint(r io.Reader) (uint64, error) {
	return binary.ReadUvarint(byteReader{r})
}

const maxStringLen = 1 << 20

func readString(r io.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("bp: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// --- variable payload encoding ---

func writeVarData(w io.Writer, es *encodeState, v *Var) error {
	switch d := v.Data.(type) {
	case []float64:
		buf := es.grow(8 * len(d))
		for i, x := range d {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
		}
		_, err := w.Write(buf)
		return err
	case []float32:
		buf := es.grow(4 * len(d))
		for i, x := range d {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
		}
		_, err := w.Write(buf)
		return err
	case []int64:
		buf := es.grow(8 * len(d))
		for i, x := range d {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
		}
		_, err := w.Write(buf)
		return err
	case []int32:
		buf := es.grow(4 * len(d))
		for i, x := range d {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
		}
		_, err := w.Write(buf)
		return err
	case []byte:
		_, err := w.Write(d)
		return err
	}
	return errUnsupportedData(v)
}

func readVarData(r io.Reader, t DType, count int) (any, error) {
	size := t.elemSize()
	if size == 0 {
		return nil, fmt.Errorf("bp: unknown dtype %d", t)
	}
	buf := make([]byte, size*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	switch t {
	case TFloat64:
		out := make([]float64, count)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		return out, nil
	case TFloat32:
		out := make([]float32, count)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return out, nil
	case TInt64:
		out := make([]int64, count)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		return out, nil
	case TInt32:
		out := make([]int32, count)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return out, nil
	case TByte:
		return buf, nil
	}
	return nil, fmt.Errorf("bp: unknown dtype %d", t)
}

// encodeState holds the scratch one encoder reuses across process
// groups so the steady state of Append allocates nothing: the body
// buffer, the payload byte-conversion scratch, and the sorted attr keys.
type encodeState struct {
	body    bytes.Buffer
	scratch []byte
	keys    []string
}

// grow returns an n-byte conversion buffer, reusing the scratch backing
// when it is already wide enough.
func (es *encodeState) grow(n int) []byte {
	if cap(es.scratch) < n {
		es.scratch = es.allocScratch(n)
	}
	return es.scratch[:n]
}

// allocScratch services a scratch miss; steady state reuses the widest
// buffer seen so far.
//
//iocheck:cold
func (es *encodeState) allocScratch(n int) []byte {
	return make([]byte, n)
}

// encodePG serializes a process group body into es.body (valid until the
// next call with the same state).
func encodePG(es *encodeState, pg *ProcessGroup) ([]byte, error) {
	buf := &es.body
	buf.Reset()
	if err := writeString(buf, pg.Group); err != nil {
		return nil, err
	}
	if err := writeU64(buf, uint64(pg.Timestep)); err != nil {
		return nil, err
	}
	if err := writeUvarint(buf, uint64(len(pg.Vars))); err != nil {
		return nil, err
	}
	for i := range pg.Vars {
		v := &pg.Vars[i]
		if err := v.validate(); err != nil {
			return nil, err
		}
		if err := writeString(buf, v.Name); err != nil {
			return nil, err
		}
		buf.WriteByte(byte(v.Type))
		if err := writeUvarint(buf, uint64(len(v.Dims))); err != nil {
			return nil, err
		}
		for _, d := range v.Dims {
			if d < 0 {
				return nil, errNegativeDim(v)
			}
			if err := writeUvarint(buf, uint64(d)); err != nil {
				return nil, err
			}
		}
		if err := writeVarData(buf, es, v); err != nil {
			return nil, err
		}
	}
	if err := writeUvarint(buf, uint64(len(pg.Attrs))); err != nil {
		return nil, err
	}
	es.keys = sortedKeysInto(es.keys[:0], pg.Attrs)
	for _, k := range es.keys {
		if err := writeString(buf, k); err != nil {
			return nil, err
		}
		if err := writeString(buf, pg.Attrs[k]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func decodePG(r io.Reader) (*ProcessGroup, error) {
	pg := &ProcessGroup{}
	var err error
	if pg.Group, err = readString(r); err != nil {
		return nil, err
	}
	ts, err := readU64(r)
	if err != nil {
		return nil, err
	}
	pg.Timestep = int64(ts)
	nvars, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nvars > 1<<16 {
		return nil, fmt.Errorf("bp: implausible var count %d", nvars)
	}
	pg.Vars = make([]Var, nvars)
	for i := range pg.Vars {
		v := &pg.Vars[i]
		if v.Name, err = readString(r); err != nil {
			return nil, err
		}
		tb, err := byteReader{r}.ReadByte()
		if err != nil {
			return nil, err
		}
		v.Type = DType(tb)
		ndims, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		if ndims > 16 {
			return nil, fmt.Errorf("bp: implausible rank %d", ndims)
		}
		v.Dims = make([]int, ndims)
		for j := range v.Dims {
			d, err := readUvarint(r)
			if err != nil {
				return nil, err
			}
			v.Dims[j] = int(d)
		}
		if v.Count() > 1<<28 {
			return nil, fmt.Errorf("bp: var %q too large", v.Name)
		}
		if v.Data, err = readVarData(r, v.Type, v.Count()); err != nil {
			return nil, err
		}
	}
	nattrs, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if nattrs > 1<<16 {
		return nil, fmt.Errorf("bp: implausible attr count %d", nattrs)
	}
	if nattrs > 0 {
		pg.Attrs = make(map[string]string, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			k, err := readString(r)
			if err != nil {
				return nil, err
			}
			v, err := readString(r)
			if err != nil {
				return nil, err
			}
			pg.Attrs[k] = v
		}
	}
	return pg, nil
}

// sortedKeysInto fills dst (reusing its capacity) with m's keys in
// sorted order.
func sortedKeysInto(dst []string, m map[string]string) []string {
	for k := range m {
		//iocheck:allow hotalloc reuses the encoder's key scratch; grows only to the widest attr set seen
		dst = append(dst, k)
	}
	sort.Strings(dst)
	return dst
}

func sortedKeys(m map[string]string) []string {
	return sortedKeysInto(make([]string, 0, len(m)), m)
}
