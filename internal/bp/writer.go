package bp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Writer appends process groups to an io.Writer and records the footer
// index on Close. A Writer must be Closed to produce a readable stream.
type Writer struct {
	cw     countingWriter
	index  []indexEntry
	closed bool
	err    error
	es     encodeState // per-writer encode scratch, reused across Appends
}

// NewWriter starts a BP stream on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := &Writer{cw: countingWriter{w: w}}
	if _, err := bw.cw.Write(headMagic[:]); err != nil {
		return nil, err
	}
	var ver [4]byte
	ver[0] = byte(Version)
	ver[1] = byte(Version >> 8)
	ver[2] = byte(Version >> 16)
	ver[3] = byte(Version >> 24)
	if _, err := bw.cw.Write(ver[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Append writes one process group.
func (w *Writer) Append(pg *ProcessGroup) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("bp: append after close")
	}
	body, err := encodePG(&w.es, pg)
	if err != nil {
		return w.fail(err)
	}
	off := w.cw.off
	if err := writeUvarint(&w.cw, uint64(len(body))); err != nil {
		return w.fail(err)
	}
	if _, err := w.cw.Write(body); err != nil {
		return w.fail(err)
	}
	w.index = append(w.index, indexEntry{
		Group:    pg.Group,
		Timestep: pg.Timestep,
		Offset:   off,
		Size:     w.cw.off - off,
	})
	return nil
}

// Steps returns the number of process groups appended so far.
func (w *Writer) Steps() int { return len(w.index) }

// Close writes the footer index; the stream is complete afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.cw.off
	if err := writeUvarint(&w.cw, uint64(len(w.index))); err != nil {
		return w.fail(err)
	}
	for _, e := range w.index {
		if err := writeString(&w.cw, e.Group); err != nil {
			return w.fail(err)
		}
		if err := writeU64(&w.cw, uint64(e.Timestep)); err != nil {
			return w.fail(err)
		}
		if err := writeU64(&w.cw, uint64(e.Offset)); err != nil {
			return w.fail(err)
		}
		if err := writeU64(&w.cw, uint64(e.Size)); err != nil {
			return w.fail(err)
		}
	}
	if err := writeU64(&w.cw, uint64(indexOff)); err != nil {
		return w.fail(err)
	}
	if _, err := w.cw.Write(tailMagic[:]); err != nil {
		return w.fail(err)
	}
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

// Reader provides random access to a complete BP stream.
type Reader struct {
	r     io.ReadSeeker
	index []indexEntry
}

// NewReader opens a BP stream, reading its footer index. The stream must
// have been produced by a closed Writer.
func NewReader(r io.ReadSeeker) (*Reader, error) {
	var head [8]byte
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("bp: reading header: %w", err)
	}
	if !bytes.Equal(head[:4], headMagic[:]) {
		return nil, errors.New("bp: bad head magic")
	}
	end, err := r.Seek(-12, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("bp: stream too short: %w", err)
	}
	var tail [12]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, err
	}
	if !bytes.Equal(tail[8:], tailMagic[:]) {
		return nil, errors.New("bp: bad tail magic (unclosed writer?)")
	}
	indexOff := int64(uint64(tail[0]) | uint64(tail[1])<<8 | uint64(tail[2])<<16 |
		uint64(tail[3])<<24 | uint64(tail[4])<<32 | uint64(tail[5])<<40 |
		uint64(tail[6])<<48 | uint64(tail[7])<<56)
	if indexOff < 8 || indexOff > end {
		return nil, fmt.Errorf("bp: index offset %d out of range", indexOff)
	}
	if _, err := r.Seek(indexOff, io.SeekStart); err != nil {
		return nil, err
	}
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("bp: implausible index size %d", n)
	}
	br := &Reader{r: r, index: make([]indexEntry, n)}
	for i := range br.index {
		e := &br.index[i]
		if e.Group, err = readString(r); err != nil {
			return nil, err
		}
		ts, err := readU64(r)
		if err != nil {
			return nil, err
		}
		e.Timestep = int64(ts)
		off, err := readU64(r)
		if err != nil {
			return nil, err
		}
		e.Offset = int64(off)
		sz, err := readU64(r)
		if err != nil {
			return nil, err
		}
		e.Size = int64(sz)
	}
	return br, nil
}

// Steps returns the number of process groups in the stream.
func (r *Reader) Steps() int { return len(r.index) }

// StepInfo returns the group name and timestep of step i.
func (r *Reader) StepInfo(i int) (group string, timestep int64, err error) {
	if i < 0 || i >= len(r.index) {
		return "", 0, fmt.Errorf("bp: step %d out of range 0..%d", i, len(r.index)-1)
	}
	return r.index[i].Group, r.index[i].Timestep, nil
}

// ReadStep decodes process group i.
func (r *Reader) ReadStep(i int) (*ProcessGroup, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("bp: step %d out of range 0..%d", i, len(r.index)-1)
	}
	e := r.index[i]
	if _, err := r.r.Seek(e.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	bodyLen, err := readUvarint(r.r)
	if err != nil {
		return nil, err
	}
	return decodePG(io.LimitReader(r.r, int64(bodyLen)))
}

// FindSteps returns the step indices whose group matches (all groups if
// group is empty).
func (r *Reader) FindSteps(group string) []int {
	var out []int
	for i, e := range r.index {
		if group == "" || e.Group == group {
			out = append(out, i)
		}
	}
	return out
}
