package bp

import (
	"bytes"
	"testing"
)

func benchPG(atoms int) *ProcessGroup {
	pos := make([]float64, 3*atoms)
	ids := make([]int64, atoms)
	for i := range ids {
		ids[i] = int64(i)
		pos[3*i] = float64(i)
	}
	return &ProcessGroup{
		Group:    "atoms",
		Timestep: 7,
		Vars: []Var{
			{Name: "pos", Type: TFloat64, Dims: []int{atoms, 3}, Data: pos},
			{Name: "ids", Type: TInt64, Dims: []int{atoms}, Data: ids},
		},
		Attrs: map[string]string{"lammps.atoms": "many"},
	}
}

// BenchmarkEncode measures process-group serialization throughput.
func BenchmarkEncode(b *testing.B) {
	pg := benchPG(4096)
	b.SetBytes(pg.DataBytes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if err := w.Append(pg); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures step read-back throughput.
func BenchmarkDecode(b *testing.B) {
	pg := benchPG(4096)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(pg)
	w.Close()
	data := buf.Bytes()
	b.SetBytes(pg.DataBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadStep(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedSeek measures random step access in a multi-step
// stream.
func BenchmarkIndexedSeek(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	small := benchPG(64)
	for ts := int64(0); ts < 128; ts++ {
		small.Timestep = ts
		if err := w.Append(small); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadStep((i * 37) % 128); err != nil {
			b.Fatal(err)
		}
	}
}
