package bp

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, pgs ...*ProcessGroup) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range pgs {
		if err := w.Append(pg); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTripAllTypes(t *testing.T) {
	pg := &ProcessGroup{
		Group:    "atoms",
		Timestep: 42,
		Vars: []Var{
			{Name: "pos", Type: TFloat64, Dims: []int{2, 3},
				Data: []float64{1, 2, 3, 4, 5, math.Inf(1)}},
			{Name: "vel", Type: TFloat32, Dims: []int{3},
				Data: []float32{0.5, -0.5, float32(math.NaN())}},
			{Name: "ids", Type: TInt64, Dims: []int{3}, Data: []int64{-1, 0, 1 << 40}},
			{Name: "types", Type: TInt32, Dims: []int{3}, Data: []int32{1, 2, -3}},
			{Name: "flags", Type: TByte, Dims: []int{4}, Data: []byte{0, 1, 255, 7}},
		},
		Attrs: map[string]string{"provenance": "bonds,csym", "unit": "lj"},
	}
	r := roundTrip(t, pg)
	if r.Steps() != 1 {
		t.Fatalf("steps %d", r.Steps())
	}
	got, err := r.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != "atoms" || got.Timestep != 42 {
		t.Fatalf("meta %q %d", got.Group, got.Timestep)
	}
	if got.Attrs["provenance"] != "bonds,csym" || got.Attrs["unit"] != "lj" {
		t.Fatalf("attrs %v", got.Attrs)
	}
	pos := got.Var("pos")
	if pos == nil || !reflect.DeepEqual(pos.Dims, []int{2, 3}) {
		t.Fatalf("pos %+v", pos)
	}
	pd := pos.Data.([]float64)
	if pd[0] != 1 || !math.IsInf(pd[5], 1) {
		t.Fatalf("pos data %v", pd)
	}
	vel := got.Var("vel").Data.([]float32)
	if !math.IsNaN(float64(vel[2])) {
		t.Fatalf("vel NaN lost: %v", vel)
	}
	if ids := got.Var("ids").Data.([]int64); ids[2] != 1<<40 {
		t.Fatalf("ids %v", ids)
	}
	if b := got.Var("flags").Data.([]byte); b[2] != 255 {
		t.Fatalf("flags %v", b)
	}
	if got.Var("nope") != nil {
		t.Fatal("missing var should be nil")
	}
}

func TestMultiStepIndexAndFind(t *testing.T) {
	var pgs []*ProcessGroup
	for ts := int64(0); ts < 5; ts++ {
		group := "atoms"
		if ts%2 == 1 {
			group = "checkpoint"
		}
		pgs = append(pgs, &ProcessGroup{
			Group:    group,
			Timestep: ts,
			Vars: []Var{{Name: "x", Type: TFloat64, Dims: []int{1},
				Data: []float64{float64(ts)}}},
		})
	}
	r := roundTrip(t, pgs...)
	if r.Steps() != 5 {
		t.Fatalf("steps %d", r.Steps())
	}
	for i := 0; i < 5; i++ {
		g, ts, err := r.StepInfo(i)
		if err != nil || ts != int64(i) {
			t.Fatalf("step %d: %q %d %v", i, g, ts, err)
		}
		pg, err := r.ReadStep(i)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Var("x").Data.([]float64)[0] != float64(i) {
			t.Fatalf("step %d data wrong", i)
		}
	}
	if got := r.FindSteps("checkpoint"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("FindSteps = %v", got)
	}
	if got := r.FindSteps(""); len(got) != 5 {
		t.Fatalf("FindSteps all = %v", got)
	}
}

func TestRandomAccessOutOfOrder(t *testing.T) {
	var pgs []*ProcessGroup
	for ts := int64(0); ts < 4; ts++ {
		pgs = append(pgs, &ProcessGroup{Group: "g", Timestep: ts,
			Vars: []Var{{Name: "v", Type: TInt32, Dims: []int{1}, Data: []int32{int32(ts)}}}})
	}
	r := roundTrip(t, pgs...)
	for _, i := range []int{3, 0, 2, 1, 3} {
		pg, err := r.ReadStep(i)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Timestep != int64(i) {
			t.Fatalf("step %d read %d", i, pg.Timestep)
		}
	}
	if _, err := r.ReadStep(9); err == nil {
		t.Fatal("out of range read should fail")
	}
	if _, _, err := r.StepInfo(-1); err == nil {
		t.Fatal("negative StepInfo should fail")
	}
}

func TestScalarVar(t *testing.T) {
	pg := &ProcessGroup{Group: "g", Vars: []Var{
		{Name: "n", Type: TInt64, Data: []int64{7}}, // no dims = scalar
	}}
	r := roundTrip(t, pg)
	got, _ := r.ReadStep(0)
	if got.Var("n").Count() != 1 || got.Var("n").Data.([]int64)[0] != 7 {
		t.Fatal("scalar round-trip failed")
	}
}

func TestValidateRejectsBadVars(t *testing.T) {
	cases := []Var{
		{Name: "", Type: TFloat64, Dims: []int{1}, Data: []float64{1}},
		{Name: "x", Type: TFloat64, Dims: []int{2}, Data: []float64{1}},
		{Name: "x", Type: TFloat32, Dims: []int{1}, Data: []float64{1}},
		{Name: "x", Type: TFloat64, Dims: []int{1}, Data: "nope"},
	}
	for i, v := range cases {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		pg := &ProcessGroup{Group: "g", Vars: []Var{v}}
		if err := w.Append(pg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	err := w.Append(&ProcessGroup{Group: "g"})
	if err == nil {
		t.Fatal("append after close should fail")
	}
	// Double close is fine.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsCorruptStreams(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(&ProcessGroup{Group: "g", Vars: []Var{
		{Name: "v", Type: TByte, Dims: []int{3}, Data: []byte{1, 2, 3}}}})
	w.Close()
	good := buf.Bytes()

	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
	if _, err := NewReader(bytes.NewReader(good[:10])); err == nil {
		t.Fatal("truncated stream should fail")
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad head magic should fail")
	}
	bad = append([]byte{}, good...)
	bad[len(bad)-1] = 'X'
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad tail magic should fail")
	}
	// Unclosed writer: no footer.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2)
	w2.Append(&ProcessGroup{Group: "g"})
	if _, err := NewReader(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("unclosed stream should fail")
	}
}

func TestDataBytesAndSteps(t *testing.T) {
	pg := &ProcessGroup{Group: "g", Vars: []Var{
		{Name: "a", Type: TFloat64, Dims: []int{10}, Data: make([]float64, 10)},
		{Name: "b", Type: TInt32, Dims: []int{5}, Data: make([]int32, 5)},
	}}
	if pg.DataBytes() != 100 {
		t.Fatalf("DataBytes = %d, want 100", pg.DataBytes())
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if w.Steps() != 0 {
		t.Fatal("fresh writer should have 0 steps")
	}
	w.Append(pg)
	if w.Steps() != 1 {
		t.Fatal("steps should be 1")
	}
}

func TestFloat64sConversion(t *testing.T) {
	cases := []Var{
		{Name: "f64", Type: TFloat64, Dims: []int{2}, Data: []float64{1, 2}},
		{Name: "f32", Type: TFloat32, Dims: []int{2}, Data: []float32{1, 2}},
		{Name: "i64", Type: TInt64, Dims: []int{2}, Data: []int64{1, 2}},
		{Name: "i32", Type: TInt32, Dims: []int{2}, Data: []int32{1, 2}},
	}
	for _, v := range cases {
		fs, err := v.Float64s()
		if err != nil || len(fs) != 2 || fs[0] != 1 || fs[1] != 2 {
			t.Fatalf("%s: %v %v", v.Name, fs, err)
		}
	}
	b := Var{Name: "b", Type: TByte, Dims: []int{1}, Data: []byte{1}}
	if _, err := b.Float64s(); err == nil {
		t.Fatal("byte var should not convert")
	}
}

func TestDTypeString(t *testing.T) {
	if TFloat64.String() != "float64" || TByte.String() != "byte" {
		t.Fatal("DType strings wrong")
	}
	if DType(99).String() == "" {
		t.Fatal("unknown dtype should still format")
	}
}

// Property: arbitrary float64/int32 payloads and attrs survive a
// write/read round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(fs []float64, is []int32, ts int64, key, val string) bool {
		if len(key) > 100 || len(val) > 100 {
			return true
		}
		pg := &ProcessGroup{
			Group:    "quick",
			Timestep: ts,
			Vars: []Var{
				{Name: "f", Type: TFloat64, Dims: []int{len(fs)}, Data: fs},
				{Name: "i", Type: TInt32, Dims: []int{len(is)}, Data: is},
			},
			Attrs: map[string]string{key: val},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if w.Append(pg) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := r.ReadStep(0)
		if err != nil || got.Timestep != ts || got.Attrs[key] != val {
			return false
		}
		gf := got.Var("f").Data.([]float64)
		gi := got.Var("i").Data.([]int32)
		if len(gf) != len(fs) || len(gi) != len(is) {
			return false
		}
		for i := range fs {
			// Bit-exact comparison (handles NaN).
			if math.Float64bits(gf[i]) != math.Float64bits(fs[i]) {
				return false
			}
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-step streams preserve step count and order for
// arbitrary timestep sequences.
func TestMultiStepOrderProperty(t *testing.T) {
	f := func(stamps []int64) bool {
		if len(stamps) > 50 {
			stamps = stamps[:50]
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, ts := range stamps {
			if w.Append(&ProcessGroup{Group: "g", Timestep: ts}) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil || r.Steps() != len(stamps) {
			return false
		}
		for i, ts := range stamps {
			_, got, err := r.StepInfo(i)
			if err != nil || got != ts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	r := roundTrip(t,
		&ProcessGroup{Group: "atoms", Timestep: 1,
			Vars:  []Var{{Name: "pos", Type: TFloat64, Dims: []int{2, 3}, Data: make([]float64, 6)}},
			Attrs: map[string]string{"provenance.pending": "bonds"}},
		&ProcessGroup{Group: "ckpt", Timestep: 2},
	)
	out, err := Describe(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 step(s)", `group "atoms"`, `group "ckpt"`,
		"pos", "float64", "provenance.pending", `"bonds"`} {
		if !stringsContains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
	// Truncation note appears when maxSteps < steps.
	out, err = Describe(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stringsContains(out, "1 more steps") {
		t.Fatalf("no truncation note:\n%s", out)
	}
}

func stringsContains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

// failWriter errors after n bytes, exercising the writer's error
// latching.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "injected write failure" }

func TestWriterLatchesIOErrors(t *testing.T) {
	// Header fails outright.
	if _, err := NewWriter(&failWriter{left: 2}); err == nil {
		t.Fatal("header write should fail")
	}
	// Append fails mid-body; subsequent operations keep failing.
	w, err := NewWriter(&failWriter{left: 16})
	if err != nil {
		t.Fatal(err)
	}
	pg := &ProcessGroup{Group: "g", Vars: []Var{
		{Name: "v", Type: TFloat64, Dims: []int{64}, Data: make([]float64, 64)}}}
	if err := w.Append(pg); err == nil {
		t.Fatal("append should fail on a broken writer")
	}
	if err := w.Append(pg); err == nil {
		t.Fatal("error must latch")
	}
	if err := w.Close(); err == nil {
		t.Fatal("close must report the latched error")
	}
}

func TestDescribeTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Append(&ProcessGroup{Group: "g", Vars: []Var{
		{Name: "v", Type: TByte, Dims: []int{8}, Data: make([]byte, 8)}}})
	w.Close()
	good := buf.Bytes()
	// Corrupt a body byte that encodes a var count into an implausible
	// value: reader construction still works (index intact), but reading
	// the step fails, which Describe must surface.
	r, err := NewReader(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Describe(r, 0); err != nil {
		t.Fatalf("clean describe failed: %v", err)
	}
}
