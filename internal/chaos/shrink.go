package chaos

import (
	"encoding/json"
	"fmt"

	"repro/internal/scenario"
)

// cloneFaults deep-copies a fault schedule so surgery never aliases the
// original's slices.
func cloneFaults(f *scenario.Faults) *scenario.Faults {
	if f == nil {
		return nil
	}
	out := &scenario.Faults{Seed: f.Seed}
	out.Crashes = append([]scenario.CrashFault(nil), f.Crashes...)
	out.Links = append([]scenario.LinkFault(nil), f.Links...)
	out.Partitions = append([]scenario.PartitionFault(nil), f.Partitions...)
	out.Drops = append([]scenario.DropFault(nil), f.Drops...)
	out.DataDrops = append([]scenario.DropFault(nil), f.DataDrops...)
	out.Stalls = append([]scenario.StallFault(nil), f.Stalls...)
	out.SubCrashes = append([]scenario.SubCrashFault(nil), f.SubCrashes...)
	return out
}

// FaultCount is the flattened number of fault entries in the schedule.
func FaultCount(f *scenario.Faults) int {
	if f == nil {
		return 0
	}
	return len(f.Crashes) + len(f.Links) + len(f.Partitions) +
		len(f.Drops) + len(f.DataDrops) + len(f.Stalls) + len(f.SubCrashes)
}

// removeFault returns a copy of the schedule with flattened entry i
// deleted. Entries are indexed crashes, then links, partitions, drops,
// data drops, stalls, subscriber crashes.
func removeFault(f *scenario.Faults, i int) *scenario.Faults {
	out := cloneFaults(f)
	if out == nil {
		return nil // nil schedule has no entries to remove
	}
	switch {
	case i < len(out.Crashes):
		out.Crashes = append(out.Crashes[:i:i], out.Crashes[i+1:]...)
		return out
	default:
		i -= len(out.Crashes)
	}
	switch {
	case i < len(out.Links):
		out.Links = append(out.Links[:i:i], out.Links[i+1:]...)
		return out
	default:
		i -= len(out.Links)
	}
	switch {
	case i < len(out.Partitions):
		out.Partitions = append(out.Partitions[:i:i], out.Partitions[i+1:]...)
		return out
	default:
		i -= len(out.Partitions)
	}
	switch {
	case i < len(out.Drops):
		out.Drops = append(out.Drops[:i:i], out.Drops[i+1:]...)
		return out
	default:
		i -= len(out.Drops)
	}
	switch {
	case i < len(out.DataDrops):
		out.DataDrops = append(out.DataDrops[:i:i], out.DataDrops[i+1:]...)
		return out
	default:
		i -= len(out.DataDrops)
	}
	switch {
	case i < len(out.Stalls):
		out.Stalls = append(out.Stalls[:i:i], out.Stalls[i+1:]...)
		return out
	default:
		i -= len(out.Stalls)
	}
	out.SubCrashes = append(out.SubCrashes[:i:i], out.SubCrashes[i+1:]...)
	return out
}

// Shrink delta-debugs a failing schedule down to a 1-minimal fault set:
// greedy single-entry removal, repeated to fixpoint, keeping a removal
// only when the reduced schedule still violates the named oracle. Every
// candidate is a full deterministic rerun, so the result is guaranteed
// to still reproduce the failure.
func Shrink(base *scenario.File, faults *scenario.Faults, oracle string, oracles []Oracle) *scenario.Faults {
	cur := cloneFaults(faults)
	for {
		removed := false
		for i := 0; i < FaultCount(cur); {
			cand := removeFault(cur, i)
			if Violates(base, cand, oracle, oracles) {
				cur = cand // keep the removal; same index now names the next entry
				removed = true
				continue
			}
			i++
		}
		if !removed {
			return cur
		}
	}
}

// Regression renders a shrunk schedule as a standalone runnable scenario
// file: the base scenario with the minimal faults swapped in and a chaos
// provenance block naming the oracle the schedule must violate. The
// output is canonical JSON (stable field order, two-space indent) so
// checked-in regressions diff cleanly.
func Regression(base *scenario.File, faults *scenario.Faults, meta scenario.ChaosMeta) ([]byte, error) {
	f := *base
	f.Faults = cloneFaults(faults)
	f.Chaos = &meta
	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: marshal regression: %w", err)
	}
	return append(b, '\n'), nil
}
