package chaos

import (
	"sync"

	"repro/internal/scenario"
)

// SeedResult is one schedule's search outcome.
type SeedResult struct {
	Seed   int64
	Faults *scenario.Faults
	// Violations is empty when every oracle held.
	Violations []Violation
}

// SearchConfig parameterizes a chaos search.
type SearchConfig struct {
	// Base is the scenario every schedule mutates.
	Base *scenario.File
	// SeedStart is the first seed (default 1); Seeds is how many
	// consecutive seeds to explore.
	SeedStart int64
	Seeds     int
	// Gen tunes the schedule generator.
	Gen GenConfig
	// Oracles is the invariant suite (default DefaultOracles).
	Oracles []Oracle
	// Workers bounds concurrent runs (default 1). Each run owns a
	// private engine, so parallelism does not perturb determinism; the
	// result slice is always in seed order.
	Workers int
}

// Search generates and runs one schedule per seed, auditing each against
// the oracle suite. Results are returned in seed order regardless of
// completion order, so a search is reproducible byte-for-byte.
func Search(sc SearchConfig) []SeedResult {
	if sc.Oracles == nil {
		sc.Oracles = DefaultOracles()
	}
	if sc.SeedStart == 0 {
		sc.SeedStart = 1
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = 1
	}
	results := make([]SeedResult, sc.Seeds)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < sc.Seeds; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			seed := sc.SeedStart + int64(i)
			faults := Generate(seed, sc.Base, sc.Gen)
			info := RunSchedule(sc.Base, faults)
			results[i] = SeedResult{Seed: seed, Faults: faults,
				Violations: CheckOracles(info, sc.Oracles)}
		}()
	}
	wg.Wait()
	return results
}
