package chaos

import (
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// TestRegressionsReplay replays every shrunk schedule iochaos has checked
// in. Each file is a minimal reproducer: run as written it must still
// violate the oracle it was filed under, and flipping the mechanism it is
// gated on — fencing for the split-brain reproducers, at-least-once
// delivery for the step-loss reproducers — must clear it.
func TestRegressionsReplay(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/regressions/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in regressions; the corpus must not be empty")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := scenario.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if f.Chaos == nil || f.Chaos.ExpectViolation == "" {
				t.Fatal("regression has no chaos.expectViolation stanza")
			}
			oracle := f.Chaos.ExpectViolation
			if !Violates(f, f.Faults, oracle, DefaultOracles()) {
				t.Fatalf("no longer violates %q: reproducer has rotted "+
					"(or the bug it pins is back under a different shape)", oracle)
			}
			if f.Policy.DisableFencing {
				fixed := *f
				fixed.Policy.DisableFencing = false
				if Violates(&fixed, fixed.Faults, oracle, DefaultOracles()) {
					t.Fatalf("still violates %q with fencing enabled: the fix regressed", oracle)
				}
			}
			if oracle == "delivery" && f.Delivery != nil && f.Delivery.Mode != "at-least-once" {
				fixed := *f
				d := *f.Delivery
				d.Mode = "at-least-once"
				fixed.Delivery = &d
				if Violates(&fixed, fixed.Faults, oracle, DefaultOracles()) {
					t.Fatalf("still violates %q in at-least-once mode: redelivery regressed", oracle)
				}
			}
		})
	}
}
