// Package chaos is a deterministic fault-schedule search harness in the
// style of FoundationDB's simulation testing: seeded random schedules of
// crashes, link degradation, partitions, control-message drops, and
// replica stalls are generated over a base scenario, each schedule runs
// in the deterministic simulator, and a suite of invariant oracles
// audits the completed run (chunk conservation, single-writer epochs,
// D2T same-decision, convergence, heal completeness, trace-DAG
// connectivity). Failing schedules are delta-debugged down to a minimal
// fault set and emitted as runnable scenario JSON, which the regression
// corpus under scenarios/regressions/ replays in go test forever after.
//
// Everything is driven by explicit seeds through sim.NewRand, so a given
// (base scenario, seed) pair always generates the same schedule, runs
// the same virtual-time history, and produces byte-identical results.
package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// chaosRingCap sizes the flight-recorder ring for chaos runs: large
// enough that typical schedules drop nothing, so the trace-DAG oracle
// can audit parent links over the complete span set.
const chaosRingCap = 1 << 18

// RunInfo bundles everything one completed (or failed) run exposes to
// the oracles.
type RunInfo struct {
	// File is the scenario actually run (base with the schedule's faults
	// swapped in).
	File *scenario.File
	// Cfg is the effective, default-filled core configuration.
	Cfg core.Config
	// RT is the runtime after Run returned (oracles may inspect
	// channels, managers, the engine, and the tracer).
	RT *core.Runtime
	// Res is the run result (nil when Err is set).
	Res *core.Result
	// Err is the build or run error, if any.
	Err error
}

// Violation is one oracle failure.
type Violation struct {
	// Oracle names the violated invariant.
	Oracle string
	// Detail describes the specific failure deterministically (no
	// map-order or timing nondeterminism), so identical runs produce
	// byte-identical reports.
	Detail string
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Oracle is one named invariant check over a completed run.
type Oracle struct {
	Name string
	// Check returns one detail string per violation found (nil/empty =
	// the invariant held).
	Check func(info *RunInfo) []string
}

// RunSchedule runs the base scenario with the given fault schedule
// swapped in and returns the run for oracle inspection. The base file is
// not mutated.
func RunSchedule(base *scenario.File, faults *scenario.Faults) *RunInfo {
	f := *base
	f.Faults = faults
	f.Chaos = nil
	info := &RunInfo{File: &f}
	cfg, err := f.ToConfig()
	if err != nil {
		info.Err = err
		return info
	}
	cfg.Trace = &trace.Config{RingCap: chaosRingCap}
	rt, err := core.Build(cfg)
	if err != nil {
		info.Err = err
		return info
	}
	info.RT = rt
	info.Cfg = rt.Config() // effective (default-filled) configuration
	res, err := rt.Run()
	if err != nil {
		info.Err = err
		return info
	}
	info.Res = res
	return info
}

// CheckOracles audits a run against the given oracle suite. A build or
// run error is itself a violation (of the implicit "no-error" oracle);
// the other oracles are skipped in that case, since there is no
// completed run to audit.
func CheckOracles(info *RunInfo, oracles []Oracle) []Violation {
	if info.Err != nil {
		return []Violation{{Oracle: "no-error", Detail: info.Err.Error()}}
	}
	var out []Violation
	for _, o := range oracles {
		for _, d := range o.Check(info) {
			out = append(out, Violation{Oracle: o.Name, Detail: d})
		}
	}
	return out
}

// Violates reports whether running the schedule violates the named
// oracle ("no-error" matches build/run failures).
func Violates(base *scenario.File, faults *scenario.Faults, oracle string, oracles []Oracle) bool {
	info := RunSchedule(base, faults)
	for _, v := range CheckOracles(info, oracles) {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// Summarize renders a fault schedule as one deterministic line for
// reports and test failures.
func Summarize(f *scenario.Faults) string {
	if f == nil {
		return "no faults"
	}
	return fmt.Sprintf("%d crash(es), %d link window(s), %d partition(s), %d drop window(s), %d data-drop window(s), %d stall(s), %d subscriber crash(es)",
		len(f.Crashes), len(f.Links), len(f.Partitions), len(f.Drops), len(f.DataDrops), len(f.Stalls), len(f.SubCrashes))
}
