package chaos

import (
	"repro/internal/scenario"
	"repro/internal/sim"
)

// GenConfig tunes the schedule generator.
type GenConfig struct {
	// MaxFaults bounds the faults per schedule (default 4; every
	// schedule gets at least one).
	MaxFaults int
	// HorizonSec overrides the fault-time horizon (default: the base
	// scenario's run length, steps x output period + drain).
	HorizonSec int
}

// horizonSec derives the base scenario's virtual run length in whole
// seconds, mirroring core.Config.withDefaults.
func horizonSec(base *scenario.File) int {
	period := base.OutputPeriodSec
	if period <= 0 {
		period = 15
	}
	steps := base.Steps
	if steps <= 0 {
		steps = 20
	}
	return int(period*float64(steps) + 4*period)
}

// Generate derives a fault schedule from the seed alone: same (seed,
// base, config) in, same schedule out. Times land on whole seconds and
// probabilities on 5% steps so emitted JSON round-trips exactly.
//
// Targets are drawn from the staging area by index — which deliberately
// includes index 0 (the primary global manager's node) and index 1 (the
// standby's) — plus an occasional simulation-partition node, so crashes
// and partitions exercise the control plane's failover and fencing paths
// as often as the data plane. Simulation-node crashes are biased toward
// node 0 (the producer's aggregation point, i.e. the writer node of the
// first channel) so writer-node crashes mid-pull — the case at-least-once
// delivery must tombstone, not lose — are a first-class target rather
// than a 1-in-256 accident. Descriptor-push drop windows (dataDrops) are
// their own fault class: they exercise the push-retry and spill paths
// without touching the control plane.
func Generate(seed int64, base *scenario.File, gc GenConfig) *scenario.Faults {
	r := sim.NewRand(seed)
	maxFaults := gc.MaxFaults
	if maxFaults <= 0 {
		maxFaults = 4
	}
	horizon := gc.HorizonSec
	if horizon <= 0 {
		horizon = horizonSec(base)
	}
	if horizon < 10 {
		horizon = 10
	}
	staging := base.StagingNodes
	if staging <= 0 {
		staging = 13
	}
	simNodes := base.SimNodes
	if simNodes <= 0 {
		simNodes = 256
	}

	// window picks an integer-second fault window inside the horizon.
	window := func(maxWidth int) (from, until int) {
		from = 1 + r.Intn(horizon-5)
		width := 5 + r.Intn(maxWidth)
		until = from + width
		if until >= horizon {
			until = horizon - 1
		}
		if until <= from {
			until = from + 1
		}
		return from, until
	}
	// On sharded bases the control plane occupies the first staging
	// indexes (meta, then the shard primaries, then their standbys); bias
	// toward that region so meta-manager and shard-manager crashes are
	// fair targets rather than diluted across a large container region.
	// ctl stays 0 for legacy bases, keeping their draw sequence (and thus
	// every historical seed's schedule) byte-identical.
	ctl := 0
	if base.Shards != nil && base.Shards.Count > 1 {
		ctl = 1 + base.Shards.Count*(1+base.Shards.Standbys)
		if ctl > staging {
			ctl = staging
		}
	}
	stagingRef := func() scenario.NodeRef {
		idx := r.Intn(staging)
		if ctl > 0 && r.Intn(100) < 40 {
			idx = r.Intn(ctl)
		}
		return scenario.NodeRef{StagingIndex: &idx}
	}

	out := &scenario.Faults{Seed: seed}
	crashed := map[int]bool{} // avoid double-crashing one node
	n := 1 + r.Intn(maxFaults)

	// Subscriber-fleet bases draw subscriber faults only: single crashes
	// with (or without) reconnect, and reconnect storms that kill a batch
	// of subscribers at once and bring them all back within a narrow
	// window. The SLA acceptance for these scenarios is zero writer stall
	// on every seed — the fleet itself is the chaos target, and node or
	// link faults would legitimately park writers. Legacy bases never
	// enter this branch, so every historical seed's draw sequence (and
	// thus its schedule) stays byte-identical.
	if base.Subscribers != nil && base.Subscribers.Count > 0 {
		subs := base.Subscribers.Count
		for i := 0; i < n; i++ {
			switch pick := r.Intn(100); {
			case pick < 35: // reconnect storm
				k := 2 + r.Intn(14)
				if k > subs {
					k = subs
				}
				at := 1 + r.Intn(horizon-4)
				rec := at + 1 + r.Intn(3)
				for _, idx := range r.Perm(subs)[:k] {
					out.SubCrashes = append(out.SubCrashes, scenario.SubCrashFault{
						Index: idx, AtSec: float64(at), ReconnectAtSec: float64(rec)})
				}
			case pick < 80: // single crash, later reconnect
				at := 1 + r.Intn(horizon-4)
				out.SubCrashes = append(out.SubCrashes, scenario.SubCrashFault{
					Index: r.Intn(subs), AtSec: float64(at),
					ReconnectAtSec: float64(at + 1 + r.Intn(horizon/4+1))})
			default: // permanent crash: the subscriber never comes back
				out.SubCrashes = append(out.SubCrashes, scenario.SubCrashFault{
					Index: r.Intn(subs), AtSec: float64(1 + r.Intn(horizon-2))})
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		switch pick := r.Intn(100); {
		case pick < 25: // node crash
			ref := stagingRef()
			if r.Intn(100) < 20 {
				// A simulation-node crash: half the time the writer node
				// (node 0, where the producer's output buffers live), so
				// schedules routinely kill payloads out from under queued
				// descriptors.
				node := 0
				if r.Intn(2) == 0 {
					node = r.Intn(simNodes)
				}
				ref = scenario.NodeRef{Node: node}
			}
			key := ref.Node
			if ref.StagingIndex != nil {
				key = simNodes + *ref.StagingIndex
			}
			if crashed[key] {
				continue
			}
			crashed[key] = true
			out.Crashes = append(out.Crashes, scenario.CrashFault{
				NodeRef: ref, AtSec: float64(1 + r.Intn(horizon-2))})
		case pick < 45: // link degradation window
			from, until := window(horizon / 3)
			out.Links = append(out.Links, scenario.LinkFault{
				FromSec: float64(from), UntilSec: float64(until),
				LatencyFactor:  float64(1 + r.Intn(8)),
				SlowdownFactor: float64(1 + r.Intn(4))})
		case pick < 65: // partition window over a small staging node set
			from, until := window(horizon / 3)
			pf := scenario.PartitionFault{
				FromSec: float64(from), UntilSec: float64(until)}
			members := 1 + r.Intn(3)
			if members > staging {
				members = staging
			}
			for _, idx := range r.Perm(staging)[:members] {
				idx := idx
				pf.Nodes = append(pf.Nodes, scenario.NodeRef{StagingIndex: &idx})
			}
			out.Partitions = append(out.Partitions, pf)
		case pick < 80: // control-message drop window
			from, until := window(horizon / 2)
			out.Drops = append(out.Drops, scenario.DropFault{
				FromSec: float64(from), UntilSec: float64(until),
				Prob: float64(5+5*r.Intn(10)) / 100})
		case pick < 92: // descriptor-push drop window (data plane)
			from, until := window(horizon / 2)
			out.DataDrops = append(out.DataDrops, scenario.DropFault{
				FromSec: float64(from), UntilSec: float64(until),
				Prob: float64(5+5*r.Intn(10)) / 100})
		default: // replica stall window
			from, until := window(horizon / 4)
			out.Stalls = append(out.Stalls, scenario.StallFault{
				NodeRef: stagingRef(),
				FromSec: float64(from), UntilSec: float64(until)})
		}
	}
	return out
}
