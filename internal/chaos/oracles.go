package chaos

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/datatap"
	"repro/internal/sim"
	"repro/internal/txn"
)

// DefaultOracles is the standard invariant suite: every run, faulted or
// not, must satisfy all of these.
func DefaultOracles() []Oracle {
	return []Oracle{
		{Name: "conservation", Check: checkConservation},
		{Name: "single-writer", Check: checkSingleWriter},
		{Name: "same-decision", Check: checkSameDecision},
		{Name: "convergence", Check: checkConvergence},
		{Name: "heal-completeness", Check: checkHeal},
		{Name: "trace-dag", Check: checkTraceDAG},
		{Name: "delivery", Check: checkDelivery},
		{Name: "dual-ownership", Check: checkDualOwnership},
		{Name: "sub-conservation", Check: checkSubConservation},
		{Name: "sub-sla", Check: checkSubSLA},
	}
}

// checkConservation audits each channel's byte ledger: every byte that
// entered the channel (written or re-emitted by the repair loop) must be
// pulled, invalidated, still queued, or resident in the spill store —
// never silently lost, no matter which nodes crashed mid-transfer. The
// redelivery and spill terms are zero in best-effort mode, so the
// legacy invariant is the same equation.
func checkConservation(info *RunInfo) []string {
	var out []string
	for _, ch := range info.RT.Channels() {
		s := ch.Stats()
		queued := ch.QueuedBytes()
		spilled := ch.SpillResidentBytes()
		if s.BytesWritten+s.BytesRedelivered != s.BytesPulled+s.BytesInvalidated+queued+spilled {
			out = append(out, fmt.Sprintf(
				"channel %s: written %d + redelivered %d != pulled %d + invalidated %d + queued %d + spilled %d",
				ch.Name(), s.BytesWritten, s.BytesRedelivered,
				s.BytesPulled, s.BytesInvalidated, queued, spilled))
		}
	}
	return out
}

// checkDelivery audits the no-step-lost guarantee on runs that opted
// into an explicit delivery contract (a scenario "delivery" section):
//
//   - No container may report an unexplained delivery loss (a refused
//     output write on a live channel) in either mode — best-effort runs
//     that lose steps do so silently at the transport, not the stage.
//   - In at-least-once mode every written step must be acked, resident
//     in the spill store, retained for redelivery, still queued, or
//     covered by an explicit crash tombstone — the per-channel step
//     ledger must balance — and no write may be silently rejected.
//   - In explicit best-effort mode the oracle reports the losses the
//     transport DOES allow (rejected writes, live-writer invalidations),
//     which is how checked-in reproducers demonstrate a loss that
//     flipping the scenario to at-least-once clears.
//
// Runs without a delivery section (the legacy chaos corpus) are skipped:
// they never promised anything about step delivery.
func checkDelivery(info *RunInfo) []string {
	if info.File.Delivery == nil {
		return nil
	}
	var out []string
	for _, l := range info.Res.DeliveryLost {
		out = append(out, fmt.Sprintf(
			"container %s lost step %d (%s)", l.Container, l.Step, l.Reason))
	}
	alo := info.File.Delivery.Mode == "at-least-once"
	for _, d := range info.Res.Delivery {
		if d.Mode == datatap.DeliveryAtLeastOnce {
			if n := d.Unaccounted(); n != 0 {
				out = append(out, fmt.Sprintf(
					"channel %s: %d step(s) unaccounted (written %d, acked %d, crash-lost %d, spilled %d, retained %d)",
					d.Channel, n, d.StepsWritten, d.StepsAcked,
					d.StepsCrashLost, d.SpillResident, d.Retained))
			}
			if d.WriteRejected > 0 {
				out = append(out, fmt.Sprintf(
					"channel %s: %d write(s) silently rejected in at-least-once mode",
					d.Channel, d.WriteRejected))
			}
		} else if !alo && (d.WriteRejected > 0 || d.InvalidatedLive > 0) {
			out = append(out, fmt.Sprintf(
				"channel %s: best-effort transport lost data (%d rejected write(s), %d live invalidation(s))",
				d.Channel, d.WriteRejected, d.InvalidatedLive))
		}
	}
	return out
}

// checkSubConservation audits each streaming subscriber's ledger on runs
// with a subscriber fleet: every sequence published past a subscriber's
// join point must be delivered, knowingly dropped, staged in its buffer,
// pending in the hub's shared tail, or resident in the spill store —
// exact per-subscriber accounting, crashes and reconnects included.
// Runs without a subscribers section never attached a hub and are skipped.
func checkSubConservation(info *RunInfo) []string {
	if info.File.Subscribers == nil {
		return nil
	}
	var out []string
	for _, s := range info.Res.Subscribers {
		if n := s.Unaccounted(); n != 0 {
			out = append(out, fmt.Sprintf(
				"subscriber %s: %d sequence(s) unaccounted (published %d, delivered %d, dropped %d, buffered %d, tail %d, spill %d)",
				s.ID, n, s.Published, s.Delivered, s.Dropped, s.Buffered,
				s.TailPending, s.SpillResident))
		}
	}
	return out
}

// checkSubSLA audits the fan-out's never-block-the-simulation guarantee.
// Publish takes no process handle, so its stall time must be structurally
// zero on every run; and on schedules whose only faults are subscriber
// crashes, the simulation writer must never have parked at all — no
// subscriber, however slow, crashed, or storm-reconnecting, may slow the
// producer. Node, link, and drop faults can legitimately park a writer
// (dead consumers, full queues, push retries), so the writer-stall term
// is audited only on subscriber-only schedules.
func checkSubSLA(info *RunInfo) []string {
	if info.File.Subscribers == nil {
		return nil
	}
	var out []string
	if st := info.Res.SubHub.PublishStall; st != 0 {
		out = append(out, fmt.Sprintf("subscriber fan-out parked writers for %v", st))
	}
	f := info.File.Faults
	subOnly := f == nil || (len(f.Crashes) == 0 && len(f.Links) == 0 &&
		len(f.Partitions) == 0 && len(f.Drops) == 0 && len(f.DataDrops) == 0 &&
		len(f.Stalls) == 0)
	if subOnly && info.Res.WriterStalled != 0 {
		out = append(out, fmt.Sprintf(
			"writer stalled %v on a subscriber-only schedule", info.Res.WriterStalled))
	}
	return out
}

// checkSingleWriter audits the epoch-fencing guarantee: within any one
// (shard, epoch) pair, at most one manager node may issue control rounds.
// Epochs are per-shard — shard 0's epoch 2 and shard 1's epoch 2 are
// unrelated fences — so the key carries the issuing shard (-1 on legacy
// single-manager runs, where the rule degenerates to per-epoch). The
// legacy (DisableFencing) failover violates this after a healed
// partition — primary and promoted standby both round in epoch 1.
func checkSingleWriter(info *RunInfo) []string {
	type fence struct {
		shard int
		epoch int64
	}
	issuers := map[fence]map[int]bool{}
	for _, r := range info.Res.Rounds {
		k := fence{r.Shard, r.Epoch}
		m := issuers[k]
		if m == nil {
			m = map[int]bool{}
			issuers[k] = m
		}
		m[r.Node] = true
	}
	var bad []fence
	for k, nodes := range issuers {
		if len(nodes) > 1 {
			bad = append(bad, k)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].shard != bad[j].shard {
			return bad[i].shard < bad[j].shard
		}
		return bad[i].epoch < bad[j].epoch
	})
	var out []string
	for _, k := range bad {
		var nodes []int
		for n := range issuers[k] {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		where := fmt.Sprintf("epoch %d", k.epoch)
		if k.shard >= 0 {
			where = fmt.Sprintf("shard %d %s", k.shard, where)
		}
		out = append(out, fmt.Sprintf(
			"%s has %d round issuers (nodes %v): split brain", where, len(nodes), nodes))
	}
	return out
}

// checkSameDecision audits D2T atomicity: every participant that decided
// a trade transaction must have decided the same way, and a committed
// transaction admits no aborted participant.
func checkSameDecision(info *RunInfo) []string {
	var out []string
	for i, tr := range info.Res.Trades {
		seen := map[txn.Outcome]bool{}
		for _, o := range tr.Outcomes {
			seen[o] = true
		}
		if len(seen) > 1 {
			out = append(out, fmt.Sprintf(
				"trade %d at %v: participants disagree (%s)", i, tr.T, outcomeSet(tr.Outcomes)))
			continue
		}
		if tr.Outcome == txn.Committed {
			var ranks []int
			for r := range tr.Outcomes {
				ranks = append(ranks, r)
			}
			sort.Ints(ranks)
			for _, r := range ranks {
				if o := tr.Outcomes[r]; o != txn.Committed {
					out = append(out, fmt.Sprintf(
						"trade %d at %v: committed globally but rank %d decided %v",
						i, tr.T, r, o))
					break
				}
			}
		}
	}
	return out
}

func outcomeSet(m map[int]txn.Outcome) string {
	var ranks []int
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	s := ""
	for _, r := range ranks {
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("rank %d: %v", r, m[r])
	}
	return s
}

// checkConvergence audits quiescence: the engine must drain fully (no
// event loop may spin forever), and a fault-free run must finish its
// producer and push steps all the way through the pipeline.
func checkConvergence(info *RunInfo) []string {
	var out []string
	if n := info.RT.Engine().Pending(); n != 0 {
		out = append(out, fmt.Sprintf("engine still has %d pending events after shutdown", n))
	}
	f := info.File.Faults
	faultFree := f == nil || (len(f.Crashes) == 0 && len(f.Links) == 0 &&
		len(f.Partitions) == 0 && len(f.Drops) == 0 && len(f.DataDrops) == 0 &&
		len(f.Stalls) == 0)
	if faultFree {
		if !info.Res.ProducerFinished {
			out = append(out, "fault-free run did not finish the producer")
		}
		if info.Res.Exits == 0 {
			out = append(out, "fault-free run pushed no steps through the pipeline")
		}
	}
	return out
}

// checkHeal audits self-healing completeness: a replica lost to a node
// crash with enough run time remaining must be healed (or explicitly
// degraded), unless something observable explains the silence — the
// container's local manager died too, the container went offline or
// suspect, or the run's network was lossy enough that heal rounds may
// legitimately have been eaten (drops, partitions, degraded links all
// surface as dropped/failed sends). Stall schedules are skipped
// entirely: a frozen manager heals arbitrarily late without that being
// a bug.
func checkHeal(info *RunInfo) []string {
	pol := info.Cfg.Policy
	if pol.DisableSelfHealing {
		return nil
	}
	if f := info.File.Faults; f != nil && len(f.Stalls) > 0 {
		return nil
	}
	rt := info.RT
	if rt.Sharded() && rt.Meta().Dead() {
		// With the steal broker gone, a shard whose pool ran dry cannot
		// borrow nodes: heals legitimately strand mid-protocol.
		return nil
	}
	st := info.Res.FaultStats
	if st.CtlDropped > 0 || st.SendsFailed > 0 {
		return nil
	}
	horizon := sim.Time(info.Cfg.Steps)*info.Cfg.OutputPeriod + info.Cfg.DrainTime
	margin := 2*pol.Interval + 90*sim.Second
	down := map[int]bool{}
	for _, n := range info.Res.DownNodes {
		down[n] = true
	}
	actions := managerActions(info.RT)
	suspects := map[string]bool{}
	for _, s := range info.Res.Suspects {
		suspects[s] = true
	}
	var out []string
	for _, v := range info.Res.CrashVictims {
		if v.Manager || v.T+margin > horizon {
			continue
		}
		c := info.RT.Container(v.Container)
		if c == nil || c.State() == core.StateOffline {
			continue
		}
		if down[c.ManagerNode()] || suspects[v.Container] {
			continue
		}
		if rt.Sharded() {
			// A shard whose acting manager died (primary crashed with no
			// standby, or the standby died too) cannot run heal rounds for
			// its containers.
			if s := rt.Directory().ShardOf(v.Container); s >= 0 && rt.ShardManager(s).Dead() {
				continue
			}
		}
		healed := false
		for _, a := range actions {
			if (a.Kind == "heal" || a.Kind == "degrade") &&
				a.Target == v.Container && a.T >= v.T {
				healed = true
				break
			}
		}
		if !healed {
			out = append(out, fmt.Sprintf(
				"container %s lost a replica to node %d at %v and never healed or degraded",
				v.Container, v.Node, v.T))
		}
	}
	return out
}

// managerActions merges the action logs of every manager instance — the
// legacy primary/standby pair or every shard primary and standby — since
// a dead manager's heal records stay relevant after a failover.
func managerActions(rt *core.Runtime) []core.Action {
	var actions []core.Action
	for _, gm := range rt.Managers() {
		actions = append(actions, gm.Actions()...)
	}
	return actions
}

// checkTraceDAG audits causal-trace connectivity: every recorded span's
// parent must itself be recorded, so a flight-recorder dump never
// contains orphaned causality. Skipped when the ring overflowed (parents
// may have been legitimately evicted).
func checkTraceDAG(info *RunInfo) []string {
	tr := info.RT.Tracer()
	if tr == nil || tr.Dropped() > 0 {
		return nil
	}
	recs := tr.Records()
	ids := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		ids[uint64(r.ID)] = true
	}
	var out []string
	for _, r := range recs {
		if r.Parent != 0 && !ids[uint64(r.Parent)] {
			out = append(out, fmt.Sprintf(
				"span %d (%s/%s) references missing parent %d", r.ID, r.Cat, r.Name, r.Parent))
			if len(out) >= 5 {
				break // enough to localize; the ring can hold thousands
			}
		}
	}
	return out
}

// checkDualOwnership audits the cross-shard steal fence: at the end of a
// run, no staging node may be claimed by two owners. Owners are the
// containers (their replica lists) and the authoritative managers' spare
// pools. "Authoritative" means live, not deposed, not a watching standby,
// AND at the highest epoch among that shard's live candidates — an
// equal-epoch tie is exactly the fencing-disabled split brain, so BOTH
// tied pools count and any overlap surfaces as a violation. The steal
// protocol's failure mode under fencing is a leaked (unowned) node, never
// a doubly-owned one; this oracle pins that asymmetry.
func checkDualOwnership(info *RunInfo) []string {
	owners := map[int][]string{}
	var ids []int
	claim := func(node int, who string) {
		if len(owners[node]) == 0 {
			ids = append(ids, node)
		}
		owners[node] = append(owners[node], who)
	}
	for _, c := range info.RT.Containers() {
		for _, n := range c.Nodes() {
			claim(n.ID, "container "+c.Name())
		}
	}
	mgrs := info.RT.Managers()
	alive := func(gm *core.GlobalManager) bool {
		return !gm.Dead() && !gm.Deposed() && !gm.InStandby()
	}
	maxEpoch := map[int]int64{}
	for _, gm := range mgrs {
		if alive(gm) && gm.Epoch() > maxEpoch[gm.ShardID()] {
			maxEpoch[gm.ShardID()] = gm.Epoch()
		}
	}
	for _, gm := range mgrs {
		if !alive(gm) || gm.Epoch() != maxEpoch[gm.ShardID()] {
			continue
		}
		who := fmt.Sprintf("manager node %d (shard %d, epoch %d) pool",
			gm.Node(), gm.ShardID(), gm.Epoch())
		for _, n := range gm.SpareNodes() {
			claim(n.ID, who)
		}
	}
	sort.Ints(ids)
	var out []string
	for _, id := range ids {
		if os := owners[id]; len(os) > 1 {
			out = append(out, fmt.Sprintf("node %d has %d owners: %v", id, len(os), os))
		}
	}
	return out
}
