package chaos

import (
	"fmt"
	"strings"
	"testing"
)

// TestWorkerPoolVerdictsIdentical mirrors the iochaos CLI's worker pool
// (-seeds 16 -workers 4): the rendered verdict stream — seed, schedule
// summary, and every oracle violation — must be byte-identical whatever
// the worker count. `make race-smoke` runs this under the race detector,
// so cross-worker sharing inside the engine surfaces as a race report
// and any scheduling-dependent divergence as a byte diff.
func TestWorkerPoolVerdictsIdentical(t *testing.T) {
	base := baseFile(t)
	render := func(workers int) string {
		var sb strings.Builder
		results := Search(SearchConfig{Base: base, Seeds: 16,
			Gen: GenConfig{MaxFaults: 4}, Workers: workers})
		for _, r := range results {
			fmt.Fprintf(&sb, "seed %d (%s)", r.Seed, Summarize(r.Faults))
			for _, v := range r.Violations {
				fmt.Fprintf(&sb, " %s", v)
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial := render(1)
	if serial == "" {
		t.Fatal("empty verdict stream")
	}
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != serial {
			t.Errorf("workers=%d verdicts diverge from the serial run:\n%s---\n%s", workers, got, serial)
		}
	}
}
