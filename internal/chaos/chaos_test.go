package chaos

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

func baseFile(t *testing.T) *scenario.File {
	t.Helper()
	f, err := scenario.ReadFile("../../scenarios/chaos-failover.json")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func legacyFile(t *testing.T) *scenario.File {
	t.Helper()
	f, err := scenario.ReadFile("../../scenarios/chaos-legacy.json")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenerateDeterministic(t *testing.T) {
	base := baseFile(t)
	gc := GenConfig{}
	a := Generate(7, base, gc)
	b := Generate(7, base, gc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	c := Generate(8, base, gc)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
	if FaultCount(a) == 0 {
		t.Fatal("seed 7 generated an empty schedule")
	}
}

// TestSearchByteDeterministic is the acceptance's determinism proof: the
// full search — schedules, runs, oracle verdicts — must serialize to the
// same bytes regardless of worker count or repetition.
func TestSearchByteDeterministic(t *testing.T) {
	base := baseFile(t)
	run := func(workers int) []byte {
		res := Search(SearchConfig{Base: base, Seeds: 8, Workers: workers})
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(4)
	if string(serial) != string(parallel) {
		t.Fatalf("results differ across worker counts:\n%s\n%s", serial, parallel)
	}
	again := run(4)
	if string(parallel) != string(again) {
		t.Fatal("repeated parallel search differs from itself")
	}
}

func TestFencedSearchPassesAllOracles(t *testing.T) {
	base := baseFile(t)
	for _, r := range Search(SearchConfig{Base: base, Seeds: 16}) {
		if len(r.Violations) != 0 {
			t.Errorf("seed %d: %v (schedule %s)", r.Seed, r.Violations, Summarize(r.Faults))
		}
	}
}

// TestLegacySearchFindsSplitBrain pins the chaos harness's reason for
// existing: with fencing disabled, the randomized search must find
// schedules where two managers issue rounds in the same epoch.
func TestLegacySearchFindsSplitBrain(t *testing.T) {
	base := legacyFile(t)
	found := false
	for _, r := range Search(SearchConfig{Base: base, Seeds: 16}) {
		for _, v := range r.Violations {
			if v.Oracle == "single-writer" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("16 legacy seeds found no single-writer violation")
	}
}

func TestShrinkToMinimalSchedule(t *testing.T) {
	base := legacyFile(t)
	// Seed 2 is a known failing legacy seed (the checked-in regression
	// came from it). Find its violation, then shrink.
	faults := Generate(2, base, GenConfig{})
	ri := RunSchedule(base, faults)
	vs := CheckOracles(ri, DefaultOracles())
	if len(vs) == 0 {
		t.Fatal("seed 2 no longer violates any oracle under legacy mode")
	}
	min := Shrink(base, faults, vs[0].Oracle, DefaultOracles())
	if got, orig := FaultCount(min), FaultCount(faults); got > orig {
		t.Fatalf("shrink grew the schedule: %d -> %d", orig, got)
	}
	// 1-minimality: removing any single remaining fault must clear the
	// violation.
	for i := 0; i < FaultCount(min); i++ {
		if Violates(base, removeFault(min, i), vs[0].Oracle, DefaultOracles()) {
			t.Fatalf("shrunk schedule is not 1-minimal: fault %d removable", i)
		}
	}
	if !Violates(base, min, vs[0].Oracle, DefaultOracles()) {
		t.Fatal("shrunk schedule no longer violates the oracle")
	}
}

func TestRegressionRoundTrips(t *testing.T) {
	base := legacyFile(t)
	faults := Generate(2, base, GenConfig{})
	meta := scenario.ChaosMeta{Seed: 2, ExpectViolation: "single-writer", Note: "test"}
	blob, err := Regression(base, faults, meta)
	if err != nil {
		t.Fatal(err)
	}
	f, err := scenario.Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("emitted regression does not parse: %v", err)
	}
	if f.Chaos == nil || f.Chaos.Seed != 2 || f.Chaos.ExpectViolation != "single-writer" {
		t.Fatalf("chaos meta lost in round trip: %+v", f.Chaos)
	}
	if !reflect.DeepEqual(f.Faults, faults) {
		t.Fatalf("fault schedule lost in round trip:\n%+v\n%+v", f.Faults, faults)
	}
}

// TestSubConservationOracleCatchesSeededCursorSkip is the smoke test for
// the per-subscriber conservation oracle: with the deliberately seeded
// cursor-skip bug enabled (every n-th spill catch-up read advances the
// cursor without delivering), the oracle must fire; without it, the same
// dashboards run is clean. This proves the oracle audits the ledger
// rather than vacuously passing.
func TestSubConservationOracleCatchesSeededCursorSkip(t *testing.T) {
	base, err := scenario.ReadFile("../../scenarios/dashboards.json")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the fleet so the smoke run stays fast; the Zipf tail still
	// lags far past the shared tail and exercises the spill catch-up
	// path the seeded bug lives on.
	subs := *base.Subscribers
	subs.Count = 24
	base.Subscribers = &subs

	ri := RunSchedule(base, &scenario.Faults{})
	if vs := CheckOracles(ri, DefaultOracles()); len(vs) != 0 {
		t.Fatalf("clean dashboards run violated oracles: %v", vs)
	}

	subs.InjectCursorSkip = 3
	ri = RunSchedule(base, &scenario.Faults{})
	vs := CheckOracles(ri, DefaultOracles())
	found := false
	for _, v := range vs {
		if v.Oracle == "sub-conservation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded cursor-skip bug escaped the sub-conservation oracle; violations: %v", vs)
	}
}
