package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/smartpointer"
)

// Extras returns experiments beyond the paper's own tables and figures:
// sweeps over dimensions the paper discusses but does not plot.
func Extras() []Experiment {
	return []Experiment{
		{"extra-ratios", "Staging:simulation ratio sweep (§III-A)", ExtraRatios},
		{"extra-monitoring", "Monitoring perturbation vs. fidelity (§III-E)", ExtraMonitoring},
		{"extra-branch", "Dynamic pipeline branch timeline (§III-B1)", ExtraBranch},
		{"extra-failover", "Global-manager failover (§III-B)", ExtraFailover},
		{"extra-faults", "Crash injection and container self-healing (§III-B)", ExtraFaults},
	}
}

// AllWithExtras returns the paper artifacts followed by the extras.
func AllWithExtras() []Experiment {
	return append(All(), Extras()...)
}

// ExtraRatios sweeps the staging allotment for a fixed 512-node
// simulation: the paper reports production ratios of 1:512..1:2048 and
// the whole point of management is living inside them. The sweep shows
// the cost of a too-small staging area (application blocking, offlined
// analyses) and the diminishing returns of a large one.
func ExtraRatios(seed int64) (*Output, error) {
	tab := &metrics.Table{Header: []string{"staging nodes", "ratio", "bonds final", "offlined",
		"steps exited (analyzed or provenance-stamped)", "writer blocked (s)"}}
	for _, staging := range []int{10, 16, 24, 40} {
		sizes := map[string]int{"helper": 4, "bonds": 2, "csym": 2, "cna": 1}
		cfg := core.Config{
			SimNodes:     512,
			StagingNodes: staging,
			Specs:        core.SpecsWithBondsModel(smartpointer.ModelParallel),
			Sizes:        sizes,
			Steps:        30,
			CrackStep:    -1,
			Seed:         seed,
		}
		res, err := runScenario(cfg)
		if err != nil {
			return nil, err
		}
		offlined := 0
		for _, st := range res.States {
			if st == "offline" {
				offlined++
			}
		}
		tab.AddRow(staging, fmt.Sprintf("1:%d", 512/staging), res.FinalSizes["bonds"],
			offlined, res.Exits, secs(res.WriterBlocked))
	}
	return &Output{
		ID:       "extra-ratios",
		Title:    "Staging:simulation ratio sweep",
		Sections: []Section{{Name: "ratio sweep (512-node simulation)", Table: tab}},
		Notes: []string{
			"paper: typical staging:simulation ratios range 1:512 to 1:2048; management must deliver analytics inside those confines",
			"measured: below the workload's need the runtime prunes analyses to protect the simulation; above it, extra nodes sit spare",
		},
	}, nil
}

// ExtraMonitoring sweeps the monitoring probe configuration on the Fig. 7
// scenario: rate-limited and pre-aggregated monitoring sends far fewer
// events across the machine while the management outcome stays intact —
// the §III-E flexibility argument.
func ExtraMonitoring(seed int64) (*Output, error) {
	type knob struct {
		name  string
		every sim.Time
		aggN  int
	}
	knobs := []knob{
		{"every sample", 0, 0},
		{"max 1/30s", 30 * sim.Second, 0},
		{"aggregate x4", 0, 4},
	}
	tab := &metrics.Table{Header: []string{"monitoring", "samples captured", "events sent",
		"mgmt actions", "bonds final"}}
	for _, k := range knobs {
		cfg := core.Config{
			SimNodes:           256,
			StagingNodes:       13,
			Sizes:              core.DefaultSizes(13),
			Steps:              20,
			CrackStep:          -1,
			Seed:               seed,
			MonitorSampleEvery: k.every,
			MonitorAggregateN:  k.aggN,
		}
		rt, err := core.Build(cfg)
		if err != nil {
			return nil, err
		}
		res, err := rt.Run()
		if err != nil {
			return nil, err
		}
		var captured, sent int64
		for _, c := range rt.Containers() {
			cc, ss := c.MonitoringTraffic()
			captured += cc
			sent += ss
		}
		tab.AddRow(k.name, captured, sent, len(res.Actions), res.FinalSizes["bonds"])
	}
	return &Output{
		ID:       "extra-monitoring",
		Title:    "Monitoring perturbation vs. fidelity",
		Sections: []Section{{Name: "probe configuration sweep (Fig. 7 scenario)", Table: tab}},
		Notes: []string{
			"paper: monitoring flexibility (which metrics, how often, where processed) exists to minimize perturbation to applications",
			"measured: rate-limiting/aggregation cut cross-machine monitoring traffic while the bottleneck is still found and fixed",
		},
	}, nil
}

// ExtraBranch runs the crack scenario and reports the dynamic-branch
// timeline: CSym active pre-crack, CNA taking over after detection.
func ExtraBranch(seed int64) (*Output, error) {
	specs := core.DefaultSpecs()
	for i := range specs {
		if specs[i].Name == "csym" {
			specs[i].DeactivateOnCrack = true
		}
	}
	cfg := core.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Specs:        specs,
		Sizes:        core.DefaultSizes(13),
		Steps:        20,
		CrackStep:    8,
		Seed:         seed,
	}
	rt, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run()
	if err != nil {
		return nil, err
	}
	type ev struct {
		t    sim.Time
		what string
	}
	evs := []ev{{8 * rt.Config().OutputPeriod, "crack formation first present in output data"}}
	for _, a := range res.Actions {
		evs = append(evs, ev{a.T, fmt.Sprintf("%s %s %s", a.Kind, a.Target, a.Detail)})
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].t < evs[j-1].t; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	tab := &metrics.Table{Header: []string{"t (s)", "event"}}
	for _, e := range evs {
		tab.AddRow(fmt.Sprintf("%.1f", e.t.Seconds()), e.what)
	}
	counts := &metrics.Table{Header: []string{"container", "steps processed"}}
	for _, name := range []string{"csym", "cna"} {
		counts.AddRow(name, rt.Container(name).StepsProcessed())
	}
	return &Output{
		ID:    "extra-branch",
		Title: "Dynamic pipeline branch on crack detection",
		Sections: []Section{
			{Name: "timeline", Table: tab},
			{Name: "work split", Table: counts},
		},
		Notes: []string{
			"paper: if a break is detected the pipeline branches — the pre-break analysis stops and CNA starts reading the Bonds data",
			"measured: CSym handles the pre-crack steps, is deactivated on the CSym-observed break, and CNA (held in reserve) takes over",
		},
	}, nil
}

// ExtraFailover kills the primary global manager mid-run and reports the
// standby's takeover timeline — the §III-B single-point-of-failure story.
func ExtraFailover(seed int64) (*Output, error) {
	cfg := core.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        core.DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         seed,
		StandbyGM:    true,
		Policy:       core.PolicyConfig{KillGMAt: 40 * sim.Second},
	}
	res, err := runScenario(cfg)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{Header: []string{"t (s)", "event"}}
	tab.AddRow("40.0", "primary global manager dies (injected)")
	for _, a := range res.Actions {
		tab.AddRow(fmt.Sprintf("%.1f", a.T.Seconds()),
			fmt.Sprintf("%s %s %s", a.Kind, a.Target, a.Detail))
	}
	sum := &metrics.Table{Header: []string{"metric", "value"}}
	sum.AddRow("steps emitted", res.Emitted)
	sum.AddRow("steps analyzed", res.Exits)
	sum.AddRow("bonds final size", res.FinalSizes["bonds"])
	return &Output{
		ID:    "extra-failover",
		Title: "Global-manager failover",
		Sections: []Section{
			{Name: "timeline", Table: tab},
			{Name: "summary", Table: sum},
		},
		Notes: []string{
			"paper: the global manager is a potential single point of failure; ZooKeeper-style methods can maintain resilience",
			"measured: the standby detects the silent primary via missed heartbeats, rehomes every container's overlay, rebuilds the spare pool from authoritative ownership, and completes the management the primary never performed",
		},
	}, nil
}
