package experiments

import (
	"testing"

	"repro/internal/sim"
)

// Acceptance for the fault-injection work: across three distinct seeds
// the crash scenario behaves deterministically — the local manager
// detects the crash within the watch grace, the restart completes from
// the spare pool, no staging node leaks, and end-to-end latency ends
// below the SLA; the same schedule with self-healing disabled
// demonstrably violates it.
func TestExtraFaultsDeterministicAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{42, 7, 1} {
		baseline, err := runFaultArm(seed, armBaseline)
		if err != nil {
			t.Fatal(err)
		}
		healed, err := runFaultArm(seed, armHealing)
		if err != nil {
			t.Fatal(err)
		}
		gap, err := runFaultArm(seed, armGap)
		if err != nil {
			t.Fatal(err)
		}
		sla := faultSLA(baseline)

		// The baseline is genuinely flat: no latency climb to hide in.
		if baseline.worst > baseline.tail*1.01 {
			t.Fatalf("seed %d: baseline not steady: worst %.2f tail %.2f",
				seed, baseline.worst, baseline.tail)
		}

		// Healing arm: detected within the watch grace plus the restart
		// budget (one watch interval + launch + metadata exchange), the
		// spare consumed, size restored, nothing leaked, SLA met.
		if healed.recovery != "heal" {
			t.Fatalf("seed %d: recovery %q, want heal", seed, healed.recovery)
		}
		grace := extraFaultsCrashAt + 60*sim.Second
		if healed.recoveryAt <= extraFaultsCrashAt || healed.recoveryAt > grace {
			t.Fatalf("seed %d: heal at %v, outside (%v, %v]",
				seed, healed.recoveryAt, extraFaultsCrashAt, grace)
		}
		if healed.res.FinalSizes["bonds"] != 4 || healed.res.Spare != 0 {
			t.Fatalf("seed %d: bonds %d spare %d after heal",
				seed, healed.res.FinalSizes["bonds"], healed.res.Spare)
		}
		if healed.leaked() {
			t.Fatalf("seed %d: staging node leaked after heal", seed)
		}
		if healed.tail > sla {
			t.Fatalf("seed %d: healed tail %.2f above SLA %.2f", seed, healed.tail, sla)
		}

		// Gap arm: no restart protocol ran, the spare is untouched, and
		// the latency climb violates the SLA at run end.
		if gap.recovery != "none" {
			t.Fatalf("seed %d: healing disabled but %q ran", seed, gap.recovery)
		}
		if gap.res.Spare != 1 {
			t.Fatalf("seed %d: gap arm spare %d, want 1", seed, gap.res.Spare)
		}
		if gap.tail <= sla {
			t.Fatalf("seed %d: gap tail %.2f does not violate SLA %.2f",
				seed, gap.tail, sla)
		}

		// Determinism: the full experiment renders identically twice.
		o1, err := ExtraFaults(seed)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := ExtraFaults(seed)
		if err != nil {
			t.Fatal(err)
		}
		if o1.String() != o2.String() {
			t.Fatalf("seed %d: experiment not deterministic:\n%s\nvs\n%s",
				seed, o1.String(), o2.String())
		}
	}
}
