package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/txn"
)

// microRuntime builds a pipeline for the resize microbenchmarks: a small
// simulation, management disabled (the experiment drives the protocol
// directly), and a staging area wide enough for the largest resize.
func microRuntime(seed int64, bondsReplicas, staging int) (*core.Runtime, error) {
	return core.Build(core.Config{
		SimNodes:     16,
		StagingNodes: staging,
		Sizes:        map[string]int{"helper": 4, "bonds": bondsReplicas, "csym": 1, "cna": 1},
		Steps:        3,
		CrackStep:    -1,
		Seed:         seed,
		Policy:       core.PolicyConfig{DisableManagement: true},
	})
}

// resizeSweep holds one microbenchmark point.
type resizeSweep struct {
	n                          int
	total, launch, intra, mgr  sim.Time
	pauseWait, drain, released sim.Time
}

// Fig3 traces the increase protocol's message rounds, the structure the
// paper's Fig. 3 diagrams.
func Fig3(seed int64) (*Output, error) {
	rt, err := microRuntime(seed, 4, 64)
	if err != nil {
		return nil, err
	}
	const n = 8
	var resp *core.IncreaseResp
	var total sim.Time
	rt.Engine().Go("driver", func(p *sim.Proc) {
		p.Sleep(2 * sim.Second)
		nodes := rt.TakeSpare(n)
		start := p.Now()
		resp = rt.GM().Increase(p, "bonds", nodes)
		total = p.Now() - start
	})
	rt.Engine().RunUntil(200 * sim.Second)
	rt.Shutdown()
	if resp == nil {
		return nil, fmt.Errorf("fig3: increase did not complete")
	}
	existing := 4
	writers := 1 // helper's lead replica writes into the bonds channel
	tab := &metrics.Table{Header: []string{"round", "messages", "purpose"}}
	tab.AddRow("1. request", 1, "global manager -> container manager: increase(n)")
	tab.AddRow("2. launch", 1, fmt.Sprintf("aprun-style launch of %d replicas (%.1fs, reported separately)", n, secs(resp.Launch)))
	tab.AddRow("3. register", n, "each new replica -> container manager: contact info")
	tab.AddRow("4. peer exchange", 2*n*existing, "pairwise endpoint metadata with existing replicas")
	tab.AddRow("5. upstream connect", n*writers, "new replicas -> upstream DataTap writers")
	tab.AddRow("6. ack", 1, "container manager -> global manager: done")
	sum := &metrics.Table{Header: []string{"metric", "value"}}
	sum.AddRow("total (s)", secs(total))
	sum.AddRow("launch (s)", secs(resp.Launch))
	sum.AddRow("intra-container (s)", secs(resp.Intra))
	sum.AddRow("manager msgs (s)", secs(total-resp.Launch-resp.Intra))
	return &Output{
		ID:    "fig3",
		Title: "Increase Container Protocol",
		Sections: []Section{
			{Name: "protocol rounds", Table: tab},
			{Name: "measured breakdown (increase by 8)", Table: sum},
		},
		Notes: []string{
			"paper: rounds of control messages distribute end-point contact information and notify starts/completions",
			"measured: the same round structure; intra-container metadata exchange dominates the inherent cost",
		},
	}, nil
}

// Fig4 measures the time to increase a container, swept over the size of
// the increase, with the aprun launch cost reported separately exactly as
// the paper factors it out.
func Fig4(seed int64) (*Output, error) {
	sweeps := []int{1, 2, 4, 8, 16, 32}
	var rows []resizeSweep
	for _, n := range sweeps {
		rt, err := microRuntime(seed, 4, 48)
		if err != nil {
			return nil, err
		}
		n := n
		var row resizeSweep
		rt.Engine().Go("driver", func(p *sim.Proc) {
			p.Sleep(2 * sim.Second)
			nodes := rt.TakeSpare(n)
			start := p.Now()
			resp := rt.GM().Increase(p, "bonds", nodes)
			if resp == nil {
				return
			}
			row = resizeSweep{n: n, total: p.Now() - start,
				launch: resp.Launch, intra: resp.Intra}
			row.mgr = row.total - row.launch - row.intra
		})
		rt.Engine().RunUntil(300 * sim.Second)
		rt.Shutdown()
		if row.n == 0 {
			return nil, fmt.Errorf("fig4: increase by %d did not complete", n)
		}
		rows = append(rows, row)
	}
	tab := &metrics.Table{Header: []string{"increase size", "intra-container (ms)", "manager msgs (ms)", "aprun (s, separate)"}}
	for _, r := range rows {
		tab.AddRow(r.n, r.intra.Milliseconds(), r.mgr.Milliseconds(), secs(r.launch))
	}
	notes := []string{
		"paper: communication within a container during a resize dominates (metadata exchange with new replicas); manager point-to-point messages nearly negligible; aprun (3-27s) dwarfs everything and is factored out",
	}
	last, first := rows[len(rows)-1], rows[0]
	notes = append(notes, fmt.Sprintf(
		"measured: intra-container grows %.2fms -> %.2fms across the sweep; manager msgs stay ~%.2fms; aprun %0.0f-%0.0fx larger",
		first.intra.Milliseconds(), last.intra.Milliseconds(), last.mgr.Milliseconds(),
		float64(first.launch)/float64(first.intra+first.mgr),
		float64(last.launch)/float64(last.intra+last.mgr)))
	return &Output{
		ID:       "fig4",
		Title:    "Time to Increase Container Size",
		Sections: []Section{{Name: "increase sweep", Table: tab}},
		Notes:    notes,
	}, nil
}

// fig5Runtime builds an *overloaded* pipeline so the decrease pays its
// real costs: the bonds replicas are busy mid-step when the decrease
// arrives (victim drain), and the upstream writer is mid-write against a
// nearly full queue (pause wait). Helper and CSym get cheap cost models so
// only Bonds is stressed.
func fig5Runtime(seed int64, bondsReplicas int) (*core.Runtime, error) {
	specs := core.DefaultSpecs()
	for i := range specs {
		switch specs[i].Name {
		case "helper":
			specs[i].Cost.Base = 200 * sim.Millisecond
		case "csym":
			specs[i].Cost.Base = 400 * sim.Millisecond
		}
	}
	// 64-node scale: bonds serial service = 48s * (1/4)^2 = 3s. Drive
	// arrivals 20% faster than the container sustains so it stays busy.
	period := sim.Time(float64(3*sim.Second) / float64(bondsReplicas) / 1.2)
	steps := int(150*sim.Second/period) + 1
	return core.Build(core.Config{
		SimNodes:     64,
		StagingNodes: 48,
		Specs:        specs,
		Sizes:        map[string]int{"helper": 4, "bonds": bondsReplicas, "csym": 4, "cna": 1},
		Steps:        steps,
		OutputPeriod: period,
		QueueCap:     4,
		CrackStep:    -1,
		Seed:         seed,
		Policy:       core.PolicyConfig{DisableManagement: true},
	})
}

// Fig5 measures the time to decrease a container under load: the
// dominant costs are waiting for the upstream DataTap writers to pause
// and draining the victims' in-flight steps (no timestep may be lost).
func Fig5(seed int64) (*Output, error) {
	sweeps := []int{1, 2, 4, 8, 16, 32}
	var rows []resizeSweep
	for _, n := range sweeps {
		rt, err := fig5Runtime(seed, n+2)
		if err != nil {
			return nil, err
		}
		n := n
		var row resizeSweep
		rt.Engine().Go("driver", func(p *sim.Proc) {
			p.Sleep(60 * sim.Second) // deep into the overloaded regime
			start := p.Now()
			resp := rt.GM().Decrease(p, "bonds", n)
			if resp == nil {
				return
			}
			row = resizeSweep{n: n, total: p.Now() - start,
				pauseWait: resp.PauseWait, drain: resp.Drain}
		})
		rt.Engine().RunUntil(120 * sim.Second)
		rt.Shutdown()
		if row.n == 0 {
			return nil, fmt.Errorf("fig5: decrease by %d did not complete", n)
		}
		rows = append(rows, row)
	}
	tab := &metrics.Table{Header: []string{"decrease size", "total (s)", "writer pause wait (s)", "victim drain (s)"}}
	for _, r := range rows {
		tab.AddRow(r.n, secs(r.total), secs(r.pauseWait), secs(r.drain))
	}
	return &Output{
		ID:       "fig5",
		Title:    "Time to Decrease Container Size",
		Sections: []Section{{Name: "decrease sweep", Table: tab}},
		Notes: []string{
			"paper: the largest overhead source is waiting for the replicas' upstream DataTap writers to pause; the pause has little impact on flow because writes are asynchronous",
			"measured: pause+drain dominate the decrease and grow mildly with the number of replicas removed (the drain is the max over the victims' in-flight remainders)",
		},
	}, nil
}

// Fig6 sweeps the D2T transaction protocol over writer:reader core
// ratios on the RedSky machine model.
func Fig6(seed int64) (*Output, error) {
	type ratio struct{ w, r int }
	ratios := []ratio{{128, 1}, {256, 2}, {512, 4}, {1024, 8}, {2048, 16}}
	tab := &metrics.Table{Header: []string{"writers:readers", "time (ms)", "messages", "tree depth"}}
	var first, last sim.Time
	for i, rt := range ratios {
		eng := sim.NewEngine(seed)
		mc := cluster.RedSky()
		mach := cluster.New(eng, mc)
		tx, err := txn.New(eng, mach, txn.Config{Writers: rt.w, Readers: rt.r})
		if err != nil {
			return nil, err
		}
		var st txn.Stats
		eng.Go("driver", func(p *sim.Proc) { st = tx.Run(p) })
		eng.Run()
		if st.Outcome != txn.Committed {
			return nil, fmt.Errorf("fig6: %d:%d aborted", rt.w, rt.r)
		}
		tab.AddRow(fmt.Sprintf("%d:%d", rt.w, rt.r), st.Duration.Milliseconds(),
			st.Messages, st.Depth)
		if i == 0 {
			first = st.Duration
		}
		last = st.Duration
	}
	return &Output{
		ID:       "fig6",
		Title:    "Microbenchmark of Resilience Protocol Overhead",
		Sections: []Section{{Name: "writer:reader ratio sweep", Table: tab}},
		Notes: []string{
			"paper: the solution provides good scalability across writer:reader core ratios",
			fmt.Sprintf("measured: 16x participant growth costs %.2fx in transaction time (sub-coordination trees)",
				float64(last)/float64(first)),
		},
	}, nil
}
