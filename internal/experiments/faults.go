package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// extraFaultsCrashAt is when the injected crash kills the Bonds replica.
const extraFaultsCrashAt = 90 * sim.Second

// faultArm is one run of the crash scenario, reduced to what the
// comparison table and the acceptance test need.
type faultArm struct {
	res *core.Result
	cfg core.Config
	// recovery is the self-healing action ("heal" or "degrade", with its
	// time) or "none".
	recovery   string
	recoveryAt sim.Time
	// worst and tail summarize the e2e latency series: the worst sample
	// of the whole run and the mean of the last three samples.
	worst float64
	tail  float64
}

// faultArmMode selects what runFaultArm injects.
type faultArmMode int

const (
	armBaseline faultArmMode = iota // no faults: the SLA reference
	armHealing                      // crash + replica-restart protocol
	armGap                          // crash, self-healing disabled
)

// runFaultArm runs a 256-simulation-node pipeline provisioned so the
// fault-free end-to-end latency is flat (Bonds at 4 replicas, one spare
// staging node) and, in the fault arms, crashes a non-manager Bonds
// replica mid-run. Management is disabled in every arm so the only
// difference between them is the replica-restart protocol.
func runFaultArm(seed int64, mode faultArmMode) (*faultArm, error) {
	cfg := core.Config{
		SimNodes:     256,
		StagingNodes: 14,
		Sizes:        map[string]int{"helper": 4, "bonds": 4, "csym": 2, "cna": 3},
		Steps:        40,
		CrackStep:    -1,
		Seed:         seed,
		OutputPeriod: 15 * sim.Second,
		Policy: core.PolicyConfig{
			DisableManagement:  true,
			DisableSelfHealing: mode == armGap,
		},
	}
	if mode != armBaseline {
		// Staging IDs start at SimNodes: helper holds 256..259, bonds 260
		// (its manager), 261, 262 and 263. Kill a non-manager replica.
		cfg.Faults = &fault.Config{
			Crashes: []fault.Crash{{Node: 261, At: extraFaultsCrashAt}},
		}
	}
	res, err := runScenario(cfg)
	if err != nil {
		return nil, err
	}
	arm := &faultArm{res: res, cfg: cfg, recovery: "none"}
	for _, a := range res.Actions {
		if a.Kind == "heal" || a.Kind == "degrade" {
			arm.recovery, arm.recoveryAt = a.Kind, a.T
			break
		}
	}
	pts := res.Recorder.Series("e2e").Points
	n := 0
	for _, pt := range pts {
		if pt.V > arm.worst {
			arm.worst = pt.V
		}
	}
	for i := len(pts) - 3; i < len(pts); i++ {
		if i >= 0 {
			arm.tail += pts[i].V
			n++
		}
	}
	if n > 0 {
		arm.tail /= float64(n)
	}
	return arm, nil
}

// leaked reports whether any staging node went unaccounted: every node
// must be owned, spare, or crashed. (With self-healing disabled the dead
// node is never reaped from its container, so it is double-counted and
// this deliberately reports true: the gap arm leaks by construction.)
func (a *faultArm) leaked() bool {
	total := a.res.Spare
	for _, n := range a.res.FinalSizes {
		total += n
	}
	for _, id := range a.res.DownNodes {
		if id >= a.cfg.SimNodes {
			total++
		}
	}
	return total != a.cfg.StagingNodes
}

// faultSLA is the end-to-end deadline the fault arms are judged against:
// the fault-free run's steady-state latency plus a 20% margin. (One
// output period is not meaningful here — e2e spans the whole multi-stage
// pipeline, so its floor is several periods even when every container
// keeps its per-step deadline.)
func faultSLA(baseline *faultArm) float64 { return baseline.tail * 1.2 }

// ExtraFaults crashes a Bonds replica mid-run and compares self-healing
// on versus off against a fault-free baseline: with the replica-restart
// protocol the local manager detects the crash within one watch
// interval, obtains the spare node from the global manager, relaunches,
// and end-to-end latency holds at (or re-converges to) the baseline
// floor; without it the container limps on the surviving replicas and
// the latency climb persists to run end, violating the SLA.
func ExtraFaults(seed int64) (*Output, error) {
	arms := make(map[faultArmMode]*faultArm, 3)
	for _, mode := range []faultArmMode{armBaseline, armHealing, armGap} {
		a, err := runFaultArm(seed, mode)
		if err != nil {
			return nil, err
		}
		arms[mode] = a
	}
	sla := faultSLA(arms[armBaseline])
	rows := []struct {
		name string
		mode faultArmMode
	}{
		{"none (baseline)", armBaseline},
		{"crash, healing on", armHealing},
		{"crash, healing off", armGap},
	}
	tab := &metrics.Table{Header: []string{"arm", "recovery", "bonds final",
		"worst e2e (s)", "final e2e (s)", "SLA (s)", "meets SLA at end"}}
	for _, r := range rows {
		a := arms[r.mode]
		recovery := a.recovery
		if recovery != "none" {
			recovery = fmt.Sprintf("%s @ %.1fs", recovery, a.recoveryAt.Seconds())
		}
		tab.AddRow(r.name, recovery, a.res.FinalSizes["bonds"],
			fmt.Sprintf("%.2f", a.worst), fmt.Sprintf("%.2f", a.tail),
			fmt.Sprintf("%.1f", sla), a.tail <= sla)
	}
	acct := &metrics.Table{Header: []string{"arm", "steps emitted", "steps exited",
		"spare", "down nodes", "staging nodes leaked"}}
	for _, r := range rows {
		a := arms[r.mode]
		acct.AddRow(r.name, a.res.Emitted, a.res.Exits,
			a.res.Spare, fmt.Sprint(a.res.DownNodes), a.leaked())
	}
	return &Output{
		ID:    "extra-faults",
		Title: "Crash injection and container self-healing",
		Sections: []Section{
			{Name: fmt.Sprintf("SLA comparison (crash of a Bonds replica at t=%.0fs)",
				extraFaultsCrashAt.Seconds()), Table: tab},
			{Name: "accounting", Table: acct},
		},
		Notes: []string{
			"paper: managed containers must keep analytics within per-step deadlines despite the shared, failure-prone staging area",
			"measured: the local manager detects the dead replica within one watch interval, consumes the spare via the global manager, and e2e latency stays at the baseline floor; with healing disabled the climb persists to run end",
			"the step in flight on the dying node can be lost at the crash instant (at-most-once delivery across node death); every other step exits",
		},
	}, nil
}
