package experiments

import (
	"fmt"
	"strings"

	"repro/internal/lammps"
	"repro/internal/metrics"
	"repro/internal/smartpointer"
)

// Table1 reproduces the paper's Table I from the components' declared
// characteristics.
func Table1(seed int64) (*Output, error) {
	tab := &metrics.Table{Header: []string{"", "Complexity", "Compute Model", "Dynamic Branching"}}
	for _, row := range smartpointer.Table1() {
		var models []string
		for _, m := range row.Models {
			models = append(models, m.String())
		}
		branching := "No"
		if row.DynamicBranching {
			branching = "Yes"
		}
		tab.AddRow(row.Kind.String(), row.Complexity, strings.Join(models, ", "), branching)
	}
	return &Output{
		ID:       "table1",
		Title:    "Characteristics for SmartPointer Analysis Actions",
		Sections: []Section{{Name: "Table I", Table: tab}},
		Notes: []string{
			"paper: Helper O(n)/Tree, Bonds O(n^2)/Serial+RR+Parallel with branching, CSym O(n)/Serial+RR, CNA O(n^3)/Serial+RR",
			"measured: identical — the rows are the components' declared metadata, asserted in unit tests",
		},
	}, nil
}

// Table2 reproduces the weak-scaling workload sizes.
func Table2(seed int64) (*Output, error) {
	tab := &metrics.Table{Header: []string{"Node Count", "Atoms", "Data size (MB)", "paper (MB)"}}
	paper := map[int]float64{256: 67, 512: 134.6, 1024: 269.2}
	for _, s := range lammps.Table2() {
		tab.AddRow(s.Nodes, s.AtomCount, fmt.Sprintf("%.1f", s.MB()), fmt.Sprintf("%.1f", paper[s.Nodes]))
	}
	return &Output{
		ID:       "table2",
		Title:    "Experiment Data Sizes",
		Sections: []Section{{Name: "Table II", Table: tab}},
		Notes: []string{
			"paper: 256→8,819,989 atoms→67 MB; 512→17,639,979→134.6 MB; 1024→35,279,958→269.2 MB",
			"measured: exact atom counts; 8 bytes/atom reproduces the MB column (the 256-node row is rounded to integer MB in the paper)",
		},
	}, nil
}
