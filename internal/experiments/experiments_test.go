package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(42)
			if err != nil {
				t.Fatal(err)
			}
			if out.ID != e.ID {
				t.Fatalf("output id %q", out.ID)
			}
			if len(out.Sections) == 0 {
				t.Fatal("no sections")
			}
			for _, sec := range out.Sections {
				if len(sec.Table.Rows) == 0 {
					t.Fatalf("section %q empty", sec.Name)
				}
			}
			if s := out.String(); !strings.Contains(s, e.ID) {
				t.Fatal("String missing id")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig7"); !ok {
		t.Fatal("fig7 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestTable1RowsMatchPaper(t *testing.T) {
	out, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	tab := out.Sections[0].Table
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[1][0] != "Bonds" || tab.Rows[1][1] != "O(n^2)" || tab.Rows[1][3] != "Yes" {
		t.Fatalf("bonds row %v", tab.Rows[1])
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	out, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	tab := out.Sections[0].Table
	if tab.Rows[0][1] != "8819989" || tab.Rows[2][1] != "35279958" {
		t.Fatalf("atom columns %v", tab.Rows)
	}
}

func TestFig4IntraDominatesAndGrows(t *testing.T) {
	out, err := Fig4(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sections[0].Table.Rows
	var first, last float64
	for i, r := range rows {
		var intra, mgr float64
		if _, err := sscan(r[1], &intra); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[2], &mgr); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = intra
		}
		if i == len(rows)-1 {
			last = intra
			// The Fig. 4 claims: intra-container dominates manager
			// messages at the largest sweep point.
			if intra <= mgr {
				t.Fatalf("intra %.3fms should dominate mgr %.3fms", intra, mgr)
			}
		}
	}
	if last <= first {
		t.Fatalf("intra cost should grow with increase size: %.3f -> %.3f", first, last)
	}
}

func TestFig5PauseAndDrainDominate(t *testing.T) {
	out, err := Fig5(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sections[0].Table.Rows
	for _, r := range rows {
		var total, pause, drain float64
		sscan(r[1], &total)
		sscan(r[2], &pause)
		sscan(r[3], &drain)
		if total <= 0 {
			t.Fatalf("row %v: no cost", r)
		}
		if (pause+drain)/total < 0.5 {
			t.Fatalf("row %v: pause+drain should dominate", r)
		}
	}
}

func TestFig6Scales(t *testing.T) {
	out, err := Fig6(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sections[0].Table.Rows
	var first, last float64
	sscan(rows[0][1], &first)
	sscan(rows[len(rows)-1][1], &last)
	if last <= first {
		t.Fatalf("duration should grow: %v -> %v", first, last)
	}
	if last > 8*first {
		t.Fatalf("16x participants cost %.1fx: poor scalability", last/first)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestExtrasRun(t *testing.T) {
	for _, e := range Extras() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(42)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Sections) == 0 || len(out.Sections[0].Table.Rows) == 0 {
				t.Fatal("empty output")
			}
		})
	}
	if len(AllWithExtras()) != len(All())+len(Extras()) {
		t.Fatal("AllWithExtras composition")
	}
	if _, ok := ByID("extra-branch"); !ok {
		t.Fatal("extras not addressable by id")
	}
}

func TestExtraMonitoringReducesTraffic(t *testing.T) {
	out, err := ExtraMonitoring(42)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sections[0].Table.Rows
	var full, limited float64
	sscan(rows[0][2], &full)
	sscan(rows[1][2], &limited)
	if limited >= full {
		t.Fatalf("rate limiting did not reduce traffic: %v vs %v", limited, full)
	}
	// Management outcome identical (same action count, same final size).
	if rows[0][3] != rows[1][3] || rows[0][4] != rows[1][4] {
		t.Fatalf("management outcome changed: %v vs %v", rows[0], rows[1])
	}
}

func TestExtraRatiosProtectsSimulation(t *testing.T) {
	out, err := ExtraRatios(42)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Sections[0].Table.Rows
	// The smallest staging area offlines analyses; the largest does not.
	var smallOff, bigOff float64
	sscan(rows[0][3], &smallOff)
	sscan(rows[len(rows)-1][3], &bigOff)
	if smallOff == 0 {
		t.Fatal("tiny staging area should force offlining")
	}
	if bigOff != 0 {
		t.Fatal("ample staging area should keep everything online")
	}
}
