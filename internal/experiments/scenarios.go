package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/smartpointer"
	"repro/internal/trace"
)

// Fig7Config returns the 256-simulation-node / 13-staging-node scenario.
func Fig7Config(seed int64) core.Config {
	return core.Config{
		SimNodes:     256,
		StagingNodes: 13,
		Sizes:        core.DefaultSizes(13),
		Steps:        20,
		CrackStep:    -1,
		Seed:         seed,
	}
}

// Fig8Config returns the 512/24 scenario (4 spare staging nodes).
func Fig8Config(seed int64) core.Config {
	return core.Config{
		SimNodes:     512,
		StagingNodes: 24,
		Specs:        core.SpecsWithBondsModel(smartpointer.ModelParallel),
		Sizes:        core.DefaultSizes(24),
		Steps:        20,
		CrackStep:    -1,
		Seed:         seed,
	}
}

// Fig9Config returns the 1024/24 scenario (4 spare staging nodes); the
// run is long enough for the overflow-risk recognition to fire mid-run.
func Fig9Config(seed int64) core.Config {
	return core.Config{
		SimNodes:     1024,
		StagingNodes: 24,
		Specs:        core.SpecsWithBondsModel(smartpointer.ModelParallel),
		Sizes:        core.DefaultSizes(24),
		Steps:        60,
		CrackStep:    -1,
		Seed:         seed,
		Policy:       core.PolicyConfig{OfflinePatience: 10},
	}
}

// traceDir, set via EnableTracing, makes every scenario run record a causal
// trace: the Chrome trace_event export lands in that directory (numbered in
// run order) and the per-span durations are folded into the run's metrics
// recorder as trace.* series.
var (
	traceDir string
	traceSeq int
)

// EnableTracing turns on causal tracing for all subsequent scenario runs,
// exporting one Chrome trace JSON per run into dir.
func EnableTracing(dir string) { traceDir = dir }

func runScenario(cfg core.Config) (*core.Result, error) {
	if traceDir != "" && cfg.Trace == nil {
		cfg.Trace = &trace.Config{}
	}
	rt, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run()
	if err != nil {
		return nil, err
	}
	if traceDir != "" {
		traceSeq++
		recs := rt.Tracer().Records()
		trace.ExportSeries(res.Recorder, recs)
		path := filepath.Join(traceDir, fmt.Sprintf("run%03d.trace.json", traceSeq))
		f, ferr := os.Create(path)
		if ferr != nil {
			return nil, ferr
		}
		if werr := trace.WriteChrome(f, recs); werr != nil {
			f.Close()
			return nil, werr
		}
		if cerr := f.Close(); cerr != nil {
			return nil, cerr
		}
	}
	return res, nil
}

// scenarioOutput renders a scenario run the way the paper's event plots
// do: per-step container latencies over time, management action markers,
// and a run summary.
func scenarioOutput(id, title string, res *core.Result, containers []string) *Output {
	series := &metrics.Table{Header: []string{"t (s)", "container", "per-step latency (s)"}}
	for _, c := range containers {
		s := res.Recorder.Series("latency." + c)
		for _, pt := range s.Points {
			series.AddRow(fmt.Sprintf("%.1f", pt.T.Seconds()), c, pt.V)
		}
	}
	actions := &metrics.Table{Header: []string{"t (s)", "action", "target", "n", "detail"}}
	for _, a := range res.Actions {
		actions.AddRow(fmt.Sprintf("%.1f", a.T.Seconds()), a.Kind, a.Target, a.N, a.Detail)
	}
	summary := &metrics.Table{Header: []string{"metric", "value"}}
	summary.AddRow("steps emitted", res.Emitted)
	summary.AddRow("steps exited pipeline", res.Exits)
	summary.AddRow("steps dropped at offline", res.Dropped)
	summary.AddRow("simulation writer blocked (s)", secs(res.WriterBlocked))
	summary.AddRow("final spare nodes", res.Spare)
	for _, c := range containers {
		summary.AddRow("final "+c, fmt.Sprintf("%s, %d nodes", res.States[c], res.FinalSizes[c]))
	}
	return &Output{
		ID:    id,
		Title: title,
		Sections: []Section{
			{Name: "per-step container latency", Table: series},
			{Name: "management actions", Table: actions},
			{Name: "summary", Table: summary},
		},
	}
}

var pipelineContainers = []string{"helper", "bonds", "csym", "cna"}

// Fig7 reproduces the 256/13 experiment: Bonds is the bottleneck; with no
// spare staging nodes the global manager decreases the over-provisioned
// Helper and grows Bonds, whose latency then settles (with a transient
// from the DataTap writer pause).
func Fig7(seed int64) (*Output, error) {
	res, err := runScenario(Fig7Config(seed))
	if err != nil {
		return nil, err
	}
	out := scenarioOutput("fig7", "Events emitted for 256 simulation and 13 staging nodes",
		res, pipelineContainers)
	out.Notes = []string{
		"paper: no spare resources; the global manager first issues a decrease to LAMMPS Helper (over-provisioned), then increases Bonds; Bonds latency decreases; a transient latency increase follows the resize (DataTap pause)",
		noteActions(res),
	}
	return out, nil
}

// Fig8 reproduces the 512/24 experiment: insufficient resources, but the
// run completes before any queue overflow.
func Fig8(seed int64) (*Output, error) {
	res, err := runScenario(Fig8Config(seed))
	if err != nil {
		return nil, err
	}
	out := scenarioOutput("fig8", "Events emitted for 512 simulation and 24 staging nodes",
		res, pipelineContainers)
	maxQ := 0.0
	for _, v := range res.Recorder.Series("queue.bonds").Values() {
		if v > maxQ {
			maxQ = v
		}
	}
	out.Notes = []string{
		"paper: Bonds converges toward the ideal rate; resources insufficient, but the simulation completes before any queue overflow blocks the pipeline; 4 spare staging nodes at the start",
		fmt.Sprintf("measured: %s; peak bonds backlog %.0f steps, nothing offline, 0 dropped", noteActions(res), maxQ),
	}
	return out, nil
}

// Fig9 reproduces the 1024/24 experiment: after the spares are consumed
// the staging area cannot sustain Bonds; the runtime recognizes the
// overflow risk and moves Bonds and CSym offline (inactive CNA keeps its
// reservation), with provenance stamped upstream.
func Fig9(seed int64) (*Output, error) {
	res, err := runScenario(Fig9Config(seed))
	if err != nil {
		return nil, err
	}
	out := scenarioOutput("fig9", "Events emitted for 1024 simulation and 24 staging nodes",
		res, pipelineContainers)
	out.Notes = []string{
		"paper: the runtime recognized the situation and moved the Bonds and Csym containers offline; 4 spare staging nodes at the start",
		fmt.Sprintf("measured: %s; provenance on upstream disk output: %q; %d queued steps dropped",
			noteActions(res), res.Provenance["helper"], res.Dropped),
	}
	return out, nil
}

// Fig10 reports the end-to-end pipeline latency of the Fig9 run: rising
// while data queues behind the bottleneck, then dropping sharply once the
// bottleneck is pruned from the data path.
func Fig10(seed int64) (*Output, error) {
	res, err := runScenario(Fig9Config(seed))
	if err != nil {
		return nil, err
	}
	series := &metrics.Table{Header: []string{"t (s)", "end-to-end latency (s)"}}
	for _, pt := range res.Recorder.Series("e2e").Points {
		series.AddRow(fmt.Sprintf("%.1f", pt.T.Seconds()), pt.V)
	}
	actions := &metrics.Table{Header: []string{"t (s)", "action", "target"}}
	for _, a := range res.Actions {
		actions.AddRow(fmt.Sprintf("%.1f", a.T.Seconds()), a.Kind, a.Target)
	}
	return &Output{
		ID:    "fig10",
		Title: "End-to-End Latency",
		Sections: []Section{
			{Name: "per-step end-to-end latency", Table: series},
			{Name: "management actions", Table: actions},
		},
		Notes: []string{
			"paper: despite increasing the bottleneck container the end-to-end latency keeps rising (queueing); once spares are exhausted and Bonds goes offline, a sharp decrease follows as the bottleneck is pruned from the data path",
			"measured: same shape — rising pre-offline, then a drop of more than an order of magnitude to the Helper->disk steady state",
		},
	}, nil
}

func noteActions(res *core.Result) string {
	s := "measured actions:"
	for _, a := range res.Actions {
		s += fmt.Sprintf(" [%s %s %s]", a.T, a.Kind, a.Target)
	}
	return s
}
