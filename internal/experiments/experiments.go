// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each experiment is a pure function of a seed that
// returns printable tables plus notes recording what shape the paper
// reports and what this reproduction measures; cmd/experiments prints
// them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Section is one named table of an experiment's output.
type Section struct {
	Name  string
	Table *metrics.Table
}

// Output is a regenerated table or figure.
type Output struct {
	// ID matches the paper artifact ("table1", "fig7", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Sections hold the data series/tables.
	Sections []Section
	// Notes record the expected (paper) shape versus what was measured.
	Notes []string
}

// String renders the output as text.
func (o *Output) String() string {
	s := fmt.Sprintf("== %s: %s ==\n", o.ID, o.Title)
	for _, sec := range o.Sections {
		s += "\n-- " + sec.Name + " --\n" + sec.Table.String()
	}
	if len(o.Notes) > 0 {
		s += "\nnotes:\n"
		for _, n := range o.Notes {
			s += "  - " + n + "\n"
		}
	}
	return s
}

// Experiment names a generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64) (*Output, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "SmartPointer analysis action characteristics", Table1},
		{"table2", "Experiment data sizes (weak scaling)", Table2},
		{"fig3", "Increase-container protocol rounds", Fig3},
		{"fig4", "Time to increase container size", Fig4},
		{"fig5", "Time to decrease container size", Fig5},
		{"fig6", "Resilience (D2T transaction) protocol overhead", Fig6},
		{"fig7", "Events emitted: 256 simulation / 13 staging nodes", Fig7},
		{"fig8", "Events emitted: 512 simulation / 24 staging nodes", Fig8},
		{"fig9", "Events emitted: 1024 simulation / 24 staging nodes", Fig9},
		{"fig10", "End-to-end latency (1024/24 configuration)", Fig10},
	}
}

// ByID returns the named experiment (paper artifacts and extras).
func ByID(id string) (Experiment, bool) {
	for _, e := range AllWithExtras() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func secs(t sim.Time) float64 { return t.Seconds() }
