// Package shardmgr holds the pure placement logic for the sharded
// control plane: a seeded consistent-hash ring that assigns containers
// to shards, and a Directory that tracks which shard owns which
// container and which staging node, including cross-shard steal
// accounting. Nothing here touches the simulator or the runtime — the
// package is deliberately dependency-free so the placement properties
// (same seed → same assignment, minimal movement on shard add/remove)
// are testable in isolation.
package shardmgr

import (
	"sort"
	"strconv"
)

// vnodesPerShard is the number of virtual points each shard contributes
// to the ring. More vnodes smooth the distribution and tighten the
// bound on how many containers move when a shard is added.
const vnodesPerShard = 128

// Ring is a seeded consistent-hash ring mapping container names to
// shard IDs. The same (seed, shard set) always produces the same
// assignment; adding or removing a shard only moves the containers
// whose arc changed hands.
type Ring struct {
	seed   int64
	shards map[int]bool
	points []point // sorted by hash
}

type point struct {
	hash  uint64
	shard int
}

// NewRing builds a ring with shards 0..shards-1.
func NewRing(seed int64, shards int) *Ring {
	r := &Ring{seed: seed, shards: make(map[int]bool, shards)}
	for i := 0; i < shards; i++ {
		r.addPoints(i)
		r.shards[i] = true
	}
	r.sortPoints()
	return r
}

// fnv1a is a seeded FNV-1a 64-bit hash; hand-rolled so the ring has no
// dependency beyond the standard library and the seed folds into the
// initial state rather than the key bytes.
func fnv1a(seed int64, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ uint64(seed)*prime
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return mix(h)
}

// mix is the splitmix64 finalizer. Raw FNV-1a has weak avalanche in the
// high bits, which the ring's full-width ordering exposes as clustered
// arcs; the finalizer spreads them.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *Ring) addPoints(shard int) {
	label := "shard-" + strconv.Itoa(shard) + "#"
	for v := 0; v < vnodesPerShard; v++ {
		h := fnv1a(r.seed, label+strconv.Itoa(v))
		//iocheck:allow hotalloc ring construction is setup-time, not a hot path
		r.points = append(r.points, point{hash: h, shard: shard})
	}
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on shard ID so the ring
		// order never depends on insertion order.
		return r.points[i].shard < r.points[j].shard
	})
}

// AddShard inserts a shard's vnodes into the ring. Adding an existing
// shard is a no-op.
func (r *Ring) AddShard(shard int) {
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	r.addPoints(shard)
	r.sortPoints()
}

// RemoveShard deletes a shard's vnodes. Containers that hashed to its
// arcs fall through to the next point; everyone else keeps their shard.
func (r *Ring) RemoveShard(shard int) {
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the live shard IDs in ascending order.
func (r *Ring) Shards() []int {
	out := make([]int, 0, len(r.shards))
	for id := range r.shards {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Assign maps a container name to its shard. Panics on an empty ring.
func (r *Ring) Assign(name string) int {
	if len(r.points) == 0 {
		panic("shardmgr: assign on empty ring")
	}
	h := fnv1a(r.seed, name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].shard
}

// AssignAll maps every name and returns the assignment in input order.
func (r *Ring) AssignAll(names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = r.Assign(n)
	}
	return out
}
