package shardmgr

import "sort"

// Directory is the control plane's ownership ledger: which shard owns
// each container (fixed at build time by the ring) and each staging
// node (mutable — cross-shard steals rehome nodes). It also keeps the
// per-shard steal counters the summary table and oracles read.
//
// The Directory is plain bookkeeping: it never initiates transfers, it
// only records what the managers did, so the no-dual-ownership oracle
// can audit the managers against it.
type Directory struct {
	containerShard map[string]int
	nodeShard      map[int]int
	stolenIn       map[int]int
	stolenOut      map[int]int
	shards         []int // ascending
}

// NewDirectory snapshots the ring's assignment for the given container
// names.
func NewDirectory(ring *Ring, containers []string) *Directory {
	d := &Directory{
		containerShard: make(map[string]int, len(containers)),
		nodeShard:      make(map[int]int),
		stolenIn:       make(map[int]int),
		stolenOut:      make(map[int]int),
		shards:         ring.Shards(),
	}
	for _, name := range containers {
		d.containerShard[name] = ring.Assign(name)
	}
	return d
}

// ShardOf returns the shard owning the named container (-1 unknown).
func (d *Directory) ShardOf(container string) int {
	if s, ok := d.containerShard[container]; ok {
		return s
	}
	return -1
}

// SetShardOf pins a container to a shard (used for containers created
// outside the ring assignment, e.g. the checkpoint container).
func (d *Directory) SetShardOf(container string, shard int) {
	d.containerShard[container] = shard
}

// NodeShard returns the shard owning a staging node (-1 unknown).
func (d *Directory) NodeShard(node int) int {
	if s, ok := d.nodeShard[node]; ok {
		return s
	}
	return -1
}

// SetNodeShard records a staging node's owning shard. Steal grants call
// this at node release time, so a node in flight belongs to nobody.
func (d *Directory) SetNodeShard(node, shard int) {
	d.nodeShard[node] = shard
}

// RecordSteal bumps the per-shard steal counters for n nodes moving
// from donor to beneficiary.
func (d *Directory) RecordSteal(donor, beneficiary, n int) {
	d.stolenOut[donor] += n
	d.stolenIn[beneficiary] += n
}

// Steals returns how many nodes a shard has received and donated.
func (d *Directory) Steals(shard int) (in, out int) {
	return d.stolenIn[shard], d.stolenOut[shard]
}

// Shards returns the shard IDs the directory was built with, ascending.
func (d *Directory) Shards() []int {
	return append([]int(nil), d.shards...)
}

// Containers returns the container names owned by a shard, sorted, so
// callers iterate deterministically.
func (d *Directory) Containers(shard int) []string {
	var out []string
	for name, s := range d.containerShard {
		if s == shard {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// PickDonor chooses the shard to steal from: the largest advertised
// spare pool wins, ties break on the lowest shard ID, and the
// requester is never its own donor. Returns -1 when no shard has
// spares. spares maps shard → advertised free-node count.
func PickDonor(spares map[int]int, requester int) int {
	best, bestN := -1, 0
	ids := make([]int, 0, len(spares))
	for id := range spares {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if id == requester {
			continue
		}
		if n := spares[id]; n > bestN {
			best, bestN = id, n
		}
	}
	return best
}
