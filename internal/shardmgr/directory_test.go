package shardmgr

import (
	"reflect"
	"testing"
)

func TestDirectoryOwnership(t *testing.T) {
	names := containerNames(20)
	ring := NewRing(5, 4)
	d := NewDirectory(ring, names)
	for _, name := range names {
		if got, want := d.ShardOf(name), ring.Assign(name); got != want {
			t.Fatalf("ShardOf(%s)=%d, ring says %d", name, got, want)
		}
	}
	if d.ShardOf("nonexistent") != -1 {
		t.Fatalf("unknown container should map to -1")
	}
	d.SetShardOf("checkpoint", 2)
	if d.ShardOf("checkpoint") != 2 {
		t.Fatalf("SetShardOf did not stick")
	}
	// Containers(shard) partitions the names.
	seen := map[string]bool{}
	for _, shard := range d.Shards() {
		for _, name := range d.Containers(shard) {
			if seen[name] {
				t.Fatalf("%s listed under two shards", name)
			}
			seen[name] = true
		}
	}
	for _, name := range names {
		if !seen[name] {
			t.Fatalf("%s missing from every shard listing", name)
		}
	}
}

func TestDirectoryNodeLedger(t *testing.T) {
	d := NewDirectory(NewRing(1, 2), nil)
	if d.NodeShard(9) != -1 {
		t.Fatalf("unclaimed node should map to -1")
	}
	d.SetNodeShard(9, 0)
	d.SetNodeShard(10, 1)
	if d.NodeShard(9) != 0 || d.NodeShard(10) != 1 {
		t.Fatalf("node ledger lost an entry")
	}
	d.SetNodeShard(9, 1) // steal rehomes the node
	if d.NodeShard(9) != 1 {
		t.Fatalf("rehome did not stick")
	}
	d.RecordSteal(0, 1, 2)
	if in, out := d.Steals(1); in != 2 || out != 0 {
		t.Fatalf("beneficiary counters = (%d,%d), want (2,0)", in, out)
	}
	if in, out := d.Steals(0); in != 0 || out != 2 {
		t.Fatalf("donor counters = (%d,%d), want (0,2)", in, out)
	}
}

func TestPickDonor(t *testing.T) {
	// Largest pool wins.
	if got := PickDonor(map[int]int{0: 1, 1: 5, 2: 3}, 0); got != 1 {
		t.Fatalf("PickDonor = %d, want 1", got)
	}
	// Ties break on the lowest shard ID.
	if got := PickDonor(map[int]int{3: 4, 1: 4, 2: 4}, 0); got != 1 {
		t.Fatalf("tie break = %d, want 1", got)
	}
	// The requester never donates to itself, even with the biggest pool.
	if got := PickDonor(map[int]int{0: 9, 1: 2}, 0); got != 1 {
		t.Fatalf("self-donation: got %d, want 1", got)
	}
	// All dry → -1.
	if got := PickDonor(map[int]int{0: 0, 1: 0}, 0); got != -1 {
		t.Fatalf("dry pools: got %d, want -1", got)
	}
	// Deterministic across identical calls.
	a := PickDonor(map[int]int{5: 2, 9: 2, 7: 2}, 1)
	for i := 0; i < 16; i++ {
		if b := PickDonor(map[int]int{5: 2, 9: 2, 7: 2}, 1); b != a {
			t.Fatalf("PickDonor nondeterministic: %d then %d", a, b)
		}
	}
	if !reflect.DeepEqual(NewRing(3, 3).Shards(), []int{0, 1, 2}) {
		t.Fatalf("Shards() not ascending")
	}
}
