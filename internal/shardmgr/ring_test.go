package shardmgr

import (
	"fmt"
	"testing"
)

func containerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("stage-%04d", i)
	}
	return names
}

// Same seed, same shard set → same assignment, independently of how the
// ring was constructed.
func TestRingDeterministic(t *testing.T) {
	names := containerNames(500)
	a := NewRing(42, 8).AssignAll(names)
	b := NewRing(42, 8).AssignAll(names)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42: %s assigned to %d then %d", names[i], a[i], b[i])
		}
	}
	// A ring grown incrementally to the same shard set agrees too.
	inc := NewRing(42, 1)
	for s := 1; s < 8; s++ {
		inc.AddShard(s)
	}
	c := inc.AssignAll(names)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("incremental ring diverged at %s: %d vs %d", names[i], a[i], c[i])
		}
	}
	// Different seed → different assignment (sanity, not a guarantee per
	// name; assert at least one container moves).
	d := NewRing(43, 8).AssignAll(names)
	moved := 0
	for i := range a {
		if a[i] != d[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("seed change moved nothing: ring ignores its seed")
	}
}

// Adding one shard moves at most ceil(containers/shards) containers
// (shards = count before the add), and every mover lands on the new
// shard.
func TestRingAddMovesFew(t *testing.T) {
	names := containerNames(1000)
	for _, shards := range []int{4, 8, 16, 100} {
		before := NewRing(7, shards).AssignAll(names)
		grown := NewRing(7, shards)
		grown.AddShard(shards)
		after := grown.AssignAll(names)
		moved := 0
		for i := range names {
			if before[i] != after[i] {
				moved++
				if after[i] != shards {
					t.Fatalf("shards=%d: %s moved %d→%d, not to the new shard %d",
						shards, names[i], before[i], after[i], shards)
				}
			}
		}
		bound := (len(names) + shards - 1) / shards // ceil(n/s)
		if moved > bound {
			t.Fatalf("shards=%d: add moved %d containers, bound %d", shards, moved, bound)
		}
		if moved == 0 {
			t.Fatalf("shards=%d: add moved nothing — new shard got no load", shards)
		}
	}
}

// Removing a shard rehomes only that shard's containers: everyone else
// keeps their assignment.
func TestRingRemoveRehomesOnlyDead(t *testing.T) {
	names := containerNames(1000)
	for _, dead := range []int{0, 3, 7} {
		r := NewRing(11, 8)
		before := r.AssignAll(names)
		r.RemoveShard(dead)
		after := r.AssignAll(names)
		for i := range names {
			if before[i] == dead {
				if after[i] == dead {
					t.Fatalf("%s still on removed shard %d", names[i], dead)
				}
				continue
			}
			if before[i] != after[i] {
				t.Fatalf("%s moved %d→%d though shard %d was removed",
					names[i], before[i], after[i], dead)
			}
		}
	}
}

// Every shard gets a nonempty arc at realistic sizes, so no manager
// idles while others are overloaded.
func TestRingCoverage(t *testing.T) {
	names := containerNames(1000)
	r := NewRing(7, 100)
	got := make(map[int]int)
	for _, s := range r.AssignAll(names) {
		got[s]++
	}
	for shard := 0; shard < 100; shard++ {
		if got[shard] == 0 {
			t.Fatalf("shard %d owns no containers at n=1000", shard)
		}
	}
}
