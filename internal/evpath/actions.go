package evpath

import "repro/internal/sim"

// Filter passes through events for which keep returns true.
func Filter(keep func(*Event) bool) Action {
	return ActionFunc(func(ev *Event, emit func(*Event)) {
		if keep(ev) {
			emit(ev)
		}
	})
}

// TypeFilter passes through events whose Type matches one of the given
// names.
func TypeFilter(types ...string) Action {
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return Filter(func(ev *Event) bool { return set[ev.Type] })
}

// Transform rewrites each event with fn (returning nil drops it).
func Transform(fn func(*Event) *Event) Action {
	return ActionFunc(func(ev *Event, emit func(*Event)) {
		if out := fn(ev); out != nil {
			emit(out)
		}
	})
}

// Terminal invokes fn for each event; nothing is emitted downstream.
func Terminal(fn func(*Event)) Action {
	return ActionFunc(func(ev *Event, emit func(*Event)) {
		fn(ev)
	})
}

// QueueTerminal appends each event to q (dropping if the queue is full or
// closed), so a simulated process can consume the overlay's output.
func QueueTerminal(q *sim.Queue[*Event]) Action {
	return Terminal(func(ev *Event) { q.TryPut(ev) })
}

// Aggregate buffers events and emits one combined event each time `count`
// have arrived, using combine to merge them. This is the building block
// for aggregation trees (the LAMMPS Helper component) and for monitoring
// roll-ups.
func Aggregate(count int, combine func([]*Event) *Event) Action {
	if count < 1 {
		count = 1
	}
	var buf []*Event
	return ActionFunc(func(ev *Event, emit func(*Event)) {
		buf = append(buf, ev)
		if len(buf) >= count {
			out := combine(buf)
			buf = nil
			if out != nil {
				emit(out)
			}
		}
	})
}

// Counter counts events by type; useful as a monitoring terminal.
type Counter struct {
	ByType map[string]int64
	Total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{ByType: make(map[string]int64)} }

// Action returns a terminal action recording into the counter.
func (c *Counter) Action() Action {
	return Terminal(func(ev *Event) {
		c.ByType[ev.Type]++
		c.Total++
	})
}
