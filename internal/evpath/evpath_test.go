package evpath

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func localManager() (*sim.Engine, *Manager) {
	eng := sim.NewEngine(3)
	return eng, NewManager(eng, nil, 0)
}

func TestPassthroughChain(t *testing.T) {
	eng, m := localManager()
	var got []string
	sink := m.NewStone(Terminal(func(ev *Event) { got = append(got, ev.Type) }))
	mid := m.NewStone(nil)
	mid.Link(sink)
	src := m.NewStone(nil)
	src.Link(mid)
	eng.Go("p", func(p *sim.Proc) {
		src.Submit(p, &Event{Type: "a"})
		src.Submit(p, &Event{Type: "b"})
	})
	eng.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestFilterAndTypeFilter(t *testing.T) {
	eng, m := localManager()
	c := NewCounter()
	sink := m.NewStone(c.Action())
	f := m.NewStone(TypeFilter("keep", "also"))
	f.Link(sink)
	eng.Go("p", func(p *sim.Proc) {
		for _, ty := range []string{"keep", "drop", "also", "drop", "keep"} {
			f.Submit(p, &Event{Type: ty})
		}
	})
	eng.Run()
	if c.Total != 3 || c.ByType["keep"] != 2 || c.ByType["also"] != 1 {
		t.Fatalf("counter %+v", c)
	}
}

func TestTransformRewritesAndDrops(t *testing.T) {
	eng, m := localManager()
	var got []int
	sink := m.NewStone(Terminal(func(ev *Event) { got = append(got, ev.Data.(int)) }))
	tr := m.NewStone(Transform(func(ev *Event) *Event {
		v := ev.Data.(int)
		if v%2 == 1 {
			return nil
		}
		ev.Data = v * 10
		return ev
	}))
	tr.Link(sink)
	eng.Go("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			tr.Submit(p, &Event{Type: "n", Data: i})
		}
	})
	eng.Run()
	want := []int{0, 20, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSplitClonesAttrs(t *testing.T) {
	eng, m := localManager()
	seen := map[string]string{}
	mk := func(name string) *Stone {
		return m.NewStone(Terminal(func(ev *Event) {
			ev.Attrs["branch"] = name // mutation must not leak to sibling
			seen[name] = ev.Attrs["origin"]
		}))
	}
	split := m.NewStone(nil)
	split.Link(mk("left")).Link(mk("right"))
	eng.Go("p", func(p *sim.Proc) {
		split.Submit(p, &Event{Type: "x", Attrs: map[string]string{"origin": "src"}})
	})
	eng.Run()
	if seen["left"] != "src" || seen["right"] != "src" {
		t.Fatalf("seen %v", seen)
	}
}

func TestUnlink(t *testing.T) {
	eng, m := localManager()
	c := NewCounter()
	sink := m.NewStone(c.Action())
	src := m.NewStone(nil)
	src.Link(sink)
	eng.Go("p", func(p *sim.Proc) {
		src.Submit(p, &Event{Type: "a"})
		src.Unlink(sink)
		src.Submit(p, &Event{Type: "b"})
	})
	eng.Run()
	if c.Total != 1 {
		t.Fatalf("total %d, want 1", c.Total)
	}
	if len(src.Targets()) != 0 {
		t.Fatal("unlink left targets")
	}
}

func TestAggregateCombines(t *testing.T) {
	eng, m := localManager()
	var got []int
	sink := m.NewStone(Terminal(func(ev *Event) { got = append(got, ev.Data.(int)) }))
	agg := m.NewStone(Aggregate(3, func(evs []*Event) *Event {
		sum := 0
		for _, e := range evs {
			sum += e.Data.(int)
		}
		return &Event{Type: "sum", Data: sum}
	}))
	agg.Link(sink)
	eng.Go("p", func(p *sim.Proc) {
		for i := 1; i <= 7; i++ {
			agg.Submit(p, &Event{Type: "n", Data: i})
		}
	})
	eng.Run()
	// 1+2+3=6, 4+5+6=15; 7 still buffered.
	if len(got) != 2 || got[0] != 6 || got[1] != 15 {
		t.Fatalf("got %v", got)
	}
}

func TestTerminalWithoutTargetsCountsDelivered(t *testing.T) {
	eng, m := localManager()
	s := m.NewStone(nil)
	eng.Go("p", func(p *sim.Proc) { s.Submit(p, &Event{Type: "x"}) })
	eng.Run()
	if m.Delivered() != 1 {
		t.Fatalf("delivered %d", m.Delivered())
	}
}

func TestHandlerCostCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, nil, 0)
	m.HandlerCost = 5 * sim.Millisecond
	sink := m.NewStone(Terminal(func(*Event) {}))
	var elapsed sim.Time
	eng.Go("p", func(p *sim.Proc) {
		start := p.Now()
		sink.Submit(p, &Event{Type: "x"})
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed != 5*sim.Millisecond {
		t.Fatalf("elapsed %v", elapsed)
	}
}

func bridgedManagers(t *testing.T) (*sim.Engine, *cluster.Machine, *Manager, *Manager) {
	t.Helper()
	eng := sim.NewEngine(3)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	return eng, mach, NewManager(eng, mach, 0), NewManager(eng, mach, 1)
}

func TestBridgeDeliversAcrossNodes(t *testing.T) {
	eng, mach, m0, m1 := bridgedManagers(t)
	mb := NewMailbox(m1, 0)
	br := m0.NewBridge(mb.Stone, 0)
	var recvAt sim.Time
	var data any
	eng.Go("consumer", func(p *sim.Proc) {
		ev, ok := mb.Recv(p)
		if !ok {
			t.Error("mailbox closed")
			return
		}
		recvAt, data = p.Now(), ev.Data
	})
	eng.Go("producer", func(p *sim.Proc) {
		br.Submit(p, &Event{Type: "msg", Size: 1024, Data: "hello"})
	})
	eng.Run()
	if data != "hello" {
		t.Fatalf("data %v", data)
	}
	if recvAt == 0 {
		t.Fatal("delivery should take nonzero network time")
	}
	st := br.BridgeStats()
	if st.Sent != 1 || st.Bytes != 1024+descriptorBytes {
		t.Fatalf("stats %+v", st)
	}
	if mach.Stats().Messages == 0 {
		t.Fatal("bridge did not touch the interconnect")
	}
}

func TestBridgeSubmitIsAsync(t *testing.T) {
	eng, _, m0, m1 := bridgedManagers(t)
	mb := NewMailbox(m1, 0)
	br := m0.NewBridge(mb.Stone, 0)
	var submitDone sim.Time
	eng.Go("producer", func(p *sim.Proc) {
		br.Submit(p, &Event{Type: "msg", Size: 1 << 20})
		submitDone = p.Now()
	})
	eng.Run()
	if submitDone != 0 {
		t.Fatalf("submit blocked until %v; should be async", submitDone)
	}
	if mb.Len() != 1 {
		t.Fatalf("mailbox len %d", mb.Len())
	}
}

func TestBridgeBoundedDrops(t *testing.T) {
	eng, _, m0, m1 := bridgedManagers(t)
	mb := NewMailbox(m1, 0)
	br := m0.NewBridge(mb.Stone, 2)
	eng.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			br.Submit(p, &Event{Type: "m", Size: 1 << 24})
		}
	})
	eng.Run()
	st := br.BridgeStats()
	if st.Dropped == 0 {
		t.Fatal("bounded bridge should drop under burst")
	}
	if st.Sent+st.Dropped != 10 {
		t.Fatalf("sent %d + dropped %d != 10", st.Sent, st.Dropped)
	}
}

func TestBridgeClose(t *testing.T) {
	eng, _, m0, m1 := bridgedManagers(t)
	mb := NewMailbox(m1, 0)
	br := m0.NewBridge(mb.Stone, 0)
	eng.Go("producer", func(p *sim.Proc) {
		br.Submit(p, &Event{Type: "m", Size: 100})
		br.CloseBridge()
	})
	eng.Run()
	if got := br.BridgeStats().Sent; got != 1 {
		t.Fatalf("sent %d; backlog should drain before close", got)
	}
	if len(eng.Blocked()) != 0 {
		t.Fatalf("leaked procs: %v", eng.Blocked())
	}
}

func TestMailboxTimeoutAndTryRecv(t *testing.T) {
	eng, m := localManager()
	mb := NewMailbox(m, 0)
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty should fail")
	}
	var timedOut bool
	eng.Go("c", func(p *sim.Proc) {
		_, ok := mb.RecvTimeout(p, sim.Second)
		timedOut = !ok
	})
	eng.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}
}

func TestNonBridgeStoneBridgeAccessors(t *testing.T) {
	_, m := localManager()
	s := m.NewStone(nil)
	s.CloseBridge() // no-op
	if s.BridgeBacklog() != 0 || s.BridgeStats().Sent != 0 {
		t.Fatal("non-bridge accessors should be zero")
	}
	if s.String() == "" || s.ID() == 0 || s.Manager() != m {
		t.Fatal("accessors broken")
	}
}

func TestMonitoringOverlayTree(t *testing.T) {
	// A 2-level aggregation overlay across nodes: leaves bridge samples
	// to an aggregator that averages pairs and forwards to a counter.
	eng := sim.NewEngine(9)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	root := NewManager(eng, mach, 0)
	var avgs []float64
	sink := root.NewStone(Terminal(func(ev *Event) { avgs = append(avgs, ev.Data.(float64)) }))
	agg := root.NewStone(Aggregate(2, func(evs []*Event) *Event {
		sum := 0.0
		for _, e := range evs {
			sum += e.Data.(float64)
		}
		return &Event{Type: "avg", Data: sum / float64(len(evs))}
	}))
	agg.Link(sink)
	for i := 1; i <= 2; i++ {
		leafMgr := NewManager(eng, mach, i)
		br := leafMgr.NewBridge(agg, 0)
		val := float64(i * 10)
		eng.Go("leaf", func(p *sim.Proc) {
			br.Submit(p, &Event{Type: "sample", Size: 16, Data: val})
		})
	}
	eng.Run()
	if len(avgs) != 1 || avgs[0] != 15 {
		t.Fatalf("avgs %v", avgs)
	}
}

func TestMultiHopBridgeChain(t *testing.T) {
	// A three-node relay: events hop node0 -> node1 -> node2, each hop a
	// separate bridge with its own courier and network charges.
	eng := sim.NewEngine(9)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	m0 := NewManager(eng, mach, 0)
	m1 := NewManager(eng, mach, 1)
	m2 := NewManager(eng, mach, 2)
	var got []string
	var at sim.Time
	sink := m2.NewStone(Terminal(func(ev *Event) {
		got = append(got, ev.Data.(string))
		at = eng.Now()
	}))
	hop2 := m1.NewBridge(sink, 0)
	relay := m1.NewStone(Transform(func(ev *Event) *Event {
		ev.Data = ev.Data.(string) + "+relayed"
		return ev
	}))
	relay.Link(hop2)
	hop1 := m0.NewBridge(relay, 0)
	eng.Go("src", func(p *sim.Proc) {
		hop1.Submit(p, &Event{Type: "m", Size: 4096, Data: "orig"})
	})
	eng.Run()
	if len(got) != 1 || got[0] != "orig+relayed" {
		t.Fatalf("got %v", got)
	}
	if at == 0 {
		t.Fatal("multi-hop delivery should take network time")
	}
	// Two hops worth of messages on the wire.
	if mach.Stats().Messages < 2 {
		t.Fatalf("messages %d", mach.Stats().Messages)
	}
}

func TestSubmitStampsMetadataOnce(t *testing.T) {
	eng, m := localManager()
	var src StoneID
	var submitted sim.Time
	sink := m.NewStone(Terminal(func(ev *Event) {
		src = ev.Src
		submitted = ev.Submitted
	}))
	first := m.NewStone(nil)
	first.Link(sink)
	eng.At(7*sim.Second, func() {})
	eng.Go("p", func(p *sim.Proc) {
		p.Sleep(5 * sim.Second)
		first.Submit(p, &Event{Type: "x"})
	})
	eng.Run()
	if src != first.ID() {
		t.Fatalf("src %d, want %d", src, first.ID())
	}
	if submitted != 5*sim.Second {
		t.Fatalf("submitted %v", submitted)
	}
}

func TestCounterSeesEveryBranch(t *testing.T) {
	eng, m := localManager()
	c := NewCounter()
	a := m.NewStone(c.Action())
	b := m.NewStone(c.Action())
	split := m.NewStone(nil)
	split.Link(a).Link(b)
	eng.Go("p", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			split.Submit(p, &Event{Type: "x"})
		}
	})
	eng.Run()
	if c.Total != 6 {
		t.Fatalf("total %d, want 6 (3 events x 2 branches)", c.Total)
	}
}
