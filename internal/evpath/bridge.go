package evpath

import (
	"repro/internal/sim"
)

// bridge carries events from one manager's node to a stone on another
// manager, through the simulated interconnect. Each bridge runs a courier
// process that drains a queue, charges the transfer to the machine, and
// resubmits on the remote side — so bridge traffic is asynchronous and
// contends for NICs like any other data.
type bridge struct {
	owner  *Manager
	target *Stone
	q      *sim.Queue[*Event]
	stats  BridgeStats
}

// BridgeStats reports a bridge's activity.
type BridgeStats struct {
	Sent    int64
	Bytes   int64
	Dropped int64
}

// descriptorBytes is the minimum on-wire size of any event (headers).
const descriptorBytes = 64

// NewBridge returns a stone that forwards submitted events to target,
// which lives on (possibly) another node. queueCap bounds the courier's
// backlog; 0 means unbounded. Events that arrive when a bounded queue is
// full are dropped (and counted), mirroring lossy monitoring channels.
func (m *Manager) NewBridge(target *Stone, queueCap int) *Stone {
	m.nextID++
	b := &bridge{
		owner:  m,
		target: target,
		q:      sim.NewQueue[*Event](m.eng, queueCap),
	}
	s := &Stone{id: m.nextID, mgr: m, bridge: b}
	m.stones[s.id] = s
	m.eng.Go("evpath-bridge", func(p *sim.Proc) { b.run(p) })
	return s
}

func (b *bridge) forward(ev *Event) {
	if !b.q.TryPut(ev) {
		b.stats.Dropped++
		b.dropInstant(ev, "queue-full")
	}
}

func (b *bridge) run(p *sim.Proc) {
	for {
		ev, ok := b.q.Get(p)
		if !ok {
			return
		}
		size := ev.Size + descriptorBytes
		sp := b.owner.tracer.Begin(ev.Ctx(), "evpath", "send").
			Node(b.owner.node).Attr("type", ev.Type).
			AttrInt("bytes", size).AttrInt("dst", int64(b.target.mgr.node))
		if b.owner.machine != nil {
			// The fault schedule may lose the message outright (lossy
			// control overlay) or the wire may fail it (dead/partitioned
			// endpoint); either way the event never reaches the target.
			if b.owner.machine.Faults().DropCtl() {
				b.stats.Dropped++
				sp.Attr("drop", "ctl-fault").End()
				continue
			}
			if !b.owner.machine.Send(p, b.owner.node, b.target.mgr.node, size) {
				b.stats.Dropped++
				sp.Attr("drop", "wire").End()
				continue
			}
		}
		b.stats.Sent++
		b.stats.Bytes += size
		// Restamp so the receive side chains from the transfer, not the
		// original submitter: hop-by-hop causality survives multi-bridge
		// overlays.
		if sp != nil {
			ev.Span = sp.ID()
		}
		sp.End()
		b.target.handle(p, ev)
	}
}

// dropInstant records an enqueue-side drop (no courier involved).
func (b *bridge) dropInstant(ev *Event, why string) {
	b.owner.tracer.Instant(ev.Ctx(), "evpath", "drop").
		Node(b.owner.node).Attr("type", ev.Type).Attr("why", why).End()
}

// CloseBridge shuts down a bridge stone's courier after the backlog
// drains. Calling it on a non-bridge stone is a no-op.
func (s *Stone) CloseBridge() {
	if s.bridge != nil {
		s.bridge.q.Close()
	}
}

// BridgeStats returns the bridge counters (zero value for non-bridges).
func (s *Stone) BridgeStats() BridgeStats {
	if s.bridge == nil {
		return BridgeStats{}
	}
	return s.bridge.stats
}

// BridgeBacklog returns the number of events awaiting transfer.
func (s *Stone) BridgeBacklog() int {
	if s.bridge == nil {
		return 0
	}
	return s.bridge.q.Len()
}

// Mailbox is a terminal stone plus a queue, the usual way a simulated
// process receives events from an overlay: remote stones bridge into the
// mailbox's stone, and the owning process blocks on Recv.
type Mailbox struct {
	Stone *Stone
	q     *sim.Queue[*Event]
}

// NewMailbox returns a mailbox on m with the given queue capacity
// (0 = unbounded).
func NewMailbox(m *Manager, queueCap int) *Mailbox {
	q := sim.NewQueue[*Event](m.eng, queueCap)
	return &Mailbox{Stone: m.NewStone(QueueTerminal(q)), q: q}
}

// Recv blocks until an event arrives; ok is false if the mailbox closed.
func (mb *Mailbox) Recv(p *sim.Proc) (*Event, bool) {
	return mb.q.Get(p)
}

// RecvTimeout is Recv with a deadline.
func (mb *Mailbox) RecvTimeout(p *sim.Proc, d sim.Time) (*Event, bool) {
	return mb.q.GetTimeout(p, d)
}

// TryRecv returns an event if one is queued.
func (mb *Mailbox) TryRecv() (*Event, bool) { return mb.q.TryGet() }

// Len returns the number of queued events.
func (mb *Mailbox) Len() int { return mb.q.Len() }

// Close closes the mailbox queue.
func (mb *Mailbox) Close() { mb.q.Close() }

// Closed reports whether Close has been called.
func (mb *Mailbox) Closed() bool { return mb.q.Closed() }
