// Package evpath is a small event-path overlay library in the spirit of
// the EVPath system the paper builds on: typed events flow through graphs
// of "stones" (processing points) that filter, transform, split, and
// deliver them, with bridge stones carrying events between nodes of the
// simulated machine.
//
// The container runtime uses evpath for two things, exactly as the paper
// does: the control message rounds of the increase/decrease/offline
// protocols, and the monitoring overlays that feed the managers.
package evpath

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Event is one unit of data flowing through an overlay.
type Event struct {
	// Type names the event's schema ("latency_sample", "ctl_increase",
	// atomic data, ...). Filters and terminals may dispatch on it.
	Type string
	// Src is the stone that originally submitted the event.
	Src StoneID
	// Submitted is the virtual time of original submission.
	Submitted sim.Time
	// Size is the encoded size in bytes, used to cost bridge transfers.
	// Zero-size events are charged a minimum descriptor size.
	Size int64
	// Data is the payload.
	Data any
	// Span is the causal trace context, carried as a typed field so hot
	// control/monitoring rounds never materialize an attribute map.
	Span trace.SpanID
	// Attrs carries small key/value metadata (provenance, hop counts).
	Attrs map[string]string
}

// Ctx returns the event's trace context: the typed Span field when set,
// otherwise whatever a legacy attribute map carries (0 when neither).
func (ev *Event) Ctx() trace.SpanID {
	if ev.Span != 0 {
		return ev.Span
	}
	return trace.Ctx(ev.Attrs)
}

// clone returns a shallow copy so split targets can annotate independently.
func (ev *Event) clone() *Event {
	c := *ev
	if ev.Attrs != nil {
		//iocheck:allow hotalloc only attr-carrying events pay the deep copy; hot control/monitoring events use the typed Span field and carry no attrs
		c.Attrs = make(map[string]string, len(ev.Attrs))
		for k, v := range ev.Attrs {
			c.Attrs[k] = v
		}
	}
	return &c
}

// StoneID identifies a stone within its Manager.
type StoneID int

// Manager is the per-process event context (EVPath's CManager): it owns
// stones and executes their actions. A Manager is pinned to a machine node
// so bridge traffic is charged to the right NICs; a nil machine gives a
// cost-free in-process overlay (useful in unit tests).
type Manager struct {
	eng     *sim.Engine
	machine *cluster.Machine
	node    int
	nextID  StoneID
	stones  map[StoneID]*Stone
	// HandlerCost is charged (as virtual time) per event handled by a
	// terminal or transform stone, modeling handler execution.
	HandlerCost sim.Time
	delivered   int64
	tracer      *trace.Recorder
}

// NewManager returns a Manager on the given machine node. machine may be
// nil for cost-free local overlays.
func NewManager(eng *sim.Engine, machine *cluster.Machine, node int) *Manager {
	return &Manager{
		eng:     eng,
		machine: machine,
		node:    node,
		stones:  make(map[StoneID]*Stone),
	}
}

// Engine returns the simulation engine.
func (m *Manager) Engine() *sim.Engine { return m.eng }

// Node returns the machine node this manager runs on.
func (m *Manager) Node() int { return m.node }

// SetTracer attaches a trace recorder: bridge transfers become spans
// (chained to the submitter's context via Event.Attrs) and drops become
// instants. A nil recorder disables tracing at no cost.
func (m *Manager) SetTracer(r *trace.Recorder) { m.tracer = r }

// Delivered returns the count of events that reached terminal stones.
func (m *Manager) Delivered() int64 { return m.delivered }

// Action processes one event and may emit zero or more events downstream.
type Action interface {
	Handle(ev *Event, emit func(*Event))
}

// ActionFunc adapts a function to the Action interface.
type ActionFunc func(ev *Event, emit func(*Event))

// Handle implements Action.
func (f ActionFunc) Handle(ev *Event, emit func(*Event)) { f(ev, emit) }

// Stone is one processing point in an overlay.
type Stone struct {
	id      StoneID
	mgr     *Manager
	action  Action
	targets []*Stone
	// bridge, when non-nil, forwards events to a stone on another node.
	bridge *bridge
	// emit is the action callback, built once so handle doesn't allocate
	// a capturing closure per event; it appends into pending.
	emit    func(*Event)
	pending []*Event
	spare   []*Event // recycled pending backing for reentrant handles
}

// ID returns the stone's identifier.
func (s *Stone) ID() StoneID { return s.id }

// Manager returns the owning manager.
func (s *Stone) Manager() *Manager { return s.mgr }

// NewStone creates a stone with the given action (nil passes events
// through unchanged).
func (m *Manager) NewStone(action Action) *Stone {
	m.nextID++
	s := &Stone{id: m.nextID, mgr: m, action: action}
	s.emit = func(out *Event) { s.pending = append(s.pending, out) }
	m.stones[s.id] = s
	return s
}

// Link adds target as a downstream stone. Events emitted by s's action are
// delivered to every linked target, in link order.
func (s *Stone) Link(target *Stone) *Stone {
	s.targets = append(s.targets, target)
	return s
}

// Unlink removes target from s's downstream set.
func (s *Stone) Unlink(target *Stone) {
	for i, t := range s.targets {
		if t == target {
			s.targets = append(s.targets[:i], s.targets[i+1:]...)
			return
		}
	}
}

// Targets returns the current downstream stones.
func (s *Stone) Targets() []*Stone { return s.targets }

// Submit injects an event at stone s from process p. Local stone chains
// execute inline (charging HandlerCost per handling stone); bridge stones
// hand the event to an asynchronous courier that performs the network
// transfer. p may be nil only for cost-free managers (no machine).
func (s *Stone) Submit(p *sim.Proc, ev *Event) {
	if ev.Submitted == 0 {
		ev.Submitted = s.mgr.eng.Now()
	}
	if ev.Src == 0 {
		ev.Src = s.id
	}
	s.handle(p, ev)
}

func (s *Stone) handle(p *sim.Proc, ev *Event) {
	if s.bridge != nil {
		s.bridge.forward(ev)
		return
	}
	emitted := ev
	if s.action != nil {
		if s.mgr.HandlerCost > 0 && p != nil {
			p.Sleep(s.mgr.HandlerCost)
		}
		// Collect emissions into the stone's reusable pending buffer.
		// Save/restore makes this safe if a downstream handler re-enters
		// this stone (a cycle routed back): the inner handle gets the
		// spare backing while the outer one's batch stays intact.
		saved := s.pending
		s.pending = s.spare[:0]
		s.spare = nil
		s.action.Handle(ev, s.emit)
		outs := s.pending
		s.pending = saved
		if len(s.targets) == 0 {
			s.mgr.delivered += int64(len(outs))
		} else {
			for _, out := range outs {
				s.fanOut(p, out)
			}
		}
		for i := range outs {
			outs[i] = nil
		}
		s.spare = outs[:0]
		return
	}
	if len(s.targets) == 0 {
		s.mgr.delivered++
		return
	}
	s.fanOut(p, emitted)
}

func (s *Stone) fanOut(p *sim.Proc, ev *Event) {
	if len(s.targets) == 1 {
		s.targets[0].handle(p, ev)
		return
	}
	for _, t := range s.targets {
		t.handle(p, ev.clone())
	}
}

// String implements fmt.Stringer for debugging.
func (s *Stone) String() string {
	return fmt.Sprintf("stone(%d@node%d)", s.id, s.mgr.node)
}
