package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// buildStepChain records one timestep's write→pull→compute chain with the
// compute span dominating, across two containers.
func buildStepChain(t *testing.T) []Record {
	t.Helper()
	eng := newEngine(t)
	r := New(eng, Config{})
	eng.Go("w", func(p *sim.Proc) {
		for step := int64(0); step < 3; step++ {
			w := r.Begin(0, "core", "write").Container("lammps").Step(step)
			p.Sleep(sim.Millisecond)
			w.End()
			pull := r.Begin(w.ID(), "datatap", "pull").Container("bonds").Step(step)
			p.Sleep(2 * sim.Millisecond)
			pull.End()
			comp := r.Begin(pull.ID(), "core", "compute").Container("bonds").Step(step)
			p.Sleep(10 * sim.Millisecond)
			comp.End()
		}
	})
	eng.Run()
	return r.Records()
}

func TestCriticalPathDominantContainer(t *testing.T) {
	cp := AnalyzeCriticalPath(buildStepChain(t))
	if len(cp.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(cp.Steps))
	}
	if cp.Dominant != "bonds" {
		t.Fatalf("Dominant = %q, want bonds (compute+pull dwarf the write)", cp.Dominant)
	}
	// Each step's chain is write → pull → compute, oldest first.
	for _, sp := range cp.Steps {
		if len(sp.Segs) != 3 {
			t.Fatalf("step %d segments = %d, want 3", sp.Step, len(sp.Segs))
		}
		names := []string{sp.Segs[0].Rec.Name, sp.Segs[1].Rec.Name, sp.Segs[2].Rec.Name}
		if names[0] != "write" || names[1] != "pull" || names[2] != "compute" {
			t.Fatalf("step %d chain = %v", sp.Step, names)
		}
		if sp.Total != 13*sim.Millisecond {
			t.Fatalf("step %d total = %v, want 13ms", sp.Step, sp.Total)
		}
		// Waterfall attribution: each link owns End_i − End_{i−1}.
		if sp.Segs[0].Contribution != sim.Millisecond ||
			sp.Segs[1].Contribution != 2*sim.Millisecond ||
			sp.Segs[2].Contribution != 10*sim.Millisecond {
			t.Fatalf("step %d contributions = %v,%v,%v", sp.Step,
				sp.Segs[0].Contribution, sp.Segs[1].Contribution, sp.Segs[2].Contribution)
		}
	}
	// Costs sorted descending; bonds = 3×12ms, lammps = 3×1ms.
	if len(cp.Costs) != 2 {
		t.Fatalf("costs = %+v", cp.Costs)
	}
	if cp.Costs[0].Container != "bonds" || cp.Costs[0].Total != 36*sim.Millisecond {
		t.Fatalf("top cost = %+v", cp.Costs[0])
	}
	if cp.Costs[1].Container != "lammps" || cp.Costs[1].Total != 3*sim.Millisecond {
		t.Fatalf("second cost = %+v", cp.Costs[1])
	}
}

func TestCriticalPathEmptyAndOrphans(t *testing.T) {
	cp := AnalyzeCriticalPath(nil)
	if cp.Dominant != "" || len(cp.Steps) != 0 {
		t.Fatalf("empty analysis = %+v", cp)
	}
	var buf bytes.Buffer
	if err := cp.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no step-scoped spans") {
		t.Fatalf("empty report = %q", buf.String())
	}

	// A parent evicted from the ring truncates the chain without looping.
	recs := []Record{
		{ID: 5, Parent: 99, Cat: "core", Name: "compute", Container: "cna", Step: 1,
			Start: 10 * sim.Millisecond, End: 20 * sim.Millisecond},
	}
	cp = AnalyzeCriticalPath(recs)
	if cp.Dominant != "cna" {
		t.Fatalf("Dominant = %q, want cna", cp.Dominant)
	}
	if len(cp.Steps) != 1 || len(cp.Steps[0].Segs) != 1 {
		t.Fatalf("orphan chain = %+v", cp.Steps)
	}
	if cp.Steps[0].Segs[0].Contribution != 10*sim.Millisecond {
		t.Fatalf("orphan contribution = %v", cp.Steps[0].Segs[0].Contribution)
	}
}

// TestCriticalPathHotShard checks the per-shard rollup: spans labeled
// with a "shard" attribute aggregate into ShardCost rows, unlabeled
// (legacy) traces produce none and the report stays silent about shards.
func TestCriticalPathHotShard(t *testing.T) {
	eng := newEngine(t)
	r := New(eng, Config{})
	eng.Go("w", func(p *sim.Proc) {
		w := r.Begin(0, "core", "write").Container("lammps").Step(0).AttrInt("shard", 1)
		p.Sleep(sim.Millisecond)
		w.End()
		comp := r.Begin(w.ID(), "core", "compute").Container("bonds").Step(0).AttrInt("shard", 0)
		p.Sleep(9 * sim.Millisecond)
		comp.End()
	})
	eng.Run()
	cp := AnalyzeCriticalPath(r.Records())
	if cp.HotShard != "0" {
		t.Fatalf("HotShard = %q, want 0 (compute dominates)", cp.HotShard)
	}
	if len(cp.Shards) != 2 || cp.Shards[0].Total != 9*sim.Millisecond ||
		cp.Shards[1].Shard != "1" || cp.Shards[1].Total != sim.Millisecond {
		t.Fatalf("shard costs = %+v", cp.Shards)
	}
	var buf bytes.Buffer
	if err := cp.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hot shard: 0") {
		t.Fatalf("report missing hot shard line:\n%s", buf.String())
	}

	// Legacy trace: no shard labels, no shard section.
	cp = AnalyzeCriticalPath(buildStepChain(t))
	if cp.HotShard != "" || len(cp.Shards) != 0 {
		t.Fatalf("legacy trace grew shard costs: %+v", cp.Shards)
	}
	buf.Reset()
	if err := cp.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "hot shard") {
		t.Fatalf("legacy report mentions shards:\n%s", buf.String())
	}
}

func TestCriticalPathReport(t *testing.T) {
	cp := AnalyzeCriticalPath(buildStepChain(t))
	var buf bytes.Buffer
	if err := cp.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dominant container: bonds", "per-container contribution", "slowest step", "core/compute"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
