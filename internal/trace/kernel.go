package trace

import "repro/internal/sim"

// Kernel adapts the Recorder to sim.Tracer so the engine's event loop can
// be traced: one "sim/event" instant per executed event, named by the
// event's debug label. High volume — the flight ring keeps it bounded —
// and off unless Config.Kernel is set.
type Kernel struct {
	r *Recorder
}

// NewKernel returns a sim.Tracer feeding r, or nil when kernel tracing is
// disabled (the engine treats a nil tracer as "off").
func NewKernel(r *Recorder) *Kernel {
	if r == nil || !r.cfg.Kernel {
		return nil
	}
	return &Kernel{r: r}
}

// Event implements sim.Tracer. It runs once per executed engine event —
// the hottest instrumentation point in the repository.
//
//iocheck:hot
func (k *Kernel) Event(at sim.Time, what string) {
	if k == nil {
		return
	}
	k.r.commit(Record{
		ID:      0, // kernel instants are not causally addressable
		Cat:     "sim",
		Name:    what,
		Node:    -1,
		Step:    -1,
		Start:   at,
		End:     at,
		Instant: true,
	})
}
