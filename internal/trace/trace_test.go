package trace

import (
	"testing"

	"repro/internal/sim"
)

func newEngine(t *testing.T) *sim.Engine {
	t.Helper()
	return sim.NewEngine(1)
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.Begin(0, "core", "compute")
	if sp != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	sp.Container("x").Node(1).Step(2).Attr("k", "v").AttrInt("n", 3).End()
	if sp.ID() != 0 {
		t.Fatal("nil span ID must be 0")
	}
	r.Instant(0, "a", "b").End()
	r.Trigger("sla")
	if _, ok := r.Triggered(); ok {
		t.Fatal("nil recorder triggered")
	}
	if r.Records() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder holds records")
	}
	r.OnTrigger(func(string) {})
}

func TestSpanCommitAndLabels(t *testing.T) {
	eng := newEngine(t)
	r := New(eng, Config{})
	var got []Record
	eng.Go("w", func(p *sim.Proc) {
		sp := r.Begin(0, "core", "compute").Container("bonds").Node(3).Step(7).
			Attr("z", "last").Attr("a", "first").AttrInt("bytes", 128)
		p.Sleep(5 * sim.Millisecond)
		child := r.Begin(sp.ID(), "datatap", "pull")
		p.Sleep(sim.Millisecond)
		child.End()
		sp.End()
		got = r.Records()
	})
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	child, parent := got[0], got[1]
	if child.Parent != parent.ID {
		t.Fatalf("child.Parent = %d, want %d", child.Parent, parent.ID)
	}
	if parent.Container != "bonds" || parent.Node != 3 || parent.Step != 7 {
		t.Fatalf("labels not applied: %+v", parent)
	}
	if parent.Start != 0 || parent.End != 6*sim.Millisecond {
		t.Fatalf("span times: start=%v end=%v", parent.Start, parent.End)
	}
	if parent.Dur() != 6*sim.Millisecond {
		t.Fatalf("Dur = %v", parent.Dur())
	}
	// Attrs sorted by key at commit.
	if parent.Attrs[0].Key != "a" || parent.Attrs[1].Key != "bytes" || parent.Attrs[2].Key != "z" {
		t.Fatalf("attrs not sorted: %+v", parent.Attrs)
	}
	if parent.Attr("a") != "first" || parent.Attr("missing") != "" {
		t.Fatal("Attr lookup wrong")
	}
}

func TestRingEviction(t *testing.T) {
	eng := newEngine(t)
	r := New(eng, Config{RingCap: 4})
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r.Instant(0, "t", "e").AttrInt("i", int64(i)).End()
			p.Sleep(sim.Millisecond)
		}
	})
	eng.Run()
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	recs := r.Records()
	want := []string{"6", "7", "8", "9"}
	for i, rec := range recs {
		if rec.Attr("i") != want[i] {
			t.Fatalf("ring[%d] = %s, want %s (oldest-first order broken)", i, rec.Attr("i"), want[i])
		}
	}
}

func TestTriggerFiresOnce(t *testing.T) {
	eng := newEngine(t)
	r := New(eng, Config{})
	var fired []string
	r.OnTrigger(func(reason string) { fired = append(fired, reason) })
	eng.Go("w", func(p *sim.Proc) {
		r.Trigger("sla:bonds")
		r.Trigger("crash:node3")
	})
	eng.Run()
	if len(fired) != 1 || fired[0] != "sla:bonds" {
		t.Fatalf("hook calls = %v, want [sla:bonds]", fired)
	}
	reason, ok := r.Triggered()
	if !ok || reason != "sla:bonds" {
		t.Fatalf("Triggered = %q,%v", reason, ok)
	}
	// Both triggers still leave instants in the trace.
	n := 0
	for _, rec := range r.Records() {
		if rec.Cat == "flight" && rec.Name == "trigger" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("trigger instants = %d, want 2", n)
	}
}

func TestStampAndCtx(t *testing.T) {
	if Stamp(nil, 0) != nil {
		t.Fatal("zero parent must not allocate a map")
	}
	m := Stamp(nil, 42)
	if Ctx(m) != 42 {
		t.Fatalf("Ctx = %d, want 42", Ctx(m))
	}
	m2 := Stamp(map[string]string{"other": "x"}, 7)
	if Ctx(m2) != 7 || m2["other"] != "x" {
		t.Fatal("Stamp clobbered existing attrs")
	}
	if Ctx(nil) != 0 || Ctx(map[string]string{AttrSpan: "bogus"}) != 0 {
		t.Fatal("Ctx must return 0 on absent/garbage context")
	}
}

func TestKernelTracer(t *testing.T) {
	eng := newEngine(t)
	if NewKernel(nil) != nil {
		t.Fatal("nil recorder must yield nil kernel")
	}
	if NewKernel(New(eng, Config{})) != nil {
		t.Fatal("Kernel=false must yield nil kernel")
	}
	r := New(eng, Config{Kernel: true})
	k := NewKernel(r)
	if k == nil {
		t.Fatal("kernel tracer missing")
	}
	eng.SetTracer(k)
	eng.Go("w", func(p *sim.Proc) { p.Sleep(sim.Millisecond) })
	eng.Run()
	recs := r.Records()
	if len(recs) == 0 {
		t.Fatal("kernel tracer recorded nothing")
	}
	for _, rec := range recs {
		if rec.Cat != "sim" || !rec.Instant {
			t.Fatalf("unexpected kernel record: %+v", rec)
		}
	}
}
