// Package trace is the causal tracing and flight-recorder subsystem for
// the container runtime's control and data planes. It answers the
// question the per-timestep latency signal alone cannot: *why* was a
// timestep slow — a writer pause during a decrease round, a DataTap queue
// backing up, a retry storm after a crash, or a compute hotspot.
//
// Everything derives from the simulation's virtual clock and seeded RNG,
// so traces are byte-for-byte deterministic per seed: two runs of the
// same scenario produce identical exports.
//
// The model is spans and instant events carrying container/component/node
// labels. Parent→child causality is propagated *across* message hops by
// carrying a span ID on evpath events and DataTap descriptors (a typed
// field; attribute maps remain a fallback for untyped carriers), so one
// timestep's end-to-end flow (simulation write → tap
// push → pull → compute → forward) and every control round (increase,
// decrease, offline, heal — including retries and dedupe drops) each form
// a connected span DAG.
//
// Storage is a bounded ring buffer — the *flight recorder* — cheap enough
// to leave on for whole runs. The ring dumps automatically (once) on the
// first SLA violation, queue overflow, or container crash via the
// OnTrigger hook, so the moments leading up to a failure are always
// preserved even when older history has been overwritten.
//
// Every method is nil-receiver safe: instrumented code calls the recorder
// unconditionally, and a disabled trace costs one nil check per site.
package trace

import (
	"strconv"

	"repro/internal/sim"
)

// SpanID identifies a span (or instant) within one recorder. ID 0 is the
// null parent ("no cause recorded").
type SpanID int64

// Attr is one key/value annotation on a record. Attrs are kept sorted by
// key at commit time so exports are deterministic.
type Attr struct {
	Key, Val string
}

// Record is one committed span or instant event.
type Record struct {
	ID     SpanID
	Parent SpanID
	// Cat is the emitting subsystem ("sim", "evpath", "datatap", "core",
	// "ctl", "txn", "fault").
	Cat string
	// Name is the operation ("write", "pull", "compute", "round.increase").
	Name string
	// Container labels the owning container/component ("" when none).
	Container string
	// Node is the machine node the work happened on (-1 unknown).
	Node int
	// Step is the application timestep (-1 when not step-scoped).
	Step int64
	// Start and End bound the span in virtual time. Instants have
	// Start == End and Instant set.
	Start, End sim.Time
	// Instant marks a point event rather than a duration.
	Instant bool
	Attrs   []Attr
}

// Dur returns the span's duration (0 for instants).
func (r Record) Dur() sim.Time { return r.End - r.Start }

// Attr returns the value of the named attribute ("" if absent).
func (r Record) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Config parameterizes a Recorder.
type Config struct {
	// RingCap bounds the flight-recorder ring (default 1 << 16 records).
	RingCap int
	// Kernel also records engine-level scheduling events (one instant per
	// executed event — high volume; the ring keeps it bounded).
	Kernel bool
}

// DefaultRingCap is the flight-recorder bound when Config.RingCap is 0.
const DefaultRingCap = 1 << 16

// Recorder collects spans into the flight-recorder ring. All interaction
// must happen from the simulation's driving goroutine (the recorder, like
// the engine, relies on the cooperative scheduler for exclusion).
//
// iocheck:nilsafe
type Recorder struct {
	eng     *sim.Engine
	cfg     Config
	nextID  SpanID
	ring    []Record
	head    int   // index of the oldest record when full
	n       int   // live records in the ring
	dropped int64 // records evicted by the ring bound

	trigger   func(reason string)
	triggered bool
	reason    string

	spanFree *Span    // recycled spans, chained through Span.next
	attrFree [][]Attr // attr slices reclaimed from evicted ring records
}

// maxAttrFree bounds the reclaimed-attr pool so one attr-heavy burst
// doesn't pin memory forever.
const maxAttrFree = 1024

// New returns a recorder reading virtual time from eng.
func New(eng *sim.Engine, cfg Config) *Recorder {
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultRingCap
	}
	return &Recorder{eng: eng, cfg: cfg, ring: make([]Record, 0, min(cfg.RingCap, 1024))}
}

// Enabled reports whether the recorder is live (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Span is an open (not yet committed) span. Setter methods chain and are
// nil-safe, so instrumentation reads as one expression.
//
// iocheck:nilsafe
type Span struct {
	r    *Recorder
	rec  Record
	next *Span // freelist link while recycled
	done bool  // set by End; guards double-End on a recycled span
}

// Begin opens a span with the given causal parent (0 = root). It returns
// nil when the recorder is nil. Spans are pooled: End recycles them, so
// a span must not be used after its End.
func (r *Recorder) Begin(parent SpanID, cat, name string) *Span {
	if r == nil {
		return nil
	}
	r.nextID++
	s := r.spanFree
	if s == nil {
		s = r.newSpan()
	} else {
		r.spanFree = s.next
		s.next = nil
	}
	//iocheck:allow nilflow newSpan returns nil only on a nil Recorder, and r was checked above
	s.done = false
	s.rec = Record{
		ID:     r.nextID,
		Parent: parent,
		Cat:    cat,
		Name:   name,
		Node:   -1,
		Step:   -1,
		Start:  r.eng.Now(),
	}
	return s
}

// newSpan services a freelist miss; the steady state recycles the spans
// End retires, so at most max-open-spans are ever allocated.
//
//iocheck:cold
func (r *Recorder) newSpan() *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r}
}

// ID returns the span's identifier (0 for nil, so a nil span chains as
// "no cause recorded").
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// Container labels the span with its owning container.
func (s *Span) Container(name string) *Span {
	if s != nil {
		s.rec.Container = name
	}
	return s
}

// Node labels the span with its machine node.
func (s *Span) Node(id int) *Span {
	if s != nil {
		s.rec.Node = id
	}
	return s
}

// Step labels the span with its application timestep.
func (s *Span) Step(step int64) *Span {
	if s != nil {
		s.rec.Step = step
	}
	return s
}

// Attr adds a key/value annotation.
func (s *Span) Attr(key, val string) *Span {
	if s != nil {
		if s.rec.Attrs == nil {
			s.rec.Attrs = s.r.grabAttrs()
		}
		s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Val: val})
	}
	return s
}

// grabAttrs hands out a reclaimed attr slice (nil on a pool miss — the
// first append then allocates one that will eventually be reclaimed).
func (r *Recorder) grabAttrs() []Attr {
	if r == nil {
		return nil
	}
	if n := len(r.attrFree); n > 0 {
		a := r.attrFree[n-1]
		r.attrFree[n-1] = nil
		r.attrFree = r.attrFree[:n-1]
		return a
	}
	return nil
}

// AttrInt adds an integer annotation.
func (s *Span) AttrInt(key string, val int64) *Span {
	return s.Attr(key, strconv.FormatInt(val, 10))
}

// End closes the span at the current virtual time, commits it to the
// ring, and recycles the span. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.rec.End = s.r.eng.Now()
	s.r.commit(s.rec)
	s.rec.Attrs = nil // the ring owns the slice now
	s.next = s.r.spanFree
	s.r.spanFree = s
}

// Instant records a point event and returns its ID so later records can
// chain from it.
func (r *Recorder) Instant(parent SpanID, cat, name string) *Span {
	if r == nil {
		return nil
	}
	sp := r.Begin(parent, cat, name)
	//iocheck:allow nilflow Begin returns nil only on a nil Recorder, and r was checked above
	sp.rec.Instant = true
	return sp
}

// commit appends rec to the ring, evicting the oldest record at capacity.
// Attrs are sorted here (stably, by key) so exports never depend on call
// order at the instrumentation sites.
func (r *Recorder) commit(rec Record) {
	if r == nil {
		return
	}
	sortAttrs(rec.Attrs)
	if len(r.ring) < r.cfg.RingCap {
		//iocheck:allow hotalloc amortized growth of the bounded flight ring, not per-event garbage
		r.ring = append(r.ring, rec)
		r.n++
		return
	}
	// Full: overwrite the oldest record, reclaiming its attr slice for
	// reuse by open spans.
	if old := r.ring[r.head].Attrs; cap(old) > 0 && len(r.attrFree) < maxAttrFree {
		r.attrFree = append(r.attrFree, old[:0])
	}
	r.ring[r.head] = rec
	r.head = (r.head + 1) % len(r.ring)
	r.dropped++
}

// sortAttrs is a stable insertion sort: attr lists are a handful of keys
// at most, and sort.SliceStable would box the slice and allocate its
// comparison closure on every commit.
func sortAttrs(attrs []Attr) {
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j].Key < attrs[j-1].Key; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
}

// Records returns the ring's contents in commit order, oldest first. The
// slice is a copy; callers may keep it across further recording.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	if r.n == 0 {
		return nil
	}
	out := make([]Record, 0, r.n)
	for i := 0; i < r.n; i++ {
		rec := r.ring[(r.head+i)%len(r.ring)]
		if len(rec.Attrs) > 0 {
			// Deep-copy: the ring may reclaim its attr slices after
			// eviction, and the snapshot must outlive that.
			rec.Attrs = append([]Attr(nil), rec.Attrs...)
		}
		out = append(out, rec)
	}
	return out
}

// Len returns the live record count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many records the ring bound evicted.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// OnTrigger installs the flight-dump hook: fn runs exactly once, at the
// first Trigger call, with that call's reason. Instrumented layers call
// Trigger on SLA violations, queue overflow, and container crashes; the
// hook typically snapshots Records() to a file.
func (r *Recorder) OnTrigger(fn func(reason string)) {
	if r != nil {
		r.trigger = fn
	}
}

// Trigger fires the flight-recorder dump (first call wins; later calls
// only record an instant so the trace shows every would-be trigger).
func (r *Recorder) Trigger(reason string) {
	if r == nil {
		return
	}
	r.Instant(0, "flight", "trigger").Attr("reason", reason).End()
	if r.triggered {
		return
	}
	r.triggered = true
	r.reason = reason
	if r.trigger != nil {
		r.trigger(reason)
	}
}

// Triggered reports whether a flight dump fired, and the first reason.
func (r *Recorder) Triggered() (reason string, ok bool) {
	if r == nil {
		return "", false
	}
	return r.reason, r.triggered
}

// --- cross-hop context propagation ---

// AttrSpan is the event-attribute key carrying a span ID across message
// hops (evpath events, DataTap descriptors travel a typed field instead).
const AttrSpan = "trace.span"

// Stamp records parent as the trace context on an attribute map, creating
// the map when needed. It returns the (possibly new) map. A zero parent
// stamps nothing.
func Stamp(attrs map[string]string, parent SpanID) map[string]string {
	if parent == 0 {
		return attrs
	}
	if attrs == nil {
		attrs = make(map[string]string, 1)
	}
	attrs[AttrSpan] = strconv.FormatInt(int64(parent), 10)
	return attrs
}

// Ctx extracts the trace context from an attribute map (0 when absent).
func Ctx(attrs map[string]string) SpanID {
	v, ok := attrs[AttrSpan]
	if !ok {
		return 0
	}
	id, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0
	}
	return SpanID(id)
}
