package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func sampleRecords(t *testing.T) []Record {
	t.Helper()
	eng := newEngine(t)
	r := New(eng, Config{})
	eng.Go("w", func(p *sim.Proc) {
		root := r.Begin(0, "core", "write").Container("lammps").Node(0).Step(0)
		p.Sleep(2 * sim.Millisecond)
		root.End()
		pull := r.Begin(root.ID(), "datatap", "pull").Container("bonds").Node(1).Step(0).AttrInt("bytes", 4096)
		p.Sleep(3 * sim.Millisecond)
		pull.End()
		r.Instant(pull.ID(), "fault", "drop").Container("bonds").Node(1).End()
	})
	eng.Run()
	return r.Records()
}

func TestWriteChromeValidatesAndIsDeterministic(t *testing.T) {
	recs := sampleRecords(t)
	var a, b bytes.Buffer
	if err := WriteChrome(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same records differ")
	}
	n, err := ValidateChrome(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	// 3 records + 2 process_name metadata events (lammps, bonds).
	if n != 5 {
		t.Fatalf("events = %d, want 5", n)
	}
	// Structural spot checks against a real JSON parse.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawInstant, sawComplete bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "i":
			sawInstant = true
		case "X":
			sawComplete = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
	}
	if !sawInstant || !sawComplete {
		t.Fatalf("export missing phases: instant=%v complete=%v", sawInstant, sawComplete)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	if _, err := ValidateChrome(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ValidateChrome(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := ValidateChrome(strings.NewReader(`{"traceEvents":[{"ph":"X"}]}`)); err == nil {
		t.Fatal("event without name/pid accepted")
	}
}

func TestWriteText(t *testing.T) {
	recs := sampleRecords(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	for _, want := range []string{"core/write", "datatap/pull", "fault/drop", "container=lammps", "container=bonds", "bytes=4096", "step=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Ordered by start time: write begins before pull.
	if strings.Index(out, "core/write") > strings.Index(out, "datatap/pull") {
		t.Fatalf("timeline not start-ordered:\n%s", out)
	}
}

func TestExportSeries(t *testing.T) {
	recs := sampleRecords(t)
	m := metrics.NewRecorder()
	ExportSeries(m, recs)
	s := m.Series("trace.datatap.pull")
	if s.Len() != 1 {
		t.Fatalf("pull series length = %d, want 1", s.Len())
	}
	if got := s.Last().V; got != (3 * sim.Millisecond).Seconds() {
		t.Fatalf("pull duration = %v, want 0.003", got)
	}
	// Instants are skipped.
	if m.Series("trace.fault.drop").Len() != 0 {
		t.Fatal("instant exported as a series point")
	}
}
