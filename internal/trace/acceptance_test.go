package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// runTraced builds and runs a shipped scenario with tracing enabled and
// returns the recorder.
func runTraced(t *testing.T, path string, seed int64) *trace.Recorder {
	t.Helper()
	cfg, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Trace = &trace.Config{}
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt.Tracer()
}

// Acceptance: two identical-seed fig7 runs must produce byte-identical
// Chrome trace exports.
func TestFig7TraceExportIsByteDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		rec := runTraced(t, "../../scenarios/fig7.json", 7)
		if err := trace.WriteChrome(&bufs[i], rec.Records()); err != nil {
			t.Fatal(err)
		}
	}
	if bufs[0].Len() == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("identical-seed runs produced different traces (%d vs %d bytes)",
			bufs[0].Len(), bufs[1].Len())
	}
	if n, err := trace.ValidateChrome(bytes.NewReader(bufs[0].Bytes())); err != nil || n == 0 {
		t.Fatalf("export does not validate: n=%d err=%v", n, err)
	}
}

// Acceptance: a fault-injected run auto-dumps the flight recorder on the
// first trigger — for scenarios/faults.json that is bonds missing its SLA.
func TestFaultsScenarioTriggersFlightDump(t *testing.T) {
	cfg, err := scenario.LoadFile("../../scenarios/faults.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = &trace.Config{}
	rt, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := rt.Tracer()
	var dump bytes.Buffer
	var gotReason string
	rec.OnTrigger(func(reason string) {
		gotReason = reason
		if err := trace.WriteText(&dump, rec.Records()); err != nil {
			t.Error(err)
		}
	})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if gotReason == "" {
		t.Fatal("flight recorder never triggered on the fault scenario")
	}
	if !strings.HasPrefix(gotReason, "sla:") {
		t.Fatalf("first trigger %q, want an SLA violation", gotReason)
	}
	if dump.Len() == 0 {
		t.Fatal("flight dump is empty")
	}
	if reason, ok := rec.Triggered(); !ok || reason != gotReason {
		t.Fatalf("Triggered() = %q,%v; want %q,true", reason, ok, gotReason)
	}
}

// Acceptance: the critical-path analyzer must name the known-bottleneck
// container for fig7 (Bonds dominates end-to-end latency by design).
func TestCriticalPathNamesFig7Bottleneck(t *testing.T) {
	rec := runTraced(t, "../../scenarios/fig7.json", 0)
	cp := trace.AnalyzeCriticalPath(rec.Records())
	if cp == nil {
		t.Fatal("no critical path from a traced run")
	}
	if cp.Dominant != "bonds" {
		t.Fatalf("dominant container %q, want bonds", cp.Dominant)
	}
	var report bytes.Buffer
	if err := cp.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "dominant container: bonds") {
		t.Fatalf("report missing dominant line:\n%s", report.String())
	}
}
