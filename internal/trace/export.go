package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// The exporters are hand-written JSON/text emitters: no maps are iterated
// and every field is written in a fixed order, so two identical-seed runs
// produce byte-identical files.

// WriteChrome emits records in the Chrome trace_event JSON format
// (loadable in chrome://tracing and Perfetto). Spans become complete
// ("ph":"X") events, instants become "ph":"i"; pid groups by container
// (with process_name metadata) and tid is the machine node. Timestamps
// are virtual microseconds.
func WriteChrome(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(s)
	}
	// pid assignment in first-appearance order keeps the file stable.
	pids := map[string]int{}
	pidOf := func(container string) int {
		if container == "" {
			container = "(runtime)"
		}
		id, ok := pids[container]
		if !ok {
			id = len(pids) + 1
			pids[container] = id
			emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
				id, strconv.Quote(container)))
		}
		return id
	}
	for _, r := range recs {
		pid := pidOf(r.Container)
		tid := r.Node
		if tid < 0 {
			tid = 0
		}
		var b []byte
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, r.Name)
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, r.Cat)
		if r.Instant {
			b = append(b, `,"ph":"i","s":"t"`...)
		} else {
			b = append(b, `,"ph":"X"`...)
		}
		b = append(b, `,"ts":`...)
		b = strconv.AppendInt(b, micros(r.Start), 10)
		if !r.Instant {
			b = append(b, `,"dur":`...)
			b = strconv.AppendInt(b, micros(r.End-r.Start), 10)
		}
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, `,"args":{"id":`...)
		b = strconv.AppendInt(b, int64(r.ID), 10)
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, int64(r.Parent), 10)
		if r.Step >= 0 {
			b = append(b, `,"step":`...)
			b = strconv.AppendInt(b, r.Step, 10)
		}
		for _, a := range r.Attrs {
			b = append(b, ',')
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, a.Val)
		}
		b = append(b, `}}`...)
		emit(string(b))
	}
	bw.WriteString("]}")
	return bw.Flush()
}

func micros(t sim.Time) int64 { return int64(t) / int64(sim.Microsecond) }

// ValidateChrome parses a Chrome trace_event export and returns the event
// count, verifying the JSON is well-formed and every event carries the
// required fields (the CI gate for exported traces).
func ValidateChrome(r io.Reader) (events int, err error) {
	var doc struct {
		TraceEvents []struct {
			Name *string `json:"name"`
			Ph   *string `json:"ph"`
			TS   *int64  `json:"ts"`
			PID  *int    `json:"pid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: invalid chrome JSON: %w", err)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || ev.Ph == nil || ev.PID == nil {
			return 0, fmt.Errorf("trace: event %d is missing name/ph/pid", i)
		}
		if *ev.Ph != "M" && ev.TS == nil {
			return 0, fmt.Errorf("trace: event %d (%s) has no timestamp", i, *ev.Name)
		}
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: export contains no events")
	}
	return len(doc.TraceEvents), nil
}

// WriteText emits a plain-text timeline, one record per line, ordered by
// start time (commit order breaks ties): the quick look a terminal wants.
func WriteText(w io.Writer, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	bw := bufio.NewWriter(w)
	for _, r := range sorted {
		fmt.Fprintf(bw, "%12s", r.Start)
		if r.Instant {
			bw.WriteString("          !")
		} else {
			fmt.Fprintf(bw, " %9s ", "+"+r.Dur().String())
		}
		fmt.Fprintf(bw, " %s/%s", r.Cat, r.Name)
		if r.Container != "" {
			fmt.Fprintf(bw, " container=%s", r.Container)
		}
		if r.Node >= 0 {
			fmt.Fprintf(bw, " node=%d", r.Node)
		}
		if r.Step >= 0 {
			fmt.Fprintf(bw, " step=%d", r.Step)
		}
		for _, a := range r.Attrs {
			fmt.Fprintf(bw, " %s=%s", a.Key, a.Val)
		}
		fmt.Fprintf(bw, " [id=%d parent=%d]\n", r.ID, r.Parent)
	}
	return bw.Flush()
}

// ExportSeries hands span durations to a metrics recorder as per-kind
// series named "trace.<cat>.<name>" (seconds, at the span's end time), so
// the existing chart/summary machinery can plot trace-derived data next
// to the monitoring series.
func ExportSeries(m *metrics.Recorder, recs []Record) {
	for _, r := range recs {
		if r.Instant {
			continue
		}
		m.Series("trace."+r.Cat+"."+r.Name).Add(r.End, r.Dur().Seconds())
	}
}
