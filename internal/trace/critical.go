package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Critical-path analysis over the span DAG. For each application timestep
// we walk the parent chain backwards from the latest-ending span of that
// step and attribute wall-clock time waterfall-style: each chain link owns
// the interval between its predecessor's end and its own end (the root
// owns its full duration). Summing those intervals per container answers
// the question the global manager's decisions hinge on: which container,
// link, or round dominates end-to-end latency.

// PathSeg is one link of a step's critical path, oldest first.
type PathSeg struct {
	Rec Record
	// Contribution is the wall-clock time this link adds to the path
	// beyond its predecessor.
	Contribution sim.Time
}

// StepPath is the reconstructed critical path of one timestep.
type StepPath struct {
	Step  int64
	Segs  []PathSeg
	Total sim.Time // End of the last segment − Start of the first
}

// ContainerCost aggregates critical-path contribution per container.
type ContainerCost struct {
	Container string
	Total     sim.Time
	Segments  int
}

// ShardCost aggregates critical-path contribution per control-plane
// shard (sharded runs label compute and round spans with a "shard"
// attribute; legacy runs produce none).
type ShardCost struct {
	Shard    string
	Total    sim.Time
	Segments int
}

// CriticalPath is the full analysis result.
type CriticalPath struct {
	Steps []StepPath // ascending by step
	Costs []ContainerCost
	// Dominant is the container with the largest aggregate contribution
	// ("" when no step-scoped spans exist).
	Dominant string
	// Shards is the per-shard contribution breakdown, largest first
	// (empty on legacy single-manager traces).
	Shards []ShardCost
	// HotShard is the shard with the largest aggregate contribution ("")
	// when the trace carries no shard labels).
	HotShard string
}

// AnalyzeCriticalPath reconstructs per-step critical paths from recs and
// aggregates container contributions. Instants never terminate a path but
// may appear as interior links.
func AnalyzeCriticalPath(recs []Record) *CriticalPath {
	byID := make(map[SpanID]Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	// Latest-ending non-instant span of each step terminates that step's
	// path. Ties break toward the later-committed record (stable scan).
	last := map[int64]Record{}
	for _, r := range recs {
		if r.Step < 0 || r.Instant {
			continue
		}
		if cur, ok := last[r.Step]; !ok || r.End >= cur.End {
			last[r.Step] = r
		}
	}
	cp := &CriticalPath{}
	steps := make([]int64, 0, len(last))
	for s := range last {
		steps = append(steps, s)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	costs := map[string]*ContainerCost{}
	shardCosts := map[string]*ShardCost{}
	for _, step := range steps {
		var chain []Record
		seen := map[SpanID]bool{}
		for r, ok := last[step], true; ok && !seen[r.ID]; r, ok = byID[r.Parent] {
			seen[r.ID] = true
			chain = append(chain, r)
			if r.Parent == 0 {
				break
			}
		}
		// chain is newest-first; reverse into path order.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		sp := StepPath{Step: step}
		var prevEnd sim.Time
		for i, r := range chain {
			contrib := r.End - prevEnd
			if i == 0 {
				contrib = r.End - r.Start
			}
			if contrib < 0 {
				contrib = 0
			}
			sp.Segs = append(sp.Segs, PathSeg{Rec: r, Contribution: contrib})
			prevEnd = r.End
			name := r.Container
			if name == "" {
				name = "(" + r.Cat + ")"
			}
			c := costs[name]
			if c == nil {
				c = &ContainerCost{Container: name}
				costs[name] = c
			}
			c.Total += contrib
			c.Segments++
			if shard := r.Attr("shard"); shard != "" {
				sc := shardCosts[shard]
				if sc == nil {
					sc = &ShardCost{Shard: shard}
					shardCosts[shard] = sc
				}
				sc.Total += contrib
				sc.Segments++
			}
		}
		if len(sp.Segs) > 0 {
			sp.Total = sp.Segs[len(sp.Segs)-1].Rec.End - sp.Segs[0].Rec.Start
		}
		cp.Steps = append(cp.Steps, sp)
	}
	for _, c := range costs {
		cp.Costs = append(cp.Costs, *c)
	}
	sort.Slice(cp.Costs, func(i, j int) bool {
		if cp.Costs[i].Total != cp.Costs[j].Total {
			return cp.Costs[i].Total > cp.Costs[j].Total
		}
		return cp.Costs[i].Container < cp.Costs[j].Container
	})
	if len(cp.Costs) > 0 {
		cp.Dominant = cp.Costs[0].Container
	}
	for _, sc := range shardCosts {
		cp.Shards = append(cp.Shards, *sc)
	}
	sort.Slice(cp.Shards, func(i, j int) bool {
		if cp.Shards[i].Total != cp.Shards[j].Total {
			return cp.Shards[i].Total > cp.Shards[j].Total
		}
		return cp.Shards[i].Shard < cp.Shards[j].Shard
	})
	if len(cp.Shards) > 0 {
		cp.HotShard = cp.Shards[0].Shard
	}
	return cp
}

// WriteReport prints the analysis in the iotrace CLI's human format.
func (cp *CriticalPath) WriteReport(w io.Writer) error {
	if len(cp.Steps) == 0 {
		_, err := fmt.Fprintln(w, "critical path: no step-scoped spans in trace")
		return err
	}
	fmt.Fprintf(w, "critical path over %d steps\n", len(cp.Steps))
	fmt.Fprintf(w, "dominant container: %s\n\n", cp.Dominant)
	fmt.Fprintln(w, "per-container contribution:")
	for _, c := range cp.Costs {
		fmt.Fprintf(w, "  %-24s %12s  (%d segments)\n", c.Container, c.Total, c.Segments)
	}
	if cp.HotShard != "" {
		fmt.Fprintf(w, "\nhot shard: %s\n", cp.HotShard)
		fmt.Fprintln(w, "per-shard contribution:")
		for _, s := range cp.Shards {
			fmt.Fprintf(w, "  shard %-18s %12s  (%d segments)\n", s.Shard, s.Total, s.Segments)
		}
	}
	// Show the slowest step's full chain as the worked example.
	worst := cp.Steps[0]
	for _, s := range cp.Steps[1:] {
		if s.Total > worst.Total {
			worst = s
		}
	}
	fmt.Fprintf(w, "\nslowest step %d (%s end-to-end):\n", worst.Step, worst.Total)
	for _, seg := range worst.Segs {
		r := seg.Rec
		label := r.Container
		if label == "" {
			label = "(" + r.Cat + ")"
		}
		fmt.Fprintf(w, "  +%-12s %s/%s %s [id=%d]\n", seg.Contribution, r.Cat, r.Name, label, r.ID)
	}
	return nil
}
