// At-least-once delivery for DataTap channels.
//
// The channel's legacy semantics (DeliveryBestEffort) are at-most-once:
// a descriptor push lost to a fault silently drops the step, and a pull
// from a crashed writer invalidates the payload and moves on. In
// at-least-once mode every accepted write is *retained* by its writer
// until a downstream processing ack, so the channel can re-emit steps
// whose pull failed, and pressure (full buffer, near-full queue, pause
// windows, saturated retained set) degrades by spilling payloads to a
// provenance-stamped BP stream instead of blocking the application or
// dropping data. A repair loop redelivers lost steps with backoff and
// drains the spill store in order once pressure clears. Readers claim
// each sequence exactly once, so replayed steps are applied exactly once
// even though delivery is at-least-once.
//
// Crash-induced loss is never silent: payloads that die with their node
// are forfeited with a tombstone record in the spill stream, so the
// chaos delivery oracle can demand that every written step is acked,
// retained, spill-resident, or explicitly tombstoned — nothing else.
package datatap

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/bp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DeliveryMode selects a channel's loss semantics.
type DeliveryMode int

const (
	// DeliveryBestEffort is the legacy at-most-once transport: failed
	// pushes and pulls drop the step (counted, never recovered).
	DeliveryBestEffort DeliveryMode = iota
	// DeliveryAtLeastOnce retains payloads until a processing ack,
	// redelivers losses, spills under pressure, and dedupes replays.
	DeliveryAtLeastOnce
)

// String implements fmt.Stringer.
func (m DeliveryMode) String() string {
	switch m {
	case DeliveryBestEffort:
		return "best-effort"
	case DeliveryAtLeastOnce:
		return "at-least-once"
	}
	return fmt.Sprintf("delivery(%d)", int(m))
}

// DeliveryConfig tunes at-least-once behaviour. The zero value is
// best-effort; all other fields are ignored in that mode.
type DeliveryConfig struct {
	Mode DeliveryMode
	// PushRetries bounds descriptor-push retries per write (default 3).
	PushRetries int
	// PushBackoff is the initial retry backoff, doubling per attempt
	// (default 250 ms).
	PushBackoff sim.Time
	// RedeliverDelay is how long a lost step waits before re-emission
	// (default 500 ms).
	RedeliverDelay sim.Time
	// RedeliverRetries bounds re-emissions per step before the payload
	// spills to disk instead (default 3).
	RedeliverRetries int
	// SpillQueueFrac spills writes when the metadata queue reaches this
	// fraction of capacity (default 0.9; only meaningful with a bounded
	// queue).
	SpillQueueFrac float64
	// RetainCap bounds each writer's retained-unacked set; writes beyond
	// it spill (0 = unbounded).
	RetainCap int
	// DrainInterval paces the repair loop (default 1 s).
	DrainInterval sim.Time
	// DrainBurst bounds spill reinjections per repair tick (default 8).
	DrainBurst int
}

// withDefaults fills zero fields for at-least-once mode.
func (d DeliveryConfig) withDefaults() DeliveryConfig {
	if d.Mode != DeliveryAtLeastOnce {
		return d
	}
	if d.PushRetries == 0 {
		d.PushRetries = 3
	}
	if d.PushBackoff == 0 {
		d.PushBackoff = sim.Second / 4
	}
	if d.RedeliverDelay == 0 {
		d.RedeliverDelay = sim.Second / 2
	}
	if d.RedeliverRetries == 0 {
		d.RedeliverRetries = 3
	}
	if d.SpillQueueFrac == 0 {
		d.SpillQueueFrac = 0.9
	}
	if d.DrainInterval == 0 {
		d.DrainInterval = sim.Second
	}
	if d.DrainBurst == 0 {
		d.DrainBurst = 8
	}
	return d
}

// ackBytes is the on-wire size of a processing ack.
const ackBytes = 64

// spillBytesPerSec is the modelled local-storage bandwidth for spill
// writes and drain reads (a node-local SSD, not the shared PFS).
const spillBytesPerSec = 256 << 20

// spillTime returns the virtual time to move size bytes to or from the
// spill store.
func spillTime(size int64) sim.Time {
	return sim.Time(float64(size) / spillBytesPerSec * float64(sim.Second))
}

// retState tracks where a retained (written-but-unacked) step lives.
type retState uint8

const (
	// retStaged: descriptor visible downstream, payload in the writer
	// buffer.
	retStaged retState = iota
	// retPulled: payload transferred to a reader, awaiting the ack.
	retPulled
	// retLost: pull failed or requeue refused; awaiting redelivery.
	retLost
	// retSpilled: payload resident in the spill store, awaiting drain.
	retSpilled
)

// retEntry is one retained step.
type retEntry struct {
	m     *Meta
	state retState
	// buffered reports whether the payload still holds writer-buffer
	// space (released exactly once: on ack, spill, or forfeit).
	buffered     bool
	redeliveries int
	lostAt       sim.Time
}

// alo reports whether the channel runs at-least-once.
func (c *Channel) alo() bool { return c.cfg.Delivery.Mode == DeliveryAtLeastOnce }

// nearFull reports whether the metadata queue has crossed the spill
// threshold (always false for unbounded queues).
func (c *Channel) nearFull() bool {
	if c.cfg.QueueCap <= 0 {
		return false
	}
	thresh := int(float64(c.cfg.QueueCap) * c.cfg.Delivery.SpillQueueFrac)
	if thresh < 1 {
		thresh = 1
	}
	return c.meta.Len() >= thresh
}

// SetGapHandler installs the consumer-side gap callback: fn runs (from a
// reader's process) when the channel detects missing sequences, so the
// consumer container can notify the global manager to request re-emission.
func (c *Channel) SetGapHandler(fn func(p *sim.Proc, missing int64)) { c.onGap = fn }

// noteGap reports missing sequences to the consumer, rate-limited to one
// notification per redeliver delay so a burst of losses does not storm
// the control plane.
func (c *Channel) noteGap(p *sim.Proc, missing int64) {
	if c.onGap == nil {
		return
	}
	now := c.eng.Now()
	if c.gapNoted && now-c.lastGapNote < c.cfg.Delivery.RedeliverDelay {
		return
	}
	c.gapNoted = true
	c.lastGapNote = now
	c.onGap(p, missing)
}

// --- writer-side retention ---

// retain records m as written-but-unacked.
func (w *Writer) retain(m *Meta, buffered bool) *retEntry {
	//iocheck:allow hotalloc ledger entries are retained until acked by design
	e := &retEntry{m: m, buffered: buffered}
	w.retained[m.Seq] = e
	return e
}

// sortedRetained returns the retained sequences in ascending order,
// filtered by state, so replay and forfeiture are deterministic. It runs
// on repair ticks, resend rounds, and crash forfeiture — never per event.
//
//iocheck:cold
func (w *Writer) sortedRetained(states ...retState) []int64 {
	var seqs []int64
	for seq, e := range w.retained {
		for _, st := range states {
			if e.state == st {
				seqs = append(seqs, seq)
				break
			}
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// markApplied records seq as processed downstream, compacting contiguous
// prefixes into a floor so the applied set stays small.
func (w *Writer) markApplied(seq int64) {
	if seq <= w.appliedFloor {
		return
	}
	if w.applied == nil {
		w.applied = make(map[int64]bool)
	}
	w.applied[seq] = true
	for w.applied[w.appliedFloor+1] {
		w.appliedFloor++
		delete(w.applied, w.appliedFloor)
	}
}

// isApplied reports whether seq was already processed downstream.
func (w *Writer) isApplied(seq int64) bool {
	return seq <= w.appliedFloor || w.applied[seq]
}

// releaseEntry returns the entry's writer-buffer reservation (once).
func (w *Writer) releaseEntry(e *retEntry) {
	if e.buffered {
		e.buffered = false
		w.buf.Release(int(e.m.Size))
	}
}

// forfeit tombstones one retained step whose payload died with its node:
// the buffer space is released, the step counts as crash-lost, and a
// zero-payload provenance record lands in the spill stream so the loss is
// explicitly accounted rather than silent.
func (w *Writer) forfeit(e *retEntry, reason string) {
	w.releaseEntry(e)
	delete(w.retained, e.m.Seq)
	w.ch.stats.StepsCrashLost++
	w.ch.stats.BytesCrashLost += e.m.Size
	w.ch.spillStoreFor().tombstone(w.ch.name, e.m, reason)
	w.ch.tracer.Instant(e.m.Span, "datatap", "forfeit").
		Container(w.ch.name).Node(w.node).Step(e.m.Step).Attr("reason", reason).End()
}

// forfeitAll tombstones every retained step still on the writer's side of
// the channel (staged and lost states). Pulled steps survive — their data
// already crossed to a reader and will be acked — and spilled steps
// survive on stable storage.
func (w *Writer) forfeitAll(reason string) {
	for _, seq := range w.sortedRetained(retStaged, retLost) {
		w.forfeit(w.retained[seq], reason)
	}
}

// overRetainCap reports whether the writer's live retained set (staged,
// pulled, lost) has reached the configured bound.
func (w *Writer) overRetainCap() bool {
	cap := w.ch.cfg.Delivery.RetainCap
	if cap <= 0 {
		return false
	}
	live := 0
	for _, e := range w.retained {
		if e.state != retSpilled {
			live++
		}
	}
	return live >= cap
}

// pushDescriptor delivers the metadata descriptor to the channel's home
// node with bounded retry and doubling backoff. A push can fail outright
// (dead or partitioned endpoint) or be dropped in flight by a data-drop
// fault window; both consume retry budget.
func (w *Writer) pushDescriptor(p *sim.Proc) bool {
	if w.ch.mach == nil || w.node == w.ch.cfg.HomeNode {
		return true
	}
	backoff := w.ch.cfg.Delivery.PushBackoff
	for attempt := 0; ; attempt++ {
		if w.ch.mach.Send(p, w.node, w.ch.cfg.HomeNode, descriptorBytes) &&
			!w.ch.mach.Faults().DropData() {
			return true
		}
		if !w.ch.mach.Faults().NodeUp(w.node) || w.ch.closed ||
			attempt >= w.ch.cfg.Delivery.PushRetries {
			return false
		}
		w.ch.stats.PushRetried++
		// Retry backoff parks the application, not the interconnect: it
		// counts as writer stall, unlike the transfer costs around it.
		w.ch.stats.WriterStalled += backoff
		p.Sleep(backoff)
		backoff *= 2
	}
}

// writeALO is the at-least-once write path. It never blocks the
// application beyond transfer costs: pressure (pause window, saturated
// retained set, near-full queue, full buffer) spills the payload instead,
// and a failed descriptor push retries with backoff before spilling. The
// only false return is a closed channel or the writer's own node dying
// mid-write (tombstoned, so even that loss is accounted).
func (w *Writer) writeALO(p *sim.Proc, step, size int64, data any, parent trace.SpanID) bool {
	sp := w.ch.tracer.Begin(parent, "datatap", "write").
		Container(w.ch.name).Node(w.node).Step(step).AttrInt("bytes", size)
	start := w.ch.eng.Now()
	w.busy = true
	w.nextSeq++
	//iocheck:allow hotalloc descriptors are retained until acked by design; the ledger needs each one live
	m := &Meta{
		Step:    step,
		Size:    size,
		SrcNode: w.node,
		Data:    data,
		Span:    sp.ID(),
		Seq:     w.nextSeq,
		writer:  w,
		// The retained-step ledger owns the buffer lifecycle; releaseBuf
		// must never free it behind the ledger's back.
		released: true,
	}
	spill := ""
	switch {
	case w.ch.paused:
		spill = "paused"
	case w.overRetainCap():
		spill = "retained"
	case w.ch.nearFull():
		spill = "queue"
	case !w.buf.TryAcquire(int(size)):
		spill = "buffer"
	}
	if spill == "" {
		// Local buffer copy at memory bandwidth, as in the legacy path.
		if w.ch.mach != nil {
			w.ch.mach.Send(p, w.node, w.node, size)
		}
		m.Created = w.ch.eng.Now()
		e := w.retain(m, true)
		if !w.pushDescriptor(p) {
			if w.ch.mach != nil && !w.ch.mach.Faults().NodeUp(w.node) {
				// The writer's own node died mid-write. The write is
				// REJECTED (false), so the step never enters the ledger:
				// release the retention without the crash-lost counters —
				// those balance against StepsWritten, which this write is
				// not counted in — and leave a tombstone so the loss is
				// still explicit in the spill provenance.
				w.releaseEntry(e)
				delete(w.retained, e.m.Seq)
				w.ch.spillStoreFor().tombstone(w.ch.name, e.m, "writer-crash")
				w.finishWrite(start)
				sp.Attr("fail", "writer-crash").End()
				return false
			}
			spill = "push"
		} else if !w.ch.meta.TryPut(m) {
			// The queue filled (or closed) while the push was in flight;
			// degrade to the spill store rather than blocking or dropping.
			spill = "queue"
		}
		if spill != "" {
			w.ch.spillIn(p, e, spill)
		}
	} else {
		m.Created = w.ch.eng.Now()
		w.ch.spillIn(p, w.retain(m, false), spill)
	}
	w.ch.stats.StepsWritten++
	w.ch.stats.BytesWritten += size
	if l := w.ch.meta.Len(); l > w.ch.stats.MaxQueue {
		w.ch.stats.MaxQueue = l
	}
	// Every *accepted* write fans out to subscribers, spilled or not: the
	// hub's sequence stream mirrors StepsWritten exactly.
	w.ch.hub.Publish(m)
	w.finishWrite(start)
	if spill != "" {
		sp.Attr("spill", spill)
	}
	sp.End()
	return true
}

// markLost transitions a retained step to the lost state and arms the
// repair loop.
func (c *Channel) markLost(e *retEntry) {
	e.state = retLost
	e.lostAt = c.eng.Now()
	c.ensureRepair()
}

// admit applies at-least-once bookkeeping to a successfully pulled
// descriptor. Replays of an already-applied or already-claimed sequence
// are filtered here, which is what turns at-least-once delivery into
// exactly-once application. Fresh sequences are claimed (staged →
// pulled), and sequence gaps — steps that were invalidated or spilled out
// from under the queue — fire the gap trigger and the consumer callback.
func (r *Reader) admit(p *sim.Proc, m *Meta) bool {
	if !r.ch.alo() || m.writer == nil || m.Seq == 0 {
		return true
	}
	w := m.writer
	e := w.retained[m.Seq]
	if w.isApplied(m.Seq) || e == nil || e.state != retStaged {
		r.ch.stats.StepsDuplicate++
		r.ch.tracer.Instant(m.Span, "datatap", "duplicate").
			Container(r.ch.name).Node(r.node).Step(m.Step).End()
		return false
	}
	e.state = retPulled
	if m.Seq > w.expect {
		missing := m.Seq - w.expect
		r.ch.stats.Gaps += missing
		r.ch.tracer.Trigger(r.ch.gapReason)
		r.ch.noteGap(p, missing)
	}
	if m.Seq >= w.expect {
		w.expect = m.Seq + 1
	}
	return true
}

// Ack records the downstream processing acknowledgement for a fetched
// step: the writer drops its retained payload (freeing buffer space) and
// the sequence counts as applied. A small ack message is charged when the
// endpoints differ; the bookkeeping itself is reliable (it lives on the
// shared channel). In best-effort mode Ack is a no-op — buffer space was
// already released at pull time.
func (r *Reader) Ack(p *sim.Proc, m *Meta) {
	if m == nil || !r.ch.alo() || m.writer == nil || m.Seq == 0 {
		return
	}
	if r.ch.mach != nil && r.node != m.SrcNode {
		// Best-effort charge; a lost ack message does not lose the ack.
		r.ch.mach.Send(p, r.node, m.SrcNode, ackBytes)
	}
	w := m.writer
	e := w.retained[m.Seq]
	if e == nil {
		return // already acked (duplicate) or tombstoned
	}
	w.releaseEntry(e)
	delete(w.retained, m.Seq)
	w.markApplied(m.Seq)
	r.ch.stats.StepsAcked++
	r.ch.tracer.Instant(m.Span, "datatap", "ack").
		Container(r.ch.name).Node(r.node).Step(m.Step).End()
}

// --- spill store ---

// spillEntry is one payload resident in the spill store.
type spillEntry struct {
	e      *retEntry
	reason string
}

// spillStore is a channel's provenance-stamped BP spill stream plus the
// in-memory resident list the drain loop reinjects from. The BP bytes are
// the durable artifact: every spilled payload and every crash tombstone
// is one process group whose attributes record channel, sequence, source
// node, reason, and size.
type spillStore struct {
	buf      bytes.Buffer
	bw       *bp.Writer
	resident []*spillEntry
	err      error
}

// spillStoreFor lazily creates the channel's spill store. Once-per-
// channel initialization plus crash/pressure paths only.
//
//iocheck:cold
func (c *Channel) spillStoreFor() *spillStore {
	if c.spill == nil {
		c.spill = &spillStore{}
		c.spill.bw, c.spill.err = bp.NewWriter(&c.spill.buf)
	}
	return c.spill
}

// record appends one provenance process group to the BP stream. Runs
// only when a step spills or is lost to a crash — pressure degradation,
// not the per-event path.
//
//iocheck:cold
func (s *spillStore) record(channel string, m *Meta, kind, reason string) {
	if s.err != nil || s.bw == nil {
		return
	}
	pg := &bp.ProcessGroup{
		Group:    channel,
		Timestep: m.Step,
		Attrs: map[string]string{
			"datatap.spill.kind":   kind,
			"datatap.spill.reason": reason,
			"datatap.spill.seq":    fmt.Sprintf("%d", m.Seq),
			"datatap.spill.src":    fmt.Sprintf("%d", m.SrcNode),
			"datatap.spill.bytes":  fmt.Sprintf("%d", m.Size),
		},
	}
	s.err = s.bw.Append(pg)
}

// tombstone appends a zero-payload crash-loss provenance record.
func (s *spillStore) tombstone(channel string, m *Meta, reason string) {
	s.record(channel, m, "tombstone", reason)
}

// spillIn moves a retained step into the spill store: the write-buffer
// reservation is released (the payload now lives on node-local storage),
// a provenance record is appended, and the step joins the drain queue.
// Spilling is the pressure-degradation path, deliberately off the
// per-event allocation budget.
//
//iocheck:cold
func (c *Channel) spillIn(p *sim.Proc, e *retEntry, reason string) {
	w := e.m.writer
	if w != nil {
		w.releaseEntry(e)
	}
	e.state = retSpilled
	s := c.spillStoreFor()
	s.record(c.name, e.m, "payload", reason)
	s.resident = append(s.resident, &spillEntry{e: e, reason: reason})
	c.stats.StepsSpilled++
	c.stats.BytesSpilled += e.m.Size
	if p != nil {
		p.Sleep(spillTime(e.m.Size))
	}
	c.tracer.Trigger("spill:" + c.name)
	c.tracer.Instant(e.m.Span, "datatap", "spill").
		Container(c.name).Step(e.m.Step).Attr("reason", reason).
		AttrInt("bytes", e.m.Size).End()
	c.ensureRepair()
}

// SpillResidentSteps returns how many spilled payloads await draining.
func (c *Channel) SpillResidentSteps() int64 {
	if c.spill == nil {
		return 0
	}
	return int64(len(c.spill.resident))
}

// SpillResidentBytes returns the payload bytes resident in the spill
// store — the stable-storage term of the extended chunk-conservation
// invariant (BytesWritten + BytesRedelivered = BytesPulled +
// BytesInvalidated + QueuedBytes + SpillResidentBytes).
func (c *Channel) SpillResidentBytes() int64 {
	if c.spill == nil {
		return 0
	}
	var n int64
	for _, se := range c.spill.resident {
		n += se.e.m.Size
	}
	return n
}

// SpillDump finalizes the spill stream's footer index and returns the BP
// file bytes (nil when nothing ever spilled). Call after the run ends;
// the stream accepts no further records.
func (c *Channel) SpillDump() ([]byte, error) {
	if c.spill == nil || c.spill.bw == nil {
		return nil, nil
	}
	if c.spill.err != nil {
		return nil, c.spill.err
	}
	if err := c.spill.bw.Close(); err != nil {
		return nil, err
	}
	return c.spill.buf.Bytes(), nil
}

// --- repair loop: redelivery and spill drain ---

// ensureRepair starts the channel's repair process once.
func (c *Channel) ensureRepair() {
	if c.repairOn || !c.alo() || c.closed {
		return
	}
	c.repairOn = true
	c.eng.Go("datatap.repair "+c.name, c.repairLoop)
}

func (c *Channel) repairLoop(p *sim.Proc) {
	for !c.closed {
		p.Sleep(c.cfg.Delivery.DrainInterval)
		if c.closed {
			return
		}
		c.redeliverDue(p)
		c.drainSpill(p)
	}
}

// reemit pushes a lost step's descriptor back to the home node and
// re-enqueues it. It reports success; on failure the entry stays lost
// with its backoff clock reset.
func (c *Channel) reemit(p *sim.Proc, w *Writer, e *retEntry) bool {
	m := e.m
	if c.mach != nil && w.node != c.cfg.HomeNode {
		if !c.mach.Send(p, w.node, c.cfg.HomeNode, descriptorBytes) ||
			c.mach.Faults().DropData() {
			e.lostAt = c.eng.Now()
			return false
		}
	}
	m.Created = c.eng.Now()
	if !c.meta.TryPut(m) {
		e.lostAt = c.eng.Now()
		return false
	}
	e.state = retStaged
	e.redeliveries++
	c.stats.StepsRedelivered++
	c.stats.BytesRedelivered += m.Size
	c.tracer.Instant(m.Span, "datatap", "redeliver").
		Container(c.name).Node(w.node).Step(m.Step).
		AttrInt("attempt", int64(e.redeliveries)).End()
	return true
}

// redeliverDue re-emits lost steps older than the redeliver delay. A step
// whose writer node died is forfeited (tombstoned); one that exhausted
// its retry budget spills to disk instead of looping forever.
func (c *Channel) redeliverDue(p *sim.Proc) {
	now := c.eng.Now()
	for _, w := range c.writers {
		for _, seq := range w.sortedRetained(retLost) {
			e := w.retained[seq]
			if now-e.lostAt < c.cfg.Delivery.RedeliverDelay {
				continue
			}
			switch {
			case c.mach != nil && !c.mach.Faults().NodeUp(w.node):
				w.forfeit(e, "crash")
			case e.redeliveries >= c.cfg.Delivery.RedeliverRetries:
				// The payload keeps failing to move (long partition);
				// park it on stable storage. Redelivery-to-disk counts as
				// a redelivery so the byte ledger stays balanced.
				c.stats.StepsRedelivered++
				c.stats.BytesRedelivered += e.m.Size
				c.spillIn(p, e, "redeliver")
			default:
				c.reemit(p, w, e)
			}
		}
	}
}

// RedeliverLost immediately re-emits every lost step whose writer is
// alive, ignoring the backoff clock and retry budget — the serve path of
// the global manager's ResendReq control round. It returns how many steps
// were re-enqueued.
func (c *Channel) RedeliverLost(p *sim.Proc) int {
	if !c.alo() || c.closed {
		return 0
	}
	n := 0
	for _, w := range c.writers {
		if c.mach != nil && !c.mach.Faults().NodeUp(w.node) {
			continue
		}
		for _, seq := range w.sortedRetained(retLost) {
			if c.reemit(p, w, w.retained[seq]) {
				n++
			}
		}
	}
	return n
}

// drainSpill reinjects spilled steps, oldest first, while the queue has
// room and writer buffers accept the payload. Steps whose writer node
// died stay resident — they are durable, provenance-covered, and
// unreachable — without blocking younger steps from other writers.
func (c *Channel) drainSpill(p *sim.Proc) {
	if c.spill == nil || c.paused {
		return
	}
	burst := c.cfg.Delivery.DrainBurst
	// Detach the resident list for the pass: the disk-read sleeps below
	// yield the engine, so a writer can spillIn a NEW entry mid-pass.
	// Appends land on c.spill.resident (emptied here) and are merged back
	// after the filtered survivors — writing the filtered list over the
	// shared slice directly would silently drop the concurrent arrivals.
	pending := c.spill.resident
	c.spill.resident = nil
	kept := pending[:0]
	for i, se := range pending {
		if burst <= 0 || c.nearFull() {
			kept = append(kept, pending[i:]...)
			break
		}
		w := se.e.m.writer
		if w == nil || (c.mach != nil && !c.mach.Faults().NodeUp(w.node)) {
			kept = append(kept, se)
			continue
		}
		if !w.buf.TryAcquire(int(se.e.m.Size)) {
			kept = append(kept, se)
			continue
		}
		// Disk read back into the writer buffer, then a fresh descriptor
		// push; on failure the step stays resident.
		p.Sleep(spillTime(se.e.m.Size))
		se.e.buffered = true
		pushed := true
		if c.mach != nil && w.node != c.cfg.HomeNode {
			pushed = c.mach.Send(p, w.node, c.cfg.HomeNode, descriptorBytes) &&
				!c.mach.Faults().DropData()
		}
		if !pushed || !c.meta.TryPut(se.e.m) {
			w.releaseEntry(se.e)
			kept = append(kept, se)
			continue
		}
		se.e.state = retStaged
		se.e.m.Created = c.eng.Now()
		c.stats.StepsDrained++
		c.stats.BytesDrained += se.e.m.Size
		c.tracer.Instant(se.e.m.Span, "datatap", "drain").
			Container(c.name).Node(w.node).Step(se.e.m.Step).End()
		burst--
	}
	for i := len(kept); i < len(pending); i++ {
		pending[i] = nil
	}
	c.spill.resident = append(kept, c.spill.resident...)
}

// --- delivery snapshot ---

// DeliverySnapshot is the per-channel step ledger the chaos delivery
// oracle audits: in at-least-once mode every accepted write must be
// acked, crash-tombstoned, spill-resident, or still retained in flight.
type DeliverySnapshot struct {
	Channel          string
	Mode             DeliveryMode
	StepsWritten     int64
	StepsAcked       int64
	StepsCrashLost   int64
	StepsDuplicate   int64
	StepsRedelivered int64
	StepsSpilled     int64
	StepsDrained     int64
	Gaps             int64
	PushRetried      int64
	WriteRejected    int64
	InvalidatedLive  int64
	SpillResident    int64
	Retained         int64
	QueueLen         int
}

// Unaccounted returns the steps the ledger cannot explain (0 in a correct
// run; best-effort channels do not keep a ledger and always report 0).
func (d DeliverySnapshot) Unaccounted() int64 {
	if d.Mode != DeliveryAtLeastOnce {
		return 0
	}
	return d.StepsWritten - d.StepsAcked - d.StepsCrashLost - d.SpillResident - d.Retained
}

// DeliverySnapshot captures the channel's step ledger.
func (c *Channel) DeliverySnapshot() DeliverySnapshot {
	d := DeliverySnapshot{
		Channel:          c.name,
		Mode:             c.cfg.Delivery.Mode,
		StepsWritten:     c.stats.StepsWritten,
		StepsAcked:       c.stats.StepsAcked,
		StepsCrashLost:   c.stats.StepsCrashLost,
		StepsDuplicate:   c.stats.StepsDuplicate,
		StepsRedelivered: c.stats.StepsRedelivered,
		StepsSpilled:     c.stats.StepsSpilled,
		StepsDrained:     c.stats.StepsDrained,
		Gaps:             c.stats.Gaps,
		PushRetried:      c.stats.PushRetried,
		WriteRejected:    c.stats.WriteRejected,
		InvalidatedLive:  c.stats.InvalidatedLive,
		SpillResident:    c.SpillResidentSteps(),
		QueueLen:         c.meta.Len(),
	}
	for _, w := range c.writers {
		for _, e := range w.retained {
			if e.state != retSpilled {
				d.Retained++
			}
		}
	}
	for _, w := range c.removedWriters {
		for _, e := range w.retained {
			if e.state != retSpilled {
				d.Retained++
			}
		}
	}
	return d
}
