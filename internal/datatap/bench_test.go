package datatap

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// BenchmarkStagedTransfer measures write→fetch round trips through the
// staged transport (including the simulated network).
func BenchmarkStagedTransfer(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	cfg := cluster.Franklin()
	cfg.Nodes = 4
	mach := cluster.New(eng, cfg)
	ch := NewChannel(eng, mach, "bench", Config{HomeNode: 1})
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	eng.Go("writer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			w.Write(p, int64(i), 1<<20, nil)
		}
		ch.Close()
	})
	eng.Go("reader", func(p *sim.Proc) {
		for {
			if _, ok := r.Fetch(p); !ok {
				return
			}
		}
	})
	b.ResetTimer()
	eng.Run()
	if ch.Stats().StepsPulled != int64(b.N) {
		b.Fatalf("pulled %d, want %d", ch.Stats().StepsPulled, b.N)
	}
}

// BenchmarkPauseResume measures the pause/resume consistency round.
func BenchmarkPauseResume(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	ch := NewChannel(eng, nil, "bench", Config{})
	ch.NewWriter(0)
	ch.NewWriter(1)
	eng.Go("manager", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ch.Pause(p)
			ch.Resume()
		}
	})
	b.ResetTimer()
	eng.Run()
}
