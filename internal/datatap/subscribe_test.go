package datatap

import (
	"testing"

	"repro/internal/sim"
)

// Fan-out basics: every subscriber sees every descriptor published after
// it joined, and the ledger balances exactly.
func TestSubscribeFanOutConservation(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	h := ch.AttachHub(SubConfig{BufCap: 4, TailCap: 8})
	a := h.Subscribe("a", 2)
	b := h.Subscribe("b", 3)
	eng.Go("writer", func(p *sim.Proc) {
		w := ch.NewWriter(0)
		for i := int64(0); i < 10; i++ {
			w.Write(p, i, 1<<16, nil)
		}
		ch.Close()
	})
	drain := func(name string, s *Subscriber, want int64) {
		eng.Go(name, func(p *sim.Proc) {
			var got int64
			for {
				if _, ok := s.Fetch(p); !ok {
					break
				}
				got++
			}
			if got != want {
				t.Errorf("%s delivered %d, want %d", name, got, want)
			}
		})
	}
	drain("a", a, 10)
	drain("b", b, 10)
	eng.Run()
	for _, snap := range h.Snapshots() {
		if u := snap.Unaccounted(); u != 0 {
			t.Errorf("subscriber %s unaccounted %d: %+v", snap.ID, u, snap)
		}
	}
	if st := h.Stats(); st.PublishStall != 0 {
		t.Errorf("publish stalled a writer for %v", st.PublishStall)
	}
}

// Edge case: a subscriber joining after the channel has closed is legal
// and owed nothing — its first Fetch reports drained immediately instead
// of parking forever.
func TestLateJoinerOnClosedChannel(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	h := ch.AttachHub(SubConfig{})
	eng.Go("driver", func(p *sim.Proc) {
		w := ch.NewWriter(0)
		w.Write(p, 0, 1<<16, nil)
		ch.Close()
		late := h.Subscribe("late", 2)
		if m, ok := late.Fetch(p); ok || m != nil {
			t.Errorf("late joiner fetched %v after close, want drained", m)
		}
		snap := late.Snapshot()
		if snap.Published != 0 || snap.Unaccounted() != 0 {
			t.Errorf("late joiner owed something: %+v", snap)
		}
	})
	eng.Run()
}

// Edge case: a reconnecting subscriber whose durable cursor has fallen
// behind the tail's floor must be told to catch up through the spill
// store — Resume reports fromSpill and the deliveries that follow are
// spill reads, not tail restaging.
func TestReconnectCursorBehindTailFloorResumesFromSpill(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	h := ch.AttachHub(SubConfig{BufCap: 2, TailCap: 4})
	sub := h.Subscribe("dash", 2)
	eng.Go("driver", func(p *sim.Proc) {
		if !h.Crash("dash") {
			t.Error("crash refused")
			return
		}
		w := ch.NewWriter(0)
		for i := int64(0); i < 12; i++ {
			w.Write(p, i, 1<<16, nil)
		}
		cursor, lag, fromSpill, ok := h.Resume("dash")
		if !ok || !fromSpill {
			t.Errorf("Resume cursor=%d lag=%d fromSpill=%v ok=%v, want fromSpill",
				cursor, lag, fromSpill, ok)
		}
		if cursor != 1 || lag != 12 {
			t.Errorf("Resume cursor=%d lag=%d, want 1/12", cursor, lag)
		}
		ch.Close()
	})
	eng.Go("dash", func(p *sim.Proc) {
		var got int64
		for {
			if _, ok := sub.Fetch(p); !ok {
				break
			}
			got++
		}
		if got != 12 {
			t.Errorf("delivered %d, want 12", got)
		}
	})
	eng.Run()
	snap := sub.Snapshot()
	// Tail cap 4 over 12 writes evicts sequences 1-8 to the spill store;
	// catch-up must have read exactly those from disk.
	if snap.SpillReads != 8 {
		t.Errorf("spill reads %d, want 8: %+v", snap.SpillReads, snap)
	}
	if snap.Resumes != 1 || snap.Unaccounted() != 0 {
		t.Errorf("resume ledger: %+v", snap)
	}
}

// Edge case: a double crash of the same subscriber within one step is a
// no-op — the second Crash reports false and must not bump the reconnect
// generation, or a stale SubNotice could win the dedupe race.
func TestDoubleCrashSameStepIsIdempotent(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	h := ch.AttachHub(SubConfig{})
	sub := h.Subscribe("dash", 2)
	eng.Go("driver", func(p *sim.Proc) {
		w := ch.NewWriter(0)
		w.Write(p, 0, 1<<16, nil)
		if !h.Crash("dash") {
			t.Error("first crash refused")
		}
		gen := sub.Gen()
		if h.Crash("dash") {
			t.Error("second crash in the same step succeeded, want no-op")
		}
		if sub.Gen() != gen {
			t.Errorf("double crash bumped gen %d -> %d", gen, sub.Gen())
		}
		if !sub.Crashed() {
			t.Error("subscriber not crashed after double crash")
		}
		if _, _, _, ok := h.Resume("dash"); !ok {
			t.Error("resume after double crash refused")
		}
		if sub.Crashed() {
			t.Error("still crashed after resume")
		}
		ch.Close()
	})
	eng.Run()
	if snap := sub.Snapshot(); snap.Unaccounted() != 0 {
		t.Errorf("ledger after crash/crash/resume: %+v", snap)
	}
}
