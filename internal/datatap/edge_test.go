package datatap

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sim"
)

// newFaultyChannel builds a channel over an 8-node machine with the given
// fault schedule installed.
func newFaultyChannel(t *testing.T, fcfg fault.Config, cfg Config) (*sim.Engine, *cluster.Machine, *Channel) {
	t.Helper()
	eng := sim.NewEngine(11)
	ccfg := cluster.Franklin()
	ccfg.Nodes = 8
	mach := cluster.New(eng, ccfg)
	sched, err := fault.NewSchedule(eng, fcfg)
	if err != nil {
		t.Fatalf("fault schedule: %v", err)
	}
	mach.SetFaults(sched)
	ch := NewChannel(eng, mach, "edge", cfg)
	return eng, mach, ch
}

// An already-expired deadline on an empty queue fails immediately — no
// virtual time may pass waiting for a descriptor the caller gave no
// budget for.
func TestFetchTimeoutExpiredDeadline(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	r := ch.NewReader(1)
	ok := true
	var at sim.Time = -1
	eng.Go("reader", func(p *sim.Proc) {
		_, ok = r.FetchTimeout(p, 0)
		at = p.Now()
	})
	eng.Run()
	if ok {
		t.Fatal("expired deadline on an empty queue should fail")
	}
	if at != 0 {
		t.Fatalf("expired deadline waited %v; should fail immediately", at)
	}
}

// The FetchTimeout deadline covers the whole attempt: descriptors
// invalidated by a dead writer consume budget but do not restart it. A
// valid descriptor arriving after the original deadline must NOT be
// claimed — if it is, the per-descriptor loop restarted the clock.
func TestFetchTimeoutInvalidatedConsumesBudget(t *testing.T) {
	eng, _, ch := newFaultyChannel(t, fault.Config{
		Seed:    7,
		Crashes: []fault.Crash{{Node: 2, At: 5 * sim.Second}},
	}, Config{HomeNode: 1})
	dead := ch.NewWriter(2)
	late := ch.NewWriter(3)
	r := ch.NewReader(1)
	eng.Go("dead-writer", func(p *sim.Proc) {
		for i := int64(0); i < 2; i++ {
			if !dead.Write(p, i, 1<<20, nil) {
				t.Error("pre-crash write failed")
			}
		}
	})
	eng.Go("late-writer", func(p *sim.Proc) {
		p.Sleep(18 * sim.Second)
		late.Write(p, 100, 1<<20, nil)
	})
	var ok bool
	var elapsed sim.Time
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		start := p.Now()
		_, ok = r.FetchTimeout(p, 5*sim.Second)
		elapsed = p.Now() - start
	})
	eng.Run()
	if ok {
		t.Fatal("fetch should have timed out before the late descriptor arrived")
	}
	if elapsed < 5*sim.Second || elapsed > 8*sim.Second {
		t.Fatalf("elapsed %v; the two invalidations must consume the 5 s budget, not restart it", elapsed)
	}
	if got := ch.Stats().Invalidated; got != 2 {
		t.Fatalf("invalidated %d descriptors, want 2", got)
	}
	if ch.QueueLen() != 1 {
		t.Fatalf("queue %d; the post-deadline descriptor should still be parked", ch.QueueLen())
	}
}

// InvalidateNode is idempotent: the second purge of the same node finds
// nothing, and no counter is double-charged.
func TestDoubleInvalidateNode(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(2)
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			w.Write(p, i, 1<<20, nil)
		}
	})
	eng.Run()
	if n := ch.InvalidateNode(2); n != 3 {
		t.Fatalf("first purge dropped %d descriptors, want 3", n)
	}
	if n := ch.InvalidateNode(2); n != 0 {
		t.Fatalf("second purge dropped %d descriptors, want 0", n)
	}
	st := ch.Stats()
	if st.Invalidated != 3 || st.BytesInvalidated != 3<<20 {
		t.Fatalf("stats %+v; double purge must not double-charge", st)
	}
	if w.BufferedBytes() != 0 {
		t.Fatalf("buffered %d after purge, want 0", w.BufferedBytes())
	}
}

// RemoveWriter must release a writer parked on a full buffer: the write
// completes (the channel is still open) instead of deadlocking the
// producer process behind a detached endpoint.
func TestRemoveWriterRacingParkedWriter(t *testing.T) {
	eng, _, ch := newTestChannel(0, 1<<20)
	w := ch.NewWriter(2)
	var second bool
	var doneAt sim.Time = -1
	eng.Go("writer", func(p *sim.Proc) {
		w.Write(p, 0, 1<<20, nil) // fills the buffer
		second = w.Write(p, 1, 1<<20, nil)
		doneAt = p.Now()
	})
	eng.At(5*sim.Second, func() { ch.RemoveWriter(w) })
	eng.Run()
	if doneAt < 0 {
		t.Fatal("parked writer never released: RemoveWriter left it deadlocked")
	}
	if doneAt < 5*sim.Second {
		t.Fatalf("second write finished at %v, before the buffer could have been released", doneAt)
	}
	if !second {
		t.Fatal("write on the open channel should complete once released")
	}
	if len(ch.Writers()) != 0 {
		t.Fatalf("writer still attached: %d", len(ch.Writers()))
	}
	ch.RemoveWriter(w) // removing a detached writer is a no-op
}
