package datatap

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sim"
)

func newTestChannel(queueCap int, bufBytes int64) (*sim.Engine, *cluster.Machine, *Channel) {
	eng := sim.NewEngine(11)
	cfg := cluster.Franklin()
	cfg.Nodes = 8
	mach := cluster.New(eng, cfg)
	ch := NewChannel(eng, mach, "test", Config{
		QueueCap:       queueCap,
		WriterBufBytes: bufBytes,
		HomeNode:       1,
	})
	return eng, mach, ch
}

func TestWriteFetchRoundTrip(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	var got []int64
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 5; i++ {
			if !w.Write(p, i, 1<<20, i) {
				t.Error("write failed")
			}
		}
		ch.Close()
	})
	eng.Go("reader", func(p *sim.Proc) {
		for {
			m, ok := r.Fetch(p)
			if !ok {
				return
			}
			if m.Data.(int64) != m.Step {
				t.Errorf("data mismatch at step %d", m.Step)
			}
			got = append(got, m.Step)
		}
	})
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("fetched %d", len(got))
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("order %v", got)
		}
	}
	st := ch.Stats()
	if st.StepsWritten != 5 || st.StepsPulled != 5 || st.BytesPulled != 5<<20 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteIsAsyncUntilBufferFills(t *testing.T) {
	eng, _, ch := newTestChannel(0, 4<<20)
	w := ch.NewWriter(0)
	var stamps []sim.Time
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			w.Write(p, i, 1<<20, nil)
			stamps = append(stamps, p.Now())
		}
	})
	eng.Run()
	// All four fit in the buffer: writes complete quickly (just copy +
	// descriptor push), each well under a millisecond of virtual time.
	for i, s := range stamps {
		if s > 10*sim.Millisecond {
			t.Fatalf("write %d finished at %v; should be async", i, s)
		}
	}
	if w.BufferedBytes() != 4<<20 {
		t.Fatalf("buffered %d", w.BufferedBytes())
	}
}

func TestFullBufferBlocksWriter(t *testing.T) {
	eng, _, ch := newTestChannel(0, 2<<20)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	var thirdDone sim.Time
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			w.Write(p, i, 1<<20, nil)
		}
		thirdDone = p.Now()
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(30 * sim.Second)
		r.Fetch(p)
	})
	eng.Run()
	if thirdDone < 30*sim.Second {
		t.Fatalf("third write finished at %v; buffer should block until the pull", thirdDone)
	}
	if ch.Stats().WriterBlocked == 0 {
		t.Fatal("blocked time not accounted")
	}
}

func TestFullQueueBlocksWriter(t *testing.T) {
	eng, _, ch := newTestChannel(2, 0)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	var lastWrite sim.Time
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			w.Write(p, i, 1<<10, nil)
		}
		lastWrite = p.Now()
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(60 * sim.Second)
		r.Fetch(p)
	})
	eng.Run()
	if lastWrite < 60*sim.Second {
		t.Fatalf("queue overflow should have blocked the writer; finished %v", lastWrite)
	}
}

func TestPauseWaitsForInflightWrite(t *testing.T) {
	eng, _, ch := newTestChannel(0, 1<<20)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	// Fill the buffer so the next write blocks mid-flight.
	var pauseDone sim.Time
	var pauseWait sim.Time
	eng.Go("writer", func(p *sim.Proc) {
		w.Write(p, 0, 1<<20, nil) // fills buffer
		w.Write(p, 1, 1<<20, nil) // blocks inside Acquire (busy=true)
	})
	eng.Go("manager", func(p *sim.Proc) {
		p.Sleep(sim.Second) // let write 1 start and block
		pauseWait = ch.Pause(p)
		pauseDone = p.Now()
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second)
		r.Fetch(p) // frees buffer; write 1 completes; pause finishes
	})
	eng.Run()
	if pauseDone < 10*sim.Second {
		t.Fatalf("pause completed at %v, before the in-flight write could finish", pauseDone)
	}
	if pauseWait < 9*sim.Second {
		t.Fatalf("pause wait %v should reflect the in-flight write", pauseWait)
	}
	if ch.Stats().PauseWait != pauseWait {
		t.Fatal("pause wait not accounted in stats")
	}
}

func TestPausedWriterWaitsForResume(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	var wroteAt sim.Time
	eng.Go("manager", func(p *sim.Proc) {
		ch.Pause(p)
		if !ch.Paused() {
			t.Error("channel should be paused")
		}
	})
	eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(sim.Second) // pause happens first
		w.Write(p, 0, 1<<10, nil)
		wroteAt = p.Now()
	})
	eng.At(20*sim.Second, ch.Resume)
	eng.Run()
	if wroteAt < 20*sim.Second {
		t.Fatalf("write completed at %v while paused", wroteAt)
	}
	if ch.Paused() {
		t.Fatal("channel should be resumed")
	}
}

func TestResumeWithoutPauseIsNoop(t *testing.T) {
	_, _, ch := newTestChannel(0, 0)
	ch.Resume() // must not panic
	if ch.Paused() {
		t.Fatal("not paused")
	}
}

func TestCloseUnblocksReaders(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	r := ch.NewReader(1)
	sawClose := false
	eng.Go("reader", func(p *sim.Proc) {
		_, ok := r.Fetch(p)
		sawClose = !ok
	})
	eng.At(sim.Second, ch.Close)
	eng.Run()
	if !sawClose {
		t.Fatal("reader not released by close")
	}
	if !ch.Closed() {
		t.Fatal("Closed() false")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	ch.Close()
	ok := true
	eng.Go("writer", func(p *sim.Proc) { ok = w.Write(p, 0, 1, nil) })
	eng.Run()
	if ok {
		t.Fatal("write after close should fail")
	}
}

func TestFetchTimeout(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	r := ch.NewReader(1)
	var timedOut bool
	eng.Go("reader", func(p *sim.Proc) {
		_, ok := r.FetchTimeout(p, 2*sim.Second)
		timedOut = !ok
	})
	eng.Run()
	if !timedOut {
		t.Fatal("expected timeout")
	}
}

func TestMultiReaderSharding(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	counts := make([]int, 2)
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 10; i++ {
			w.Write(p, i, 1<<16, nil)
			p.Sleep(sim.Second)
		}
		ch.Close()
	})
	for ri := 0; ri < 2; ri++ {
		ri := ri
		r := ch.NewReader(1 + ri)
		eng.Go("reader", func(p *sim.Proc) {
			for {
				_, ok := r.Fetch(p)
				if !ok {
					return
				}
				counts[ri]++
				p.Sleep(500 * sim.Millisecond)
			}
		})
	}
	eng.Run()
	if counts[0]+counts[1] != 10 {
		t.Fatalf("counts %v", counts)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("work not shared: %v", counts)
	}
}

func TestQueueDepthTracking(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			w.Write(p, i, 1<<10, nil)
		}
	})
	eng.Run()
	if ch.QueueLen() != 4 || ch.Stats().MaxQueue != 4 {
		t.Fatalf("queue %d max %d", ch.QueueLen(), ch.Stats().MaxQueue)
	}
	if ch.String() == "" {
		t.Fatal("String empty")
	}
}

// Property: for arbitrary producer/consumer pacing and buffer bounds, no
// timestep is lost or duplicated and pulls arrive in step order.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, qCapRaw, bufRaw, nRaw uint8) bool {
		n := int64(nRaw%20) + 1
		qCap := int(qCapRaw % 4) // 0..3 (0 = unbounded)
		bufMB := int64(bufRaw%3) + 1
		eng := sim.NewEngine(seed)
		cfg := cluster.Franklin()
		cfg.Nodes = 4
		mach := cluster.New(eng, cfg)
		ch := NewChannel(eng, mach, "prop", Config{
			QueueCap:       qCap,
			WriterBufBytes: bufMB << 20,
			HomeNode:       1,
		})
		w := ch.NewWriter(0)
		r := ch.NewReader(1)
		var got []int64
		eng.Go("writer", func(p *sim.Proc) {
			for i := int64(0); i < n; i++ {
				p.Sleep(eng.Rand().Uniform(0, 2*sim.Second))
				if !w.Write(p, i, 1<<20, nil) {
					return
				}
			}
			ch.Close()
		})
		eng.Go("reader", func(p *sim.Proc) {
			for {
				p.Sleep(eng.Rand().Uniform(0, 2*sim.Second))
				m, ok := r.Fetch(p)
				if !ok {
					return
				}
				got = append(got, m.Step)
			}
		})
		eng.Run()
		if int64(len(got)) != n {
			return false
		}
		for i, s := range got {
			if s != int64(i) {
				return false
			}
		}
		// All buffer space returned.
		return w.BufferedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: pause/resume cycles never lose steps.
func TestPauseResumeConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int64(nRaw%15) + 5
		eng := sim.NewEngine(seed)
		ch := NewChannel(eng, nil, "pp", Config{})
		w := ch.NewWriter(0)
		r := ch.NewReader(1)
		var pulled int64
		eng.Go("writer", func(p *sim.Proc) {
			for i := int64(0); i < n; i++ {
				p.Sleep(sim.Second)
				w.Write(p, i, 1<<10, nil)
			}
			ch.Close()
		})
		eng.Go("manager", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(eng.Rand().Uniform(sim.Second, 5*sim.Second))
				ch.Pause(p)
				p.Sleep(eng.Rand().Uniform(0, 3*sim.Second))
				ch.Resume()
			}
		})
		eng.Go("reader", func(p *sim.Proc) {
			for {
				_, ok := r.Fetch(p)
				if !ok {
					return
				}
				pulled++
			}
		})
		eng.Run()
		return pulled == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: under a random fault schedule — link degradation, transient
// partitions, drop windows, a bystander crash, everything except
// permanent writer death — every step the writer successfully published
// is accounted exactly once: pulled by the reader or invalidated by a
// fault, never lost silently and never duplicated.
func TestFaultScheduleConservationProperty(t *testing.T) {
	f := func(seed int64, faultRaw, nRaw, winRaw uint8) bool {
		n := int64(nRaw%25) + 5
		eng := sim.NewEngine(seed)
		ccfg := cluster.Franklin()
		ccfg.Nodes = 4
		mach := cluster.New(eng, ccfg)
		// Build a random fault plan. Node 0 (the writer) never crashes;
		// partition windows are transient and end before the horizon.
		fcfg := fault.Config{Seed: seed}
		winStart := sim.Time(winRaw%40) * sim.Second
		winEnd := winStart + sim.Time(faultRaw%20+2)*sim.Second
		if faultRaw&1 != 0 {
			fcfg.Links = append(fcfg.Links, fault.LinkFault{
				From: winStart, Until: winEnd,
				LatencyFactor: float64(faultRaw%7) + 1, SlowdownFactor: 2,
			})
		}
		if faultRaw&2 != 0 {
			fcfg.Partitions = append(fcfg.Partitions, fault.Partition{
				From: winStart, Until: winEnd, Nodes: []int{1},
			})
		}
		if faultRaw&4 != 0 {
			fcfg.Drops = append(fcfg.Drops, fault.DropWindow{
				From: winStart, Until: winEnd, Prob: 0.5,
			})
		}
		if faultRaw&8 != 0 {
			fcfg.Crashes = append(fcfg.Crashes, fault.Crash{Node: 3, At: winStart})
		}
		sched, err := fault.NewSchedule(eng, fcfg)
		if err != nil {
			return false
		}
		mach.SetFaults(sched)
		ch := NewChannel(eng, mach, "faultprop", Config{
			QueueCap:       int(faultRaw % 5),
			WriterBufBytes: 8 << 20,
			HomeNode:       1,
		})
		w := ch.NewWriter(0)
		r := ch.NewReader(1)
		seen := map[int64]bool{}
		dup := false
		eng.Go("writer", func(p *sim.Proc) {
			for i := int64(0); i < n; i++ {
				p.Sleep(eng.Rand().Uniform(0, 2*sim.Second))
				w.Write(p, i, 1<<20, nil)
			}
			ch.Close()
		})
		eng.Go("reader", func(p *sim.Proc) {
			for {
				p.Sleep(eng.Rand().Uniform(0, 2*sim.Second))
				m, ok := r.Fetch(p)
				if !ok {
					return
				}
				if seen[m.Step] {
					dup = true
				}
				seen[m.Step] = true
			}
		})
		eng.Run()
		if dup {
			return false
		}
		st := ch.Stats()
		// Conservation: published == pulled + invalidated (the reader
		// drained the closed queue, so nothing is left parked).
		if st.StepsPulled+st.Invalidated != st.StepsWritten {
			return false
		}
		if int64(len(seen)) != st.StepsPulled {
			return false
		}
		// Every buffer reservation was returned, pulled or invalidated.
		return w.BufferedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHeadAge(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	if ch.HeadAge(5*sim.Second) != 0 {
		t.Fatal("empty queue should have zero head age")
	}
	w := ch.NewWriter(0)
	eng.Go("writer", func(p *sim.Proc) {
		w.Write(p, 0, 1<<10, nil)
	})
	eng.Run()
	created := eng.Now()
	if got := ch.HeadAge(created + 7*sim.Second); got < 7*sim.Second {
		t.Fatalf("head age %v, want >= 7s", got)
	}
}

func TestRequeuePreservesStep(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	var first, second int64 = -1, -1
	eng.Go("writer", func(p *sim.Proc) {
		w.Write(p, 42, 1<<20, "payload")
	})
	eng.Go("reader", func(p *sim.Proc) {
		m, ok := r.Fetch(p)
		if !ok {
			t.Error("fetch failed")
			return
		}
		first = m.Step
		if !ch.Requeue(m) {
			t.Error("requeue failed")
			return
		}
		m2, ok := r.Fetch(p)
		if !ok {
			t.Error("refetch failed")
			return
		}
		second = m2.Step
		if m2.Data != "payload" {
			t.Error("payload lost across requeue")
		}
	})
	eng.Run()
	if first != 42 || second != 42 {
		t.Fatalf("steps %d %d", first, second)
	}
	// Pull accounting nets out to one effective pull.
	if ch.Stats().StepsPulled != 1 {
		t.Fatalf("pulled %d, want 1 net", ch.Stats().StepsPulled)
	}
}

// TestRequeueDuringPausePinsQueueStats is the regression for the
// Pause/Requeue interaction: a requeue landing inside a pause window is
// a queue insertion, so it must decrement the pull ledger, count as a
// paused requeue, and participate in the MaxQueue high-water — the bug
// was a stale MaxQueue (and a silent overflow trigger) when every
// insertion during the pause came from Requeue rather than Write.
func TestRequeueDuringPausePinsQueueStats(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	eng.Go("driver", func(p *sim.Proc) {
		// Write/fetch strictly alternated: the queue never holds more
		// than one descriptor, so the Write-side high-water is 1.
		var held []*Meta
		for i := int64(0); i < 3; i++ {
			if !w.Write(p, i, 1<<20, nil) {
				t.Error("write failed")
				return
			}
			m, ok := r.Fetch(p)
			if !ok {
				t.Error("fetch failed")
				return
			}
			held = append(held, m)
		}
		st := ch.Stats()
		if st.StepsPulled != 3 || st.BytesPulled != 3<<20 {
			t.Errorf("pre-pause ledger: pulled=%d bytes=%d", st.StepsPulled, st.BytesPulled)
		}
		if st.MaxQueue != 1 {
			t.Errorf("pre-pause MaxQueue=%d, want 1", st.MaxQueue)
		}

		ch.Pause(p)
		for _, m := range held {
			if !ch.Requeue(m) {
				t.Error("requeue failed mid-pause")
				return
			}
		}
		st = ch.Stats()
		if st.Requeued != 3 || st.RequeuedPaused != 3 {
			t.Errorf("mid-pause requeued=%d paused=%d, want 3/3", st.Requeued, st.RequeuedPaused)
		}
		if st.StepsPulled != 0 || st.BytesPulled != 0 {
			t.Errorf("mid-pause ledger not unwound: pulled=%d bytes=%d", st.StepsPulled, st.BytesPulled)
		}
		// The three requeues alone must raise the high-water past the
		// Write-side peak of 1.
		if st.MaxQueue != 3 {
			t.Errorf("mid-pause MaxQueue=%d, want 3", st.MaxQueue)
		}

		ch.Resume()
		for i := int64(0); i < 3; i++ {
			m, ok := r.Fetch(p)
			if !ok {
				t.Error("refetch failed")
				return
			}
			if m.Step != i {
				t.Errorf("refetch order: got step %d, want %d", m.Step, i)
			}
		}
		st = ch.Stats()
		if st.StepsPulled != 3 || st.BytesPulled != 3<<20 {
			t.Errorf("post-resume ledger: pulled=%d bytes=%d", st.StepsPulled, st.BytesPulled)
		}
		if st.Requeued != 3 || st.RequeuedPaused != 3 {
			t.Errorf("post-resume requeued=%d paused=%d changed", st.Requeued, st.RequeuedPaused)
		}
	})
	eng.Run()
}

func TestRequeueAfterCloseFails(t *testing.T) {
	eng, _, ch := newTestChannel(0, 0)
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	eng.Go("x", func(p *sim.Proc) {
		w.Write(p, 0, 1<<10, nil)
		m, _ := r.Fetch(p)
		ch.Close()
		if ch.Requeue(m) {
			t.Error("requeue into closed channel should fail")
		}
	})
	eng.Run()
}

func TestPullTokensSerializePulls(t *testing.T) {
	eng := sim.NewEngine(11)
	cfg := cluster.Franklin()
	cfg.Nodes = 8
	mach := cluster.New(eng, cfg)
	ch := NewChannel(eng, mach, "sched", Config{HomeNode: 1, PullTokens: 1})
	w := ch.NewWriter(0)
	// Stage 4 payloads up front, then let 4 readers race.
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			w.Write(p, i, 64<<20, nil)
		}
	})
	var finishes []sim.Time
	for r := 0; r < 4; r++ {
		rd := ch.NewReader(1 + r)
		eng.Go("reader", func(p *sim.Proc) {
			if _, ok := rd.FetchTimeout(p, sim.Minute); ok {
				finishes = append(finishes, p.Now())
			}
		})
	}
	eng.Run()
	if len(finishes) != 4 {
		t.Fatalf("finished %d pulls", len(finishes))
	}
	// With one token, pulls end strictly one transfer apart.
	minGap := sim.Time(1 << 62)
	for i := 1; i < len(finishes); i++ {
		if gap := finishes[i] - finishes[i-1]; gap < minGap {
			minGap = gap
		}
	}
	xfer := 2 * sim.Time(float64(64<<20)/(1600*1024*1024)*float64(sim.Second))
	if minGap < xfer/2 {
		t.Fatalf("pulls overlapped: min gap %v vs transfer %v", minGap, xfer)
	}
}

func TestPullSpacingEnforcesGap(t *testing.T) {
	eng := sim.NewEngine(11)
	ch := NewChannel(eng, nil, "spaced", Config{PullTokens: 1, PullSpacing: 5 * sim.Second})
	w := ch.NewWriter(0)
	r := ch.NewReader(1)
	var starts []sim.Time
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			w.Write(p, i, 1<<10, nil)
		}
		ch.Close()
	})
	eng.Go("reader", func(p *sim.Proc) {
		for {
			if _, ok := r.Fetch(p); !ok {
				return
			}
			starts = append(starts, p.Now())
		}
	})
	eng.Run()
	if len(starts) != 3 {
		t.Fatalf("pulled %d", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] < 5*sim.Second {
			t.Fatalf("spacing violated: %v", starts)
		}
	}
}
