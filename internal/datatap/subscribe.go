// Multi-subscriber streaming fan-out for DataTap channels.
//
// A SubHub attached to a channel observes every accepted write and fans
// the descriptor stream out to any number of subscribers — dashboards,
// checkpointers, ad-hoc analysis — each advancing an independent cursor
// over a hub-assigned sequence. The design goal is the paper's offline
// re-route guarantee turned inside out: no subscriber, however slow or
// dead, may ever block the simulation. Publish therefore takes no
// process handle at all — it is structurally unable to park — and the
// per-subscriber robustness ladder degrades instead:
//
//  1. Backpressure against the subscriber only: each subscriber owns a
//     small staged buffer; when it is full the subscriber simply lags.
//     Writers never see the lag.
//  2. Degrade to provenance-stamped spill: the hub keeps a bounded
//     in-memory tail of recent descriptors; entries evicted while a lagging
//     (or crashed) subscriber still needs them are written to the channel's
//     BP spill stream — the paper's disk-with-provenance offline path —
//     and the subscriber later catches up through spill reads at disk
//     bandwidth, paying the cost on its own clock.
//  3. Crash and reconnect: a crashed subscriber keeps its durable cursor.
//     On reconnect the serving container runs epoch-fenced SubResume /
//     SubReplay control rounds (see internal/core) that restore the
//     subscriber from spill or tail; the rounds ride the manager's
//     retry/backoff/dedupe machinery so redelivery is idempotent.
//
// Accounting is exact and per subscriber: every published sequence past a
// subscriber's join point is delivered, knowingly dropped, staged in its
// buffer, pending in the shared tail, or resident in the spill store.
// The chaos sub-conservation oracle asserts exactly that equation.
package datatap

import (
	"repro/internal/sim"
)

// SubConfig tunes a channel's subscriber hub.
type SubConfig struct {
	// BufCap bounds each subscriber's staged descriptor buffer
	// (default 8).
	BufCap int
	// TailCap bounds the hub's shared in-memory tail of recent
	// descriptors (default 64). Entries evicted past a subscriber's
	// cursor degrade to the spill store.
	TailCap int
	// DisableSpill turns the degrade tier off: evicted entries a
	// subscriber still needs are counted as knowing drops instead.
	DisableSpill bool
	// InjectCursorSkip, when n > 0, makes every n-th spill catch-up read
	// advance the cursor without delivering — a deliberately seeded
	// conservation bug the chaos smoke test uses to prove the
	// sub-conservation oracle actually fires. Never set outside tests.
	InjectCursorSkip int
}

// withDefaults fills zero fields.
func (c SubConfig) withDefaults() SubConfig {
	if c.BufCap <= 0 {
		c.BufCap = 8
	}
	if c.TailCap <= 0 {
		c.TailCap = 64
	}
	return c
}

// SubHubStats aggregates hub-wide activity.
type SubHubStats struct {
	// Published counts descriptors fanned out (== the channel's accepted
	// writes since the hub attached).
	Published int64
	// Spilled / SpillReclaimed count tail evictions into the spill store
	// and spill entries retired once no subscriber can need them.
	Spilled        int64
	SpillReclaimed int64
	// Delivered / Dropped sum the per-subscriber counters.
	Delivered int64
	Dropped   int64
	// SpillReads counts catch-up reads served from the spill store.
	SpillReads int64
	// Resumes / Replays count served SubResume / SubReplay rounds.
	Resumes int64
	Replays int64
	// PublishStall is the virtual time Publish ever parked a writer.
	// Publish takes no process handle, so this is structurally zero; the
	// chaos SLA oracle asserts it stays that way.
	PublishStall sim.Time
}

// SubHub fans a channel's descriptor stream out to subscribers. One hub
// per channel, created by Channel.AttachHub.
type SubHub struct {
	ch  *Channel
	cfg SubConfig

	// pubSeq is the hub-assigned monotonic sequence of the latest
	// published descriptor (1-based; 0 = nothing published).
	pubSeq int64
	// tail holds the most recent descriptors; tail[0] has sequence
	// baseSeq. When the tail is empty baseSeq == pubSeq+1.
	tail    []*Meta
	baseSeq int64

	// spillRes maps evicted-but-still-needed sequences to their
	// descriptors; spillLow is the lowest sequence that may still be
	// resident (the reclaim scan cursor).
	spillRes map[int64]*Meta
	spillLow int64

	subs  map[string]*Subscriber
	order []*Subscriber // join order; all iteration goes through this

	stats  SubHubStats
	closed bool
}

// AttachHub creates (once) and returns the channel's subscriber hub.
func (c *Channel) AttachHub(cfg SubConfig) *SubHub {
	if c.hub == nil {
		c.hub = &SubHub{
			ch:       c,
			cfg:      cfg.withDefaults(),
			baseSeq:  1,
			spillRes: make(map[int64]*Meta),
			spillLow: 1,
			subs:     make(map[string]*Subscriber),
		}
	}
	return c.hub
}

// Hub returns the attached subscriber hub (nil if none).
func (c *Channel) Hub() *SubHub { return c.hub }

// Stats returns a snapshot of the hub counters.
func (h *SubHub) Stats() SubHubStats {
	if h == nil {
		return SubHubStats{}
	}
	return h.stats
}

// Closed reports whether the hub's channel has closed.
func (h *SubHub) Closed() bool { return h == nil || h.closed }

// Subscriber is one streaming consumer with an independent cursor.
type Subscriber struct {
	hub  *SubHub
	id   string
	node int

	// cursor is the next sequence to deliver; joinSeq is the hub sequence
	// at join time (sequences <= joinSeq are not owed to this
	// subscriber).
	cursor  int64
	joinSeq int64

	// buf is a fixed-capacity ring staging descriptors contiguously from
	// cursor; it only ever holds sequences still reachable when staged, so
	// the entry i slots past bufHead has sequence cursor+i. A ring rather
	// than an append-grown slice: staging runs under a writer's Publish and
	// must not allocate per event.
	buf     []*Meta
	bufHead int
	bufLen  int

	wake    *sim.Event
	crashed bool
	// gen counts reconnect generations: each Crash bumps it, and a
	// SubNotice carries it so stale reconnect rounds are deduped.
	gen int64

	delivered  int64
	dropped    int64
	spillReads int64
	resumes    int64
	replays    int64
	maxLag     int64
	skipTick   int64 // InjectCursorSkip counter
}

// Subscribe attaches a new subscriber reading from the given node. The
// subscriber starts at the live edge (it is owed nothing published before
// it joined); joining a closed hub is legal and yields an immediately
// drained subscriber. Re-subscribing an existing id returns the existing
// subscriber (reconnect goes through Crash/Resume, not re-subscribe).
func (h *SubHub) Subscribe(id string, node int) *Subscriber {
	if s := h.subs[id]; s != nil {
		return s
	}
	s := &Subscriber{hub: h, id: id, node: node, joinSeq: h.pubSeq,
		cursor: h.pubSeq + 1, buf: make([]*Meta, h.cfg.BufCap)}
	h.subs[id] = s
	h.order = append(h.order, s)
	return s
}

// Sub returns the subscriber with the given id (nil if unknown).
func (h *SubHub) Sub(id string) *Subscriber {
	if h == nil {
		return nil
	}
	return h.subs[id]
}

// ID returns the subscriber's identifier.
func (s *Subscriber) ID() string { return s.id }

// Gen returns the subscriber's reconnect generation.
func (s *Subscriber) Gen() int64 { return s.gen }

// Crashed reports whether the subscriber is currently crashed.
func (s *Subscriber) Crashed() bool { return s.crashed }

// Lag returns how many published sequences the subscriber has not yet
// consumed.
func (s *Subscriber) Lag() int64 {
	lag := s.hub.pubSeq - s.cursor + 1
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Publish fans one accepted write out to the subscribers. It takes no
// process handle: it cannot send, sleep, or park, so a slow subscriber is
// structurally unable to block the writer calling it. Nil-safe.
func (h *SubHub) Publish(m *Meta) {
	if h == nil || h.closed {
		return
	}
	h.pubSeq++
	h.tail = append(h.tail, m)
	h.stats.Published++
	for _, s := range h.order {
		if lag := h.pubSeq - s.cursor + 1; lag > s.maxLag {
			s.maxLag = lag
		}
		if !s.crashed {
			s.stage()
			s.wakeUp()
		}
	}
	h.evict()
}

// stage moves contiguous descriptors from the tail into the subscriber's
// buffer while there is room. buf stays contiguous from cursor: staging
// stops at the first sequence no longer in the tail (those are served by
// the spill catch-up path instead).
func (s *Subscriber) stage() {
	h := s.hub
	for s.bufLen < h.cfg.BufCap {
		next := s.cursor + int64(s.bufLen)
		if next < h.baseSeq || next > h.pubSeq {
			return
		}
		s.buf[(s.bufHead+s.bufLen)%len(s.buf)] = h.tail[next-h.baseSeq]
		s.bufLen++
	}
}

// minCursor returns the lowest cursor over every subscriber, crashed ones
// included — the watermark below which no sequence can be owed.
func (h *SubHub) minCursor() int64 {
	min := h.pubSeq + 1
	for _, s := range h.order {
		if s.cursor < min {
			min = s.cursor
		}
	}
	return min
}

// evict trims the tail to its bound. An evicted sequence some subscriber
// may still need (sequence >= the cursor watermark — crashed subscribers
// count, so their cleared buffers stay recoverable) degrades to the spill
// store with a provenance record; with spill disabled, every subscriber
// that still needs it takes a knowing drop instead, counted here at evict
// time.
func (h *SubHub) evict() {
	for len(h.tail) > h.cfg.TailCap {
		seq, m := h.baseSeq, h.tail[0]
		h.tail[0] = nil
		h.tail = h.tail[1:]
		h.baseSeq++
		if seq < h.minCursor() {
			continue // everyone consumed or passed it
		}
		if h.cfg.DisableSpill {
			for _, s := range h.order {
				// Needed = past the cursor and not already staged in buf.
				if seq >= s.cursor+int64(s.bufLen) {
					s.dropped++
					h.stats.Dropped++
				}
			}
			continue
		}
		h.spillToStore(seq, m)
	}
}

// spillToStore moves one evicted descriptor to the spill tier. The BP
// write itself is modeled asynchronously (local storage accepts the burst;
// catch-up reads pay the disk cost), so eviction — which runs under a
// writer's Publish — charges no time.
//
//iocheck:cold
func (h *SubHub) spillToStore(seq int64, m *Meta) {
	h.spillRes[seq] = m
	h.ch.spillStoreFor().record(h.ch.name, m, "sub-payload", "sub-lag")
	h.stats.Spilled++
	h.ch.tracer.Instant(m.Span, "datatap", "sub.spill").
		Container(h.ch.name).Step(m.Step).AttrInt("seq", seq).End()
}

// reclaim retires spill entries no subscriber can need any more.
//
//iocheck:cold
func (h *SubHub) reclaim() {
	min := h.minCursor()
	for seq := h.spillLow; seq < min; seq++ {
		if _, ok := h.spillRes[seq]; ok {
			delete(h.spillRes, seq)
			h.stats.SpillReclaimed++
		}
	}
	if min > h.spillLow {
		h.spillLow = min
	}
}

// park blocks the subscriber's process until the hub wakes it.
func (s *Subscriber) park(p *sim.Proc) {
	if s.wake == nil {
		s.wake = sim.NewEvent(s.hub.ch.eng)
	}
	s.wake.Wait(p)
}

// wakeUp releases a parked subscriber (one-shot event, recreated on the
// next park).
func (s *Subscriber) wakeUp() {
	if s.wake != nil {
		s.wake.Fire()
		s.wake = nil
	}
}

// Fetch delivers the next descriptor past the subscriber's cursor,
// blocking the *subscriber's* process — never a writer — until one is
// available. Buffered descriptors are charged as a transfer from the
// source node; catch-up from the spill store is charged at disk
// bandwidth. ok is false once the hub is closed and the subscriber has
// drained. A crashed subscriber parks until Resume.
func (s *Subscriber) Fetch(p *sim.Proc) (*Meta, bool) {
	h := s.hub
	for {
		if s.crashed {
			s.park(p)
			continue
		}
		if s.bufLen > 0 {
			m := s.buf[s.bufHead]
			ok := true
			if h.ch.mach != nil && m.SrcNode != s.node {
				ok = h.ch.mach.Send(p, m.SrcNode, s.node, m.Size)
			}
			if s.crashed {
				// Crashed mid-transfer: the buffer was cleared under us and
				// the sequence stays owed (tail or spill keeps it). Park.
				continue
			}
			// Pop and account only after the transfer, so a snapshot taken
			// while the send is in flight still sees the sequence staged.
			s.buf[s.bufHead] = nil
			s.bufHead = (s.bufHead + 1) % len(s.buf)
			s.bufLen--
			s.cursor++
			h.reclaim()
			if !ok {
				// The source node died with the payload unread: a knowing
				// drop, not silent loss.
				s.dropped++
				h.stats.Dropped++
				continue
			}
			s.delivered++
			h.stats.Delivered++
			s.stage()
			return m, true
		}
		if s.cursor < h.baseSeq {
			// Behind the tail: catch up through the spill store.
			if m, ok := h.spillRes[s.cursor]; ok {
				sp := h.ch.tracer.Begin(m.Span, "datatap", "sub.catchup").
					Container(h.ch.name).Node(s.node).Step(m.Step).
					AttrInt("lag", s.Lag())
				p.Sleep(spillTime(m.Size))
				if s.crashed {
					// Crashed mid-read; the entry stays resident (the
					// reclaim watermark cannot pass our cursor).
					sp.Attr("fail", "crashed").End()
					continue
				}
				if n := int64(h.cfg.InjectCursorSkip); n > 0 {
					s.skipTick++
					if s.skipTick%n == 0 {
						// Seeded bug (tests only): skip the sequence without
						// delivering or counting — the conservation oracle
						// must catch this.
						s.cursor++
						sp.Attr("fail", "cursor-skip").End()
						continue
					}
				}
				s.cursor++
				s.delivered++
				s.spillReads++
				h.stats.Delivered++
				h.stats.SpillReads++
				h.reclaim()
				sp.End()
				return m, true
			}
			// Evicted without spill: already counted dropped at evict time.
			s.cursor++
			continue
		}
		s.stage()
		if s.bufLen > 0 {
			continue
		}
		if h.closed {
			return nil, false
		}
		s.park(p)
	}
}

// Crash marks the subscriber crashed: its staged buffer is discarded (the
// tail and spill tiers keep every sequence recoverable), its durable
// cursor survives, and its process parks on the next Fetch. Idempotent —
// a double crash within one step reports false and changes nothing.
func (h *SubHub) Crash(id string) bool {
	s := h.subs[id]
	if s == nil || s.crashed {
		return false
	}
	s.crashed = true
	s.gen++
	// Cleared buffer entries already evicted from the tail can only come
	// back through the spill store; with spill disabled they are gone —
	// count the loss now.
	if h.cfg.DisableSpill {
		for i := 0; i < s.bufLen; i++ {
			if seq := s.cursor + int64(i); seq < h.baseSeq {
				if _, ok := h.spillRes[seq]; !ok {
					s.dropped++
					h.stats.Dropped++
				}
			}
		}
	}
	for i := range s.buf {
		s.buf[i] = nil
	}
	s.bufHead, s.bufLen = 0, 0
	h.ch.tracer.Instant(0, "datatap", "sub.crash").
		Container(h.ch.name).Node(s.node).AttrInt("gen", s.gen).
		AttrInt("lag", s.Lag()).End()
	return true
}

// Resume serves a SubResume control round: it revives a crashed
// subscriber at its durable cursor, restages what the tail still holds,
// and reports where catch-up must come from. Idempotent — resuming a live
// subscriber (a retried round) just reports its current state.
//
//iocheck:cold
func (h *SubHub) Resume(id string) (cursor, lag int64, fromSpill, ok bool) {
	s := h.subs[id]
	if s == nil {
		return 0, 0, false, false
	}
	if s.crashed {
		s.crashed = false
		s.resumes++
		h.stats.Resumes++
	}
	s.stage()
	s.wakeUp()
	fromSpill = s.cursor < h.baseSeq
	h.ch.tracer.Instant(0, "datatap", "sub.resume").
		Container(h.ch.name).Node(s.node).AttrInt("lag", s.Lag()).
		AttrInt("cursor", s.cursor).End()
	return s.cursor, s.Lag(), fromSpill, true
}

// Replay serves a SubReplay control round: it restages the tail window
// past the given cursor for a resumed subscriber whose catch-up starts in
// the tail (no spill residency). Idempotent; returns how many
// descriptors are staged after the call.
//
//iocheck:cold
func (h *SubHub) Replay(id string, from int64) (staged int64, ok bool) {
	s := h.subs[id]
	if s == nil {
		return 0, false
	}
	s.replays++
	h.stats.Replays++
	s.stage()
	s.wakeUp()
	return int64(s.bufLen), true
}

// Close wakes every parked subscriber; Fetch drains what remains and then
// reports ok=false. Called from Channel.Close (nil-safe).
func (h *SubHub) Close() {
	if h == nil || h.closed {
		return
	}
	h.closed = true
	for _, s := range h.order {
		s.wakeUp()
	}
}

// SubSnapshot is one subscriber's conservation ledger, audited by the
// chaos sub-conservation oracle: every sequence published past the join
// point is delivered, knowingly dropped, staged, tail-pending, or
// spill-resident — nothing else.
type SubSnapshot struct {
	ID        string
	Published int64 // sequences published since this subscriber joined
	Delivered int64
	Dropped   int64
	Buffered  int64
	// TailPending counts sequences owed to the subscriber still held in
	// the hub's shared tail (beyond its staged buffer).
	TailPending int64
	// SpillResident counts sequences owed to the subscriber currently
	// resident in the spill store.
	SpillResident int64
	SpillReads    int64
	Resumes       int64
	Lag           int64
	MaxLag        int64
	Crashed       bool
}

// Unaccounted returns the sequences the ledger cannot explain (0 in a
// correct run).
func (s SubSnapshot) Unaccounted() int64 {
	return s.Published - s.Delivered - s.Dropped - s.Buffered - s.TailPending - s.SpillResident
}

// Snapshot captures one subscriber's ledger.
//
//iocheck:cold
func (s *Subscriber) Snapshot() SubSnapshot {
	h := s.hub
	snap := SubSnapshot{
		ID:         s.id,
		Published:  h.pubSeq - s.joinSeq,
		Delivered:  s.delivered,
		Dropped:    s.dropped,
		Buffered:   int64(s.bufLen),
		SpillReads: s.spillReads,
		Resumes:    s.resumes,
		Lag:        s.Lag(),
		MaxLag:     s.maxLag,
		Crashed:    s.crashed,
	}
	// Sequences past the staged buffer split at baseSeq: at or above it
	// they sit in the shared tail; below it they are spill-resident (or
	// already counted dropped at evict time).
	start := s.cursor + int64(s.bufLen)
	if tailFrom := max64(start, h.baseSeq); tailFrom <= h.pubSeq {
		snap.TailPending = h.pubSeq - tailFrom + 1
	}
	for seq := start; seq < h.baseSeq; seq++ {
		if _, ok := h.spillRes[seq]; ok {
			snap.SpillResident++
		}
	}
	return snap
}

// Snapshots returns every subscriber's ledger in join order.
func (h *SubHub) Snapshots() []SubSnapshot {
	if h == nil {
		return nil
	}
	out := make([]SubSnapshot, 0, len(h.order))
	for _, s := range h.order {
		out = append(out, s.Snapshot())
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
