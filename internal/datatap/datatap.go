// Package datatap implements the asynchronous staged data transport the
// paper's containers move data with (DataTap/DataStager): a writer buffers
// its output locally, pushes a small metadata descriptor to the consuming
// side, and the reader *pulls* the payload with an RDMA get when it is
// ready — so output proceeds asynchronously and pulls can be scheduled to
// limit interconnect contention.
//
// The behaviours the paper's evaluation leans on are modeled faithfully:
//
//   - writers can be *paused* (and later resumed) so a downstream
//     container can resize without losing timesteps — waiting for writers
//     to pause is the dominant cost of the 'decrease' operation (Fig. 5);
//   - the reader-side metadata queue is bounded; a full queue blocks
//     writers and hence the application, which is exactly the condition
//     container management works to avoid (Fig. 9);
//   - writer buffers are finite, so an unconsumed backlog eventually
//     blocks the writer.
package datatap

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Meta is the descriptor pushed from writer to reader; the payload itself
// stays in the writer's buffer until pulled.
type Meta struct {
	// Step is the application timestep this payload belongs to.
	Step int64
	// Size is the payload size in bytes.
	Size int64
	// SrcNode is the writer's node (the RDMA get target).
	SrcNode int
	// Created is when the writer made the payload available.
	Created sim.Time
	// Data is the payload (carried by reference; the simulated transfer
	// cost is charged from Size).
	Data any
	// Span is the trace context riding the descriptor across the hop: the
	// write span that produced it, replaced by the pull span once fetched,
	// so downstream spans chain to their true upstream cause.
	Span trace.SpanID
	// Seq is the writer-assigned step sequence (monotonic from 1 per
	// writer; 0 = unsequenced, e.g. hand-built test descriptors). In
	// at-least-once mode readers dedupe replays by (writer, Seq).
	Seq int64
	// writer is the producing endpoint, set so the at-least-once paths
	// (ack, dedupe, redelivery) can reach the retained-step ledger, and
	// so releaseBuf can return buffer space without a per-write closure.
	writer *Writer
	// released marks the writer-side buffer space as already returned
	// (or never owned by this descriptor, e.g. the at-least-once ledger
	// manages it instead).
	released bool
}

// releaseBuf frees the writer-side buffer space backing this descriptor.
// Idempotent; a no-op for descriptors without a writer (hand-built test
// metas) or whose space is managed elsewhere.
func (m *Meta) releaseBuf() {
	if m.released || m.writer == nil {
		return
	}
	m.released = true
	m.writer.buf.Release(int(m.Size))
}

// Stats aggregates channel activity.
type Stats struct {
	StepsWritten int64
	StepsPulled  int64
	// BytesWritten accumulates the payload bytes of every successful
	// write. Together with BytesPulled, BytesInvalidated, and
	// Channel.QueuedBytes it forms the chunk-conservation invariant the
	// chaos oracles check: every byte written is pulled, invalidated, or
	// still queued — never silently lost.
	BytesWritten int64
	BytesPulled  int64
	// BytesInvalidated accumulates the payload bytes of invalidated
	// descriptors (failed pulls plus InvalidateNode purges).
	BytesInvalidated int64
	MaxQueue         int
	// WriterBlocked accumulates total virtual time writers spent blocked
	// on a full queue or full buffer — the "application blocking" metric.
	// It includes transfer costs (buffer copy, descriptor push), so it is
	// nonzero even on a healthy run.
	WriterBlocked sim.Time
	// WriterStalled accumulates only the *parked* portion of writer time:
	// pause-window waits, buffer-space waits, full-queue waits, and
	// descriptor-push retry backoff. Unlike WriterBlocked it excludes
	// modeled transfer costs, so a healthy run reports exactly zero — the
	// "simulation never blocks" SLA the subscriber fan-out must preserve.
	WriterStalled sim.Time
	// Requeued counts descriptors returned to the queue by Requeue;
	// RequeuedPaused counts the subset that landed while the channel was
	// paused (they re-enter the queue — the pause handshake only stops
	// *writers* — but the accounting must see them, not lose them).
	Requeued       int64
	RequeuedPaused int64
	// PauseWait accumulates time spent waiting for writers to pause.
	PauseWait sim.Time
	// Invalidated counts descriptors whose payload could not be pulled
	// (writer node crashed before the reader got to it) plus descriptors
	// purged by InvalidateNode.
	Invalidated int64
	// InvalidatedLive counts failed pulls whose writer node was still
	// alive (a partition, not a crash) — recoverable data that best-effort
	// mode nonetheless loses.
	InvalidatedLive int64
	// WriteRejected counts writes that failed for a reason other than a
	// closed channel (a lost descriptor push) — the silent-drop case
	// at-least-once mode eliminates.
	WriteRejected int64

	// The remaining counters are live only in at-least-once mode.
	//
	// StepsAcked counts downstream processing acknowledgements;
	// StepsCrashLost counts retained steps forfeited (tombstoned) because
	// their payload died with its node; StepsDuplicate counts replayed
	// descriptors filtered by the reader-side dedupe; Gaps counts missing
	// sequences detected on writers' step streams; PushRetried counts
	// descriptor-push retry attempts.
	StepsAcked     int64
	StepsCrashLost int64
	BytesCrashLost int64
	StepsDuplicate int64
	Gaps           int64
	PushRetried    int64
	// StepsRedelivered / BytesRedelivered count re-emissions of
	// previously-lost steps, into the queue or (on retry exhaustion) into
	// the spill store. In the extended conservation invariant they join
	// BytesWritten on the inflow side: BytesWritten + BytesRedelivered =
	// BytesPulled + BytesInvalidated + QueuedBytes + SpillResidentBytes.
	StepsRedelivered int64
	BytesRedelivered int64
	// StepsSpilled / BytesSpilled count payloads moved to the spill store
	// (cumulative); StepsDrained / BytesDrained count reinjections.
	StepsSpilled int64
	BytesSpilled int64
	StepsDrained int64
	BytesDrained int64
}

// Config parameterizes a channel.
type Config struct {
	// QueueCap bounds the reader-side metadata queue (0 = unbounded).
	QueueCap int
	// WriterBufBytes bounds each writer's payload buffer (0 = unbounded).
	WriterBufBytes int64
	// HomeNode is where the metadata queue lives (a reader-side node);
	// descriptor pushes are charged as messages to this node.
	HomeNode int
	// PullTokens bounds how many payload pulls may be in flight at once
	// (0 = unlimited). This is DataStager's pull scheduling: limiting
	// concurrent gets keeps the readers from saturating the writers'
	// NICs and slowing the application's own output, at the price of
	// serializing reader-side transfers.
	PullTokens int
	// PullSpacing adds a minimum gap between pull starts (0 = none),
	// smoothing bursts off the interconnect.
	PullSpacing sim.Time
	// Delivery selects the loss semantics (zero value = best-effort, the
	// legacy at-most-once transport) and tunes the at-least-once paths.
	Delivery DeliveryConfig
}

// descriptorBytes is the on-wire size of a metadata push.
const descriptorBytes = 128

// Channel is one staged transport hop between pipeline stages: any number
// of writers feed a shared metadata queue drained by any number of
// readers.
type Channel struct {
	name    string
	eng     *sim.Engine
	mach    *cluster.Machine
	cfg     Config
	meta    *sim.Queue[*Meta]
	writers []*Writer
	paused  bool
	resume  *sim.Event
	stats   Stats
	closed  bool
	// pullTokens (non-nil when scheduling is on) bounds concurrent
	// pulls; lastPullAt enforces the configured spacing.
	pullTokens *sim.Resource
	lastPullAt sim.Time
	tracer     *trace.Recorder
	// overflowReason / gapReason are the flight-recorder trigger labels,
	// precomputed so the hot write/fetch paths don't concatenate per event.
	overflowReason string
	gapReason      string

	// At-least-once state: the spill store, the repair process flag, the
	// consumer gap callback (rate-limited by lastGapNote), and writers
	// detached with steps still retained (kept so the ledger stays whole).
	spill          *spillStore
	repairOn       bool
	onGap          func(p *sim.Proc, missing int64)
	gapNoted       bool
	lastGapNote    sim.Time
	removedWriters []*Writer

	// hub, when attached, fans every accepted write out to streaming
	// subscribers (nil on channels without subscribers; every call site is
	// nil-safe).
	hub *SubHub
}

// NewChannel creates a channel. mach may be nil for cost-free tests.
func NewChannel(eng *sim.Engine, mach *cluster.Machine, name string, cfg Config) *Channel {
	cfg.Delivery = cfg.Delivery.withDefaults()
	c := &Channel{
		name: name,
		eng:  eng,
		mach: mach,
		cfg:  cfg,
		meta: sim.NewQueue[*Meta](eng, cfg.QueueCap),

		overflowReason: "overflow:" + name,
		gapReason:      "gap:" + name,
	}
	if cfg.PullTokens > 0 {
		c.pullTokens = sim.NewResource(eng, cfg.PullTokens)
	}
	return c
}

// Name returns the channel's name.
func (c *Channel) Name() string { return c.name }

// SetTracer attaches a trace recorder: writes, pulls, and pause rounds
// become spans; requeues and invalidations become instants; a writer
// blocking on a full metadata queue fires the flight-recorder trigger.
func (c *Channel) SetTracer(r *trace.Recorder) { c.tracer = r }

// QueueLen returns the current metadata backlog.
func (c *Channel) QueueLen() int { return c.meta.Len() }

// QueuedBytes returns the payload bytes referenced by descriptors still
// in the metadata queue — the in-flight term of the chunk-conservation
// invariant (BytesWritten = BytesPulled + BytesInvalidated + QueuedBytes).
func (c *Channel) QueuedBytes() int64 {
	var n int64
	c.meta.Each(func(m *Meta) { n += m.Size })
	return n
}

// QueueCap returns the metadata queue bound (0 = unbounded).
func (c *Channel) QueueCap() int { return c.cfg.QueueCap }

// HomeNode returns the node hosting the metadata queue (the reader side);
// subscriber hubs live there too.
func (c *Channel) HomeNode() int { return c.cfg.HomeNode }

// Full reports whether the metadata queue is at capacity (a Put would
// block). Lossy observers check this to drop rather than stall.
func (c *Channel) Full() bool {
	return c.cfg.QueueCap > 0 && c.meta.Len() >= c.cfg.QueueCap
}

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Paused reports whether writers are currently paused.
func (c *Channel) Paused() bool { return c.paused }

// Writers returns the attached writer endpoints (shared slice; do not
// mutate). Resize protocols use it to enumerate the upstream endpoints a
// new replica must exchange metadata with.
func (c *Channel) Writers() []*Writer { return c.writers }

// HeadAge returns how long the oldest queued descriptor has been waiting
// (0 if the queue is empty) — the queue-pressure signal container
// monitoring heartbeats report while a slow component is still computing.
func (c *Channel) HeadAge(now sim.Time) sim.Time {
	m, ok := c.meta.Peek()
	if !ok {
		return 0
	}
	return now - m.Created
}

// Requeue returns a previously fetched descriptor to the queue (used when
// an MPI-style teardown aborts an in-flight step so it is not lost). The
// payload's buffer space was already released; the descriptor re-enters
// the shared queue for another replica to process.
func (c *Channel) Requeue(m *Meta) bool {
	if c.closed {
		return false
	}
	m.released = true // buffer space went back when the step was pulled
	c.tracer.Instant(m.Span, "datatap", "requeue").
		Container(c.name).Step(m.Step).End()
	if !c.meta.TryPut(m) {
		// The queue refused the descriptor (full): the step stays
		// accounted as pulled — the caller drops it — so the pulled
		// counters must NOT be rolled back, or the channel's byte
		// accounting would claim the payload is still in flight.
		// At-least-once recovers the step anyway: marked lost, it is
		// re-emitted by the repair loop once the queue has room.
		if c.alo() && m.writer != nil {
			if e := m.writer.retained[m.Seq]; e != nil && e.state == retPulled {
				c.markLost(e)
			}
		}
		return false
	}
	c.stats.StepsPulled--
	c.stats.BytesPulled -= m.Size
	c.stats.Requeued++
	// A requeue is a queue *insertion*: it must participate in the same
	// high-water accounting as Write, or a pause window full of requeues
	// reports a stale MaxQueue and the overflow trigger never fires.
	if l := c.meta.Len(); l > c.stats.MaxQueue {
		c.stats.MaxQueue = l
	}
	if c.paused {
		// Pause stops writers, not requeues — an aborted in-flight step may
		// legitimately land mid-pause so it is not lost. Count it so the
		// pause accounting sees the insertion instead of silently absorbing
		// it.
		c.stats.RequeuedPaused++
		if c.Full() {
			c.tracer.Trigger(c.overflowReason)
		}
	}
	if c.alo() && m.writer != nil {
		// The descriptor is claimable again; without this the next fetch
		// would filter it as an in-flight duplicate.
		if e := m.writer.retained[m.Seq]; e != nil && e.state == retPulled {
			e.state = retStaged
		}
	}
	return true
}

// Close closes the metadata queue; readers drain and then see ok=false.
// Writers blocked on buffer space are released (their writes fail), so no
// process stays parked behind a closed channel.
func (c *Channel) Close() {
	c.closed = true
	c.meta.Close()
	c.hub.Close()
	for _, w := range c.writers {
		// Wake any Acquire waiter; the subsequent Put fails cleanly.
		w.buf.Grow(1 << 61)
	}
	if c.paused {
		c.Resume()
	}
}

// Closed reports whether Close has been called.
func (c *Channel) Closed() bool { return c.closed }

// Writer is one producer endpoint (one upstream replica or simulation
// aggregation point).
type Writer struct {
	ch   *Channel
	node int
	buf  *sim.Resource // buffer bytes
	// busy / wantPause implement the pause handshake: a pause issued
	// mid-write completes when the write finishes.
	busy      bool
	idle      *sim.Event
	nWrites   int64
	nBlocked  sim.Time
	pausedEvs int64

	// At-least-once state: the monotonic step sequence, the retained
	// (written-but-unacked) ledger, the applied-set dedupe watermark, and
	// the reader-side next-expected sequence for gap detection.
	nextSeq      int64
	retained     map[int64]*retEntry
	applied      map[int64]bool
	appliedFloor int64
	expect       int64
}

// NewWriter attaches a writer on the given node.
func (c *Channel) NewWriter(node int) *Writer {
	bufCap := int(c.cfg.WriterBufBytes)
	if c.cfg.WriterBufBytes == 0 {
		bufCap = 1 << 62
	}
	w := &Writer{ch: c, node: node, buf: sim.NewResource(c.eng, bufCap), expect: 1,
		retained: make(map[int64]*retEntry)}
	c.writers = append(c.writers, w)
	return w
}

// Node returns the writer's node ID.
func (w *Writer) Node() int { return w.node }

// BufferedBytes returns the bytes currently held in the writer's buffer.
func (w *Writer) BufferedBytes() int64 { return int64(w.buf.InUse()) }

// Write makes one timestep's payload available: it buffers the payload,
// pushes the descriptor to the channel's home node, and returns. It blocks
// if the writer is paused, its buffer is full, or the metadata queue is
// full — blocking here is precisely the "application blocking on I/O" the
// containers runtime manages against. It returns false if the channel was
// closed.
func (w *Writer) Write(p *sim.Proc, step int64, size int64, data any) bool {
	return w.WriteTraced(p, step, size, data, 0)
}

// WriteTraced is Write with an explicit causal parent for the write span.
// The parent must be passed in (not stamped on the Meta afterwards): a
// blocked Put can hand the descriptor to a reader before the writer
// resumes, so the Meta must be fully formed before it enters the queue.
func (w *Writer) WriteTraced(p *sim.Proc, step int64, size int64, data any, parent trace.SpanID) bool {
	if w.ch.closed {
		return false
	}
	if w.ch.alo() {
		return w.writeALO(p, step, size, data, parent)
	}
	sp := w.ch.tracer.Begin(parent, "datatap", "write").
		Container(w.ch.name).Node(w.node).Step(step).AttrInt("bytes", size)
	start := w.ch.eng.Now()
	for w.ch.paused {
		w.pausedEvs++
		sp.Attr("paused", "1")
		w.ch.resume.Wait(p)
	}
	w.ch.stats.WriterStalled += w.ch.eng.Now() - start
	w.busy = true
	// Reserve buffer space (may block on backlog).
	bufWait := w.ch.eng.Now()
	w.buf.Acquire(p, int(size))
	w.ch.stats.WriterStalled += w.ch.eng.Now() - bufWait
	// Local buffer copy at memory bandwidth (10x NIC rate approximation).
	if w.ch.mach != nil {
		w.ch.mach.Send(p, w.node, w.node, size)
	}
	//iocheck:allow hotalloc descriptors are retained in the metadata queue by design; the payload reference must outlive this call
	m := &Meta{
		Step:    step,
		Size:    size,
		SrcNode: w.node,
		Created: w.ch.eng.Now(),
		Data:    data,
		Span:    sp.ID(),
		writer:  w,
	}
	// Push the descriptor to the queue's home node. A push lost to a fault
	// (dead endpoint, partition) fails the write: the payload never becomes
	// visible downstream.
	if w.ch.mach != nil && w.node != w.ch.cfg.HomeNode {
		if !w.ch.mach.Send(p, w.node, w.ch.cfg.HomeNode, descriptorBytes) ||
			w.ch.mach.Faults().DropData() {
			m.releaseBuf()
			w.finishWrite(start)
			w.ch.stats.WriteRejected++
			sp.Attr("fail", "push").End()
			return false
		}
	}
	if w.ch.Full() {
		// The paper's Fig. 9 condition: a full metadata queue is about to
		// block the application. Preserve the lead-up in the flight ring.
		w.ch.tracer.Trigger(w.ch.overflowReason)
	}
	putWait := w.ch.eng.Now()
	ok := w.ch.meta.Put(p, m)
	w.ch.stats.WriterStalled += w.ch.eng.Now() - putWait
	if !ok {
		m.releaseBuf()
		w.finishWrite(start)
		sp.Attr("fail", "closed").End()
		return false
	}
	w.ch.stats.StepsWritten++
	w.ch.stats.BytesWritten += size
	if l := w.ch.meta.Len(); l > w.ch.stats.MaxQueue {
		w.ch.stats.MaxQueue = l
	}
	w.ch.hub.Publish(m)
	w.finishWrite(start)
	sp.End()
	return true
}

func (w *Writer) finishWrite(start sim.Time) {
	w.nWrites++
	blocked := w.ch.eng.Now() - start
	w.nBlocked += blocked
	w.ch.stats.WriterBlocked += blocked
	w.busy = false
	if w.idle != nil {
		w.idle.Fire()
		w.idle = nil
	}
}

// Reader is one consumer endpoint (one downstream replica).
type Reader struct {
	ch   *Channel
	node int
}

// NewReader attaches a reader on the given node.
func (c *Channel) NewReader(node int) *Reader {
	return &Reader{ch: c, node: node}
}

// Node returns the reader's node ID.
func (r *Reader) Node() int { return r.node }

// Fetch takes the next available descriptor and pulls its payload
// (RDMA get from the writer's buffer), blocking until data arrives.
// ok is false once the channel is closed and drained. A descriptor whose
// writer node died before the pull is invalidated and skipped — the reader
// moves on to the next descriptor instead of fetching a dead buffer
// forever.
func (r *Reader) Fetch(p *sim.Proc) (*Meta, bool) {
	for {
		m, ok := r.ch.meta.Get(p)
		if !ok {
			return nil, false
		}
		if r.pull(p, m) && r.admit(p, m) {
			return m, true
		}
	}
}

// FetchTimeout is Fetch with a deadline for the descriptor wait. The
// deadline covers the whole attempt: descriptors invalidated by a dead
// writer consume budget but do not restart it.
func (r *Reader) FetchTimeout(p *sim.Proc, d sim.Time) (*Meta, bool) {
	deadline := r.ch.eng.Now() + d
	for {
		m, ok := r.ch.meta.GetTimeout(p, deadline-r.ch.eng.Now())
		if !ok {
			return nil, false
		}
		if r.pull(p, m) && r.admit(p, m) {
			return m, true
		}
		if r.ch.eng.Now() >= deadline {
			return nil, false
		}
	}
}

// pull transfers m's payload; it reports false when the writer's node is
// dead or partitioned and the payload is unreachable (the descriptor is
// counted invalidated and its buffer reservation dropped).
func (r *Reader) pull(p *sim.Proc, m *Meta) bool {
	sp := r.ch.tracer.Begin(m.Span, "datatap", "pull").
		Container(r.ch.name).Node(r.node).Step(m.Step).
		AttrInt("bytes", m.Size).AttrInt("src", int64(m.SrcNode))
	// Downstream work chains from the pull, not the original write.
	if sp != nil {
		m.Span = sp.ID()
	}
	if r.ch.pullTokens != nil {
		r.ch.pullTokens.Acquire(p, 1)
		if gap := r.ch.cfg.PullSpacing; gap > 0 {
			if wait := r.ch.lastPullAt + gap - r.ch.eng.Now(); wait > 0 {
				p.Sleep(wait)
			}
			r.ch.lastPullAt = r.ch.eng.Now()
		}
	}
	ok := true
	if r.ch.mach != nil {
		ok = r.ch.mach.RDMAGet(p, r.node, m.SrcNode, m.Size)
	}
	if r.ch.pullTokens != nil {
		r.ch.pullTokens.Release(1)
	}
	// In at-least-once mode the writer retains the payload until the
	// processing ack; in best-effort mode a pull (successful or not) is
	// the last the writer hears of the step, so the buffer frees here.
	if !r.ch.alo() {
		m.releaseBuf()
	}
	if !ok {
		r.ch.stats.Invalidated++
		r.ch.stats.BytesInvalidated += m.Size
		if r.ch.mach != nil && r.ch.mach.Faults().NodeUp(m.SrcNode) {
			r.ch.stats.InvalidatedLive++
		}
		if r.ch.alo() && m.writer != nil {
			// The step is not gone: mark it lost so the repair loop (or a
			// GM-driven resend) re-emits it, and surface the gap.
			if e := m.writer.retained[m.Seq]; e != nil && e.state == retStaged {
				r.ch.markLost(e)
			}
			r.ch.tracer.Trigger(r.ch.gapReason)
			r.ch.noteGap(p, 1)
		}
		sp.Attr("fail", "invalidated").End()
		return false
	}
	r.ch.stats.StepsPulled++
	r.ch.stats.BytesPulled += m.Size
	sp.End()
	return true
}

// InvalidateNode purges queued descriptors whose payload lives on the given
// (crashed) node, returning how many were dropped. Readers never see them;
// without this, each parked descriptor costs a reader one failed pull.
func (c *Channel) InvalidateNode(node int) int {
	var bytes int64
	n := c.meta.RemoveWhere(func(m *Meta) bool {
		if m.SrcNode != node {
			return false
		}
		m.releaseBuf()
		bytes += m.Size
		return true
	})
	c.stats.Invalidated += int64(n)
	c.stats.BytesInvalidated += bytes
	if c.alo() {
		// Retained payloads living on the crashed node are gone with it:
		// tombstone them so the loss is explicit. Pulled steps survive
		// (their data already crossed to a reader and will be acked), and
		// spilled steps survive on stable storage.
		for _, w := range c.writers {
			if w.node == node {
				w.forfeitAll("crash")
			}
		}
		for _, w := range c.removedWriters {
			if w.node == node {
				w.forfeitAll("crash")
			}
		}
	}
	if n > 0 {
		c.tracer.Instant(0, "datatap", "invalidate").
			Container(c.name).Node(node).AttrInt("descriptors", int64(n)).End()
	}
	return n
}

// RemoveWriter detaches a (dead) writer endpoint: pause rounds and metadata
// exchanges stop addressing it, and anything parked on its buffer is
// released. Removing a writer that is not attached is a no-op.
func (c *Channel) RemoveWriter(w *Writer) {
	for i, x := range c.writers {
		if x == w {
			c.writers = append(c.writers[:i], c.writers[i+1:]...)
			if c.alo() {
				// Keep the endpoint reachable for the step ledger: its
				// pulled steps still get acked, and a crash handler that
				// runs after detachment can still tombstone the rest.
				c.removedWriters = append(c.removedWriters, w)
			}
			break
		}
	}
	if c.alo() && c.mach != nil && !c.mach.Faults().NodeUp(w.node) {
		w.forfeitAll("removed")
	}
	w.buf.Grow(1 << 61)
	if w.idle != nil {
		w.idle.Fire()
		w.idle = nil
	}
}

// Pause asks every writer to stop producing and waits until all in-flight
// writes finish — the consistency step the 'decrease' protocol requires so
// no timestep is lost while downstream replicas are removed. It returns
// the time spent waiting.
func (c *Channel) Pause(p *sim.Proc) sim.Time {
	sp := c.tracer.Begin(0, "datatap", "pause").
		Container(c.name).Node(c.cfg.HomeNode).AttrInt("writers", int64(len(c.writers)))
	start := c.eng.Now()
	if !c.paused {
		c.paused = true
		c.resume = sim.NewEvent(c.eng)
	}
	for _, w := range c.writers {
		// One control message per writer.
		if c.mach != nil && w.node != c.cfg.HomeNode {
			c.mach.Send(p, c.cfg.HomeNode, w.node, descriptorBytes)
		}
		if w.busy {
			if w.idle == nil {
				w.idle = sim.NewEvent(c.eng)
			}
			w.idle.Wait(p)
		}
	}
	wait := c.eng.Now() - start
	c.stats.PauseWait += wait
	sp.End()
	return wait
}

// Resume releases paused writers.
func (c *Channel) Resume() {
	if !c.paused {
		return
	}
	c.paused = false
	c.resume.Fire()
}

// String implements fmt.Stringer.
func (c *Channel) String() string {
	return fmt.Sprintf("datatap(%s q=%d/%d)", c.name, c.meta.Len(), c.cfg.QueueCap)
}
