package datatap

import (
	"bytes"
	"testing"

	"repro/internal/bp"
	"repro/internal/fault"
	"repro/internal/sim"
)

// newALOTestChannel is newFaultyChannel with at-least-once delivery.
func newALOTestChannel(t *testing.T, fcfg fault.Config, cfg Config) (*sim.Engine, *Channel) {
	t.Helper()
	cfg.Delivery.Mode = DeliveryAtLeastOnce
	eng, _, ch := newFaultyChannel(t, fcfg, cfg)
	return eng, ch
}

// The retention lifecycle: a written payload holds writer-buffer space
// across the pull and frees it only on the processing ack, and the step
// ledger balances at every point.
func TestAckReleasesRetention(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{Seed: 7}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	r := ch.NewReader(1)
	var beforeAck int64 = -1
	var last *Meta
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 3; i++ {
			if !w.Write(p, i, 1<<20, nil) {
				t.Error("write failed")
			}
		}
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		for i := 0; i < 3; i++ {
			m, ok := r.Fetch(p)
			if !ok {
				t.Error("fetch failed")
				return
			}
			if i == 0 {
				beforeAck = w.BufferedBytes()
			}
			r.Ack(p, m)
			last = m
		}
		r.Ack(p, last) // duplicate ack is a no-op
	})
	eng.Run()
	if beforeAck != 3<<20 {
		t.Fatalf("buffered %d before the first ack; retention must hold space until acked", beforeAck)
	}
	if w.BufferedBytes() != 0 {
		t.Fatalf("buffered %d after acks, want 0", w.BufferedBytes())
	}
	d := ch.DeliverySnapshot()
	if d.StepsWritten != 3 || d.StepsAcked != 3 || d.Retained != 0 {
		t.Fatalf("snapshot %+v", d)
	}
	if n := d.Unaccounted(); n != 0 {
		t.Fatalf("%d steps unaccounted", n)
	}
}

// A pull that fails during a transient partition marks the step lost;
// the repair loop re-emits it once the partition heals, and the reader
// applies it exactly once.
func TestRedeliveryAfterFailedPull(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{
		Seed:       7,
		Partitions: []fault.Partition{{From: 5 * sim.Second, Until: 30 * sim.Second, Nodes: []int{2}}},
	}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	r := ch.NewReader(1)
	var got []int64
	eng.Go("writer", func(p *sim.Proc) {
		if !w.Write(p, 7, 1<<20, "payload") {
			t.Error("write failed")
		}
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second) // fetch mid-partition: the pull fails
		for {
			m, ok := r.Fetch(p)
			if !ok {
				return
			}
			got = append(got, m.Step)
			r.Ack(p, m)
			ch.Close()
		}
	})
	eng.Run()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("got %v, want the one step exactly once", got)
	}
	d := ch.DeliverySnapshot()
	if d.StepsRedelivered == 0 {
		t.Fatalf("snapshot %+v: the lost pull was never redelivered", d)
	}
	if d.InvalidatedLive != 1 {
		t.Fatalf("snapshot %+v: the partitioned pull should count as a live invalidation", d)
	}
	if d.StepsAcked != 1 || d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: ledger does not balance", d)
	}
}

// Queue pressure spills writes to the provenance-stamped store instead of
// blocking, the drain loop reinjects them in order once pressure clears,
// and the finalized BP stream records every spill.
func TestSpillAndDrainUnderQueuePressure(t *testing.T) {
	const steps = 6
	eng, ch := newALOTestChannel(t, fault.Config{Seed: 7}, Config{
		HomeNode: 1,
		QueueCap: 2, // spill threshold = 1 queued descriptor
	})
	w := ch.NewWriter(2)
	r := ch.NewReader(1)
	var got []int64
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(1); i <= steps; i++ {
			if !w.Write(p, i, 1<<20, nil) {
				t.Error("write failed")
			}
		}
	})
	eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(20 * sim.Second)
		for len(got) < steps {
			m, ok := r.Fetch(p)
			if !ok {
				t.Error("channel closed early")
				return
			}
			got = append(got, m.Step)
			r.Ack(p, m)
		}
		ch.Close()
	})
	eng.Run()
	if len(got) != steps {
		t.Fatalf("fetched %d steps, want %d", len(got), steps)
	}
	for i, s := range got {
		if s != int64(i+1) {
			t.Fatalf("order %v: drain must reinject oldest first", got)
		}
	}
	d := ch.DeliverySnapshot()
	if d.StepsSpilled == 0 {
		t.Fatalf("snapshot %+v: queue pressure never spilled", d)
	}
	if d.StepsDrained != d.StepsSpilled || d.SpillResident != 0 {
		t.Fatalf("snapshot %+v: spill store not fully drained", d)
	}
	if d.StepsAcked != steps || d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: ledger does not balance", d)
	}

	dump, err := ch.SpillDump()
	if err != nil {
		t.Fatalf("spill dump: %v", err)
	}
	br, err := bp.NewReader(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("reading spill stream: %v", err)
	}
	if int64(br.Steps()) != d.StepsSpilled {
		t.Fatalf("spill stream has %d records, want %d", br.Steps(), d.StepsSpilled)
	}
	for i := 0; i < br.Steps(); i++ {
		pg, err := br.ReadStep(i)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if pg.Group != ch.Name() || pg.Attrs["datatap.spill.kind"] != "payload" ||
			pg.Attrs["datatap.spill.reason"] != "queue" ||
			pg.Attrs["datatap.spill.seq"] == "" {
			t.Fatalf("record %d lacks provenance: %+v", i, pg)
		}
	}
}

// A replayed descriptor for an already-acked sequence is filtered by the
// reader-side dedupe — at-least-once delivery, exactly-once application.
func TestReplayedStepAppliedExactlyOnce(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{Seed: 7}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	r := ch.NewReader(1)
	eng.Go("run", func(p *sim.Proc) {
		w.Write(p, 1, 1<<20, nil)
		m, ok := r.Fetch(p)
		if !ok {
			t.Error("fetch failed")
			return
		}
		r.Ack(p, m)
		if !ch.Requeue(m) { // simulate a replayed descriptor for an applied step
			t.Error("requeue failed")
			return
		}
		if _, ok := r.FetchTimeout(p, 5*sim.Second); ok {
			t.Error("replay of an acked step must not be re-applied")
		}
		ch.Close()
	})
	eng.Run()
	d := ch.DeliverySnapshot()
	if d.StepsDuplicate != 1 {
		t.Fatalf("snapshot %+v: the replay should be counted as a filtered duplicate", d)
	}
	if d.StepsAcked != 1 || d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: ledger does not balance", d)
	}
}

// A write rejected because the writer's own node died mid-push never
// enters the step ledger: no crash-lost charge (that would unbalance the
// ledger against StepsWritten), but the loss still leaves an explicit
// tombstone in the spill provenance.
func TestWriterCrashMidWriteIsRejectedNotCounted(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{
		Seed:    7,
		Crashes: []fault.Crash{{Node: 2, At: 5 * sim.Second}},
	}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	ok := true
	eng.Go("writer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Second) // node 2 is already down
		ok = w.Write(p, 1, 1<<20, nil)
	})
	eng.Run()
	if ok {
		t.Fatal("write from a dead node should be rejected")
	}
	d := ch.DeliverySnapshot()
	if d.StepsWritten != 0 || d.StepsCrashLost != 0 || d.Retained != 0 || d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: a rejected write must not enter the ledger", d)
	}
	dump, err := ch.SpillDump()
	if err != nil {
		t.Fatalf("spill dump: %v", err)
	}
	br, err := bp.NewReader(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("reading spill stream: %v", err)
	}
	if br.Steps() != 1 {
		t.Fatalf("spill stream has %d records, want the one tombstone", br.Steps())
	}
	pg, err := br.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Attrs["datatap.spill.kind"] != "tombstone" ||
		pg.Attrs["datatap.spill.reason"] != "writer-crash" {
		t.Fatalf("record %+v is not a writer-crash tombstone", pg)
	}
}

// Double InvalidateNode in at-least-once mode: the first purge tombstones
// every step still on the crashed writer's side; the second finds nothing
// and charges nothing, and the ledger stays balanced throughout.
func TestDoubleInvalidateNodeALO(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{Seed: 7}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	eng.Go("writer", func(p *sim.Proc) {
		for i := int64(0); i < 2; i++ {
			if !w.Write(p, i, 1<<20, nil) {
				t.Error("write failed")
			}
		}
	})
	eng.Run()
	if n := ch.InvalidateNode(2); n != 2 {
		t.Fatalf("first purge dropped %d descriptors, want 2", n)
	}
	if n := ch.InvalidateNode(2); n != 0 {
		t.Fatalf("second purge dropped %d descriptors, want 0", n)
	}
	d := ch.DeliverySnapshot()
	if d.StepsCrashLost != 2 {
		t.Fatalf("snapshot %+v: double purge must tombstone each step exactly once", d)
	}
	if d.Retained != 0 || d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: ledger does not balance", d)
	}
	if w.BufferedBytes() != 0 {
		t.Fatalf("buffered %d after forfeit, want 0", w.BufferedBytes())
	}
}

// Requeue on a closed channel fails without disturbing the ledger: the
// pulled step stays retained (pulled, awaiting ack) rather than being
// silently dropped or double-counted.
func TestRequeueClosedChannelALO(t *testing.T) {
	eng, ch := newALOTestChannel(t, fault.Config{Seed: 7}, Config{HomeNode: 1})
	w := ch.NewWriter(2)
	r := ch.NewReader(1)
	eng.Go("run", func(p *sim.Proc) {
		w.Write(p, 1, 1<<20, nil)
		m, ok := r.Fetch(p)
		if !ok {
			t.Error("fetch failed")
			return
		}
		ch.Close()
		if ch.Requeue(m) {
			t.Error("requeue into a closed channel should fail")
		}
	})
	eng.Run()
	d := ch.DeliverySnapshot()
	if d.Retained != 1 {
		t.Fatalf("snapshot %+v: the pulled step should still be retained", d)
	}
	if d.Unaccounted() != 0 {
		t.Fatalf("snapshot %+v: ledger does not balance", d)
	}
}
