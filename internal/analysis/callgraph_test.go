package analysis

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func loadCallgraphFixture(t *testing.T) (*Package, *Program) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, NewProgram([]*Package{pkg})
}

// findNode locates a function node by its rendered name.
func findNode(t *testing.T, prog *Program, name string) *FuncNode {
	t.Helper()
	for _, n := range prog.Funcs {
		if n.String() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// findCall locates the first call expression whose source contains the
// given selector or identifier name.
func findCall(t *testing.T, pkg *Package, funcName, calleeName string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	for _, f := range pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if fd.Name.Name != funcName {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found != nil {
					return found == nil
				}
				switch fun := call.Fun.(type) {
				case *ast.SelectorExpr:
					if fun.Sel.Name == calleeName {
						found = call
					}
				case *ast.Ident:
					if fun.Name == calleeName {
						found = call
					}
				}
				return found == nil
			})
		}
	}
	if found == nil {
		t.Fatalf("no call to %s in %s", calleeName, funcName)
	}
	return found
}

func TestCHAInterfaceDispatch(t *testing.T) {
	pkg, prog := loadCallgraphFixture(t)
	call := findCall(t, pkg, "SpeakAll", "Speak")
	var names []string
	for _, callee := range prog.Callees(pkg, call) {
		names = append(names, callee.String())
	}
	sort.Strings(names)
	want := []string{"(*Cat).Speak", "(Dog).Speak"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("interface dispatch resolved to %v, want %v", names, want)
	}
}

func TestBlockingSummaryAndChain(t *testing.T) {
	_, prog := loadCallgraphFixture(t)
	helper := findNode(t, prog, "Helper")
	if !helper.Blocks {
		t.Fatal("Helper reaches park through Sleep; Blocks should be true")
	}
	chain := helper.BlockChain()
	for _, hop := range []string{"Helper", "Sleep", "park"} {
		if !strings.Contains(chain, hop) {
			t.Errorf("witness chain %q missing hop %s", chain, hop)
		}
	}
	wake := findNode(t, prog, "(*Proc).Wake")
	if wake.Blocks {
		t.Fatal("Wake never parks; Blocks should be false")
	}
}

func TestFuncValueResolvesMethodValue(t *testing.T) {
	pkg, prog := loadCallgraphFixture(t)
	call := findCall(t, pkg, "RegisterBoth", "Register")
	if len(call.Args) != 1 {
		t.Fatalf("Register call args = %d", len(call.Args))
	}
	fn := prog.FuncValue(pkg, call.Args[0])
	if fn == nil {
		t.Fatal("FuncValue should resolve the method value p.Wake")
	}
	if fn.String() != "(*Proc).Wake" {
		t.Fatalf("resolved %s, want (*Proc).Wake", fn.String())
	}
}
