package analysis

import (
	"go/ast"
	"go/token"
)

// MapRangeDeep is maprange one rung up the call stack: it flags calls
// made from a map-range body whose *callee* transitively performs an
// order-bearing side effect (submits, sends, schedules — maprange's
// orderSinks set), even though the loop body itself looks pure. The
// direct-sink case stays maprange's; this rule only fires on calls the
// syntactic rule cannot see through, and each message carries the
// call-graph witness chain down to the sink.
var MapRangeDeep = &Analyzer{
	Name:    "maprange-deep",
	Doc:     "calls from map iteration must not reach order-bearing side effects (call-graph extension of maprange)",
	Applies: internalPkg,
	Run:     runMapRangeDeep,
}

func runMapRangeDeep(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRangeStmt(pass.Pkg.Info, rs) {
					return true
				}
				checkDeepCalls(pass, rs, reported)
				return true
			})
		}
	}
}

func checkDeepCalls(pass *Pass, rs *ast.RangeStmt, reported map[token.Pos]bool) {
	walkOwnCode(pass.Pkg, rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct sink calls are maprange's finding; don't double-report.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && orderSinks[sel.Sel.Name] {
			return true
		}
		for _, callee := range pass.Prog.Callees(pass.Pkg, call) {
			if !callee.OrderEffect {
				continue
			}
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"map iteration order is nondeterministic, and this call reaches an order-bearing side effect (%s); iterate sorted keys instead",
					callee.OrderChain())
			}
			break
		}
		return true
	})
}
