package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-event heap allocations inside heat-propagated hot
// functions (heat.go): composite literals, map/slice literals, `make`
// with a non-constant size (and any map make — maps allocate regardless
// of the size hint), `append` growth inside loops, `fmt.Sprintf` and
// friends, and non-constant string concatenation. Every finding carries
// the witness chain from a hot root and a poolable-vs-retained tag from
// the escape summaries (escape.go), so the fix is legible from the
// message: poolable values move to a freelist or scratch buffer;
// retained values need a lifecycle or an audited allow.
//
// Allocations in cold blocks (error/panic handling, failed comma-ok
// branches) are skipped — they run once per failure, not once per event.
var HotAlloc = &Analyzer{
	Name:    "hotalloc",
	Doc:     "no per-event heap allocations (composites, non-constant make, append-in-loop, Sprintf, string concat) in heat-propagated hot functions",
	Applies: internalPkg,
	Run:     runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pass.Prog.ensureHeat()
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			n := pass.Prog.Node(obj)
			if n == nil || !n.Hot {
				continue
			}
			checkHotAllocs(pass, n, fd, reported)
		}
	}
}

func checkHotAllocs(pass *Pass, n *FuncNode, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	info := pass.Pkg.Info
	cold := n.coldBlocks()

	// Loop bodies, for the append-growth check.
	var loops coldSet
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			loops = append(loops, posSpan{m.Body.Pos(), m.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posSpan{m.Body.Pos(), m.Body.End()})
		}
		return true
	})

	report := func(e ast.Expr, kind string) {
		if reported[e.Pos()] {
			return
		}
		reported[e.Pos()] = true
		pass.Reportf(e.Pos(), "per-event allocation (%s) on hot path %s; %s",
			kind, n.HotChain(), escTag(n.AllocEscape(e)))
	}

	// Nested composites inside an already-flagged &T{…} are one
	// allocation, not two; concat subtrees likewise.
	covered := make(map[ast.Node]bool)

	walkOwnCode(pass.Pkg, fd.Body, func(node ast.Node) bool {
		if node == nil {
			return true
		}
		if cold.contains(node.Pos()) {
			return false
		}
		switch node := node.(type) {
		case *ast.UnaryExpr:
			if node.Op != token.AND {
				return true
			}
			if lit, ok := node.X.(*ast.CompositeLit); ok {
				covered[lit] = true
				report(node, "composite literal &"+compositeName(info, lit)+"{…}")
			}
		case *ast.CompositeLit:
			if covered[node] {
				return true
			}
			tv, ok := info.Types[node]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(node, "map literal")
			case *types.Slice:
				report(node, "slice literal")
			}
		case *ast.CallExpr:
			checkHotCall(pass, node, loops, report)
		case *ast.BinaryExpr:
			if node.Op != token.ADD || covered[node] {
				return true
			}
			tv, ok := info.Types[node]
			if !ok || tv.Type == nil || tv.Value != nil || !isStringType(tv.Type) {
				return true
			}
			covered[node.X] = true
			covered[node.Y] = true
			report(node, "string concatenation")
		}
		return true
	})
}

// checkHotCall flags the allocation-bearing call shapes: make, append in
// a loop, and the fmt formatting family.
func checkHotCall(pass *Pass, call *ast.CallExpr, loops coldSet, report func(ast.Expr, string)) {
	info := pass.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		b, isBuiltin := info.Uses[id].(*types.Builtin)
		if isBuiltin {
			switch b.Name() {
			case "make":
				checkHotMake(pass, call, report)
			case "append":
				if loops.contains(call.Pos()) {
					report(call, "append growth in a loop")
				}
			}
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isFmtCall(info, sel) {
		switch sel.Sel.Name {
		case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf":
			report(call, "fmt."+sel.Sel.Name)
		}
	}
}

func checkHotMake(pass *Pass, call *ast.CallExpr, report func(ast.Expr, string)) {
	info := pass.Pkg.Info
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		// A map make allocates its header (and buckets) regardless of the
		// size hint.
		report(call, "make(map)")
	case *types.Slice, *types.Chan:
		for _, a := range call.Args[1:] {
			if atv, ok := info.Types[a]; ok && atv.Value == nil {
				report(call, "make with non-constant size")
				return
			}
		}
	}
}

// isFmtCall reports whether sel is a qualified call into package fmt.
func isFmtCall(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// compositeName renders the type name of a composite literal for the
// finding message.
func compositeName(info *types.Info, lit *ast.CompositeLit) string {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return "?"
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// escTag turns an allocation's escape classification into the
// actionable half of the finding message.
func escTag(esc Escape) string {
	if esc == 0 {
		return "value does not escape — poolable"
	}
	return "value escapes (" + esc.String() + ") — needs a lifecycle to pool"
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
