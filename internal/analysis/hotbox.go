package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotBox flags the hidden per-event allocations hotalloc's syntactic
// shapes miss, inside the same heat-propagated hot set:
//
//   - interface boxing: a non-pointer-shaped concrete value passed where
//     an interface parameter is expected allocates a copy on every call;
//   - capturing closures: a function literal with free variables
//     allocates its closure record each time the literal is evaluated —
//     including literals handed to launchers and callback registrars,
//     whose *bodies* run elsewhere but whose closure is built here
//     (a capture-free literal is a static value and is fine);
//   - method values: `p.unpark` used as a value allocates a bound-method
//     closure per evaluation — hoist it to a field computed once.
//
// Constant arguments and the fmt formatting family are skipped (the
// latter is hotalloc's finding); cold blocks are pruned as in hotalloc.
var HotBox = &Analyzer{
	Name:    "hotbox",
	Doc:     "no per-event hidden allocations (interface boxing, capturing closures, method values) in heat-propagated hot functions",
	Applies: internalPkg,
	Run:     runHotBox,
}

func runHotBox(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pass.Prog.ensureHeat()
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			n := pass.Prog.Node(obj)
			if n == nil || !n.Hot {
				continue
			}
			checkHotBoxes(pass, n, fd, reported)
		}
	}
}

func checkHotBoxes(pass *Pass, n *FuncNode, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	info := pass.Pkg.Info
	cold := n.coldBlocks()

	report := func(e ast.Expr, what string) {
		if reported[e.Pos()] {
			return
		}
		reported[e.Pos()] = true
		pass.Reportf(e.Pos(), "per-event %s on hot path %s; %s",
			what, n.HotChain(), escTag(n.AllocEscape(e)))
	}

	// Selector expressions used as call targets are calls, not
	// method-value captures.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if node.Pos().IsValid() && cold.contains(node.Pos()) {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			if caps := captureCount(info, fd, node); caps > 0 {
				report(node, fmt.Sprintf("closure (captures %d variable%s)",
					caps, plural(caps)))
			}
		case *ast.CallExpr:
			checkBoxingArgs(pass, node, report)
		case *ast.SelectorExpr:
			if callFuns[node] {
				return true
			}
			if s, ok := info.Selections[node]; ok && s.Kind() == types.MethodVal {
				report(node, "method value "+types.ExprString(node)+" (allocates a bound-method closure)")
			}
		}
		return true
	})
}

// checkBoxingArgs flags concrete, non-pointer-shaped, non-constant
// arguments passed to interface parameters.
func checkBoxingArgs(pass *Pass, call *ast.CallExpr, report func(ast.Expr, string)) {
	info := pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; !ok || tv.Type == nil || tv.IsType() {
		return // conversion or untyped (builtin)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isFmtCall(info, sel) {
		return // hotalloc's finding
	}
	sig, ok := info.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for j, arg := range call.Args {
		if call.Ellipsis.IsValid() && j == len(call.Args)-1 {
			break // s... passes the slice through, no boxing
		}
		pt := paramTypeAt(sig, j)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil {
			continue // unknown or constant (folded / staticinit'd)
		}
		if isNilIdent(info, arg) || pointerShaped(atv.Type) || types.IsInterface(atv.Type) {
			continue
		}
		report(arg, "interface boxing of "+atv.Type.String())
	}
}

// paramTypeAt resolves the parameter type for argument position j,
// unfolding the variadic tail to its element type.
func paramTypeAt(sig *types.Signature, j int) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && j >= np-1 {
		if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if j < np {
		return sig.Params().At(j).Type()
	}
	return nil
}

// pointerShaped: storing the value in an interface copies a single
// pointer word — no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// captureCount counts the distinct variables of the enclosing function
// that lit closes over.
func captureCount(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) int {
	seen := make(map[*types.Var]bool)
	fnStart, fnEnd := fd.Pos(), fd.End()
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		p := v.Pos()
		if p >= lit.Pos() && p <= lit.End() {
			return true // the literal's own binding
		}
		if p < fnStart || p > fnEnd {
			return true // package-level or foreign
		}
		seen[v] = true
		return true
	})
	return len(seen)
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
