package analysis

import (
	"go/ast"
	"go/types"
)

// SimTime forbids wall-clock time and global randomness in module-internal
// simulation code. The discrete-event engine is bit-deterministic across
// runs of the same seed only if every observable quantity derives from
// sim.Time (the virtual clock) and sim.Rand (the seeded stream); one
// time.Now() or global rand.Intn() in a hot path silently breaks the
// three-seed replay test.
var SimTime = &Analyzer{
	Name:    "simtime",
	Doc:     "forbid wall-clock time and global math/rand in internal packages; sim code must use sim.Time/sim.Rand",
	Applies: internalPkg,
	Run:     runSimTime,
}

// wallClockFuncs are the time package entry points that observe or wait on
// the wall clock. Pure data helpers (time.Duration arithmetic, ParseDuration)
// stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand names that build an explicitly seeded
// private stream — the only sanctioned use (internal/sim wraps one).
// Everything else on the package (Intn, Float64, Shuffle, …) draws from the
// process-global source and is forbidden.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSimTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // type or variable reference (time.Time, rand.Rand, …)
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; sim code must use the virtual clock (sim.Time, Proc.Now, Proc.Sleep)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global stream; sim code must use a seeded sim.Rand",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
