package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilFlow is the interprocedural extension of nilrecv: it follows nilable
// return values into dereferences. A function whose result may be a
// literal nil (transitively, through the call graph) taints the local the
// caller assigns it to; a dereference of that local — field access, *x,
// indexing, a method call on it, or passing it to a callee that
// dereferences its parameter unguarded — is a finding unless a nil check
// dominates it. The check is branch-sensitive over the CFG: the analysis
// decomposes short-circuit conditions and refines facts along `x == nil`
// / `x != nil` edges, so the repo's `q := gm.Query(…); if q == nil {
// continue }` idiom proves itself safe. Methods that open with a receiver
// nil-guard, and methods of iocheck:nilsafe types, are safe to call on a
// possibly-nil value.
var NilFlow = &Analyzer{
	Name:    "nilflow",
	Doc:     "nilable return values must be nil-checked before dereference (CFG + call-graph extension of nilrecv)",
	Applies: internalPkg,
	Run:     runNilFlow,
}

type nilState uint8

const (
	nilMaybe nilState = iota + 1
	nilNot
)

// nilFact maps tracked locals (pointer-typed vars assigned from nilable
// calls) to their state. Facts are treated as immutable; transfer copies
// before writing.
type nilFact map[types.Object]nilState

func runNilFlow(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			runNilFlowFunc(pass, fd)
		}
	}
}

func runNilFlowFunc(pass *Pass, fd *ast.FuncDecl) {
	prob := &nilProblem{pass: pass}
	cfg := BuildCFG(fd)
	in := Forward(cfg, prob)
	// Report phase: replay each reachable block's transfer with its
	// solved entry fact, now with reporting armed.
	prob.reported = make(map[token.Pos]bool)
	for _, b := range cfg.Blocks {
		fact := in[b.Index]
		if fact == nil {
			continue
		}
		f := fact
		for _, n := range b.Nodes {
			f = prob.Transfer(n, f)
		}
	}
}

type nilProblem struct {
	pass *Pass
	// reported is nil during the solve; non-nil arms diagnostics (and
	// dedupes them across blocks).
	reported map[token.Pos]bool
}

func (p *nilProblem) Entry() Fact { return nilFact{} }

func (p *nilProblem) Join(a, b Fact) Fact {
	fa, fb := a.(nilFact), b.(nilFact)
	out := make(nilFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	// May-analysis: a value that may be nil on either path may be nil at
	// the merge.
	for k, v := range fb {
		if cur, ok := out[k]; ok && cur != v {
			out[k] = nilMaybe
		} else if !ok {
			out[k] = v
		}
	}
	return out
}

func (p *nilProblem) Equal(a, b Fact) bool {
	fa, fb := a.(nilFact), b.(nilFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

// Refine interprets a condition-leaf edge: `x == nil` false and
// `x != nil` true both prove x non-nil.
func (p *nilProblem) Refine(cond ast.Expr, branch bool, f Fact) Fact {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return f
	}
	var other ast.Expr
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && id.Name == "nil" {
		other = be.Y
	} else if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && id.Name == "nil" {
		other = be.X
	} else {
		return f
	}
	obj := p.objOf(other)
	fact := f.(nilFact)
	if obj == nil || fact[obj] == 0 {
		return f
	}
	nonNil := (be.Op == token.EQL && !branch) || (be.Op == token.NEQ && branch)
	if !nonNil {
		return f
	}
	out := copyNilFact(fact)
	out[obj] = nilNot
	return out
}

func (p *nilProblem) Transfer(n ast.Node, f Fact) Fact {
	fact := f.(nilFact)
	// Deref checks see the fact before this node's assignments take
	// effect; a survived dereference then proves the value non-nil.
	fact = p.checkDerefs(n, fact)
	switch n := n.(type) {
	case *ast.AssignStmt:
		fact = p.transferAssign(n, fact)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fact = p.trackInit(vs.Names, vs.Values, fact)
				}
			}
		}
	case *ast.RangeStmt:
		// `for x = range …` (assignment form) clobbers tracked vars.
		if n.Tok == token.ASSIGN {
			out := copyNilFact(fact)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if obj := p.objOf(e); obj != nil {
					delete(out, obj)
				}
			}
			fact = out
		}
	case *ast.UnaryExpr:
		// &x aliases the local; stop tracking it.
		if n.Op == token.AND {
			if obj := p.objOf(n.X); obj != nil && fact[obj] != 0 {
				out := copyNilFact(fact)
				delete(out, obj)
				fact = out
			}
		}
	}
	return fact
}

func (p *nilProblem) transferAssign(as *ast.AssignStmt, fact nilFact) nilFact {
	// Single multi-value call: x, y := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			return p.trackCallResults(as.Lhs, call, fact)
		}
	}
	out := fact
	for i, lhs := range as.Lhs {
		obj := p.defOrUse(lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		state := p.rhsState(rhs)
		if state != 0 && !pointerLike(obj.Type()) {
			state = 0
		}
		out = setOrDelete(out, obj, state)
	}
	return out
}

func (p *nilProblem) trackInit(names []*ast.Ident, values []ast.Expr, fact nilFact) nilFact {
	if len(values) == 1 && len(names) > 1 {
		if call, ok := ast.Unparen(values[0]).(*ast.CallExpr); ok {
			lhs := make([]ast.Expr, len(names))
			for i, id := range names {
				lhs[i] = id
			}
			return p.trackCallResults(lhs, call, fact)
		}
	}
	out := fact
	for i, id := range names {
		obj := p.pass.Pkg.Info.Defs[id]
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if i < len(values) {
			rhs = values[i]
		}
		state := p.rhsState(rhs)
		if state != 0 && !pointerLike(obj.Type()) {
			state = 0
		}
		out = setOrDelete(out, obj, state)
	}
	return out
}

// trackCallResults applies `a, b, … := f()` where result i's nilability
// comes from f's summary.
func (p *nilProblem) trackCallResults(lhs []ast.Expr, call *ast.CallExpr, fact nilFact) nilFact {
	out := fact
	nilable := p.calleeNilable(call)
	for i, l := range lhs {
		obj := p.defOrUse(l)
		if obj == nil {
			continue
		}
		state := nilState(0)
		if i < len(nilable) && nilable[i] && pointerLike(obj.Type()) {
			state = nilMaybe
		}
		out = setOrDelete(out, obj, state)
	}
	return out
}

// rhsState classifies a single right-hand side: nilMaybe for calls with a
// nilable first result, 0 (untrack) otherwise.
func (p *nilProblem) rhsState(rhs ast.Expr) nilState {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return 0
	}
	nilable := p.calleeNilable(call)
	if len(nilable) >= 1 && nilable[0] {
		return nilMaybe
	}
	return 0
}

// calleeNilable merges the nilable-result summaries of the call's
// possible targets (any target returning nil makes the result nilable).
// Calls whose result tuple ends in `error` contribute nothing: by
// convention a nil value result travels with a non-nil error, and the
// caller's err check — which this analysis does not model — re-
// establishes non-nilness on the path that goes on to dereference.
func (p *nilProblem) calleeNilable(call *ast.CallExpr) []bool {
	if errorPairedCall(p.pass.Pkg.Info, call) {
		return nil
	}
	var out []bool
	for _, callee := range p.pass.Prog.Callees(p.pass.Pkg, call) {
		for i, v := range callee.NilableResult {
			for len(out) <= i {
				out = append(out, false)
			}
			if v {
				out[i] = true
			}
		}
	}
	return out
}

// checkDerefs reports dereferences of possibly-nil locals within one CFG
// node and flips survived values to non-nil.
func (p *nilProblem) checkDerefs(n ast.Node, fact nilFact) nilFact {
	out := fact
	WalkCFGNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			obj := p.objOf(m.X)
			if obj == nil || out[obj] != nilMaybe {
				return true
			}
			if p.safeSelector(m) {
				return true
			}
			p.report(m.X.Pos(), obj, "dereferenced via .%s", m.Sel.Name)
			out = setOrDelete(out, obj, nilNot)
		case *ast.StarExpr:
			if obj := p.objOf(m.X); obj != nil && out[obj] == nilMaybe {
				p.report(m.X.Pos(), obj, "dereferenced via *%s", obj.Name())
				out = setOrDelete(out, obj, nilNot)
			}
		case *ast.IndexExpr:
			obj := p.objOf(m.X)
			if obj != nil && out[obj] == nilMaybe && indexPanicsOnNil(obj.Type()) {
				p.report(m.X.Pos(), obj, "indexed")
				out = setOrDelete(out, obj, nilNot)
			}
		case *ast.CallExpr:
			// Passing the value to a callee that dereferences the
			// parameter without its own guard.
			for j, a := range m.Args {
				obj := p.objOf(a)
				if obj == nil || out[obj] != nilMaybe {
					continue
				}
				for _, callee := range p.pass.Prog.Callees(p.pass.Pkg, m) {
					if j < len(callee.DerefsParam) && callee.DerefsParam[j] {
						p.report(a.Pos(), obj, "passed to %s, which dereferences the parameter unguarded", callee.String())
						out = setOrDelete(out, obj, nilNot)
						break
					}
				}
			}
		}
		return true
	})
	return out
}

// safeSelector reports whether selecting through a possibly-nil receiver
// is harmless: a method value whose method nil-guards its receiver or
// whose type is marked iocheck:nilsafe.
func (p *nilProblem) safeSelector(sel *ast.SelectorExpr) bool {
	s, ok := p.pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() == types.FieldVal {
		return false
	}
	m, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	if named := namedRecvType(m); named != nil && p.pass.Prog.NilSafeType(named.Obj()) {
		return true
	}
	if node := p.pass.Prog.Node(m); node != nil && node.NilGuarded {
		return true
	}
	return false
}

func (p *nilProblem) report(pos token.Pos, obj types.Object, format string, args ...any) {
	if p.reported == nil || p.reported[pos] {
		return
	}
	p.reported[pos] = true
	msg := "value of %q may be nil (assigned from a nilable call) and is " + format + "; check it against nil first"
	p.pass.Reportf(pos, msg, append([]any{obj.Name()}, args...)...)
}

func (p *nilProblem) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.pass.Pkg.Info.Uses[id]
}

// defOrUse resolves an assignment target whether it defines (:=) or
// reuses (=) the identifier.
func (p *nilProblem) defOrUse(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	info := p.pass.Pkg.Info
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func setOrDelete(f nilFact, obj types.Object, state nilState) nilFact {
	if f[obj] == state {
		return f
	}
	out := copyNilFact(f)
	if state == 0 {
		delete(out, obj)
	} else {
		out[obj] = state
	}
	return out
}

func copyNilFact(f nilFact) nilFact {
	out := make(nilFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// namedRecvType returns a method's receiver base type, nil for functions.
func namedRecvType(m *types.Func) *types.Named {
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Signature, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// indexPanicsOnNil: indexing a nil pointer-to-array panics uncondition-
// ally. Nil slices are excluded — every in-bounds access is guarded by
// `i < len(s)` somewhere, and len(nil) == 0 makes that guard airtight, so
// flagging them is noise.
func indexPanicsOnNil(t types.Type) bool {
	if u, ok := t.Underlying().(*types.Pointer); ok {
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	}
	return false
}
