// Package heat is a unit-test fixture for heat propagation and
// cold-block pruning: select clauses, labeled break/continue, panic
// blocks, and the marker/name-shape propagation stops.
package heat

func mark(s string) {}

// selectCold: inside a select clause body, the error branch is cold
// while the rest of the clause (and the join after it) stays warm.
func selectCold(ch chan int, errs chan error) {
	select {
	case v := <-ch:
		mark("warm recv")
		_ = v
	case err := <-errs:
		if err != nil {
			mark("cold err")
		}
		mark("warm after err check")
	}
	mark("warm done")
}

// labeledCold: a labeled break out of a nested loop on the error path is
// cold; both loop bodies and the code after the loops stay warm.
func labeledCold(rows [][]int, err error) {
outer:
	for _, row := range rows {
		for range row {
			if err != nil {
				mark("cold break")
				break outer
			}
			mark("warm inner")
		}
		mark("warm outer tail")
	}
	mark("warm end")
}

// labeledContinueCold: a labeled continue from a failed comma-ok test is
// cold; the hit path stays warm.
func labeledContinueCold(rows [][]int, m map[int]bool) {
next:
	for _, row := range rows {
		for _, v := range row {
			ok := m[v]
			if !ok {
				mark("cold miss")
				continue next
			}
			mark("warm hit")
		}
	}
}

// panicCold: a block that panics is cold even though its entry edge is
// an ordinary comparison; the fallthrough stays warm.
func panicCold(n int) {
	if n < 0 {
		mark("cold about to panic")
		panic("negative")
	}
	mark("warm tail")
}

// root seeds the propagation test: helper/leaf get heat, the cold-block
// call, the marker-cold slow path, and the name-shape-cold callees don't.
//
//iocheck:hot
func root(e error) {
	helper()
	if e != nil {
		onError()
	}
	slowPath()
	shutdownAll()
	_ = stamp{}.String()
}

func helper() { leaf() }

func leaf() {}

// onError is only called from root's error branch.
func onError() {}

// slowPath opts out of heat by marker; the opt-out also stops
// propagation into its callees.
//
//iocheck:cold
func slowPath() { slowLeaf() }

func slowLeaf() {}

func shutdownAll() {}

type stamp struct{}

func (stamp) String() string { return "" }
