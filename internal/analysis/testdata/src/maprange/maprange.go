// Package maprange is a golden-file fixture for the maprange analyzer.
package maprange

import "sort"

type overlay struct{}

func (overlay) Submit(v int)  {}
func (overlay) Observe(v int) {}

type machine struct{}

func (machine) Send(from, to int) {}

func bad(m map[string]int, ov overlay, mach machine) []string {
	for _, v := range m { // want "loop body calls ov.Submit"
		ov.Submit(v)
	}
	for k := range m { // want "loop body calls mach.Send"
		if len(k) > 2 {
			mach.Send(0, 1)
		}
	}
	var order []string
	for k := range m { // want "appends to"
		order = append(order, k)
	}
	return order
}

func good(m map[string]int, ov overlay) int {
	// Pure reads and map-to-map copies carry no order.
	total := 0
	other := make(map[string]int, len(m))
	for k, v := range m {
		total += v
		other[k] = v
	}
	// The sanctioned idiom: collect keys, sort, then act in key order.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ov.Submit(m[k])
	}
	// Loop-local accumulators die with the iteration; no order escapes.
	for range m {
		var scratch []int
		scratch = append(scratch, total)
		_ = scratch
	}
	return total
}

func audited(m map[string]int, ov overlay) {
	//iocheck:allow maprange fixture demonstrating an audited exception
	for _, v := range m {
		ov.Submit(v)
	}
}
