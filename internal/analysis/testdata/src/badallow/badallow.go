// Package badallow is a fixture for the malformed-allow diagnostic: an
// //iocheck:allow comment with no reason is itself a finding, so audits
// cannot silently erode.
package badallow

//iocheck:allow simtime
func noReason() {}
