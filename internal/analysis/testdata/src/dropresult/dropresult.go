// Package dropresult is a golden-file fixture for the dropresult
// analyzer: only a Writer's single-bool Write/WriteTraced may trip the
// rule, and only when the result is discarded.
package dropresult

// Writer mirrors the datatap writer shape: Write/WriteTraced return the
// delivery bool that callers must not drop.
type Writer struct{ full bool }

func (w *Writer) Write(step int, size int64) bool { return !w.full }

func (w *Writer) WriteTraced(step int, size int64, span string) bool { return !w.full }

// Logger shares the method names but not the receiver type name;
// dropping its results is out of scope.
type Logger struct{}

func (Logger) Write(msg string) bool { return true }

// Sink has the io.Writer signature — multiple results, no lone bool.
type Sink struct{}

func (*Sink) Write(p []byte) (int, error) { return len(p), nil }

func bad(w *Writer) {
	w.Write(1, 64)               // want "result of Writer.Write dropped"
	w.WriteTraced(2, 64, "span") // want "result of Writer.WriteTraced dropped"
	_ = w.Write(3, 64)           // want "result of Writer.Write dropped"
	_, _ = w.Write(4, 64), false // not a single dropped call; the tuple keeps it visible
}

func good(w *Writer, lg Logger, sk *Sink) {
	if !w.Write(5, 64) {
		w.full = true
	}
	ok := w.WriteTraced(6, 64, "span")
	_ = ok // bound first, then deliberately unused — the binding is the handling site
	lg.Write("other receiver type")
	sk.Write(nil)
	f := w.Write // method value: the caller of f owns the result
	_ = f
}

func audited(w *Writer) {
	//iocheck:allow dropresult fixture demonstrating an audited exception
	w.Write(7, 64)
}
