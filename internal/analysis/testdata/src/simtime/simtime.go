// Package simtime is a golden-file fixture for the simtime analyzer.
package simtime

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()                     // want "time.Now reads the wall clock"
	time.Sleep(5)                      // want "time.Sleep reads the wall clock"
	_ = time.Since                     // want "time.Since reads the wall clock"
	_ = time.After(5)                  // want "time.After reads the wall clock"
	_ = time.Tick(5)                   // want "time.Tick reads the wall clock"
	_ = time.NewTimer(5)               // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(5)              // want "time.NewTicker reads the wall clock"
	_ = time.AfterFunc(5, func() {})   // want "time.AfterFunc reads the wall clock"
	_ = rand.Intn(4)                   // want "rand.Intn draws from the process-global stream"
	_ = rand.Float64()                 // want "rand.Float64 draws from the process-global stream"
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle draws from the process-global stream"
}

func good() {
	// Explicitly seeded private streams are the sanctioned pattern.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
	// Duration arithmetic and type references never touch the wall clock.
	var d time.Duration = 3 * time.Second
	_ = d
	var src rand.Source
	_ = src
}

func audited() {
	//iocheck:allow simtime fixture demonstrating an audited exception
	_ = time.Now()
}
