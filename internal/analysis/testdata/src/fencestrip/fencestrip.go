// Package fencestrip is the chaos cross-check fixture for roundflow: a
// distilled copy of the container manager's serve loop, with the epoch
// fence guard the split-brain fix added sitting directly above the serve
// dispatch. The companion test verifies the loop is clean as written,
// then strips the guard block and asserts roundflow reports the missing
// fence at the guard's own line.
package fencestrip

type Event struct {
	Type string
	Data any
}

type IncreaseReq struct {
	Seq   int64
	Epoch int64
	N     int
}

type IncreaseResp struct {
	Seq   int64
	Epoch int64
	Size  int
}

type queue struct{ q []*Event }

func (q *queue) Recv() *Event {
	if len(q.q) == 0 {
		return nil
	}
	ev := q.q[0]
	q.q = q.q[1:]
	return ev
}

type manager struct {
	fencedEpoch int64
	served      map[int64]any
	size        int
	out         []*Event
}

func reqSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Seq, true
	}
	return 0, false
}

func reqEpoch(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Epoch, true
	}
	return 0, false
}

func (m *manager) reply(resp any) {
	m.out = append(m.out, &Event{Type: "resp", Data: resp})
}

// serveLoop is the distilled manager loop: dedupe retried rounds from
// the served cache, refuse rounds from deposed manager epochs, then
// serve.
func (m *manager) serveLoop(in *queue) {
	for {
		ev := in.Recv()
		if ev == nil {
			return
		}
		seq, hasSeq := reqSeq(ev.Data)
		if hasSeq {
			if cached, dup := m.served[seq]; dup {
				m.reply(cached)
				continue
			}
		}
		if e, fenced := reqEpoch(ev.Data); fenced {
			if e < m.fencedEpoch {
				continue
			}
			if e > m.fencedEpoch {
				m.fencedEpoch = e
			}
		}
		switch req := ev.Data.(type) {
		case *IncreaseReq:
			m.size += req.N
			resp := &IncreaseResp{Seq: req.Seq, Epoch: m.fencedEpoch, Size: m.size}
			m.served[seq] = resp
			m.reply(resp)
		}
	}
}
