// Package epochset is a golden-file fixture for the epochset analyzer.
package epochset

// Event is the fixture's stand-in for evpath.Event — the send sink.
type Event struct {
	Type string
	Data any
}

// QueryReq is a round-path message: Req suffix carrying Seq and Epoch.
type QueryReq struct {
	Seq   int64
	Epoch int64
	Name  string
}

type bridge struct{ out []*Event }

// send wraps a payload as an Event; its summary marks the parameter as
// an event-data sink.
func (b *bridge) send(data any) {
	b.out = append(b.out, &Event{Type: "req", Data: data})
}

// stampReq assigns Epoch through a helper, the way stampReqEpoch does.
func stampReq(req *QueryReq, epoch int64) { req.Epoch = epoch }

// good stamps directly before the send.
func good(b *bridge, seq, epoch int64) {
	req := &QueryReq{Seq: seq, Name: "bonds"}
	req.Epoch = epoch
	b.send(req)
}

// goodViaHelper: the stamp travels through the callee summary.
func goodViaHelper(b *bridge, seq, epoch int64) {
	req := &QueryReq{Seq: seq}
	stampReq(req, epoch)
	b.send(req)
}

// goodLiteral: the literal itself carries the Epoch key.
func goodLiteral(b *bridge, seq, epoch int64) {
	b.send(&QueryReq{Seq: seq, Epoch: epoch})
}

// bad stamps on one branch only — unstamped at the merge.
func bad(b *bridge, seq, epoch int64, retry bool) {
	req := &QueryReq{Seq: seq}
	if retry {
		req.Epoch = epoch
	}
	b.send(req) // want "without Epoch assigned on every path"
}

// badDirect never stamps at all.
func badDirect(b *bridge, seq int64) {
	req := &QueryReq{Seq: seq}
	b.send(req) // want "without Epoch assigned on every path"
}

// badInline wraps the message in an Event literal without a stamp.
func badInline(seq int64) *Event {
	req := &QueryReq{Seq: seq}
	return &Event{Type: "req", Data: req} // want "without Epoch assigned on every path"
}

// audited: the replay path re-sends a message the dedupe cache already
// stamped, which the analysis cannot see; the audit records why.
func audited(b *bridge, seq int64) {
	req := &QueryReq{Seq: seq}
	//iocheck:allow epochset fixture: replay re-sends a cached pre-stamped message, audited
	b.send(req)
}
