// Package escape is a unit-test fixture for the escape-summary
// fixpoint: each function leaks (or keeps) its parameter exactly one
// way, so the tests can pin individual lattice bits.
package escape

type item struct{ n int }

type box struct{ kept *item }

var global *item

// retainParam stores its parameter in a struct field.
func retainParam(b *box, it *item) { b.kept = it }

// sendParam sends its parameter on a channel.
func sendParam(ch chan *item, it *item) { ch <- it }

// globalParam assigns its parameter to a package-level variable.
func globalParam(it *item) { global = it }

// returnParam returns its parameter.
func returnParam(it *item) *item { return it }

// captureParam closes over its parameter.
func captureParam(it *item) func() int {
	return func() int { return it.n }
}

func (it *item) bump() { it.n++ }

// methodValueParam captures its parameter via a bound method value.
func methodValueParam(it *item) func() {
	return it.bump
}

// wrapRetain only forwards its parameter; the retention must arrive
// interprocedurally from retainParam's summary.
func wrapRetain(b *box, it *item) { retainParam(b, it) }

// pure reads its parameter without leaking it.
func pure(it *item) int { return it.n }

// freshRetained allocates a value that is both retained and returned;
// AllocEscape on the composite must carry both bits.
func freshRetained(b *box) *item {
	it := &item{}
	b.kept = it
	return it
}
