// Package vtblock is a golden-file fixture for the vtblock analyzer.
package vtblock

// Proc is the fixture's stand-in for sim.Proc; park is the seed the
// blocking summary grows from.
type Proc struct{ t int64 }

func (p *Proc) park() { p.t++ }

// Sleep reaches park the way every kernel wait primitive does.
func (p *Proc) Sleep(d int64) { p.park() }

// Engine registers callbacks that run on the engine goroutine.
type Engine struct{}

func (e *Engine) At(t int64, f func(*Proc))     {}
func (e *Engine) Go(name string, f func(*Proc)) {}

// Stone transitively parks: Submit charges transit time.
type Stone struct{ p *Proc }

func (s *Stone) Submit(v int) { s.p.Sleep(int64(v)) }

// relay is an intermediate hop the witness chain must pass through.
func relay(s *Stone, v int) { s.Submit(v) }

// dispatch declares itself non-blocking but reaches park via relay.
//
//iocheck:nonblocking
func dispatch(s *Stone, v int) {
	relay(s, v) // want "may block virtual time"
}

// dispatchAudited suppresses the same finding with an audit trail.
//
//iocheck:nonblocking
func dispatchAudited(s *Stone, v int) {
	//iocheck:allow vtblock fixture: the bridge forward path enqueues without parking, audited
	relay(s, v)
}

// register hands the engine a literal that parks (a finding) and one
// that does not (no finding).
func register(e *Engine, s *Stone) {
	e.At(5, func(p *Proc) {
		s.Submit(1) // want "engine callback"
	})
	e.At(6, func(p *Proc) {
		_ = s
	})
}

// registerValue hands the engine a blocking method value; the graph
// resolves it without a literal body to scan.
func registerValue(e *Engine) {
	e.At(7, blocker) // want "registered as an engine callback"
}

func blocker(p *Proc) { p.Sleep(1) }

// drain parks inside map iteration: wake order would follow Go's
// randomized map order.
func drain(m map[int]*Stone) {
	for _, s := range m {
		s.Submit(1) // want "map iteration"
	}
}

// launch is the normal case: a launcher literal is its own process, so
// sleeping there is not a finding.
func launch(e *Engine, s *Stone) {
	e.Go("worker", func(p *Proc) { p.Sleep(1) })
}
