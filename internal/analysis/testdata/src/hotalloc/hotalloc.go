// Package hotalloc is a golden-file fixture for the hotalloc analyzer:
// heat-propagated per-event allocation findings, cold-pruning, escape
// tags, and the audited-allow path.
package hotalloc

import "fmt"

type event struct {
	what string
	next *event
}

type engine struct {
	queue []*event
	free  *event
}

// push retains the event in the engine's queue (escape: retained).
func (e *engine) push(ev *event) { e.queue = append(e.queue, ev) }

// schedule is a hot root: the composite it builds is retained by push.
//
//iocheck:hot
func (e *engine) schedule(what string) {
	_ = e.String()             // String is cold by name: heat stops here
	e.push(&event{what: what}) // want "composite literal &event{…}) on hot path (*engine).schedule; value escapes (retained)"
}

// step is a hot root whose helper's findings carry the witness chain.
//
//iocheck:hot
func step(e *engine, n int) {
	deliver(e, n)
}

// deliver is hot via step; both allocation shapes on its one line are
// flagged, each witnessed "step → deliver".
func deliver(e *engine, n int) {
	e.push(&event{what: fmt.Sprintf("step %d", n)}) // want "on hot path step → deliver" "fmt.Sprintf"
}

// lookup is a non-allocating helper (hot via submit, nothing to flag).
func lookup(v int) (int, bool) {
	if v > 10 {
		return 0, false
	}
	return v, true
}

// submit exercises cold-pruning: allocations in the error branch, the
// failed comma-ok branch, and the panic block are once-per-failure and
// must not be flagged.
//
//iocheck:hot
func submit(e *engine, v int, err error) {
	if err != nil {
		e.push(&event{what: "error"}) // no finding: cold error branch
	}
	m, ok := lookup(v)
	if !ok {
		_ = fmt.Sprintf("missing %d", v) // no finding: failed comma-ok branch
	}
	if m < 0 {
		panic(fmt.Sprintf("bad %d", m)) // no finding: panic block
	}
}

// stamp mirrors trace.Stamp: the lazy map make in the nil branch is the
// steady state, not failure handling, and must be flagged.
//
//iocheck:hot
func stamp(attrs map[string]string, id string) map[string]string {
	if attrs == nil {
		attrs = make(map[string]string, 1) // want "make(map)"
	}
	attrs["span"] = id
	return attrs
}

// keys exercises non-constant make and append growth in a loop.
//
//iocheck:hot
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m)) // want "make with non-constant size"
	for k := range m {
		out = append(out, k) // want "append growth in a loop"
	}
	return out
}

// wakeLabel allocates a fresh string per call.
//
//iocheck:hot
func wakeLabel(name string) string {
	return "wake " + name // want "string concatenation"
}

const prefix = "wake "

// constLabel's concatenation folds at compile time: no finding.
//
//iocheck:hot
func constLabel() string {
	return prefix + "all"
}

// scratch's buffer never escapes: the tag says poolable.
//
//iocheck:hot
func scratch(n int) int {
	buf := make([]byte, n) // want "make with non-constant size) on hot path scratch; value does not escape — poolable"
	return len(buf)
}

// retain is the audited suppression case: the allocation is retained by
// design and the allow keeps the finding visible but non-failing.
//
//iocheck:hot
func retain(e *engine, what string) {
	//iocheck:allow hotalloc fixture: entries are retained until acked by design, audited
	e.push(&event{what: what})
}

// allocEvent services a freelist miss; the cold marker takes it off the
// per-event budget.
//
//iocheck:cold
func (e *engine) allocEvent() *event {
	return &event{}
}

// String is cold by name shape (formatting).
func (e *engine) String() string {
	return fmt.Sprintf("engine(%d)", len(e.queue))
}
