// Package roundflow is a golden-file fixture for the roundflow analyzer:
// the issue leg (deadline/retry budget before every send of a round-path
// Req), the serve leg (Seq dedupe + epoch fence on all paths before a
// state-applying round dispatch), and the closure leg (mk-closure Reqs
// handed to a budgeted caller).
package roundflow

// Event is the fixture's stand-in for evpath.Event — the send envelope.
type Event struct {
	Type string
	Data any
}

// IncreaseReq / IncreaseResp are round-path messages: Req/Resp suffix
// carrying Seq and Epoch.
type IncreaseReq struct {
	Seq   int64
	Epoch int64
	N     int
}

type IncreaseResp struct {
	Seq   int64
	Epoch int64
	OK    bool
}

// PingNotice is a round-path Notice (Seq+Epoch, no Shard).
type PingNotice struct {
	Seq   int64
	Epoch int64
}

// StealReq carries a Shard field: the shard-relay family has its own
// single-writer discipline and is exempt from the round lifecycle.
type StealReq struct {
	Seq   int64
	Epoch int64
	Shard int
}

type policy struct {
	CallTimeout int64
	CallRetries int64
}

type stone struct{ q []*Event }

func (s *stone) Submit(ev *Event) { s.q = append(s.q, ev) }

// send wraps a payload as an Event; its summary marks the parameter as
// an event-data sink.
func (s *stone) send(data any) { s.q = append(s.q, &Event{Type: "w", Data: data}) }

type manager struct {
	policy      policy
	out         *stone
	fencedEpoch int64
	nextSeq     int64
	count       int
	served      map[int64]*IncreaseResp
	seen        map[int64]int64
	inbox       []any
}

// reqSeq extracts the Seq off a round message — the dedupe primitive.
func reqSeq(v any) int64 {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Seq
	case *IncreaseResp:
		return r.Seq
	}
	return -1
}

// reqEpoch extracts the Epoch — the fence primitive.
func reqEpoch(v any) (int64, bool) {
	switch r := v.(type) {
	case *IncreaseReq:
		return r.Epoch, true
	case *IncreaseResp:
		return r.Epoch, true
	}
	return 0, false
}

// stampReq assigns Epoch on a round Req through a type-switch binding,
// the way stampReqEpoch does; its summary stamps parameter 0.
func stampReq(v any, epoch int64) {
	switch r := v.(type) {
	case *IncreaseReq:
		r.Epoch = epoch
	}
}

// --- serve leg ---

// goodServe establishes both guards before the state-applying dispatch.
func (m *manager) goodServe(ev *Event) {
	seq := reqSeq(ev.Data)
	if e, ok := reqEpoch(ev.Data); ok && e < m.fencedEpoch {
		return
	}
	switch r := ev.Data.(type) {
	case *IncreaseReq:
		m.served[seq] = &IncreaseResp{Seq: r.Seq, Epoch: m.fencedEpoch, OK: true}
	}
}

// goodServeDirect guards the plain type-assert form: both reads
// dominate the assertion.
func (m *manager) goodServeDirect(ev *Event) {
	if reqSeq(ev.Data) <= m.nextSeq {
		return
	}
	if e, ok := reqEpoch(ev.Data); !ok || e < m.fencedEpoch {
		return
	}
	r, ok := ev.Data.(*IncreaseReq)
	if !ok {
		return
	}
	m.count++
	_ = r
}

// badServeNoFence dedupes but never fence-checks.
func (m *manager) badServeNoFence(ev *Event) {
	seq := reqSeq(ev.Data)
	switch ev.Data.(type) { // want "epoch fence-check"
	case *IncreaseReq:
		m.served[seq] = nil
	}
}

// badServeNoDedupe fence-checks but never dedupes.
func (m *manager) badServeNoDedupe(ev *Event) {
	if e, ok := reqEpoch(ev.Data); ok && e < m.fencedEpoch {
		return
	}
	switch ev.Data.(type) { // want "Seq dedupe guard"
	case *IncreaseReq:
		m.count++
	}
}

// badServeOneBranch guards on the replay branch only; the must-join
// kills both facts.
func (m *manager) badServeOneBranch(ev *Event, replay bool) {
	if replay {
		seq := reqSeq(ev.Data)
		if e, ok := reqEpoch(ev.Data); ok && e < seq {
			return
		}
	}
	switch ev.Data.(type) { // want "Seq dedupe guard" "epoch fence-check"
	case *IncreaseReq:
		m.count++
	}
}

// kindOf dispatches without applying state: no obligations.
func kindOf(v any) string {
	switch v.(type) {
	case *IncreaseReq:
		return "inc"
	default:
		return "?"
	}
}

// shardServe dispatches a shard-relay message: a separate family, no
// round obligations.
func (m *manager) shardServe(ev *Event) {
	switch ev.Data.(type) {
	case *StealReq:
		m.count++
	}
}

// badAssert applies state around an unguarded round type assertion.
func (m *manager) badAssert(ev *Event) {
	r, ok := ev.Data.(*IncreaseResp) // want "Seq dedupe guard" "epoch fence-check"
	if ok {
		m.count++
	}
	_ = r
}

// pump is the audited exception: a Notice pump that dedupes per source
// inside the arm, with downstream rounds fenced on their own.
func (m *manager) pump(ev *Event) {
	//iocheck:allow roundflow fixture: notice pump dedupes per-source inside the arm; downstream rounds are fenced on issue
	switch d := ev.Data.(type) {
	case *PingNotice:
		if cur, ok := m.seen[d.Seq]; !ok || d.Seq > cur {
			m.seen[d.Seq] = d.Seq
		}
	}
}

// --- issue leg ---

// goodIssue registers the deadline and retry budget before the send.
func (m *manager) goodIssue(seq int64) {
	req := &IncreaseReq{Seq: seq, N: 1}
	stampReq(req, m.fencedEpoch)
	timeout := m.policy.CallTimeout
	for attempt := int64(0); attempt <= m.policy.CallRetries; attempt++ {
		ev := &Event{Type: "inc", Data: req}
		m.out.Submit(ev)
		timeout *= 2
	}
	_ = timeout
}

// badIssueNoDeadline retries but never bounds the wait.
func (m *manager) badIssueNoDeadline(seq int64) {
	req := &IncreaseReq{Seq: seq}
	for attempt := int64(0); attempt <= m.policy.CallRetries; attempt++ {
		m.out.Submit(&Event{Type: "inc", Data: req}) // want "no deadline registered"
	}
}

// badIssueNoRetries bounds the wait but sends outside a retry budget.
func (m *manager) badIssueNoRetries(seq int64) {
	req := &IncreaseReq{Seq: seq}
	deadline := m.policy.CallTimeout
	ev := &Event{Type: "inc", Data: req}
	m.out.Submit(ev) // want "no retry budget"
	_ = deadline
}

// badIssueViaSink: the send happens through an event-data sink callee.
func (m *manager) badIssueViaSink(seq int64) {
	req := &IncreaseReq{Seq: seq}
	m.out.send(req) // want "no deadline registered" "no retry budget"
}

// --- closure leg ---

// takeResp pops the next delivered response, if any.
func (m *manager) takeResp() any {
	if len(m.inbox) == 0 {
		return nil
	}
	v := m.inbox[0]
	m.inbox = m.inbox[1:]
	return v
}

// call is the budgeted issuer: mk composes the Req, call owns deadline,
// retries, stamping, the send, and the seq-deduped response filter.
func (m *manager) call(mk func(int64) any) any {
	m.nextSeq++
	req := mk(m.nextSeq)
	stampReq(req, m.fencedEpoch)
	deadline := m.policy.CallTimeout
	for attempt := int64(0); attempt <= m.policy.CallRetries; attempt++ {
		ev := &Event{Type: "call", Data: req}
		m.out.Submit(ev)
		if got := m.takeResp(); got != nil && reqSeq(got) == m.nextSeq {
			return got
		}
		deadline *= 2
	}
	return nil
}

// fire enqueues whatever mk builds with no budget anywhere.
func (m *manager) fire(mk func(int64) any) {
	m.inbox = append(m.inbox, mk(1))
}

// goodClosure: the Req literal rides a closure into the budgeted caller.
func (m *manager) goodClosure(n int) {
	m.call(func(seq int64) any { return &IncreaseReq{Seq: seq, N: n} })
}

// badClosure hands the Req to a callee that never registers a budget.
func (m *manager) badClosure(n int) {
	m.fire(func(seq int64) any { return &IncreaseReq{Seq: seq, N: n} }) // want "never registers"
}

// goodAssertOnCall asserts directly on the budgeted caller's result: the
// callee's own dedupe/fence summaries guard the dispatch, because the
// call evaluates before the assertion.
func (m *manager) goodAssertOnCall(n int) {
	resp, _ := m.call(func(seq int64) any { return &IncreaseReq{Seq: seq, N: n} }).(*IncreaseResp)
	if resp != nil && resp.OK {
		m.count++
	}
}
