// Package callgraph is the fixture for the CHA call-graph unit tests
// (not an analyzer fixture; the golden harness never loads it).
package callgraph

// Speaker has two implementations, so a call through the interface must
// resolve to both under CHA.
type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (c *Cat) Speak() string { return "meow" }

// SpeakAll dispatches through the interface.
func SpeakAll(s Speaker) string { return s.Speak() }

// Proc mirrors the kernel's blocking seed shape.
type Proc struct{ t int64 }

func (p *Proc) park() { p.t++ }

// Sleep reaches park directly.
func (p *Proc) Sleep() { p.park() }

// Helper reaches park through Sleep — two hops for the chain test.
func Helper(p *Proc) { p.Sleep() }

// Registry receives a method value; FuncValue must resolve it.
type Registry struct{ f func() }

func (r *Registry) Register(f func()) { r.f = f }

// Wake is a non-blocking method handed over as a value.
func (p *Proc) Wake() { p.t = 0 }

func RegisterBoth(r *Registry, p *Proc) {
	r.Register(p.Wake)
}
