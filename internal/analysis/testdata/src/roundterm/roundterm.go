// Package roundterm is a golden-file fixture for the roundterm analyzer:
// every issued round-path Req must reach a terminal state — completed,
// fenced, or timed out — on all paths from the send to function exit.
package roundterm

// Event is the fixture's stand-in for evpath.Event.
type Event struct {
	Type string
	Data any
}

// IncreaseReq / IncreaseResp are round-path messages (Seq+Epoch, no
// Shard).
type IncreaseReq struct {
	Seq   int64
	Epoch int64
	N     int
}

type IncreaseResp struct {
	Seq   int64
	Epoch int64
	OK    bool
}

type policy struct {
	CallTimeout int64
	CallRetries int64
}

type stone struct{ q []*Event }

func (s *stone) Submit(ev *Event) { s.q = append(s.q, ev) }

type queue struct{ q []*Event }

// RecvTimeout is the bounded wait the round's deadline rides on.
func (q *queue) RecvTimeout(d int64) (*Event, bool) {
	if len(q.q) == 0 || d <= 0 {
		return nil, false
	}
	ev := q.q[0]
	q.q = q.q[1:]
	return ev, true
}

// span is the flight-recorder handle whose End() is the terminal state.
type span struct{ done bool }

func (s *span) End() { s.done = true }

type tracer struct{}

func (t *tracer) begin() *span { return &span{} }

// stampReq assigns Epoch on a round Req via a type-switch binding.
func stampReq(v any, epoch int64) {
	switch r := v.(type) {
	case *IncreaseReq:
		r.Epoch = epoch
	}
}

type manager struct {
	policy   policy
	out      *stone
	in       *queue
	tr       *tracer
	epoch    int64
	suspects int
}

// abandon is a terminating helper: it records the suspect and closes the
// round's span, so callers may terminate through it.
func (m *manager) abandon(sp *span) {
	m.suspects++
	sp.End()
}

// goodTerm ends the round on both the response and the timeout path.
func (m *manager) goodTerm(seq int64) *Event {
	req := &IncreaseReq{Seq: seq, N: 1}
	stampReq(req, m.epoch)
	sp := m.tr.begin()
	ev := &Event{Type: "inc", Data: req}
	m.out.Submit(ev)
	if v, ok := m.in.RecvTimeout(m.policy.CallTimeout); ok {
		sp.End()
		return v
	}
	sp.End()
	return nil
}

// goodDeferEnd terminates every path at once through a deferred End —
// including the early error return.
func (m *manager) goodDeferEnd(seq int64) *Event {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	sp := m.tr.begin()
	defer sp.End()
	m.out.Submit(&Event{Type: "inc", Data: req})
	v, ok := m.in.RecvTimeout(m.policy.CallTimeout)
	if !ok {
		return nil
	}
	return v
}

// goodTermViaHelper terminates the error branch through a helper that
// carries the Term summary.
func (m *manager) goodTermViaHelper(seq int64) {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	sp := m.tr.begin()
	m.out.Submit(&Event{Type: "inc", Data: req})
	if _, ok := m.in.RecvTimeout(m.policy.CallTimeout); !ok {
		m.abandon(sp)
		return
	}
	sp.End()
}

// goodRetryLoop is the GM call-loop shape: one span per attempt, ended
// before the next attempt or the final return.
func (m *manager) goodRetryLoop(seq int64) *Event {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	timeout := m.policy.CallTimeout
	for attempt := int64(0); attempt <= m.policy.CallRetries; attempt++ {
		sp := m.tr.begin()
		m.out.Submit(&Event{Type: "inc", Data: req})
		v, ok := m.in.RecvTimeout(timeout)
		if ok {
			sp.End()
			return v
		}
		sp.End()
		timeout *= 2
	}
	m.suspects++
	return nil
}

// badDrop loses the round in the error branch: the early return skips
// every End.
func (m *manager) badDrop(seq int64) *Event {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	sp := m.tr.begin()
	m.out.Submit(&Event{Type: "inc", Data: req}) // want "may be dropped"
	v, ok := m.in.RecvTimeout(m.policy.CallTimeout)
	if !ok {
		return nil // drops the round: no terminal state on this path
	}
	sp.End()
	return v
}

// badNeverEnds sends and walks away on every path.
func (m *manager) badNeverEnds(seq int64) {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	ev := &Event{Type: "inc", Data: req}
	m.out.Submit(ev) // want "may be dropped"
}

// refuse sends a Resp, not a Req: responses are the other end's round,
// never tracked here.
func (m *manager) refuse(seq int64) {
	resp := &IncreaseResp{Seq: seq, Epoch: m.epoch, OK: false}
	m.out.Submit(&Event{Type: "resp", Data: resp})
}

// hint is the audited exception: a deliberate fire-and-forget round the
// receiver's next heartbeat closes.
func (m *manager) hint(seq int64) {
	req := &IncreaseReq{Seq: seq}
	stampReq(req, m.epoch)
	//iocheck:allow roundterm fixture: fire-and-forget hint round; the receiver's next heartbeat closes it
	m.out.Submit(&Event{Type: "hint", Data: req})
}
