// Package ctlmsg is a golden-file fixture for the ctlmsg analyzer: a
// miniature of internal/core's protocol dispatch.
package ctlmsg

// PingReq is fully dispatched and fenced.
type PingReq struct {
	Seq   int64
	Epoch int64
}

// PingResp is fully dispatched and fenced.
type PingResp struct {
	Seq   int64
	Epoch int64
}

type LostReq struct{ Seq int64 } // want "missing from the reqSeq" "missing from the msgTypeFor" "not served by the managerLoop"

type LostResp struct{ Seq int64 } // want "missing from the respSeq"

// EpochlessReq rides the round path but cannot be fenced.
type EpochlessReq struct{ Seq int64 } // want "carries no Epoch int64 field"

// EpochlessResp rides the round path but cannot be fenced.
type EpochlessResp struct{ Seq int64 } // want "carries no Epoch int64 field"

// NoSeqReq carries no sequence number, so it is not a round message.
type NoSeqReq struct{ N int }

// PumpReq deliberately bypasses the round path.
//
//iocheck:allow ctlmsg fixture: served from a pump, audited
type PumpReq struct{ Seq int64 }

// BeatMsg is a fully registered shard round message.
type BeatMsg struct {
	Seq   int64
	Epoch int64
	Shard int
}

// StrayMsg never made it into the shard registry or a dispatch arm.
type StrayMsg struct { // want "missing from the shardMsgSeq" "not handled by any shard dispatch"
	Seq   int64
	Epoch int64
	Shard int
}

// BareMsg is dispatched but unfenced.
type BareMsg struct { // want "carries no Epoch int64 field"
	Seq   int64
	Shard int
}

// StealReq ends in "Req" but Seq+Shard makes it a shard round message:
// exempt from the container-round switches (reqSeq/msgTypeFor/managerLoop).
type StealReq struct {
	Seq   int64
	Epoch int64
	Shard int
}

// NoticeMsg is a fully registered subscriber round message: a pump
// notice, handled by dispatch rather than served as a round.
type NoticeMsg struct {
	Seq   int64
	Epoch int64
	SubID string
}

// StraySubMsg never made it into the subscriber registry or a dispatch
// arm.
type StraySubMsg struct { // want "missing from the subMsgSeq" "not handled by any subscriber dispatch"
	Seq   int64
	Epoch int64
	SubID string
}

// BareSubMsg is registered and dispatched but unfenced.
type BareSubMsg struct { // want "carries no Epoch int64 field"
	Seq   int64
	SubID string
}

// SubPingReq carries SubID and ends in Req: a full container round that
// must satisfy BOTH the container-round and subscriber-family contracts.
type SubPingReq struct {
	Seq   int64
	Epoch int64
	SubID string
}

func shardMsgSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *BeatMsg:
		return r.Seq, true
	case *BareMsg:
		return r.Seq, true
	case *StealReq:
		return r.Seq, true
	}
	return 0, false
}

func shardDispatch(v any) bool {
	switch v.(type) {
	case *BeatMsg, *BareMsg, *StealReq:
		return true
	}
	return false
}

func subMsgSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *NoticeMsg:
		return r.Seq, true
	case *BareSubMsg:
		return r.Seq, true
	case *SubPingReq:
		return r.Seq, true
	}
	return 0, false
}

func dispatch(v any) bool {
	switch v.(type) {
	case *NoticeMsg, *BareSubMsg:
		return true
	}
	return false
}

func reqSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *PingReq:
		return r.Seq, true
	case *EpochlessReq:
		return r.Seq, true
	case *SubPingReq:
		return r.Seq, true
	}
	return 0, false
}

func respSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *PingResp:
		return r.Seq, true
	case *EpochlessResp:
		return r.Seq, true
	}
	return 0, false
}

func msgTypeFor(req any) string {
	switch req.(type) {
	case *PingReq:
		return "ctl.ping"
	case *EpochlessReq:
		return "ctl.epochless"
	case *SubPingReq:
		return "ctl.sub_ping"
	}
	return "ctl.unknown"
}

type server struct{ served map[int64]any }

func (s *server) managerLoop(v any) any {
	switch req := v.(type) {
	case *PingReq:
		resp := &PingResp{Seq: req.Seq, Epoch: req.Epoch}
		s.served[req.Seq] = resp
		return resp
	case *EpochlessReq:
		resp := &EpochlessResp{Seq: req.Seq}
		s.served[req.Seq] = resp
		return resp
	case *SubPingReq:
		resp := &PingResp{Seq: req.Seq, Epoch: req.Epoch}
		s.served[req.Seq] = resp
		return resp
	}
	return nil
}
