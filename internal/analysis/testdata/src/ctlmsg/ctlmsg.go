// Package ctlmsg is a golden-file fixture for the ctlmsg analyzer: a
// miniature of internal/core's protocol dispatch.
package ctlmsg

// PingReq is fully dispatched.
type PingReq struct{ Seq int64 }

// PingResp is fully dispatched.
type PingResp struct{ Seq int64 }

type LostReq struct{ Seq int64 } // want "missing from the reqSeq" "missing from the msgTypeFor" "not served by the managerLoop"

type LostResp struct{ Seq int64 } // want "missing from the respSeq"

// NoSeqReq carries no sequence number, so it is not a round message.
type NoSeqReq struct{ N int }

// PumpReq deliberately bypasses the round path.
//
//iocheck:allow ctlmsg fixture: served from a pump, audited
type PumpReq struct{ Seq int64 }

func reqSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *PingReq:
		return r.Seq, true
	}
	return 0, false
}

func respSeq(v any) (int64, bool) {
	switch r := v.(type) {
	case *PingResp:
		return r.Seq, true
	}
	return 0, false
}

func msgTypeFor(req any) string {
	switch req.(type) {
	case *PingReq:
		return "ctl.ping"
	}
	return "ctl.unknown"
}

type server struct{ served map[int64]any }

func (s *server) managerLoop(v any) any {
	switch req := v.(type) {
	case *PingReq:
		resp := &PingResp{Seq: req.Seq}
		s.served[req.Seq] = resp
		return resp
	}
	return nil
}
