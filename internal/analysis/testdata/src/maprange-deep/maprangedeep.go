// Package maprangedeep is a golden-file fixture for the maprange-deep
// analyzer.
package maprangedeep

// Stone is the fixture's order-bearing sink holder.
type Stone struct{ sent []int }

// Submit is in the orderSinks set by name.
func (s *Stone) Submit(v int) { s.sent = append(s.sent, v) }

// emit hides the sink one call down — the syntactic maprange rule
// cannot see through it.
func emit(s *Stone, v int) { s.Submit(v) }

// relay hides it two calls down; the witness chain names the path.
func relay(s *Stone, v int) { emit(s, v) }

// bad reaches Submit through one helper from the range body.
func bad(stones map[int]*Stone) {
	for k, s := range stones {
		emit(s, k) // want "reaches an order-bearing side effect"
	}
}

// badDeep reaches it through two hops.
func badDeep(stones map[int]*Stone) {
	for k, s := range stones {
		relay(s, k) // want "reaches an order-bearing side effect"
	}
}

// good: pure computation in the body is fine.
func good(stones map[int]*Stone) int {
	n := 0
	for range stones {
		n++
	}
	return n
}

// audited: the signal is idempotent per key, so delivery order cannot be
// observed; the audit records why.
func audited(stones map[int]*Stone) {
	for k, s := range stones {
		//iocheck:allow maprange-deep fixture: the grant signal is idempotent per key, audited
		emit(s, k)
	}
}
