// Package nilflow is a golden-file fixture for the nilflow analyzer.
package nilflow

// Step is a transported payload; lookups return nil on a miss.
type Step struct {
	Size int64
	Data []byte
}

type cache struct{ m map[int64]*Step }

// find returns nil on a miss — the nilable source. The guarded comma-ok
// inside is NOT itself a nilable source (ok is bound and tested).
func (c *cache) find(k int64) *Step {
	if s, ok := c.m[k]; ok {
		return s
	}
	return nil
}

// consume dereferences its parameter without a guard, so its summary
// marks the parameter.
func consume(s *Step) int64 { return s.Size }

// newCount returns nil when disabled.
func newCount(on bool) *int64 {
	if !on {
		return nil
	}
	v := int64(0)
	return &v
}

// good guards before the dereference.
func good(c *cache) int64 {
	s := c.find(1)
	if s == nil {
		return 0
	}
	return s.Size
}

// goodNe guards with the positive form on the dereferencing branch.
func goodNe(c *cache) int64 {
	s := c.find(1)
	if s != nil {
		return s.Size
	}
	return 0
}

// bad dereferences the unchecked result.
func bad(c *cache) int64 {
	s := c.find(1)
	return s.Size // want "may be nil"
}

// badStar dereferences a possibly-nil pointer with *.
func badStar(on bool) int64 {
	n := newCount(on)
	return *n // want "may be nil"
}

// badCall passes the unchecked value to an unguarded dereferencer.
func badCall(c *cache) int64 {
	s := c.find(2)
	return consume(s) // want "dereferences the parameter unguarded"
}

// audited: an invariant the analysis cannot see (the key is always
// seeded at construction); the audit records why.
func audited(c *cache) int64 {
	s := c.find(3)
	//iocheck:allow nilflow fixture: key 3 is seeded at construction, audited
	return s.Size
}
