// Package nilrecv is a golden-file fixture for the nilrecv analyzer.
package nilrecv

// Sched is the fixture's stand-in for fault.Schedule: nil means disabled.
//
// iocheck:nilsafe
type Sched struct {
	n    int
	down map[int]bool
}

// Guarded opens with the canonical guard.
func (s *Sched) Guarded() int {
	if s == nil {
		return 0
	}
	return s.n
}

// ShortCircuit guards inside a compound condition; the short-circuit makes
// the map read safe.
func (s *Sched) ShortCircuit(k int) bool {
	if s == nil || s.down[k] {
		return false
	}
	return true
}

// Delegates touches the receiver only through a guarded method.
func (s *Sched) Delegates() bool { return s.Guarded() > 0 }

// Anonymous cannot dereference a receiver it never names.
func (*Sched) Anonymous() int { return 7 }

func (s *Sched) Unguarded() int { // want "does not guard its nil receiver"
	return s.n
}

func (s *Sched) LateGuard(k int) bool { // want "does not guard its nil receiver"
	v := s.down[k] // dereference happens before the check below
	if s == nil {
		return false
	}
	return v
}

func (s Sched) ByValue() int { // want "value receiver"
	return s.n
}

// Plain is unmarked: nothing here is checked.
type Plain struct{ n int }

func (p *Plain) Whatever() int { return p.n }

// Audit demonstrates suppression of an audited violation.
//
// iocheck:nilsafe
type Audit struct{ n int }

//iocheck:allow nilrecv fixture demonstrating an audited exception
func (a *Audit) Known() int { return a.n }
