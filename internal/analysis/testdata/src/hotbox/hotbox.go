// Package hotbox is a golden-file fixture for the hotbox analyzer:
// interface boxing, capturing closures, and method values inside
// heat-propagated hot functions.
package hotbox

type sink interface{ accept(v any) }

type conn struct{ vals []any }

func (c *conn) accept(v any) { c.vals = append(c.vals, v) }

type msg struct{ seq int64 }

// box passes a concrete struct where an interface parameter is
// expected: a copy is heap-allocated on every call.
//
//iocheck:hot
func box(c *conn, m msg) {
	c.accept(m) // want "interface boxing of"
}

// noBoxPointer: a pointer is stored in the interface word directly.
//
//iocheck:hot
func noBoxPointer(c *conn, m *msg) {
	c.accept(m)
}

// noBoxNil / noBoxConst: nil and constants are skipped.
//
//iocheck:hot
func noBoxNil(c *conn) {
	c.accept(nil)
	c.accept(3)
}

type engine struct{ cbs []func() }

func (e *engine) after(f func()) { e.cbs = append(e.cbs, f) }

// arm allocates a closure record per call: the literal captures n.
//
//iocheck:hot
func arm(e *engine, n *int) {
	e.after(func() { *n++ }) // want "closure (captures 1 variable)"
}

// armStatic's literal captures nothing — a static value, no allocation.
//
//iocheck:hot
func armStatic(e *engine) {
	e.after(func() {})
}

type proc struct{ t int64 }

func (p *proc) unpark() { p.t++ }

// wake allocates a bound-method closure for p.unpark on every call.
//
//iocheck:hot
func wake(e *engine, p *proc) {
	e.after(p.unpark) // want "method value p.unpark"
}

// guarded exercises cold-pruning: the error branch's closure is
// once-per-failure.
//
//iocheck:hot
func guarded(e *engine, p *proc, err error) {
	if err != nil {
		e.after(p.unpark) // no finding: cold error branch
	}
}

// timer is the audited suppression case.
//
//iocheck:hot
func timer(e *engine, fired *bool) {
	//iocheck:allow hotbox fixture: timer closures arm only on the blocking path, audited
	e.after(func() { *fired = true })
}
