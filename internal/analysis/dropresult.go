package analysis

import (
	"go/ast"
	"go/types"
)

// DropResult flags statements that discard the boolean result of a
// datatap Writer's Write or WriteTraced. That bool IS the delivery
// contract: false means the transport refused the step — saturation or a
// downed reader in best-effort mode, a writer-crash rejection in
// at-least-once mode — and the step is gone unless the caller reacts.
// PR 6's delivery oracle catches such losses at chaos-test time; this
// rule catches the droppable call sites at lint time, before a schedule
// ever has to expose them.
//
// The rule matches semantically, not by import path, so fixtures and
// future packages are covered alike: a method named Write or WriteTraced
// whose receiver's named type is Writer and whose only result is a bool.
// io.Writer-style `Write([]byte) (int, error)` methods and same-named
// methods on other types never match. Both bare call statements and
// explicit blank-assigns (`_ = w.Write(...)`) are flagged — a deliberate
// drop (e.g. a best-effort observer tap) must carry an //iocheck:allow
// audit comment instead, so the decision stays visible.
var DropResult = &Analyzer{
	Name: "dropresult",
	Doc:  "the boolean result of a datatap Writer.Write/WriteTraced must be checked; dropping it silently loses a step",
	Run:  runDropResult,
}

func runDropResult(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 || !allBlank(st.Lhs) {
					return true
				}
				call, _ = st.Rhs[0].(*ast.CallExpr)
			}
			if call == nil {
				return true
			}
			if name := droppedWriteCall(pass, call); name != "" {
				pass.Reportf(call.Pos(),
					"result of Writer.%s dropped: false means the transport refused the step and it is lost unless handled",
					name)
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// droppedWriteCall reports the method name if call is a Writer.Write or
// Writer.WriteTraced method call returning a single bool, else "".
func droppedWriteCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return "" // package-qualified call or conversion, not a method
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || (fn.Name() != "Write" && fn.Name() != "WriteTraced") {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || sig.Recv() == nil {
		return ""
	}
	if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Writer" {
		return ""
	}
	return fn.Name()
}
