package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRoundflowCatchesFenceStrip is the chaos cross-check for the serve
// leg: the fencestrip fixture is a distilled copy of the container
// manager's serve loop, clean as written. The test then strips the epoch
// fence guard — the exact block the split-brain fix added — and asserts
// roundflow reports the unfenced dispatch at the guard's own line, i.e.
// the rule would have caught the bug the chaos suite originally found.
func TestRoundflowCatchesFenceStrip(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "fencestrip", "fencestrip.go")
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}

	runRoundflow := func(dir string) []Diagnostic {
		pkg, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		runnable := &Analyzer{Name: RoundFlow.Name, Run: RoundFlow.Run}
		return Unsuppressed(Run([]*Package{pkg}, []*Analyzer{runnable}))
	}

	// Baseline: the guarded loop is clean.
	if diags := runRoundflow(filepath.Dir(fixture)); len(diags) != 0 {
		t.Fatalf("guarded fixture should be clean, got: %v", diags)
	}

	// Locate the fence guard and strip its whole block by brace count.
	lines := strings.Split(string(src), "\n")
	guardLine := -1 // 1-based
	for i, l := range lines {
		if strings.Contains(l, "reqEpoch(ev.Data); fenced") {
			guardLine = i + 1
			break
		}
	}
	if guardLine < 0 {
		t.Fatal("fence guard not found in fixture")
	}
	depth, end := 0, -1
	for i := guardLine - 1; i < len(lines); i++ {
		depth += strings.Count(lines[i], "{") - strings.Count(lines[i], "}")
		if depth == 0 {
			end = i
			break
		}
	}
	if end < 0 {
		t.Fatal("unbalanced fence guard block")
	}
	stripped := append(append([]string{}, lines[:guardLine-1]...), lines[end+1:]...)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fencestrip.go"),
		[]byte(strings.Join(stripped, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runRoundflow(dir)
	if len(diags) != 1 {
		t.Fatalf("stripped fixture: got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "epoch fence-check") {
		t.Errorf("diagnostic is not the fence obligation: %s", d)
	}
	// The dispatch shifts up into the stripped block: the report lands on
	// the exact line the guard occupied.
	if d.Pos.Line != guardLine {
		t.Errorf("fence finding at line %d, want the stripped guard's line %d", d.Pos.Line, guardLine)
	}
}
