package analysis

import (
	"go/ast"
	"testing"
)

// assignedNames is a toy may-analysis: the fact is the set of variable
// names assigned so far. It exercises Transfer, Join (union), and Refine
// bookkeeping in the forward solver.
type assignedNames struct {
	refined map[string][]bool // cond ident -> branches Refine saw
}

type nameSet map[string]bool

func (p *assignedNames) Entry() Fact { return nameSet{} }

func (p *assignedNames) Transfer(n ast.Node, f Fact) Fact {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return f
	}
	out := make(nameSet, len(f.(nameSet))+1)
	for k := range f.(nameSet) {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

func (p *assignedNames) Refine(cond ast.Expr, branch bool, f Fact) Fact {
	if id, ok := cond.(*ast.Ident); ok && p.refined != nil {
		p.refined[id.Name] = append(p.refined[id.Name], branch)
	}
	return f
}

func (p *assignedNames) Join(a, b Fact) Fact {
	out := make(nameSet)
	for k := range a.(nameSet) {
		out[k] = true
	}
	for k := range b.(nameSet) {
		out[k] = true
	}
	return out
}

func (p *assignedNames) Equal(a, b Fact) bool {
	fa, fb := a.(nameSet), b.(nameSet)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

func TestForwardSolverJoinsBranches(t *testing.T) {
	cfg := buildTestCFG(t, `
	x := 0
	if a {
		y := 1
		_ = y
	} else {
		z := 2
		_ = z
	}
	return x`)
	prob := &assignedNames{refined: map[string][]bool{}}
	in := Forward(cfg, prob)
	exit := in[cfg.Exit.Index]
	if exit == nil {
		t.Fatal("exit block unreachable in solver")
	}
	got := exit.(nameSet)
	for _, want := range []string{"x", "y", "z"} {
		if !got[want] {
			t.Errorf("exit fact missing %q (may-join over branches): %v", want, got)
		}
	}
	saw := map[bool]bool{}
	for _, b := range prob.refined["a"] {
		saw[b] = true
	}
	if !saw[true] || !saw[false] {
		t.Errorf("Refine should see both branches of cond a, got %v", prob.refined["a"])
	}
}

func TestForwardSolverLoopTerminates(t *testing.T) {
	cfg := buildTestCFG(t, `
	n := 0
	for i := 0; i < 3; i++ {
		n = n + 1
	}
	return n`)
	in := Forward(cfg, &assignedNames{})
	exit := in[cfg.Exit.Index]
	if exit == nil {
		t.Fatal("exit unreachable")
	}
	if got := exit.(nameSet); !got["n"] || !got["i"] {
		t.Errorf("loop facts missing, got %v", got)
	}
}

func TestBackwardSolverReachesEntry(t *testing.T) {
	cfg := buildTestCFG(t, `
	if a {
		return 1
	}
	return 2`)
	out := Backward(cfg, &assignedNames{})
	if out[cfg.Entry.Index] == nil {
		t.Fatal("backward solve should propagate a fact to the entry block")
	}
}
