package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RoundTerm enforces the termination half of the round-lifecycle
// contract: every issued round reaches a terminal state — completed,
// fenced, or timed out — on all paths. Concretely, once a round-path Req
// leaves the issuer (the same send detection as roundflow's issue leg),
// every path to function exit must pass a terminal action: a span/round
// .End() call (the completed/timeout/fenced paths all funnel through
// one) or a callee carrying the Term summary (markSuspect, depose, …).
// A path that returns in an error branch with the round still open is
// exactly the "dropped round" bug class: the caller waits out its full
// deadline for a response nobody will send, and the flight recorder
// loses the round's outcome.
//
// This is a forward MAY analysis (a round open on any incoming path is
// open after the merge), checked at the Exit block — after the Exit
// block's nodes, which include the function's deferred statements, so
// the `defer sp.End()` idiom terminates every path at once.
//
// Approximation: a terminal action clears every open round in the
// function, not just the one it belongs to — the obligation is
// "some terminal action on every path after a send", which is the
// convention the GM call loop follows (one span per attempt, ended
// before the next attempt or the final return).
var RoundTerm = &Analyzer{
	Name: "roundterm",
	Doc: "every issued round-path Req must reach a terminal state (completed, fenced, or " +
		"timed out) on all paths to exit; no round may be dropped in an error branch",
	Applies: internalPkg,
	Run:     runRoundTerm,
}

func runRoundTerm(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	pass.Prog.ensureRounds()
	for _, n := range pass.Prog.nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		checkRoundTerm(pass, n)
	}
}

func checkRoundTerm(pass *Pass, n *FuncNode) {
	if !tracksRounds(pass, n) {
		return
	}
	prob := &roundTermProblem{pass: pass, fn: n}
	cfg := BuildCFG(n.Decl)
	facts := Forward(cfg, prob)
	f := facts[cfg.Exit.Index]
	if f == nil {
		return // no path reaches exit (an event-pump loop)
	}
	for _, node := range cfg.Exit.Nodes {
		f = prob.Transfer(node, f)
	}
	final := f.(rtFact)
	var open []token.Pos
	for pos := range final.open {
		open = append(open, pos)
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
	for _, pos := range open {
		pass.Reportf(pos,
			"issued round may be dropped: no terminal state (completed, fenced, or timed out) on some path from this send to exit; call End() or a terminating helper in every branch")
	}
}

// rtFact: tracked Req values and Event carriers (as in roundflow) plus
// the positions of sends whose rounds are still open.
type rtFact struct {
	reqs map[types.Object]bool
	evs  map[types.Object]bool
	open map[token.Pos]bool
}

type roundTermProblem struct {
	pass *Pass
	fn   *FuncNode
}

func (p *roundTermProblem) Entry() Fact                            { return rtFact{} }
func (p *roundTermProblem) Refine(_ ast.Expr, _ bool, f Fact) Fact { return f }

func (p *roundTermProblem) Join(a, b Fact) Fact {
	fa, fb := a.(rtFact), b.(rtFact)
	return rtFact{
		reqs: unionObjs(fa.reqs, fb.reqs),
		evs:  unionObjs(fa.evs, fb.evs),
		open: unionPos(fa.open, fb.open),
	}
}

func (p *roundTermProblem) Equal(a, b Fact) bool {
	fa, fb := a.(rtFact), b.(rtFact)
	return equalObjs(fa.reqs, fb.reqs) && equalObjs(fa.evs, fb.evs) && equalPos(fa.open, fb.open)
}

func unionPos(a, b map[token.Pos]bool) map[token.Pos]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[token.Pos]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalPos(a, b map[token.Pos]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (p *roundTermProblem) Transfer(n ast.Node, f Fact) Fact {
	fact := f.(rtFact)
	out := fact
	info := p.pass.Pkg.Info
	WalkCFGNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			// Right-hand sides first (sends/terminations inside), then
			// the bindings.
			for _, rhs := range m.Rhs {
				out = p.transferExpr(rhs, out)
			}
			for i, lhs := range m.Lhs {
				obj := defOrUseObj(info, lhs)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if i < len(m.Rhs) {
					rhs = m.Rhs[i]
				}
				if rhs != nil {
					if lit := compositeOf(rhs); lit != nil {
						if roundKindOfExpr(info, lit) == roundReqMsg {
							out.reqs = addObj(out.reqs, obj)
							continue
						}
						if isEventLit(info, lit) && litWrapsTrackedReq(info, lit, out.reqs) {
							out.evs = addObj(out.evs, obj)
							continue
						}
					}
				}
				out.reqs = dropObj(out.reqs, obj)
				out.evs = dropObj(out.evs, obj)
			}
			return false
		case *ast.CallExpr:
			out = p.transferCall(m, out)
			return false
		}
		return true
	})
	return out
}

func (p *roundTermProblem) transferExpr(e ast.Expr, fact rtFact) rtFact {
	out := fact
	WalkCFGNode(e, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			out = p.transferCall(call, out)
			return false
		}
		return true
	})
	return out
}

func (p *roundTermProblem) transferCall(call *ast.CallExpr, fact rtFact) rtFact {
	out := fact
	info := p.pass.Pkg.Info
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Ident:
		default:
			out = p.transferExpr(a, out)
		}
	}
	out = p.transferExpr(call.Fun, out)

	callees := p.pass.Prog.Callees(p.pass.Pkg, call)
	// Tracking and sends, mirroring roundflow's issue leg.
	for j, a := range call.Args {
		obj := useObj(info, a)
		if obj == nil {
			continue
		}
		stamps, sinks := false, false
		for _, callee := range callees {
			if j < len(callee.Round.StampsReq) && callee.Round.StampsReq[j] {
				stamps = true
			}
			if j < len(callee.SinksEventData) && callee.SinksEventData[j] {
				sinks = true
			}
		}
		if stamps {
			out.reqs = addObj(out.reqs, obj)
		}
		if sinks && (out.reqs[obj] || out.evs[obj]) {
			out.open = addPos(out.open, a.Pos())
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && roundSendMethods[sel.Sel.Name] && !isPkgSelector(info, sel) {
		for _, a := range call.Args {
			if obj := useObj(info, a); obj != nil && (out.reqs[obj] || out.evs[obj]) {
				out.open = addPos(out.open, a.Pos())
				continue
			}
			if lit := compositeOf(a); lit != nil && isEventLit(info, lit) && litWrapsTrackedReq(info, lit, out.reqs) {
				out.open = addPos(out.open, a.Pos())
			}
		}
	}

	// Terminal actions close every open round: a direct .End() call or a
	// callee with the Term summary.
	terminal := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" && !isPkgSelector(info, sel) {
		terminal = true
	}
	for _, callee := range callees {
		if callee.Round.Term.Has {
			terminal = true
		}
	}
	if terminal && len(out.open) > 0 {
		out.open = nil
	}
	return out
}

func addPos(m map[token.Pos]bool, pos token.Pos) map[token.Pos]bool {
	if m[pos] {
		return m
	}
	out := make(map[token.Pos]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	out[pos] = true
	return out
}

// litWrapsTrackedReq reports whether an Event literal's Data field
// carries a tracked Req value or composes one inline.
func litWrapsTrackedReq(info *types.Info, lit *ast.CompositeLit, reqs map[types.Object]bool) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Data" {
			continue
		}
		if obj := useObj(info, kv.Value); obj != nil && reqs[obj] {
			return true
		}
		if inner := compositeOf(kv.Value); inner != nil && roundKindOfExpr(info, inner) == roundReqMsg {
			return true
		}
	}
	return false
}
