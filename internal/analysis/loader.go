package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (non-test files only — the
// determinism rules target production simulator code; tests are free to
// use wall clocks and global randomness).
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// ModuleRoot ascends from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// pkgSource is a package's parsed-but-not-yet-checked state.
type pkgSource struct {
	pkgPath string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root. Standard-library imports are resolved by the
// stdlib source importer (network-free, GOROOT source only); module
// packages are checked in dependency order and served from memory, so the
// loader has no dependency beyond the standard library.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcs := make(map[string]*pkgSource)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		src, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if src == nil {
			return nil // no non-test Go files here
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src.pkgPath = modPath
		if rel != "." {
			src.pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, f := range src.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					src.imports = append(src.imports, p)
				}
			}
		}
		srcs[src.pkgPath] = src
		return nil
	})
	if err != nil {
		return nil, err
	}
	order, err := topoSort(srcs)
	if err != nil {
		return nil, err
	}
	checked := make(map[string]*Package)
	imp := &moduleImporter{
		module: checked,
		std:    importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		pkg, err := check(fset, srcs[path], imp)
		if err != nil {
			return nil, err
		}
		checked[path] = pkg
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir (used by the
// golden-file tests, whose fixture packages import only the stdlib).
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	src, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	src.pkgPath = filepath.Base(dir)
	imp := &moduleImporter{
		module: map[string]*Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}
	return check(fset, src, imp)
}

// parseDir parses the non-test Go files of dir (nil if there are none).
func parseDir(fset *token.FileSet, dir string) (*pkgSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	src := &pkgSource{dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		src.files = append(src.files, f)
	}
	return src, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(srcs map[string]*pkgSource) ([]string, error) {
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(srcs))
	var order []string
	var visit func(p string, chain []string) error
	visit = func(p string, chain []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(chain, p), " -> "))
		}
		state[p] = visiting
		src := srcs[p]
		deps := append([]string(nil), src.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := srcs[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which is not in the module", p, dep)
			}
			if err := visit(dep, append(chain, p)); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module packages from memory and everything else
// from the stdlib source importer.
type moduleImporter struct {
	module map[string]*Package
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.module[path]; ok {
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// check type-checks one parsed package.
func check(fset *token.FileSet, src *pkgSource, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(src.pkgPath, fset, src.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", src.pkgPath, typeErrs[0])
	}
	return &Package{
		PkgPath: src.pkgPath,
		Dir:     src.dir,
		Fset:    fset,
		Files:   src.files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
