package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load each analyzer's fixture package from
// testdata/src/<rule>/ and diff its diagnostics against the fixtures'
// trailing `// want "substring"` comments: every expectation must be
// matched by a diagnostic on its line, every unsuppressed diagnostic must
// be expected, and suppressed diagnostics must stay invisible (which is
// how the //iocheck:allow fixtures are verified).

var quotedRE = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	substr  string
	matched bool
}

func TestGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			// Strip the Applies filter: fixture packages are not under
			// internal/, but the rules must behave as if they were.
			runnable := &Analyzer{Name: a.Name, Doc: a.Doc, Run: a.Run}
			diags := Run([]*Package{pkg}, []*Analyzer{runnable})

			wants := collectWants(pkg)
			for _, d := range diags {
				if d.Suppressed {
					continue
				}
				if !matchWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, exps := range wants {
				for _, e := range exps {
					if !e.matched {
						t.Errorf("%s: expected diagnostic matching %q, got none", key, e.substr)
					}
				}
			}
		})
	}
}

// collectWants parses `// want "..."` comments into line-keyed
// expectations.
func collectWants(pkg *Package) map[string][]*expectation {
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range quotedRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					wants[key] = append(wants[key], &expectation{substr: m[1]})
				}
			}
		}
	}
	return wants
}

func matchWant(wants map[string][]*expectation, d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	for _, e := range wants[key] {
		if !e.matched && strings.Contains(d.Message, e.substr) {
			e.matched = true
			return true
		}
	}
	return false
}

// TestSuppressionRecordsReason pins the audit-trail behaviour: a
// suppressed diagnostic carries the allow comment's reason.
func TestSuppressionRecordsReason(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "simtime"))
	if err != nil {
		t.Fatal(err)
	}
	runnable := &Analyzer{Name: SimTime.Name, Run: SimTime.Run}
	diags := Run([]*Package{pkg}, []*Analyzer{runnable})
	found := false
	for _, d := range diags {
		if d.Suppressed {
			found = true
			if !strings.Contains(d.SuppressReason, "audited exception") {
				t.Errorf("suppression reason = %q, want the comment's reason", d.SuppressReason)
			}
		}
	}
	if !found {
		t.Fatal("expected at least one suppressed diagnostic in the simtime fixture")
	}
}

// TestMalformedAllowIsADiagnostic pins that an allow comment without a
// reason cannot silently disable a rule.
func TestMalformedAllowIsADiagnostic(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "badallow"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Unsuppressed(Run([]*Package{pkg}, nil))
	if len(diags) != 1 || diags[0].Rule != "allow" {
		t.Fatalf("diags = %v, want exactly one [allow] finding", diags)
	}
}

// TestAnalyzerDocs keeps the suite self-describing for `make lint` users.
func TestAnalyzerDocs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
