package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VTBlock enforces the kernel's one scheduling rule interprocedurally: a
// function that can reach the virtual-time blocking primitive
// ((*Proc).park — everything Sleep, Join, Event.Wait, Resource.Acquire
// and Queue.Get funnel into) must not be called from a context that runs
// on the engine goroutine or whose execution order is nondeterministic:
//
//   - engine callbacks (function literals or method values handed to
//     Engine.At/After/schedule or Schedule.OnCrash) — parking there
//     deadlocks the clock, because the goroutine that would advance
//     virtual time is the one that just parked;
//   - functions marked `//iocheck:nonblocking` (the GM dispatch switch
//     and the deposed pump's serve path declare themselves);
//   - map-range bodies — if an iteration can park, wake order follows
//     Go's randomized map order and replay determinism is gone.
//
// Reachability comes from the CHA call graph, so the witness chain in
// each message names the exact path to the primitive. Calls through
// unresolvable function values are assumed non-blocking (documented
// approximation); `//iocheck:blocks` on a declaration seeds the summary
// where the graph cannot see.
var VTBlock = &Analyzer{
	Name:    "vtblock",
	Doc:     "functions reaching a virtual-time block must not run in engine callbacks, iocheck:nonblocking functions, or map-range bodies",
	Applies: internalPkg,
	Run:     runVTBlock,
}

func runVTBlock(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if Nonblocking(fd) {
				blockingCalls(pass, fd.Body, reported,
					"%s may block virtual time (%s), but "+fd.Name.Name+" is marked iocheck:nonblocking")
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCallbackArgs(pass, n, reported)
				case *ast.RangeStmt:
					if isMapRangeStmt(pass.Pkg.Info, n) {
						blockingCalls(pass, n.Body, reported,
							"%s may block virtual time (%s) inside map iteration; wake order would follow the randomized map order")
					}
				}
				return true
			})
		}
	}
}

// checkCallbackArgs inspects one call site for engine-callback arguments:
// literals are scanned for blocking calls, function values are resolved
// through the graph.
func checkCallbackArgs(pass *Pass, call *ast.CallExpr, reported map[token.Pos]bool) {
	if _, callback := deferredCallKind(pass.Pkg, call); !callback {
		return
	}
	for _, a := range call.Args {
		if lit, ok := a.(*ast.FuncLit); ok {
			blockingCalls(pass, lit.Body, reported,
				"%s may block virtual time (%s), but this engine callback runs on the engine goroutine and must not park")
			continue
		}
		if !isFuncTyped(pass.Pkg.Info, a) {
			continue
		}
		fn := pass.Prog.FuncValue(pass.Pkg, a)
		if fn == nil || !fn.Blocks || reported[a.Pos()] {
			continue
		}
		reported[a.Pos()] = true
		pass.Reportf(a.Pos(),
			"%s may block virtual time (%s), but is registered as an engine callback and must not park",
			fn.String(), fn.BlockChain())
	}
}

// blockingCalls reports every call in body (own synchronous code only —
// launcher and callback literals are their own contexts) whose callee may
// block. format receives the callee name and its witness chain.
func blockingCalls(pass *Pass, body ast.Node, reported map[token.Pos]bool, format string) {
	walkOwnCode(pass.Pkg, body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range pass.Prog.Callees(pass.Pkg, call) {
			if !callee.Blocks {
				continue
			}
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), format, callee.String(), callee.BlockChain())
			}
			break
		}
		return true
	})
}

func isMapRangeStmt(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isFuncTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isFunc := tv.Type.Underlying().(*types.Signature)
	return isFunc
}
