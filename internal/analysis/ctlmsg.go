package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CtlMsg enforces exhaustiveness of the control-protocol dispatch in
// internal/core. A protocol round message is a struct whose name ends in
// "Req" or "Resp" and that carries a `Seq int64` field (the dedupe key).
// Every such request type must appear in three switches, or a new message
// silently bypasses the crash-tolerance machinery PR 1 built:
//
//   - reqSeq — the container manager's dedupe cache key extractor; a
//     missing case means a retried round RE-EXECUTES a mutating request;
//   - msgTypeFor — the global manager's send path; a missing case submits
//     the request as "ctl.unknown" and breaks the overlay routing split;
//   - managerLoop — the serving switch; a missing case kills the container
//     with an unknown-control failure at runtime instead of compile time.
//
// Every response type must appear in respSeq, or purgeStale cannot drop the
// duplicate responses a retried round produces. Messages that deliberately
// travel outside the synchronous round path (e.g. SpareReq, served from the
// GM pump) carry an //iocheck:allow ctlmsg audit comment on their
// declaration.
//
// Additionally, every message that IS dispatched on the round path must
// carry an `Epoch int64` field: the split-brain fence works by stamping
// the issuing manager's epoch on each round and letting containers refuse
// lower epochs, so an epoch-less round message is an unfenceable hole —
// a deposed manager could keep mutating state through it. The rule is
// scoped to switch members so pump-path messages stay exempt.
//
// Shard round messages — structs carrying BOTH `Seq int64` and `Shard int`
// (the steal/beat/relay family of the sharded control plane) — are a
// separate protocol with its own exhaustiveness contract: each must be
// registered in the shardMsgSeq switch, handled by a dispatch arm
// (dispatch or shardDispatch), and carry `Epoch int64` so steal fencing
// can drop stale instances. They are EXEMPT from the container-round
// rules above even when their name ends in Req/Resp: a StealReq is
// pump-to-pump traffic between managers, never served by managerLoop.
//
// Subscriber round messages — structs carrying `Seq int64` and `SubID
// string` (the SubNotice/SubResume/SubReplay family of the streaming
// fan-out's reconnect protocol) — form a third family layered on top:
// each must be registered in the subMsgSeq switch, reach a dispatch arm
// (dispatch, managerLoop, or respSeq — notices are pump messages, the
// Req/Resp pairs full container rounds), and carry `Epoch int64` so a
// deposed manager cannot revive cursors. The Req/Resp members also
// satisfy the container-round rules above; the family check is what makes
// a pump-only notice like SubNotice, which no Req/Resp rule ever sees,
// impossible to leave half-wired.
var CtlMsg = &Analyzer{
	Name: "ctlmsg",
	Doc:  "protocol Req/Resp types must be dispatched in reqSeq/msgTypeFor/managerLoop/respSeq and carry the fencing epoch",
	Applies: func(pkg *Package) bool {
		// The rule binds wherever the dispatch functions live; packages
		// without a reqSeq have no protocol to be exhaustive about.
		return pkg.Types.Scope().Lookup("reqSeq") != nil
	},
	Run: runCtlMsg,
}

func runCtlMsg(pass *Pass) {
	reqs, resps := protocolMessageTypes(pass)
	shardMsgs := shardRoundMessageTypes(pass)
	subMsgs := subRoundMessageTypes(pass)
	if len(reqs) == 0 && len(resps) == 0 && len(shardMsgs) == 0 && len(subMsgs) == 0 {
		return
	}
	checkShardMessages(pass, shardMsgs)
	checkSubMessages(pass, subMsgs)
	inReqSeq := switchCaseTypes(pass, "reqSeq")
	inMsgTypeFor := switchCaseTypes(pass, "msgTypeFor")
	inManagerLoop, haveManagerLoop := switchCaseTypesOpt(pass, "managerLoop")
	inRespSeq := switchCaseTypes(pass, "respSeq")

	for _, req := range reqs {
		name := req.Name()
		if !inReqSeq[req] {
			pass.Reportf(req.Pos(),
				"protocol request %s is missing from the reqSeq dedupe switch: a retried round would re-execute it",
				name)
		}
		if !inMsgTypeFor[req] {
			pass.Reportf(req.Pos(),
				"protocol request %s is missing from the msgTypeFor switch: it would be submitted as \"ctl.unknown\"",
				name)
		}
		if haveManagerLoop && !inManagerLoop[req] {
			pass.Reportf(req.Pos(),
				"protocol request %s is not served by the managerLoop switch: containers would die on an unknown control message",
				name)
		}
	}
	for _, resp := range resps {
		if !inRespSeq[resp] {
			pass.Reportf(resp.Pos(),
				"protocol response %s is missing from the respSeq switch: stale duplicates of it can never be purged",
				resp.Name())
		}
	}

	// Epoch fencing: any message the round path dispatches must carry the
	// issuing manager's epoch, or a deposed manager can slip rounds (and
	// read replies) past the fence through that one type.
	for _, req := range reqs {
		if inReqSeq[req] && !hasEpochField(structOf(req)) {
			pass.Reportf(req.Pos(),
				"protocol request %s carries no Epoch int64 field: the fence cannot reject its stale rounds",
				req.Name())
		}
	}
	for _, resp := range resps {
		if inRespSeq[resp] && !hasEpochField(structOf(resp)) {
			pass.Reportf(resp.Pos(),
				"protocol response %s carries no Epoch int64 field: a deposed manager could mistake it for a current-epoch reply",
				resp.Name())
		}
	}
}

// checkShardMessages enforces the shard-round contract: registry entry,
// dispatch arm, fencing epoch.
func checkShardMessages(pass *Pass, shardMsgs []*types.TypeName) {
	if len(shardMsgs) == 0 {
		return
	}
	inShardSeq := switchCaseTypes(pass, "shardMsgSeq")
	inDispatch := switchCaseTypes(pass, "dispatch")
	inShardDispatch := switchCaseTypes(pass, "shardDispatch")
	for _, m := range shardMsgs {
		if !inShardSeq[m] {
			pass.Reportf(m.Pos(),
				"shard round message %s is missing from the shardMsgSeq registry switch",
				m.Name())
		}
		if !inDispatch[m] && !inShardDispatch[m] {
			pass.Reportf(m.Pos(),
				"shard round message %s is not handled by any shard dispatch switch (dispatch/shardDispatch): it would be silently dropped",
				m.Name())
		}
		if !hasEpochField(structOf(m)) {
			pass.Reportf(m.Pos(),
				"shard round message %s carries no Epoch int64 field: steal fencing cannot drop its stale instances",
				m.Name())
		}
	}
}

// checkSubMessages enforces the subscriber-round contract: registry
// entry, a dispatch arm somewhere on the round path, fencing epoch.
func checkSubMessages(pass *Pass, subMsgs []*types.TypeName) {
	if len(subMsgs) == 0 {
		return
	}
	inSubSeq := switchCaseTypes(pass, "subMsgSeq")
	inDispatch := switchCaseTypes(pass, "dispatch")
	inManagerLoop := switchCaseTypes(pass, "managerLoop")
	inRespSeq := switchCaseTypes(pass, "respSeq")
	for _, m := range subMsgs {
		if !inSubSeq[m] {
			pass.Reportf(m.Pos(),
				"subscriber round message %s is missing from the subMsgSeq registry switch",
				m.Name())
		}
		if !inDispatch[m] && !inManagerLoop[m] && !inRespSeq[m] {
			pass.Reportf(m.Pos(),
				"subscriber round message %s is not handled by any subscriber dispatch switch (dispatch/managerLoop/respSeq): it would be silently dropped",
				m.Name())
		}
		if !hasEpochField(structOf(m)) {
			pass.Reportf(m.Pos(),
				"subscriber round message %s carries no Epoch int64 field: the fence cannot reject a deposed manager's cursor mutations",
				m.Name())
		}
	}
}

func structOf(tn *types.TypeName) *types.Struct {
	st, _ := tn.Type().Underlying().(*types.Struct)
	return st
}

// protocolMessageTypes returns the package's round-message types — named
// structs ending in Req/Resp with a Seq int64 field — in declaration-name
// order.
func protocolMessageTypes(pass *Pass) (reqs, resps []*types.TypeName) {
	scope := pass.Pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || !hasSeqField(st) {
			continue
		}
		if hasShardField(st) {
			continue // shard round family: separate rules, see checkShardMessages
		}
		switch {
		case hasSuffix(name, "Req"):
			reqs = append(reqs, tn)
		case hasSuffix(name, "Resp"):
			resps = append(resps, tn)
		}
	}
	return reqs, resps
}

// shardRoundMessageTypes returns the package's shard-round message types —
// named structs with both Seq int64 and Shard int — in declaration-name
// order.
func shardRoundMessageTypes(pass *Pass) []*types.TypeName {
	scope := pass.Pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	var out []*types.TypeName
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || !hasSeqField(st) || !hasShardField(st) {
			continue
		}
		out = append(out, tn)
	}
	return out
}

// subRoundMessageTypes returns the package's subscriber round family —
// named structs with both Seq int64 and SubID string — in
// declaration-name order. Membership overlaps the container-round family
// for the Req/Resp members; both contracts apply.
func subRoundMessageTypes(pass *Pass) []*types.TypeName {
	scope := pass.Pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	var out []*types.TypeName
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || !hasSeqField(st) || !hasSubIDField(st) {
			continue
		}
		out = append(out, tn)
	}
	return out
}

func hasSuffix(s, suf string) bool {
	return len(s) > len(suf) && s[len(s)-len(suf):] == suf
}

func hasSeqField(st *types.Struct) bool   { return hasInt64Field(st, "Seq") }
func hasEpochField(st *types.Struct) bool { return hasInt64Field(st, "Epoch") }

// hasShardField reports a plain `Shard int` field (the shard-family tag).
func hasShardField(st *types.Struct) bool {
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Shard" {
			continue
		}
		if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Int {
			return true
		}
	}
	return false
}

// hasSubIDField reports a plain `SubID string` field (the subscriber-family
// tag).
func hasSubIDField(st *types.Struct) bool {
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "SubID" {
			continue
		}
		if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.String {
			return true
		}
	}
	return false
}

func hasInt64Field(st *types.Struct, name string) bool {
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Int64 {
			return true
		}
	}
	return false
}

// switchCaseTypes collects the named types mentioned (possibly behind a
// pointer) in the case clauses of every type switch inside the function or
// method called name. Missing functions yield an empty set, so each absence
// is reported per message type.
func switchCaseTypes(pass *Pass, name string) map[*types.TypeName]bool {
	set, _ := switchCaseTypesOpt(pass, name)
	return set
}

func switchCaseTypesOpt(pass *Pass, name string) (map[*types.TypeName]bool, bool) {
	out := make(map[*types.TypeName]bool)
	found := false
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if fd.Name.Name != name {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				for _, stmt := range ts.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if tn := namedTypeOf(pass, expr); tn != nil {
							out[tn] = true
						}
					}
				}
				return true
			})
		}
	}
	return out, found
}

// namedTypeOf resolves a case-clause type expression to its named type,
// unwrapping one pointer level (cases are written `case *IncreaseReq:`).
func namedTypeOf(pass *Pass, expr ast.Expr) *types.TypeName {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || !tv.IsType() {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
