package analysis

import "go/ast"

// Generic worklist solvers over the CFG. Facts are opaque to the solver;
// a FlowProblem supplies the lattice (Join/Equal), the per-node transfer
// function, and an optional branch refinement applied on
// condition-annotated edges (how nilflow learns from `if x == nil`).

// Fact is an abstract dataflow fact. Implementations must be immutable
// from the solver's point of view: Transfer/Refine return new facts.
type Fact interface{}

// FlowProblem defines one dataflow analysis over a CFG.
type FlowProblem interface {
	// Entry is the fact at function entry (forward) or exit (backward).
	Entry() Fact
	// Transfer applies one CFG node (statement or condition leaf).
	Transfer(n ast.Node, f Fact) Fact
	// Refine adjusts a fact along a conditional edge: cond evaluated to
	// branch. Return f unchanged when the condition teaches nothing.
	Refine(cond ast.Expr, branch bool, f Fact) Fact
	// Join merges facts at control-flow merges.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b Fact) bool
}

// Forward solves a forward problem and returns the fact at the entry of
// each block (indexed by Block.Index). The fact *after* a block is
// obtained by re-applying Transfer over its nodes.
func Forward(cfg *CFG, p FlowProblem) []Fact {
	in := make([]Fact, len(cfg.Blocks))
	in[cfg.Entry.Index] = p.Entry()
	work := []*Block{cfg.Entry}
	queued := make([]bool, len(cfg.Blocks))
	queued[cfg.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		f := in[b.Index]
		if f == nil {
			continue
		}
		for _, n := range b.Nodes {
			f = p.Transfer(n, f)
		}
		for _, e := range b.Succs {
			out := f
			if e.Cond != nil {
				out = p.Refine(e.Cond, e.Branch, out)
			}
			tgt := e.To.Index
			var merged Fact
			if in[tgt] == nil {
				merged = out
			} else {
				merged = p.Join(in[tgt], out)
			}
			if in[tgt] == nil || !p.Equal(in[tgt], merged) {
				in[tgt] = merged
				if !queued[tgt] {
					queued[tgt] = true
					work = append(work, e.To)
				}
			}
		}
	}
	return in
}

// Backward solves a backward problem and returns the fact at the *exit*
// of each block (the fact flowing out toward predecessors is obtained by
// applying Transfer over the block's nodes in reverse).
func Backward(cfg *CFG, p FlowProblem) []Fact {
	out := make([]Fact, len(cfg.Blocks))
	out[cfg.Exit.Index] = p.Entry()
	work := []*Block{cfg.Exit}
	queued := make([]bool, len(cfg.Blocks))
	queued[cfg.Exit.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		f := out[b.Index]
		if f == nil {
			continue
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			f = p.Transfer(b.Nodes[i], f)
		}
		for _, e := range b.Preds {
			g := f
			if e.Cond != nil {
				g = p.Refine(e.Cond, e.Branch, g)
			}
			src := e.From.Index
			var merged Fact
			if out[src] == nil {
				merged = g
			} else {
				merged = p.Join(out[src], g)
			}
			if out[src] == nil || !p.Equal(out[src], merged) {
				out[src] = merged
				if !queued[src] {
					queued[src] = true
					work = append(work, e.From)
				}
			}
		}
	}
	return out
}
