package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the intraprocedural half of the whole-program dataflow
// layer: a control-flow-graph builder over go/ast function bodies. The
// graph is statement-granular with conditions decomposed to their
// short-circuit leaves, so branch-sensitive analyses (nilflow's nil-check
// refinement, epochset's all-paths definite assignment) see exactly the
// edges the runtime takes. It stays zero-dependency like the rest of the
// framework: go/ast and go/token only.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists the function's defer statements in source order. Defer
	// statements appear inline at their registration position AND in the
	// Exit block's node list (in reverse registration order, matching the
	// runtime's LIFO execution). The inline copy is an over-approximation
	// of run-at-exit that is conservative for must-analyses; the Exit
	// copy is what lets forward analyses see `defer sp.End()` effects at
	// every return — without it a defer registered inside a loop is
	// invisible to the exit paths entirely.
	Defers []*ast.DeferStmt
}

// Block is a straight-line run of statements (and decomposed condition
// leaves) with no internal control transfer.
type Block struct {
	Index int
	// Nodes holds statements and condition expressions in execution order.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control transfer. When Cond is non-nil the edge is taken
// only when Cond evaluates to Branch — the hook branch-sensitive analyses
// refine facts on.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
}

// WalkCFGNode visits n like ast.Inspect but stays within the CFG node:
// it does not descend into a RangeStmt's body (those statements live in
// their own blocks) or into function literals (their bodies execute
// elsewhere, or are separate vtblock contexts).
func WalkCFGNode(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			WalkCFGNode(rs.Key, visit)
		}
		if rs.Value != nil {
			WalkCFGNode(rs.Value, visit)
		}
		WalkCFGNode(rs.X, visit)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !visit(m) {
			return false
		}
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

// cfgBuilder tracks the under-construction graph and the targets of
// break/continue/goto.
type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	breaks []loopCtx // innermost last
	labels map[string]*labelCtx
	gotos  []pendingGoto
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	label        string
	breakTo      *Block
	continueTo   *Block // nil for switch/select (continue skips them)
	isSwitchLike bool
}

type labelCtx struct {
	block *Block // target of goto LABEL
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of fn's body. fn must have a body.
func BuildCFG(fn *ast.FuncDecl) *CFG {
	return buildCFGFromBlock(fn.Body)
}

// BuildCFGLit constructs the CFG of a function literal's body.
func BuildCFGLit(lit *ast.FuncLit) *CFG {
	return buildCFGFromBlock(lit.Body)
}

func buildCFGFromBlock(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*labelCtx),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit, nil, false)
	for _, g := range b.gotos {
		if lc, ok := b.labels[g.label]; ok {
			b.edge(g.from, lc.block, nil, false)
		}
	}
	// Surface deferred statements at the exit, in LIFO order. Every
	// return edges into Exit, so a forward analysis observes the deferred
	// calls on each exit path even when the defer was registered inside a
	// loop or branch the path never revisits.
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, b.cfg.Defers[i])
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from→to unless from is nil (dead code after a terminator).
func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, branch bool) {
	if from == nil || to == nil {
		return
	}
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement; b.cur becomes nil after a terminator
// (return, branch, panic), making trailing dead code unreachable blocks.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code still gets blocks so its nodes exist in the
		// graph (golden fixtures may place findings there).
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit, nil, false)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.cfg.Exit, nil, false)
			b.cur = nil
		}
	default:
		// Assign, DeclStmt, IncDec, Send, Go, Empty, ...
		b.add(s)
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// cond decomposes a boolean expression into condition-leaf blocks with
// true/false edges to the given targets, handling &&, || and ! so each
// leaf comparison governs its own edge.
func (b *cfgBuilder) cond(e ast.Expr, trueTo, falseTo *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, trueTo, falseTo)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, falseTo, trueTo)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			right := b.newBlock()
			b.cond(x.X, right, falseTo)
			b.cur = right
			b.cond(x.Y, trueTo, falseTo)
			return
		case token.LOR:
			right := b.newBlock()
			b.cond(x.X, trueTo, right)
			b.cur = right
			b.cond(x.Y, trueTo, falseTo)
			return
		}
	}
	b.add(e)
	b.edge(b.cur, trueTo, e, true)
	b.edge(b.cur, falseTo, e, false)
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	thenB := b.newBlock()
	merge := b.newBlock()
	elseTarget := merge
	if s.Else != nil {
		elseTarget = b.newBlock()
	}
	b.cond(s.Cond, thenB, elseTarget)
	b.cur = thenB
	b.stmtList(s.Body.List)
	b.edge(b.cur, merge, nil, false)
	if s.Else != nil {
		b.cur = elseTarget
		b.stmt(s.Else)
		b.edge(b.cur, merge, nil, false)
	}
	b.cur = merge
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	exit := b.newBlock()
	b.edge(b.cur, head, nil, false)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, exit)
	} else {
		b.edge(b.cur, body, nil, false)
		b.cur = nil
	}
	b.breaks = append(b.breaks, loopCtx{label: label, breakTo: exit, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.edge(b.cur, post, nil, false)
	b.cur = post
	if s.Post != nil {
		b.add(s.Post)
	}
	b.edge(b.cur, head, nil, false)
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	b.edge(b.cur, head, nil, false)
	b.cur = head
	// The range statement itself lives in the head so analyses can see the
	// ranged expression (and the key/value bindings) once per iteration.
	b.add(s)
	b.edge(head, body, nil, false)
	b.edge(head, exit, nil, false)
	b.breaks = append(b.breaks, loopCtx{label: label, breakTo: exit, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.edge(b.cur, head, nil, false)
	b.cur = exit
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	exit := b.newBlock()
	b.breaks = append(b.breaks, loopCtx{label: label, breakTo: exit, isSwitchLike: true})
	b.caseClauses(head, exit, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	exit := b.newBlock()
	b.breaks = append(b.breaks, loopCtx{label: label, breakTo: exit, isSwitchLike: true})
	b.caseClauses(head, exit, s.Body.List, nil)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

// caseClauses wires each case body as its own block hanging off head, with
// an implicit break to exit and explicit fallthrough to the next body.
func (b *cfgBuilder) caseClauses(head, exit *Block, list []ast.Stmt, addCase func(*ast.CaseClause, *Block)) {
	type clause struct {
		cc  *ast.CaseClause
		blk *Block
	}
	var clauses []clause
	hasDefault := false
	for _, st := range list {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		if addCase != nil {
			addCase(cc, blk)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blk, nil, false)
		clauses = append(clauses, clause{cc, blk})
	}
	if !hasDefault {
		b.edge(head, exit, nil, false)
	}
	for i, cl := range clauses {
		b.cur = cl.blk
		fellThrough := false
		for _, st := range cl.cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauses) {
					b.edge(b.cur, clauses[i+1].blk, nil, false)
				}
				b.cur = nil
				fellThrough = true
				break
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.edge(b.cur, exit, nil, false)
		}
		b.cur = nil
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	exit := b.newBlock()
	b.breaks = append(b.breaks, loopCtx{label: label, breakTo: exit, isSwitchLike: true})
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edge(head, blk, nil, false)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, exit, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock()
	b.edge(b.cur, target, nil, false)
	b.cur = target
	b.labels[s.Label.Name] = &labelCtx{block: target}
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.breaks) - 1; i >= 0; i-- {
			ctx := b.breaks[i]
			if label == "" || ctx.label == label {
				b.edge(b.cur, ctx.breakTo, nil, false)
				b.cur = nil
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.breaks) - 1; i >= 0; i-- {
			ctx := b.breaks[i]
			if ctx.isSwitchLike {
				continue // continue skips switch/select
			}
			if label == "" || ctx.label == label {
				b.edge(b.cur, ctx.continueTo, nil, false)
				b.cur = nil
				return
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.cur = nil
		return
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray fallthrough terminates the block.
		b.cur = nil
		return
	}
	b.cur = nil
}
