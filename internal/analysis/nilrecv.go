package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NilRecv enforces the "nil means disabled" contract: a type whose doc
// comment carries the marker
//
//	// iocheck:nilsafe
//
// promises that every method is safe to call on a nil receiver (the fault
// package's *Schedule is the canonical case — a nil schedule means "no
// faults" and is consulted from every layer). Each method must therefore
// either open with a nil-receiver guard, or touch the receiver only to
// compare it with nil or to call other guarded methods on it. Value
// receivers are rejected outright: calling one through a nil pointer
// dereferences before the body runs.
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "methods of // iocheck:nilsafe types must guard the nil receiver",
	Run:  runNilRecv,
}

const nilsafeMarker = "iocheck:nilsafe"

func runNilRecv(pass *Pass) {
	nilsafe := collectNilsafeTypes(pass)
	if len(nilsafe) == 0 {
		return
	}
	// First pass: classify which methods open with a nil guard, so the
	// second pass can accept delegation to them.
	guarded := make(map[string]bool) // "Type.Method"
	var methods []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			typeName, recvName, ptr := receiverOf(fd)
			if typeName == "" || !nilsafe[typeName] {
				continue
			}
			methods = append(methods, fd)
			if !ptr {
				pass.Reportf(fd.Name.Pos(),
					"method %s of nilsafe type %s has a value receiver; calling it through a nil *%s panics before the body runs",
					fd.Name.Name, typeName, typeName)
				continue
			}
			if recvName == "" || opensWithNilGuard(pass, fd, recvName) {
				guarded[typeName+"."+fd.Name.Name] = true
			}
		}
	}
	for _, fd := range methods {
		typeName, recvName, ptr := receiverOf(fd)
		if !ptr || recvName == "" || guarded[typeName+"."+fd.Name.Name] {
			continue
		}
		if delegatesSafely(pass, fd, typeName, recvName, guarded) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"method %s of nilsafe type %s does not guard its nil receiver; open with `if %s == nil` or delegate to guarded methods only",
			fd.Name.Name, typeName, recvName)
	}
}

// collectNilsafeTypes finds the package's marker-carrying type names.
func collectNilsafeTypes(pass *Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc != nil && strings.Contains(doc.Text(), nilsafeMarker) {
					out[ts.Name.Name] = true
				}
			}
		}
	}
	return out
}

// receiverOf returns the receiver's base type name, the receiver variable
// name ("" when anonymous), and whether the receiver is a pointer.
func receiverOf(fd *ast.FuncDecl) (typeName, recvName string, ptr bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		recvName = field.Names[0].Name
	}
	return id.Name, recvName, ptr
}

// opensWithNilGuard reports whether the method's first statement is an if
// whose condition compares the receiver with nil.
func opensWithNilGuard(pass *Pass, fd *ast.FuncDecl, recvName string) bool {
	if len(fd.Body.List) == 0 {
		return true // empty body cannot dereference anything
	}
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	recvObj := recvObject(pass, fd)
	found := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return !found
		}
		if isNilComparison(pass, be, recvObj) {
			found = true
		}
		return !found
	})
	return found
}

// delegatesSafely reports whether every receiver use is a nil comparison or
// a call to an already-guarded method of the same type (e.g. Stalled
// returning StallRemaining(node) > 0).
func delegatesSafely(pass *Pass, fd *ast.FuncDecl, typeName, recvName string, guarded map[string]bool) bool {
	recvObj := recvObject(pass, fd)
	if recvObj == nil {
		return false
	}
	safe := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && isNilComparison(pass, n, recvObj) {
				if id, ok := n.X.(*ast.Ident); ok {
					safe[id] = true
				}
				if id, ok := n.Y.(*ast.Ident); ok {
					safe[id] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok &&
					pass.Pkg.Info.Uses[id] == recvObj && guarded[typeName+"."+sel.Sel.Name] {
					safe[id] = true
				}
			}
		}
		return true
	})
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID && pass.Pkg.Info.Uses[id] == recvObj && !safe[id] {
			ok = false
		}
		return ok
	})
	return ok
}

// recvObject resolves the receiver variable's object.
func recvObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	obj := pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return nil
	}
	return obj
}

// isNilComparison reports whether be compares the receiver object against
// the nil identifier.
func isNilComparison(pass *Pass, be *ast.BinaryExpr, recvObj types.Object) bool {
	if recvObj == nil {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.Pkg.Info.Uses[id] == recvObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}
