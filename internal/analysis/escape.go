package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Escape summaries: for each function, where can each parameter (and each
// local, and each allocation expression) end up? The hotalloc rule uses
// them to split findings into poolable (the value dies with the call — a
// freelist or scratch buffer removes the allocation outright) and
// genuinely retained (the value outlives the call via a struct, global,
// channel, or return — pooling needs a lifecycle, or the finding needs an
// audited allow).
//
// The lattice is a four-bit set, fixpointed round-robin like the
// may-block summaries. Documented approximations, all conservative
// toward "retained":
//
//   - Local-to-local aliasing (`y := x`) is not tracked; the alias's
//     escapes attach to the alias, not the original.
//   - Receiver flow is not tracked (summaries index parameters only,
//     matching the other per-param summaries).
//   - Arguments to unresolvable callees (stdlib, function values) are
//     assumed retained.

// Escape is a bitset of ways a value leaves its frame.
type Escape uint8

const (
	// EscReturned: the value is returned to the caller.
	EscReturned Escape = 1 << iota
	// EscGlobal: the value is assigned to a package-level variable.
	EscGlobal
	// EscChan: the value is sent on a channel.
	EscChan
	// EscRetained: the value is stored into a struct field, slice, map,
	// or pointer target, captured by a closure or method value, kept by
	// append, or handed to a callee the graph cannot see into.
	EscRetained
)

func (e Escape) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	if e&EscReturned != 0 {
		parts = append(parts, "return")
	}
	if e&EscGlobal != 0 {
		parts = append(parts, "global")
	}
	if e&EscChan != 0 {
		parts = append(parts, "chan")
	}
	if e&EscRetained != 0 {
		parts = append(parts, "retained")
	}
	return strings.Join(parts, "|")
}

// escFlow records "object obj is argument idx of a call to callees" —
// resolved at seed time, consulted every fixpoint round so the callee's
// (growing) ParamEscape flows back into the caller's local.
type escFlow struct {
	obj     types.Object
	callees []*FuncNode
	idx     int
}

// exprFlow is escFlow for a non-identifier argument (an allocation
// passed inline, e.g. push(&event{…})).
type exprFlow struct {
	expr    ast.Expr
	callees []*FuncNode
	idx     int
}

// seedEscapes performs the intraprocedural escape walk: direct sinks
// (send, return, global/field stores, composite elements, append,
// captures) seed localEsc/exprEsc; call-argument flows are recorded for
// the fixpoint. Called once from collect.
func (n *FuncNode) seedEscapes(prog *Program) {
	pkg := n.Pkg
	info := pkg.Info
	n.localEsc = make(map[types.Object]Escape)
	n.exprEsc = make(map[ast.Expr]Escape)
	n.binds = make(map[ast.Expr]types.Object)

	classify := func(e ast.Expr, esc Escape) {
		e = ast.Unparen(e)
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				n.localEsc[obj] |= esc
			}
			return
		}
		n.exprEsc[e] |= esc
	}

	// Pre-pass: selector expressions that are call targets are calls, not
	// method-value captures.
	callFuns := make(map[ast.Expr]bool)
	walkOwnCode(pkg, n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	fnStart, fnEnd := n.Decl.Pos(), n.Decl.End()
	walkOwnCode(pkg, n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SendStmt:
			classify(node.Value, EscChan)
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				classify(r, EscReturned)
			}
		case *ast.AssignStmt:
			n.seedAssignEscapes(classify, node)
		case *ast.ValueSpec:
			for i, name := range node.Names {
				if i >= len(node.Values) || name.Name == "_" {
					continue
				}
				if obj := info.Defs[name]; obj != nil {
					n.binds[ast.Unparen(node.Values[i])] = obj
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				classify(v, EscRetained)
			}
		case *ast.CallExpr:
			n.seedCallEscapes(prog, classify, node)
		case *ast.FuncLit:
			// Free-variable capture: any identifier declared in the
			// enclosing function but outside the literal escapes into the
			// closure.
			ast.Inspect(node.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				p := v.Pos()
				if p >= node.Pos() && p <= node.End() {
					return true // the literal's own binding
				}
				if p < fnStart || p > fnEnd {
					return true // package-level or foreign
				}
				n.localEsc[v] |= EscRetained
				return true
			})
		case *ast.SelectorExpr:
			// Method value (p.unpark used as a value): captures its
			// receiver like a closure.
			if callFuns[node] {
				return true
			}
			if s, ok := info.Selections[node]; ok && s.Kind() == types.MethodVal {
				classify(node.X, EscRetained)
			}
		}
		return true
	})
}

// seedAssignEscapes classifies one assignment's right-hand sides: stores
// through selectors/indexes/derefs retain, package-level targets
// globalize, and plain local bindings are recorded so an allocation
// inherits its variable's fate.
func (n *FuncNode) seedAssignEscapes(classify func(ast.Expr, Escape), as *ast.AssignStmt) {
	info := n.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple assignment from a call: no tracked value flow
	}
	for i := range as.Lhs {
		rhs := ast.Unparen(as.Rhs[i])
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := info.Defs[lhs]
			if obj == nil {
				obj = info.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == n.Pkg.Types.Scope() {
				classify(rhs, EscGlobal)
				continue
			}
			n.binds[rhs] = obj
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			classify(rhs, EscRetained)
		}
	}
}

// seedCallEscapes records how call arguments flow: append retains its
// appended values, builtins otherwise don't leak, unknown callees retain
// everything, and resolvable callees defer to their ParamEscape summary
// via the fixpoint.
func (n *FuncNode) seedCallEscapes(prog *Program, classify func(ast.Expr, Escape), call *ast.CallExpr) {
	info := n.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				for _, a := range call.Args[1:] {
					classify(a, EscRetained)
				}
			}
			return
		}
	}
	callees := prog.Callees(n.Pkg, call)
	if len(callees) == 0 {
		for _, a := range call.Args {
			classify(a, EscRetained)
		}
		return
	}
	for j, a := range call.Args {
		a = ast.Unparen(a)
		if id, ok := a.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				n.escFlows = append(n.escFlows, escFlow{obj: obj, callees: callees, idx: j})
			}
			continue
		}
		n.exprFlows = append(n.exprFlows, exprFlow{expr: a, callees: callees, idx: j})
	}
}

// calleeParamEscape reads a callee's summary for argument position j,
// folding variadic tails onto the last parameter.
func calleeParamEscape(callee *FuncNode, j int) Escape {
	pe := callee.ParamEscape
	if len(pe) == 0 {
		return 0
	}
	sig, _ := callee.Obj.Type().(*types.Signature)
	if sig != nil && sig.Variadic() && j >= len(pe)-1 {
		return pe[len(pe)-1]
	}
	if j < len(pe) {
		return pe[j]
	}
	return 0
}

// recomputeEscapes is the per-round escape propagation step, called from
// recompute. Returns whether anything grew (the bits are monotone).
func (prog *Program) recomputeEscapes(n *FuncNode) bool {
	changed := false
	mergeObj := func(obj types.Object, bits Escape) {
		if obj == nil || bits == 0 {
			return
		}
		if n.localEsc[obj]&bits != bits {
			n.localEsc[obj] |= bits
			changed = true
		}
	}
	mergeBits := func(dst *Escape, bits Escape) {
		if *dst&bits != bits {
			*dst |= bits
			changed = true
		}
	}

	// Arguments inherit the callees' parameter summaries.
	for _, fl := range n.escFlows {
		for _, callee := range fl.callees {
			mergeObj(fl.obj, calleeParamEscape(callee, fl.idx))
		}
	}
	for _, fl := range n.exprFlows {
		for _, callee := range fl.callees {
			bits := calleeParamEscape(callee, fl.idx)
			if bits != 0 && n.exprEsc[fl.expr]&bits != bits {
				n.exprEsc[fl.expr] |= bits
				changed = true
			}
		}
	}

	// Parameters (and their assert/switch aliases) fold their locals'
	// bits into the exported summary.
	for obj, bits := range n.localEsc {
		if i, ok := n.paramIndex[obj]; ok && i < len(n.ParamEscape) {
			mergeBits(&n.ParamEscape[i], bits)
		}
	}

	// Results: a returned local carries its escapes (minus the trivially
	// true "returned"); `return f(…)` forwards f's result summary.
	for _, row := range n.returnPositions {
		if len(row) == 1 && row[0].call != nil && len(n.ResultEscape) >= 1 {
			for _, callee := range prog.Callees(n.Pkg, row[0].call) {
				for i := 0; i < len(n.ResultEscape) && i < len(callee.ResultEscape); i++ {
					mergeBits(&n.ResultEscape[i], callee.ResultEscape[i])
				}
			}
			continue
		}
		if len(row) != len(n.ResultEscape) {
			continue
		}
		for i, re := range row {
			if re.local != nil {
				mergeBits(&n.ResultEscape[i], n.localEsc[re.local]&^EscReturned)
			}
			if re.call != nil {
				for _, callee := range prog.Callees(n.Pkg, re.call) {
					if len(callee.ResultEscape) == 1 {
						mergeBits(&n.ResultEscape[i], callee.ResultEscape[0])
					}
				}
			}
		}
	}
	return changed
}

// AllocEscape classifies where the value built by allocation expression e
// (a composite literal, make, closure, concat, …) ends up: its own
// direct sinks plus, when it initializes a local, that local's fate.
// Zero means the value provably (within the approximations above) never
// leaves the call — a pooling candidate.
func (n *FuncNode) AllocEscape(e ast.Expr) Escape {
	bits := n.exprEsc[e]
	if obj, ok := n.binds[e]; ok {
		bits |= n.localEsc[obj]
	}
	return bits
}
