package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochSet turns the epoch-fencing convention into a checked invariant:
// every round-path protocol message (a named struct suffixed Req/Resp
// carrying both `Seq int64` and `Epoch int64` — the shape ctlmsg already
// enforces) that a function constructs must have its Epoch assigned on
// ALL paths before the value reaches an evpath send sink — being wrapped
// as an Event's Data field, or being passed to a callee that does so
// (e.g. (*Container).reply). Stamping counts directly (`req.Epoch = e`,
// a composite literal with an Epoch key) or through the call graph
// (`stampReqEpoch(req, e)` assigns .Epoch through its type-switch
// bindings, so its summary sets the parameter). The check is a forward
// must-analysis over the CFG: a message stamped on one branch but not the
// other is still unstamped at the merge. Values that escape (stored into
// a map or field, returned, handed to a summaryless callee) stop being
// tracked — the manager's dedupe cache holds already-stamped replies, and
// escaped aliases cannot be proven either way without a heap model.
var EpochSet = &Analyzer{
	Name:    "epochset",
	Doc:     "round-path Req/Resp values must have Epoch assigned on all paths before reaching an Event send",
	Applies: internalPkg,
	Run:     runEpochSet,
}

type epochState uint8

const (
	epochSet epochState = iota + 1
	epochUnset
	epochEscaped
)

type epochFact map[types.Object]epochState

func runEpochSet(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if !constructsRoundMessage(pass, fd) {
				continue
			}
			prob := &epochProblem{pass: pass}
			cfg := BuildCFG(fd)
			in := Forward(cfg, prob)
			prob.reported = make(map[token.Pos]bool)
			for _, b := range cfg.Blocks {
				fact := in[b.Index]
				if fact == nil {
					continue
				}
				f := fact
				for _, n := range b.Nodes {
					f = prob.Transfer(n, f)
				}
			}
		}
	}
}

// constructsRoundMessage is a cheap pre-filter: only functions that build
// a round-path message literal need the full CFG analysis.
func constructsRoundMessage(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.CompositeLit); ok && roundMessageType(pass.Pkg.Info, lit) != nil {
			found = true
		}
		return !found
	})
	return found
}

// roundMessageType resolves a composite literal to its round-path message
// type name, or nil if the literal builds something else.
func roundMessageType(info *types.Info, lit *ast.CompositeLit) *types.TypeName {
	tv, ok := info.Types[lit]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	name := named.Obj().Name()
	if !hasSuffix(name, "Req") && !hasSuffix(name, "Resp") {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !hasSeqField(st) || !hasEpochField(st) {
		return nil
	}
	return named.Obj()
}

type epochProblem struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (p *epochProblem) Entry() Fact                            { return epochFact{} }
func (p *epochProblem) Refine(_ ast.Expr, _ bool, f Fact) Fact { return f }
func (p *epochProblem) Join(a, b Fact) Fact {
	fa, fb := a.(epochFact), b.(epochFact)
	out := make(epochFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	// Must-analysis: the worse state wins at a merge (escaped > unset >
	// set, in the order the constants declare).
	for k, v := range fb {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

func (p *epochProblem) Equal(a, b Fact) bool {
	fa, fb := a.(epochFact), b.(epochFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (p *epochProblem) Transfer(n ast.Node, f Fact) Fact {
	fact := f.(epochFact)
	switch n := n.(type) {
	case *ast.AssignStmt:
		return p.transferAssign(n, fact)
	case *ast.ReturnStmt:
		out := fact
		for _, r := range n.Results {
			out = p.escape(r, out)
		}
		return out
	case *ast.SendStmt:
		return p.escape(n.Value, fact)
	case *ast.ExprStmt:
		return p.transferExpr(n.X, fact)
	default:
		if e, ok := n.(ast.Expr); ok {
			return p.transferExpr(e, fact)
		}
	}
	return fact
}

func (p *epochProblem) transferAssign(as *ast.AssignStmt, fact epochFact) epochFact {
	out := fact
	// Right-hand sides first: sinks/escapes happen before the binding.
	for _, rhs := range as.Rhs {
		out = p.transferExpr(rhs, out)
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		// `x.Epoch = …` stamps a tracked value.
		if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Epoch" {
			if obj := p.objOf(sel.X); obj != nil && out[obj] != 0 {
				out = epochWrite(out, obj, epochSet)
			}
			continue
		}
		obj := p.defOrUse(lhs)
		if obj == nil {
			// Storing a tracked value into a map/field/slice element
			// creates an alias we cannot follow.
			if rhs != nil {
				if robj := p.objOf(rhs); robj != nil && out[robj] != 0 {
					out = epochWrite(out, robj, epochEscaped)
				}
			}
			continue
		}
		if rhs != nil {
			if lit := compositeOf(rhs); lit != nil {
				if tn := roundMessageType(p.pass.Pkg.Info, lit); tn != nil {
					state := epochUnset
					if litSetsEpoch(lit) {
						state = epochSet
					}
					out = epochWrite(out, obj, state)
					continue
				}
			}
			// `y := x` aliases a tracked value; give up on both sides.
			if robj := p.objOf(rhs); robj != nil && out[robj] != 0 {
				out = epochWrite(out, robj, epochEscaped)
			}
		}
		if out[obj] != 0 {
			out = epochWrite(out, obj, 0) // reassigned to something else
		}
	}
	return out
}

// transferExpr handles sinks, stamps, and escapes inside one expression.
func (p *epochProblem) transferExpr(e ast.Expr, fact epochFact) epochFact {
	out := fact
	WalkCFGNode(e, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CompositeLit:
			if !isEventLit(p.pass.Pkg.Info, m) {
				// A tracked value embedded in any other literal escapes.
				for _, elt := range m.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if obj := p.objOf(v); obj != nil && out[obj] != 0 {
						out = epochWrite(out, obj, epochEscaped)
					}
				}
				return true
			}
			for _, elt := range m.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Data" {
					continue
				}
				obj := p.objOf(kv.Value)
				if obj == nil || out[obj] == 0 {
					continue
				}
				if out[obj] == epochUnset {
					p.report(kv.Value.Pos(), obj)
				}
			}
		case *ast.CallExpr:
			out = p.transferCall(m, out)
			return false // args already handled
		}
		return true
	})
	return out
}

func (p *epochProblem) transferCall(call *ast.CallExpr, fact epochFact) epochFact {
	out := fact
	// Nested calls/literals in arguments first.
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Ident:
		default:
			out = p.transferExpr(a, out)
		}
	}
	callees := p.pass.Prog.Callees(p.pass.Pkg, call)
	for j, a := range call.Args {
		obj := p.objOf(a)
		if obj == nil || out[obj] == 0 {
			continue
		}
		stamps, sinks := false, false
		for _, callee := range callees {
			if j < len(callee.StampsEpoch) && callee.StampsEpoch[j] {
				stamps = true
			}
			if j < len(callee.SinksEventData) && callee.SinksEventData[j] {
				sinks = true
			}
		}
		switch {
		case sinks:
			if out[obj] == epochUnset {
				p.report(a.Pos(), obj)
			}
		case stamps:
			out = epochWrite(out, obj, epochSet)
		default:
			// Unknown effect on the value: escape.
			out = epochWrite(out, obj, epochEscaped)
		}
	}
	return out
}

func (p *epochProblem) escape(e ast.Expr, fact epochFact) epochFact {
	if obj := p.objOf(e); obj != nil && fact[obj] != 0 {
		return epochWrite(fact, obj, epochEscaped)
	}
	return p.transferExpr(e, fact)
}

func (p *epochProblem) report(pos token.Pos, obj types.Object) {
	if p.reported == nil || p.reported[pos] {
		return
	}
	p.reported[pos] = true
	p.pass.Reportf(pos,
		"round message %q reaches an Event send without Epoch assigned on every path; stamp it (stampReqEpoch/stampRespEpoch or an Epoch field in the literal) before sending",
		obj.Name())
}

func (p *epochProblem) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.pass.Pkg.Info.Uses[id]
}

func (p *epochProblem) defOrUse(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	info := p.pass.Pkg.Info
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// compositeOf unwraps `&T{…}` / `T{…}` to the literal.
func compositeOf(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

// litSetsEpoch reports whether the literal assigns Epoch: an explicit
// `Epoch:` key, or a full positional literal (every field present).
func litSetsEpoch(lit *ast.CompositeLit) bool {
	positional := len(lit.Elts) > 0
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		positional = false
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
			return true
		}
	}
	return positional
}

func epochWrite(f epochFact, obj types.Object, state epochState) epochFact {
	if f[obj] == state {
		return f
	}
	out := make(epochFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	if state == 0 {
		delete(out, obj)
	} else {
		out[obj] = state
	}
	return out
}
